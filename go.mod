module phast

go 1.22
