// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results). Each BenchmarkTableN_* / BenchmarkFig1_* /
// BenchmarkLowerBound_* / BenchmarkApps_* target exercises exactly the
// code path behind the corresponding rows; `go run ./cmd/experiments`
// prints the full formatted tables.
package phast_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"phast/internal/arcflags"
	"phast/internal/bandwidth"
	"phast/internal/centrality"
	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/diameter"
	"phast/internal/gphast"
	"phast/internal/graph"
	"phast/internal/layout"
	"phast/internal/machine"
	"phast/internal/partition"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/rphast"
	"phast/internal/simt"
	"phast/internal/sssp"
)

// fixture holds the shared benchmark instance: the europe-xs network in
// DFS layout with its hierarchy, plus a travel-distance twin for Table
// VII. Built once; benchmarks must not mutate it.
type fixture struct {
	g       *graph.Graph // DFS layout, travel times
	h       *ch.Hierarchy
	gDist   *graph.Graph // travel distances
	hDist   *ch.Hierarchy
	sources []int32
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		build := func(metric roadnet.Metric) (*graph.Graph, *ch.Hierarchy) {
			net, err := roadnet.GeneratePreset(roadnet.PresetEuropeXS, metric)
			if err != nil {
				panic(err)
			}
			perm := layout.DFS(net.Graph, 0)
			g, err := net.Graph.Permute(perm)
			if err != nil {
				panic(err)
			}
			return g, ch.Build(g, ch.Options{})
		}
		f := &fixture{}
		f.g, f.h = build(roadnet.TravelTime)
		f.gDist, f.hDist = build(roadnet.TravelDistance)
		rng := rand.New(rand.NewSource(7))
		f.sources = make([]int32, 64)
		for i := range f.sources {
			f.sources[i] = int32(rng.Intn(f.g.NumVertices()))
		}
		fix = f
	})
	return fix
}

func (f *fixture) src(i int) int32 { return f.sources[i%len(f.sources)] }

func (f *fixture) engine(b *testing.B, mode core.SweepMode, workers int) *core.Engine {
	b.Helper()
	return f.engineOpts(b, core.Options{Mode: mode, Workers: workers})
}

func (f *fixture) engineOpts(b *testing.B, opt core.Options) *core.Engine {
	b.Helper()
	e, err := core.NewEngine(f.h, opt)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// reportSweepGBps attaches the modeled achieved bandwidth of the sweep:
// the engine's bytes-touched model for its active layout (packed stream
// or legacy CSR+mark, k-lane aware) divided by wall time. The wall time
// includes the upward CH search, so the figure is conservative.
func reportSweepGBps(b *testing.B, e *core.Engine, k int) {
	b.ReportMetric(bandwidth.GBps(e.SweepBytes(k)*int64(b.N), b.Elapsed()), "modeled-GB/s")
}

// ---- Figure 1: the CH hierarchy itself --------------------------------

func BenchmarkFig1_CHPreprocessing(b *testing.B) {
	f := getFixture(b)
	for i := 0; i < b.N; i++ {
		h := ch.Build(f.g, ch.Options{})
		if len(h.LevelSizes()) < 10 {
			b.Fatal("hierarchy suspiciously flat")
		}
	}
}

// ---- Table I: single tree, all algorithms -----------------------------

func benchDijkstra(b *testing.B, kind pq.Kind) {
	f := getFixture(b)
	d := sssp.NewDijkstra(f.g, kind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(f.src(i))
	}
}

func BenchmarkTable1_DijkstraBinaryHeap(b *testing.B) { benchDijkstra(b, pq.KindBinaryHeap) }
func BenchmarkTable1_DijkstraDial(b *testing.B)       { benchDijkstra(b, pq.KindDial) }
func BenchmarkTable1_DijkstraSmartQueue(b *testing.B) { benchDijkstra(b, pq.KindRadix) }

func BenchmarkTable1_BFS(b *testing.B) {
	f := getFixture(b)
	bf := sssp.NewBFS(f.g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Run(f.src(i))
	}
}

func BenchmarkTable1_PHASTRankOrder(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepRankOrder, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tree(f.src(i))
	}
	reportSweepGBps(b, e, 1)
}

func BenchmarkTable1_PHASTLevelOrder(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepLevelOrder, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tree(f.src(i))
	}
	reportSweepGBps(b, e, 1)
}

func BenchmarkTable1_PHASTReordered(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tree(f.src(i))
	}
	reportSweepGBps(b, e, 1)
}

// BenchmarkTable1_PHASTReorderedLegacy is the A/B twin of
// BenchmarkTable1_PHASTReordered on the pre-packed CSR+mark kernels
// (Options.PackedSweep = PackedOff); cmd/benchsmoke compares the pair
// and fails CI if the packed stream is slower.
func BenchmarkTable1_PHASTReorderedLegacy(b *testing.B) {
	f := getFixture(b)
	e := f.engineOpts(b, core.Options{Mode: core.SweepReordered, Workers: 1, PackedSweep: core.PackedOff})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tree(f.src(i))
	}
	reportSweepGBps(b, e, 1)
}

func BenchmarkTable1_PHASTReorderedParallel(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TreeParallel(f.src(i))
	}
	reportSweepGBps(b, e, 1)
}

// ---- Table II: multiple trees per sweep -------------------------------

func benchMultiTree(b *testing.B, k int, lanes bool) {
	benchMultiTreePacked(b, k, lanes, core.PackedDefault)
}

func benchMultiTreePacked(b *testing.B, k int, lanes bool, packed core.PackedSetting) {
	f := getFixture(b)
	e := f.engineOpts(b, core.Options{Mode: core.SweepReordered, Workers: 1, PackedSweep: packed})
	batch := make([]int32, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = f.src(i*k + j)
		}
		e.MultiTree(batch, lanes)
	}
	// report per-tree cost: one op grows k trees
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/tree")
	reportSweepGBps(b, e, k)
}

func BenchmarkTable2_MultiTree_k4(b *testing.B)        { benchMultiTree(b, 4, false) }
func BenchmarkTable2_MultiTree_k8(b *testing.B)        { benchMultiTree(b, 8, false) }
func BenchmarkTable2_MultiTree_k16(b *testing.B)       { benchMultiTree(b, 16, false) }
func BenchmarkTable2_MultiTree_k4_Lanes(b *testing.B)  { benchMultiTree(b, 4, true) }
func BenchmarkTable2_MultiTree_k8_Lanes(b *testing.B)  { benchMultiTree(b, 8, true) }
func BenchmarkTable2_MultiTree_k16_Lanes(b *testing.B) { benchMultiTree(b, 16, true) }

// Legacy A/B twin for the multi-tree sweep (see PHASTReorderedLegacy).
func BenchmarkTable2_MultiTree_k16_Legacy(b *testing.B) {
	benchMultiTreePacked(b, 16, false, core.PackedOff)
}

// ---- Table III: GPHAST on the simulated GTX 580 -----------------------

func benchGPHAST(b *testing.B, k int) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	ge, err := gphast.NewEngine(e, simt.NewDevice(simt.GTX580()), k)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]int32, k)
	var modeled float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = f.src(i*k + j)
		}
		ge.MultiTree(batch)
		modeled += ge.LastBatchModeledTime().Seconds()
	}
	b.ReportMetric(modeled/float64(b.N*k)*1e9, "modeled-ns/tree")
}

func BenchmarkTable3_GPHAST_k1(b *testing.B)  { benchGPHAST(b, 1) }
func BenchmarkTable3_GPHAST_k4(b *testing.B)  { benchGPHAST(b, 4) }
func BenchmarkTable3_GPHAST_k16(b *testing.B) { benchGPHAST(b, 16) }

// ---- Table IV/V: the machine model ------------------------------------

func BenchmarkTable4_MachineCatalogue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(machine.Catalogue()) != 5 {
			b.Fatal("catalogue broken")
		}
	}
}

func BenchmarkTable5_ArchitectureProjection(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	ref := machine.Reference()
	cat := machine.Catalogue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tree(f.src(i))        // the measured anchor...
		for _, m := range cat { // ...projected onto every machine
			s := machine.Scale(time.Millisecond, ref, m, machine.BandwidthBound)
			machine.ScaleParallel(s, m, m.Cores, true, machine.BandwidthBound)
		}
	}
}

// ---- Table VI: best configurations and energy -------------------------

func BenchmarkTable6_PHASTBestConfig(b *testing.B) {
	// The winning CPU configuration: 16 trees per sweep with lanes.
	benchMultiTree(b, 16, true)
}

func BenchmarkTable6_EnergyModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if machine.EnergyJoules(375, 1e6) <= 0 {
			b.Fatal("energy model broken")
		}
	}
}

// ---- Table VII: other inputs (distance metric) ------------------------

func BenchmarkTable7_PHASTDistanceMetric(b *testing.B) {
	f := getFixture(b)
	e, err := core.NewEngine(f.hDist, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tree(f.src(i) % int32(f.gDist.NumVertices()))
	}
}

func BenchmarkTable7_DijkstraDistanceMetric(b *testing.B) {
	f := getFixture(b)
	d := sssp.NewDijkstra(f.gDist, pq.KindDial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(f.src(i) % int32(f.gDist.NumVertices()))
	}
}

// ---- Section VIII-B: memory lower bounds ------------------------------

func BenchmarkLowerBound_SequentialStream(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	dist := make([]uint32, f.g.NumVertices())
	b.ResetTimer()
	bandwidth.Sequential(e.Hierarchy().DownIn, dist, b.N)
}

func BenchmarkLowerBound_VertexLoopTraversal(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	dist := make([]uint32, f.g.NumVertices())
	b.ResetTimer()
	bandwidth.Traversal(e.Hierarchy().DownIn, dist, b.N)
}

// ---- Section VII-B applications ----------------------------------------

func BenchmarkApps_ArcFlagsPHASTTrees(b *testing.B) {
	f := getFixture(b)
	cells, err := partition.Cells(f.g, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	rev, err := arcflags.NewReverseEngine(f.g, ch.Options{}, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tree := arcflags.PHASTReverseTrees(rev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arcflags.Compute(f.g, cells, 8, tree); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApps_ArcFlagsDijkstraTrees(b *testing.B) {
	f := getFixture(b)
	cells, err := partition.Cells(f.g, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	tree := arcflags.DijkstraReverseTrees(f.g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arcflags.Compute(f.g, cells, 8, tree); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApps_DiameterCPU(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diameter.CPU(e, f.sources[:16])
	}
}

func BenchmarkApps_ReachSampled(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Reaches(f.g, e, f.sources[:4])
	}
}

func BenchmarkApps_BetweennessPHAST(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.BetweennessPHAST(f.g, e, f.sources[:4])
	}
}

func BenchmarkApps_BetweennessDijkstra(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.BetweennessDijkstra(f.g, f.sources[:4])
	}
}

// ---- Point-to-point baseline (Section II-B) ---------------------------

func BenchmarkCHQuery(b *testing.B) {
	f := getFixture(b)
	q := ch.NewQuery(f.h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Distance(f.src(i), f.src(i+13))
	}
}

// ---- Extensions: RPHAST, bidirectional flags, GPU fleet, serialization --

func BenchmarkRPHAST_Select64(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	targets := f.sources[:64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rphast.NewSelection(e, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPHAST_Query64(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	sel, err := rphast.NewSelection(e, f.sources[:64])
	if err != nil {
		b.Fatal(err)
	}
	q := rphast.NewQuery(sel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Run(f.src(i))
	}
}

func BenchmarkApps_BidirectionalFlagsQuery(b *testing.B) {
	f := getFixture(b)
	cells, err := partition.Cells(f.g, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	rev, err := arcflags.NewReverseEngine(f.g, ch.Options{}, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	fwd := f.engine(b, core.SweepReordered, 1)
	bi, err := arcflags.ComputeBidirectional(f.g, cells, 8,
		arcflags.PHASTReverseTrees(rev), arcflags.PHASTForwardTrees(fwd))
	if err != nil {
		b.Fatal(err)
	}
	q := arcflags.NewBiQuery(bi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Distance(f.src(i), f.src(i+7))
	}
}

func BenchmarkGPHAST_Fleet2(b *testing.B) {
	f := getFixture(b)
	e := f.engine(b, core.SweepReordered, 1)
	fleet, err := gphast.NewFleet(e, []simt.DeviceSpec{simt.GTX580(), simt.GTX580()}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet.MultiTreeRound([][]int32{
			{f.src(i), f.src(i + 1), f.src(i + 2), f.src(i + 3)},
			{f.src(i + 4), f.src(i + 5), f.src(i + 6), f.src(i + 7)},
		})
	}
}

func BenchmarkHierarchySerialization(b *testing.B) {
	f := getFixture(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := ch.WriteHierarchy(&buf, f.h); err != nil {
			b.Fatal(err)
		}
		if _, err := ch.ReadHierarchy(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// ---- Ablation: the priority function's level term ----------------------

func BenchmarkAblation_CHPriorityEDOnly(b *testing.B) {
	f := getFixture(b)
	for i := 0; i < b.N; i++ {
		ch.Build(f.g, ch.Options{Priority: &ch.PriorityWeights{ED: 1}})
	}
}
