package phast

import "phast/internal/rphast"

// TargetSelection is a preprocessed restriction of the downward graph to
// a fixed target set — RPHAST, the one-to-many extension: queries sweep
// only the vertices that can influence the targets, so a source-to-T
// computation costs O(|selection|) instead of O(n).
type TargetSelection struct {
	sel *rphast.Selection
}

// SelectTargets preprocesses a target set (original vertex IDs) for
// repeated one-to-many queries. The selection is immutable and can be
// shared; obtain per-goroutine cursors with NewQuery.
func (e *Engine) SelectTargets(targets []int32) (*TargetSelection, error) {
	sel, err := rphast.NewSelection(e.core, targets)
	if err != nil {
		return nil, err
	}
	return &TargetSelection{sel: sel}, nil
}

// Size returns the number of selected vertices (the per-query cost).
func (t *TargetSelection) Size() int { return t.sel.Size() }

// Table computes the full |sources| x |targets| distance table.
func (t *TargetSelection) Table(sources []int32) [][]uint32 {
	return rphast.Table(t.sel, sources)
}

// NewQuery returns a reusable one-to-many solver over the selection.
func (t *TargetSelection) NewQuery() *TargetQuery {
	return &TargetQuery{q: rphast.NewQuery(t.sel)}
}

// TargetQuery answers one-to-many queries against one TargetSelection.
// Not safe for concurrent use.
type TargetQuery struct {
	q *rphast.Query
}

// Run computes distances from source to every selected vertex.
func (q *TargetQuery) Run(source int32) { q.q.Run(source) }

// Dist returns the distance to the i-th target of the selection from
// the last Run's source.
func (q *TargetQuery) Dist(i int) uint32 { return q.q.Dist(i) }
