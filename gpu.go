package phast

import (
	"time"

	"phast/internal/gphast"
	"phast/internal/simt"
)

// GPUSpec describes a modeled GPU for the GPHAST pipeline. This build
// has no physical GPU: kernels execute on the SIMT simulator, which
// produces exact distances plus modeled times from a bandwidth/latency
// cost model (see DESIGN.md).
type GPUSpec = simt.DeviceSpec

// GTX580 returns the paper's primary card (16 SMs, 192.4 GB/s, 1.5 GB).
func GTX580() GPUSpec { return simt.GTX580() }

// GTX480 returns the predecessor card of Table VI.
func GTX480() GPUSpec { return simt.GTX480() }

// GPUStats summarizes simulated-device activity.
type GPUStats = simt.RunStats

// GPUEngine runs PHAST sweeps on a simulated GPU (GPHAST, Section VI).
type GPUEngine struct {
	e *gphast.Engine
}

// GPU uploads the engine's downward graph to a simulated device and
// returns a GPHAST engine supporting up to maxTreesPerSweep trees per
// sweep. The CPU keeps running the upward searches, the device runs one
// kernel per level.
func (e *Engine) GPU(spec GPUSpec, maxTreesPerSweep int) (*GPUEngine, error) {
	ge, err := gphast.NewEngine(e.core.Clone(), simt.NewDevice(spec), maxTreesPerSweep)
	if err != nil {
		return nil, err
	}
	return &GPUEngine{e: ge}, nil
}

// Tree computes one shortest-path tree on the device.
func (g *GPUEngine) Tree(source int32) { g.e.Tree(source) }

// MultiTree computes len(sources) trees in one device sweep.
func (g *GPUEngine) MultiTree(sources []int32) { g.e.MultiTree(sources) }

// Dist returns the label of vertex v in tree lane of the last batch.
func (g *GPUEngine) Dist(lane int, v int32) uint32 { return g.e.Dist(lane, v) }

// ModeledBatchTime returns the modeled device+PCIe time of the last
// Tree/MultiTree batch on the configured card.
func (g *GPUEngine) ModeledBatchTime() time.Duration { return g.e.LastBatchModeledTime() }

// MemoryUsed reports simulated device memory held by the engine.
func (g *GPUEngine) MemoryUsed() int64 { return g.e.MemoryUsed() }

// Stats returns accumulated simulated-device statistics (kernels,
// warps, memory transactions, modeled time).
func (g *GPUEngine) Stats() GPUStats { return g.e.Device().Stats() }

// GPUFleet drives several simulated GPUs in parallel rounds — the
// multi-card scaling argument of Section VIII-F ("the all-pairs
// shortest-paths computation scales perfectly with the number of GPUs").
type GPUFleet struct {
	f *gphast.Fleet
}

// GPUFleet uploads the downward graph to one simulated device per spec.
func (e *Engine) GPUFleet(specs []GPUSpec, maxTreesPerSweep int) (*GPUFleet, error) {
	f, err := gphast.NewFleet(e.core.Clone(), specs, maxTreesPerSweep)
	if err != nil {
		return nil, err
	}
	return &GPUFleet{f: f}, nil
}

// Size returns the number of devices.
func (f *GPUFleet) Size() int { return f.f.Size() }

// Dist reads the label of vertex v in lane of device dev's last batch.
func (f *GPUFleet) Dist(dev, lane int, v int32) uint32 { return f.f.Engine(dev).Dist(lane, v) }

// Round runs batch i on device i concurrently and returns the modeled
// wall time of the round (the slowest device).
func (f *GPUFleet) Round(batches [][]int32) time.Duration {
	return f.f.MultiTreeRound(batches)
}

// AllPairsModeledTime computes trees from every source in fleet-wide
// rounds of k trees per device and returns the total modeled wall time.
// visit, if non-nil, sees each device's batch after its round so labels
// can be aggregated before the next round overwrites them.
func (f *GPUFleet) AllPairsModeledTime(sources []int32, k int, visit func(device int, batch []int32)) time.Duration {
	return f.f.AllPairsModeledTime(sources, k, visit)
}
