package phast_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"phast"
	"phast/internal/pq"
	"phast/internal/sssp"
)

func testNetwork(t testing.TB) *phast.RoadNetwork {
	t.Helper()
	net, err := phast.GenerateRoadNetwork(phast.RoadParams{Width: 24, Height: 20, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testEngine(t testing.TB, g *phast.Graph) *phast.Engine {
	t.Helper()
	e, err := phast.Preprocess(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEndToEndTreeMatchesDijkstra(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e := testEngine(t, g)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		e.Tree(s)
		d.Run(s)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if e.Dist(v) != d.Dist(v) {
				t.Fatalf("dist(%d)=%d, want %d", v, e.Dist(v), d.Dist(v))
			}
		}
	}
}

func TestPublicSurface(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e := testEngine(t, g)
	if e.NumVertices() != g.NumVertices() || e.Graph() != g {
		t.Fatal("engine accessors broken")
	}
	if e.NumShortcuts() <= 0 || e.NumLevels() <= 1 {
		t.Fatalf("hierarchy stats: %d shortcuts, %d levels", e.NumShortcuts(), e.NumLevels())
	}
	sizes := e.LevelSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.NumVertices() {
		t.Fatal("level sizes do not sum to n")
	}

	e.Tree(3)
	buf := make([]uint32, g.NumVertices())
	e.Distances(buf)
	if buf[3] != 0 {
		t.Fatal("source label not zero")
	}
	e.TreeParallel(3)
	for v := range buf {
		if e.Dist(int32(v)) != buf[v] {
			t.Fatal("parallel tree differs from sequential")
		}
	}

	e.TreeWithParents(3)
	p := e.PathTo(int32(g.NumVertices() - 1))
	if len(p) > 0 && (p[0] != 3 || p[len(p)-1] != int32(g.NumVertices()-1)) {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	parents := make([]int32, g.NumVertices())
	e.TreeParents(parents)
	if parents[3] != -1 {
		t.Fatal("source has a tree parent")
	}

	// Point-to-point, with and without stall-on-demand.
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(3)
	if got := e.Query(3, 40); got != d.Dist(40) {
		t.Fatalf("Query=%d, want %d", got, d.Dist(40))
	}
	e.EnableQueryStalling()
	if got := e.Query(3, 40); got != d.Dist(40) {
		t.Fatalf("stalling Query=%d, want %d", got, d.Dist(40))
	}
	qp := e.QueryPath(3, 40)
	if len(qp) == 0 || qp[0] != 3 || qp[len(qp)-1] != 40 {
		t.Fatalf("QueryPath endpoints: %v", qp)
	}

	// Multi-tree.
	e.MultiTree([]int32{1, 2, 3, 4}, true)
	d.Run(2)
	for v := int32(0); v < int32(g.NumVertices()); v += 5 {
		if e.MultiDist(1, v) != d.Dist(v) {
			t.Fatal("MultiDist mismatch")
		}
	}
}

func TestCompressedSweepFacade(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e, err := phast.Preprocess(g, &phast.Options{CompressedSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		e.Tree(s)
		d.Run(s)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if e.Dist(v) != d.Dist(v) {
				t.Fatalf("compressed dist(%d)=%d, want %d", v, e.Dist(v), d.Dist(v))
			}
		}
	}
	if e.StreamBytes() <= 0 {
		t.Fatal("compressed engine reports no stream bytes")
	}
	if r := e.CompressionRatio(); r <= 0 || r >= 1 {
		t.Fatalf("compression ratio %.3f, want (0,1)", r)
	}
	plain := testEngine(t, g)
	if plain.CompressionRatio() != 1 {
		t.Fatalf("uncompressed ratio %.3f, want 1", plain.CompressionRatio())
	}
	if plain.StreamBytes() <= e.StreamBytes() {
		t.Fatal("compressed stream is not smaller than packed")
	}
	if _, err := phast.Preprocess(g, &phast.Options{CompressedSweep: true, LegacySweep: true}); err == nil {
		t.Fatal("CompressedSweep+LegacySweep accepted")
	}
}

func TestCloneConcurrentUse(t *testing.T) {
	net := testNetwork(t)
	e := testEngine(t, net.Graph)
	n := net.Graph.NumVertices()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := e.Clone()
			d := sssp.NewDijkstra(net.Graph, pq.KindBinaryHeap)
			for i := 0; i < 3; i++ {
				s := int32((w*31 + i*17) % n)
				c.Tree(s)
				d.Run(s)
				for v := int32(0); v < int32(n); v += 11 {
					if c.Dist(v) != d.Dist(v) {
						errs <- "clone computed wrong distances"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestGPUFacade(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e := testEngine(t, g)
	gpu, err := e.GPU(phast.GTX580(), 4)
	if err != nil {
		t.Fatal(err)
	}
	gpu.MultiTree([]int32{5, 6, 7, 8})
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(7)
	for v := int32(0); v < int32(g.NumVertices()); v += 3 {
		if gpu.Dist(2, v) != d.Dist(v) {
			t.Fatalf("GPU dist mismatch at %d", v)
		}
	}
	if gpu.ModeledBatchTime() <= 0 || gpu.MemoryUsed() <= 0 {
		t.Fatal("GPU accounting empty")
	}
	if gpu.Stats().Kernels == 0 {
		t.Fatal("no kernels recorded")
	}
	if _, err := e.GPU(phast.GTX480(), 0); err == nil {
		t.Fatal("maxK=0 accepted")
	}
}

func TestGPUFleetFacade(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e := testEngine(t, g)
	fleet, err := e.GPUFleet([]phast.GPUSpec{phast.GTX580(), phast.GTX480()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Size() != 2 {
		t.Fatalf("size=%d", fleet.Size())
	}
	round := fleet.Round([][]int32{{1, 2}, {3, 4}})
	if round <= 0 {
		t.Fatal("no round time")
	}
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(4)
	for v := int32(0); v < int32(g.NumVertices()); v += 9 {
		if fleet.Dist(1, 1, v) != d.Dist(v) {
			t.Fatalf("fleet dist wrong at %d", v)
		}
	}
	total := fleet.AllPairsModeledTime([]int32{0, 1, 2, 3, 4, 5}, 2, nil)
	if total <= 0 {
		t.Fatal("no all-pairs time")
	}
}

func TestApplicationsFacade(t *testing.T) {
	net, err := phast.GenerateRoadNetwork(phast.RoadParams{Width: 12, Height: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	e := testEngine(t, g)

	res := e.Diameter(nil)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(res.From)
	if d.Dist(res.To) != res.Diameter {
		t.Fatalf("diameter witness broken: %+v", res)
	}

	reaches := e.Reaches(nil)
	if len(reaches) != g.NumVertices() {
		t.Fatal("reaches length")
	}

	sources := []int32{0, 5, 9}
	bw := e.Betweenness(sources)
	if phast.UniqueShortestPaths(g, sources) {
		exact := phast.BetweennessExact(g, sources)
		for v := range bw {
			if diff := bw[v] - exact[v]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("betweenness mismatch at %d: %f vs %f", v, bw[v], exact[v])
			}
		}
	}

	af, err := phast.BuildArcFlags(g, &phast.ArcFlagsOptions{Cells: 4})
	if err != nil {
		t.Fatal(err)
	}
	if af.NumBoundary() == 0 || af.FlagDensity() <= 0 {
		t.Fatal("arc flags empty")
	}
	for trial := 0; trial < 10; trial++ {
		s, tt := int32(trial%g.NumVertices()), int32((trial*7)%g.NumVertices())
		got := af.Query(s, tt)
		d.Run(s)
		if got != d.Dist(tt) {
			t.Fatalf("arc flags query (%d,%d)=%d, want %d", s, tt, got, d.Dist(tt))
		}
		if af.Scanned() <= 0 {
			t.Fatal("scanned counter idle")
		}
	}
	if c := af.Cell(0); c < 0 || c >= 4 {
		t.Fatalf("cell out of range: %d", c)
	}

	// Dijkstra-based flags agree.
	afd, err := phast.BuildArcFlags(g, &phast.ArcFlagsOptions{Cells: 4, UseDijkstra: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := afd.Query(1, 8), af.Query(1, 8); got != want {
		t.Fatalf("flag providers disagree: %d vs %d", got, want)
	}

	// Bidirectional flags are exact too (both providers).
	for _, useDij := range []bool{false, true} {
		bi, err := phast.BuildArcFlags(g, &phast.ArcFlagsOptions{
			Cells: 4, Bidirectional: true, UseDijkstra: useDij,
		})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			s, tt := int32((trial*3)%g.NumVertices()), int32((trial*11)%g.NumVertices())
			got := bi.Query(s, tt)
			d.Run(s)
			if got != d.Dist(tt) {
				t.Fatalf("bidi flags (dij=%v) query (%d,%d)=%d, want %d",
					useDij, s, tt, got, d.Dist(tt))
			}
		}
		if bi.Scanned() < 0 {
			t.Fatal("scanned negative")
		}
	}

	// Approximate betweenness: full sample equals exact.
	if phast.UniqueShortestPaths(g, nil) {
		full := e.BetweennessApprox(g.NumVertices(), 3)
		exact := e.Betweenness(nil)
		for v := range full {
			if diff := full[v] - exact[v]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("approx full sample differs at %d", v)
			}
		}
	}
}

func TestDIMACSFacade(t *testing.T) {
	net := testNetwork(t)
	var buf bytes.Buffer
	if err := phast.WriteDIMACS(&buf, net.Graph, "facade round trip"); err != nil {
		t.Fatal(err)
	}
	back, err := phast.ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(net.Graph) {
		t.Fatal("DIMACS facade round trip changed the graph")
	}
}

func TestBuilderFacade(t *testing.T) {
	b := phast.NewBuilder(3)
	b.MustAddArc(0, 1, 7)
	g := b.Build()
	if g.NumArcs() != 1 {
		t.Fatal("builder facade broken")
	}
	g2, err := phast.FromArcs(2, [][3]int64{{0, 1, 3}})
	if err != nil || g2.NumArcs() != 1 {
		t.Fatal("FromArcs facade broken")
	}
	e := testEngine(t, g2)
	e.Tree(0)
	if e.Dist(1) != 3 || e.Dist(0) != 0 {
		t.Fatal("tiny graph distances wrong")
	}
	if e.Dist(1) == phast.Inf {
		t.Fatal("Inf constant mismatch")
	}
}

func TestSaveLoadHierarchy(t *testing.T) {
	net := testNetwork(t)
	e := testEngine(t, net.Graph)
	var buf bytes.Buffer
	if err := e.SaveHierarchy(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := phast.LoadEngine(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != e.NumVertices() || loaded.NumShortcuts() != e.NumShortcuts() {
		t.Fatal("loaded engine differs")
	}
	e.Tree(9)
	loaded.Tree(9)
	for v := int32(0); v < int32(e.NumVertices()); v += 7 {
		if loaded.Dist(v) != e.Dist(v) {
			t.Fatalf("loaded engine wrong at %d", v)
		}
	}
	if got, want := loaded.Query(3, 77), e.Query(3, 77); got != want {
		t.Fatalf("loaded query %d, want %d", got, want)
	}
	if _, err := phast.LoadEngine(bytes.NewReader([]byte("junk")), nil); err == nil {
		t.Fatal("junk hierarchy accepted")
	}
}

func TestTargetSelectionFacade(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e := testEngine(t, g)
	targets := []int32{4, 40, 99}
	sel, err := e.SelectTargets(targets)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() <= 0 || sel.Size() > g.NumVertices() {
		t.Fatalf("selection size %d", sel.Size())
	}
	q := sel.NewQuery()
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for _, s := range []int32{0, 150, 7} {
		q.Run(s)
		d.Run(s)
		for i, tgt := range targets {
			if q.Dist(i) != d.Dist(tgt) {
				t.Fatalf("one-to-many (%d->%d): %d, want %d", s, tgt, q.Dist(i), d.Dist(tgt))
			}
		}
	}
	tab := sel.Table([]int32{1, 2})
	d.Run(2)
	if tab[1][2] != d.Dist(targets[2]) {
		t.Fatal("table wrong")
	}
	if _, err := e.SelectTargets(nil); err == nil {
		t.Fatal("empty targets accepted")
	}
}

func TestOneWayNetworkEndToEnd(t *testing.T) {
	// Asymmetric graphs (one-way streets) must work through the whole
	// pipeline: CH, PHAST trees, point-to-point queries.
	net, err := phast.GenerateRoadNetwork(phast.RoadParams{
		Width: 18, Height: 16, Seed: 77, OneWayProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	e := testEngine(t, g)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for _, s := range []int32{0, int32(g.NumVertices() / 2)} {
		e.Tree(s)
		d.Run(s)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if e.Dist(v) != d.Dist(v) {
				t.Fatalf("one-way: dist(%d)=%d, want %d", v, e.Dist(v), d.Dist(v))
			}
		}
	}
	// Asymmetry should be observable: some pair with d(s,t) != d(t,s).
	asym := false
	for trial := 0; trial < 50 && !asym; trial++ {
		s, tt := int32(trial%g.NumVertices()), int32((trial*13+1)%g.NumVertices())
		if e.Query(s, tt) != e.Query(tt, s) {
			asym = true
		}
	}
	if !asym {
		t.Log("no asymmetric pair sampled (possible but unlikely); weights may still be symmetric")
	}
}

func TestPresetFacade(t *testing.T) {
	net, err := phast.GenerateRoadNetworkPreset(phast.EuropeXS, phast.TravelTime)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.NumVertices() < 1000 {
		t.Fatal("preset too small")
	}
	if _, err := phast.GenerateRoadNetworkPreset("bogus", phast.TravelDistance); err == nil {
		t.Fatal("bogus preset accepted")
	}
}

// TestServeFacade drives the public serving layer end to end: Serve a
// preprocessed engine, mix Query and QueryMany from several goroutines,
// verify every tree against Dijkstra, and close cleanly.
func TestServeFacade(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e := testEngine(t, g)
	srv, err := e.Serve(&phast.ServeOptions{MaxBatch: 8, Engines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	n := g.NumVertices()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
			for q := 0; q < 10; q++ {
				s := int32(rng.Intn(n))
				res, err := srv.Query(nil, s)
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				d.Run(s)
				for v := int32(0); v < int32(n); v += 5 {
					if res.Dist(v) != d.Dist(v) {
						t.Errorf("src %d: dist(%d)=%d, want %d", s, v, res.Dist(v), d.Dist(v))
						res.Release()
						return
					}
				}
				res.Release()
			}
		}(w)
	}
	wg.Wait()
	// The engine's own cursor stays usable beside the server.
	e.Tree(0)
	if e.Dist(0) != 0 {
		t.Fatal("engine cursor broken while serving")
	}
	results, err := srv.QueryMany(nil, []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint32, n)
	for _, res := range results {
		e.Tree(res.Source())
		e.CopyDistances(buf)
		for v := range buf {
			if res.Dist(int32(v)) != buf[v] {
				t.Fatalf("QueryMany src %d mismatch at %d", res.Source(), v)
			}
		}
		res.Release()
	}
	st := srv.Stats()
	if st.Queries < 43 {
		t.Fatalf("Stats().Queries=%d, want ≥43", st.Queries)
	}
	srv.Close()
	if _, err := srv.Query(nil, 0); err != phast.ErrServerClosed {
		t.Fatalf("closed server returned %v", err)
	}
}
