// Centrality (Section VII-B.c): exact reach and betweenness on a
// synthetic city. Both measures need one shortest-path tree per source
// — exactly the workload PHAST makes tractable on large networks.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"phast"
)

func main() {
	net, err := phast.GenerateRoadNetwork(phast.RoadParams{Width: 28, Height: 24, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	n := g.NumVertices()
	fmt.Printf("instance: %d vertices, %d arcs\n", n, g.NumArcs())

	eng, err := phast.Preprocess(g, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Exactness depends on unique shortest paths; jittered edge lengths
	// make ties rare, but verify instead of assuming.
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	unique := phast.UniqueShortestPaths(g, all[:20])
	fmt.Printf("shortest paths unique (sampled check): %v\n", unique)

	// Reach: high-reach vertices lie on many long shortest paths — they
	// are the "highways" route planners prune everything else against.
	start := time.Now()
	reaches := eng.Reaches(nil) // all sources: exact
	fmt.Printf("exact reach over %d trees: %v\n", n, time.Since(start).Round(time.Millisecond))
	top := topK(reaches, 5)
	fmt.Println("highest-reach vertices (vertex: reach):")
	for _, v := range top {
		fmt.Printf("  %5d: %d\n", v, reaches[v])
	}

	// Betweenness via PHAST trees vs the exact Brandes/Dijkstra baseline.
	sample := all[:n/8]
	start = time.Now()
	bw := eng.Betweenness(sample)
	phastTime := time.Since(start)
	start = time.Now()
	exact := phast.BetweennessExact(g, sample)
	dijkstraTime := time.Since(start)
	maxDiff := 0.0
	for v := range bw {
		if d := bw[v] - exact[v]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("betweenness over %d sources: PHAST %v, Dijkstra-Brandes %v, max deviation %.3g\n",
		len(sample), phastTime.Round(time.Millisecond), dijkstraTime.Round(time.Millisecond), maxDiff)
	vb := topFloat(bw, 3)
	fmt.Println("most-between vertices (vertex: centrality):")
	for _, v := range vb {
		fmt.Printf("  %5d: %.1f\n", v, bw[v])
	}
}

func topK(xs []uint32, k int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}

func topFloat(xs []float64, k int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}
