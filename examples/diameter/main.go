// Diameter (Section VII-B.a): the longest shortest path of a network,
// computed exactly from n shortest-path trees — on the CPU with PHAST
// and on the simulated GPU with GPHAST, whose per-vertex running-max
// kernel mirrors the paper's memory-for-coalescing trade.
package main

import (
	"fmt"
	"log"
	"time"

	"phast"
)

func main() {
	net, err := phast.GenerateRoadNetwork(phast.RoadParams{Width: 26, Height: 22, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	n := g.NumVertices()
	fmt.Printf("instance: %d vertices, %d arcs\n", n, g.NumArcs())

	eng, err := phast.Preprocess(g, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Exact diameter: one tree per vertex.
	start := time.Now()
	res := eng.Diameter(nil)
	cpu := time.Since(start)
	fmt.Printf("exact diameter: %d, between vertices %d and %d (%v for %d trees, %v/tree)\n",
		res.Diameter, res.From, res.To, cpu.Round(time.Millisecond), n, cpu/time.Duration(n))

	// The same result on the simulated GTX 580 via batched GPHAST sweeps;
	// we only sample sources here because every simulated thread really
	// executes, but the running-max kernel makes any batch size exact
	// over the sources it sees.
	gpu, err := eng.GPU(phast.GTX580(), 8)
	if err != nil {
		log.Fatal(err)
	}
	sample := make([]int32, 32)
	for i := range sample {
		sample[i] = int32(i * (n / len(sample)))
	}
	var modeled time.Duration
	best := phast.DiameterResult{}
	for lo := 0; lo < len(sample); lo += 8 {
		gpu.MultiTree(sample[lo : lo+8])
		modeled += gpu.ModeledBatchTime()
		for lane := 0; lane < 8; lane++ {
			for v := int32(0); v < int32(n); v++ {
				if d := gpu.Dist(lane, v); d != phast.Inf && d > best.Diameter {
					best.Diameter = d
					best.From, best.To = sample[lo+lane], v
				}
			}
		}
	}
	fmt.Printf("GPU sample over %d sources: lower bound %d, modeled GTX 580 time %v (%v/tree)\n",
		len(sample), best.Diameter, modeled.Round(time.Microsecond), modeled/time.Duration(len(sample)))
	if best.Diameter > res.Diameter {
		log.Fatal("GPU lower bound exceeds the exact diameter — impossible")
	}
	fmt.Println("(the paper computes the exact diameter of Europe — 18M trees — in ~11 GPU hours)")
}
