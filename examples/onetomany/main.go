// One-to-many distance tables with RPHAST: logistics-style workloads
// (depot-to-customers matrices, k-nearest-POI search) need distances to
// a fixed target set from many sources. Restricting PHAST's sweep to
// the targets' ancestors in the downward graph makes each query
// proportional to the (small) selection instead of the whole network.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"phast"
)

func main() {
	net, err := phast.GenerateRoadNetworkPreset(phast.EuropeS, phast.TravelTime)
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	n := g.NumVertices()
	fmt.Printf("instance: %d vertices, %d arcs\n", n, g.NumArcs())

	eng, err := phast.Preprocess(g, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 25 "customer" targets, 200 "depot" sources.
	rng := rand.New(rand.NewSource(5))
	targets := make([]int32, 25)
	for i := range targets {
		targets[i] = int32(rng.Intn(n))
	}
	sources := make([]int32, 200)
	for i := range sources {
		sources[i] = int32(rng.Intn(n))
	}

	start := time.Now()
	sel, err := eng.SelectTargets(targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target selection: %d of %d vertices (%.1f%%) in %v\n",
		sel.Size(), n, 100*float64(sel.Size())/float64(n),
		time.Since(start).Round(time.Microsecond))

	start = time.Now()
	table := sel.Table(sources)
	perQuery := time.Since(start) / time.Duration(len(sources))
	fmt.Printf("%dx%d distance table in %v (%v per source)\n",
		len(sources), len(targets), time.Since(start).Round(time.Millisecond), perQuery)

	// Compare with full PHAST trees for the same table.
	start = time.Now()
	for _, s := range sources {
		eng.Tree(s)
		for j, t := range targets {
			if eng.Dist(t) != table[indexOf(sources, s)][j] {
				log.Fatalf("table mismatch at source %d target %d", s, t)
			}
		}
	}
	perTree := time.Since(start) / time.Duration(len(sources))
	fmt.Printf("full PHAST trees for the same table: %v per source\n", perTree)
	fmt.Printf("restricted sweep speedup: %.1fx\n", float64(perTree)/float64(perQuery))
}

func indexOf(xs []int32, x int32) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
