// Quickstart: build a graph, preprocess it, and answer shortest-path
// queries — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"phast"
)

func main() {
	// A hand-made graph: 6 vertices, a fast ring road (weights 2) and a
	// slow diagonal (weight 9).
	//
	//      0 --2-- 1 --2-- 2
	//      |        \      |
	//      2         9     2
	//      |          \    |
	//      5 --2-- 4 --2-- 3
	b := phast.NewBuilder(6)
	type edge struct {
		u, v int32
		w    uint32
	}
	for _, e := range []edge{
		{0, 1, 2}, {1, 2, 2}, {2, 3, 2}, {3, 4, 2}, {4, 5, 2}, {5, 0, 2}, {1, 3, 9},
	} {
		b.MustAddArc(e.u, e.v, e.w)
		b.MustAddArc(e.v, e.u, e.w)
	}
	g := b.Build()

	// Preprocess once (contraction hierarchies); query many times.
	eng, err := phast.Preprocess(g, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Single-source: all distances from vertex 0 in one PHAST sweep.
	eng.Tree(0)
	for v := int32(0); v < 6; v++ {
		fmt.Printf("dist(0 -> %d) = %d\n", v, eng.Dist(v))
	}

	// Point-to-point with the CH query, including the unpacked path.
	d := eng.Query(1, 4)
	path := eng.QueryPath(1, 4)
	fmt.Printf("query 1 -> 4: distance %d via %v (the ring beats the %d-weight diagonal)\n",
		d, path, 9)

	// The same works at road-network scale: a synthetic instance with
	// ~4000 vertices preprocesses in well under a second.
	net, err := phast.GenerateRoadNetworkPreset(phast.EuropeXS, phast.TravelTime)
	if err != nil {
		log.Fatal(err)
	}
	big, err := phast.Preprocess(net.Graph, nil)
	if err != nil {
		log.Fatal(err)
	}
	big.Tree(0)
	reached := 0
	for v := int32(0); v < int32(big.NumVertices()); v++ {
		if big.Dist(v) != phast.Inf {
			reached++
		}
	}
	fmt.Printf("road network: one tree reached %d of %d vertices\n", reached, big.NumVertices())
}
