// All-pairs shortest paths — the paper's headline application (it
// motivates PHAST with "a few days instead of several months" on a CPU
// and "about half a day" on a GPU for continental road networks).
//
// This example computes the full n x n distance table of a small
// synthetic network with multi-tree PHAST sweeps, verifies a sample
// against point-to-point CH queries, and extrapolates the rate to the
// paper's 18M-vertex instance.
package main

import (
	"fmt"
	"log"
	"time"

	"phast"
)

func main() {
	net, err := phast.GenerateRoadNetwork(phast.RoadParams{Width: 48, Height: 40, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	n := g.NumVertices()
	fmt.Printf("instance: %d vertices, %d arcs\n", n, g.NumArcs())

	start := time.Now()
	eng, err := phast.Preprocess(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessing: %v\n", time.Since(start).Round(time.Millisecond))

	// Grow k = 16 trees per sweep (Section IV-B) until every vertex has
	// been a source. Row v of the table is filled from tree lane i when
	// vertex batch[i] is the source.
	const k = 16
	sum := uint64(0) // aggregate instead of storing n^2 entries
	pairs := 0
	start = time.Now()
	sources := make([]int32, 0, k)
	for s := 0; s < n; s += k {
		sources = sources[:0]
		for i := s; i < s+k && i < n; i++ {
			sources = append(sources, int32(i))
		}
		lanes := len(sources)%4 == 0
		eng.MultiTree(sources, lanes)
		for i := range sources {
			for v := int32(0); v < int32(n); v++ {
				if d := eng.MultiDist(i, v); d != phast.Inf {
					sum += uint64(d)
					pairs++
				}
			}
		}
	}
	elapsed := time.Since(start)
	perTree := elapsed / time.Duration(n)
	fmt.Printf("all-pairs: %d finite pairs, mean distance %.1f\n",
		pairs, float64(sum)/float64(pairs))
	fmt.Printf("%d trees in %v (%v per tree)\n", n, elapsed.Round(time.Millisecond), perTree)

	// Spot-check 5 entries against independent point-to-point queries.
	for i := 0; i < 5; i++ {
		s, t := int32(i*37%n), int32(i*911%n)
		eng.Tree(s)
		if got, want := eng.Dist(t), eng.Query(s, t); got != want {
			log.Fatalf("mismatch at (%d,%d): tree %d vs query %d", s, t, got, want)
		}
	}
	fmt.Println("spot-check against CH point-to-point queries: ok")

	// Extrapolate the measured per-tree rate (it scales roughly linearly
	// in n) to the paper's Europe instance.
	const europeN = 18_000_000
	scaled := time.Duration(float64(perTree) * float64(europeN) / float64(n) * float64(europeN))
	fmt.Printf("extrapolated all-pairs on %dM vertices, this host, one core: ~%.0f days\n",
		europeN/1_000_000, scaled.Hours()/24)
	fmt.Println("(the paper: 11 hours on a GTX 580, ~200 days for 4-core Dijkstra)")
}
