// Arc flags (Section VII-B.b): preprocessing for point-to-point route
// planning. A partition of the network is computed, one reverse
// shortest-path tree is built per boundary vertex — the step PHAST
// accelerates from hours to minutes — and queries then run a Dijkstra
// that only relaxes arcs flagged for the target's cell.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"phast"
)

func main() {
	net, err := phast.GenerateRoadNetwork(phast.RoadParams{Width: 40, Height: 36, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	fmt.Printf("instance: %d vertices, %d arcs\n", g.NumVertices(), g.NumArcs())

	// Preprocess flags twice: with the Dijkstra baseline and with PHAST
	// reverse trees. Same flags, very different preprocessing cost.
	start := time.Now()
	afSlow, err := phast.BuildArcFlags(g, &phast.ArcFlagsOptions{Cells: 16, UseDijkstra: true})
	if err != nil {
		log.Fatal(err)
	}
	slow := time.Since(start)

	start = time.Now()
	af, err := phast.BuildArcFlags(g, &phast.ArcFlagsOptions{Cells: 16})
	if err != nil {
		log.Fatal(err)
	}
	fast := time.Since(start)
	fmt.Printf("flag preprocessing: %v with Dijkstra trees, %v with PHAST trees (%d boundary vertices)\n",
		slow.Round(time.Millisecond), fast.Round(time.Millisecond), af.NumBoundary())
	fmt.Printf("flag density: %.2f (fraction of set arc/cell flags)\n", af.FlagDensity())

	// Queries: exact distances, far fewer scanned vertices.
	eng, err := phast.Preprocess(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var flagScans int
	const queries = 50
	for i := 0; i < queries; i++ {
		s := int32(rng.Intn(g.NumVertices()))
		t := int32(rng.Intn(g.NumVertices()))
		got := af.Query(s, t)
		flagScans += af.Scanned()
		if want := eng.Query(s, t); got != want {
			log.Fatalf("query (%d,%d): flags say %d, CH says %d", s, t, got, want)
		}
		if other := afSlow.Query(s, t); other != got {
			log.Fatalf("flag providers disagree at (%d,%d)", s, t)
		}
	}
	fmt.Printf("%d random queries: all exact; flag-pruned search scanned %d vertices/query on average (n=%d)\n",
		queries, flagScans/queries, g.NumVertices())
}
