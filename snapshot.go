package phast

import (
	"fmt"
	"io"
	"os"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/snapshot"
)

// SaveSnapshot serializes the *complete* engine — hierarchy with metric
// identity, sweep streams, chunk schedule, orders and levels — in the
// versioned zero-copy snapshot format (see internal/snapshot). Unlike
// SaveHierarchy, which stores only what preprocessing produced and
// leaves every process to re-derive the sweep layout, a snapshot
// restores in milliseconds via LoadSnapshot with all large arrays
// aliasing the file's pages.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	_, err := snapshot.Write(w, e.core.Parts(), e.g)
	return err
}

// SaveSnapshotFile is SaveSnapshot to a file path, written atomically
// (temp file + rename) so a concurrently loading process never maps a
// half-written snapshot.
func (e *Engine) SaveSnapshotFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := e.SaveSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// LoadSnapshot maps a snapshot file and restores the engine around it
// with zero large-array copies: on unix hosts every array aliases the
// PROT_READ shared mapping, so N processes loading the same file share
// one physical copy and cold start is bounded by validation, not
// allocation. The sweep layout (mode, stream kind, chunk schedule) is
// the snapshot's own; of opt only SweepWorkers is honored (the other
// knobs shaped the snapshot when it was saved). opt may be nil.
//
// The mapping stays alive while the engine (or any clone) is reachable
// and is unmapped by a finalizer afterwards. The aliased pages are
// read-only and shared between processes — treat every array reachable
// from the engine as immutable (phastlint's snapshotalias analyzer
// flags writes through //phast:readonly accessors).
func LoadSnapshot(path string, opt *Options) (*Engine, error) {
	start := time.Now()
	snap, err := snapshot.Load(path)
	if err != nil {
		return nil, err
	}
	return engineFromSnapshot(snap, opt, start)
}

// ReadSnapshot restores an engine from a snapshot stream via the
// heap-allocating fallback reader: one aligned buffer holds the file
// image and the arrays alias it, so the decode itself still copies
// nothing. Use LoadSnapshot where mmap is available.
func ReadSnapshot(r io.Reader, opt *Options) (*Engine, error) {
	start := time.Now()
	snap, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return engineFromSnapshot(snap, opt, start)
}

func engineFromSnapshot(snap *snapshot.Snapshot, opt *Options, start time.Time) (*Engine, error) {
	if opt == nil {
		opt = &Options{}
	}
	c, err := core.NewEngineFromParts(snap.Parts, opt.SweepWorkers, core.SnapshotInfo{
		Bytes: snap.Size,
		Hold:  snap.Hold,
	})
	if err != nil {
		return nil, fmt.Errorf("phast: %w", err)
	}
	c.SetColdStart(time.Since(start))
	return &Engine{
		g:             snap.Orig,
		h:             snap.Parts.H,
		core:          c,
		query:         ch.NewQuery(snap.Parts.H),
		permutedQuery: true,
	}, nil
}

// SnapshotBytes returns the on-disk size of the snapshot this engine
// was restored from, or 0 for engines built in-process.
func (e *Engine) SnapshotBytes() int64 { return e.core.SnapshotBytes() }

// ColdStart returns how long restoring this engine from its snapshot
// took, or 0 for engines built in-process.
func (e *Engine) ColdStart() time.Duration { return e.core.ColdStart() }
