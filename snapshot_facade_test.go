package phast

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"phast/internal/roadnet"
)

func snapshotFixture(t testing.TB) (*Graph, *Engine) {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 24, Height: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Preprocess(net.Graph, &Options{CHWorkers: 1, SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph, e
}

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	g, src := snapshotFixture(t)
	n := g.NumVertices()
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	mmapped, err := LoadSnapshot(path, &Options{SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := ReadSnapshot(bytes.NewReader(raw), &Options{SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, loaded := range []*Engine{mmapped, heap} {
		if loaded.SnapshotBytes() != int64(len(raw)) {
			t.Fatalf("SnapshotBytes=%d, file has %d", loaded.SnapshotBytes(), len(raw))
		}
		if loaded.ColdStart() <= 0 {
			t.Fatal("ColdStart not recorded")
		}
		if loaded.NumShortcuts() != src.NumShortcuts() || loaded.NumLevels() != src.NumLevels() {
			t.Fatalf("structure differs: %d/%d shortcuts, %d/%d levels",
				loaded.NumShortcuts(), src.NumShortcuts(), loaded.NumLevels(), src.NumLevels())
		}
		rng := rand.New(rand.NewSource(11))
		a := make([]uint32, n)
		b := make([]uint32, n)
		for trial := 0; trial < 5; trial++ {
			s := int32(rng.Intn(n))
			src.Tree(s)
			loaded.Tree(s)
			src.CopyDistances(a)
			loaded.CopyDistances(b)
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("tree from %d differs at vertex %d: %d vs %d", s, v, a[v], b[v])
				}
			}
			// Point-to-point queries run over the permuted hierarchy with
			// ID translation; they must agree with the original's.
			u, w := int32(rng.Intn(n)), int32(rng.Intn(n))
			if got, want := loaded.Query(u, w), src.Query(u, w); got != want {
				t.Fatalf("query %d->%d: %d, want %d", u, w, got, want)
			}
		}
		// Path endpoints come back in original IDs.
		u, w := int32(3), int32(n-2)
		if p := loaded.QueryPath(u, w); len(p) > 0 {
			if p[0] != u || p[len(p)-1] != w {
				t.Fatalf("path endpoints %d..%d, want %d..%d", p[0], p[len(p)-1], u, w)
			}
			want := src.QueryPath(u, w)
			if len(want) != len(p) {
				t.Fatalf("path length %d, want %d", len(p), len(want))
			}
		}
	}
}

func TestSnapshotLoadedEngineServes(t *testing.T) {
	g, src := snapshotFixture(t)
	n := g.NumVertices()
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), &Options{SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := loaded.Serve(&ServeOptions{Engines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.Query(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	src.Tree(0)
	want := make([]uint32, n)
	src.CopyDistances(want)
	for v := 0; v < n; v++ {
		if res.Distances()[v] != want[v] {
			t.Fatalf("served tree differs at %d", v)
		}
	}
	st := srv.Stats()
	if st.SnapshotBytes != int64(buf.Len()) {
		t.Fatalf("server stats SnapshotBytes=%d, want %d", st.SnapshotBytes, buf.Len())
	}
	if st.ColdStartSeconds <= 0 {
		t.Fatal("server stats ColdStartSeconds not recorded")
	}
}

// TestSnapshotShardedServing is the deployment-shape end-to-end: save a
// snapshot, restore it, cut the graph into shards, and require routed
// and gathered answers identical to the source engine's.
func TestSnapshotShardedServing(t *testing.T) {
	g, src := snapshotFixture(t)
	n := g.NumVertices()
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path, &Options{SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := loaded.ServeSharded(&ShardedServeOptions{Shards: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want := make([]uint32, n)
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 3; trial++ {
		s := int32(rng.Intn(n))
		src.Tree(s)
		src.CopyDistances(want)
		res, err := srv.Tree(nil, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if res.Dist(int32(v)) != want[v] {
				t.Fatalf("sharded tree from %d differs at %d: %d vs %d", s, v, res.Dist(int32(v)), want[v])
			}
		}
		res.Release()
		tgt := int32(rng.Intn(n))
		if d, err := srv.Distance(nil, s, tgt); err != nil || d != want[tgt] {
			t.Fatalf("routed distance %d->%d: %d (err=%v), want %d", s, tgt, d, err, want[tgt])
		}
	}
	st := srv.Stats()
	if len(st.ShardQueries) != 4 || st.SnapshotBytes == 0 || st.ColdStartSeconds <= 0 {
		t.Fatalf("sharded stats incomplete: %+v", st)
	}
}
