package phast_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"phast"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// TestCustomizeFacade covers the public customization surface end to
// end: PreprocessCustomizable, Customize to named sibling metrics,
// differential verification against Dijkstra, CheckInvariants on the
// customized engine (which under -tags phastdebug includes the
// triangle-relaxation fixed-point validator), and a live metric swap
// on a serving TreeServer with epoch-tagged results.
func TestCustomizeFacade(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e, err := phast.PreprocessCustomizable(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Customizable() {
		t.Fatal("PreprocessCustomizable returned a non-customizable engine")
	}
	if e.MetricEpoch() != 0 || e.MetricName() != "" {
		t.Fatalf("reference engine tagged (%q, %d), want (\"\", 0)", e.MetricName(), e.MetricEpoch())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("reference engine invariants: %v", err)
	}
	if we := testEngine(t, g); we.Customizable() {
		t.Fatal("witness-pruned engine claims to be customizable")
	}

	// Three random metrics, each verified distance-identical to Dijkstra
	// on the reweighted graph.
	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for metric := 0; metric < 3; metric++ {
		w := make([]uint32, g.NumArcs())
		for i := range w {
			if rng.Intn(15) == 0 {
				w[i] = graph.Inf
			} else {
				w[i] = uint32(rng.Intn(400))
			}
		}
		truck, err := e.Customize("truck", w)
		if err != nil {
			t.Fatal(err)
		}
		if truck.MetricName() != "truck" || truck.MetricEpoch() != int64(metric+1) {
			t.Fatalf("customized engine tagged (%q, %d), want (\"truck\", %d)",
				truck.MetricName(), truck.MetricEpoch(), metric+1)
		}
		if err := truck.CheckInvariants(); err != nil {
			t.Fatalf("customized engine invariants: %v", err)
		}
		gw, err := g.WithWeights(w)
		if err != nil {
			t.Fatal(err)
		}
		dij := sssp.NewDijkstra(gw, pq.KindBinaryHeap)
		for trial := 0; trial < 3; trial++ {
			s := int32(rng.Intn(n))
			truck.Tree(s)
			dij.Run(s)
			for v := int32(0); v < int32(n); v++ {
				if truck.Dist(v) != dij.Dist(v) {
					t.Fatalf("metric %d dist(%d->%d)=%d, Dijkstra says %d", metric, s, v, truck.Dist(v), dij.Dist(v))
				}
			}
		}
	}

	// Serving-layer swap: install a customized metric mid-traffic and
	// check tags and distances on both metrics.
	w := make([]uint32, g.NumArcs())
	for i, a := range g.ArcList() {
		w[i] = a.Weight/2 + 1
	}
	truck, err := e.Customize("truck", w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := e.Serve(&phast.ServeOptions{Engines: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.QueryMetric(context.Background(), "truck", 0); err == nil {
		t.Fatal("uninstalled metric did not error")
	}
	ep, err := truck.InstallMetric(srv, "truck")
	if err != nil {
		t.Fatal(err)
	}
	gw, err := g.WithWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	dij := sssp.NewDijkstra(gw, pq.KindBinaryHeap)
	dijRef := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	s := int32(7)
	res, err := srv.QueryMetric(context.Background(), "truck", s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric() != "truck" || res.Epoch() != ep {
		t.Fatalf("result tagged (%q, %d), want (\"truck\", %d)", res.Metric(), res.Epoch(), ep)
	}
	dij.Run(s)
	for v := int32(0); v < int32(n); v++ {
		if res.Dist(v) != dij.Dist(v) {
			t.Fatalf("truck dist(%d)=%d, Dijkstra says %d", v, res.Dist(v), dij.Dist(v))
		}
	}
	res.Release()
	def, err := srv.Query(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if def.Metric() != phast.DefaultMetric {
		t.Fatalf("default result tagged %q", def.Metric())
	}
	dijRef.Run(s)
	for v := int32(0); v < int32(n); v++ {
		if def.Dist(v) != dijRef.Dist(v) {
			t.Fatalf("default dist(%d)=%d, Dijkstra says %d", v, def.Dist(v), dijRef.Dist(v))
		}
	}
	def.Release()
}

// TestCustomizedHierarchyRoundTrip pins that a customized hierarchy's
// metric identity survives Save/Load and keeps answering for the
// customized weights.
func TestCustomizedHierarchyRoundTrip(t *testing.T) {
	net := testNetwork(t)
	g := net.Graph
	e, err := phast.PreprocessCustomizable(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]uint32, g.NumArcs())
	for i, a := range g.ArcList() {
		w[i] = a.Weight + 3
	}
	truck, err := e.Customize("truck", w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := truck.SaveHierarchy(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := phast.LoadEngine(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.MetricName() != "truck" || back.MetricEpoch() != truck.MetricEpoch() {
		t.Fatalf("reloaded engine tagged (%q, %d), want (%q, %d)",
			back.MetricName(), back.MetricEpoch(), truck.MetricName(), truck.MetricEpoch())
	}
	s := int32(3)
	truck.Tree(s)
	back.Tree(s)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if truck.Dist(v) != back.Dist(v) {
			t.Fatalf("reloaded dist(%d)=%d, original %d", v, back.Dist(v), truck.Dist(v))
		}
	}
}
