package pq

// heapBase carries the state shared by the binary and 4-ary heaps: the
// element array and a position index so DecreaseKey can find elements.
type heapBase struct {
	vs   []int32  // heap-ordered vertex handles
	keys []uint32 // keys[i] is the key of vs[i]
	pos  []int32  // pos[v] = index of v in vs, or -1
	used []int32  // vertices whose pos entry may be non--1 since Reset
}

func newHeapBase(n int) heapBase {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return heapBase{pos: pos}
}

func (h *heapBase) Contains(v int32) bool { return h.pos[v] >= 0 }
func (h *heapBase) Len() int              { return len(h.vs) }
func (h *heapBase) Empty() bool           { return len(h.vs) == 0 }

func (h *heapBase) Reset() {
	for _, v := range h.used {
		h.pos[v] = -1
	}
	h.used = h.used[:0]
	h.vs = h.vs[:0]
	h.keys = h.keys[:0]
}

func (h *heapBase) swap(i, j int32) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.vs[i]] = i
	h.pos[h.vs[j]] = j
}

// BinaryHeap is a classic array-based binary min-heap with a position
// index for DecreaseKey.
type BinaryHeap struct{ heapBase }

// NewBinaryHeap returns an empty heap for vertex IDs in [0,n).
func NewBinaryHeap(n int) *BinaryHeap { return &BinaryHeap{newHeapBase(n)} }

// Insert implements Queue.
func (h *BinaryHeap) Insert(v int32, key uint32) {
	i := int32(len(h.vs))
	h.vs = append(h.vs, v)
	h.keys = append(h.keys, key)
	h.pos[v] = i
	h.used = append(h.used, v)
	h.up(i)
}

// DecreaseKey implements Queue.
func (h *BinaryHeap) DecreaseKey(v int32, key uint32) {
	i := h.pos[v]
	if key > h.keys[i] {
		panic("pq: DecreaseKey would increase key")
	}
	h.keys[i] = key
	h.up(i)
}

// Update implements Queue.
func (h *BinaryHeap) Update(v int32, key uint32) {
	if h.pos[v] >= 0 {
		h.DecreaseKey(v, key)
	} else {
		h.Insert(v, key)
	}
}

// ExtractMin implements Queue.
func (h *BinaryHeap) ExtractMin() (int32, uint32) {
	v, key := h.vs[0], h.keys[0]
	last := int32(len(h.vs) - 1)
	h.swap(0, last)
	h.vs = h.vs[:last]
	h.keys = h.keys[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, key
}

func (h *BinaryHeap) up(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[p] <= h.keys[i] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *BinaryHeap) down(i int32) {
	n := int32(len(h.vs))
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.keys[r] < h.keys[l] {
			m = r
		}
		if h.keys[i] <= h.keys[m] {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// KHeap is a 4-ary min-heap. Its shallower depth trades more sibling
// comparisons per level for fewer cache lines touched per operation,
// which the paper's reference [18] exploits.
type KHeap struct{ heapBase }

const kArity = 4

// NewKHeap returns an empty 4-ary heap for vertex IDs in [0,n).
func NewKHeap(n int) *KHeap { return &KHeap{newHeapBase(n)} }

// Insert implements Queue.
func (h *KHeap) Insert(v int32, key uint32) {
	i := int32(len(h.vs))
	h.vs = append(h.vs, v)
	h.keys = append(h.keys, key)
	h.pos[v] = i
	h.used = append(h.used, v)
	h.up(i)
}

// DecreaseKey implements Queue.
func (h *KHeap) DecreaseKey(v int32, key uint32) {
	i := h.pos[v]
	if key > h.keys[i] {
		panic("pq: DecreaseKey would increase key")
	}
	h.keys[i] = key
	h.up(i)
}

// Update implements Queue.
func (h *KHeap) Update(v int32, key uint32) {
	if h.pos[v] >= 0 {
		h.DecreaseKey(v, key)
	} else {
		h.Insert(v, key)
	}
}

// ExtractMin implements Queue.
func (h *KHeap) ExtractMin() (int32, uint32) {
	v, key := h.vs[0], h.keys[0]
	last := int32(len(h.vs) - 1)
	h.swap(0, last)
	h.vs = h.vs[:last]
	h.keys = h.keys[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, key
}

func (h *KHeap) up(i int32) {
	for i > 0 {
		p := (i - 1) / kArity
		if h.keys[p] <= h.keys[i] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *KHeap) down(i int32) {
	n := int32(len(h.vs))
	for {
		first := kArity*i + 1
		if first >= n {
			return
		}
		m := first
		end := first + kArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.keys[c] < h.keys[m] {
				m = c
			}
		}
		if h.keys[i] <= h.keys[m] {
			return
		}
		h.swap(i, m)
		i = m
	}
}
