package pq

import (
	"math/rand"
	"testing"
)

func TestFibHeapCascadingCuts(t *testing.T) {
	// Build a deliberately deep structure by consolidating, then cut
	// repeatedly from the same subtree to trigger cascading cuts.
	h := NewFibHeap(64)
	for v := int32(0); v < 32; v++ {
		h.Insert(v, uint32(100+v))
	}
	// Force consolidation.
	v, k := h.ExtractMin()
	if v != 0 || k != 100 {
		t.Fatalf("got (%d,%d), want (0,100)", v, k)
	}
	// Decrease several deep keys below everything else; each must become
	// the new minimum immediately.
	for i, v := range []int32{31, 30, 29, 28, 27} {
		h.DecreaseKey(v, uint32(10-i))
		if got, _ := peekFib(h); got != v {
			t.Fatalf("after decrease %d: min=%d", v, got)
		}
	}
	// Full drain must come out sorted.
	prev := uint32(0)
	for !h.Empty() {
		_, k := h.ExtractMin()
		if k < prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
	}
}

func peekFib(h *FibHeap) (int32, uint32) {
	v, k := h.ExtractMin()
	h.Insert(v, k)
	return v, k
}

func TestFibHeapReinsertAfterExtract(t *testing.T) {
	h := NewFibHeap(4)
	h.Insert(1, 5)
	h.ExtractMin()
	h.Insert(1, 3) // reuse the same node
	v, k := h.ExtractMin()
	if v != 1 || k != 3 {
		t.Fatalf("got (%d,%d)", v, k)
	}
	if !h.Empty() {
		t.Fatal("not empty")
	}
}

// TestFibHeapStressAgainstBinary replays a long random workload against
// both the Fibonacci and binary heaps. Under key ties the two heaps may
// extract different vertices, so the comparison tracks the key multiset
// (which must stay identical) rather than vertex identities; vertices
// are only inserted when absent from both heaps and only decreased when
// present in both, which keeps per-vertex keys synchronized.
func TestFibHeapStressAgainstBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 512
	fib := NewFibHeap(n)
	bin := NewBinaryHeap(n)
	curKey := make([]uint32, n)
	counts := map[uint32]int{}
	for step := 0; step < 20000; step++ {
		switch rng.Intn(3) {
		case 0:
			v := int32(rng.Intn(n))
			if !fib.Contains(v) && !bin.Contains(v) {
				k := uint32(rng.Intn(1 << 20))
				fib.Insert(v, k)
				bin.Insert(v, k)
				curKey[v] = k
				counts[k]++
			}
		case 1:
			v := int32(rng.Intn(n))
			if fib.Contains(v) && bin.Contains(v) {
				nk := uint32(rng.Int63n(int64(curKey[v]) + 1))
				fib.DecreaseKey(v, nk)
				bin.DecreaseKey(v, nk)
				counts[curKey[v]]--
				counts[nk]++
				curKey[v] = nk
			}
		default:
			if fib.Empty() {
				continue
			}
			_, fk := fib.ExtractMin()
			_, bk := bin.ExtractMin()
			if fk != bk {
				t.Fatalf("step %d: fib key %d, binary key %d", step, fk, bk)
			}
			if counts[fk] <= 0 {
				t.Fatalf("step %d: extracted key %d not in reference multiset", step, fk)
			}
			counts[fk]--
			if fib.Len() != bin.Len() {
				t.Fatalf("step %d: sizes diverged: fib %d bin %d", step, fib.Len(), bin.Len())
			}
		}
	}
}

func TestFibHeapEmptyExtractPanics(t *testing.T) {
	h := NewFibHeap(1)
	defer func() {
		if recover() == nil {
			t.Fatal("extract from empty heap did not panic")
		}
	}()
	h.ExtractMin()
}
