package pq

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// monotoneWorkload is a quick.Generator producing a Dijkstra-like
// monotone operation sequence: interleaved inserts (keys within the
// current window), decreases and extractions.
type monotoneWorkload struct {
	maxW uint32
	ops  []op
}

type op struct {
	kind  int    // 0 insert, 1 decrease, 2 extract
	delta uint32 // offset from the window base
}

// Generate implements quick.Generator.
func (monotoneWorkload) Generate(rng *rand.Rand, size int) reflect.Value {
	w := monotoneWorkload{maxW: uint32(1 + rng.Intn(100))}
	nOps := 10 + rng.Intn(200)
	for i := 0; i < nOps; i++ {
		w.ops = append(w.ops, op{
			kind:  rng.Intn(3),
			delta: uint32(rng.Int63n(int64(w.maxW) + 1)),
		})
	}
	return reflect.ValueOf(w)
}

// TestQuickAllQueuesAgree replays each generated workload against all
// four queue implementations simultaneously and demands identical
// extraction keys (extraction identity may differ under ties, so only
// keys and membership are compared) plus agreement with a linear-scan
// reference.
func TestQuickAllQueuesAgree(t *testing.T) {
	prop := func(w monotoneWorkload) bool {
		const n = 256
		queues := make([]Queue, len(allKinds))
		for i, k := range allKinds {
			queues[i] = New(k, n, w.maxW)
		}
		ref := map[int32]uint32{}
		last := uint32(0)
		next := int32(0)
		for _, o := range w.ops {
			switch {
			case o.kind == 0 && next < n:
				key := last + o.delta
				for _, q := range queues {
					q.Insert(next, key)
				}
				ref[next] = key
				next++
			case o.kind == 1 && len(ref) > 0:
				// Decrease an arbitrary member toward the window base.
				// Under key ties the queues may have extracted different
				// elements, so only decrease vertices every queue still
				// holds.
				var v int32 = -1
				for cand := range ref {
					v = cand
					break
				}
				everywhere := true
				for _, q := range queues {
					if !q.Contains(v) {
						everywhere = false
						break
					}
				}
				if everywhere && ref[v] > last {
					nk := last + o.delta%(ref[v]-last+1)
					if nk > ref[v] {
						nk = ref[v]
					}
					for _, q := range queues {
						q.DecreaseKey(v, nk)
					}
					ref[v] = nk
				}
			case o.kind == 2 && len(ref) > 0:
				want := ^uint32(0)
				for _, k := range ref {
					if k < want {
						want = k
					}
				}
				for qi, q := range queues {
					v, k := q.ExtractMin()
					if k != want {
						t.Logf("%s extracted key %d, want %d", allKinds[qi], k, want)
						return false
					}
					if qi == 0 {
						if ref[v] != k {
							t.Logf("extracted %d with key %d, reference says %d", v, k, ref[v])
							return false
						}
						// Remove the element the first queue chose; other
						// queues may pick a different same-key element,
						// only keys are compared.
						delete(ref, v)
					}
				}
				last = want
			}
			for qi := 1; qi < len(queues); qi++ {
				if queues[qi].Len() != queues[0].Len() {
					t.Logf("%s length %d, %s length %d",
						allKinds[qi], queues[qi].Len(), allKinds[0], queues[0].Len())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeapSortProperty: inserting arbitrary keys and draining any
// queue yields them in sorted order (heaps accept non-monotone inserts;
// the bucket queues are fed pre-sorted offsets to stay in-window).
func TestQuickHeapSortProperty(t *testing.T) {
	prop := func(keys []uint32) bool {
		if len(keys) > 512 {
			keys = keys[:512]
		}
		for _, kind := range []Kind{KindBinaryHeap, KindKHeap, KindFibonacci} {
			q := New(kind, len(keys)+1, 0)
			for i, k := range keys {
				q.Insert(int32(i), k)
			}
			sorted := append([]uint32(nil), keys...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, want := range sorted {
				if _, got := q.ExtractMin(); got != want {
					return false
				}
			}
			if !q.Empty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
