package pq

// Dial is Dial's single-level bucket queue [20]: an array of C+1 circular
// buckets, where C is the maximum arc weight. Dijkstra's keys are
// monotone and any queued key lies in [min, min+C], so the bucket of key
// k is k mod (C+1) and ExtractMin scans forward from the last minimum.
//
// Buckets are intrusive doubly-linked lists over per-vertex next/prev
// arrays, so DecreaseKey is O(1) and no allocation happens after
// construction — the paper notes this implementation is comparable to
// the smart queue on one core and scales better on multiple cores.
type Dial struct {
	c       uint32  // maximum arc weight
	buckets []int32 // head vertex of each bucket, -1 if empty
	next    []int32
	prev    []int32
	key     []uint32
	in      []bool
	used    []int32 // vertices touched since Reset
	size    int
	cur     uint32 // key of the last extracted minimum
	started bool
}

// NewDial returns a bucket queue for vertex IDs in [0,n) and arc weights
// up to maxArcWeight.
func NewDial(n int, maxArcWeight uint32) *Dial {
	d := &Dial{
		c:       maxArcWeight,
		buckets: make([]int32, maxArcWeight+1),
		next:    make([]int32, n),
		prev:    make([]int32, n),
		key:     make([]uint32, n),
		in:      make([]bool, n),
	}
	for i := range d.buckets {
		d.buckets[i] = -1
	}
	return d
}

func (d *Dial) bucketOf(key uint32) uint32 { return key % (d.c + 1) }

// Insert implements Queue. Keys must satisfy the monotone window
// invariant key ∈ [cur, cur+C] once extraction has started.
func (d *Dial) Insert(v int32, key uint32) {
	if d.started && (key < d.cur || key > d.cur+d.c) {
		panic("pq: Dial key outside monotone window")
	}
	b := d.bucketOf(key)
	head := d.buckets[b]
	d.next[v] = head
	d.prev[v] = -1
	if head >= 0 {
		d.prev[head] = v
	}
	d.buckets[b] = v
	d.key[v] = key
	d.in[v] = true
	d.used = append(d.used, v)
	d.size++
}

func (d *Dial) unlink(v int32) {
	b := d.bucketOf(d.key[v])
	if d.prev[v] >= 0 {
		d.next[d.prev[v]] = d.next[v]
	} else {
		d.buckets[b] = d.next[v]
	}
	if d.next[v] >= 0 {
		d.prev[d.next[v]] = d.prev[v]
	}
}

// DecreaseKey implements Queue.
func (d *Dial) DecreaseKey(v int32, key uint32) {
	if key > d.key[v] {
		panic("pq: DecreaseKey would increase key")
	}
	d.unlink(v)
	d.size--
	d.in[v] = false
	d.Insert(v, key)
}

// Update implements Queue.
func (d *Dial) Update(v int32, key uint32) {
	if d.in[v] {
		d.DecreaseKey(v, key)
	} else {
		d.Insert(v, key)
	}
}

// ExtractMin implements Queue. It scans at most C+1 buckets starting at
// the previous minimum; total scan work over a Dijkstra run is O(nC) in
// the worst case and O(maxDist) in practice.
func (d *Dial) ExtractMin() (int32, uint32) {
	if d.size == 0 {
		panic("pq: ExtractMin on empty Dial queue")
	}
	if !d.started {
		d.started = true
		// Find the smallest queued key to anchor the window.
		min := uint32(0)
		first := true
		for _, v := range d.used {
			if d.in[v] && (first || d.key[v] < min) {
				min, first = d.key[v], false
			}
		}
		d.cur = min
	}
	for {
		b := d.bucketOf(d.cur)
		for v := d.buckets[b]; v >= 0; v = d.next[v] {
			if d.key[v] == d.cur {
				d.unlink(v)
				d.in[v] = false
				d.size--
				return v, d.cur
			}
		}
		d.cur++
	}
}

// Contains implements Queue.
func (d *Dial) Contains(v int32) bool { return d.in[v] }

// Len implements Queue.
func (d *Dial) Len() int { return d.size }

// Empty implements Queue.
func (d *Dial) Empty() bool { return d.size == 0 }

// Reset implements Queue.
func (d *Dial) Reset() {
	for _, v := range d.used {
		if d.in[v] {
			d.unlink(v)
			d.in[v] = false
		}
	}
	d.used = d.used[:0]
	d.size = 0
	d.cur = 0
	d.started = false
}
