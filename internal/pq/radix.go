package pq

import "math/bits"

// RadixHeap is a monotone multi-level bucket queue in the style of the
// "smart queue" of [3] (multi-level buckets with Ahuja–Mehlhorn–Orlin
// radix structure): bucket i holds elements whose key first differs from
// the last extracted minimum in bit i-1, so there are at most 33 buckets
// and each element is moved at most O(log C) times overall. ExtractMin
// amortizes to O(log C) and the whole Dijkstra run to O(m + n log C);
// like the smart queue, it is close to linear on road networks.
type RadixHeap struct {
	buckets [34][]int32
	bucket  []int8  // bucket[v], -1 if absent
	slot    []int32 // index of v within its bucket slice
	key     []uint32
	used    []int32
	size    int
	last    uint32 // key of the last extracted minimum
}

// NewRadixHeap returns a radix heap for vertex IDs in [0,n).
func NewRadixHeap(n int) *RadixHeap {
	r := &RadixHeap{
		bucket: make([]int8, n),
		slot:   make([]int32, n),
		key:    make([]uint32, n),
	}
	for i := range r.bucket {
		r.bucket[i] = -1
	}
	return r
}

func (r *RadixHeap) bucketIndex(key uint32) int8 {
	return int8(bits.Len32(key ^ r.last)) // 0 iff key == last
}

func (r *RadixHeap) place(v int32, key uint32) {
	b := r.bucketIndex(key)
	r.bucket[v] = b
	r.slot[v] = int32(len(r.buckets[b]))
	r.key[v] = key
	r.buckets[b] = append(r.buckets[b], v)
}

// Insert implements Queue. Keys must be ≥ the last extracted minimum
// (Dijkstra guarantees this).
func (r *RadixHeap) Insert(v int32, key uint32) {
	if key < r.last {
		panic("pq: RadixHeap key below last extracted minimum")
	}
	r.place(v, key)
	r.used = append(r.used, v)
	r.size++
}

func (r *RadixHeap) remove(v int32) {
	b := r.bucket[v]
	s := r.slot[v]
	bk := r.buckets[b]
	lastV := bk[len(bk)-1]
	bk[s] = lastV
	r.slot[lastV] = s
	r.buckets[b] = bk[:len(bk)-1]
	r.bucket[v] = -1
}

// DecreaseKey implements Queue.
func (r *RadixHeap) DecreaseKey(v int32, key uint32) {
	if key > r.key[v] {
		panic("pq: DecreaseKey would increase key")
	}
	if key < r.last {
		panic("pq: RadixHeap key below last extracted minimum")
	}
	r.remove(v)
	r.place(v, key)
}

// Update implements Queue.
func (r *RadixHeap) Update(v int32, key uint32) {
	if r.bucket[v] >= 0 {
		r.DecreaseKey(v, key)
	} else {
		r.Insert(v, key)
	}
}

// ExtractMin implements Queue.
func (r *RadixHeap) ExtractMin() (int32, uint32) {
	if r.size == 0 {
		panic("pq: ExtractMin on empty RadixHeap")
	}
	if len(r.buckets[0]) == 0 {
		// Find the lowest non-empty bucket, locate its minimum key, make
		// that the new reference point and redistribute: every element of
		// bucket i now differs from the new minimum in a bit below i-1,
		// so it falls into a strictly lower bucket. This is the step that
		// bounds each element to O(log C) moves in total.
		i := 1
		for len(r.buckets[i]) == 0 {
			i++
		}
		min := r.key[r.buckets[i][0]]
		for _, v := range r.buckets[i][1:] {
			if r.key[v] < min {
				min = r.key[v]
			}
		}
		r.last = min
		moved := r.buckets[i]
		r.buckets[i] = nil
		for _, v := range moved {
			r.place(v, r.key[v])
		}
	}
	b0 := r.buckets[0]
	v := b0[len(b0)-1]
	r.buckets[0] = b0[:len(b0)-1]
	r.bucket[v] = -1
	r.size--
	return v, r.key[v]
}

// Contains implements Queue.
func (r *RadixHeap) Contains(v int32) bool { return r.bucket[v] >= 0 }

// Len implements Queue.
func (r *RadixHeap) Len() int { return r.size }

// Empty implements Queue.
func (r *RadixHeap) Empty() bool { return r.size == 0 }

// Reset implements Queue.
func (r *RadixHeap) Reset() {
	for _, v := range r.used {
		r.bucket[v] = -1
	}
	for i := range r.buckets {
		r.buckets[i] = r.buckets[i][:0]
	}
	r.used = r.used[:0]
	r.size = 0
	r.last = 0
}
