// Package pq implements the priority queues the paper benchmarks
// Dijkstra's algorithm with (Section II-A and Table I):
//
//   - BinaryHeap: the textbook array heap, O(m log n) Dijkstra.
//   - KHeap: a 4-ary heap (the "k-heap" of [18]), shallower and more
//     cache-friendly than the binary heap.
//   - Dial: Dial's single-level bucket queue [20], O(m + nC).
//   - RadixHeap: a monotone multi-level bucket structure standing in for
//     the "smart queue" [3]; O(m + n log C) worst case, linear in
//     practice on road networks.
//
// All queues store uint32 keys for int32 vertex handles in [0,n), support
// Insert / DecreaseKey / ExtractMin / Reset, and are reusable across many
// shortest-path computations without reallocation (Reset is O(size), not
// O(n)), which matters when building n trees.
package pq

// Queue is the interface Dijkstra's algorithm drives.
//
// Keys passed to ExtractMin are non-decreasing over the lifetime of a
// Dijkstra run, which Dial and RadixHeap rely on (monotone queues); the
// heaps do not care.
type Queue interface {
	// Insert adds v with the given key. v must not be in the queue.
	Insert(v int32, key uint32)
	// DecreaseKey lowers the key of v, which must be in the queue.
	DecreaseKey(v int32, key uint32)
	// Update inserts v or decreases its key, whichever applies.
	Update(v int32, key uint32)
	// ExtractMin removes and returns a minimum-key element.
	// It must not be called on an empty queue.
	ExtractMin() (v int32, key uint32)
	// Contains reports whether v is currently queued.
	Contains(v int32) bool
	// Len returns the number of queued elements.
	Len() int
	// Empty reports Len() == 0.
	Empty() bool
	// Reset empties the queue for reuse, in time proportional to the
	// number of elements that passed through it since the last Reset.
	Reset()
}

// Kind names a queue implementation; the experiment driver sweeps it.
type Kind string

const (
	KindBinaryHeap Kind = "binary heap"
	KindKHeap      Kind = "4-heap"
	KindFibonacci  Kind = "Fibonacci heap"
	KindDial       Kind = "Dial"
	KindTwoLevel   Kind = "2-level buckets"
	KindRadix      Kind = "smart queue"
)

// Kinds lists the implementations in Table I order (the experiment
// driver adds the 2-level bucket row; the 4-ary and Fibonacci heaps are
// reference implementations outside the paper's table).
var Kinds = []Kind{KindBinaryHeap, KindDial, KindTwoLevel, KindRadix}

// New constructs a queue of the given kind for vertex IDs in [0,n).
// maxArcWeight is required by the bucket-based queues (Dial needs C+1
// buckets; the radix heap only needs it to size its bucket count).
func New(kind Kind, n int, maxArcWeight uint32) Queue {
	switch kind {
	case KindBinaryHeap:
		return NewBinaryHeap(n)
	case KindKHeap:
		return NewKHeap(n)
	case KindFibonacci:
		return NewFibHeap(n)
	case KindDial:
		return NewDial(n, maxArcWeight)
	case KindTwoLevel:
		return NewTwoLevel(n, maxArcWeight)
	case KindRadix:
		return NewRadixHeap(n)
	default:
		panic("pq: unknown queue kind " + string(kind))
	}
}
