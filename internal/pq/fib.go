package pq

// FibHeap is a Fibonacci heap [19] (Fredman–Tarjan), the structure
// behind Dijkstra's O(m + n log n) bound that the paper cites in
// Section II-A. Amortized O(1) Insert/DecreaseKey and O(log n)
// ExtractMin. In practice its pointer structure loses to the flat
// array queues on road networks — which is exactly why the paper
// benchmarks buckets and heaps instead — but it completes the queue
// family and serves as another cross-checked reference implementation.
//
// Nodes are preallocated per vertex; all links are int32 indices into
// flat arrays, so Reset is O(touched) and no pointers burden the GC.
type FibHeap struct {
	key    []uint32
	parent []int32
	child  []int32 // one child; siblings form a circular doubly-linked list
	left   []int32
	right  []int32
	degree []int16
	marked []bool
	in     []bool
	min    int32
	size   int
	used   []int32
	// scratch for consolidation, sized ~log_phi(n)+2
	ranks []int32
}

// NewFibHeap returns an empty Fibonacci heap for vertex IDs in [0,n).
func NewFibHeap(n int) *FibHeap {
	h := &FibHeap{
		key:    make([]uint32, n),
		parent: make([]int32, n),
		child:  make([]int32, n),
		left:   make([]int32, n),
		right:  make([]int32, n),
		degree: make([]int16, n),
		marked: make([]bool, n),
		in:     make([]bool, n),
		min:    -1,
		ranks:  make([]int32, 64),
	}
	return h
}

// Insert implements Queue.
func (h *FibHeap) Insert(v int32, key uint32) {
	h.key[v] = key
	h.parent[v] = -1
	h.child[v] = -1
	h.degree[v] = 0
	h.marked[v] = false
	h.in[v] = true
	h.used = append(h.used, v)
	h.addRoot(v)
	h.size++
}

// addRoot splices v into the root list and updates the minimum.
func (h *FibHeap) addRoot(v int32) {
	if h.min < 0 {
		h.left[v] = v
		h.right[v] = v
		h.min = v
		return
	}
	// insert to the right of min
	r := h.right[h.min]
	h.right[h.min] = v
	h.left[v] = h.min
	h.right[v] = r
	h.left[r] = v
	if h.key[v] < h.key[h.min] {
		h.min = v
	}
}

// removeFromList unlinks v from its sibling ring.
func (h *FibHeap) removeFromList(v int32) {
	l, r := h.left[v], h.right[v]
	h.right[l] = r
	h.left[r] = l
}

// DecreaseKey implements Queue.
func (h *FibHeap) DecreaseKey(v int32, key uint32) {
	if key > h.key[v] {
		panic("pq: DecreaseKey would increase key")
	}
	h.key[v] = key
	p := h.parent[v]
	if p >= 0 && h.key[v] < h.key[p] {
		h.cut(v, p)
		h.cascadingCut(p)
	}
	if h.key[v] < h.key[h.min] {
		h.min = v
	}
}

// cut detaches v from parent p and makes it a root.
func (h *FibHeap) cut(v, p int32) {
	if h.child[p] == v {
		if h.right[v] != v {
			h.child[p] = h.right[v]
		} else {
			h.child[p] = -1
		}
	}
	h.removeFromList(v)
	h.degree[p]--
	h.parent[v] = -1
	h.marked[v] = false
	h.addRoot(v)
}

func (h *FibHeap) cascadingCut(v int32) {
	for {
		p := h.parent[v]
		if p < 0 {
			return
		}
		if !h.marked[v] {
			h.marked[v] = true
			return
		}
		h.cut(v, p)
		v = p
	}
}

// Update implements Queue.
func (h *FibHeap) Update(v int32, key uint32) {
	if h.in[v] {
		h.DecreaseKey(v, key)
	} else {
		h.Insert(v, key)
	}
}

// ExtractMin implements Queue.
func (h *FibHeap) ExtractMin() (int32, uint32) {
	if h.size == 0 {
		panic("pq: ExtractMin on empty FibHeap")
	}
	z := h.min
	// Promote z's children to roots.
	if c := h.child[z]; c >= 0 {
		for {
			next := h.right[c]
			h.parent[c] = -1
			h.marked[c] = false
			last := c == next || next == h.child[z]
			h.left[c] = c
			h.right[c] = c
			h.addRoot(c)
			if last {
				break
			}
			c = next
		}
		h.child[z] = -1
	}
	// Remove z from the root list.
	if h.right[z] == z {
		h.min = -1
	} else {
		h.min = h.right[z]
		h.removeFromList(z)
	}
	h.in[z] = false
	h.size--
	if h.min >= 0 {
		h.consolidate()
	}
	return z, h.key[z]
}

// consolidate links roots of equal degree until all degrees are unique,
// then rebuilds the root list and minimum.
func (h *FibHeap) consolidate() {
	for i := range h.ranks {
		h.ranks[i] = -1
	}
	// Walk the current root ring, collecting roots first (the ring is
	// rewired during linking).
	var roots []int32
	v := h.min
	for {
		roots = append(roots, v)
		v = h.right[v]
		if v == h.min {
			break
		}
	}
	for _, x := range roots {
		for {
			d := h.degree[x]
			y := h.ranks[d]
			if y < 0 {
				h.ranks[d] = x
				break
			}
			h.ranks[d] = -1
			if h.key[y] < h.key[x] || (h.key[y] == h.key[x] && y < x) {
				x, y = y, x
			}
			// y becomes a child of x.
			h.removeFromList(y)
			h.parent[y] = x
			h.marked[y] = false
			if c := h.child[x]; c < 0 {
				h.child[x] = y
				h.left[y] = y
				h.right[y] = y
			} else {
				r := h.right[c]
				h.right[c] = y
				h.left[y] = c
				h.right[y] = r
				h.left[r] = y
			}
			h.degree[x]++
		}
	}
	// Rebuild the root ring from the rank table.
	h.min = -1
	for _, x := range h.ranks {
		if x < 0 {
			continue
		}
		h.left[x] = x
		h.right[x] = x
		h.addRoot(x)
	}
}

// Contains implements Queue.
func (h *FibHeap) Contains(v int32) bool { return h.in[v] }

// Len implements Queue.
func (h *FibHeap) Len() int { return h.size }

// Empty implements Queue.
func (h *FibHeap) Empty() bool { return h.size == 0 }

// Reset implements Queue.
func (h *FibHeap) Reset() {
	for _, v := range h.used {
		h.in[v] = false
	}
	h.used = h.used[:0]
	h.min = -1
	h.size = 0
}
