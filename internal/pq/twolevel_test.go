package pq

import (
	"math/rand"
	"testing"
)

// checkTwoLevelInvariants walks the bucket structure and verifies that
// every reference member is linked exactly where its key says it should
// be — the check that caught a double-filing bug in the pre-extraction
// reanchor path.
func checkTwoLevelInvariants(t *testing.T, q *TwoLevel, ref map[int32]uint32, step int) {
	t.Helper()
	for v, k := range ref {
		if q.where[v] < 0 {
			t.Fatalf("step %d: member %d (key %d) marked absent", step, v, k)
		}
		if q.key[v] != k {
			t.Fatalf("step %d: member %d has key %d, want %d", step, v, q.key[v], k)
		}
		var list []int32
		var idx uint32
		if q.where[v] == 0 {
			list, idx = q.low, k-q.lowBase
		} else {
			list, idx = q.high, (k-q.topBase)/q.b
		}
		if int(idx) >= len(list) {
			t.Fatalf("step %d: member %d key %d files outside its level (lowBase=%d topBase=%d)",
				step, v, k, q.lowBase, q.topBase)
		}
		found := false
		for x := list[idx]; x >= 0; x = q.next[x] {
			if x == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("step %d: member %d key %d not linked in bucket %d", step, v, k, idx)
		}
	}
	if q.Len() != len(ref) {
		t.Fatalf("step %d: Len()=%d, reference has %d", step, q.Len(), len(ref))
	}
}

// TestTwoLevelStructuralInvariants replays random monotone workloads
// (including pre-extraction decreases that force reanchoring) and
// validates the full bucket structure after every operation.
func TestTwoLevelStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200
	const maxW = 64
	for trial := 0; trial < 20; trial++ {
		q := NewTwoLevel(n, maxW)
		ref := map[int32]uint32{}
		last := uint32(0)
		inserted := int32(0)
		for step := 0; step < 600; step++ {
			switch {
			case inserted < n && (len(ref) == 0 || rng.Intn(3) != 0):
				key := last + uint32(rng.Intn(maxW+1))
				q.Insert(inserted, key)
				ref[inserted] = key
				inserted++
			case rng.Intn(2) == 0 && len(ref) > 0:
				var v int32 = -1
				for cand := range ref {
					v = cand
					break
				}
				if ref[v] > last {
					nk := last + uint32(rng.Intn(int(ref[v]-last)+1))
					q.DecreaseKey(v, nk)
					ref[v] = nk
				}
			default:
				if len(ref) == 0 {
					continue
				}
				v, k := q.ExtractMin()
				want := ^uint32(0)
				for _, rk := range ref {
					if rk < want {
						want = rk
					}
				}
				if k != want || ref[v] != k {
					t.Fatalf("trial %d step %d: extracted (%d,%d), reference min %d / key %d",
						trial, step, v, k, want, ref[v])
				}
				delete(ref, v)
				last = k
			}
			checkTwoLevelInvariants(t, q, ref, step)
		}
	}
}

// TestTwoLevelPreExtractionReanchor pins the regression: a decrease
// below the anchored window before any extraction must rebuild the
// window without double-filing the decreased element.
func TestTwoLevelPreExtractionReanchor(t *testing.T) {
	q := NewTwoLevel(8, 64)
	q.Insert(0, 57)
	q.Insert(1, 37)
	q.DecreaseKey(0, 35)
	q.Insert(2, 49)
	q.Insert(3, 31)
	q.Insert(4, 46)
	q.DecreaseKey(1, 2) // below the window anchored at 57: reanchor
	want := []uint32{2, 31, 35, 46, 49}
	for i, w := range want {
		v, k := q.ExtractMin()
		if k != w {
			t.Fatalf("extraction %d: key %d, want %d", i, k, w)
		}
		if q.Contains(v) {
			t.Fatalf("extracted %d still contained", v)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty")
	}
}

func TestTwoLevelExpansionAcrossManyWindows(t *testing.T) {
	// Push keys spanning several expansion rounds and drain.
	q := NewTwoLevel(128, 100)
	keys := make([]uint32, 0, 100)
	rng := rand.New(rand.NewSource(7))
	for v := int32(0); v < 100; v++ {
		k := uint32(rng.Intn(101))
		q.Insert(v, k)
		keys = append(keys, k)
	}
	prev := uint32(0)
	for range keys {
		_, k := q.ExtractMin()
		if k < prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
	}
}

func TestTwoLevelMonotoneWindowPanic(t *testing.T) {
	q := NewTwoLevel(4, 16)
	q.Insert(0, 5)
	q.ExtractMin()
	defer func() {
		if recover() == nil {
			t.Fatal("TwoLevel accepted key below window after extraction")
		}
	}()
	q.Insert(1, 1)
}
