package pq

// TwoLevel is a two-level bucket queue — the classic multi-level bucket
// structure of [21] (Denardo–Fox, here with L=2) that the "smart queue"
// [3] builds on. The key window above the last extracted minimum is
// split into a unit-width "low" range of b buckets and b+1 wide "high"
// buckets of width b each, with b = ceil(√(C+1)); when the low range is
// exhausted the first non-empty wide bucket is expanded into it. Each
// element is moved at most once from a wide to a unit bucket, and
// ExtractMin scans O(√C) buckets instead of Dial's O(C).
//
// Invariants: topBase == lowBase + b at all times; unit buckets below
// the cursor are empty; expansion only runs on an empty low range.
type TwoLevel struct {
	b         uint32  // bucket width = number of unit buckets
	topN      uint32  // number of wide buckets (b+1)
	lowBase   uint32  // key of unit bucket 0
	topBase   uint32  // key of wide bucket 0 == lowBase + b
	lowCur    uint32  // scan cursor into the unit buckets
	low       []int32 // unit buckets: head vertex or -1
	high      []int32 // wide buckets: head vertex or -1
	next      []int32
	prev      []int32
	key       []uint32
	where     []int8 // -1 absent, 0 low, 1 high
	used      []int32
	size      int
	started   bool
	extracted bool // monotone window is only binding after the first ExtractMin
}

// NewTwoLevel returns a two-level bucket queue for vertex IDs in [0,n)
// and arc weights up to maxArcWeight.
func NewTwoLevel(n int, maxArcWeight uint32) *TwoLevel {
	b := uint32(1)
	for b*b < maxArcWeight+1 {
		b++
	}
	q := &TwoLevel{
		b:     b,
		topN:  b + 1,
		next:  make([]int32, n),
		prev:  make([]int32, n),
		key:   make([]uint32, n),
		where: make([]int8, n),
	}
	q.low = make([]int32, b)
	q.high = make([]int32, q.topN)
	for i := range q.low {
		q.low[i] = -1
	}
	for i := range q.high {
		q.high[i] = -1
	}
	for i := range q.where {
		q.where[i] = -1
	}
	return q
}

func (q *TwoLevel) push(list []int32, idx uint32, v int32) {
	head := list[idx]
	q.next[v] = head
	q.prev[v] = -1
	if head >= 0 {
		q.prev[head] = v
	}
	list[idx] = v
}

func (q *TwoLevel) unlink(v int32) {
	var list []int32
	var idx uint32
	if q.where[v] == 0 {
		list = q.low
		idx = q.key[v] - q.lowBase
	} else {
		list = q.high
		idx = (q.key[v] - q.topBase) / q.b
	}
	if q.prev[v] >= 0 {
		q.next[q.prev[v]] = q.next[v]
	} else {
		list[idx] = q.next[v]
	}
	if q.next[v] >= 0 {
		q.prev[q.next[v]] = q.prev[v]
	}
}

// place files v under its key into the unit or wide range.
func (q *TwoLevel) place(v int32, key uint32) {
	if key < q.lowBase {
		panic("pq: TwoLevel key below monotone window")
	}
	q.key[v] = key
	if key < q.topBase {
		q.where[v] = 0
		q.push(q.low, key-q.lowBase, v)
		return
	}
	idx := (key - q.topBase) / q.b
	if idx >= q.topN {
		panic("pq: TwoLevel key outside monotone window")
	}
	q.where[v] = 1
	q.push(q.high, idx, v)
}

// Insert implements Queue.
func (q *TwoLevel) Insert(v int32, key uint32) {
	if !q.started {
		q.lowBase = key
		q.topBase = key + q.b
		q.lowCur = 0
		q.started = true
	} else if key < q.lowBase {
		q.reanchor(key)
	}
	q.place(v, key)
	q.used = append(q.used, v)
	q.size++
}

// DecreaseKey implements Queue.
func (q *TwoLevel) DecreaseKey(v int32, key uint32) {
	if key > q.key[v] {
		panic("pq: DecreaseKey would increase key")
	}
	q.unlink(v)
	// Mark v absent before a possible reanchor so the rebuild does not
	// re-file it a second time with its stale key.
	q.where[v] = -1
	if key < q.lowBase {
		q.reanchor(key)
	}
	q.place(v, key)
}

// reanchor rebuilds the window around a smaller base key. Dijkstra
// never needs this after the first extraction (keys are monotone), so
// it is only legal pre-extraction — matching Dial's behavior of fixing
// its window at the first ExtractMin.
func (q *TwoLevel) reanchor(key uint32) {
	if q.extracted {
		panic("pq: TwoLevel key below monotone window")
	}
	var members []int32
	var keys []uint32
	for _, v := range q.used {
		if q.where[v] >= 0 {
			members = append(members, v)
			keys = append(keys, q.key[v])
			q.unlink(v)
			q.where[v] = -1
		}
	}
	q.lowBase = key
	q.topBase = key + q.b
	q.lowCur = 0
	for i, v := range members {
		q.place(v, keys[i])
	}
}

// Update implements Queue.
func (q *TwoLevel) Update(v int32, key uint32) {
	if q.where[v] >= 0 {
		q.DecreaseKey(v, key)
	} else {
		q.Insert(v, key)
	}
}

// ExtractMin implements Queue.
func (q *TwoLevel) ExtractMin() (int32, uint32) {
	if q.size == 0 {
		panic("pq: ExtractMin on empty TwoLevel queue")
	}
	q.extracted = true
	for {
		for off := q.lowCur; off < q.b; off++ {
			if v := q.low[off]; v >= 0 {
				q.low[off] = q.next[v]
				if q.next[v] >= 0 {
					q.prev[q.next[v]] = -1
				}
				q.where[v] = -1
				q.size--
				q.lowCur = off // monotone: later keys land at >= off
				return v, q.key[v]
			}
		}
		// Low range exhausted: expand the first non-empty wide bucket.
		expanded := false
		for t := uint32(0); t < q.topN; t++ {
			if q.high[t] < 0 {
				continue
			}
			base := q.topBase + t*q.b
			v := q.high[t]
			q.high[t] = -1
			// Advance the window before re-filing so place() uses the
			// new bases; all moved keys lie in [base, base+b).
			shift := t + 1
			for s := uint32(0); s+shift < q.topN; s++ {
				q.high[s] = q.high[s+shift]
			}
			for s := q.topN - shift; s < q.topN; s++ {
				q.high[s] = -1
			}
			q.lowBase = base
			q.topBase = base + q.b
			q.lowCur = 0
			for v >= 0 {
				nxt := q.next[v]
				q.where[v] = 0
				q.push(q.low, q.key[v]-base, v)
				v = nxt
			}
			expanded = true
			break
		}
		if !expanded {
			panic("pq: TwoLevel lost elements (corrupt state)")
		}
	}
}

// Contains implements Queue.
func (q *TwoLevel) Contains(v int32) bool { return q.where[v] >= 0 }

// Len implements Queue.
func (q *TwoLevel) Len() int { return q.size }

// Empty implements Queue.
func (q *TwoLevel) Empty() bool { return q.size == 0 }

// Reset implements Queue.
func (q *TwoLevel) Reset() {
	for _, v := range q.used {
		if q.where[v] >= 0 {
			q.unlink(v)
			q.where[v] = -1
		}
	}
	q.used = q.used[:0]
	q.size = 0
	q.lowBase = 0
	q.topBase = 0
	q.lowCur = 0
	q.started = false
	q.extracted = false
}
