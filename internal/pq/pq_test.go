package pq

import (
	"math/rand"
	"sort"
	"testing"
)

// allKinds includes the 4-heap and Fibonacci heap, which Table I omits
// but the package provides; every implementation must satisfy the same
// contract.
var allKinds = []Kind{KindBinaryHeap, KindKHeap, KindFibonacci, KindDial, KindTwoLevel, KindRadix}

func newQueue(t *testing.T, kind Kind, n int, maxW uint32) Queue {
	t.Helper()
	return New(kind, n, maxW)
}

func TestExtractMinOrder(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			q := newQueue(t, kind, 10, 100)
			keys := []uint32{37, 5, 99, 0, 42, 5, 88, 17, 63, 21}
			for v, k := range keys {
				q.Insert(int32(v), k)
			}
			sorted := append([]uint32(nil), keys...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for i, want := range sorted {
				if q.Empty() {
					t.Fatalf("queue empty after %d extractions", i)
				}
				_, k := q.ExtractMin()
				if k != want {
					t.Fatalf("extraction %d: key=%d, want %d", i, k, want)
				}
			}
			if !q.Empty() {
				t.Fatal("queue not empty at the end")
			}
		})
	}
}

func TestDecreaseKey(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			q := newQueue(t, kind, 4, 100)
			q.Insert(0, 50)
			q.Insert(1, 60)
			q.Insert(2, 70)
			q.DecreaseKey(2, 10)
			v, k := q.ExtractMin()
			if v != 2 || k != 10 {
				t.Fatalf("got (%d,%d), want (2,10)", v, k)
			}
			q.Update(1, 20) // decrease via Update
			q.Update(3, 30) // insert via Update
			v, k = q.ExtractMin()
			if v != 1 || k != 20 {
				t.Fatalf("got (%d,%d), want (1,20)", v, k)
			}
			v, k = q.ExtractMin()
			if v != 3 || k != 30 {
				t.Fatalf("got (%d,%d), want (3,30)", v, k)
			}
		})
	}
}

func TestContainsLen(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			q := newQueue(t, kind, 5, 10)
			if q.Contains(3) || q.Len() != 0 || !q.Empty() {
				t.Fatal("fresh queue not empty")
			}
			q.Insert(3, 7)
			if !q.Contains(3) || q.Len() != 1 {
				t.Fatal("Insert not reflected")
			}
			q.ExtractMin()
			if q.Contains(3) || q.Len() != 0 {
				t.Fatal("ExtractMin not reflected")
			}
		})
	}
}

func TestResetReuse(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			q := newQueue(t, kind, 8, 50)
			for round := 0; round < 3; round++ {
				q.Insert(1, 40)
				q.Insert(2, 20)
				q.Reset()
				if !q.Empty() || q.Contains(1) || q.Contains(2) {
					t.Fatalf("round %d: Reset left state behind", round)
				}
				// After reset the monotone queues must accept small keys again.
				q.Insert(3, 1)
				v, k := q.ExtractMin()
				if v != 3 || k != 1 {
					t.Fatalf("round %d: got (%d,%d)", round, v, k)
				}
				q.Reset()
			}
		})
	}
}

// TestMonotoneSequenceAgainstReference drives each queue with a random
// monotone workload (as Dijkstra would) and cross-checks every extraction
// against a straightforward reference implementation.
func TestMonotoneSequenceAgainstReference(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			const n = 200
			const maxW = 64
			for trial := 0; trial < 20; trial++ {
				q := newQueue(t, kind, n, maxW)
				ref := map[int32]uint32{}
				last := uint32(0)
				inserted := int32(0)
				for step := 0; step < 500; step++ {
					switch {
					case inserted < n && (len(ref) == 0 || rng.Intn(3) != 0):
						key := last + uint32(rng.Intn(maxW+1))
						q.Insert(inserted, key)
						ref[inserted] = key
						inserted++
					case rng.Intn(2) == 0 && len(ref) > 0:
						// decrease a random element, staying >= last
						var v int32 = -1
						for cand := range ref {
							v = cand
							break
						}
						if ref[v] > last {
							nk := last + uint32(rng.Intn(int(ref[v]-last)+1))
							q.DecreaseKey(v, nk)
							ref[v] = nk
						}
					default:
						if len(ref) == 0 {
							continue
						}
						v, k := q.ExtractMin()
						want := uint32(1<<32 - 1)
						for _, rk := range ref {
							if rk < want {
								want = rk
							}
						}
						if k != want {
							t.Fatalf("trial %d step %d: extracted key %d, want %d", trial, step, k, want)
						}
						if ref[v] != k {
							t.Fatalf("trial %d step %d: vertex %d had key %d, queue said %d", trial, step, v, ref[v], k)
						}
						delete(ref, v)
						last = k
					}
				}
			}
		})
	}
}

func TestDialWindowPanic(t *testing.T) {
	q := NewDial(4, 10)
	q.Insert(0, 5)
	q.ExtractMin()
	defer func() {
		if recover() == nil {
			t.Fatal("Dial accepted key outside monotone window")
		}
	}()
	q.Insert(1, 100) // window is [5,15]
}

func TestRadixMonotonePanic(t *testing.T) {
	q := NewRadixHeap(4)
	q.Insert(0, 50)
	q.ExtractMin()
	defer func() {
		if recover() == nil {
			t.Fatal("RadixHeap accepted key below last minimum")
		}
	}()
	q.Insert(1, 10)
}

func TestDecreaseKeyIncreasePanics(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			q := newQueue(t, kind, 2, 100)
			q.Insert(0, 10)
			defer func() {
				if recover() == nil {
					t.Fatal("DecreaseKey accepted a larger key")
				}
			}()
			q.DecreaseKey(0, 20)
		})
	}
}

func TestDuplicateKeysAllExtracted(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			q := newQueue(t, kind, 6, 10)
			for v := int32(0); v < 6; v++ {
				q.Insert(v, 7)
			}
			seen := map[int32]bool{}
			for i := 0; i < 6; i++ {
				v, k := q.ExtractMin()
				if k != 7 {
					t.Fatalf("key=%d, want 7", k)
				}
				if seen[v] {
					t.Fatalf("vertex %d extracted twice", v)
				}
				seen[v] = true
			}
		})
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an unknown kind")
		}
	}()
	New(Kind("bogus"), 1, 1)
}
