package ch

import (
	"bytes"
	"math/rand"
	"testing"

	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// FuzzHierarchyRoundTrip drives ReadHierarchy with arbitrary bytes. The
// contract: it must never panic (and never allocate proportionally to a
// forged length header), and anything it accepts must serialize back
// and reload to an identical hierarchy — the same lossless round trip
// TestHierarchyRoundTrip pins for well-formed input.
func FuzzHierarchyRoundTrip(f *testing.F) {
	// Seed with a genuine serialized hierarchy plus targeted mutations of
	// it; testdata/fuzz/FuzzHierarchyRoundTrip holds checked-in seeds.
	rng := rand.New(rand.NewSource(84))
	h := Build(gridGraph(rng, 5, 4, 10), Options{Workers: 1})
	h.MetricEpoch = 0x1_0000_002A // straddles both words of the epoch pair
	h.MetricName = "truck"
	var buf bytes.Buffer
	if err := WriteHierarchy(&buf, h); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])                                    // magic+version, then truncated
	f.Add(append([]byte(nil), valid[:len(valid)-3]...)) // torn tail
	flip := append([]byte(nil), valid...)
	flip[41] ^= 0xFF // corrupt the rank array's length word (after the 21-byte metric block)
	f.Add(flip)
	huge := append([]byte(nil), valid...)
	huge[8], huge[9], huge[10], huge[11] = 0xFF, 0xFF, 0xFF, 0x7F // forged n
	f.Add(huge)
	// Metric-block mutations: a forged arc count (must be rejected once
	// the graph is read) and a forged name length (must be bounds-checked,
	// never a large allocation). The v2 block starts at byte 20.
	badArcs := append([]byte(nil), valid...)
	badArcs[28] ^= 0x55 // metricArcs word
	f.Add(badArcs)
	badName := append([]byte(nil), valid...)
	badName[32], badName[33], badName[34], badName[35] = 0xFF, 0xFF, 0xFF, 0x7F // forged name length
	f.Add(badName)
	// A hand-built version-1 file: same payload with the version word
	// downgraded and the metric block (16 bytes + name) cut out, covering
	// the legacy-read path that yields epoch 0 and an empty name.
	v1 := append([]byte(nil), valid[:20]...)
	v1[4] = 1 // version word
	v1 = append(v1, valid[20+16+len(h.MetricName):]...)
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHierarchy(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics and OOM are not
		}
		var out bytes.Buffer
		if err := WriteHierarchy(&out, h); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadHierarchy(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumShortcuts != h.NumShortcuts || back.MaxLevel != h.MaxLevel {
			t.Fatal("round trip changed metadata")
		}
		if back.MetricEpoch != h.MetricEpoch || back.MetricName != h.MetricName {
			t.Fatalf("round trip changed metric identity: (%d,%q) became (%d,%q)",
				h.MetricEpoch, h.MetricName, back.MetricEpoch, back.MetricName)
		}
		if !back.G.Equal(h.G) || !back.Up.Equal(h.Up) || !back.Down.Equal(h.Down) || !back.DownIn.Equal(h.DownIn) {
			t.Fatal("round trip changed a graph")
		}
		for v := range h.Rank {
			if back.Rank[v] != h.Rank[v] || back.Level[v] != h.Level[v] {
				t.Fatalf("round trip changed rank/level at %d", v)
			}
		}
		for _, pair := range [][2][]int32{
			{back.UpMid, h.UpMid}, {back.DownMid, h.DownMid}, {back.DownInMid, h.DownInMid},
		} {
			for i := range pair[1] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("round trip changed a shortcut mid at %d", i)
				}
			}
		}
	})
}

// FuzzCustomizeMetric feeds arbitrary byte strings as weight vectors
// through Topology.Customize over a fixed customizable topology and
// checks every customized query distance against Dijkstra on the
// reweighted graph. Bytes decode to small weights with dedicated
// escape values for 0 and Inf, so the fuzzer explores zero-weight
// cycles and closed-arc (Inf) combinations without ever producing an
// out-of-range weight; Customize must therefore never reject and never
// disagree with the oracle. testdata/fuzz/FuzzCustomizeMetric holds
// checked-in seeds covering the all-closed, all-zero and mixed cases.
func FuzzCustomizeMetric(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	g := gridGraph(rng, 5, 4, 30)
	topo, err := BuildCustomizable(g, Options{Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	m := g.NumArcs()
	sample := []int32{0, 3, 9, 14, 19}

	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, m)) // every arc closed
	f.Add(bytes.Repeat([]byte{0xFE}, m)) // every arc free
	mixed := make([]byte, m)
	rng.Read(mixed)
	f.Add(mixed)

	f.Fuzz(func(t *testing.T, data []byte) {
		w := make([]uint32, m)
		for i := range w {
			var b byte = 1
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			switch b {
			case 0xFF:
				w[i] = graph.Inf
			case 0xFE:
				w[i] = 0
			default:
				w[i] = uint32(b)
			}
		}
		h2, err := topo.Customize(w, CustomizeOptions{})
		if err != nil {
			t.Fatalf("Customize rejected an in-range metric: %v", err)
		}
		gw, err := g.WithWeights(w)
		if err != nil {
			t.Fatal(err)
		}
		q := NewQuery(h2)
		dij := sssp.NewDijkstra(gw, pq.KindBinaryHeap)
		for _, s := range sample {
			dij.Run(s)
			for _, d := range sample {
				want := dij.Dist(d)
				got := q.Distance(s, d)
				if got != want {
					t.Fatalf("customized distance %d->%d = %d, Dijkstra says %d (metric %v)", s, d, got, want, w)
				}
				if path := q.Path(s, d); want == graph.Inf {
					if path != nil {
						t.Fatalf("unreachable %d->%d returned path %v", s, d, path)
					}
				} else if pw := pathWeight(t, gw, path); pw != want {
					t.Fatalf("path %d->%d weighs %d, distance says %d", s, d, pw, want)
				}
			}
		}
	})
}
