package ch

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzHierarchyRoundTrip drives ReadHierarchy with arbitrary bytes. The
// contract: it must never panic (and never allocate proportionally to a
// forged length header), and anything it accepts must serialize back
// and reload to an identical hierarchy — the same lossless round trip
// TestHierarchyRoundTrip pins for well-formed input.
func FuzzHierarchyRoundTrip(f *testing.F) {
	// Seed with a genuine serialized hierarchy plus targeted mutations of
	// it; testdata/fuzz/FuzzHierarchyRoundTrip holds checked-in seeds.
	rng := rand.New(rand.NewSource(84))
	h := Build(gridGraph(rng, 5, 4, 10), Options{Workers: 1})
	var buf bytes.Buffer
	if err := WriteHierarchy(&buf, h); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])                                    // magic+version, then truncated
	f.Add(append([]byte(nil), valid[:len(valid)-3]...)) // torn tail
	flip := append([]byte(nil), valid...)
	flip[24] ^= 0xFF // corrupt the rank array's length word
	f.Add(flip)
	huge := append([]byte(nil), valid...)
	huge[8], huge[9], huge[10], huge[11] = 0xFF, 0xFF, 0xFF, 0x7F // forged n
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHierarchy(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics and OOM are not
		}
		var out bytes.Buffer
		if err := WriteHierarchy(&out, h); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadHierarchy(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumShortcuts != h.NumShortcuts || back.MaxLevel != h.MaxLevel {
			t.Fatal("round trip changed metadata")
		}
		if !back.G.Equal(h.G) || !back.Up.Equal(h.Up) || !back.Down.Equal(h.Down) || !back.DownIn.Equal(h.DownIn) {
			t.Fatal("round trip changed a graph")
		}
		for v := range h.Rank {
			if back.Rank[v] != h.Rank[v] || back.Level[v] != h.Level[v] {
				t.Fatalf("round trip changed rank/level at %d", v)
			}
		}
		for _, pair := range [][2][]int32{
			{back.UpMid, h.UpMid}, {back.DownMid, h.DownMid}, {back.DownInMid, h.DownInMid},
		} {
			for i := range pair[1] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("round trip changed a shortcut mid at %d", i)
				}
			}
		}
	})
}
