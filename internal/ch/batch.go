package ch

// Batch selection machinery for parallel contraction. A batch is a
// 2-hop-independent set of heap candidates: no two members are adjacent
// and no two share a live neighbor in the remaining graph. Under that
// rule one member's contraction cannot touch another member's adjacency
// lists (shortcuts from contracting a connect only neighbors of a, and
// none of those is a member or a member's neighbor), and witness
// searches stay valid because contraction preserves distances among the
// remaining vertices — so the whole batch can be simulated in parallel
// against the frozen pre-batch graph and then applied sequentially.

// stampSet is a vertex set with O(1) reset: membership means "stamp
// equals the current version", so clearing is one counter increment
// instead of a wipe. The insertion-order list makes iteration
// deterministic regardless of worker count.
type stampSet struct {
	stamp   []int32
	version int32
	list    []int32
}

func newStampSet(n int) *stampSet {
	return &stampSet{stamp: make([]int32, n)}
}

func (s *stampSet) reset() {
	s.version++
	s.list = s.list[:0]
}

// add inserts v and reports whether it was newly added.
func (s *stampSet) add(v int32) bool {
	if s.stamp[v] == s.version {
		return false
	}
	s.stamp[v] = s.version
	s.list = append(s.list, v)
	return true
}

func (s *stampSet) has(v int32) bool { return s.stamp[v] == s.version }

// maxBatch caps how many candidates one round pops off the heap. Large
// batches amortize the per-round synchronization but contract against
// increasingly stale heap keys; a thousand is far past the point where
// every worker stays busy.
const maxBatch = 1024

// batchLimit is the number of heap entries popped as candidates this
// round: an eighth of the heap, but at least enough to keep every worker
// busy after independence filtering, and never more than maxBatch.
func (c *contractor) batchLimit() int {
	limit := c.heap.len() / 8
	if lo := 8 * c.opt.Workers; limit < lo {
		limit = lo
	}
	if limit < 64 {
		limit = 64
	}
	if limit > maxBatch {
		limit = maxBatch
	}
	if hl := c.heap.len(); limit > hl {
		limit = hl
	}
	return limit
}

// conflicts reports whether v is within two hops of a vertex already
// claimed for this batch: claim holds every accepted member and all of
// their live neighbors, so a hit on v means adjacency and a hit on one
// of v's live neighbors means adjacency or a shared neighbor.
func (c *contractor) conflicts(v int32) bool {
	if c.claim.has(v) {
		return true
	}
	d := c.d
	for _, a := range d.out[v] {
		if !d.contracted[a.to] && c.claim.has(a.to) {
			return true
		}
	}
	for _, a := range d.in[v] {
		if !d.contracted[a.to] && c.claim.has(a.to) {
			return true
		}
	}
	return false
}

// claimNeighborhood claims v and its live neighbors, blocking every
// vertex within two hops of v from joining the current batch.
func (c *contractor) claimNeighborhood(v int32) {
	d := c.d
	c.claim.add(v)
	for _, a := range d.out[v] {
		if !d.contracted[a.to] {
			c.claim.add(a.to)
		}
	}
	for _, a := range d.in[v] {
		if !d.contracted[a.to] {
			c.claim.add(a.to)
		}
	}
}

// grow returns s resized to n, reallocating only when capacity is short
// — the batch loop reuses these scratch slices across rounds.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
