package ch

import "phast/internal/graph"

// NestedDissectionOrder computes a contraction order by recursive graph
// bisection: each level splits the (undirected view of the) graph into
// two halves with a multi-source-BFS Voronoi, orders the two halves
// recursively, and places the separator vertices last — so separators
// end up at the top of the hierarchy. Nested dissection is the ordering
// family behind customizable route planning; plugged into CH via
// Options.FixedOrder it demonstrates the paper's remark that PHAST works
// with any ordering that yields a good hierarchy.
func NestedDissectionOrder(g *graph.Graph) []int32 {
	und := undirectedAdjacency(g)
	verts := make([]int32, g.NumVertices())
	for i := range verts {
		verts[i] = int32(i)
	}
	order := make([]int32, 0, len(verts))
	return ndRecurse(und, verts, order)
}

// undirectedAdjacency builds symmetric unweighted adjacency lists.
func undirectedAdjacency(g *graph.Graph) [][]int32 {
	n := g.NumVertices()
	adj := make([][]int32, n)
	add := func(u, v int32) {
		for _, w := range adj[u] {
			if w == v {
				return
			}
		}
		adj[u] = append(adj[u], v)
	}
	for u := int32(0); u < int32(n); u++ {
		for _, a := range g.Arcs(u) {
			if a.Head != u {
				add(u, a.Head)
				add(a.Head, u)
			}
		}
	}
	return adj
}

// ndRecurse appends an order for the vertex set `verts` to `order`.
// The adjacency is global; membership in the current piece is tracked
// with a side map to avoid building induced subgraphs at every level.
func ndRecurse(adj [][]int32, verts []int32, order []int32) []int32 {
	const baseCase = 24
	if len(verts) <= baseCase {
		// Small pieces: any order works; keep input (BFS-ish) order.
		return append(order, verts...)
	}
	in := map[int32]int32{} // vertex -> side (-1 unassigned, 0, 1)
	for _, v := range verts {
		in[v] = -1
	}
	// Two seeds: the first vertex and (approximately) the farthest
	// vertex from it by BFS hops within the piece.
	s0 := verts[0]
	s1 := farthestWithin(adj, in, s0)
	// Simultaneous BFS growth assigns each vertex the side whose seed
	// reaches it first.
	queue := []int32{s0, s1}
	in[s0], in[s1] = 0, 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range adj[v] {
			if side, ok := in[w]; ok && side < 0 {
				in[w] = in[v]
				queue = append(queue, w)
			}
		}
	}
	// Separator: side-0 vertices adjacent to side 1 (one-sided vertex
	// separator). Unreached vertices (disconnected pieces) go to side 0.
	var a, b, sep []int32
	for _, v := range verts {
		if in[v] < 0 {
			in[v] = 0
		}
	}
	for _, v := range verts {
		if in[v] == 1 {
			b = append(b, v)
			continue
		}
		isSep := false
		for _, w := range adj[v] {
			if side, ok := in[w]; ok && side == 1 {
				isSep = true
				break
			}
		}
		if isSep {
			sep = append(sep, v)
		} else {
			a = append(a, v)
		}
	}
	if len(a) == 0 || len(b) == 0 {
		// Degenerate cut (e.g. a clique): fall back to input order to
		// guarantee progress.
		return append(order, verts...)
	}
	order = ndRecurse(adj, a, order)
	order = ndRecurse(adj, b, order)
	return append(order, sep...)
}

// farthestWithin returns a vertex of the current piece maximizing BFS
// hop distance from s (ties: first found).
func farthestWithin(adj [][]int32, in map[int32]int32, s int32) int32 {
	seen := map[int32]bool{s: true}
	queue := []int32{s}
	last := s
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		last = v
		for _, w := range adj[v] {
			if _, member := in[w]; member && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	if last == s && len(queue) == 1 {
		// s is isolated within the piece; pick any other member.
		for v := range in {
			if v != s {
				return v
			}
		}
	}
	return last
}
