package ch

import "phast/internal/graph"

// Query is a reusable bidirectional CH point-to-point solver (Section
// II-B): a forward Dijkstra from s restricted to upward arcs and a
// backward Dijkstra from t restricted to downward arcs (traversed in
// reverse, i.e. on DownIn), each stopping when its queue minimum reaches
// the best meeting value µ.
type Query struct {
	h        *Hierarchy
	fwd, bwd *upSearch
}

// NewQuery creates a solver bound to h.
func NewQuery(h *Hierarchy) *Query {
	n := h.G.NumVertices()
	return &Query{
		h:   h,
		fwd: newUpSearch(h.Up, n),
		bwd: newUpSearch(h.DownIn, n),
	}
}

// EnableStalling turns on stall-on-demand (Geisberger et al.): before a
// settled vertex v is scanned, the search checks whether some arc of the
// opposite direction proves v's label suboptimal — a downward arc (u,v)
// with d(u) + l(u,v) < d(v) for the forward search, symmetrically an
// upward arc for the backward search. A stalled vertex's label cannot
// lie on a shortest path entirely inside the search's half, so its arcs
// are skipped. Distances stay exact; search spaces shrink.
func (q *Query) EnableStalling() {
	q.fwd.stallG = q.h.DownIn // incoming downward arcs, tails stored in Head
	q.bwd.stallG = q.h.Up     // the backward search runs on DownIn; its stall witnesses are upward arcs
}

// Distance returns the s→t distance in G, or graph.Inf.
func (q *Query) Distance(s, t int32) uint32 {
	q.fwd.init(s)
	q.bwd.init(t)
	mu := graph.Inf
	for !q.fwd.done() || !q.bwd.done() {
		for _, side := range [2]*upSearch{q.fwd, q.bwd} {
			if side.done() {
				continue
			}
			if side.minKey() >= mu {
				side.stop()
				continue
			}
			v := side.settleNext()
			other := q.bwd
			if side == q.bwd {
				other = q.fwd
			}
			if od := other.dist(v); od != graph.Inf {
				if m := graph.AddSat(side.dist(v), od); m < mu {
					mu = m
				}
			}
		}
	}
	return mu
}

// MeetingVertex returns the distance and the maximum-rank vertex u on a
// shortest s→t path (the vertex minimizing d_s(u)+d_t(u)), or (-1, Inf)
// if t is unreachable. Path expansion starts from it.
func (q *Query) MeetingVertex(s, t int32) (int32, uint32) {
	// Run both searches to exhaustion of the µ criterion, then scan
	// settled vertices of the smaller side for the best meeting point.
	d := q.Distance(s, t)
	if d == graph.Inf {
		return -1, graph.Inf
	}
	best, bestV := graph.Inf, int32(-1)
	for _, v := range q.fwd.touchedList() {
		fd, bd := q.fwd.dist(v), q.bwd.dist(v)
		if fd == graph.Inf || bd == graph.Inf {
			continue
		}
		if m := graph.AddSat(fd, bd); m < best || (m == best && bestV >= 0 && q.h.Rank[v] > q.h.Rank[bestV]) {
			best, bestV = m, v
		}
	}
	return bestV, d
}

// Path returns the s→t shortest path as a sequence of original-graph
// vertices (beginning with s and ending with t), or nil if unreachable.
// Shortcuts are unpacked recursively (Section VII-A).
func (q *Query) Path(s, t int32) []int32 {
	u, d := q.MeetingVertex(s, t)
	if d == graph.Inf {
		return nil
	}
	upPart := q.treePath(q.fwd, q.h.Up, q.h.UpMid, u)           // u..s (reversed below)
	downPart := q.treePath(q.bwd, q.h.DownIn, q.h.DownInMid, u) // u..t in reverse-arc space
	// upPart holds s→u after reversal.
	reverse(upPart)
	path := append([]int32(nil), s)
	for i := 1; i < len(upPart); i++ {
		seg := q.h.UnpackUpArc(upPart[i-1], upPart[i])
		path = append(path, seg[1:]...)
	}
	for i := 1; i < len(downPart); i++ {
		// downPart steps follow DownIn arcs (x→y meaning arc (y,x) ∈ A↓);
		// in forward direction it is the arc downPart[i-1] ← downPart[i],
		// i.e. a downward arc from downPart[i-1] to downPart[i].
		seg := q.h.UnpackDownArc(downPart[i-1], downPart[i])
		path = append(path, seg[1:]...)
	}
	return path
}

// treePath walks parent pointers of a search from u back to its root.
func (q *Query) treePath(s *upSearch, g *graph.Graph, mids []int32, u int32) []int32 {
	var p []int32
	for v := u; v >= 0; v = s.parent(v) {
		p = append(p, v)
	}
	return p
}

func reverse(xs []int32) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// UnpackUpArc expands the upward arc (v,w) ∈ A↑ into the original-graph
// vertex sequence v,...,w it represents.
func (h *Hierarchy) UnpackUpArc(v, w int32) []int32 {
	return h.unpack(v, w, h.arcMid(h.Up, h.UpMid, v, w))
}

// UnpackDownArc expands the downward arc (v,w) ∈ A↓ into the vertex
// sequence v,...,w.
func (h *Hierarchy) UnpackDownArc(v, w int32) []int32 {
	return h.unpack(v, w, h.arcMid(h.Down, h.DownMid, v, w))
}

// arcMid finds the middle vertex recorded for arc (v,w) in g.
func (h *Hierarchy) arcMid(g *graph.Graph, mids []int32, v, w int32) int32 {
	first := g.FirstOut()[v]
	for i, a := range g.Arcs(v) {
		if a.Head == w {
			return mids[int(first)+i]
		}
	}
	panic("ch: arc not found during unpacking")
}

// unpack recursively expands the arc (v,w) with middle vertex mid. The
// shortcut (v,w) via m consists of the downward arc (v,m) — m was
// contracted before both endpoints, so Rank[m] < Rank[v] — and the
// upward arc (m,w).
func (h *Hierarchy) unpack(v, w, mid int32) []int32 {
	if mid < 0 {
		return []int32{v, w}
	}
	left := h.unpack(v, mid, h.arcMid(h.Down, h.DownMid, v, mid))
	right := h.unpack(mid, w, h.arcMid(h.Up, h.UpMid, mid, w))
	return append(left, right[1:]...)
}

// upSearch is a small reusable Dijkstra over an upward search graph; it
// is also the first phase of PHAST (the target-independent CH forward
// search of Section III).
type upSearch struct {
	g       *graph.Graph
	stallG  *graph.Graph // stall-on-demand witness arcs; nil disables
	distv   []uint32
	parentv []int32
	stamp   []int32
	version int32
	heap    *vheap
	touched []int32
	stopped bool
	stalled int // vertices stalled in the current search
}

func newUpSearch(g *graph.Graph, n int) *upSearch {
	return &upSearch{
		g:       g,
		distv:   make([]uint32, n),
		parentv: make([]int32, n),
		stamp:   make([]int32, n),
		heap:    newVheap(n),
	}
}

func (s *upSearch) init(src int32) {
	s.version++
	for !s.heap.empty() {
		s.heap.pop()
	}
	s.touched = s.touched[:0]
	s.stopped = false
	s.stalled = 0
	s.label(src, 0, -1)
	s.heap.push(src, 0)
}

func (s *upSearch) label(v int32, d uint32, parent int32) {
	if s.stamp[v] != s.version {
		s.touched = append(s.touched, v)
	}
	s.distv[v] = d
	s.parentv[v] = parent
	s.stamp[v] = s.version
}

func (s *upSearch) done() bool { return s.stopped || s.heap.empty() }
func (s *upSearch) stop()      { s.stopped = true }
func (s *upSearch) minKey() uint32 {
	if s.heap.empty() {
		return graph.Inf
	}
	return uint32(s.heap.topKey())
}

// settleNext pops and scans the next vertex, returning it. With
// stalling enabled, a vertex whose label is dominated by a witness arc
// from the opposite direction is settled without being scanned.
func (s *upSearch) settleNext() int32 {
	v, kv := s.heap.pop()
	dv := uint32(kv)
	if s.stallG != nil {
		for _, a := range s.stallG.Arcs(v) {
			if du := s.dist(a.Head); du != graph.Inf && graph.AddSat(du, a.Weight) < dv {
				s.stalled++
				return v
			}
		}
	}
	for _, a := range s.g.Arcs(v) {
		nd := graph.AddSat(dv, a.Weight)
		if nd < s.dist(a.Head) {
			s.label(a.Head, nd, v)
			s.heap.update(a.Head, int64(nd))
		}
	}
	return v
}

// runToEmpty settles everything reachable (the loose stopping criterion
// PHAST uses: the upward search space is tiny, ~500 vertices).
func (s *upSearch) runToEmpty(src int32) {
	s.init(src)
	for !s.heap.empty() {
		s.settleNext()
	}
}

func (s *upSearch) dist(v int32) uint32 {
	if s.stamp[v] != s.version {
		return graph.Inf
	}
	return s.distv[v]
}

func (s *upSearch) parent(v int32) int32 {
	if s.stamp[v] != s.version {
		return -1
	}
	return s.parentv[v]
}

// touchedList returns the vertices labeled by the current search.
func (s *upSearch) touchedList() []int32 { return s.touched }
