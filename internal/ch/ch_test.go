package ch

import (
	"math/rand"
	"testing"

	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

func randomGraph(rng *rand.Rand, n, m, maxW int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(1+rng.Intn(maxW)))
	}
	return b.Build()
}

// gridGraph builds a w×h bidirected grid with random weights — the
// road-network-shaped instance CH is designed for.
func gridGraph(rng *rand.Rand, w, h, maxW int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				wt := uint32(1 + rng.Intn(maxW))
				b.MustAddArc(id(x, y), id(x+1, y), wt)
				b.MustAddArc(id(x+1, y), id(x, y), wt)
			}
			if y+1 < h {
				wt := uint32(1 + rng.Intn(maxW))
				b.MustAddArc(id(x, y), id(x, y+1), wt)
				b.MustAddArc(id(x, y+1), id(x, y), wt)
			}
		}
	}
	return b.Build()
}

func TestBuildInvariantsSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n), 20)
		h := Build(g, Options{Workers: 1})
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// A ∪ A+ must contain at least every deduped original non-loop arc.
		orig := map[[2]int32]bool{}
		for v := int32(0); v < int32(n); v++ {
			for _, a := range g.Arcs(v) {
				if a.Head != v {
					orig[[2]int32{v, a.Head}] = true
				}
			}
		}
		if got := h.Up.NumArcs() + h.Down.NumArcs(); got < len(orig) {
			t.Fatalf("trial %d: A∪A+ has %d arcs, fewer than %d original", trial, got, len(orig))
		}
	}
}

func TestBuildInvariantsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gridGraph(rng, 12, 9, 30)
	h := Build(g, Options{})
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sizes := h.LevelSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.NumVertices() {
		t.Fatalf("level sizes sum to %d, want %d", total, g.NumVertices())
	}
	if h.MaxLevel < 3 {
		t.Fatalf("grid hierarchy suspiciously flat: max level %d", h.MaxLevel)
	}
}

func TestQueryMatchesDijkstraRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(5*n), 25)
		h := Build(g, Options{Workers: 1})
		q := NewQuery(h)
		d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
		for k := 0; k < 15; k++ {
			s, tt := int32(rng.Intn(n)), int32(rng.Intn(n))
			got := q.Distance(s, tt)
			d.Run(s)
			if want := d.Dist(tt); got != want {
				t.Fatalf("trial %d: ch(%d,%d)=%d, want %d", trial, s, tt, got, want)
			}
		}
	}
}

func TestQueryMatchesDijkstraGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gridGraph(rng, 10, 10, 40)
	h := Build(g, Options{})
	q := NewQuery(h)
	d := sssp.NewDijkstra(g, pq.KindDial)
	for k := 0; k < 40; k++ {
		s, tt := int32(rng.Intn(100)), int32(rng.Intn(100))
		got := q.Distance(s, tt)
		d.Run(s)
		if want := d.Dist(tt); got != want {
			t.Fatalf("ch(%d,%d)=%d, want %d", s, tt, got, want)
		}
	}
}

func TestQueryPathValidAndTight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gridGraph(rng, 8, 8, 20)
	h := Build(g, Options{})
	q := NewQuery(h)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for k := 0; k < 30; k++ {
		s, tt := int32(rng.Intn(64)), int32(rng.Intn(64))
		path := q.Path(s, tt)
		d.Run(s)
		want := d.Dist(tt)
		if want == graph.Inf {
			if path != nil {
				t.Fatalf("path to unreachable target: %v", path)
			}
			continue
		}
		if len(path) == 0 || path[0] != s || path[len(path)-1] != tt {
			t.Fatalf("path endpoints wrong: %v (s=%d t=%d)", path, s, tt)
		}
		var sum uint32
		for i := 1; i < len(path); i++ {
			w, ok := g.FindArc(path[i-1], path[i])
			if !ok {
				t.Fatalf("path uses non-arc (%d,%d)", path[i-1], path[i])
			}
			sum += w
		}
		if sum != want {
			t.Fatalf("path length %d, want %d (path %v)", sum, want, path)
		}
	}
}

func TestPathSelfLoopQuery(t *testing.T) {
	g, err := graph.FromArcs(3, [][3]int64{{0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	h := Build(g, Options{Workers: 1})
	q := NewQuery(h)
	p := q.Path(1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("path(1,1)=%v, want [1]", p)
	}
}

func TestBuildDeterministic(t *testing.T) {
	// Worker count must not change the hierarchy at all; the full
	// differential suite (distance tables vs Dijkstra across worker
	// counts) lives in batch_test.go.
	rng := rand.New(rand.NewSource(6))
	g := gridGraph(rng, 9, 7, 25)
	h1 := Build(g, Options{Workers: 1})
	h2 := Build(g, Options{Workers: 3})
	hierarchiesIdentical(t, h1, h2, "workers 1 vs 3")
	// And repeated builds with the same options are bit-identical too.
	h3 := Build(g, Options{Workers: 3})
	hierarchiesIdentical(t, h2, h3, "repeated workers 3")
}

func TestUpwardSearchSpaceIsSmall(t *testing.T) {
	// On a hierarchical instance the target-independent upward search
	// visits far fewer vertices than the graph has (paper: ~500 of 18M).
	rng := rand.New(rand.NewSource(7))
	g := gridGraph(rng, 20, 20, 30)
	h := Build(g, Options{})
	s := newUpSearch(h.Up, g.NumVertices())
	total := 0
	for trial := 0; trial < 20; trial++ {
		s.runToEmpty(int32(rng.Intn(400)))
		total += len(s.touchedList())
	}
	avg := total / 20
	if avg > g.NumVertices()/2 {
		t.Fatalf("upward search space too large: avg %d of %d", avg, g.NumVertices())
	}
}

func TestPermuteHierarchyPreservesQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gridGraph(rng, 8, 6, 15)
	h := Build(g, Options{Workers: 1})
	n := g.NumVertices()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	hp, err := h.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := hp.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := NewQuery(h)
	qp := NewQuery(hp)
	for k := 0; k < 25; k++ {
		s, tt := int32(rng.Intn(n)), int32(rng.Intn(n))
		if got, want := qp.Distance(perm[s], perm[tt]), q.Distance(s, tt); got != want {
			t.Fatalf("permuted query (%d,%d): %d, want %d", s, tt, got, want)
		}
	}
}

func TestIsolatedAndEmptyGraphs(t *testing.T) {
	h := Build(graph.NewBuilder(0).Build(), Options{Workers: 1})
	if h.G.NumVertices() != 0 {
		t.Fatal("empty graph mishandled")
	}
	g, err := graph.FromArcs(4, nil) // four isolated vertices
	if err != nil {
		t.Fatal(err)
	}
	h = Build(g, Options{Workers: 1})
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.NumShortcuts != 0 || h.MaxLevel != 0 {
		t.Fatalf("isolated vertices created shortcuts (%d) or levels (%d)", h.NumShortcuts, h.MaxLevel)
	}
	q := NewQuery(h)
	if d := q.Distance(0, 3); d != graph.Inf {
		t.Fatalf("distance between isolated vertices = %d", d)
	}
}

func TestStallingQueriesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := gridGraph(rng, 14, 12, 40)
	h := Build(g, Options{Workers: 1})
	plain := NewQuery(h)
	stall := NewQuery(h)
	stall.EnableStalling()
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	n := int32(g.NumVertices())
	totalStalled := 0
	for k := 0; k < 60; k++ {
		s, tt := int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))
		want := plain.Distance(s, tt)
		got := stall.Distance(s, tt)
		d.Run(s)
		if want != d.Dist(tt) || got != want {
			t.Fatalf("query (%d,%d): plain %d stalling %d dijkstra %d", s, tt, want, got, d.Dist(tt))
		}
		totalStalled += stall.fwd.stalled + stall.bwd.stalled
	}
	if totalStalled == 0 {
		t.Fatal("stall-on-demand never stalled a vertex on a grid instance")
	}
}

func TestStallingPathStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := gridGraph(rng, 9, 9, 20)
	h := Build(g, Options{Workers: 1})
	q := NewQuery(h)
	q.EnableStalling()
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for k := 0; k < 20; k++ {
		s, tt := int32(rng.Intn(81)), int32(rng.Intn(81))
		d.Run(s)
		want := d.Dist(tt)
		path := q.Path(s, tt)
		if want == graph.Inf {
			if path != nil {
				t.Fatal("path to unreachable")
			}
			continue
		}
		var sum uint32
		for i := 1; i < len(path); i++ {
			w, ok := g.FindArc(path[i-1], path[i])
			if !ok {
				t.Fatalf("non-arc on stalled path")
			}
			sum += w
		}
		if sum != want {
			t.Fatalf("stalled path length %d, want %d", sum, want)
		}
	}
}

func TestNestedDissectionOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		var g *graph.Graph
		if trial%2 == 0 {
			g = gridGraph(rng, 5+rng.Intn(8), 5+rng.Intn(8), 10)
		} else {
			n := 1 + rng.Intn(50)
			g = randomGraph(rng, n, rng.Intn(4*n), 10)
		}
		order := NestedDissectionOrder(g)
		if len(order) != g.NumVertices() {
			t.Fatalf("order length %d, want %d", len(order), g.NumVertices())
		}
		seen := make([]bool, g.NumVertices())
		for _, v := range order {
			if seen[v] {
				t.Fatalf("vertex %d ordered twice", v)
			}
			seen[v] = true
		}
	}
}

func TestFixedOrderCHIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gridGraph(rng, 10, 9, 30)
	order := NestedDissectionOrder(g)
	h := Build(g, Options{Workers: 1, FixedOrder: order})
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Ranks must follow the given order exactly.
	for i, v := range order {
		if h.Rank[v] != int32(i) {
			t.Fatalf("rank[%d]=%d, want %d", v, h.Rank[v], i)
		}
	}
	q := NewQuery(h)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for k := 0; k < 30; k++ {
		s, tt := int32(rng.Intn(90)), int32(rng.Intn(90))
		d.Run(s)
		if got, want := q.Distance(s, tt), d.Dist(tt); got != want {
			t.Fatalf("ND-ordered ch(%d,%d)=%d, want %d", s, tt, got, want)
		}
	}
}

func TestFixedOrderRejectsNonPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gridGraph(rng, 4, 4, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("bad FixedOrder accepted")
		}
	}()
	Build(g, Options{Workers: 1, FixedOrder: []int32{0, 0, 1}})
}

func TestDownGraphReuseClaim(t *testing.T) {
	// Section VI argues GPU shared memory cannot help GPHAST because
	// "each arc is only looked at exactly once, and each distance label
	// is written once and read very few times (no more than twice on
	// average)". The sweep reads v's label once per outgoing downward
	// arc, so the claim is: average out-degree of G↓ is small (~2).
	rng := rand.New(rand.NewSource(10))
	g := gridGraph(rng, 24, 22, 40)
	h := Build(g, Options{})
	avgReads := float64(h.Down.NumArcs()) / float64(g.NumVertices())
	if avgReads > 3.5 {
		t.Fatalf("labels read %.2f times on average; paper claims ~2", avgReads)
	}
	// And writes: the sweep stores each label exactly once per tree by
	// construction — verified structurally: every vertex appears exactly
	// once in the sweep order (ranks are a permutation, checked in
	// CheckInvariants).
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHopLimitsStillCorrect(t *testing.T) {
	// Aggressively tiny hop limits must still give exact queries (only
	// more shortcuts).
	rng := rand.New(rand.NewSource(9))
	g := gridGraph(rng, 7, 7, 12)
	loose := Build(g, Options{Workers: 1})
	tight := Build(g, Options{HopLimitLow: 1, DegreeLow: 1e9, Workers: 1})
	if tight.NumShortcuts < loose.NumShortcuts {
		t.Fatalf("tighter witness search created fewer shortcuts: %d < %d",
			tight.NumShortcuts, loose.NumShortcuts)
	}
	q := NewQuery(tight)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for k := 0; k < 25; k++ {
		s, tt := int32(rng.Intn(49)), int32(rng.Intn(49))
		d.Run(s)
		if got, want := q.Distance(s, tt), d.Dist(tt); got != want {
			t.Fatalf("hop-limited ch(%d,%d)=%d, want %d", s, tt, got, want)
		}
	}
}
