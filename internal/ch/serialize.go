package ch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"phast/internal/graph"
)

// Binary serialization of a Hierarchy, so the minutes-scale CH
// preprocessing of large instances (Section VIII-A: 5–41 minutes on the
// paper's inputs) is paid once and reloaded in milliseconds. The format
// is a little-endian dump of all arrays behind a magic/version header;
// ReadHierarchy validates structure (CheckInvariants-level checks are
// the caller's choice, they cost a full scan).

const (
	chMagic uint32 = 0x50484348 // "PHCH"
	// chVersion 2 added the metric identity block (epoch, name, and the
	// metric's arc count for cross-validation against the stored graph);
	// version-1 files are still read, with epoch 0 and an empty name.
	chVersion   uint32 = 2
	chVersionV1 uint32 = 1
	// maxMetricName bounds the stored metric-name length so a forged
	// header cannot force a large allocation.
	maxMetricName = 1 << 10
)

// WriteHierarchy serializes h to w.
func WriteHierarchy(w io.Writer, h *Hierarchy) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, h); err != nil {
		return err
	}
	if err := writeMetricBlock(bw, h); err != nil {
		return err
	}
	if err := writeInt32s(bw, h.Rank); err != nil {
		return err
	}
	if err := writeInt32s(bw, h.Level); err != nil {
		return err
	}
	if err := writeGraph(bw, h.G); err != nil {
		return err
	}
	for _, gm := range []struct {
		g    *graph.Graph
		mids []int32
	}{{h.Up, h.UpMid}, {h.Down, h.DownMid}, {h.DownIn, h.DownInMid}} {
		if err := writeGraph(bw, gm.g); err != nil {
			return err
		}
		if err := writeInt32s(bw, gm.mids); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, h *Hierarchy) error {
	hdr := []uint32{chMagic, chVersion, uint32(h.G.NumVertices()),
		uint32(h.NumShortcuts), uint32(h.MaxLevel)}
	return binary.Write(w, binary.LittleEndian, hdr)
}

// writeMetricBlock emits the version-2 metric identity: the epoch (as
// two little-endian words), the metric's arc count — ReadHierarchy
// cross-checks it against the stored graph, catching a hierarchy saved
// for one metric and patched onto another graph — and the metric name.
func writeMetricBlock(w io.Writer, h *Hierarchy) error {
	if len(h.MetricName) > maxMetricName {
		return fmt.Errorf("ch: metric name of %d bytes exceeds %d", len(h.MetricName), maxMetricName)
	}
	epoch := uint64(h.MetricEpoch)
	blk := []uint32{uint32(epoch), uint32(epoch >> 32), uint32(h.G.NumArcs()), uint32(len(h.MetricName))}
	if err := binary.Write(w, binary.LittleEndian, blk); err != nil {
		return err
	}
	_, err := w.Write([]byte(h.MetricName))
	return err
}

func writeInt32s(w io.Writer, xs []int32) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(xs))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, xs)
}

func writeGraph(w io.Writer, g *graph.Graph) error {
	if err := writeInt32s(w, g.FirstOut()); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(g.NumArcs())); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, g.ArcList())
}

// ReadHierarchy deserializes a hierarchy written by WriteHierarchy,
// validating the header and all structural (CSR, length, ID-range)
// invariants of the embedded graphs.
func ReadHierarchy(r io.Reader) (*Hierarchy, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("ch: reading header: %w", err)
	}
	if hdr[0] != chMagic {
		return nil, fmt.Errorf("ch: bad magic %#x", hdr[0])
	}
	if hdr[1] != chVersion && hdr[1] != chVersionV1 {
		return nil, fmt.Errorf("ch: unsupported version %d", hdr[1])
	}
	n := int(hdr[2])
	h := &Hierarchy{NumShortcuts: int(hdr[3]), MaxLevel: int32(hdr[4])}
	metricArcs := -1 // v1 files carry no metric block to validate against
	if hdr[1] >= chVersion {
		var blk [4]uint32
		if err := binary.Read(br, binary.LittleEndian, &blk); err != nil {
			return nil, fmt.Errorf("ch: metric block: %w", err)
		}
		h.MetricEpoch = int64(uint64(blk[0]) | uint64(blk[1])<<32)
		metricArcs = int(blk[2])
		nameLen := int(blk[3])
		if nameLen > maxMetricName {
			return nil, fmt.Errorf("ch: metric name length %d exceeds %d", nameLen, maxMetricName)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("ch: metric name: %w", err)
		}
		h.MetricName = string(name)
	}
	var err error
	if h.Rank, err = readInt32s(br, n); err != nil {
		return nil, fmt.Errorf("ch: rank: %w", err)
	}
	if h.Level, err = readInt32s(br, n); err != nil {
		return nil, fmt.Errorf("ch: level: %w", err)
	}
	if h.G, err = readGraph(br, n); err != nil {
		return nil, fmt.Errorf("ch: graph: %w", err)
	}
	if metricArcs >= 0 && metricArcs != h.G.NumArcs() {
		return nil, fmt.Errorf("ch: metric block says %d arcs, graph has %d", metricArcs, h.G.NumArcs())
	}
	read := func(name string) (*graph.Graph, []int32, error) {
		g, err := readGraph(br, n)
		if err != nil {
			return nil, nil, fmt.Errorf("ch: %s: %w", name, err)
		}
		mids, err := readInt32s(br, g.NumArcs())
		if err != nil {
			return nil, nil, fmt.Errorf("ch: %s mids: %w", name, err)
		}
		for _, m := range mids {
			if m < -1 || int(m) >= n {
				return nil, nil, fmt.Errorf("ch: %s mid %d out of range", name, m)
			}
		}
		return g, mids, nil
	}
	if h.Up, h.UpMid, err = read("up"); err != nil {
		return nil, err
	}
	if h.Down, h.DownMid, err = read("down"); err != nil {
		return nil, err
	}
	if h.DownIn, h.DownInMid, err = read("downIn"); err != nil {
		return nil, err
	}
	if h.DownIn.NumArcs() != h.Down.NumArcs() {
		return nil, fmt.Errorf("ch: DownIn has %d arcs, Down has %d", h.DownIn.NumArcs(), h.Down.NumArcs())
	}
	if !graph.IsPermutation(h.Rank) {
		return nil, fmt.Errorf("ch: ranks are not a permutation")
	}
	return h, nil
}

// readChunk is the per-read granularity of the array readers below:
// they grow their result as data actually arrives instead of trusting
// the length header, so a forged header cannot force a multi-gigabyte
// allocation from a tiny file (found by FuzzHierarchyRoundTrip).
const readChunk = 1 << 14

func readInt32s(r io.Reader, want int) ([]int32, error) {
	var ln uint32
	if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
		return nil, err
	}
	if int(ln) != want {
		return nil, fmt.Errorf("length %d, want %d", ln, want)
	}
	xs := make([]int32, 0, min(want, readChunk))
	var chunk [readChunk]int32
	for len(xs) < want {
		c := chunk[:min(readChunk, want-len(xs))]
		if err := binary.Read(r, binary.LittleEndian, c); err != nil {
			return nil, err
		}
		xs = append(xs, c...)
	}
	return xs, nil
}

func readGraph(r io.Reader, n int) (*graph.Graph, error) {
	first, err := readInt32s(r, n+1)
	if err != nil {
		return nil, err
	}
	var m uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n > 0 && int(m) > 64*n || n == 0 && m != 0 {
		return nil, fmt.Errorf("implausible arc count %d for %d vertices", m, n)
	}
	arcs := make([]graph.Arc, 0, min(int(m), readChunk))
	var chunk [readChunk]graph.Arc
	for len(arcs) < int(m) {
		c := chunk[:min(readChunk, int(m)-len(arcs))]
		if err := binary.Read(r, binary.LittleEndian, c); err != nil {
			return nil, err
		}
		arcs = append(arcs, c...)
	}
	return graph.FromRaw(first, arcs)
}
