package ch

import "time"

// BuildStats reports what one run of CH preprocessing did: how large the
// independent-set contraction batches were, how much witness-search work
// ran, and where the wall time went. Request it via Options.Stats; the
// struct is plain data and safe to copy once Build returns.
type BuildStats struct {
	// Workers is the resolved parallelism the build ran with.
	Workers int
	// Vertices and Arcs describe the input graph.
	Vertices, Arcs int
	// Batches is the number of contraction rounds: independent-set
	// batches in the priority-driven build, simulate-ahead runs in the
	// FixedOrder build.
	Batches int
	// MaxBatch is the largest simulated batch.
	MaxBatch int
	// SimulatedVertices counts batch members whose contraction was
	// simulated in parallel (initial-priority and re-prioritization
	// simulations are counted separately below).
	SimulatedVertices int64
	// LazyRequeues counts batch members whose freshly simulated priority
	// lost to the remaining heap top and were pushed back instead of
	// contracted — the batched form of classic lazy re-evaluation.
	LazyRequeues int64
	// IndependenceDeferred counts popped candidates returned to the heap
	// unsimulated because they were within two hops of a better batch
	// member this round.
	IndependenceDeferred int64
	// Reprioritized counts eager neighbor re-prioritizations performed
	// after batch application (each one is a simulation).
	Reprioritized int64
	// WitnessSearches is the total number of local witness Dijkstra runs
	// across all phases and workers.
	WitnessSearches int64
	// Shortcuts is the number of shortcut arcs added (before the Up/Down
	// parallel-arc merge).
	Shortcuts int
	// Phase wall times. InitTime covers the initial-priority pass,
	// SimulateTime the parallel batch simulations, ApplyTime selection
	// plus sequential contraction, ReprioTime the parallel dirty-set
	// re-prioritization. Total covers the whole Build call including
	// graph setup and hierarchy assembly.
	InitTime, SimulateTime, ApplyTime, ReprioTime, Total time.Duration
}

// AvgBatch is the mean number of vertices simulated per batch.
func (s BuildStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.SimulatedVertices) / float64(s.Batches)
}
