package ch

import (
	"bytes"
	"math/rand"
	"testing"

	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

func TestHierarchyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := gridGraph(rng, 10, 9, 25)
	h := Build(g, Options{Workers: 1})
	var buf bytes.Buffer
	if err := WriteHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if back.NumShortcuts != h.NumShortcuts || back.MaxLevel != h.MaxLevel {
		t.Fatalf("metadata lost: %d/%d vs %d/%d",
			back.NumShortcuts, back.MaxLevel, h.NumShortcuts, h.MaxLevel)
	}
	if !back.G.Equal(h.G) || !back.Up.Equal(h.Up) || !back.Down.Equal(h.Down) || !back.DownIn.Equal(h.DownIn) {
		t.Fatal("graphs changed in round trip")
	}
	for v := range h.Rank {
		if back.Rank[v] != h.Rank[v] || back.Level[v] != h.Level[v] {
			t.Fatalf("rank/level changed at %d", v)
		}
	}
	for i := range h.UpMid {
		if back.UpMid[i] != h.UpMid[i] {
			t.Fatalf("up mid changed at %d", i)
		}
	}
	// The reloaded hierarchy must answer queries exactly, including path
	// unpacking (which exercises the mid arrays).
	q := NewQuery(back)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for trial := 0; trial < 15; trial++ {
		s, tt := int32(rng.Intn(90)), int32(rng.Intn(90))
		d.Run(s)
		if got, want := q.Distance(s, tt), d.Dist(tt); got != want {
			t.Fatalf("reloaded query (%d,%d)=%d, want %d", s, tt, got, want)
		}
		if want := d.Dist(tt); want != 0 && want != ^uint32(0) {
			p := q.Path(s, tt)
			if len(p) == 0 || p[0] != s || p[len(p)-1] != tt {
				t.Fatalf("reloaded path broken: %v", p)
			}
		}
	}
}

func TestReadHierarchyRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20},
		"truncated": {0x48, 0x43, 0x48, 0x50, 1, 0, 0, 0}, // magic+version only
	}
	for name, data := range cases {
		if _, err := ReadHierarchy(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadHierarchyRejectsWrongVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g := gridGraph(rng, 4, 4, 10)
	h := Build(g, Options{Workers: 1})
	var buf bytes.Buffer
	if err := WriteHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // bump version
	if _, err := ReadHierarchy(bytes.NewReader(data)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestReadHierarchyRejectsCorruptRank(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := gridGraph(rng, 4, 4, 10)
	h := Build(g, Options{Workers: 1})
	var buf bytes.Buffer
	if err := WriteHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Rank array starts after 5 header words + its own length word:
	// duplicate rank[0] into rank[1] to break the permutation.
	copy(data[28:32], data[24:28])
	if _, err := ReadHierarchy(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt rank permutation accepted")
	}
}

func TestHierarchyRoundTripEmpty(t *testing.T) {
	h := Build(graph.NewBuilder(0).Build(), Options{Workers: 1})
	var buf bytes.Buffer
	if err := WriteHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.NumVertices() != 0 {
		t.Fatal("empty hierarchy round trip failed")
	}
}
