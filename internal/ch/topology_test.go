package ch

import (
	"math/rand"
	"testing"

	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sched"
	"phast/internal/sssp"
)

// randomMetric perturbs every arc weight independently: mostly small
// positive weights, with a sprinkling of zeros and Inf closures.
func randomMetric(rng *rand.Rand, m int) []uint32 {
	w := make([]uint32, m)
	for i := range w {
		switch rng.Intn(10) {
		case 0:
			w[i] = 0
		case 1:
			w[i] = graph.Inf
		default:
			w[i] = uint32(rng.Intn(1000))
		}
	}
	return w
}

// checkCustomizedDistances compares the customized hierarchy's CH query
// distances against Dijkstra over the reweighted graph, for every pair
// of a small vertex sample.
func checkCustomizedDistances(t *testing.T, h2 *Hierarchy, gw *graph.Graph, sample []int32) {
	t.Helper()
	q := NewQuery(h2)
	dij := sssp.NewDijkstra(gw, pq.KindBinaryHeap)
	for _, s := range sample {
		dij.Run(s)
		for _, d := range sample {
			want := dij.Dist(d)
			if got := q.Distance(s, d); got != want {
				t.Fatalf("customized distance %d->%d = %d, Dijkstra says %d", s, d, got, want)
			}
		}
	}
}

// pathWeight sums the minimum-weight arc of each hop, failing if a hop
// has no arc.
func pathWeight(t *testing.T, g *graph.Graph, path []int32) uint32 {
	t.Helper()
	var total uint32
	for i := 1; i < len(path); i++ {
		w, ok := g.FindArc(path[i-1], path[i])
		if !ok {
			t.Fatalf("unpacked path uses nonexistent arc (%d,%d)", path[i-1], path[i])
		}
		total = graph.AddSat(total, w)
	}
	return total
}

// TestCustomizeDifferential is the topology-level half of the
// differential customization oracle: for random graphs and random
// metric perturbations (including zero weights and Inf closures),
// Customize must agree with Dijkstra on the reweighted graph, with a
// from-scratch customizable build over the same weights, and its
// unpacked paths must be real paths achieving the reported distance.
func TestCustomizeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		var g *graph.Graph
		if trial%2 == 0 {
			g = gridGraph(rng, 6, 5, 30)
		} else {
			g = randomGraph(rng, 60, 300, 100)
		}
		topo, err := BuildCustomizable(g, Options{Workers: 2})
		if err != nil {
			t.Fatalf("BuildCustomizable: %v", err)
		}
		if err := topo.Hierarchy().CheckInvariants(); err != nil {
			t.Fatalf("reference hierarchy invalid: %v", err)
		}
		n := g.NumVertices()
		sample := make([]int32, 0, 8)
		for i := 0; i < 8; i++ {
			sample = append(sample, int32(rng.Intn(n)))
		}

		// The reference metric customized must reproduce the reference
		// hierarchy's weights exactly.
		ref := make([]uint32, g.NumArcs())
		for i, a := range g.ArcList() {
			ref[i] = a.Weight
		}
		hRef, err := topo.Customize(ref, CustomizeOptions{})
		if err != nil {
			t.Fatalf("Customize(reference): %v", err)
		}
		if !hRef.Up.Equal(topo.Hierarchy().Up) || !hRef.Down.Equal(topo.Hierarchy().Down) || !hRef.DownIn.Equal(topo.Hierarchy().DownIn) {
			t.Fatalf("trial %d: customizing with the reference metric changed hierarchy weights", trial)
		}

		for metric := 0; metric < 3; metric++ {
			w := randomMetric(rng, g.NumArcs())
			var st CustomizeStats
			h2, err := topo.Customize(w, CustomizeOptions{Epoch: int64(metric + 1), Stats: &st})
			if err != nil {
				t.Fatalf("Customize: %v", err)
			}
			if h2.MetricEpoch != int64(metric+1) {
				t.Fatalf("MetricEpoch = %d, want %d", h2.MetricEpoch, metric+1)
			}
			if err := h2.CheckInvariants(); err != nil {
				t.Fatalf("customized hierarchy invalid: %v", err)
			}
			gw, err := g.WithWeights(w)
			if err != nil {
				t.Fatal(err)
			}
			checkCustomizedDistances(t, h2, gw, sample)

			// From-scratch oracle: a fresh customizable build over the
			// reweighted graph must give identical distances. (Inf arcs
			// cannot be fed to Build, so substitute a large finite weight
			// on a copy when the metric closed arcs — the distances only
			// match where no closed arc is involved, so compare through
			// the customized engine instead when any weight is Inf.)
			hasInf := false
			for _, x := range w {
				if x == graph.Inf {
					hasInf = true
					break
				}
			}
			if !hasInf {
				scratch, err := BuildCustomizable(gw, Options{Workers: 1})
				if err != nil {
					t.Fatalf("from-scratch BuildCustomizable: %v", err)
				}
				qa, qb := NewQuery(h2), NewQuery(scratch.Hierarchy())
				for _, s := range sample {
					for _, d := range sample {
						if a, b := qa.Distance(s, d), qb.Distance(s, d); a != b {
							t.Fatalf("customized %d->%d = %d, from-scratch rebuild says %d", s, d, a, b)
						}
					}
				}
			}

			// Unpacked paths must be genuine paths of the reweighted
			// graph achieving the reported distance.
			q := NewQuery(h2)
			for _, s := range sample {
				for _, d := range sample {
					dist := q.Distance(s, d)
					path := q.Path(s, d)
					if dist == graph.Inf {
						if path != nil {
							t.Fatalf("unreachable %d->%d returned path %v", s, d, path)
						}
						continue
					}
					if len(path) == 0 || path[0] != s || path[len(path)-1] != d {
						t.Fatalf("path %d->%d has wrong endpoints: %v", s, d, path)
					}
					if got := pathWeight(t, gw, path); got != dist {
						t.Fatalf("path %d->%d weighs %d, distance says %d", s, d, got, dist)
					}
				}
			}
		}
	}
}

// TestCustomizeParallelMatchesSequential runs the same metric through
// the sequential path and the scheduler-pool path with a tiny grain (to
// force many chunks and real dependency stalls) and requires bitwise
// identical weights and mids.
func TestCustomizeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gridGraph(rng, 12, 10, 50)
	topo, err := BuildCustomizable(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(4)
	defer pool.Release()
	for metric := 0; metric < 3; metric++ {
		w := randomMetric(rng, g.NumArcs())
		seq, err := topo.Customize(w, CustomizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var st CustomizeStats
		par, err := topo.Customize(w, CustomizeOptions{Pool: pool, Grain: 8, Stats: &st})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Parallel || st.Chunks < 2 {
			t.Fatalf("parallel pass did not engage: %+v", st)
		}
		if !par.Up.Equal(seq.Up) || !par.Down.Equal(seq.Down) || !par.DownIn.Equal(seq.DownIn) {
			t.Fatalf("parallel customization weights differ from sequential")
		}
		for i := range seq.UpMid {
			if seq.UpMid[i] != par.UpMid[i] {
				t.Fatalf("UpMid[%d]: sequential %d, parallel %d", i, seq.UpMid[i], par.UpMid[i])
			}
		}
		for i := range seq.DownMid {
			if seq.DownMid[i] != par.DownMid[i] {
				t.Fatalf("DownMid[%d]: sequential %d, parallel %d", i, seq.DownMid[i], par.DownMid[i])
			}
		}
	}
}

// TestCustomizeFixedOrder exercises the nested-dissection fixed order
// (the classic CCH choice) through the same Dijkstra oracle.
func TestCustomizeFixedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := gridGraph(rng, 8, 8, 20)
	topo, err := BuildCustomizable(g, Options{Workers: 1, FixedOrder: NestedDissectionOrder(g)})
	if err != nil {
		t.Fatal(err)
	}
	sample := []int32{0, 7, 31, 40, 63}
	for metric := 0; metric < 2; metric++ {
		w := randomMetric(rng, g.NumArcs())
		h2, err := topo.Customize(w, CustomizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gw, err := g.WithWeights(w)
		if err != nil {
			t.Fatal(err)
		}
		checkCustomizedDistances(t, h2, gw, sample)
	}
}

// TestCustomizeRejects covers metric validation and the witness-built
// rejection path of NewTopology.
func TestCustomizeRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gridGraph(rng, 5, 4, 10)
	topo, err := BuildCustomizable(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Customize(make([]uint32, g.NumArcs()-1), CustomizeOptions{}); err == nil {
		t.Fatal("short metric accepted")
	}
	bad := make([]uint32, g.NumArcs())
	bad[0] = graph.MaxWeight + 1
	if _, err := topo.Customize(bad, CustomizeOptions{}); err == nil {
		t.Fatal("out-of-range weight accepted")
	}
	// A witness-pruned hierarchy is not closed under lower triangles on
	// most graphs; NewTopology must reject it rather than customize
	// incorrectly. (On tiny graphs pruning may remove nothing, so build
	// until rejection or give up after a few attempts.)
	rejected := false
	for trial := 0; trial < 5 && !rejected; trial++ {
		gw := randomGraph(rng, 80, 400, 1000)
		if _, err := NewTopology(Build(gw, Options{})); err != nil {
			rejected = true
		}
	}
	if !rejected {
		t.Skip("witness builds happened to be closed on all trial graphs")
	}
}
