package ch

import (
	"fmt"
	"math"
	"time"

	"phast/internal/graph"
	"phast/internal/sched"
)

// This file implements CCH-style topology/metric separation (see
// PAPERS.md, Customizable Contraction Hierarchies): the contraction
// order and shortcut structure are computed once per graph, and a cheap
// Customize pass recomputes every arc weight — and every unpacking mid
// — for an arbitrary new metric by bottom-up triangle relaxation.
//
// The structure is only metric-independent if contraction adds a
// shortcut for every (in, out) neighbor pair instead of witness-pruning
// (Options.Customizable). That closure gives the property customization
// rests on: for every vertex z, every pair of a downward arc (u,z) and
// an upward arc (z,w) has a hierarchy arc (u,w), called the *lower
// triangle* of (u,w) via z. The customized weight of an arc is then
//
//	w(u,w) = min( lightest original arc u→w ,
//	              min over mids z of  w(u,z) + w(z,w) )
//
// where both triangle legs have their lower endpoint z below the target
// arc's lower endpoint — so processing arcs grouped by the rank of
// their lower endpoint, in increasing rank order, sees every leg
// already final. That is exactly the dependency discipline of the PR 5
// sweep scheduler, so the parallel pass reuses it: rank positions are
// chunked, each chunk owns the arcs whose lower endpoint lies in it
// (single-writer — no races by construction), and a per-chunk bound
// over the highest triangle-mid rank gates the monotone completion
// frontier. The done-flag store + frontier CAS in internal/sched gives
// the happens-before edge from a leg's final write to its readers.

// noSlot marks an original arc with no hierarchy counterpart
// (self-loops, which never lie on a shortest path).
const noSlot = int32(math.MinInt32)

// Topology is the metric-independent half of a customizable hierarchy:
// the reference hierarchy (whose structure every metric shares) plus
// the precomputed triangle index Customize relaxes over. Build it with
// BuildCustomizable (or NewTopology over a loaded hierarchy). A
// Topology is immutable after construction; Customize allocates its own
// result state, so concurrent Customize calls are safe.
type Topology struct {
	h *Hierarchy

	// origSlot[i] is the hierarchy arc slot of the i-th original arc
	// (G.ArcList order): an Up arc index if >= 0, else the Down arc
	// index ^origSlot[i]; noSlot for self-loops.
	origSlot []int32
	// downInToDown[j] is the Down arc index of the j-th DownIn arc.
	downInToDown []int32
	// ownerArcs groups every hierarchy arc slot by the rank of its
	// lower endpoint: position p owns ownerArcs[arcFirst[p]:arcFirst[p+1]]
	// (encoded like origSlot). arcFirst has length n+1.
	ownerArcs []int32
	arcFirst  []int32
	// tris holds the lower triangles of each owned arc as flat
	// (downIdx, upIdx, mid) triples: triangle k of owned arc oa sits at
	// tris[3k] for k in [triFirst[oa], triFirst[oa+1]). downIdx is the
	// Down index of the leg (u,z), upIdx the Up index of (z,w), mid the
	// vertex z (the customized unpacking mid when the triangle wins).
	tris     []int32
	triFirst []int32
	// maxMid[p] is the highest rank of any triangle mid feeding the
	// arcs owned by position p, or -1 — the raw material of the
	// per-chunk dependency bounds.
	maxMid []int32
}

// Hierarchy returns the reference hierarchy (weighted with the metric
// the topology was built from). Callers must not modify it.
func (t *Topology) Hierarchy() *Hierarchy { return t.h }

// NumTriangles returns the size of the precomputed triangle index.
func (t *Topology) NumTriangles() int64 { return int64(len(t.tris) / 3) }

// MemoryBytes reports the footprint of the triangle index (the
// hierarchy itself is not counted).
func (t *Topology) MemoryBytes() int64 {
	return 4 * int64(len(t.origSlot)+len(t.downInToDown)+len(t.ownerArcs)+
		len(t.arcFirst)+len(t.tris)+len(t.triFirst)+len(t.maxMid))
}

// BuildCustomizable runs all-pairs CH preprocessing on g (witness
// searches disabled, see Options.Customizable) and indexes the result's
// lower triangles for customization. The returned topology's reference
// hierarchy carries g's own weights and is immediately usable.
//
// Unless opt.FixedOrder is set, the contraction order is nested
// dissection rather than the witness-build greedy priority: without
// witness pruning every neighbor pair of a contracted vertex becomes a
// shortcut, and the greedy order — tuned to minimize *pruned* fill —
// lets the all-pairs fill-in explode super-linearly on road networks,
// while separator-based orders bound it (the standard CCH argument).
func BuildCustomizable(g *graph.Graph, opt Options) (*Topology, error) {
	opt.Customizable = true
	if opt.FixedOrder == nil {
		opt.FixedOrder = NestedDissectionOrder(g)
	}
	h := Build(g, opt)
	return NewTopology(h)
}

// NewTopology indexes the lower triangles of h for customization. h
// must come from a customizable build (all-pairs shortcuts): if the
// triangle closure does not hold — as with witness-pruned hierarchies —
// an error is returned, because customized weights would silently be
// wrong for metrics other than the reference one.
func NewTopology(h *Hierarchy) (*Topology, error) {
	n := h.G.NumVertices()
	t := &Topology{h: h}

	byRank := graph.InvertPermutation(h.Rank)

	// Original arc -> hierarchy slot.
	t.origSlot = make([]int32, h.G.NumArcs())
	for v := int32(0); v < int32(n); v++ {
		first := h.G.FirstOut()[v]
		for i, a := range h.G.Arcs(v) {
			idx := int(first) + i
			switch {
			case a.Head == v:
				t.origSlot[idx] = noSlot
			case h.Rank[v] < h.Rank[a.Head]:
				s := findArcIdx(h.Up, v, a.Head)
				if s < 0 {
					return nil, fmt.Errorf("ch: original arc (%d,%d) missing from Up", v, a.Head)
				}
				t.origSlot[idx] = s
			default:
				s := findArcIdx(h.Down, v, a.Head)
				if s < 0 {
					return nil, fmt.Errorf("ch: original arc (%d,%d) missing from Down", v, a.Head)
				}
				t.origSlot[idx] = ^s
			}
		}
	}

	// DownIn arc -> Down arc (to mirror customized weights and mids
	// into the sweep's transposed representation).
	t.downInToDown = make([]int32, h.DownIn.NumArcs())
	for z := int32(0); z < int32(n); z++ {
		first := h.DownIn.FirstOut()[z]
		for j, a := range h.DownIn.Arcs(z) {
			d := findArcIdx(h.Down, a.Head, z) // a.Head is the tail u of (u,z)
			if d < 0 {
				return nil, fmt.Errorf("ch: DownIn arc (%d,%d) missing from Down", a.Head, z)
			}
			t.downInToDown[int(first)+j] = d
		}
	}

	// Group arc slots by owner position (rank of the lower endpoint):
	// position p owns the Up arcs of byRank[p] and the Down arcs whose
	// head is byRank[p]. ownerIdx maps a slot to its dense owned index.
	numUp := h.Up.NumArcs()
	numDown := h.Down.NumArcs()
	t.arcFirst = make([]int32, n+1)
	t.ownerArcs = make([]int32, 0, numUp+numDown)
	ownerIdxUp := make([]int32, numUp)
	ownerIdxDown := make([]int32, numDown)
	for p := int32(0); p < int32(n); p++ {
		x := byRank[p]
		firstUp := h.Up.FirstOut()[x]
		for i := range h.Up.Arcs(x) {
			s := firstUp + int32(i)
			ownerIdxUp[s] = int32(len(t.ownerArcs))
			t.ownerArcs = append(t.ownerArcs, s)
		}
		firstIn := h.DownIn.FirstOut()[x]
		for j := range h.DownIn.Arcs(x) {
			d := t.downInToDown[int(firstIn)+j]
			ownerIdxDown[d] = int32(len(t.ownerArcs))
			t.ownerArcs = append(t.ownerArcs, ^d)
		}
		t.arcFirst[p+1] = int32(len(t.ownerArcs))
	}

	// Enumerate lower triangles mid-centrically — for every z, every
	// (down-in, up) arc pair — in two deterministic passes: count per
	// owned arc, then fill. The target arc of legs (u,z),(z,w) is (u,w);
	// its absence means the closure is violated.
	cnt := make([]int32, len(t.ownerArcs))
	targets := []int32{} // dense owned index per triangle, enumeration order
	for z := int32(0); z < int32(n); z++ {
		for _, ina := range h.DownIn.Arcs(z) {
			u := ina.Head
			for _, outa := range h.Up.Arcs(z) {
				w := outa.Head
				if u == w {
					continue
				}
				var dense int32
				if h.Rank[u] < h.Rank[w] {
					s := findArcIdx(h.Up, u, w)
					if s < 0 {
						return nil, fmt.Errorf("ch: hierarchy is not customizable: no arc (%d,%d) closing triangle via %d", u, w, z)
					}
					dense = ownerIdxUp[s]
				} else {
					s := findArcIdx(h.Down, u, w)
					if s < 0 {
						return nil, fmt.Errorf("ch: hierarchy is not customizable: no arc (%d,%d) closing triangle via %d", u, w, z)
					}
					dense = ownerIdxDown[s]
				}
				targets = append(targets, dense)
				cnt[dense]++
			}
		}
	}
	t.triFirst = make([]int32, len(t.ownerArcs)+1)
	for i, c := range cnt {
		t.triFirst[i+1] = t.triFirst[i] + c
	}
	next := make([]int32, len(t.ownerArcs))
	copy(next, t.triFirst[:len(t.ownerArcs)])
	t.tris = make([]int32, 3*len(targets))
	ti := 0
	for z := int32(0); z < int32(n); z++ {
		firstIn := h.DownIn.FirstOut()[z]
		firstUp := h.Up.FirstOut()[z]
		for j, ina := range h.DownIn.Arcs(z) {
			u := ina.Head
			downIdx := t.downInToDown[int(firstIn)+j]
			for k, outa := range h.Up.Arcs(z) {
				if u == outa.Head {
					continue
				}
				dense := targets[ti]
				ti++
				slot := next[dense]
				next[dense]++
				t.tris[3*slot] = downIdx
				t.tris[3*slot+1] = firstUp + int32(k)
				t.tris[3*slot+2] = z
			}
		}
	}

	// Per-position bound on the highest triangle-mid rank, the raw
	// material of Customize's chunk dependency bounds.
	t.maxMid = make([]int32, n)
	for p := int32(0); p < int32(n); p++ {
		mm := int32(-1)
		for oa := t.arcFirst[p]; oa < t.arcFirst[p+1]; oa++ {
			for k := t.triFirst[oa]; k < t.triFirst[oa+1]; k++ {
				if r := h.Rank[t.tris[3*k+2]]; r > mm {
					mm = r
				}
			}
		}
		t.maxMid[p] = mm
	}
	return t, nil
}

// findArcIdx returns the global arc index of the arc v->w in g, or -1.
// g's adjacency lists must be sorted by head (buildWithMids emits them
// that way), so the lookup is a binary search.
func findArcIdx(g *graph.Graph, v, w int32) int32 {
	arcs := g.Arcs(v)
	lo, hi := 0, len(arcs)
	for lo < hi {
		m := (lo + hi) / 2
		if arcs[m].Head < w {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(arcs) && arcs[lo].Head == w {
		return g.FirstOut()[v] + int32(lo)
	}
	return -1
}

// DefaultCustomizeGrain is the number of rank positions per scheduler
// chunk when CustomizeOptions.Grain is zero.
const DefaultCustomizeGrain = 1024

// CustomizeOptions configures one customization pass.
type CustomizeOptions struct {
	// Pool, when non-nil, runs the triangle relaxation on the given
	// persistent scheduler pool (e.g. core.Engine.SchedPool()); nil
	// customizes sequentially on the calling goroutine.
	Pool *sched.Pool
	// Grain is the chunk size in rank positions for the parallel pass;
	// 0 selects DefaultCustomizeGrain.
	Grain int
	// Epoch and Name are stamped into the produced hierarchy's
	// MetricEpoch/MetricName (see Hierarchy); they are opaque here.
	Epoch int64
	Name  string
	// Stats, when non-nil, receives observability counters.
	Stats *CustomizeStats
}

// CustomizeStats reports one customization pass.
type CustomizeStats struct {
	// Arcs is the number of hierarchy arcs reweighted (Up + Down).
	Arcs int
	// Triangles is the number of lower triangles relaxed.
	Triangles int64
	// Chunks is the number of scheduler chunks (1 when sequential).
	Chunks int
	// Parallel reports whether the pass ran on a scheduler pool.
	Parallel bool
	// Time is the wall time of the pass.
	Time time.Duration
}

// Customize recomputes every hierarchy arc weight — and every unpacking
// mid — for the given metric, which assigns weights[i] to the i-th arc
// of the original graph (G.ArcList order). Weights must be at most
// graph.MaxWeight or exactly graph.Inf; Inf closes an arc (it behaves
// as absent, the incident/closure semantics of live traffic feeds).
//
// The returned hierarchy shares all structure with the reference one
// (same graphs' shapes, ranks, levels) and carries the new weights and
// mids plus the given metric epoch/name. The topology itself is not
// modified, so concurrent Customize calls — e.g. several named metrics
// over one topology — are safe.
func (t *Topology) Customize(weights []uint32, opt CustomizeOptions) (*Hierarchy, error) {
	start := time.Now()
	h := t.h
	n := h.G.NumVertices()
	if len(weights) != h.G.NumArcs() {
		return nil, fmt.Errorf("ch: metric has %d weights, graph has %d arcs", len(weights), h.G.NumArcs())
	}
	for i, w := range weights {
		if w > graph.MaxWeight && w != graph.Inf {
			return nil, fmt.Errorf("ch: weight %d of arc %d exceeds graph.MaxWeight and is not Inf", w, i)
		}
	}
	numUp := h.Up.NumArcs()
	numDown := h.Down.NumArcs()
	upW := make([]uint32, numUp)
	downW := make([]uint32, numDown)
	upMid := make([]int32, numUp)
	downMid := make([]int32, numDown)
	for i := range upW {
		upW[i] = graph.Inf
		upMid[i] = -1
	}
	for i := range downW {
		downW[i] = graph.Inf
		downMid[i] = -1
	}
	// Base pass: seed every arc with the lightest original arc it
	// subsumes (parallel original arcs merge by minimum, as assemble
	// does); shortcut-only arcs stay Inf until a triangle claims them.
	for i, s := range t.origSlot {
		if s == noSlot {
			continue
		}
		w := weights[i]
		if s >= 0 {
			if w < upW[s] {
				upW[s] = w
			}
		} else if w < downW[^s] {
			downW[^s] = w
		}
	}

	// Triangle relaxation in increasing rank-position order. Positions
	// own disjoint arc sets (single writer) and read only legs whose
	// lower endpoint has a strictly smaller rank, so an in-order scan —
	// sequential, or chunked under the scheduler's dependency bounds —
	// sees every leg final.
	scanRange := func(lo, hi int32) {
		for p := lo; p < hi; p++ {
			for oa := t.arcFirst[p]; oa < t.arcFirst[p+1]; oa++ {
				s := t.ownerArcs[oa]
				var w uint32
				mid := int32(-1)
				if s >= 0 {
					w = upW[s]
				} else {
					w = downW[^s]
				}
				for k := t.triFirst[oa]; k < t.triFirst[oa+1]; k++ {
					via := graph.AddSat(downW[t.tris[3*k]], upW[t.tris[3*k+1]])
					if via < w {
						w = via
						mid = t.tris[3*k+2]
					}
				}
				if s >= 0 {
					upW[s] = w
					upMid[s] = mid
				} else {
					downW[^s] = w
					downMid[^s] = mid
				}
			}
		}
	}

	grain := opt.Grain
	if grain < 0 {
		return nil, fmt.Errorf("ch: customize grain %d is negative", grain)
	}
	if grain == 0 {
		grain = DefaultCustomizeGrain
	}
	numChunks := (n + grain - 1) / grain
	parallel := opt.Pool != nil && opt.Pool.Workers() > 1 && numChunks > 1
	if parallel {
		// Per-chunk dependency bound: the chunk holding the highest
		// triangle mid of any position in the chunk, clamped to c-1 (an
		// in-chunk mid is satisfied by the in-order scan; the clamp is
		// conservative for any lower external mid it may shadow).
		dep := make([]int32, numChunks)
		for c := 0; c < numChunks; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			mm := int32(-1)
			for p := lo; p < hi; p++ {
				if t.maxMid[p] > mm {
					mm = t.maxMid[p]
				}
			}
			d := int32(-1)
			if mm >= 0 {
				d = mm / int32(grain)
				if d > int32(c-1) {
					d = int32(c - 1)
				}
			}
			dep[c] = d
		}
		job := &sched.Job{
			NumChunks: int32(numChunks),
			Dep:       dep,
			Scan: func(c int32) {
				lo := c * int32(grain)
				hi := lo + int32(grain)
				if hi > int32(n) {
					hi = int32(n)
				}
				scanRange(lo, hi)
			},
		}
		opt.Pool.Run(job)
	} else {
		numChunks = 1
		scanRange(0, int32(n))
	}

	// Mirror the Down weights and mids into the transposed DownIn
	// representation the sweep scans.
	downInW := make([]uint32, h.DownIn.NumArcs())
	downInMid := make([]int32, h.DownIn.NumArcs())
	for j, d := range t.downInToDown {
		downInW[j] = downW[d]
		downInMid[j] = downMid[d]
	}

	g2, err := h.G.WithWeights(weights)
	if err != nil {
		return nil, err
	}
	up2, err := h.Up.WithWeights(upW)
	if err != nil {
		return nil, err
	}
	down2, err := h.Down.WithWeights(downW)
	if err != nil {
		return nil, err
	}
	downIn2, err := h.DownIn.WithWeights(downInW)
	if err != nil {
		return nil, err
	}
	if opt.Stats != nil {
		*opt.Stats = CustomizeStats{
			Arcs:      numUp + numDown,
			Triangles: t.NumTriangles(),
			Chunks:    numChunks,
			Parallel:  parallel,
			Time:      time.Since(start),
		}
	}
	return &Hierarchy{
		G:     g2,
		Rank:  h.Rank,
		Level: h.Level,
		Up:    up2, Down: down2, DownIn: downIn2,
		UpMid: upMid, DownMid: downMid, DownInMid: downInMid,
		NumShortcuts: h.NumShortcuts,
		MaxLevel:     h.MaxLevel,
		MetricEpoch:  opt.Epoch,
		MetricName:   opt.Name,
	}, nil
}
