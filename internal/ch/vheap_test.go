package ch

import (
	"math/rand"
	"testing"
)

func TestVheapOrderingWithNegativeKeys(t *testing.T) {
	h := newVheap(8)
	keys := []int64{5, -3, 0, 12, -3, 7, -100, 4}
	for v, k := range keys {
		h.push(int32(v), k)
	}
	if h.len() != 8 {
		t.Fatalf("len=%d", h.len())
	}
	prev := int64(-1 << 62)
	for !h.empty() {
		_, k := h.pop()
		if k < prev {
			t.Fatalf("keys out of order: %d after %d", k, prev)
		}
		prev = k
	}
}

func TestVheapTieBreakByVertex(t *testing.T) {
	h := newVheap(4)
	h.push(3, 7)
	h.push(1, 7)
	h.push(2, 7)
	v, _ := h.pop()
	if v != 1 {
		t.Fatalf("tie broken toward %d, want smallest vertex 1", v)
	}
}

func TestVheapUpdateBothDirections(t *testing.T) {
	h := newVheap(4)
	h.push(0, 10)
	h.push(1, 20)
	h.push(2, 30)
	h.update(2, 5)  // decrease
	h.update(0, 40) // increase
	h.update(3, 15) // insert via update
	wantOrder := []int32{2, 3, 1, 0}
	for i, want := range wantOrder {
		v, _ := h.pop()
		if v != want {
			t.Fatalf("pop %d = %d, want %d", i, v, want)
		}
	}
}

func TestVheapContainsAndTop(t *testing.T) {
	h := newVheap(3)
	if h.contains(0) {
		t.Fatal("empty heap contains 0")
	}
	h.push(0, 9)
	if !h.contains(0) || h.topKey() != 9 {
		t.Fatal("contains/topKey broken")
	}
	h.pop()
	if h.contains(0) {
		t.Fatal("popped element still contained")
	}
}

func TestVheapRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		h := newVheap(n)
		keys := make([]int64, n)
		for v := range keys {
			keys[v] = rng.Int63n(1000) - 500
			h.push(int32(v), keys[v])
		}
		// Random updates.
		for i := 0; i < n/2; i++ {
			v := int32(rng.Intn(n))
			keys[v] = rng.Int63n(1000) - 500
			h.update(v, keys[v])
		}
		prev := int64(-1 << 62)
		for !h.empty() {
			v, k := h.pop()
			if k != keys[v] {
				t.Fatalf("vertex %d popped with key %d, want %d", v, k, keys[v])
			}
			if k < prev {
				t.Fatal("heap order violated")
			}
			prev = k
		}
	}
}
