package ch

import (
	"runtime"
	"sync"

	"phast/internal/graph"
)

// Options configures CH preprocessing. The zero value selects the
// paper's parameters (Section VIII-A).
type Options struct {
	// HopLimitLow is the witness-search hop limit while the average
	// degree of the uncontracted graph is below DegreeLow (paper: 5 hops
	// up to degree 5). 0 selects the default.
	HopLimitLow int32
	DegreeLow   float64
	// HopLimitMid applies up to DegreeMid (paper: 10 hops up to degree
	// 10); beyond DegreeMid searches are unlimited.
	HopLimitMid int32
	DegreeMid   float64
	// Workers bounds the goroutines used for initial priority computation
	// and for re-prioritizing neighbors after each contraction
	// (paper: "we update the priorities of all neighbors simultaneously").
	// 0 selects GOMAXPROCS.
	Workers int
	// Priority overrides the vertex-ordering weights; nil selects the
	// paper's 2·ED + CN + H + 5·L. Any ordering is correct (Section
	// II-B); the weights trade preprocessing time against hierarchy
	// quality, which the ablation experiment quantifies.
	Priority *PriorityWeights
	// FixedOrder, when non-nil, contracts vertices in exactly this
	// sequence (FixedOrder[i] is contracted i-th, receiving rank i) and
	// bypasses the priority queue entirely. Must be a permutation of the
	// vertices. Used to plug external orderings such as
	// NestedDissectionOrder — the paper notes PHAST "works well with any
	// function that produces a good contraction hierarchy".
	FixedOrder []int32
}

// PriorityWeights are the coefficients of the contraction priority
// function weightED·ED(u) + weightCN·CN(u) + weightH·H(u) + weightL·L(u).
type PriorityWeights struct {
	ED, CN, H, L int64
}

// DefaultPriority returns the paper's coefficients (Section VIII-A).
func DefaultPriority() PriorityWeights { return PriorityWeights{ED: 2, CN: 1, H: 1, L: 5} }

func (o Options) withDefaults() Options {
	if o.HopLimitLow == 0 {
		o.HopLimitLow = 5
	}
	if o.DegreeLow == 0 {
		o.DegreeLow = 5
	}
	if o.HopLimitMid == 0 {
		o.HopLimitMid = 10
	}
	if o.DegreeMid == 0 {
		o.DegreeMid = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Priority == nil {
		w := DefaultPriority()
		o.Priority = &w
	}
	return o
}

// dynArc is an arc of the shrinking overlay graph during contraction.
type dynArc struct {
	to   int32
	w    uint32
	hops int32 // number of original arcs this (possibly shortcut) arc represents
	mid  int32 // contracted middle vertex, -1 for an original arc
}

// dyngraph is the mutable graph the contraction routine works on: out-
// and in-adjacency with lazy deletion (contracted endpoints are skipped).
type dyngraph struct {
	out        [][]dynArc
	in         [][]dynArc
	contracted []bool
}

func newDyngraph(g *graph.Graph) *dyngraph {
	n := g.NumVertices()
	d := &dyngraph{
		out:        make([][]dynArc, n),
		in:         make([][]dynArc, n),
		contracted: make([]bool, n),
	}
	rev := g.Transpose()
	for v := int32(0); v < int32(n); v++ {
		for _, a := range g.Arcs(v) {
			if a.Head == v {
				continue // self-loops never matter for shortest paths
			}
			d.addOrImprove(&d.out[v], dynArc{to: a.Head, w: a.Weight, hops: 1, mid: -1})
		}
		for _, a := range rev.Arcs(v) {
			if a.Head == v {
				continue
			}
			d.addOrImprove(&d.in[v], dynArc{to: a.Head, w: a.Weight, hops: 1, mid: -1})
		}
	}
	return d
}

// addOrImprove inserts arc or lowers the weight of an existing arc to the
// same endpoint, keeping adjacency lists free of parallel arcs.
func (d *dyngraph) addOrImprove(list *[]dynArc, arc dynArc) {
	for i := range *list {
		if (*list)[i].to == arc.to {
			if arc.w < (*list)[i].w {
				(*list)[i] = arc
			}
			return
		}
	}
	*list = append(*list, arc)
}

// liveDegree counts uncontracted out- plus in-neighbors of v.
func (d *dyngraph) liveDegree(v int32) (outDeg, inDeg int) {
	for _, a := range d.out[v] {
		if !d.contracted[a.to] {
			outDeg++
		}
	}
	for _, a := range d.in[v] {
		if !d.contracted[a.to] {
			inDeg++
		}
	}
	return
}

// contractor holds the full preprocessing state.
type contractor struct {
	g         *graph.Graph
	opt       Options
	d         *dyngraph
	level     []int32
	rank      []int32
	cn        []int32 // contracted-neighbor count per vertex
	heap      *vheap
	searchers []*witnessSearcher
	shortcuts []fullArc
	// remaining arc/vertex counts drive the hop-limit schedule.
	remainingArcs     int
	remainingVertices int
}

// simResult is the outcome of simulating the contraction of one vertex.
type simResult struct {
	shortcuts []fullArc
	removed   int
	hCost     int64
}

// Build runs CH preprocessing on g and returns the hierarchy.
func Build(g *graph.Graph, opt Options) *Hierarchy {
	opt = opt.withDefaults()
	n := g.NumVertices()
	c := &contractor{
		g:                 g,
		opt:               opt,
		d:                 newDyngraph(g),
		level:             make([]int32, n),
		rank:              make([]int32, n),
		cn:                make([]int32, n),
		heap:              newVheap(n),
		remainingVertices: n,
	}
	for v := int32(0); v < int32(n); v++ {
		c.remainingArcs += len(c.d.out[v])
	}
	c.searchers = make([]*witnessSearcher, opt.Workers)
	for i := range c.searchers {
		c.searchers[i] = newWitnessSearcher(n)
	}

	if opt.FixedOrder != nil {
		if !graph.IsPermutation(opt.FixedOrder) || len(opt.FixedOrder) != n {
			panic("ch: FixedOrder is not a permutation of the vertices")
		}
		for i, v := range opt.FixedOrder {
			sim := c.simulate(v, c.searchers[0])
			c.contract(v, sim, int32(i))
		}
		return assemble(g, c.rank, c.level, c.shortcuts)
	}

	// Initial priorities, computed in parallel.
	prios := make([]int64, n)
	c.forEachParallel(n, func(worker int, v int32) {
		sim := c.simulate(v, c.searchers[worker])
		prios[v] = c.priority(v, sim)
	})
	for v := int32(0); v < int32(n); v++ {
		c.heap.push(v, prios[v])
	}

	// Main contraction loop with lazy re-evaluation: the popped vertex is
	// re-simulated (we need its shortcut list anyway); if its fresh
	// priority no longer beats the heap top it is re-queued.
	nextRank := int32(0)
	for !c.heap.empty() {
		v, _ := c.heap.pop()
		sim := c.simulate(v, c.searchers[0])
		p := c.priority(v, sim)
		if !c.heap.empty() && p > c.heap.topKey() {
			c.heap.push(v, p)
			continue
		}
		c.contract(v, sim, nextRank)
		nextRank++
	}
	return assemble(g, c.rank, c.level, c.shortcuts)
}

// hopLimit returns the current witness-search hop limit given the average
// degree of the uncontracted graph (Section VIII-A schedule).
func (c *contractor) hopLimit() int32 {
	if c.remainingVertices == 0 {
		return 0
	}
	avg := float64(c.remainingArcs) / float64(c.remainingVertices)
	switch {
	case avg <= c.opt.DegreeLow:
		return c.opt.HopLimitLow
	case avg <= c.opt.DegreeMid:
		return c.opt.HopLimitMid
	default:
		return 0 // unlimited
	}
}

// simulate determines the shortcuts contracting v would create, using ws
// for witness searches. It does not modify the graph.
func (c *contractor) simulate(v int32, ws *witnessSearcher) simResult {
	d := c.d
	var ins, outs []dynArc
	for _, a := range d.in[v] {
		if !d.contracted[a.to] {
			ins = append(ins, a)
		}
	}
	for _, a := range d.out[v] {
		if !d.contracted[a.to] {
			outs = append(outs, a)
		}
	}
	res := simResult{removed: len(ins) + len(outs)}
	if len(ins) == 0 || len(outs) == 0 {
		return res
	}
	var maxOut uint32
	for _, a := range outs {
		if a.w > maxOut {
			maxOut = a.w
		}
	}
	hop := c.hopLimit()
	for _, ua := range ins {
		u := ua.to
		bound := graph.AddSat(ua.w, maxOut)
		ws.run(d, u, v, bound, hop)
		for _, wa := range outs {
			w := wa.to
			if w == u {
				continue
			}
			via := graph.AddSat(ua.w, wa.w)
			if ws.distTo(w) > via {
				// (u,v)·(v,w) is the only shortest u→w path: shortcut it.
				res.shortcuts = append(res.shortcuts, fullArc{from: u, to: w, w: via, mid: v})
				res.hCost += int64(min32(ua.hops, 3) + min32(wa.hops, 3))
			}
		}
	}
	return res
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// priority evaluates the weighted ordering function (by default
// 2·ED(u) + CN(u) + H(u) + 5·L(u)) for the simulated contraction of v.
func (c *contractor) priority(v int32, sim simResult) int64 {
	w := c.opt.Priority
	ed := int64(len(sim.shortcuts)) - int64(sim.removed)
	return w.ED*ed + w.CN*int64(c.cn[v]) + w.H*sim.hCost + w.L*int64(c.level[v])
}

// contract applies a simulated contraction: records rank, inserts the
// shortcuts into the overlay graph, bumps neighbor levels and
// contracted-neighbor counts, and re-prioritizes all live neighbors in
// parallel.
func (c *contractor) contract(v int32, sim simResult, rank int32) {
	d := c.d
	c.rank[v] = rank
	// Collect live neighbors before marking v contracted.
	neighborSet := map[int32]struct{}{}
	for _, a := range d.out[v] {
		if !d.contracted[a.to] {
			neighborSet[a.to] = struct{}{}
		}
	}
	for _, a := range d.in[v] {
		if !d.contracted[a.to] {
			neighborSet[a.to] = struct{}{}
		}
	}
	d.contracted[v] = true
	c.remainingVertices--
	c.remainingArcs -= sim.removed

	for _, s := range sim.shortcuts {
		hops := shortcutHops(d, v, s)
		d.addOrImprove(&d.out[s.from], dynArc{to: s.to, w: s.w, hops: hops, mid: v})
		d.addOrImprove(&d.in[s.to], dynArc{to: s.from, w: s.w, hops: hops, mid: v})
		c.shortcuts = append(c.shortcuts, s)
		c.remainingArcs++
	}

	neighbors := make([]int32, 0, len(neighborSet))
	for u := range neighborSet {
		if c.level[u] < c.level[v]+1 {
			c.level[u] = c.level[v] + 1
		}
		c.cn[u]++
		neighbors = append(neighbors, u)
	}

	if c.opt.FixedOrder != nil {
		return // fixed order: no priorities to maintain
	}
	// Re-prioritize neighbors in parallel; heap updates stay sequential.
	prios := make([]int64, len(neighbors))
	c.forEachParallel(len(neighbors), func(worker int, i int32) {
		u := neighbors[i]
		sim := c.simulate(u, c.searchers[worker])
		prios[i] = c.priority(u, sim)
	})
	for i, u := range neighbors {
		c.heap.update(u, prios[i])
	}
}

// shortcutHops computes the hop count of a new shortcut from the hop
// counts of its two constituent arcs.
func shortcutHops(d *dyngraph, v int32, s fullArc) int32 {
	var hIn, hOut int32 = 1, 1
	for _, a := range d.in[v] {
		if a.to == s.from {
			hIn = a.hops
			break
		}
	}
	for _, a := range d.out[v] {
		if a.to == s.to {
			hOut = a.hops
			break
		}
	}
	return hIn + hOut
}

// forEachParallel runs fn(worker, i) for i in [0,n) using the configured
// worker count. Worker 0 runs on the calling goroutine; with one worker
// the loop is purely sequential. fn invocations for a given worker index
// never overlap, so per-worker scratch (witness searchers) is safe.
func (c *contractor) forEachParallel(n int, fn func(worker int, i int32)) {
	workers := c.opt.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, int32(i))
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 1; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(w, int32(i))
			}
		}(w, lo, hi)
	}
	for i := 0; i < chunk && i < n; i++ {
		fn(0, int32(i))
	}
	wg.Wait()
}
