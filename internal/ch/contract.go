package ch

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"phast/internal/graph"
)

// Options configures CH preprocessing. The zero value selects the
// paper's parameters (Section VIII-A).
type Options struct {
	// HopLimitLow is the witness-search hop limit while the average
	// degree of the uncontracted graph is below DegreeLow (paper: 5 hops
	// up to degree 5). 0 selects the default.
	HopLimitLow int32
	DegreeLow   float64
	// HopLimitMid applies up to DegreeMid (paper: 10 hops up to degree
	// 10); beyond DegreeMid searches are unlimited.
	HopLimitMid int32
	DegreeMid   float64
	// Workers bounds the goroutines used throughout preprocessing: the
	// initial priority pass, the parallel simulation of each
	// independent-set contraction batch, and the re-prioritization of
	// dirtied neighbors after a batch is applied (paper: "we update the
	// priorities of all neighbors simultaneously"). The produced
	// hierarchy is identical for every worker count — parallelism only
	// divides the simulation work, never the contraction order.
	// 0 selects GOMAXPROCS.
	Workers int
	// Stats, when non-nil, receives preprocessing observability counters
	// (batch sizes, witness searches, lazy re-queues, per-phase wall
	// time) when Build returns.
	Stats *BuildStats
	// Priority overrides the vertex-ordering weights; nil selects the
	// paper's 2·ED + CN + H + 5·L. Any ordering is correct (Section
	// II-B); the weights trade preprocessing time against hierarchy
	// quality, which the ablation experiment quantifies.
	Priority *PriorityWeights
	// Customizable drops the witness searches and records a shortcut
	// for every (in, out) neighbor pair of each contracted vertex. The
	// resulting hierarchy is larger but metric-independent in structure:
	// for every vertex z, every pair of a downward-in arc (u,z) and an
	// upward arc (z,w) has a corresponding hierarchy arc (u,w) — the
	// lower-triangle closure that Topology.Customize relies on to
	// recompute exact shortcut weights for an arbitrary metric by
	// triangle relaxation alone. Witness-pruned hierarchies lack this
	// property (a shortcut skipped under one metric may be needed under
	// another), so BuildCustomizable sets this flag. The contraction
	// order itself still uses the reference metric as a quality
	// heuristic; customization is exact regardless.
	Customizable bool
	// FixedOrder, when non-nil, contracts vertices in exactly this
	// sequence (FixedOrder[i] is contracted i-th, receiving rank i) and
	// bypasses the priority queue entirely. Must be a permutation of the
	// vertices. Used to plug external orderings such as
	// NestedDissectionOrder — the paper notes PHAST "works well with any
	// function that produces a good contraction hierarchy".
	FixedOrder []int32
}

// PriorityWeights are the coefficients of the contraction priority
// function weightED·ED(u) + weightCN·CN(u) + weightH·H(u) + weightL·L(u).
type PriorityWeights struct {
	ED, CN, H, L int64
}

// DefaultPriority returns the paper's coefficients (Section VIII-A).
func DefaultPriority() PriorityWeights { return PriorityWeights{ED: 2, CN: 1, H: 1, L: 5} }

func (o Options) withDefaults() Options {
	if o.HopLimitLow == 0 {
		o.HopLimitLow = 5
	}
	if o.DegreeLow == 0 {
		o.DegreeLow = 5
	}
	if o.HopLimitMid == 0 {
		o.HopLimitMid = 10
	}
	if o.DegreeMid == 0 {
		o.DegreeMid = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Priority == nil {
		w := DefaultPriority()
		o.Priority = &w
	}
	return o
}

// dynArc is an arc of the shrinking overlay graph during contraction.
type dynArc struct {
	to   int32
	w    uint32
	hops int32 // number of original arcs this (possibly shortcut) arc represents
	mid  int32 // contracted middle vertex, -1 for an original arc
}

// dyngraph is the mutable graph the contraction routine works on: out-
// and in-adjacency with lazy deletion (contracted endpoints are skipped).
type dyngraph struct {
	out        [][]dynArc
	in         [][]dynArc
	contracted []bool
}

func newDyngraph(g *graph.Graph) *dyngraph {
	n := g.NumVertices()
	d := &dyngraph{
		out:        make([][]dynArc, n),
		in:         make([][]dynArc, n),
		contracted: make([]bool, n),
	}
	rev := g.Transpose()
	for v := int32(0); v < int32(n); v++ {
		for _, a := range g.Arcs(v) {
			if a.Head == v {
				continue // self-loops never matter for shortest paths
			}
			d.addOrImprove(&d.out[v], dynArc{to: a.Head, w: a.Weight, hops: 1, mid: -1})
		}
		for _, a := range rev.Arcs(v) {
			if a.Head == v {
				continue
			}
			d.addOrImprove(&d.in[v], dynArc{to: a.Head, w: a.Weight, hops: 1, mid: -1})
		}
	}
	return d
}

// addOrImprove inserts arc or lowers the weight of an existing arc to the
// same endpoint, keeping adjacency lists free of parallel arcs.
func (d *dyngraph) addOrImprove(list *[]dynArc, arc dynArc) {
	for i := range *list {
		if (*list)[i].to == arc.to {
			if arc.w < (*list)[i].w {
				(*list)[i] = arc
			}
			return
		}
	}
	*list = append(*list, arc)
}

// liveDegree counts uncontracted out- plus in-neighbors of v.
func (d *dyngraph) liveDegree(v int32) (outDeg, inDeg int) {
	for _, a := range d.out[v] {
		if !d.contracted[a.to] {
			outDeg++
		}
	}
	for _, a := range d.in[v] {
		if !d.contracted[a.to] {
			inDeg++
		}
	}
	return
}

// contractor holds the full preprocessing state.
type contractor struct {
	g         *graph.Graph
	opt       Options
	d         *dyngraph
	level     []int32
	rank      []int32
	cn        []int32 // contracted-neighbor count per vertex
	heap      *vheap
	searchers []*witnessSearcher
	shortcuts []fullArc
	// remaining arc/vertex counts drive the hop-limit schedule.
	remainingArcs     int
	remainingVertices int
	// claim marks the 2-hop neighborhoods of accepted batch members;
	// dirty collects vertices whose priorities the batch invalidated;
	// nbrSeen dedups contract's neighbor scan (a vertex can be both in-
	// and out-neighbor). All three reset in O(1) between rounds.
	claim   *stampSet
	dirty   *stampSet
	nbrSeen *stampSet
	nbrs    []int32
	stats   BuildStats
}

// simResult is the outcome of simulating the contraction of one vertex.
type simResult struct {
	shortcuts []fullArc
	removed   int
	hCost     int64
}

// Build runs CH preprocessing on g and returns the hierarchy. The
// contraction order and shortcut set are deterministic functions of the
// graph and options alone: Workers only divides the simulation work
// across goroutines, so any worker count yields the identical hierarchy.
func Build(g *graph.Graph, opt Options) *Hierarchy {
	opt = opt.withDefaults()
	start := time.Now()
	n := g.NumVertices()
	c := &contractor{
		g:                 g,
		opt:               opt,
		d:                 newDyngraph(g),
		level:             make([]int32, n),
		rank:              make([]int32, n),
		cn:                make([]int32, n),
		heap:              newVheap(n),
		remainingVertices: n,
		claim:             newStampSet(n),
		dirty:             newStampSet(n),
		nbrSeen:           newStampSet(n),
	}
	for v := int32(0); v < int32(n); v++ {
		c.remainingArcs += len(c.d.out[v])
	}
	c.stats.Workers = opt.Workers
	c.stats.Vertices = n
	c.stats.Arcs = c.remainingArcs
	c.searchers = make([]*witnessSearcher, opt.Workers)
	for i := range c.searchers {
		c.searchers[i] = newWitnessSearcher(n)
	}

	if opt.FixedOrder != nil {
		if !graph.IsPermutation(opt.FixedOrder) || len(opt.FixedOrder) != n {
			panic("ch: FixedOrder is not a permutation of the vertices")
		}
		c.buildFixedOrder()
	} else {
		c.buildBatched()
	}
	h := assemble(g, c.rank, c.level, c.shortcuts)
	if opt.Stats != nil {
		for _, ws := range c.searchers {
			c.stats.WitnessSearches += ws.searches
		}
		c.stats.Shortcuts = len(c.shortcuts)
		c.stats.Total = time.Since(start)
		*opt.Stats = c.stats
	}
	return h
}

// buildBatched is the priority-driven contraction loop, organized in
// independent-set batches: pop a prefix of the heap, keep a
// 2-hop-independent subset (the rest go straight back with their stale
// keys), simulate the subset in parallel against the frozen graph, apply
// the survivors of the lazy priority check in deterministic
// (priority, vertex) order, then re-prioritize every dirtied neighbor in
// parallel before the next round.
func (c *contractor) buildBatched() {
	n := c.g.NumVertices()
	t0 := time.Now()
	initPrios := make([]int64, n)
	c.forEachParallel(n, func(worker int, v int32) {
		sim := c.simulate(v, c.searchers[worker])
		initPrios[v] = c.priority(v, sim)
	})
	for v := int32(0); v < int32(n); v++ {
		c.heap.push(v, initPrios[v])
	}
	c.stats.InitTime = time.Since(t0)

	var (
		cand    []int32     // popped heap prefix
		keys    []int64     // their (possibly stale) heap keys
		sel     []int32     // 2-hop-independent subset, in key order
		selKeys []int64     // heap keys of sel, aligned
		sims    []simResult // parallel simulation results for sel
		fresh   []int64     // fresh priorities for sel, then dirty scratch
		order   []int32     // indices into sel, batch-order sorted
	)
	nextRank := int32(0)
	for !c.heap.empty() {
		c.stats.Batches++
		cand, keys = c.heap.popBatch(cand[:0], keys[:0], c.batchLimit())

		// Select the independent subset in key order; everything else is
		// restored untouched so the heap's relative order is preserved.
		c.claim.reset()
		sel, selKeys = sel[:0], selKeys[:0]
		for i, v := range cand {
			if c.conflicts(v) {
				c.stats.IndependenceDeferred++
				c.heap.push(v, keys[i])
				continue
			}
			c.claimNeighborhood(v)
			sel = append(sel, v)
			selKeys = append(selKeys, keys[i])
		}
		c.stats.SimulatedVertices += int64(len(sel))
		if len(sel) > c.stats.MaxBatch {
			c.stats.MaxBatch = len(sel)
		}

		// Re-simulate the batch in parallel. The graph is frozen, so the
		// results are independent of worker count and schedule.
		t1 := time.Now()
		sims = grow(sims, len(sel))
		fresh = grow(fresh, len(sel))
		c.forEachParallel(len(sel), func(worker int, i int32) {
			sims[i] = c.simulate(sel[i], c.searchers[worker])
			fresh[i] = c.priority(sel[i], sims[i])
		})
		c.stats.SimulateTime += time.Since(t1)

		// Apply in deterministic batch order — fresh priority with vertex
		// ID as tie-breaker, the same rule the heap uses — with the lazy
		// re-evaluation check against the remaining heap top.
		t2 := time.Now()
		order = grow(order, len(sel))
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if fresh[ia] != fresh[ib] {
				return fresh[ia] < fresh[ib]
			}
			return sel[ia] < sel[ib]
		})
		restTop := int64(math.MaxInt64)
		if !c.heap.empty() {
			restTop = c.heap.topKey()
		}
		c.dirty.reset()
		for _, i := range order {
			v := sel[i]
			// Lazy re-evaluation, batch form: contract v only if its
			// fresh priority did not deteriorate past what the heap
			// believed (the eager re-prioritization below keeps keys
			// fresh, so this is the common case) or it still beats the
			// best vertex left in the heap. Requeueing with the fresh
			// priority keeps progress guaranteed: if a round contracts
			// nothing the graph is unchanged, so the next round
			// re-derives the same priorities and its minimum passes.
			if fresh[i] > selKeys[i] && fresh[i] > restTop {
				c.stats.LazyRequeues++
				c.heap.push(v, fresh[i])
				continue
			}
			c.contract(v, sims[i], nextRank, c.dirty)
			nextRank++
		}
		c.stats.ApplyTime += time.Since(t2)

		// Eagerly re-prioritize dirtied neighbors in parallel (instead of
		// relying purely on lazy pop-time re-simulation); key updates are
		// applied sequentially in the deterministic dirty-list order.
		t3 := time.Now()
		dirtied := c.dirty.list
		fresh = grow(fresh, len(dirtied))
		c.forEachParallel(len(dirtied), func(worker int, i int32) {
			u := dirtied[i]
			sim := c.simulate(u, c.searchers[worker])
			fresh[i] = c.priority(u, sim)
		})
		for i, u := range dirtied {
			c.heap.update(u, fresh[i])
		}
		c.stats.Reprioritized += int64(len(dirtied))
		c.stats.ReprioTime += time.Since(t3)
	}
}

// buildFixedOrder contracts vertices in exactly the given sequence, with
// pipelined simulate-ahead: consecutive positions that are pairwise
// 2-hop independent form a run whose simulations are all valid against
// the graph state at the run's start, so the run simulates in parallel
// and then contracts sequentially at its fixed ranks.
func (c *contractor) buildFixedOrder() {
	order := c.opt.FixedOrder
	maxRun := 8 * c.opt.Workers
	if maxRun < 64 {
		maxRun = 64
	}
	var sims []simResult
	for i := 0; i < len(order); {
		c.claim.reset()
		j := i
		for j < len(order) && j-i < maxRun {
			v := order[j]
			if j > i && c.conflicts(v) {
				break // dependent on an earlier run member: next run
			}
			c.claimNeighborhood(v)
			j++
		}
		run := order[i:j]
		c.stats.Batches++
		c.stats.SimulatedVertices += int64(len(run))
		if len(run) > c.stats.MaxBatch {
			c.stats.MaxBatch = len(run)
		}
		t1 := time.Now()
		sims = grow(sims, len(run))
		c.forEachParallel(len(run), func(worker int, k int32) {
			sims[k] = c.simulate(run[k], c.searchers[worker])
		})
		c.stats.SimulateTime += time.Since(t1)
		t2 := time.Now()
		for k, v := range run {
			c.contract(v, sims[k], int32(i+k), nil)
		}
		c.stats.ApplyTime += time.Since(t2)
		i = j
	}
}

// hopLimit returns the current witness-search hop limit given the average
// degree of the uncontracted graph (Section VIII-A schedule).
func (c *contractor) hopLimit() int32 {
	if c.remainingVertices == 0 {
		return 0
	}
	avg := float64(c.remainingArcs) / float64(c.remainingVertices)
	switch {
	case avg <= c.opt.DegreeLow:
		return c.opt.HopLimitLow
	case avg <= c.opt.DegreeMid:
		return c.opt.HopLimitMid
	default:
		return 0 // unlimited
	}
}

// simulate determines the shortcuts contracting v would create, using ws
// for witness searches and neighbor scratch. It does not modify the
// graph, so any number of simulations (with distinct searchers) may run
// concurrently against the same frozen dyngraph.
func (c *contractor) simulate(v int32, ws *witnessSearcher) simResult {
	d := c.d
	ins, outs := ws.ins[:0], ws.outs[:0]
	for _, a := range d.in[v] {
		if !d.contracted[a.to] {
			ins = append(ins, a)
		}
	}
	for _, a := range d.out[v] {
		if !d.contracted[a.to] {
			outs = append(outs, a)
		}
	}
	ws.ins, ws.outs = ins, outs
	res := simResult{removed: len(ins) + len(outs)}
	if len(ins) == 0 || len(outs) == 0 {
		return res
	}
	if c.opt.Customizable {
		// All-pairs shortcuts, no witness pruning: the closure property
		// (see Options.Customizable) must hold for every metric, and a
		// witness under the reference weights proves nothing about
		// others. Parallel arcs to an existing overlay arc are fine —
		// addOrImprove and assemble keep the minimum.
		for _, ua := range ins {
			for _, wa := range outs {
				if wa.to == ua.to {
					continue
				}
				res.shortcuts = append(res.shortcuts, fullArc{
					from: ua.to, to: wa.to, w: graph.AddSat(ua.w, wa.w), mid: v,
				})
				res.hCost += int64(min32(ua.hops, 3) + min32(wa.hops, 3))
			}
		}
		return res
	}
	var maxOut uint32
	for _, a := range outs {
		if a.w > maxOut {
			maxOut = a.w
		}
	}
	hop := c.hopLimit()
	for _, ua := range ins {
		u := ua.to
		bound := graph.AddSat(ua.w, maxOut)
		ws.run(d, u, v, bound, hop)
		for _, wa := range outs {
			w := wa.to
			if w == u {
				continue
			}
			via := graph.AddSat(ua.w, wa.w)
			if ws.distTo(w) > via {
				// (u,v)·(v,w) is the only shortest u→w path: shortcut it.
				res.shortcuts = append(res.shortcuts, fullArc{from: u, to: w, w: via, mid: v})
				res.hCost += int64(min32(ua.hops, 3) + min32(wa.hops, 3))
			}
		}
	}
	return res
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// priority evaluates the weighted ordering function (by default
// 2·ED(u) + CN(u) + H(u) + 5·L(u)) for the simulated contraction of v.
func (c *contractor) priority(v int32, sim simResult) int64 {
	w := c.opt.Priority
	ed := int64(len(sim.shortcuts)) - int64(sim.removed)
	return w.ED*ed + w.CN*int64(c.cn[v]) + w.H*sim.hCost + w.L*int64(c.level[v])
}

// contract applies a simulated contraction: records rank, inserts the
// shortcuts into the overlay graph, and bumps neighbor levels and
// contracted-neighbor counts. Live neighbors are added to dirty (when
// non-nil) so the batch loop can re-prioritize them after the whole
// batch is applied; the FixedOrder path passes nil.
func (c *contractor) contract(v int32, sim simResult, rank int32, dirty *stampSet) {
	d := c.d
	c.rank[v] = rank
	// Collect live neighbors before marking v contracted; a vertex can
	// appear as both in- and out-neighbor, so dedup with a stamp set
	// (iteration order stays deterministic, unlike a map).
	c.nbrSeen.reset()
	c.nbrs = c.nbrs[:0]
	for _, a := range d.out[v] {
		if !d.contracted[a.to] && c.nbrSeen.add(a.to) {
			c.nbrs = append(c.nbrs, a.to)
		}
	}
	for _, a := range d.in[v] {
		if !d.contracted[a.to] && c.nbrSeen.add(a.to) {
			c.nbrs = append(c.nbrs, a.to)
		}
	}
	d.contracted[v] = true
	c.remainingVertices--
	c.remainingArcs -= sim.removed

	for _, s := range sim.shortcuts {
		hops := shortcutHops(d, v, s)
		d.addOrImprove(&d.out[s.from], dynArc{to: s.to, w: s.w, hops: hops, mid: v})
		d.addOrImprove(&d.in[s.to], dynArc{to: s.from, w: s.w, hops: hops, mid: v})
		c.shortcuts = append(c.shortcuts, s)
		c.remainingArcs++
	}

	for _, u := range c.nbrs {
		if c.level[u] < c.level[v]+1 {
			c.level[u] = c.level[v] + 1
		}
		c.cn[u]++
		if dirty != nil {
			dirty.add(u)
		}
	}
}

// shortcutHops computes the hop count of a new shortcut from the hop
// counts of its two constituent arcs.
func shortcutHops(d *dyngraph, v int32, s fullArc) int32 {
	var hIn, hOut int32 = 1, 1
	for _, a := range d.in[v] {
		if a.to == s.from {
			hIn = a.hops
			break
		}
	}
	for _, a := range d.out[v] {
		if a.to == s.to {
			hOut = a.hops
			break
		}
	}
	return hIn + hOut
}

// forEachParallel runs fn(worker, i) for i in [0,n) using the configured
// worker count. Worker 0 runs on the calling goroutine; with one worker
// the loop is purely sequential. fn invocations for a given worker index
// never overlap, so per-worker scratch (witness searchers) is safe.
func (c *contractor) forEachParallel(n int, fn func(worker int, i int32)) {
	workers := c.opt.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, int32(i))
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 1; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(w, int32(i))
			}
		}(w, lo, hi)
	}
	for i := 0; i < chunk && i < n; i++ {
		fn(0, int32(i))
	}
	wg.Wait()
}
