package ch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// hierarchiesIdentical fails the test unless the two hierarchies agree
// on every rank, level, and the shortcut count — the determinism
// guarantee: Workers only divides simulation work, never the order.
func hierarchiesIdentical(t *testing.T, h1, h2 *Hierarchy, label string) {
	t.Helper()
	for v := range h1.Rank {
		if h1.Rank[v] != h2.Rank[v] {
			t.Fatalf("%s: rank of %d differs: %d vs %d", label, v, h1.Rank[v], h2.Rank[v])
		}
		if h1.Level[v] != h2.Level[v] {
			t.Fatalf("%s: level of %d differs: %d vs %d", label, v, h1.Level[v], h2.Level[v])
		}
	}
	if h1.NumShortcuts != h2.NumShortcuts {
		t.Fatalf("%s: shortcut counts differ: %d vs %d", label, h1.NumShortcuts, h2.NumShortcuts)
	}
	if h1.Up.NumArcs() != h2.Up.NumArcs() || h1.Down.NumArcs() != h2.Down.NumArcs() {
		t.Fatalf("%s: arc partitions differ: up %d vs %d, down %d vs %d", label,
			h1.Up.NumArcs(), h2.Up.NumArcs(), h1.Down.NumArcs(), h2.Down.NumArcs())
	}
}

// fullTablesMatchDijkstra checks every s→t distance of both hierarchies
// against a Dijkstra oracle on the original graph.
func fullTablesMatchDijkstra(t *testing.T, g *graph.Graph, hs []*Hierarchy, label string) {
	t.Helper()
	n := int32(g.NumVertices())
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	queries := make([]*Query, len(hs))
	for i, h := range hs {
		queries[i] = NewQuery(h)
	}
	for s := int32(0); s < n; s++ {
		d.Run(s)
		for tt := int32(0); tt < n; tt++ {
			want := d.Dist(tt)
			for i, q := range queries {
				if got := q.Distance(s, tt); got != want {
					t.Fatalf("%s: hierarchy %d: dist(%d,%d)=%d, want %d", label, i, s, tt, got, want)
				}
			}
		}
	}
}

// TestParallelBuildDifferential is the cross-worker equivalence suite:
// on random graphs and grids, hierarchies built with Workers 1, 3, and 8
// must be identical to each other and their full distance tables must
// match Dijkstra exactly.
func TestParallelBuildDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		var g *graph.Graph
		if trial%2 == 0 {
			n := 2 + rng.Intn(48)
			g = randomGraph(rng, n, rng.Intn(5*n), 30)
		} else {
			g = gridGraph(rng, 3+rng.Intn(6), 3+rng.Intn(6), 25)
		}
		h1 := Build(g, Options{Workers: 1})
		h3 := Build(g, Options{Workers: 3})
		h8 := Build(g, Options{Workers: 8})
		hierarchiesIdentical(t, h1, h3, "workers 1 vs 3")
		hierarchiesIdentical(t, h1, h8, "workers 1 vs 8")
		fullTablesMatchDijkstra(t, g, []*Hierarchy{h1, h3, h8}, "trial")
	}
}

// TestParallelBuildDifferentialQuick drives the same property through
// testing/quick: any (seed, size) pair must produce worker-independent,
// Dijkstra-exact hierarchies.
func TestParallelBuildDifferentialQuick(t *testing.T) {
	property := func(seed int64, rawN uint8, rawM uint16) bool {
		n := 2 + int(rawN)%40
		m := int(rawM) % (4 * n)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n, m, 20)
		h1 := Build(g, Options{Workers: 1})
		h4 := Build(g, Options{Workers: 4})
		for v := range h1.Rank {
			if h1.Rank[v] != h4.Rank[v] || h1.Level[v] != h4.Level[v] {
				return false
			}
		}
		if h1.NumShortcuts != h4.NumShortcuts {
			return false
		}
		d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
		q1, q4 := NewQuery(h1), NewQuery(h4)
		for s := int32(0); s < int32(n); s++ {
			d.Run(s)
			for tt := int32(0); tt < int32(n); tt++ {
				want := d.Dist(tt)
				if q1.Distance(s, tt) != want || q4.Distance(s, tt) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFixedOrderParallelSimulateEquivalent checks the pipelined
// FixedOrder path: parallel simulate-ahead must not change correctness,
// ranks, or determinism across worker counts.
func TestFixedOrderParallelSimulateEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := gridGraph(rng, 11, 8, 30)
	order := NestedDissectionOrder(g)
	h1 := Build(g, Options{Workers: 1, FixedOrder: order})
	h4 := Build(g, Options{Workers: 4, FixedOrder: order})
	hierarchiesIdentical(t, h1, h4, "fixed order workers 1 vs 4")
	for i, v := range order {
		if h1.Rank[v] != int32(i) {
			t.Fatalf("rank[%d]=%d, want %d", v, h1.Rank[v], i)
		}
	}
	fullTablesMatchDijkstra(t, g, []*Hierarchy{h1, h4}, "fixed order")
}

// TestBuildStatsPopulated exercises the Options.Stats surface: counters
// must be self-consistent and phase times non-negative.
func TestBuildStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gridGraph(rng, 14, 13, 30)
	var bs BuildStats
	h := Build(g, Options{Workers: 2, Stats: &bs})
	if bs.Workers != 2 {
		t.Fatalf("stats workers %d, want 2", bs.Workers)
	}
	if bs.Vertices != g.NumVertices() {
		t.Fatalf("stats vertices %d, want %d", bs.Vertices, g.NumVertices())
	}
	if bs.Batches == 0 || bs.SimulatedVertices < int64(g.NumVertices()) {
		t.Fatalf("implausible batch counters: %+v", bs)
	}
	if bs.MaxBatch <= 1 {
		t.Fatalf("batching never exceeded one vertex per round: %+v", bs)
	}
	if bs.Shortcuts != h.NumShortcuts {
		t.Fatalf("stats shortcuts %d, hierarchy has %d", bs.Shortcuts, h.NumShortcuts)
	}
	if bs.WitnessSearches == 0 {
		t.Fatal("witness search counter never moved")
	}
	if bs.AvgBatch() <= 1 {
		t.Fatalf("average batch size %.2f, want > 1", bs.AvgBatch())
	}
	if bs.Total <= 0 || bs.SimulateTime < 0 || bs.InitTime < 0 || bs.ApplyTime < 0 || bs.ReprioTime < 0 {
		t.Fatalf("implausible phase times: %+v", bs)
	}
	// The contracted total must be exactly n: every vertex once.
	contracted := bs.SimulatedVertices - bs.LazyRequeues
	if contracted != int64(g.NumVertices()) {
		t.Fatalf("simulated-minus-requeued = %d, want n = %d", contracted, g.NumVertices())
	}
}

// TestBatchedBuildRaceStress is the -race workhorse: a mid-size grid
// contracted with several workers, so the batch simulation, dirty
// re-prioritization, and FixedOrder pipeline all run genuinely
// concurrently under the race detector in CI.
func TestBatchedBuildRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := gridGraph(rng, 60, 55, 40)
	h4 := Build(g, Options{Workers: 4})
	if err := h4.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	hf := Build(g, Options{Workers: 4, FixedOrder: NestedDissectionOrder(g)})
	if err := hf.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Spot-check distances between the two orderings.
	q1, q2 := NewQuery(h4), NewQuery(hf)
	n := int32(g.NumVertices())
	for k := 0; k < 50; k++ {
		s, tt := rng.Int31n(n), rng.Int31n(n)
		if a, b := q1.Distance(s, tt), q2.Distance(s, tt); a != b {
			t.Fatalf("orderings disagree on dist(%d,%d): %d vs %d", s, tt, a, b)
		}
	}
}
