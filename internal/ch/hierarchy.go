// Package ch implements contraction hierarchies (Geisberger et al. [8]),
// the point-to-point technique PHAST builds on (Section II-B), with the
// preprocessing refinements of Section VIII-A: the priority function
// 2·ED(u) + CN(u) + H(u) + 5·L(u) with H capped at 3 per incident arc,
// hop-limited witness searches (5 hops while the average degree of the
// uncontracted graph is below 5, 10 hops below degree 10, unlimited
// beyond), and parallel re-prioritization of the neighbors of each
// contracted vertex.
package ch

import (
	"fmt"
	"sort"

	"phast/internal/graph"
)

// Hierarchy is the output of CH preprocessing over a graph G: the
// contraction order (Rank), the vertex levels used by PHAST's sweep
// (Level), and the upward/downward search graphs over A ∪ A+.
type Hierarchy struct {
	// G is the input graph (original arcs only).
	G *graph.Graph
	// Rank[v] is v's position in the contraction order; the vertex
	// contracted first has rank 0 and the most important vertex rank n-1.
	Rank []int32
	// Level[v] is the CH level of Section IV-A: 0 for vertices contracted
	// with no previously contracted neighbor, and otherwise one more than
	// the highest level among previously contracted neighbors.
	Level []int32
	// Up contains the arcs (v,w) of A ∪ A+ with Rank[v] < Rank[w], as
	// out-arcs of v; the CH forward search and PHAST's first phase run on
	// it. Parallel arcs are merged keeping the minimum weight.
	Up *graph.Graph
	// Down contains the arcs (v,w) with Rank[v] > Rank[w] as out-arcs of
	// v. It is used for path unpacking and for building DownIn.
	Down *graph.Graph
	// DownIn is the incoming-arc representation of Down exactly as
	// Section IV-A prescribes: DownIn.Arcs(v) lists the arcs (u,v) ∈ A↓
	// with Head holding the *tail* u. PHAST's linear sweep scans it.
	DownIn *graph.Graph
	// UpMid, DownMid and DownInMid are aligned with the arc lists of the
	// corresponding graphs: the vertex that was contracted to create the
	// shortcut, or -1 for an original arc. They drive path unpacking.
	UpMid, DownMid, DownInMid []int32
	// NumShortcuts is the number of shortcut arcs in A+ after merging.
	NumShortcuts int
	// MaxLevel is max over Level.
	MaxLevel int32
	// MetricEpoch and MetricName identify the weight vector this
	// hierarchy carries. Hierarchies produced by Build are epoch 0 with
	// an empty name (the reference metric); Topology.Customize stamps
	// the epoch/name the caller passed, and the serialization format
	// round-trips both so a reloaded hierarchy still says which metric
	// it answers for.
	MetricEpoch int64
	MetricName  string
}

// fullArc is an arc of A ∪ A+ before splitting into Up and Down.
type fullArc struct {
	from, to int32
	w        uint32
	mid      int32
}

// assemble builds the Up/Down/DownIn graphs from the original arcs and
// the shortcut list produced by contraction.
func assemble(g *graph.Graph, rank, level []int32, shortcuts []fullArc) *Hierarchy {
	n := g.NumVertices()
	var up, down []fullArc
	add := func(a fullArc) {
		if a.from == a.to {
			return
		}
		if rank[a.from] < rank[a.to] {
			up = append(up, a)
		} else {
			down = append(down, a)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		for _, a := range g.Arcs(v) {
			add(fullArc{from: v, to: a.Head, w: a.Weight, mid: -1})
		}
	}
	for _, s := range shortcuts {
		add(s)
	}
	upG, upMid := buildWithMids(n, up, false)
	downG, downMid := buildWithMids(n, down, false)
	downInG, downInMid := buildWithMids(n, down, true)
	maxLevel := int32(0)
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	h := &Hierarchy{
		G: g, Rank: rank, Level: level,
		Up: upG, Down: downG, DownIn: downInG,
		UpMid: upMid, DownMid: downMid, DownInMid: downInMid,
		NumShortcuts: len(shortcuts),
		MaxLevel:     maxLevel,
	}
	return h
}

// buildWithMids builds a CSR graph plus an aligned mid array from arc
// triples, merging parallel arcs (minimum weight wins and keeps its mid).
// If transpose is set, arcs are keyed by head and store the tail — the
// DownIn layout.
func buildWithMids(n int, arcs []fullArc, transpose bool) (*graph.Graph, []int32) {
	key := make([]fullArc, len(arcs))
	copy(key, arcs)
	if transpose {
		for i := range key {
			key[i].from, key[i].to = key[i].to, key[i].from
		}
	}
	sort.Slice(key, func(i, j int) bool {
		a, b := key[i], key[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.w < b.w
	})
	// Assemble the CSR arrays directly: the input is already sorted by
	// (from,to), so mids stays aligned with the arc list, and skipping
	// the builder keeps saturated shortcut weights (path sums above
	// graph.MaxWeight, up to Inf) legal — AddSat arithmetic handles them
	// everywhere downstream.
	first := make([]int32, n+1)
	out := make([]graph.Arc, 0, len(key))
	var mids []int32
	for i, a := range key {
		if i > 0 && key[i-1].from == a.from && key[i-1].to == a.to {
			continue // parallel arc; the lighter one came first
		}
		first[a.from+1]++
		out = append(out, graph.Arc{Head: a.to, Weight: a.w})
		mids = append(mids, a.mid)
	}
	for v := 0; v < n; v++ {
		first[v+1] += first[v]
	}
	g, err := graph.FromRaw(first, out)
	if err != nil {
		panic("ch: assembling hierarchy graph: " + err.Error())
	}
	return g, mids
}

// Permute relabels the hierarchy with perm (old→new), returning a new
// hierarchy whose graphs, ranks, levels and mids all use new IDs. PHAST
// applies it with the level-descending layout of Section IV-A.
func (h *Hierarchy) Permute(perm []int32) (*Hierarchy, error) {
	if !graph.IsPermutation(perm) || len(perm) != h.G.NumVertices() {
		return nil, fmt.Errorf("ch: invalid permutation")
	}
	// Graph.Permute relabels without revalidating weights (customized
	// metrics legitimately carry Inf for closed arcs, which the builder
	// would reject); it emits arcs of each new vertex in the old
	// adjacency order of its pre-image, so the mid arrays permute with
	// the same iteration.
	permGraphMids := func(g *graph.Graph, mids []int32) (*graph.Graph, []int32, error) {
		g2, err := g.Permute(perm)
		if err != nil {
			return nil, nil, err
		}
		n := g.NumVertices()
		inv := graph.InvertPermutation(perm)
		out := make([]int32, 0, len(mids))
		for newV := int32(0); newV < int32(n); newV++ {
			old := inv[newV]
			first := g.FirstOut()[old]
			for i := range g.Arcs(old) {
				mid := mids[int(first)+i]
				if mid >= 0 {
					mid = perm[mid]
				}
				out = append(out, mid)
			}
		}
		return g2, out, nil
	}
	g2, err := h.G.Permute(perm)
	if err != nil {
		return nil, err
	}
	up, upMid, err := permGraphMids(h.Up, h.UpMid)
	if err != nil {
		return nil, err
	}
	down, downMid, err := permGraphMids(h.Down, h.DownMid)
	if err != nil {
		return nil, err
	}
	downIn, downInMid, err := permGraphMids(h.DownIn, h.DownInMid)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		G:     g2,
		Rank:  graph.ApplyPermutation(perm, append([]int32(nil), h.Rank...)),
		Level: graph.ApplyPermutation(perm, append([]int32(nil), h.Level...)),
		Up:    up, Down: down, DownIn: downIn,
		UpMid: upMid, DownMid: downMid, DownInMid: downInMid,
		NumShortcuts: h.NumShortcuts,
		MaxLevel:     h.MaxLevel,
		MetricEpoch:  h.MetricEpoch,
		MetricName:   h.MetricName,
	}, nil
}

// LevelSizes returns the number of vertices on each level, the data
// behind Figure 1.
func (h *Hierarchy) LevelSizes() []int {
	sizes := make([]int, h.MaxLevel+1)
	for _, l := range h.Level {
		sizes[l]++
	}
	return sizes
}

// CheckInvariants verifies the structural CH invariants (used by tests):
// ranks form a permutation, every Up arc increases rank and level, every
// Down arc decreases rank and level (Lemma 4.1), and DownIn is the exact
// transpose of Down.
func (h *Hierarchy) CheckInvariants() error {
	n := h.G.NumVertices()
	if !graph.IsPermutation(h.Rank) {
		return fmt.Errorf("ch: ranks are not a permutation")
	}
	for v := int32(0); v < int32(n); v++ {
		for _, a := range h.Up.Arcs(v) {
			if h.Rank[v] >= h.Rank[a.Head] {
				return fmt.Errorf("ch: up arc (%d,%d) does not increase rank", v, a.Head)
			}
			if h.Level[v] >= h.Level[a.Head] {
				return fmt.Errorf("ch: up arc (%d,%d) does not increase level", v, a.Head)
			}
		}
		for _, a := range h.Down.Arcs(v) {
			if h.Rank[v] <= h.Rank[a.Head] {
				return fmt.Errorf("ch: down arc (%d,%d) does not decrease rank", v, a.Head)
			}
			if h.Level[v] <= h.Level[a.Head] {
				return fmt.Errorf("ch: down arc (%d,%d) does not decrease level (Lemma 4.1)", v, a.Head)
			}
		}
	}
	dt := h.Down.Transpose()
	if dt.NumArcs() != h.DownIn.NumArcs() {
		return fmt.Errorf("ch: DownIn arc count %d != transpose(Down) %d", h.DownIn.NumArcs(), dt.NumArcs())
	}
	for v := int32(0); v < int32(n); v++ {
		a, b := dt.Arcs(v), h.DownIn.Arcs(v)
		if len(a) != len(b) {
			return fmt.Errorf("ch: DownIn degree mismatch at %d", v)
		}
	}
	return nil
}
