package ch

import "phast/internal/graph"

// witnessSearcher runs the local Dijkstra searches that decide whether a
// shortcut is needed (Section II-B). Searches are limited by a distance
// bound and a hop count (Section VIII-A); a truncated search can only
// over-estimate distances, which adds superfluous shortcuts but never
// breaks correctness. Each worker owns one searcher, so contraction can
// re-prioritize neighbors in parallel without sharing scratch state.
type witnessSearcher struct {
	dist    []uint32
	hops    []int32
	stamp   []int32
	version int32
	heap    *vheap
	// searches counts run invocations; per-searcher so the hot path
	// needs no atomics — Build sums the pool into BuildStats.
	searches int64
	// ins/outs are simulate's per-call live-neighbor scratch; keeping
	// them on the searcher makes simulation allocation-free after
	// warm-up (phastlint hotalloc would flag fresh-slice appends).
	ins, outs []dynArc
}

func newWitnessSearcher(n int) *witnessSearcher {
	return &witnessSearcher{
		dist:  make([]uint32, n),
		hops:  make([]int32, n),
		stamp: make([]int32, n),
		heap:  newVheap(n),
	}
}

// run computes upper bounds on distances from source in the remaining
// graph, skipping `excluded` (the vertex being contracted) and all
// already-contracted vertices. It stops when the bound is exceeded or
// hopLimit (<=0 means unlimited) would be. Distances of settled and
// labeled vertices are readable via distTo until the next run.
//
//phast:hotpath
func (ws *witnessSearcher) run(d *dyngraph, source, excluded int32, bound uint32, hopLimit int32) {
	ws.version++
	ws.searches++
	for !ws.heap.empty() { // clear leftovers from an aborted run
		ws.heap.pop()
	}
	ws.set(source, 0, 0)
	ws.heap.push(source, 0)
	for !ws.heap.empty() {
		v, kv := ws.heap.pop()
		dv := uint32(kv)
		if dv > bound {
			break
		}
		if hopLimit > 0 && ws.hops[v] >= hopLimit {
			continue // may not extend this path further
		}
		for _, a := range d.out[v] {
			if a.to == excluded || d.contracted[a.to] {
				continue
			}
			nd := graph.AddSat(dv, a.w)
			if nd > bound {
				continue
			}
			if nd < ws.distTo(a.to) {
				ws.set(a.to, nd, ws.hops[v]+1)
				ws.heap.update(a.to, int64(nd))
			}
		}
	}
	// Leftover heap entries (beyond bound) are cleared lazily next run.
}

//phast:hotpath
func (ws *witnessSearcher) set(v int32, dist uint32, hops int32) {
	ws.dist[v] = dist
	ws.hops[v] = hops
	ws.stamp[v] = ws.version
}

// distTo returns the best distance label found for v by the last run, or
// graph.Inf.
//
//phast:hotpath
func (ws *witnessSearcher) distTo(v int32) uint32 {
	if ws.stamp[v] != ws.version {
		return graph.Inf
	}
	return ws.dist[v]
}
