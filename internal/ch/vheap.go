package ch

// vheap is an updatable binary min-heap over vertices keyed by signed
// 64-bit priorities, with vertex ID as tie-breaker so contraction orders
// are deterministic. It is private to CH preprocessing; the queues in
// internal/pq are keyed by uint32 distances and are not suitable here
// because ED(u) can make priorities negative.
type vheap struct {
	vs   []int32
	keys []int64
	pos  []int32 // -1 if absent
}

func newVheap(n int) *vheap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &vheap{pos: pos}
}

func (h *vheap) len() int              { return len(h.vs) }
func (h *vheap) empty() bool           { return len(h.vs) == 0 }
func (h *vheap) contains(v int32) bool { return h.pos[v] >= 0 }

// topKey returns the minimum key; the heap must be non-empty.
func (h *vheap) topKey() int64 { return h.keys[0] }

func (h *vheap) less(i, j int32) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.vs[i] < h.vs[j]
}

func (h *vheap) swap(i, j int32) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.vs[i]] = i
	h.pos[h.vs[j]] = j
}

func (h *vheap) push(v int32, key int64) {
	i := int32(len(h.vs))
	h.vs = append(h.vs, v)
	h.keys = append(h.keys, key)
	h.pos[v] = i
	h.up(i)
}

// update changes v's key in either direction, inserting if absent.
func (h *vheap) update(v int32, key int64) {
	i := h.pos[v]
	if i < 0 {
		h.push(v, key)
		return
	}
	old := h.keys[i]
	h.keys[i] = key
	if key < old {
		h.up(i)
	} else {
		h.down(i)
	}
}

// popBatch pops up to max entries in ascending key order, appending the
// vertices to vs and their keys to keys (callers pass scratch[:0] to
// reuse capacity). Candidates a round does not contract are restored
// with push/update: rejected-unsimulated ones with the key popped here,
// re-simulated ones with their fresh priority.
func (h *vheap) popBatch(vs []int32, keys []int64, max int) ([]int32, []int64) {
	for i := 0; i < max && !h.empty(); i++ {
		v, k := h.pop()
		vs = append(vs, v)
		keys = append(keys, k)
	}
	return vs, keys
}

func (h *vheap) pop() (int32, int64) {
	v, key := h.vs[0], h.keys[0]
	last := int32(len(h.vs) - 1)
	h.swap(0, last)
	h.vs = h.vs[:last]
	h.keys = h.keys[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, key
}

func (h *vheap) up(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *vheap) down(i int32) {
	n := int32(len(h.vs))
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}
