package server_test

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/pq"
	"phast/internal/server"
	"phast/internal/sssp"
)

// TestServerStressCompressedBatch drives the dispatcher's batch path —
// MultiTreeParallel over pooled engines followed by per-lane
// CopyLaneDistances — on a compressed engine, whose multi kernels run
// the lane-major (SoA) layout of packedz_soa.go. Written for -race:
// concurrent QueryMany callers force lanes from different callers into
// shared sweeps, so the SoA transpose in CopyLaneDistances and the
// chunk-scheduled decode-once kernels interleave with admission and
// result recycling. Every distance is checked against Dijkstra, so a
// torn or misrouted lane fails loudly rather than racing silently.
func TestServerStressCompressedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	g := gridGraph(rng, 9, 8, 35)
	n := g.NumVertices()
	h := ch.Build(g, ch.Options{Workers: 1})
	proto, err := core.NewEngine(h, core.Options{
		Workers: 2, CompressedSweep: true, ParallelGrain: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !proto.MultiLaneMajor() {
		t.Fatal("compressed engine did not mount the lane-major multi kernels")
	}
	s, err := server.New(proto, server.Options{
		MaxBatch: 6, Engines: 2, QueueSize: 16,
		Linger: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	// Ground truth per source, computed once up front.
	want := make([][]uint32, n)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for v := 0; v < n; v++ {
		d.Run(int32(v))
		want[v] = make([]uint32, n)
		for u := int32(0); u < int32(n); u++ {
			want[v][u] = d.Dist(u)
		}
	}

	goroutines := runtime.NumCPU() * 4
	iters := stressIters(t, 30)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + w)))
			for i := 0; i < iters; i++ {
				sources := make([]int32, 1+rng.Intn(6))
				for j := range sources {
					sources[j] = int32(rng.Intn(n))
				}
				results, err := s.QueryMany(context.Background(), sources)
				if err != nil {
					t.Errorf("QueryMany: %v", err)
					return
				}
				for j, res := range results {
					src := sources[j]
					if res.Source() != src {
						t.Errorf("lane mixup: result %d has source %d, want %d",
							j, res.Source(), src)
					}
					for u := int32(0); u < int32(n); u += 5 {
						if got := res.Dist(u); got != want[src][u] {
							t.Errorf("src %d: dist(%d)=%d, want %d", src, u, got, want[src][u])
							break
						}
					}
					res.Release()
				}
			}
		}(w)
	}
	wg.Wait()
}
