package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/server"
	"phast/internal/sssp"
)

// The differential oracle: every tree the concurrent server returns must
// be identical, label for label, to a sequential Dijkstra run over the
// original graph. Batching, lane assignment, engine pooling, buffer
// pooling and result fan-out all sit between the two, so any aliasing or
// lane-mixup bug shows up as a mismatch here.

// oracleConfig is one graph instance the differential suite replays.
type oracleConfig struct {
	name string
	g    *graph.Graph
}

func oracleConfigs() []oracleConfig {
	var cfgs []oracleConfig
	for _, seed := range []int64{101, 102, 103} {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(150)
		cfgs = append(cfgs, oracleConfig{
			name: fmt.Sprintf("gilbert/seed=%d", seed),
			g:    gilbertGraph(rng, n, 4/float64(n), 1000),
		})
	}
	for _, seed := range []int64{201, 202} {
		rng := rand.New(rand.NewSource(seed))
		cfgs = append(cfgs, oracleConfig{
			name: fmt.Sprintf("grid/seed=%d", seed),
			g:    gridGraph(rng, 14+rng.Intn(6), 12+rng.Intn(6), 30),
		})
	}
	return cfgs
}

// TestConcurrentQueriesMatchDijkstra fires concurrent Query calls at a
// batching server and checks every returned tree element-wise against a
// per-goroutine Dijkstra solver. Across all configs it verifies well
// over 1000 concurrent queries (the acceptance floor).
func TestConcurrentQueriesMatchDijkstra(t *testing.T) {
	const (
		goroutines       = 8
		queriesPerClient = 40
	)
	var verified atomic.Int64
	for _, cfg := range oracleConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			n := cfg.g.NumVertices()
			s := newServer(t, cfg.g, server.Options{
				MaxBatch: 8, Engines: 2, Linger: 100 * time.Microsecond,
			})
			var wg sync.WaitGroup
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000 + w)))
					oracle := sssp.NewDijkstra(cfg.g, pq.KindBinaryHeap)
					want := make([]uint32, n)
					for q := 0; q < queriesPerClient; q++ {
						src := int32(rng.Intn(n))
						res, err := s.Query(context.Background(), src)
						if err != nil {
							t.Errorf("client %d query %d: %v", w, q, err)
							return
						}
						if res.Source() != src {
							t.Errorf("client %d: got tree for source %d, want %d", w, res.Source(), src)
							res.Release()
							return
						}
						oracle.Run(src)
						oracle.CopyDistances(want)
						got := res.Distances()
						for v := range want {
							if got[v] != want[v] {
								t.Errorf("client %d src %d: dist(%d)=%d, Dijkstra says %d",
									w, src, v, got[v], want[v])
								res.Release()
								return
							}
						}
						res.Release()
						verified.Add(1)
					}
				}(w)
			}
			wg.Wait()
			st := s.Stats()
			if st.Queries < goroutines*queriesPerClient {
				t.Fatalf("server served %d queries, want %d", st.Queries, goroutines*queriesPerClient)
			}
		})
	}
	if v := verified.Load(); v < 1000 {
		t.Fatalf("differential oracle verified only %d concurrent queries, want ≥1000", v)
	}
	t.Logf("differential oracle verified %d concurrent queries", verified.Load())
}

// TestQueryManyMatchesSingleTree cross-checks the batched QueryMany path
// against the engine's own single-source Tree on a private clone.
func TestQueryManyMatchesSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	g := gridGraph(rng, 16, 14, 40)
	n := g.NumVertices()
	proto := newCoreEngine(t, g, 1)
	s, err := server.New(proto, server.Options{MaxBatch: 16, Engines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := proto.Clone()
	want := make([]uint32, n)
	for _, k := range []int{1, 5, 16, 23} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(n))
		}
		results, err := s.QueryMany(context.Background(), sources)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != k {
			t.Fatalf("QueryMany returned %d results, want %d", len(results), k)
		}
		for i, res := range results {
			if res.Source() != sources[i] {
				t.Fatalf("result %d is for source %d, want %d", i, res.Source(), sources[i])
			}
			ref.Tree(sources[i])
			ref.CopyDistances(want)
			got := res.Distances()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("k=%d tree %d (src %d): dist(%d)=%d, Tree says %d",
						k, i, sources[i], v, got[v], want[v])
				}
			}
			res.Release()
		}
	}
}

// TestResultsSurviveLaterSweeps pins the no-aliasing guarantee at the
// server level: a result held while hundreds of later queries run
// through the same pooled engines must not change.
func TestResultsSurviveLaterSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	g := gilbertGraph(rng, 250, 4.0/250, 500)
	n := g.NumVertices()
	s := newServer(t, g, server.Options{MaxBatch: 8, Engines: 1})
	held, err := s.Query(context.Background(), 17)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]uint32, n)
	copy(snapshot, held.Distances())
	for q := 0; q < 200; q++ {
		res, err := s.Query(context.Background(), int32(rng.Intn(n)))
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	for v, want := range snapshot {
		if got := held.Dist(int32(v)); got != want {
			t.Fatalf("held result mutated by later sweeps at vertex %d: %d -> %d", v, want, got)
		}
	}
	held.Release()
}
