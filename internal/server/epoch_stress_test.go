package server_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/server"
	"phast/internal/sssp"
)

// TestEpochSwapUnderLoad hammers a TreeServer with concurrent queries
// while a background goroutine keeps customizing and installing new
// metric epochs and another keeps resizing the shared worker pool.
// Designed to run under -race. Beyond surviving, every result must be
// *consistent*: its epoch tag must lie between the last install that
// completed before the query was enqueued and the last install
// announced by the time the result was received, and its distances
// must be exactly the Dijkstra distances of the weight vector that
// was installed under that epoch — i.e. a swap mid-traffic never
// yields a tree mixing two metrics or a stale tag.
func TestEpochSwapUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := gridGraph(rng, 8, 6, 40)
	n := g.NumVertices()
	topo, err := ch.BuildCustomizable(g, ch.Options{Workers: 2})
	if err != nil {
		t.Fatalf("BuildCustomizable: %v", err)
	}
	base, err := core.NewEngine(topo.Hierarchy(), core.Options{Workers: 2, ParallelGrain: 16})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-customize a cycle of weight vectors and precompute each one's
	// full Dijkstra oracle, so queriers can verify any epoch's distances.
	const variants = 3
	engines := make([]*core.Engine, variants)
	oracles := make([][][]uint32, variants) // [variant][source][vertex]
	weightsOf := func(v int) []uint32 {
		r := rand.New(rand.NewSource(int64(1000 + v)))
		w := make([]uint32, g.NumArcs())
		for i := range w {
			if r.Intn(12) == 0 {
				w[i] = graph.Inf
			} else {
				w[i] = uint32(r.Intn(300))
			}
		}
		return w
	}
	for v := 0; v < variants; v++ {
		w := weightsOf(v)
		h2, err := topo.Customize(w, ch.CustomizeOptions{Epoch: int64(v + 1)})
		if err != nil {
			t.Fatalf("Customize variant %d: %v", v, err)
		}
		if engines[v], err = core.NewEngineSharingPool(base, h2); err != nil {
			t.Fatalf("NewEngineSharingPool variant %d: %v", v, err)
		}
		gw, err := g.WithWeights(w)
		if err != nil {
			t.Fatal(err)
		}
		dij := sssp.NewDijkstra(gw, pq.KindBinaryHeap)
		oracles[v] = make([][]uint32, n)
		for s := 0; s < n; s++ {
			dij.Run(int32(s))
			d := make([]uint32, n)
			for u := 0; u < n; u++ {
				d[u] = dij.Dist(int32(u))
			}
			oracles[v][s] = d
		}
	}
	// The base (reference) metric is variant index -1; oracle from the
	// original weights.
	baseOracle := make([][]uint32, n)
	{
		dij := sssp.NewDijkstra(g, pq.KindBinaryHeap)
		for s := 0; s < n; s++ {
			dij.Run(int32(s))
			d := make([]uint32, n)
			for u := 0; u < n; u++ {
				d[u] = dij.Dist(int32(u))
			}
			baseOracle[s] = d
		}
	}

	srv, err := server.New(base, server.Options{MaxBatch: 4, Engines: 2, Linger: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Epoch-bound bookkeeping. The server's initial install of the
	// default metric is epoch 1. A single installer goroutine owns all
	// further installs, so it can announce each epoch — and record which
	// variant it carries — *before* the install publishes it.
	var announced, completed atomic.Uint64
	announced.Store(1)
	completed.Store(1)
	var epochVariant sync.Map // epoch → variant index (-1 = reference)
	epochVariant.Store(uint64(1), -1)

	const installs = 25
	const queriers = 4
	const queriesEach = 150

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // installer: keeps swapping the default metric's epoch
		defer wg.Done()
		next := uint64(2)
		for i := 0; i < installs; i++ {
			v := i % variants
			announced.Store(next)
			epochVariant.Store(next, v)
			ep, err := srv.InstallMetric(server.DefaultMetric, engines[v])
			if err != nil {
				t.Errorf("InstallMetric: %v", err)
				return
			}
			if ep != next {
				t.Errorf("install %d got epoch %d, expected %d", i, ep, next)
				return
			}
			completed.Store(ep)
			next = ep + 1
		}
	}()
	wg.Add(1)
	go func() { // resizer: exercises SetWorkers against live sweeps
		defer wg.Done()
		for i := 0; i < 60; i++ {
			_ = base.SetWorkers(1 + i%3) // "sweep in flight" errors are expected
		}
	}()
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesEach; i++ {
				src := int32(r.Intn(n))
				lo := completed.Load()
				res, err := srv.Query(context.Background(), src)
				hi := announced.Load()
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				ep := res.Epoch()
				if ep < lo || ep > hi {
					t.Errorf("result epoch %d outside active window [%d,%d]", ep, lo, hi)
				}
				vi, ok := epochVariant.Load(ep)
				if !ok {
					t.Errorf("result epoch %d was never announced", ep)
				} else {
					oracle := baseOracle
					if v := vi.(int); v >= 0 {
						oracle = oracles[v]
					}
					for probe := 0; probe < 5; probe++ {
						u := int32(r.Intn(n))
						if got, want := res.Dist(u), oracle[src][u]; got != want {
							t.Errorf("epoch %d: dist %d->%d = %d, its metric's Dijkstra says %d", ep, src, u, got, want)
							break
						}
					}
				}
				res.Release()
			}
		}(int64(42 + q))
	}
	wg.Wait()

	st := srv.Stats()
	if st.MetricSwaps != installs+1 {
		t.Fatalf("MetricSwaps = %d, want %d", st.MetricSwaps, installs+1)
	}
	if ep, ok := srv.ActiveEpoch(server.DefaultMetric); !ok || ep != installs+1 {
		t.Fatalf("ActiveEpoch = %d,%v, want %d", ep, ok, installs+1)
	}
}

// TestQueryMetricNamedEpochs covers the multi-metric half: a second
// named metric installed mid-traffic becomes queryable exactly from
// its install on, its results carry its own name and epoch, and an
// uninstalled name fails with ErrUnknownMetric.
func TestQueryMetricNamedEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gridGraph(rng, 6, 5, 30)
	n := g.NumVertices()
	topo, err := ch.BuildCustomizable(g, ch.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.NewEngine(topo.Hierarchy(), core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(base, server.Options{MaxBatch: 4, Engines: 1, Linger: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := srv.QueryMetric(context.Background(), "truck", 0); !errors.Is(err, server.ErrUnknownMetric) {
		t.Fatalf("uninstalled metric returned %v, want ErrUnknownMetric", err)
	}

	w := make([]uint32, g.NumArcs())
	for i := range w {
		w[i] = uint32(rng.Intn(200))
	}
	h2, err := topo.Customize(w, ch.CustomizeOptions{Epoch: 1, Name: "truck"})
	if err != nil {
		t.Fatal(err)
	}
	truck, err := core.NewEngineSharingPool(base, h2)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := srv.InstallMetric("truck", truck)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := g.WithWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	dij := sssp.NewDijkstra(gw, pq.KindBinaryHeap)
	for trial := 0; trial < 5; trial++ {
		src := int32(rng.Intn(n))
		res, err := srv.QueryMetric(context.Background(), "truck", src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metric() != "truck" || res.Epoch() != ep {
			t.Fatalf("result tagged (%q, %d), want (\"truck\", %d)", res.Metric(), res.Epoch(), ep)
		}
		dij.Run(src)
		for u := 0; u < n; u++ {
			if got, want := res.Dist(int32(u)), dij.Dist(int32(u)); got != want {
				t.Fatalf("truck dist %d->%d = %d, Dijkstra says %d", src, u, got, want)
			}
		}
		// The default metric keeps answering with the original weights.
		def, err := srv.Query(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		if def.Metric() != server.DefaultMetric {
			t.Fatalf("default result tagged %q", def.Metric())
		}
		def.Release()
		res.Release()
	}
}
