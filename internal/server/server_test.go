package server_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/server"
)

// gridGraph builds a w×h grid with random symmetric weights — the
// road-network-like test instance used across the repo.
func gridGraph(rng *rand.Rand, w, h, maxW int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				wt := uint32(1 + rng.Intn(maxW))
				b.MustAddArc(id(x, y), id(x+1, y), wt)
				b.MustAddArc(id(x+1, y), id(x, y), wt)
			}
			if y+1 < h {
				wt := uint32(1 + rng.Intn(maxW))
				b.MustAddArc(id(x, y), id(x, y+1), wt)
				b.MustAddArc(id(x, y+1), id(x, y), wt)
			}
		}
	}
	return b.Build()
}

// gilbertGraph builds a directed G(n,p) Gilbert graph with weights in
// [1,maxW]; sparse p keeps it road-network-degree-ish but with none of
// the grid's regularity.
func gilbertGraph(rng *rand.Rand, n int, p float64, maxW int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				b.MustAddArc(int32(u), int32(v), uint32(1+rng.Intn(maxW)))
			}
		}
	}
	return b.Build()
}

// newCoreEngine preprocesses g once and returns the prototype engine a
// server pool clones.
func newCoreEngine(t testing.TB, g *graph.Graph, workers int) *core.Engine {
	t.Helper()
	h := ch.Build(g, ch.Options{Workers: 1})
	e, err := core.NewEngine(h, core.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newServer(t testing.TB, g *graph.Graph, opt server.Options) *server.TreeServer {
	t.Helper()
	s, err := server.New(newCoreEngine(t, g, 1), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOptionsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng := newCoreEngine(t, gridGraph(rng, 4, 4, 10), 1)
	for _, opt := range []server.Options{
		{MaxBatch: -1},
		{Engines: -2},
		{QueueSize: -1},
		{Overload: server.OverloadPolicy(7)},
	} {
		if _, err := server.New(eng, opt); err == nil {
			t.Fatalf("options %+v accepted", opt)
		}
	}
	s, err := server.New(eng, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() != 16 {
		t.Fatalf("NumVertices=%d, want 16", s.NumVertices())
	}
	s.Close()
}

func TestQuerySourceOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := newServer(t, gridGraph(rng, 5, 5, 10), server.Options{})
	if _, err := s.Query(context.Background(), -1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := s.Query(context.Background(), 25); err == nil {
		t.Fatal("source ≥ n accepted")
	}
	if _, err := s.QueryMany(context.Background(), []int32{3, 99}); err == nil {
		t.Fatal("QueryMany with out-of-range source accepted")
	}
}

func TestStatsCountQueriesAndBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := newServer(t, gridGraph(rng, 8, 8, 20), server.Options{
		MaxBatch: 4, Engines: 1, Linger: 2 * time.Millisecond,
	})
	sources := make([]int32, 10)
	for i := range sources {
		sources[i] = int32(rng.Intn(64))
	}
	results, err := s.QueryMany(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Source() != sources[i] {
			t.Fatalf("result %d has source %d, want %d", i, r.Source(), sources[i])
		}
		r.Release()
	}
	st := s.Stats()
	if st.Queries != 10 {
		t.Fatalf("Queries=%d, want 10", st.Queries)
	}
	// 10 sources with MaxBatch 4 need at least ⌈10/4⌉ = 3 sweeps.
	if st.Batches < 3 {
		t.Fatalf("Batches=%d, want ≥3", st.Batches)
	}
	if st.MeanBatchOccupancy <= 0 || st.MeanBatchOccupancy > 4 {
		t.Fatalf("MeanBatchOccupancy=%v, want in (0,4]", st.MeanBatchOccupancy)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("QueueDepth=%d after drain, want 0", st.QueueDepth)
	}
	if st.QueueHighWater < 1 {
		t.Fatalf("QueueHighWater=%d, want ≥1", st.QueueHighWater)
	}
	// Bandwidth accounting: every batch adds sweep time and modeled bytes.
	if st.SweepSeconds <= 0 {
		t.Fatalf("SweepSeconds=%v after %d batches, want >0", st.SweepSeconds, st.Batches)
	}
	if st.SweepBytes == 0 {
		t.Fatal("SweepBytes=0 after batches")
	}
	if st.SweepGBps <= 0 {
		t.Fatalf("SweepGBps=%v, want >0", st.SweepGBps)
	}
	// Layout accounting: the default engine sweeps the packed stream.
	if st.StreamBytes == 0 {
		t.Fatal("StreamBytes=0")
	}
	if st.StreamCompressionRatio != 1 {
		t.Fatalf("StreamCompressionRatio=%v for the uncompressed layout, want 1", st.StreamCompressionRatio)
	}
}

// TestCompressedServerStats serves trees from a compressed-stream
// engine and checks both the labels (vs an uncompressed server) and the
// layout accounting the stats surface.
func TestCompressedServerStats(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gridGraph(rng, 12, 10, 30)
	h := ch.Build(g, ch.Options{Workers: 1})
	zEng, err := core.NewEngine(h, core.Options{Workers: 1, CompressedSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	zs, err := server.New(zEng, server.Options{Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer zs.Close()
	ps := newServer(t, g, server.Options{Engines: 1})
	for trial := 0; trial < 4; trial++ {
		src := int32(rng.Intn(g.NumVertices()))
		zr, err := zs.Query(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := ps.Query(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if zr.Dist(int32(v)) != pr.Dist(int32(v)) {
				t.Fatalf("src %d: compressed dist(%d)=%d, packed %d", src, v, zr.Dist(int32(v)), pr.Dist(int32(v)))
			}
		}
		zr.Release()
		pr.Release()
	}
	st := zs.Stats()
	if st.StreamBytes == 0 {
		t.Fatal("compressed server reports StreamBytes=0")
	}
	if st.StreamCompressionRatio <= 0 || st.StreamCompressionRatio >= 1 {
		t.Fatalf("StreamCompressionRatio=%v, want in (0,1)", st.StreamCompressionRatio)
	}
	if pst := ps.Stats(); st.StreamBytes >= pst.StreamBytes {
		t.Fatalf("compressed stream (%d B) not smaller than packed (%d B)", st.StreamBytes, pst.StreamBytes)
	}
}

func TestContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := newServer(t, gridGraph(rng, 6, 6, 10), server.Options{Engines: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Query(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query returned %v, want context.Canceled", err)
	}
	// A canceled request in a batch must not disturb its neighbors.
	live, err := s.Query(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if live.Dist(7) != 0 {
		t.Fatalf("dist(source)=%d, want 0", live.Dist(7))
	}
	live.Release()
}

func TestCloseSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gridGraph(rng, 7, 7, 15)
	s, err := server.New(newCoreEngine(t, g, 1), server.Options{Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	// Close is idempotent and safe concurrently.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Close() }()
	}
	wg.Wait()
	if _, err := s.Query(context.Background(), 3); !errors.Is(err, server.ErrClosed) {
		t.Fatalf("Query after Close returned %v, want ErrClosed", err)
	}
	if _, err := s.QueryMany(context.Background(), []int32{1, 2}); !errors.Is(err, server.ErrClosed) {
		t.Fatalf("QueryMany after Close returned %v, want ErrClosed", err)
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := newServer(t, gridGraph(rng, 5, 5, 10), server.Options{})
	res, err := s.Query(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	res.Release() // second release must be a no-op, not a double-put
	again, err := s.Query(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if again.Dist(12) != 0 {
		t.Fatal("recycled buffer served wrong labels")
	}
	again.Release()
}

func TestQueryManyEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := newServer(t, gridGraph(rng, 4, 4, 5), server.Options{})
	results, err := s.QueryMany(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty QueryMany: %v, %d results", err, len(results))
	}
}
