// Sharded is the fleet-serving layer: one partitioned front over K
// shards, each shard an RPHAST restriction of the shared engine to one
// partition cell. The point is operational, not algorithmic — a fleet
// of processes mapping the same engine snapshot (see internal/snapshot)
// can each own a few cells, route single-target queries to the cell
// that holds the target, and still answer full-tree queries exactly by
// scatter-gathering the per-cell restricted sweeps.
//
// Exactness rests on the RPHAST selection property: a cell's selection
// contains every G↓-ancestor of its members, so after the restricted
// sweep every selected vertex — in particular every member — carries
// exactly the label a full PHAST sweep would give it. The K member
// sets partition the vertices, so K restricted sweeps writing their
// members' labels into one output buffer reconstruct the full tree
// byte for byte (the differential test in sharded_test.go checks this
// literally).
//
// Concurrency follows the TreeServer idiom: shard c is served by one
// executor goroutine that owns queries[c] of whichever shardSet it
// loads, so metric swaps never hand a query cursor to two goroutines.
// Metric installs reuse the epoch machinery — build the next set off
// to the side, publish with a forward-only CAS, in-flight trees pin
// the set they started on so one tree never mixes epochs.
package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/partition"
	"phast/internal/rphast"
)

// ShardedOptions configures NewSharded. The zero value selects the
// defaults below.
type ShardedOptions struct {
	// Shards is K, the number of partition cells. 0 selects 4.
	Shards int
	// Seed seeds the partition's k-center sampling. Fleets that must
	// agree on the cut (to route to each other) fix it explicitly.
	Seed int64
	// QueueSize bounds each shard's request queue. 0 selects 64.
	QueueSize int
}

func (o ShardedOptions) withDefaults() (ShardedOptions, error) {
	if o.Shards < 0 || o.QueueSize < 0 {
		return o, fmt.Errorf("server: negative sharded option (Shards=%d QueueSize=%d)", o.Shards, o.QueueSize)
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.QueueSize == 0 {
		o.QueueSize = 64
	}
	return o, nil
}

// shardSet is one published metric epoch of the sharded server: the
// per-cell selections plus query cursors. queries[c] belongs
// exclusively to executor c; a set is immutable once published.
type shardSet struct {
	epoch   uint64
	name    string
	sels    []*rphast.Selection
	queries []*rphast.Query
}

// shardReq is one unit of work for a shard executor: a full restricted
// sweep from source under the pinned set. Exactly one of scatter/reply
// is used — scatter for the tree fan-out (write my members' labels
// into out, then count down), reply for a routed distance query.
type shardReq struct {
	ctx    context.Context
	set    *shardSet
	source int32
	// tree scatter
	out     []uint32
	pending *atomic.Int64
	wake    chan struct{}
	// routed distance
	member int32 // index into the cell's member list
	reply  chan shardAnswer
}

type shardAnswer struct {
	dist uint32
	err  error
}

// ShardedResult is one full tree gathered from all shards. Like
// TreeResult its buffer is a pooled private copy; Release it when done.
type ShardedResult struct {
	source int32
	dist   []uint32
	srv    *Sharded
	epoch  uint64
	metric string
}

// Source returns the tree's source vertex.
func (r *ShardedResult) Source() int32 { return r.source }

// Epoch returns the metric epoch all K shard sweeps of this tree ran
// under (a tree is pinned to one set; it never mixes epochs).
func (r *ShardedResult) Epoch() uint64 { return r.epoch }

// Metric returns the name of the metric the tree was computed under.
func (r *ShardedResult) Metric() string { return r.metric }

// Dist returns the distance label of vertex v (graph.Inf if unreached).
func (r *ShardedResult) Dist(v int32) uint32 { return r.dist[v] }

// Distances returns all n labels indexed by original vertex ID, valid
// until Release.
func (r *ShardedResult) Distances() []uint32 { return r.dist }

// Release returns the buffer to the server's pool; idempotent.
func (r *ShardedResult) Release() {
	s := r.srv
	if s == nil {
		return
	}
	r.srv = nil
	s.resultPool.Put(r)
}

// Sharded is the partitioned front server. All methods are safe for
// concurrent use.
type Sharded struct {
	n     int
	parts *partition.Partition

	mu     sync.RWMutex // admission vs Close, same discipline as TreeServer
	closed bool
	queues []chan shardReq
	wg     sync.WaitGroup

	active       atomic.Pointer[shardSet]
	epochCounter atomic.Uint64
	metricSwaps  atomic.Uint64

	resultPool sync.Pool

	queries      atomic.Uint64
	canceled     atomic.Uint64
	shardQueries []atomic.Int64
	sweepNanos   atomic.Uint64

	// snapshot provenance of the prototype engine, surfaced via Stats.
	snapBytes int64
	coldStart time.Duration
}

// NewSharded partitions g into opt.Shards cells and starts one executor
// per cell over RPHAST restrictions of proto. proto must use the
// reordered sweep mode (rphast's requirement) and cover g's vertex set;
// it is never swept by the server itself — selections clone their own
// upward-search cursors — so the caller may keep using it.
func NewSharded(g *graph.Graph, proto *core.Engine, opt ShardedOptions) (*Sharded, error) {
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if proto.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("server: sharded engine has %d vertices, graph %d", proto.NumVertices(), g.NumVertices())
	}
	parts, err := partition.New(g, o.Shards, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("server: sharded partition: %w", err)
	}
	for c, members := range parts.Members {
		if len(members) == 0 {
			return nil, fmt.Errorf("server: partition cell %d is empty (k=%d too large for n=%d?)", c, o.Shards, g.NumVertices())
		}
	}
	s := &Sharded{
		n:            g.NumVertices(),
		parts:        parts,
		queues:       make([]chan shardReq, o.Shards),
		shardQueries: make([]atomic.Int64, o.Shards),
		snapBytes:    proto.SnapshotBytes(),
		coldStart:    proto.ColdStart(),
	}
	s.resultPool.New = func() any {
		return &ShardedResult{dist: make([]uint32, s.n)}
	}
	if _, err := s.InstallMetric(DefaultMetric, proto); err != nil {
		return nil, err
	}
	for c := range s.queues {
		s.queues[c] = make(chan shardReq, o.QueueSize)
		s.wg.Add(1)
		go s.executor(c)
	}
	return s, nil
}

// InstallMetric builds per-cell selections over proto and publishes
// them as the live epoch — the sharded form of TreeServer.InstallMetric
// with the same forward-only contract: trees already scattered finish
// on the set they pinned, later queries see the new one. proto must be
// a reordered-mode engine over the same vertex set (typically a
// Customize result over the same topology).
func (s *Sharded) InstallMetric(name string, proto *core.Engine) (uint64, error) {
	if proto.NumVertices() != s.n {
		return 0, fmt.Errorf("server: metric %q engine has %d vertices, server %d", name, proto.NumVertices(), s.n)
	}
	set := &shardSet{
		name:    name,
		sels:    make([]*rphast.Selection, s.parts.K),
		queries: make([]*rphast.Query, s.parts.K),
	}
	for c, members := range s.parts.Members {
		sel, err := rphast.NewSelection(proto, members)
		if err != nil {
			return 0, fmt.Errorf("server: shard %d selection: %w", c, err)
		}
		set.sels[c] = sel
		set.queries[c] = rphast.NewQuery(sel)
	}
	set.epoch = s.epochCounter.Add(1)
	for {
		old := s.active.Load()
		if old != nil && old.epoch > set.epoch {
			break
		}
		if s.active.CompareAndSwap(old, set) {
			break
		}
	}
	s.metricSwaps.Add(1)
	return set.epoch, nil
}

// ActiveEpoch returns the currently published epoch and metric name.
func (s *Sharded) ActiveEpoch() (uint64, string) {
	set := s.active.Load()
	return set.epoch, set.name
}

// NumVertices returns n.
func (s *Sharded) NumVertices() int { return s.n }

// NumShards returns K.
func (s *Sharded) NumShards() int { return s.parts.K }

// Partition exposes the cut the server routes by (shared, read-only).
func (s *Sharded) Partition() *partition.Partition { return s.parts }

// SelectionSizes returns the live epoch's per-cell selection sizes —
// the per-shard sweep cost, whose sum over K is the redundancy a
// cross-shard tree pays versus one monolithic sweep.
func (s *Sharded) SelectionSizes() []int {
	set := s.active.Load()
	out := make([]int, len(set.sels))
	for c, sel := range set.sels {
		out[c] = sel.Size()
	}
	return out
}

// enqueue admits one request to shard c under the read lock (the
// TreeServer discipline: Close takes the write lock, so the channel is
// never closed mid-send).
func (s *Sharded) enqueue(ctx context.Context, c int32, r shardReq) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	// Blocking under the read lock is the TreeServer backpressure design:
	// Close takes the write lock only to flip closed and close channels,
	// and the ctx arm bounds the wait, so the read side cannot wedge it.
	//phastlint:ignore lockhold RLock held across the backpressure send by design; Close only closes channels under the write lock and ctx bounds the wait
	select {
	case s.queues[c] <- r:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Distance computes dist(source, target) by routing to the shard whose
// cell holds target: an upward search plus one cell-restricted sweep,
// ~n/K work instead of a full tree. The result is exact (the cell
// selection contains every ancestor the target's label depends on).
func (s *Sharded) Distance(ctx context.Context, source, target int32) (uint32, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if source < 0 || int(source) >= s.n || target < 0 || int(target) >= s.n {
		return 0, fmt.Errorf("server: query %d->%d out of range [0,%d)", source, target, s.n)
	}
	c := s.parts.Cell[target]
	members := s.parts.Members[c]
	m := int32(sort.Search(len(members), func(i int) bool { return members[i] >= target }))
	r := shardReq{
		ctx:    ctx,
		set:    s.active.Load(),
		source: source,
		member: m,
		reply:  make(chan shardAnswer, 1),
	}
	if err := s.enqueue(ctx, c, r); err != nil {
		return 0, err
	}
	select {
	case a := <-r.reply:
		return a.dist, a.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Tree computes the full shortest-path tree from source by scattering
// one restricted sweep to every shard and gathering the disjoint
// member labels into one buffer. All K sweeps run under the same
// pinned epoch. The returned result is a private pooled copy; Release
// it when done.
func (s *Sharded) Tree(ctx context.Context, source int32) (*ShardedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if source < 0 || int(source) >= s.n {
		return nil, fmt.Errorf("server: source %d out of range [0,%d)", source, s.n)
	}
	res := s.resultPool.Get().(*ShardedResult)
	set := s.active.Load()
	var pending atomic.Int64
	pending.Store(int64(s.parts.K))
	wake := make(chan struct{}, 1)
	r := shardReq{ctx: ctx, set: set, source: source, out: res.dist, pending: &pending, wake: wake}
	for c := range s.queues {
		if err := s.enqueue(ctx, int32(c), r); err != nil {
			// Shards [0,c) are already sweeping into res.dist; wait for
			// them before recycling the buffer.
			for int(pending.Load()) > s.parts.K-c {
				<-wake
			}
			res.srv = s
			res.Release()
			return nil, err
		}
	}
	for pending.Load() > 0 {
		<-wake
	}
	if err := ctx.Err(); err != nil {
		// Executors skipped their sweep; the buffer is stale, not torn.
		res.srv = s
		res.Release()
		s.canceled.Add(1)
		return nil, err
	}
	res.srv = s
	res.source = source
	res.epoch = set.epoch
	res.metric = set.name
	s.queries.Add(1)
	return res, nil
}

// Close stops admission, drains queued requests (each still receives
// its answer), and waits for the executors. Safe to call more than
// once.
func (s *Sharded) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, q := range s.queues {
			close(q)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats returns a snapshot of the sharded server's counters in the
// common Stats shape: ShardQueries is per cell, Queries counts
// gathered trees plus routed distances delivered.
func (s *Sharded) Stats() Stats {
	st := Stats{
		Queries:          s.queries.Load(),
		Canceled:         s.canceled.Load(),
		MetricSwaps:      s.metricSwaps.Load(),
		SweepSeconds:     float64(s.sweepNanos.Load()) / 1e9,
		SnapshotBytes:    s.snapBytes,
		ColdStartSeconds: s.coldStart.Seconds(),
		ShardQueries:     make([]int64, len(s.shardQueries)),
	}
	for c := range s.shardQueries {
		st.ShardQueries[c] = s.shardQueries[c].Load()
	}
	return st
}

// executor serves shard c: one goroutine, exclusive owner of
// queries[c] of every set it loads, sweeping one request at a time.
func (s *Sharded) executor(c int) {
	defer s.wg.Done()
	members := s.parts.Members[c]
	for r := range s.queues[c] {
		if err := r.ctx.Err(); err != nil {
			// Canceled while queued: answer without sweeping. Scatter
			// requests still count down so the gatherer never wedges.
			if r.reply != nil {
				s.canceled.Add(1)
				r.reply <- shardAnswer{err: err}
			} else {
				s.finishScatter(r)
			}
			continue
		}
		q := r.set.queries[c]
		start := time.Now()
		q.Run(r.source)
		s.sweepNanos.Add(uint64(time.Since(start).Nanoseconds()))
		s.shardQueries[c].Add(1)
		if r.reply != nil {
			r.reply <- shardAnswer{dist: q.Dist(int(r.member))}
			s.queries.Add(1)
			continue
		}
		// Scatter: write this cell's member labels into the shared
		// buffer. Cells are disjoint, so no index is written twice.
		for i, v := range members {
			r.out[v] = q.Dist(i)
		}
		s.finishScatter(r)
	}
}

// finishScatter counts one shard off a gathered tree and wakes the
// gatherer. The non-blocking send suffices: the gatherer re-checks
// pending after every wake, and capacity 1 means a wake is never lost.
func (s *Sharded) finishScatter(r shardReq) {
	r.pending.Add(-1)
	select {
	case r.wake <- struct{}{}:
	default:
	}
}
