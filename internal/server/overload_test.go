package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
)

// White-box overload tests. Emergent queue overflow cannot be provoked
// reliably on a small machine — the scheduler's direct channel handoffs
// serialize client, dispatcher and executor — so these tests wedge the
// executor via testHookBatchStart and fill each pipeline stage by hand.

func overloadEngine(t *testing.T) *core.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(90))
	b := graph.NewBuilder(16)
	for i := int32(0); i < 15; i++ {
		w := uint32(1 + rng.Intn(9))
		b.MustAddArc(i, i+1, w)
		b.MustAddArc(i+1, i, w)
	}
	h := ch.Build(b.Build(), ch.Options{Workers: 1})
	e, err := core.NewEngine(h, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// waitQueueDepth polls until the request queue shows depth want.
func waitQueueDepth(t *testing.T, s *TreeServer, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().QueueDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", want, s.Stats().QueueDepth)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// countPops installs a testHookRequestPopped counter (restored via
// t.Cleanup) and returns a waiter that blocks until the dispatcher has
// popped want requests off the queue. Queue depth cannot sequence the
// pipeline-filling steps — it reads 0 both before a query enqueues and
// after it is popped — so the tests gate on dispatcher progress
// instead; otherwise two staged queries can race for the one queue
// slot and the overflow query is rejected one step early.
func countPops(t *testing.T) func(want uint64) {
	t.Helper()
	var pops atomic.Uint64
	old := testHookRequestPopped
	testHookRequestPopped = func() { pops.Add(1) }
	t.Cleanup(func() { testHookRequestPopped = old })
	return func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for pops.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("dispatcher never popped %d requests (now %d)", want, pops.Load())
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// TestRejectOnFullDeterministic fills every stage of the pipeline —
// executor (wedged on the hook), batch channel, dispatcher's blocked
// hand-off, request queue — and asserts the next query is rejected with
// ErrOverloaded while all queued ones complete once the wedge lifts.
func TestRejectOnFullDeterministic(t *testing.T) {
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	var gateOnce sync.Once
	lift := func() { gateOnce.Do(func() { close(gate) }) }
	old := testHookBatchStart
	testHookBatchStart = func() {
		entered <- struct{}{}
		<-gate
	}
	defer func() { testHookBatchStart = old }()
	waitPops := countPops(t)

	s, err := New(overloadEngine(t), Options{
		MaxBatch: 1, Engines: 1, QueueSize: 1,
		Linger: -1, Overload: RejectOnFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Registered after s.Close so it runs first: if an assertion fails
	// while the executor is wedged, Close would otherwise wait forever
	// for the executor parked in the hook.
	defer lift()

	// Pipeline capacity before rejection: 1 wedged in the executor,
	// 1 in the batch channel buffer, 1 held by the blocked dispatcher,
	// 1 in the request queue.
	type outcome struct {
		res *TreeResult
		err error
	}
	results := make(chan outcome, 4)
	fire := func() {
		go func() {
			res, err := s.Query(context.Background(), 3)
			results <- outcome{res, err}
		}()
	}
	fire() // q1 -> executor
	<-entered
	fire() // q2 -> batch channel buffer
	waitPops(2)
	fire() // q3 -> dispatcher, blocked sending the batch
	waitPops(3)
	fire() // q4 -> request queue
	waitQueueDepth(t, s, 1)

	if _, err := s.Query(context.Background(), 3); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full pipeline returned %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("Stats().Rejected=%d, want 1", st.Rejected)
	}

	lift() // lift the wedge; later batches pass the hook instantly
	for i := 0; i < 4; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("queued query %d failed after wedge lifted: %v", i, o.err)
		}
		if o.res.Dist(3) != 0 {
			t.Fatalf("queued query %d: wrong tree", i)
		}
		o.res.Release()
	}
	<-entered // drain hook signals (≥1 more batch ran)
	if st := s.Stats(); st.Queries != 4 || st.Rejected != 1 {
		t.Fatalf("Stats=%+v, want 4 served / 1 rejected", st)
	}
}

// TestBlockOnFullWaitsInsteadOfRejecting wedges the pipeline the same
// way under the blocking policy and checks the overflow query waits
// (respecting its context) rather than failing.
func TestBlockOnFullWaitsInsteadOfRejecting(t *testing.T) {
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	var gateOnce sync.Once
	lift := func() { gateOnce.Do(func() { close(gate) }) }
	old := testHookBatchStart
	testHookBatchStart = func() {
		entered <- struct{}{}
		<-gate
	}
	defer func() { testHookBatchStart = old }()
	waitPops := countPops(t)

	s, err := New(overloadEngine(t), Options{
		MaxBatch: 1, Engines: 1, QueueSize: 1, Linger: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer lift() // after s.Close in LIFO order: unwedge before Close waits

	results := make(chan error, 8)
	fire := func() {
		go func() {
			res, err := s.Query(context.Background(), 5)
			if err == nil {
				res.Release()
			}
			results <- err
		}()
	}
	fire()
	<-entered
	fire()
	waitPops(2)
	fire()
	waitPops(3)
	fire()
	waitQueueDepth(t, s, 1)

	// Overflow with an expiring context: must block, then surface the
	// deadline rather than ErrOverloaded.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := s.Query(ctx, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked overflow query returned %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.Rejected != 0 {
		t.Fatalf("blocking policy counted %d rejections", st.Rejected)
	}

	lift()
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued query %d failed: %v", i, err)
		}
	}
}
