package server_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"phast/internal/server"
)

// The stress tests are written to be meaningful under `go test -race`:
// they maximize interleavings between Query admission, dispatcher
// batching, executor fan-out, context cancellation and Close, and they
// tolerate every legal outcome (result, ErrClosed, ErrOverloaded,
// context error) while failing on any illegal one.

func stressIters(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		return full / 5
	}
	return full
}

// TestServerStressWithConcurrentClose hammers one server from
// NumCPU()×4 goroutines that mix plain queries, canceled contexts and
// short timeouts while another goroutine closes the server mid-flight.
func TestServerStressWithConcurrentClose(t *testing.T) {
	for _, policy := range []server.OverloadPolicy{server.BlockOnFull, server.RejectOnFull} {
		policy := policy
		name := "block"
		if policy == server.RejectOnFull {
			name = "reject"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(401))
			g := gridGraph(rng, 10, 10, 25)
			n := g.NumVertices()
			s, err := server.New(newCoreEngine(t, g, 1), server.Options{
				MaxBatch: 4, Engines: 2, QueueSize: 8,
				Linger:   50 * time.Microsecond,
				Overload: policy,
			})
			if err != nil {
				t.Fatal(err)
			}
			goroutines := runtime.NumCPU() * 4
			iters := stressIters(t, 150)
			var wg sync.WaitGroup
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(500 + w)))
					for i := 0; i < iters; i++ {
						src := int32(rng.Intn(n))
						ctx := context.Background()
						var cancel context.CancelFunc
						switch i % 5 {
						case 1: // pre-canceled
							ctx, cancel = context.WithCancel(ctx)
							cancel()
						case 2: // tight timeout that may fire mid-batch
							ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
						}
						res, err := s.Query(ctx, src)
						if cancel != nil {
							cancel()
						}
						switch {
						case err == nil:
							if res.Source() != src || res.Dist(src) != 0 {
								t.Errorf("bad result: source %d dist %d", res.Source(), res.Dist(src))
							}
							res.Release()
						case errors.Is(err, server.ErrClosed),
							errors.Is(err, server.ErrOverloaded),
							errors.Is(err, context.Canceled),
							errors.Is(err, context.DeadlineExceeded):
							// all legal under stress
						default:
							t.Errorf("illegal error: %v", err)
						}
					}
				}(w)
			}
			// Close while the clients are still firing; every Query must
			// then resolve as a result or ErrClosed — never hang.
			time.Sleep(2 * time.Millisecond)
			closeDone := make(chan struct{})
			go func() {
				s.Close()
				close(closeDone)
			}()
			wg.Wait()
			select {
			case <-closeDone:
			case <-time.After(30 * time.Second):
				t.Fatal("Close did not drain in-flight batches")
			}
			if _, err := s.Query(context.Background(), 0); !errors.Is(err, server.ErrClosed) {
				t.Fatalf("post-close Query returned %v", err)
			}
		})
	}
}

// TestServerStressQueryMany interleaves QueryMany batches from many
// goroutines so lanes from different callers share sweeps.
func TestServerStressQueryMany(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	g := gilbertGraph(rng, 120, 4.0/120, 100)
	n := g.NumVertices()
	s := newServer(t, g, server.Options{MaxBatch: 8, Engines: 2, Linger: 100 * time.Microsecond})
	goroutines := runtime.NumCPU() * 4
	iters := stressIters(t, 40)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(600 + w)))
			for i := 0; i < iters; i++ {
				sources := make([]int32, 1+rng.Intn(6))
				for j := range sources {
					sources[j] = int32(rng.Intn(n))
				}
				results, err := s.QueryMany(context.Background(), sources)
				if err != nil {
					t.Errorf("QueryMany: %v", err)
					return
				}
				for j, res := range results {
					if res.Source() != sources[j] {
						t.Errorf("lane mixup: result %d has source %d, want %d",
							j, res.Source(), sources[j])
					}
					res.Release()
				}
			}
		}(w)
	}
	wg.Wait()
}
