package server

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/roadnet"
	"phast/internal/snapshot"
)

func shardedFixture(t testing.TB) (*graph.Graph, *core.Engine) {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 26, Height: 22, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	eng, err := core.NewEngine(h, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph, eng
}

// TestShardedMatchesMonolithic is the differential gate of the sharded
// layer: routed distances and scatter-gathered trees must be
// byte-identical to the monolithic engine's sweeps, including through
// boundary vertices where a shortest path crosses cells.
func TestShardedMatchesMonolithic(t *testing.T) {
	g, eng := shardedFixture(t)
	n := g.NumVertices()
	srv, err := NewSharded(g, eng, ShardedOptions{Shards: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want := make([]uint32, n)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		s := int32(rng.Intn(n))
		eng.Tree(s)
		eng.CopyDistances(want)

		res, err := srv.Tree(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(u32bytes(res.Distances()), u32bytes(want)) {
			for v := 0; v < n; v++ {
				if res.Dist(int32(v)) != want[v] {
					t.Fatalf("tree from %d differs at vertex %d (cell %d): %d vs %d",
						s, v, srv.Partition().Cell[v], res.Dist(int32(v)), want[v])
				}
			}
		}
		res.Release()

		// Routed single-target distances, deliberately including
		// boundary vertices (paths into them cross cells by definition).
		targets := make([]int32, 0, 8)
		for i := 0; i < 4; i++ {
			targets = append(targets, int32(rng.Intn(n)))
		}
		for _, b := range srv.Partition().Boundary {
			if len(b) > 0 {
				targets = append(targets, b[rng.Intn(len(b))])
			}
		}
		for _, tgt := range targets {
			d, err := srv.Distance(context.Background(), s, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if d != want[tgt] {
				t.Fatalf("distance %d->%d: %d, want %d", s, tgt, d, want[tgt])
			}
		}
	}

	st := srv.Stats()
	if len(st.ShardQueries) != 5 {
		t.Fatalf("ShardQueries has %d cells, want 5", len(st.ShardQueries))
	}
	var total int64
	for _, q := range st.ShardQueries {
		total += q
	}
	// 6 trees scatter to all 5 shards; each routed distance hits one.
	if total < 6*5 {
		t.Fatalf("shard sweep total %d, want at least %d", total, 6*5)
	}
	if st.Queries == 0 || st.SweepSeconds <= 0 {
		t.Fatalf("counters not populated: %+v", st)
	}
}

// TestShardedFromSnapshot runs the same differential over an engine
// restored from a snapshot — the deployment shape the layer exists
// for: every label must survive save, mmap-free heap restore, and
// shard routing unchanged.
func TestShardedFromSnapshot(t *testing.T) {
	g, eng := shardedFixture(t)
	n := g.NumVertices()
	var buf bytes.Buffer
	if _, err := snapshot.Write(&buf, eng.Parts(), g); err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.NewEngineFromParts(snap.Parts, 1, core.SnapshotInfo{Bytes: snap.Size, Hold: snap.Hold})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewSharded(snap.Orig, restored, ShardedOptions{Shards: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want := make([]uint32, n)
	for _, s := range []int32{0, int32(n / 2), int32(n - 1)} {
		eng.Tree(s)
		eng.CopyDistances(want)
		res, err := srv.Tree(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if res.Dist(int32(v)) != want[v] {
				t.Fatalf("snapshot-sharded tree from %d differs at %d", s, v)
			}
		}
		res.Release()
	}
	if st := srv.Stats(); st.SnapshotBytes != int64(buf.Len()) {
		t.Fatalf("SnapshotBytes=%d, want %d", st.SnapshotBytes, buf.Len())
	}
}

// TestShardedMetricSwap installs a second metric engine mid-traffic and
// checks trees before/after carry the right epoch and labels.
func TestShardedMetricSwap(t *testing.T) {
	g, eng := shardedFixture(t)
	n := g.NumVertices()
	srv, err := NewSharded(g, eng, ShardedOptions{Shards: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	epoch0, _ := srv.ActiveEpoch()

	res, err := srv.Tree(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch() != epoch0 {
		t.Fatalf("tree epoch %d, want %d", res.Epoch(), epoch0)
	}
	res.Release()

	// Doubled weights: same topology, every finite distance doubles.
	b := graph.NewBuilder(n)
	for v := int32(0); v < int32(n); v++ {
		for _, a := range g.Arcs(v) {
			b.MustAddArc(v, a.Head, a.Weight*2)
		}
	}
	g2 := b.Build()
	h2 := ch.Build(g2, ch.Options{Workers: 1})
	eng2, err := core.NewEngine(h2, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	epoch1, err := srv.InstallMetric("double", eng2)
	if err != nil {
		t.Fatal(err)
	}
	if epoch1 <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, epoch1)
	}

	eng.Tree(7)
	want := make([]uint32, n)
	eng.CopyDistances(want)
	res2, err := srv.Tree(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Release()
	if res2.Epoch() != epoch1 || res2.Metric() != "double" {
		t.Fatalf("post-swap tree tagged %d/%q, want %d/double", res2.Epoch(), res2.Metric(), epoch1)
	}
	for v := 0; v < n; v++ {
		w := want[v]
		if w != graph.Inf {
			w *= 2
		}
		if res2.Dist(int32(v)) != w {
			t.Fatalf("doubled tree differs at %d: %d, want %d", v, res2.Dist(int32(v)), w)
		}
	}
	if st := srv.Stats(); st.MetricSwaps != 2 {
		t.Fatalf("MetricSwaps=%d, want 2", st.MetricSwaps)
	}
}

// TestShardedCloseAndCancel covers the drain paths: queries after Close
// fail with ErrClosed; a canceled context aborts a tree without
// wedging the scatter accounting.
func TestShardedCloseAndCancel(t *testing.T) {
	g, eng := shardedFixture(t)
	srv, err := NewSharded(g, eng, ShardedOptions{Shards: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Tree(ctx, 0); err == nil {
		t.Fatal("canceled tree did not fail")
	}
	if _, err := srv.Distance(ctx, 0, 1); err == nil {
		t.Fatal("canceled distance did not fail")
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Tree(context.Background(), 0); err != ErrClosed {
		t.Fatalf("post-close Tree err=%v, want ErrClosed", err)
	}
	if _, err := srv.Distance(context.Background(), 0, 1); err != ErrClosed {
		t.Fatalf("post-close Distance err=%v, want ErrClosed", err)
	}
}

func u32bytes(v []uint32) []byte {
	out := make([]byte, len(v)*4)
	for i, x := range v {
		out[i*4] = byte(x)
		out[i*4+1] = byte(x >> 8)
		out[i*4+2] = byte(x >> 16)
		out[i*4+3] = byte(x >> 24)
	}
	return out
}
