// Package server is the concurrent serving layer over the PHAST core
// engine: a goroutine-safe TreeServer that owns a pool of cloned
// core.Engine cursors over one shared hierarchy and batches concurrent
// tree requests into multi-source sweeps.
//
// The design follows the paper's throughput argument directly. A single
// PHAST tree is bandwidth-bound on the linear sweep; Section IV-B shows
// that sweeping k sources at once amortizes that bandwidth because the k
// labels of a vertex are contiguous and the downward arcs are read once
// per batch instead of once per tree. TreeServer therefore never runs
// one sweep per request: a dispatcher goroutine collects concurrent
// requests into batches of up to MaxBatch sources (with a small linger
// window so a lone request does not wait forever), hands each batch to a
// pooled engine running MultiTreeParallel (Section IV-B × Section V),
// and fans the per-lane results back out to the callers. Results are
// copied into pooled buffers via CopyLaneDistances, so callers never
// alias engine state and engines are immediately reusable.
//
// # Metric epochs
//
// The server holds a registry of named metrics (DefaultMetric is the
// one New was given). Each metric's live state is an engineSet — a
// monotonically increasing epoch, the metric name, and one engine
// clone per executor — behind an atomic pointer. InstallMetric builds
// the next epoch's set off to the side and publishes it with a single
// pointer store, so a customized metric goes live mid-traffic without
// draining: batches that already loaded the old set finish on it
// (the old engines stay valid, nothing frees them), later batches see
// the new one. Every TreeResult is tagged with the epoch and metric
// name of the set that computed it. The memory-ordering contract is
// the usual publish idiom: the release store in InstallMetric makes
// every write that built the set (the cloned engines, the epoch word)
// visible to any executor whose acquire load observes the pointer.
// Engines are never shared across goroutines: executor i only ever
// touches engines[i] of whichever sets it loads.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"phast/internal/core"
)

// Sentinel errors returned by Query/QueryMany.
var (
	// ErrClosed is returned once Close has begun; in-flight requests
	// still complete.
	ErrClosed = errors.New("server: closed")
	// ErrOverloaded is returned under the RejectOnFull policy when the
	// request queue is full.
	ErrOverloaded = errors.New("server: request queue full")
	// ErrUnknownMetric is returned by QueryMetric for a metric name that
	// was never installed.
	ErrUnknownMetric = errors.New("server: unknown metric")
)

// DefaultMetric is the name under which New registers the prototype
// engine's metric; Query and QueryMany always use it.
const DefaultMetric = ""

// engineSet is one published metric epoch: the engines executors sweep
// with (engines[i] belongs exclusively to executor i) plus the tags
// stamped onto every result it produces. A set is immutable once
// published.
type engineSet struct {
	epoch   uint64
	name    string
	engines []*core.Engine
}

// metricState is the registry slot of one named metric; active is
// republished wholesale on every InstallMetric.
type metricState struct {
	active atomic.Pointer[engineSet]
}

// OverloadPolicy selects what Query does when the bounded request queue
// is full.
type OverloadPolicy int

const (
	// BlockOnFull makes Query wait (respecting its context) until the
	// queue has room — backpressure by blocking, the default.
	BlockOnFull OverloadPolicy = iota
	// RejectOnFull makes Query fail fast with ErrOverloaded so callers
	// can shed load.
	RejectOnFull
)

// Options configures New. The zero value selects the defaults below.
type Options struct {
	// MaxBatch is the largest number of sources swept together (k of
	// Section IV-B). 0 selects 16, the largest k the paper's multi-tree
	// lane discussion evaluates.
	MaxBatch int
	// Engines is the number of pooled engine clones, i.e. the number of
	// batches that can be in flight at once. 0 selects GOMAXPROCS.
	Engines int
	// QueueSize bounds the request queue. 0 selects 4·MaxBatch·Engines.
	QueueSize int
	// Linger is how long the dispatcher holds an under-full batch open
	// waiting for more requests. 0 selects 200µs; negative disables
	// lingering (batches form only from already-queued requests).
	Linger time.Duration
	// Overload selects blocking (default) or ErrOverloaded when the
	// queue is full.
	Overload OverloadPolicy
}

func (o Options) withDefaults() (Options, error) {
	if o.MaxBatch < 0 || o.Engines < 0 || o.QueueSize < 0 {
		return o, fmt.Errorf("server: negative option (MaxBatch=%d Engines=%d QueueSize=%d)",
			o.MaxBatch, o.Engines, o.QueueSize)
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 16
	}
	if o.Engines == 0 {
		o.Engines = runtime.GOMAXPROCS(0)
	}
	if o.QueueSize == 0 {
		o.QueueSize = 4 * o.MaxBatch * o.Engines
	}
	if o.Linger == 0 {
		o.Linger = 200 * time.Microsecond
	}
	if o.Overload != BlockOnFull && o.Overload != RejectOnFull {
		return o, fmt.Errorf("server: unknown overload policy %d", o.Overload)
	}
	return o, nil
}

// TreeResult is one shortest-path tree computed by the server. Its
// distance buffer is private to the caller — it never aliases engine
// state — and pooled: call Release when done to recycle it.
type TreeResult struct {
	source int32
	dist   []uint32
	srv    *TreeServer
	epoch  uint64
	metric string
}

// Source returns the tree's source vertex.
func (r *TreeResult) Source() int32 { return r.source }

// Epoch returns the metric epoch that was active when this tree was
// swept. Under a concurrent InstallMetric, a caller observes either
// the old or the new epoch, never a mix within one result.
func (r *TreeResult) Epoch() uint64 { return r.epoch }

// Metric returns the name of the metric the tree was computed under.
func (r *TreeResult) Metric() string { return r.metric }

// Dist returns the distance label of vertex v (graph.Inf if unreached).
func (r *TreeResult) Dist(v int32) uint32 { return r.dist[v] }

// Distances returns all n labels indexed by original vertex ID. The
// slice is owned by the result: it is valid until Release.
func (r *TreeResult) Distances() []uint32 { return r.dist }

// Release returns the result's buffer to the server's pool. The result
// and its Distances slice must not be used afterwards. Release is
// idempotent; forgetting to call it only costs an allocation.
func (r *TreeResult) Release() {
	s := r.srv
	if s == nil {
		return
	}
	r.srv = nil
	s.resultPool.Put(r)
}

// request is one pending Query. done has capacity 1 and receives exactly
// one result (value or error) from an executor, so abandoning callers
// (context cancellation) never block the executor.
type request struct {
	ctx    context.Context
	source int32
	metric string
	done   chan result
}

type result struct {
	res *TreeResult
	err error
}

// Stats is an atomic snapshot of server counters, the first
// observability hook of the serving layer.
type Stats struct {
	// Queries is the number of results computed and delivered.
	Queries uint64
	// Rejected counts ErrOverloaded rejections (RejectOnFull only).
	Rejected uint64
	// Canceled counts requests whose context was canceled before their
	// result was copied out.
	Canceled uint64
	// Batches is the number of multi-source sweeps executed.
	Batches uint64
	// MeanBatchOccupancy is mean sources per executed sweep (0 if none);
	// MaxBatch is the ceiling, 1 means batching never engaged.
	MeanBatchOccupancy float64
	// QueueDepth is the current number of queued requests.
	QueueDepth int
	// QueueHighWater is the maximum queue depth observed.
	QueueHighWater int
	// SweepSeconds is the total wall time executors spent inside
	// multi-source sweeps (summed across engines, so it can exceed the
	// server's elapsed time under parallel batches).
	SweepSeconds float64
	// SweepBytes is the modeled memory traffic of those sweeps
	// (core.Engine.SweepBytes, k-lane aware).
	SweepBytes uint64
	// SweepGBps is the modeled achieved sweep bandwidth,
	// SweepBytes/SweepSeconds — comparable against the Section VIII-B
	// Sequential/Traversal lower bounds (see cmd/experiments -run bound).
	SweepGBps float64
	// StreamBytes is the byte footprint of the graph stream one sweep
	// scans on this server's engines (compressed stream bytes under the
	// compressed layout, packed words × 4 otherwise) — a property of the
	// layout, not a counter.
	StreamBytes uint64
	// StreamCompressionRatio is StreamBytes relative to the uncompressed
	// packed stream; 1 for uncompressed layouts.
	StreamCompressionRatio float64
	// MetricSwaps counts InstallMetric publications (the initial install
	// of the default metric included).
	MetricSwaps uint64
	// SchedSweeps/SchedChunks/SchedStalls/SchedIdle mirror the persistent
	// sweep scheduler's counters (core.SchedStats). The server's engine
	// clones all share one parked worker pool, so these aggregate every
	// executor's sweeps: SchedStalls is how often a worker waited on the
	// dependency frontier, SchedIdle how often a parked worker woke for a
	// sweep that had already finished.
	SchedSweeps uint64
	SchedChunks uint64
	SchedStalls uint64
	SchedIdle   uint64
	// SnapshotBytes is the on-disk size of the snapshot the server's
	// prototype engine was restored from (0 when the engine was built
	// in-process) — the resident footprint all processes mapping the
	// same file share.
	SnapshotBytes int64
	// ColdStartSeconds is how long restoring that snapshot took
	// (mapping + validation + engine assembly), 0 when not applicable.
	ColdStartSeconds float64
	// ShardQueries counts queries routed to each shard, indexed by cell
	// — populated by Sharded servers, nil on a monolithic TreeServer.
	ShardQueries []int64
}

// TreeServer batches concurrent tree queries into multi-source PHAST
// sweeps over a pool of engine clones. All methods are safe for
// concurrent use.
type TreeServer struct {
	opt Options
	n   int

	// mu serializes Query admission against Close: Query holds the read
	// lock across its enqueue so Close (write lock) cannot close the
	// requests channel mid-send.
	mu       sync.RWMutex
	closed   bool
	requests chan request
	batches  chan []request
	wg       sync.WaitGroup // dispatcher + executors

	resultPool sync.Pool

	// metrics maps a metric name to its *metricState; epochCounter hands
	// out globally unique, monotonically increasing epochs across all
	// metrics, so a larger epoch always means "installed later".
	metrics      sync.Map
	epochCounter atomic.Uint64
	metricSwaps  atomic.Uint64

	// schedStats snapshots the scheduler counters of the shared worker
	// pool; bound to the prototype engine at New (clones share the pool,
	// so any engine's snapshot covers all of them).
	schedStats func() core.SchedStats
	// streamBytes/compression describe the prototype engine's sweep
	// layout (see Stats.StreamBytes), captured once at New.
	streamBytes int64
	compression float64
	// snapBytes/coldStart carry the prototype engine's snapshot
	// provenance into Stats (zero for in-process builds).
	snapBytes int64
	coldStart time.Duration

	queries    atomic.Uint64
	rejected   atomic.Uint64
	canceled   atomic.Uint64
	batchCount atomic.Uint64
	occupancy  atomic.Uint64
	queueDepth atomic.Int64
	queueHW    atomic.Int64
	sweepNanos atomic.Uint64
	sweepBytes atomic.Uint64
}

// New starts a TreeServer over proto's preprocessed data. proto itself
// is never swept — the server clones it Engines times — so the caller
// may keep using it (from one goroutine, as usual).
func New(proto *core.Engine, opt Options) (*TreeServer, error) {
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &TreeServer{
		opt:         o,
		n:           proto.NumVertices(),
		requests:    make(chan request, o.QueueSize),
		batches:     make(chan []request, o.Engines),
		schedStats:  proto.SchedStats,
		streamBytes: proto.StreamBytes(),
		compression: proto.CompressionRatio(),
		snapBytes:   proto.SnapshotBytes(),
		coldStart:   proto.ColdStart(),
	}
	s.resultPool.New = func() any {
		return &TreeResult{dist: make([]uint32, s.n)}
	}
	if _, err := s.InstallMetric(DefaultMetric, proto); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go s.dispatch()
	for i := 0; i < o.Engines; i++ {
		s.wg.Add(1)
		go s.executor(i)
	}
	return s, nil
}

// InstallMetric clones proto into a fresh engine set and publishes it
// as the live epoch of the named metric — atomically, without pausing
// traffic. It returns the new epoch. Installing over an existing name
// swaps that metric; installing a new name makes it queryable via
// QueryMetric. proto must cover the same vertex set as the server
// (typically it is the engine of a Topology.Customize over the same
// topology); proto itself is never swept.
func (s *TreeServer) InstallMetric(name string, proto *core.Engine) (uint64, error) {
	if proto.NumVertices() != s.n {
		return 0, fmt.Errorf("server: metric %q engine has %d vertices, server %d", name, proto.NumVertices(), s.n)
	}
	set := &engineSet{name: name, engines: make([]*core.Engine, s.opt.Engines)}
	for i := range set.engines {
		set.engines[i] = proto.Clone()
	}
	st, _ := s.metrics.LoadOrStore(name, &metricState{})
	ms := st.(*metricState)
	set.epoch = s.epochCounter.Add(1)
	// Publish only forward: if a concurrent install of the same name drew
	// a later epoch and already stored it, this older set must not clobber
	// it — a metric's observable epoch never decreases.
	for {
		old := ms.active.Load()
		if old != nil && old.epoch > set.epoch {
			break
		}
		if ms.active.CompareAndSwap(old, set) {
			break
		}
	}
	s.metricSwaps.Add(1)
	return set.epoch, nil
}

// ActiveEpoch returns the currently published epoch of a metric, or
// false if the name was never installed.
func (s *TreeServer) ActiveEpoch(name string) (uint64, bool) {
	st, ok := s.metrics.Load(name)
	if !ok {
		return 0, false
	}
	set := st.(*metricState).active.Load()
	if set == nil {
		return 0, false
	}
	return set.epoch, true
}

// NumVertices returns n.
func (s *TreeServer) NumVertices() int { return s.n }

// Query computes the shortest-path tree from source, batching it with
// concurrently arriving requests. It blocks until the result is ready,
// ctx is done, or the server is closed. The returned result is a private
// copy; Release it when done.
func (s *TreeServer) Query(ctx context.Context, source int32) (*TreeResult, error) {
	return s.QueryMetric(ctx, DefaultMetric, source)
}

// QueryMetric is Query under a named metric: the tree is swept with
// whatever epoch of that metric is live when its batch executes, and
// the result's Epoch/Metric report which one that was. Unknown names
// fail with ErrUnknownMetric.
func (s *TreeServer) QueryMetric(ctx context.Context, metric string, source int32) (*TreeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if source < 0 || int(source) >= s.n {
		return nil, fmt.Errorf("server: source %d out of range [0,%d)", source, s.n)
	}
	r := request{ctx: ctx, source: source, metric: metric, done: make(chan result, 1)}
	if err := s.enqueue(ctx, r); err != nil {
		return nil, err
	}
	select {
	case res := <-r.done:
		return res.res, res.err
	case <-ctx.Done():
		// The executor will still see the canceled context and send an
		// error (or, in a narrow race, a result that the pool recycles
		// lazily via GC). Nothing blocks on our departure.
		return nil, ctx.Err()
	}
}

// QueryMany computes one tree per source. The sources are enqueued
// individually so the dispatcher can pack them — together with other
// callers' requests — into full sweeps. Either every result is returned
// (in source order, each needing Release) or none is and an error tells
// why.
func (s *TreeServer) QueryMany(ctx context.Context, sources []int32) ([]*TreeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, src := range sources {
		if src < 0 || int(src) >= s.n {
			return nil, fmt.Errorf("server: source %d out of range [0,%d)", src, s.n)
		}
	}
	reqs := make([]request, len(sources))
	for i, src := range sources {
		reqs[i] = request{ctx: ctx, source: src, metric: DefaultMetric, done: make(chan result, 1)}
	}
	enqueued := 0
	var firstErr error
	for i := range reqs {
		if err := s.enqueue(ctx, reqs[i]); err != nil {
			firstErr = err
			break
		}
		enqueued++
	}
	// Every enqueued request receives exactly one result even when ctx
	// is canceled or the server closes, so this collection loop always
	// terminates.
	results := make([]*TreeResult, 0, enqueued)
	for i := 0; i < enqueued; i++ {
		res := <-reqs[i].done
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		if res.res != nil {
			results = append(results, res.res)
		}
	}
	if firstErr != nil {
		for _, r := range results {
			r.Release()
		}
		return nil, firstErr
	}
	return results, nil
}

func (s *TreeServer) enqueue(ctx context.Context, r request) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if s.opt.Overload == RejectOnFull {
		select {
		case s.requests <- r:
		default:
			s.rejected.Add(1)
			return ErrOverloaded
		}
	} else {
		// Blocking under the read lock is the documented backpressure
		// design: Close takes the write lock only after draining, and the
		// ctx arm bounds the wait, so the read side cannot wedge it.
		//phastlint:ignore lockhold RLock held across the backpressure send by design; Close drains before taking the write lock and ctx bounds the wait
		select {
		case s.requests <- r:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	d := s.queueDepth.Add(1)
	for {
		hw := s.queueHW.Load()
		if d <= hw || s.queueHW.CompareAndSwap(hw, d) {
			return nil
		}
	}
}

// Close stops admission, drains every queued and in-flight request
// (each still receives its result), waits for the dispatcher and all
// executors to exit, and returns. Safe to call concurrently and more
// than once; Query calls racing with Close either complete normally or
// return ErrClosed.
func (s *TreeServer) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.requests)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats returns a snapshot of the server counters.
func (s *TreeServer) Stats() Stats {
	st := Stats{
		Queries:        s.queries.Load(),
		Rejected:       s.rejected.Load(),
		Canceled:       s.canceled.Load(),
		Batches:        s.batchCount.Load(),
		QueueDepth:     int(s.queueDepth.Load()),
		QueueHighWater: int(s.queueHW.Load()),
	}
	if st.Batches > 0 {
		st.MeanBatchOccupancy = float64(s.occupancy.Load()) / float64(st.Batches)
	}
	st.MetricSwaps = s.metricSwaps.Load()
	st.SweepSeconds = float64(s.sweepNanos.Load()) / 1e9
	st.SweepBytes = s.sweepBytes.Load()
	if st.SweepSeconds > 0 {
		st.SweepGBps = float64(st.SweepBytes) / st.SweepSeconds / 1e9
	}
	st.StreamBytes = uint64(s.streamBytes)
	st.StreamCompressionRatio = s.compression
	st.SnapshotBytes = s.snapBytes
	st.ColdStartSeconds = s.coldStart.Seconds()
	sched := s.schedStats()
	st.SchedSweeps = sched.Sweeps
	st.SchedChunks = sched.Chunks
	st.SchedStalls = sched.Stalls
	st.SchedIdle = sched.Idle
	return st
}

// dispatch collects requests into batches of up to MaxBatch sources. The
// first request of a batch opens a linger window; the batch is flushed
// when it fills, the window expires, or the server is draining.
func (s *TreeServer) dispatch() {
	defer s.wg.Done()
	defer close(s.batches)
	for {
		r, ok := <-s.requests
		if !ok {
			return
		}
		s.queueDepth.Add(-1)
		testHookRequestPopped()
		batch := make([]request, 1, s.opt.MaxBatch)
		batch[0] = r
		if s.opt.Linger > 0 && s.opt.MaxBatch > 1 {
			t := time.NewTimer(s.opt.Linger)
		linger:
			for len(batch) < s.opt.MaxBatch {
				select {
				case r, ok := <-s.requests:
					if !ok {
						break linger
					}
					s.queueDepth.Add(-1)
					testHookRequestPopped()
					batch = append(batch, r)
				case <-t.C:
					break linger
				}
			}
			t.Stop()
		} else {
		greedy:
			for len(batch) < s.opt.MaxBatch {
				select {
				case r, ok := <-s.requests:
					if !ok {
						break greedy
					}
					s.queueDepth.Add(-1)
					testHookRequestPopped()
					batch = append(batch, r)
				default:
					break greedy
				}
			}
		}
		s.batches <- batch
		// A batch cut short by channel close leaves the outer receive to
		// observe !ok (buffered requests drain first) and return.
	}
}

// testHookBatchStart runs at the top of every executor batch; tests
// substitute it to wedge the pipeline deterministically (overload and
// drain scenarios are unreachable by timing alone on a small machine).
var testHookBatchStart = func() {}

// testHookRequestPopped runs after the dispatcher takes one request off
// the queue; the overload tests count these to know a query has really
// advanced past the queue before they fill the next pipeline stage
// (queue depth alone cannot distinguish "not yet enqueued" from
// "already popped").
var testHookRequestPopped = func() {}

// executor serves batches until the dispatcher closes the batch
// channel. idx selects which engine of every published engineSet this
// goroutine owns: engines[idx] is touched by no other goroutine, so a
// metric swap never hands one engine to two executors. A mixed-metric
// batch (the dispatcher batches blindly) is served as one sub-sweep
// per metric; the engineSet is loaded once per sub-sweep, so all its
// results carry the epoch that actually swept them.
func (s *TreeServer) executor(idx int) {
	defer s.wg.Done()
	sources := make([]int32, 0, s.opt.MaxBatch)
	live := make([]request, 0, s.opt.MaxBatch)
	group := make([]request, 0, s.opt.MaxBatch)
	for batch := range s.batches {
		testHookBatchStart()
		live = live[:0]
		for _, r := range batch {
			if err := r.ctx.Err(); err != nil {
				s.canceled.Add(1)
				r.done <- result{err: err}
				continue
			}
			live = append(live, r)
		}
		for len(live) > 0 {
			metric := live[0].metric
			group = group[:0]
			rest := 0
			for _, r := range live {
				if r.metric == metric {
					group = append(group, r)
				} else {
					live[rest] = r
					rest++
				}
			}
			live = live[:rest]

			st, ok := s.metrics.Load(metric)
			var set *engineSet
			if ok {
				set = st.(*metricState).active.Load()
			}
			if set == nil {
				for _, r := range group {
					r.done <- result{err: fmt.Errorf("%w: %q", ErrUnknownMetric, metric)}
				}
				continue
			}
			eng := set.engines[idx]
			sources = sources[:0]
			for _, r := range group {
				sources = append(sources, r.source)
			}
			sweepStart := time.Now()
			eng.MultiTreeParallel(sources, false)
			s.sweepNanos.Add(uint64(time.Since(sweepStart).Nanoseconds()))
			s.sweepBytes.Add(uint64(eng.SweepBytes(len(sources))))
			s.batchCount.Add(1)
			s.occupancy.Add(uint64(len(group)))
			for i, r := range group {
				if err := r.ctx.Err(); err != nil {
					s.canceled.Add(1)
					r.done <- result{err: err}
					continue
				}
				res := s.resultPool.Get().(*TreeResult)
				res.srv = s
				res.source = r.source
				res.epoch = set.epoch
				res.metric = set.name
				eng.CopyLaneDistances(i, res.dist)
				r.done <- result{res: res}
				s.queries.Add(1)
			}
		}
	}
}
