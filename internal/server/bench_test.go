package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/server"
)

// benchProto builds the benchmark instance once: a grid big enough that
// the sweep dominates and batching has bandwidth to amortize.
var benchProto = struct {
	once sync.Once
	eng  *core.Engine
	n    int
}{}

func benchEngine(b *testing.B) (*core.Engine, int) {
	benchProto.once.Do(func() {
		rng := rand.New(rand.NewSource(77))
		g := gridGraph(rng, 60, 50, 100)
		h := ch.Build(g, ch.Options{Workers: 1})
		eng, err := core.NewEngine(h, core.Options{Workers: 1})
		if err != nil {
			panic(err)
		}
		benchProto.eng = eng
		benchProto.n = g.NumVertices()
	})
	return benchProto.eng, benchProto.n
}

// BenchmarkServerThroughput reports served queries/sec for batch sizes
// k ∈ {1,4,16} × engine-pool sizes, the trajectory future serving-layer
// PRs compare against. Clients outnumber k so the linger window fills
// batches.
func BenchmarkServerThroughput(b *testing.B) {
	proto, n := benchEngine(b)
	for _, k := range []int{1, 4, 16} {
		for _, engines := range []int{1, 2} {
			b.Run(fmt.Sprintf("k=%d/engines=%d", k, engines), func(b *testing.B) {
				s, err := server.New(proto, server.Options{
					MaxBatch: k, Engines: engines, Linger: 100 * time.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				b.SetParallelism(2 * k) // goroutines = 2k·GOMAXPROCS clients
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(int64(b.N)))
					for pb.Next() {
						res, err := s.Query(context.Background(), int32(rng.Intn(n)))
						if err != nil {
							b.Error(err)
							return
						}
						res.Release()
					}
				})
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "queries/s")
				}
				st := s.Stats()
				if st.Batches > 0 {
					b.ReportMetric(st.MeanBatchOccupancy, "occupancy")
				}
			})
		}
	}
}

// BenchmarkServerQueryMany measures the one-caller batch path: a single
// goroutine submitting k sources at once.
func BenchmarkServerQueryMany(b *testing.B) {
	proto, n := benchEngine(b)
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			s, err := server.New(proto, server.Options{MaxBatch: k, Engines: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(78))
			sources := make([]int32, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range sources {
					sources[j] = int32(rng.Intn(n))
				}
				results, err := s.QueryMany(context.Background(), sources)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					r.Release()
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*k)/secs, "queries/s")
			}
		})
	}
}
