package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteLevelHistogramSVG renders Figure 1 — vertices per CH level on a
// logarithmic y-axis, exactly the presentation the paper uses — as a
// standalone SVG document. Pure stdlib; no styling dependencies.
func WriteLevelHistogramSVG(w io.Writer, sizes []int, title string) error {
	if len(sizes) == 0 {
		return fmt.Errorf("exp: no level sizes to plot")
	}
	const (
		width, height = 720, 420
		marginL       = 64
		marginB       = 48
		marginT       = 40
		marginR       = 16
		plotW         = width - marginL - marginR
		plotH         = height - marginT - marginB
	)
	maxV := 1
	for _, s := range sizes {
		if s > maxV {
			maxV = s
		}
	}
	logMax := math.Log10(float64(maxV))
	if logMax <= 0 {
		logMax = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-family="sans-serif" font-size="16">%s</text>`,
		marginL, escapeXML(title))
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	// Log-scale y grid: one line per decade.
	for d := 0; d <= int(math.Ceil(logMax)); d++ {
		y := float64(marginT+plotH) - float64(d)/logMax*float64(plotH)
		if y < float64(marginT) {
			break
		}
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">1e%d</text>`,
			marginL-6, y+4, d)
	}
	// Bars.
	barW := float64(plotW) / float64(len(sizes))
	for l, s := range sizes {
		if s <= 0 {
			continue
		}
		h := math.Log10(float64(s)+1) / logMax * float64(plotH)
		if h > float64(plotH) {
			h = float64(plotH)
		}
		x := float64(marginL) + float64(l)*barW
		y := float64(marginT+plotH) - h
		fmt.Fprintf(&sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#3b6ea5"/>`,
			x, y, math.Max(barW-1, 0.5), h)
	}
	// X labels: every ~10 levels.
	step := 1
	if len(sizes) > 20 {
		step = len(sizes) / 10
	}
	for l := 0; l < len(sizes); l += step {
		x := float64(marginL) + (float64(l)+0.5)*barW
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%d</text>`,
			x, marginT+plotH+16, l)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">CH level</text>`,
		marginL+plotW/2, height-10)
	sb.WriteString(`</svg>`)
	_, err := io.WriteString(w, sb.String())
	return err
}

// SeriesPoint is one (x, y) sample of a plotted series.
type SeriesPoint struct {
	X, Y float64
}

// Series is a named line for WriteLinesSVG.
type Series struct {
	Name   string
	Points []SeriesPoint
}

// WriteLinesSVG renders log-log line series (e.g. per-tree time vs n for
// each algorithm — the scaling experiment) as a standalone SVG.
func WriteLinesSVG(w io.Writer, series []Series, title, xLabel, yLabel string) error {
	if len(series) == 0 {
		return fmt.Errorf("exp: no series to plot")
	}
	const (
		width, height = 720, 420
		marginL       = 72
		marginB       = 56
		marginT       = 40
		marginR       = 140
		plotW         = width - marginL - marginR
		plotH         = height - marginT - marginB
	)
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Points) == 0 {
			return fmt.Errorf("exp: series %q has no points", s.Name)
		}
		for _, p := range s.Points {
			if p.X <= 0 || p.Y <= 0 {
				return fmt.Errorf("exp: log-log plot requires positive values")
			}
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	lx := func(x float64) float64 {
		if maxX == minX {
			return float64(marginL) + float64(plotW)/2
		}
		return float64(marginL) + (math.Log10(x)-math.Log10(minX))/(math.Log10(maxX)-math.Log10(minX))*float64(plotW)
	}
	ly := func(y float64) float64 {
		if maxY == minY {
			return float64(marginT) + float64(plotH)/2
		}
		return float64(marginT+plotH) - (math.Log10(y)-math.Log10(minY))/(math.Log10(maxY)-math.Log10(minY))*float64(plotH)
	}
	colors := []string{"#3b6ea5", "#b5442f", "#3d8a4f", "#8a5fa0", "#b0851f"}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-family="sans-serif" font-size="16">%s</text>`,
		marginL, escapeXML(title))
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`,
		marginL+plotW/2, height-10, escapeXML(xLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%d" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %d)">%s</text>`,
		marginT+plotH/2, marginT+plotH/2, escapeXML(yLabel))
	for i, s := range series {
		color := colors[i%len(colors)]
		var path strings.Builder
		for j, p := range s.Points {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.2f %.2f ", cmd, lx(p.X), ly(p.Y))
		}
		fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.TrimSpace(path.String()), color)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="3" fill="%s"/>`, lx(p.X), ly(p.Y), color)
		}
		ylg := marginT + 16 + i*18
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`,
			marginL+plotW+12, ylg-10, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`,
			marginL+plotW+30, ylg, escapeXML(s.Name))
	}
	sb.WriteString(`</svg>`)
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
