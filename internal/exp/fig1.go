package exp

import (
	"fmt"
	"os"
	"path/filepath"
)

// Fig1 reproduces Figure 1: the number of vertices per CH level. The
// paper's instance has 140 levels with half of all vertices on level 0,
// all but ~10^4 vertices in the lowest 20 levels, and all but ~10^3 in
// the lowest 66; the synthetic instance must show the same geometric
// decay.
func Fig1(e *Env) ([]*Table, error) {
	sizes := e.H.LevelSizes()
	n := e.G.NumVertices()
	t := &Table{
		ID:      "fig1",
		Title:   "vertices per level (CH hierarchy)",
		Headers: []string{"level", "vertices", "cumulative %"},
	}
	cum := 0
	for l, s := range sizes {
		cum += s
		t.AddRow(fmt.Sprintf("%d", l), fmt.Sprintf("%d", s),
			f1(100*float64(cum)/float64(n)))
	}
	frac0 := float64(sizes[0]) / float64(n)
	t.AddNote("%d levels; level 0 holds %.0f%% of all vertices (paper: ~140 levels, ~50%%)",
		len(sizes), 100*frac0)
	low20 := 0
	for l := 0; l < len(sizes) && l < 20; l++ {
		low20 += sizes[l]
	}
	t.AddNote("lowest 20 levels hold all but %d of %d vertices (paper: all but ~10^4 of 18M)",
		n-low20, n)
	if e.Cfg.SVGDir != "" {
		path := filepath.Join(e.Cfg.SVGDir, "fig1.svg")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := WriteLevelHistogramSVG(f, sizes,
			fmt.Sprintf("Vertices per level (%s, n=%d)", e.Cfg.Preset, n)); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		t.AddNote("figure written to %s", path)
	}
	return []*Table{t}, nil
}
