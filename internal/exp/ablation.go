package exp

import (
	"time"

	"phast/internal/ch"
	"phast/internal/core"
)

// Ablation quantifies the design choices DESIGN.md calls out: the terms
// of the contraction priority function (Section VIII-A notes PHAST works
// with any good ordering, so the interesting question is how much each
// term buys), the witness-search hop-limit schedule, and the vertex
// reordering itself (already covered per-layout by Table I but repeated
// here as sweep-mode rows on a fixed layout).
func Ablation(e *Env) ([]*Table, error) {
	t := &Table{
		ID:    "ablation",
		Title: "design-choice ablations on " + string(e.Cfg.Preset),
		Headers: []string{"variant", "prep [ms]", "shortcuts", "levels",
			"avg up-search", "PHAST tree [ms]"},
	}
	type variant struct {
		name string
		opt  ch.Options
	}
	variants := []variant{
		{"paper priority (2,1,1,5), hop 5/10", ch.Options{}},
		{"edge difference only", ch.Options{Priority: &ch.PriorityWeights{ED: 1}}},
		{"no level term (2,1,1,0)", ch.Options{Priority: &ch.PriorityWeights{ED: 2, CN: 1, H: 1}}},
		{"no hops/contracted-neighbors (2,0,0,5)", ch.Options{Priority: &ch.PriorityWeights{ED: 2, L: 5}}},
		{"1-hop witness searches", ch.Options{HopLimitLow: 1, HopLimitMid: 1, DegreeMid: 1e18}},
		{"unlimited witness searches", ch.Options{HopLimitLow: 1 << 30, HopLimitMid: 1 << 30}},
		{"nested dissection order", ch.Options{FixedOrder: ch.NestedDissectionOrder(e.G)}},
	}
	for _, v := range variants {
		start := time.Now()
		h := ch.Build(e.G, v.opt)
		prep := time.Since(start)
		eng, err := core.NewEngine(h, core.Options{Workers: 1})
		if err != nil {
			return nil, err
		}
		eng.Tree(e.Sources[0])
		// Average upward-search-space size: the CH-query-cost proxy.
		total := 0
		for _, s := range e.Sources {
			verts, _ := eng.UpwardSearchSpace(s, nil, nil)
			total += len(verts)
		}
		tree := e.perTree(func(s int32) { eng.Tree(s) })
		t.AddRow(v.name, ms(prep), itoa(h.NumShortcuts), itoa(int(h.MaxLevel)+1),
			itoa(total/len(e.Sources)), ms(tree))
		e.logf("ablation: %s done (%v prep)", v.name, prep)
	}

	// Sweep-order ablation on the default hierarchy (Section III vs IV-A).
	t2 := &Table{
		ID:      "ablation-sweep",
		Title:   "sweep-order ablation (same hierarchy, DFS base layout)",
		Headers: []string{"sweep order", "PHAST tree [ms]"},
	}
	for _, mode := range []core.SweepMode{core.SweepRankOrder, core.SweepLevelOrder, core.SweepReordered} {
		eng, err := e.Engine(mode, 1)
		if err != nil {
			return nil, err
		}
		eng.Tree(e.Sources[0])
		t2.AddRow(mode.String(), ms(e.perTree(func(s int32) { eng.Tree(s) })))
	}
	t2.AddNote("paper: rank order 2.0s -> level order 0.7s -> reordered 172ms on 18M vertices")
	return []*Table{t, t2}, nil
}
