package exp

import (
	"fmt"
	"time"

	"phast/internal/core"
	"phast/internal/gphast"
	"phast/internal/simt"
)

// Table3 reproduces Table III: GPHAST's GPU memory utilization and time
// per tree as a function of k, the number of trees per sweep. Times are
// the SIMT simulator's modeled GTX 580 times (see DESIGN.md); memory is
// the real device allocation, dominated by the k·n label array.
func Table3(e *Env) ([]*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "GPHAST on modeled GTX 580: memory and modeled time per tree",
		Headers: []string{"trees/sweep", "memory [MB]", "time [ms]", "kernel launches/tree"},
	}
	ce, err := e.Engine(core.SweepReordered, 1)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		dev := simt.NewDevice(simt.GTX580())
		ge, err := gphast.NewEngine(ce.Clone(), dev, k)
		if err != nil {
			return nil, err
		}
		batches := (e.Cfg.GPUTrees + k - 1) / k
		if batches < 1 {
			batches = 1
		}
		var total time.Duration
		var kernels int
		for b := 0; b < batches; b++ {
			before := dev.Stats().Kernels
			ge.MultiTree(e.randSources(k))
			total += ge.LastBatchModeledTime()
			kernels = dev.Stats().Kernels - before
		}
		perTree := total / time.Duration(batches*k)
		t.AddRow(fmt.Sprintf("%d", k), mb(ge.MemoryUsed()), ms(perTree),
			fmt.Sprintf("%d", kernels))
		e.logf("table3: k=%d modeled %s ms/tree", k, ms(perTree))
	}
	t.AddNote("modeled times from the SIMT cost model (bandwidth %.1f GB/s, %d SMs); shape: per-tree time falls as k grows",
		simt.GTX580().MemBandwidthGBs, simt.GTX580().NumSMs)
	t.AddNote("paper: 5.53 ms at k=1 down to 2.21 ms at k=16 on 18M vertices")
	return []*Table{t}, nil
}
