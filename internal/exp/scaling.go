package exp

import (
	"os"
	"path/filepath"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/gphast"
	"phast/internal/layout"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/simt"
	"phast/internal/sssp"
)

// Scaling measures how the PHAST-vs-Dijkstra gap grows with instance
// size. The paper's 16.5x is measured at 18M vertices; on small
// instances Dijkstra's queue stays cache-resident and the gap is
// smaller, so the n-dependence itself is part of the reproduction: the
// speedup must grow monotonically toward the paper's figure.
func Scaling(e *Env) ([]*Table, error) {
	presets := []roadnet.Preset{roadnet.PresetEuropeXS, roadnet.PresetEuropeS}
	switch e.Cfg.Preset {
	case roadnet.PresetEuropeM, roadnet.PresetUSAM:
		presets = append(presets, roadnet.PresetEuropeM)
	case roadnet.PresetEuropeL, roadnet.PresetUSAL:
		presets = append(presets, roadnet.PresetEuropeM, roadnet.PresetEuropeL)
	}
	t := &Table{
		ID:    "scaling",
		Title: "PHAST vs Dijkstra per tree as the instance grows",
		Headers: []string{"instance", "n", "arcs", "prep [ms]",
			"Dijkstra [ms]", "PHAST [ms]", "speedup", "GPHAST k=16 [ms]"},
	}
	curves := []Series{{Name: "Dijkstra (Dial)"}, {Name: "PHAST"}, {Name: "GPHAST (modeled)"}}
	for _, preset := range presets {
		net, err := roadnet.GeneratePreset(preset, e.Cfg.Metric)
		if err != nil {
			return nil, err
		}
		g, err := net.Graph.Permute(layout.DFS(net.Graph, 0))
		if err != nil {
			return nil, err
		}
		n := g.NumVertices()
		start := time.Now()
		h := ch.Build(g, ch.Options{})
		prep := time.Since(start)
		sources := make([]int32, len(e.Sources))
		for i, s := range e.Sources {
			sources[i] = int32(int(s) % n)
		}
		d := sssp.NewDijkstra(g, pq.KindDial)
		d.Run(0)
		tDij := perTreeOver(sources, func(s int32) { d.Run(s) })
		eng, err := core.NewEngine(h, core.Options{Workers: 1})
		if err != nil {
			return nil, err
		}
		eng.Tree(0)
		tPhast := perTreeOver(sources, func(s int32) { eng.Tree(s) })
		ge, err := gphast.NewEngine(eng, simt.NewDevice(simt.GTX580()), 16)
		if err != nil {
			return nil, err
		}
		ge.MultiTree(sources16(sources))
		tGPU := ge.LastBatchModeledTime() / 16
		t.AddRow(string(preset), itoa(n), itoa(g.NumArcs()), ms(prep),
			ms(tDij), ms(tPhast), f1(float64(tDij)/float64(tPhast))+"x", ms(tGPU))
		for i, d := range []time.Duration{tDij, tPhast, tGPU} {
			curves[i].Points = append(curves[i].Points, SeriesPoint{
				X: float64(n), Y: float64(d) / 1e6, // ms
			})
		}
		e.logf("scaling: %s done", preset)
	}
	t.AddNote("paper endpoint: 16.5x sequential at 18M vertices on a 25.6 GB/s machine; PHAST is bandwidth-bound, so the column scales with both n and the host's DRAM bandwidth")
	if e.Cfg.SVGDir != "" {
		path := filepath.Join(e.Cfg.SVGDir, "scaling.svg")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := WriteLinesSVG(f, curves, "Per-tree time vs instance size",
			"vertices (log)", "ms per tree (log)"); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		t.AddNote("figure written to %s", path)
	}
	return []*Table{t}, nil
}

// sources16 pads or truncates a source list to exactly 16 entries.
func sources16(src []int32) []int32 {
	out := make([]int32, 16)
	for i := range out {
		out[i] = src[i%len(src)]
	}
	return out
}
