package exp

import (
	"phast/internal/core"
	"phast/internal/layout"
	"phast/internal/machine"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// Table5 reproduces Table V: the impact of different computer
// architectures on Dijkstra's algorithm and PHAST, single-threaded, one
// tree per core (free vs pinned threads) and 16 trees per core. The
// M1-4 single-thread cells are measured on this host and projected onto
// the other machines with the first-order model of internal/machine
// (thread pinning and NUMA placement are OS facilities outside a pure-Go
// reproduction; see DESIGN.md).
func Table5(e *Env) ([]*Table, error) {
	// Measure the anchors on the DFS layout (the paper's convention).
	perm := layout.DFS(e.G, 0)
	g, err := e.G.Permute(perm)
	if err != nil {
		return nil, err
	}
	h, err := e.H.Permute(perm)
	if err != nil {
		return nil, err
	}
	d := sssp.NewDijkstra(g, pq.KindDial)
	d.Run(0)
	dijkstraSingle := e.perTree(func(s int32) { d.Run(perm[s]) })
	eng, err := core.NewEngine(h, core.Options{Workers: 1})
	if err != nil {
		return nil, err
	}
	eng.Tree(0)
	phastSingle := e.perTree(func(s int32) { eng.Tree(perm[s]) })
	phast16 := e.multiTreePerTree(eng, 16, 1, true)
	e.logf("table5: anchors measured (dijkstra %s ms, phast %s ms, phast k=16 %s ms)",
		ms(dijkstraSingle), ms(phastSingle), ms(phast16))

	t := &Table{
		ID:    "table5",
		Title: "modeled per-tree times [ms] across machines (anchored to local measurements)",
		Headers: []string{"machine",
			"Dij single", "Dij tree/core free", "Dij tree/core pinned",
			"PHAST single", "PHAST tree/core free", "PHAST tree/core pinned",
			"PHAST 16/core free", "PHAST 16/core pinned"},
	}
	ref := e.Ref
	for _, m := range machine.Catalogue() {
		dS := machine.Scale(dijkstraSingle, ref, m, machine.LatencyBound)
		pS := machine.Scale(phastSingle, ref, m, machine.BandwidthBound)
		p16 := machine.Scale(phast16, ref, m, machine.BandwidthBound)
		t.AddRow(m.Name,
			ms(dS),
			ms(machine.ScaleParallel(dS, m, m.Cores, false, machine.LatencyBound)),
			ms(machine.ScaleParallel(dS, m, m.Cores, true, machine.LatencyBound)),
			ms(pS),
			ms(machine.ScaleParallel(pS, m, m.Cores, false, machine.BandwidthBound)),
			ms(machine.ScaleParallel(pS, m, m.Cores, true, machine.BandwidthBound)),
			ms(machine.ScaleParallel(p16, m, m.Cores, false, machine.BandwidthBound)),
			ms(machine.ScaleParallel(p16, m, m.Cores, true, machine.BandwidthBound)))
	}
	t.AddNote("measured anchors on this host: Dijkstra %s ms, PHAST %s ms, PHAST k=16 %s ms per tree",
		ms(dijkstraSingle), ms(phastSingle), ms(phast16))
	t.AddNote("paper shape: PHAST ~19x faster single-threaded everywhere; pinning critical on multi-socket NUMA; ~40x with all cores")
	return []*Table{t}, nil
}
