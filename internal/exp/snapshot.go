package exp

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"phast/internal/core"
	"phast/internal/snapshot"
)

// Snapshot measures the engine's cold-start alternatives: rebuilding
// from the raw graph (CH contraction + engine derivation), versus
// restoring a saved snapshot by mmap (large arrays alias the mapped
// pages, zero copies) or by the heap fallback reader (one aligned
// buffer copy, then the same aliasing). The one-time save cost and the
// on-disk footprint complete the picture. The ratio between the
// rebuild row and the mmap row is what cmd/benchsmoke -mode snapshot
// gates in CI (BENCH_8.json, floor 50x at europe-m).
func Snapshot(e *Env) ([]*Table, error) {
	t := &Table{
		ID:      "snapshot",
		Title:   fmt.Sprintf("engine cold start: rebuild vs snapshot restore on %s", e.Cfg.Preset),
		Headers: []string{"path", "time [ms]", "bytes", "speedup vs rebuild"},
	}
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
	}

	// Rebuild row: the CH contraction already timed by NewEnv plus a
	// fresh engine derivation (relabeling, stream packing, chunking).
	start := time.Now()
	eng, err := core.NewEngine(e.H, core.Options{Mode: core.SweepReordered, Workers: 1})
	if err != nil {
		return nil, err
	}
	engTime := time.Since(start)
	rebuild := e.CHTime + engTime

	dir, err := os.MkdirTemp("", "exp-snapshot-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := dir + "/engine.snap"
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	size, err := snapshot.Write(f, eng.Parts(), e.G)
	saveTime := time.Since(start)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}

	// Restores are milliseconds; min over a few rounds rejects jitter.
	// Each timed restore includes one tree so deferred page faults and
	// pool spin-up are inside the measurement, mirroring the CI gate.
	const restoreRounds = 3
	mapped := false
	restore := func(load func() (*snapshot.Snapshot, error)) (time.Duration, error) {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < restoreRounds; r++ {
			start := time.Now()
			snap, err := load()
			if err != nil {
				return 0, err
			}
			le, err := core.NewEngineFromParts(snap.Parts, 1, core.SnapshotInfo{Bytes: snap.Size, Hold: snap.Hold})
			if err != nil {
				return 0, err
			}
			le.Tree(e.Sources[0])
			if d := time.Since(start); d < best {
				best = d
			}
			mapped = snap.Mapped
		}
		return best, nil
	}
	loadTime, err := restore(func() (*snapshot.Snapshot, error) { return snapshot.Load(path) })
	if err != nil {
		return nil, err
	}
	mmapRow := "mmap load"
	if !mapped {
		mmapRow = "load (no mmap on this host)"
	}
	readTime, err := restore(func() (*snapshot.Snapshot, error) { return snapshot.Read(bytes.NewReader(raw)) })
	if err != nil {
		return nil, err
	}

	t.AddRow("CH build + engine", ms(rebuild), "-", "1.0")
	t.AddRow("save snapshot (once)", ms(saveTime), fmt.Sprintf("%d", size), "-")
	t.AddRow(mmapRow, ms(loadTime), fmt.Sprintf("%d", size),
		fmt.Sprintf("%.0fx", rebuild.Seconds()/loadTime.Seconds()))
	t.AddRow("heap read", ms(readTime), fmt.Sprintf("%d", size),
		fmt.Sprintf("%.0fx", rebuild.Seconds()/readTime.Seconds()))
	e.logf("snapshot: %d bytes; rebuild %v, save %v, mmap %v, read %v",
		size, rebuild, saveTime, loadTime, readTime)

	t.AddNote("timed restores include validation, engine assembly, and one warm tree")
	t.AddNote("mmap'd arrays alias PROT_READ pages shared by every process mapping the file")
	t.AddNote("CI gates rebuild/mmap via cmd/benchsmoke -mode snapshot (BENCH_8.json)")
	return []*Table{t}, nil
}
