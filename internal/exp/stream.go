package exp

import (
	"fmt"
	"time"

	"phast/internal/core"
	"phast/internal/layout"
)

// Stream compares the compressed sweep stream (graph.PackedZ:
// delta-encoded arc heads, per-block narrow weights) against the
// uncompressed packed layout it derives from. The sweep is
// bandwidth-bound, so the interesting trade is bytes streamed per tree
// against the decode instructions spent recovering each arc: the
// compressed rows should read roughly half the bytes at nearly the
// packed kernel's speed. Modeled GB/s divides the stream footprint by
// the measured time — it drops for the compressed rows even at equal
// time, because the same sweep reads fewer bytes.
func Stream(e *Env) ([]*Table, error) {
	t := &Table{
		ID:    "stream",
		Title: fmt.Sprintf("compressed vs packed sweep stream on %s", e.Cfg.Preset),
		Headers: []string{"stream", "tree [ms]", "multi k=16 [ms/tree]",
			"stream bytes", "B/vertex", "ratio", "modeled GB/s"},
	}
	k := 16
	multiSources := e.randSources(k)
	n := e.G.NumVertices()

	// The delta encoding is designed for a locality-preserving vertex
	// layout (small position deltas), so measure on the DFS layout the
	// pipeline and the benchsmoke gate use — the input layout would
	// charge the compressed rows for wide deltas no deployment pays.
	perm := layout.DFS(e.G, 0)
	h, err := e.H.Permute(perm)
	if err != nil {
		return nil, err
	}
	for i, s := range multiSources {
		multiSources[i] = perm[s]
	}

	type row struct {
		name       string
		compressed bool
	}
	engines := make(map[bool]*core.Engine, 2)
	for _, r := range []row{{"packed", false}, {"compressed", true}} {
		eng, err := core.NewEngine(h, core.Options{
			Mode: core.SweepReordered, Workers: 1, CompressedSweep: r.compressed,
		})
		if err != nil {
			return nil, err
		}
		engines[r.compressed] = eng
		eng.Tree(perm[e.Sources[0]]) // warm the buffers outside the timer
		tree := e.perTree(func(s int32) { eng.Tree(perm[s]) })
		multi := e.perTree(func(s int32) {
			multiSources[0] = perm[s]
			eng.MultiTree(multiSources, false)
		}) / time.Duration(k)
		bytes := eng.StreamBytes()
		gbps := float64(bytes) / tree.Seconds() / 1e9
		t.AddRow(
			r.name,
			fmt.Sprintf("%.2f", float64(tree.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(multi.Microseconds())/1000),
			fmt.Sprintf("%d", bytes),
			fmt.Sprintf("%.1f", float64(bytes)/float64(n)),
			fmt.Sprintf("%.3f", eng.CompressionRatio()),
			fmt.Sprintf("%.2f", gbps),
		)
		e.logf("stream %s: %v/tree, %v/tree at k=%d, %d stream bytes",
			r.name, tree, multi, k, bytes)
	}
	t.AddNote("both rows run the same upward search; only the sweep's arc stream differs")
	t.AddNote("ratio = compressed bytes / packed bytes for the identical downward graph")
	t.AddNote("CI gates the compressed-vs-packed ratios via cmd/benchsmoke -mode stream (BENCH_7.json)")

	// The k-sweep: per-tree time against batch width, packed and
	// compressed (the Table II shape of the paper's multi-tree
	// amortization). Larger k amortizes the graph stream over more
	// trees, so per-tree time falls for both layouts; the last column
	// tracks how close the compressed decode-once lane-major kernels
	// stay to the packed vertex-major ones as the k·n label traffic
	// comes to dominate. The lane flag mirrors each engine's production
	// default: lane-major engines take the lane-group path at any k,
	// vertex-major ones only at multiples of 4.
	ks := &Table{
		ID:    "stream-ksweep",
		Title: fmt.Sprintf("multi-tree per-tree time vs batch width on %s", e.Cfg.Preset),
		Headers: []string{"k", "packed [ms/tree]", "compressed [ms/tree]",
			"compressed/packed"},
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		srcs := e.randSources(k)
		for i, s := range srcs {
			srcs[i] = perm[s]
		}
		times := make(map[bool]time.Duration, 2)
		for _, compressed := range []bool{false, true} {
			eng := engines[compressed]
			useLanes := eng.MultiLaneMajor() || k%4 == 0
			times[compressed] = e.perTree(func(s int32) {
				srcs[0] = perm[s]
				eng.MultiTree(srcs, useLanes)
			}) / time.Duration(k)
		}
		ks.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2f", float64(times[false].Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(times[true].Microseconds())/1000),
			fmt.Sprintf("%.3f", times[true].Seconds()/times[false].Seconds()),
		)
		e.logf("stream k=%d: packed %v/tree, compressed %v/tree", k, times[false], times[true])
	}
	ks.AddNote("per-tree time = batch sweep time / k; the graph stream amortizes as k grows")
	ks.AddNote("compressed engines run the decode-once lane-major kernels; packed engines the vertex-major lane kernels (scalar relax at k not divisible by 4)")
	return []*Table{t, ks}, nil
}
