package exp

import (
	"strings"
	"testing"
	"time"

	"phast/internal/roadnet"
)

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv(Config{
		Preset:   roadnet.PresetEuropeXS,
		Sources:  2,
		GPUTrees: 1,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSuiteRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	e := tinyEnv(t)
	for _, r := range Suite() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tables, err := r.Run(e)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", r.ID)
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s: table %s has no rows", r.ID, tbl.ID)
				}
				out := tbl.String()
				if !strings.Contains(out, tbl.Title) {
					t.Fatalf("%s: rendering lost the title", r.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Headers) {
						t.Fatalf("%s/%s: row %v has %d cells, want %d",
							r.ID, tbl.ID, row, len(row), len(tbl.Headers))
					}
				}
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Preset == "" || c.Sources == 0 || c.GPUTrees == 0 || c.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Headers: []string{"a", "bbbb"},
	}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "2")
	tbl.AddNote("n=%d", 5)
	out := tbl.String()
	for _, want := range []string{"demo", "longer", "bbbb", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{
		ID:      "t1",
		Title:   "demo",
		Headers: []string{"a", "b"},
	}
	tbl.AddRow("x|y", "1")
	tbl.AddNote("careful | pipes")
	out := tbl.Markdown()
	for _, want := range []string{"### T1 — demo", "| a | b |", "|---|---|", `x\|y`, `*careful \| pipes*`} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.50" {
		t.Fatalf("ms=%s", ms(1500*time.Microsecond))
	}
	if ms(250*time.Millisecond) != "250" {
		t.Fatalf("ms=%s", ms(250*time.Millisecond))
	}
	if ms(50*time.Microsecond) != "0.050" {
		t.Fatalf("ms=%s", ms(50*time.Microsecond))
	}
	if dhm(26*time.Hour+5*time.Minute) != "1:02:05" {
		t.Fatalf("dhm=%s", dhm(26*time.Hour+5*time.Minute))
	}
	if mb(1<<20) != "1.0" || gb(1<<30) != "1.00" {
		t.Fatal("mb/gb formatting broken")
	}
	if itoa(-42) != "-42" {
		t.Fatal("itoa broken")
	}
	if totalTime(50*time.Hour) != "2:02:00" {
		t.Fatalf("totalTime day form: %s", totalTime(50*time.Hour))
	}
	if totalTime(90*time.Second) != "1m30s" {
		t.Fatalf("totalTime minute form: %s", totalTime(90*time.Second))
	}
	if totalTime(1500*time.Millisecond) != "1.5s" {
		t.Fatalf("totalTime second form: %s", totalTime(1500*time.Millisecond))
	}
	if totalTime(3*time.Millisecond) != "3ms" {
		t.Fatalf("totalTime ms form: %s", totalTime(3*time.Millisecond))
	}
	if f2(1.234) != "1.23" || f1(1.26) != "1.3" {
		t.Fatal("float formatting broken")
	}
}

func TestEnvSourcesInRange(t *testing.T) {
	e := tinyEnv(t)
	n := e.G.NumVertices()
	for _, s := range e.Sources {
		if s < 0 || int(s) >= n {
			t.Fatalf("source %d out of range", s)
		}
	}
	more := e.randSources(7)
	if len(more) != 7 {
		t.Fatal("randSources length")
	}
	for _, s := range more {
		if s < 0 || int(s) >= n {
			t.Fatalf("source %d out of range", s)
		}
	}
}
