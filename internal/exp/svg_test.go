package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestLevelHistogramSVG(t *testing.T) {
	var buf bytes.Buffer
	sizes := []int{5000, 2500, 900, 200, 40, 5, 1}
	if err := WriteLevelHistogramSVG(&buf, sizes, "test <fig>"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(out, `fill="#3b6ea5"`) != len(sizes) {
		t.Fatalf("expected %d bars, got %d", len(sizes), strings.Count(out, `fill="#3b6ea5"`))
	}
	if strings.Contains(out, "<fig>") || !strings.Contains(out, "&lt;fig&gt;") {
		t.Fatal("title not XML-escaped")
	}
	if err := WriteLevelHistogramSVG(&buf, nil, "x"); err == nil {
		t.Fatal("empty histogram accepted")
	}
	// Zero-count levels are skipped, not drawn at -inf.
	buf.Reset()
	if err := WriteLevelHistogramSVG(&buf, []int{10, 0, 3}, "x"); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), `fill="#3b6ea5"`) != 2 {
		t.Fatal("zero level drawn")
	}
}

func TestLinesSVG(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "a", Points: []SeriesPoint{{1000, 0.5}, {10000, 4.2}, {100000, 40}}},
		{Name: "b & c", Points: []SeriesPoint{{1000, 0.1}, {10000, 0.9}, {100000, 8}}},
	}
	if err := WriteLinesSVG(&buf, series, "scaling", "n", "ms"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<path") != 2 {
		t.Fatalf("expected 2 paths, got %d", strings.Count(out, "<path"))
	}
	if strings.Count(out, "<circle") != 6 {
		t.Fatalf("expected 6 markers, got %d", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, "b &amp; c") {
		t.Fatal("legend not escaped")
	}
	// Error paths.
	if err := WriteLinesSVG(&buf, nil, "t", "x", "y"); err == nil {
		t.Fatal("no series accepted")
	}
	if err := WriteLinesSVG(&buf, []Series{{Name: "e"}}, "t", "x", "y"); err == nil {
		t.Fatal("empty series accepted")
	}
	bad := []Series{{Name: "neg", Points: []SeriesPoint{{-1, 2}}}}
	if err := WriteLinesSVG(&buf, bad, "t", "x", "y"); err == nil {
		t.Fatal("non-positive point accepted on log-log plot")
	}
}

func TestLinesSVGSinglePoint(t *testing.T) {
	// Degenerate ranges (one point) must not divide by zero.
	var buf bytes.Buffer
	series := []Series{{Name: "one", Points: []SeriesPoint{{42, 7}}}}
	if err := WriteLinesSVG(&buf, series, "t", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<circle") {
		t.Fatal("marker missing")
	}
}

func TestFig1WritesSVG(t *testing.T) {
	e := tinyEnv(t)
	dir := t.TempDir()
	e.Cfg.SVGDir = dir
	defer func() { e.Cfg.SVGDir = "" }()
	tables, err := Fig1(e)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tables[0].Notes {
		if strings.Contains(n, "fig1.svg") {
			found = true
		}
	}
	if !found {
		t.Fatal("fig1 did not report the SVG path")
	}
}
