package exp

import (
	"phast/internal/bandwidth"
	"phast/internal/core"
)

// LowerBound reproduces the memory-bandwidth lower-bound experiment of
// Section VIII-B/C: a pure sequential pass over PHAST's arrays, the same
// data walked vertex-by-vertex with the short inner loop (arc-length
// sums), and PHAST itself. The paper finds PHAST within 2.6x of the
// stream and within 19ms of the loop-shaped traversal — the algorithm is
// essentially memory-bound.
func LowerBound(e *Env) ([]*Table, error) {
	eng, err := e.Engine(core.SweepReordered, 1)
	if err != nil {
		return nil, err
	}
	downIn := eng.Hierarchy().DownIn
	dist := make([]uint32, e.G.NumVertices())
	const reps = 5
	seq := bandwidth.Sequential(downIn, dist, reps)
	trav := bandwidth.Traversal(downIn, dist, reps)
	eng.Tree(e.Sources[0]) // warm
	phast := e.perTree(func(s int32) { eng.Tree(s) })
	par := bandwidth.SequentialParallel(downIn, dist, reps, MaxProcs())

	t := &Table{
		ID:      "lowerbound",
		Title:   "memory lower bounds vs PHAST (single tree)",
		Headers: []string{"measurement", "time [ms]", "vs stream"},
	}
	rel := func(x float64) string { return f2(x) + "x" }
	t.AddRow("sequential stream over first/arclist/dist", ms(seq), rel(1))
	t.AddRow("vertex-loop traversal (arc-length sums)", ms(trav), rel(float64(trav)/float64(seq)))
	t.AddRow("PHAST sweep (one tree)", ms(phast), rel(float64(phast)/float64(seq)))
	t.AddRow("parallel stream, all cores", ms(par), rel(float64(par)/float64(seq)))
	gbs := float64(bandwidth.BytesTouched(downIn, dist)) / seq.Seconds() / 1e9
	t.AddNote("stream moves %.2f GB/s on this host", gbs)
	t.AddNote("paper: stream 65.6ms, traversal 153ms, PHAST 172ms on 18M vertices — PHAST within 2.6x of the stream")
	return []*Table{t}, nil
}
