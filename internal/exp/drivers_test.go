package exp

import (
	"strconv"
	"strings"
	"testing"
)

// Driver-specific content checks beyond the suite smoke test.

func TestFig1ContentSumsToN(t *testing.T) {
	e := tinyEnv(t)
	tables, err := Fig1(e)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range tables[0].Rows {
		v, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("non-numeric vertex count %q", row[1])
		}
		total += v
	}
	if total != e.G.NumVertices() {
		t.Fatalf("level sizes sum to %d, want %d", total, e.G.NumVertices())
	}
	last := tables[0].Rows[len(tables[0].Rows)-1]
	if last[2] != "100.0" {
		t.Fatalf("cumulative %% ends at %s, want 100.0", last[2])
	}
}

func TestTable4ListsAllMachines(t *testing.T) {
	e := tinyEnv(t)
	tables, err := Table4(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 5 {
		t.Fatalf("table4 has %d rows, want 5", len(tables[0].Rows))
	}
	names := map[string]bool{}
	for _, row := range tables[0].Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"M2-1", "M2-4", "M4-12", "M1-4", "M2-6"} {
		if !names[want] {
			t.Fatalf("machine %s missing", want)
		}
	}
}

func TestTable1RowsCoverAlgorithms(t *testing.T) {
	e := tinyEnv(t)
	tables, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	var dijkstra, phast int
	for _, row := range tables[0].Rows {
		switch row[0] {
		case "Dijkstra":
			dijkstra++
		case "PHAST":
			phast++
		}
	}
	if dijkstra < 3 || phast < 3 {
		t.Fatalf("table1 rows: %d Dijkstra, %d PHAST", dijkstra, phast)
	}
	// Every timing cell parses as a float.
	for _, row := range tables[0].Rows {
		for _, cell := range row[2:] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("cell %q not numeric", cell)
			}
		}
	}
}

func TestScalingSpeedupColumnsWellFormed(t *testing.T) {
	e := tinyEnv(t)
	tables, err := Scaling(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if !strings.HasSuffix(row[6], "x") {
			t.Fatalf("speedup cell %q missing x suffix", row[6])
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[6], "x"), 64)
		if err != nil || v <= 1 {
			t.Fatalf("speedup %q not a ratio > 1 (PHAST must beat Dijkstra)", row[6])
		}
	}
}

func TestRPHASTSelectionGrowsWithTargets(t *testing.T) {
	e := tinyEnv(t)
	tables, err := RPHAST(e)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, row := range tables[0].Rows {
		sel, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("selection cell %q", row[1])
		}
		if sel < prev {
			t.Fatalf("selection shrank with more targets: %d after %d", sel, prev)
		}
		prev = sel
	}
}

func TestStreamCompressedRowReadsFewerBytes(t *testing.T) {
	e := tinyEnv(t)
	tables, err := Stream(e)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 2 || rows[0][0] != "packed" || rows[1][0] != "compressed" {
		t.Fatalf("unexpected rows %v", rows)
	}
	packed, err1 := strconv.Atoi(rows[0][3])
	compressed, err2 := strconv.Atoi(rows[1][3])
	if err1 != nil || err2 != nil {
		t.Fatalf("non-numeric stream bytes %q %q", rows[0][3], rows[1][3])
	}
	if compressed >= packed {
		t.Fatalf("compressed stream %d bytes is not smaller than packed %d", compressed, packed)
	}
	ratio, err := strconv.ParseFloat(rows[1][5], 64)
	if err != nil || ratio <= 0 || ratio >= 1 {
		t.Fatalf("compressed ratio %q not in (0,1)", rows[1][5])
	}
	if rows[0][5] != "1.000" {
		t.Fatalf("packed ratio %q, want 1.000", rows[0][5])
	}
	if len(tables) != 2 || tables[1].ID != "stream-ksweep" {
		t.Fatalf("missing k-sweep table, got %d tables", len(tables))
	}
	krows := tables[1].Rows
	wantK := []string{"1", "2", "4", "8", "16"}
	if len(krows) != len(wantK) {
		t.Fatalf("k-sweep has %d rows, want %d", len(krows), len(wantK))
	}
	for i, r := range krows {
		if r[0] != wantK[i] {
			t.Fatalf("k-sweep row %d is k=%q, want %q", i, r[0], wantK[i])
		}
		if ratio, err := strconv.ParseFloat(r[3], 64); err != nil || ratio <= 0 {
			t.Fatalf("k=%s: non-positive ratio %q", r[0], r[3])
		}
	}
}
