package exp

import (
	"fmt"
	"time"

	"phast/internal/core"
)

// Sched compares the three sweep drivers over identical kernels: the
// sequential sweep, the retained per-level fork-join oracle, and the
// persistent dependency-bounded chunk scheduler that replaced it
// (barrier-relaxed Section V). The parallel rows run at max(2,
// GOMAXPROCS) workers so the scheduling machinery engages even on a
// single-CPU host — there the comparison isolates pure scheduling
// overhead (two goroutines timeslicing one core), while a multi-core
// host shows the actual speedup. The scheduler-counter columns come
// from core.SchedStats and only the pooled row has them: chunks per
// sweep is fixed by ceil(n/grain), stalls count chunk starts that
// waited on the dependency frontier.
func Sched(e *Env) ([]*Table, error) {
	workers := MaxProcs()
	if workers < 2 {
		workers = 2
	}
	t := &Table{
		ID:    "sched",
		Title: fmt.Sprintf("sweep drivers on %s (parallel rows: %d workers)", e.Cfg.Preset, workers),
		Headers: []string{"driver", "workers", "tree [ms]", "speedup",
			"multi k=16 [ms/tree]", "chunks/sweep", "stalls/sweep", "idle wakeups"},
	}
	k := 16
	multiSources := e.randSources(k)

	type row struct {
		name     string
		workers  int
		forkJoin bool
	}
	rows := []row{
		{"sequential", 1, false},
		{"fork-join (oracle)", workers, true},
		{"pooled scheduler", workers, false},
	}
	var baseTree time.Duration
	for _, r := range rows {
		eng, err := core.NewEngine(e.H, core.Options{
			Mode: core.SweepReordered, Workers: r.workers, ForkJoinSweep: r.forkJoin,
		})
		if err != nil {
			return nil, err
		}
		eng.TreeParallel(e.Sources[0]) // warm the buffers outside the timer
		before := eng.SchedStats()
		tree := e.perTree(func(s int32) { eng.TreeParallel(s) })
		multi := e.perTree(func(s int32) {
			multiSources[0] = s
			eng.MultiTreeParallel(multiSources, false)
		}) / time.Duration(k)
		after := eng.SchedStats()
		if baseTree == 0 {
			baseTree = tree
		}
		chunksCol, stallsCol, idleCol := "-", "-", "-"
		if sweeps := after.Sweeps - before.Sweeps; sweeps > 0 {
			chunksCol = fmt.Sprintf("%.0f", float64(after.Chunks-before.Chunks)/float64(sweeps))
			stallsCol = fmt.Sprintf("%.1f", float64(after.Stalls-before.Stalls)/float64(sweeps))
			idleCol = fmt.Sprintf("%d", after.Idle-before.Idle)
		}
		t.AddRow(
			r.name,
			fmt.Sprintf("%d", r.workers),
			fmt.Sprintf("%.2f", float64(tree.Microseconds())/1000),
			fmt.Sprintf("%.2fx", float64(baseTree)/float64(tree)),
			fmt.Sprintf("%.2f", float64(multi.Microseconds())/1000),
			chunksCol, stallsCol, idleCol,
		)
		e.logf("sched %s: %v/tree, %v/tree at k=%d", r.name, tree, multi, k)
	}
	t.AddNote("all drivers run identical chunk kernels; the rows differ only in how chunks are scheduled")
	t.AddNote("pooled chunks are cut to the cache byte budget (Options.ChunkBytes, default half the detected L2); stalls wait on the dependency frontier, not a level barrier")
	t.AddNote("CI gates the pooled-vs-fork-join ratio via cmd/benchsmoke -mode sched (BENCH_5.json)")
	return []*Table{t}, nil
}
