package exp

import (
	"fmt"
	"time"

	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/sssp"
)

// Customize measures the topology/metric split: one metric-independent
// all-pairs contraction (the expensive part), then triangle-relaxation
// customization per metric (the cheap part), with every customized
// metric's CH distances verified against Dijkstra on the reweighted
// graph. It always runs on europe-xs regardless of the suite preset:
// the baseline column is a full witness-free re-contraction, whose
// all-pairs fill makes it minutes-long on the bigger presets — which
// is precisely the cost the customization column exists to avoid.
func Customize(e *Env) ([]*Table, error) {
	net, err := roadnet.GeneratePreset(roadnet.PresetEuropeXS, e.Cfg.Metric)
	if err != nil {
		return nil, err
	}
	g := net.Graph
	start := time.Now()
	topo, err := ch.BuildCustomizable(g, ch.Options{})
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(start)
	e.logf("customize: all-pairs build %v, %d shortcuts, %d triangles, index %d KiB",
		buildTime, topo.Hierarchy().NumShortcuts, topo.NumTriangles(), topo.MemoryBytes()/1024)

	ref := make([]uint32, g.NumArcs())
	for i, a := range g.ArcList() {
		ref[i] = a.Weight
	}
	metrics := []struct {
		name    string
		weights func() []uint32
	}{
		{"car (reference)", func() []uint32 { return ref }},
		{"truck (scaled 3/2)", func() []uint32 {
			w := make([]uint32, len(ref))
			for i, x := range ref {
				w[i] = x + x/2
			}
			return w
		}},
		{"closures (5% Inf)", func() []uint32 {
			w := make([]uint32, len(ref))
			for i, x := range ref {
				if i%20 == 0 {
					w[i] = graph.Inf
				} else {
					w[i] = x
				}
			}
			return w
		}},
	}

	t := &Table{
		ID:      "customize",
		Title:   fmt.Sprintf("metric customization on europe-xs (n=%d, m=%d)", g.NumVertices(), g.NumArcs()),
		Headers: []string{"metric", "customize [ms]", "vs rebuild", "verified trees"},
	}
	sources := []int32{0, int32(g.NumVertices() / 3), int32(g.NumVertices() - 1)}
	for i, m := range metrics {
		w := m.weights()
		cstart := time.Now()
		h2, err := topo.Customize(w, ch.CustomizeOptions{Epoch: int64(i + 1), Name: m.name})
		if err != nil {
			return nil, err
		}
		ctime := time.Since(cstart)
		gw, err := g.WithWeights(w)
		if err != nil {
			return nil, err
		}
		q := ch.NewQuery(h2)
		dij := sssp.NewDijkstra(gw, pq.KindBinaryHeap)
		for _, s := range sources {
			dij.Run(s)
			for v := 0; v < g.NumVertices(); v++ {
				if got, want := q.Distance(s, int32(v)), dij.Dist(int32(v)); got != want {
					return nil, fmt.Errorf("customize: metric %q distance %d->%d = %d, Dijkstra says %d",
						m.name, s, v, got, want)
				}
			}
		}
		t.AddRow(m.name,
			fmt.Sprintf("%.2f", float64(ctime.Microseconds())/1000),
			fmt.Sprintf("%.2f%%", 100*float64(ctime)/float64(buildTime)),
			fmt.Sprintf("%d x %d vertices", len(sources), g.NumVertices()))
		e.logf("customize %s: %v (%.2f%% of the %v rebuild), verified", m.name, ctime,
			100*float64(ctime)/float64(buildTime), buildTime)
	}
	t.AddNote(fmt.Sprintf("one all-pairs contraction (%v) serves every metric; customization rebinds weights via %d lower triangles",
		buildTime.Round(time.Millisecond), topo.NumTriangles()))
	t.AddNote("every customized metric's CH distances verified against Dijkstra on the reweighted graph")
	return []*Table{t}, nil
}
