package exp

import (
	"fmt"

	"phast/internal/machine"
)

// Table4 reproduces Table IV, the catalogue of benchmark machines. The
// numeric cells lost from the provided paper text are reconstructed from
// its prose and public CPU specifications (see internal/machine).
func Table4(e *Env) ([]*Table, error) {
	t := &Table{
		ID:    "table4",
		Title: "specifications of the machines modeled",
		Headers: []string{"name", "brand", "type", "clock [GHz]", "P", "c",
			"mem type", "size [GB]", "bandw. [GB/s]", "B", "watts"},
	}
	for _, m := range machine.Catalogue() {
		t.AddRow(m.Name, m.Brand, m.CPUType, f2(m.ClockGHz),
			fmt.Sprintf("%d", m.CPUs), fmt.Sprintf("%d", m.Cores),
			m.MemType, fmt.Sprintf("%d", m.MemGB), f1(m.BandwidthGBs),
			fmt.Sprintf("%d", m.NUMANodes), f1(m.Watts))
	}
	t.AddNote("M1-4 anchors all local measurements; other machines are modeled (Table V/VI rows marked accordingly)")
	return []*Table{t}, nil
}
