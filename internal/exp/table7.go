package exp

import (
	"strconv"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/gphast"
	"phast/internal/layout"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/simt"
	"phast/internal/sssp"
)

// Table7 reproduces Table VII (Section VIII-G): Dijkstra, PHAST and
// GPHAST on the other inputs — the Europe- and USA-like instances under
// both the travel-time and travel-distance metrics. The distance metric
// weakens the hierarchy (the paper gets 410 levels instead of 140 and
// ~15% more arcs), which slows PHAST relatively more than Dijkstra.
func Table7(e *Env) ([]*Table, error) {
	presets := []roadnet.Preset{e.Cfg.Preset, roadnet.USACounterpart(e.Cfg.Preset)}
	metrics := []roadnet.Metric{roadnet.TravelTime, roadnet.TravelDistance}

	t := &Table{
		ID:    "table7",
		Title: "other inputs: time per tree [ms]",
		Headers: []string{"instance", "metric", "n", "levels", "A∪A+ arcs",
			"Dijkstra", "PHAST", "GPHAST (modeled)"},
	}
	info := &Table{
		ID:      "table7-prep",
		Title:   "CH preprocessing per input",
		Headers: []string{"instance", "metric", "prep time", "shortcuts"},
	}
	for _, preset := range presets {
		for _, metric := range metrics {
			net, err := roadnet.GeneratePreset(preset, metric)
			if err != nil {
				return nil, err
			}
			g := net.Graph
			n := g.NumVertices()
			perm := layout.DFS(g, 0)
			gd, err := g.Permute(perm)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			h := ch.Build(gd, ch.Options{})
			prep := time.Since(start)

			sources := make([]int32, len(e.Sources))
			for i := range sources {
				sources[i] = int32(int(e.Sources[i]) % n)
			}
			d := sssp.NewDijkstra(gd, pq.KindDial)
			d.Run(0)
			tDij := perTreeOver(sources, func(s int32) { d.Run(s) })
			eng, err := core.NewEngine(h, core.Options{Workers: 1})
			if err != nil {
				return nil, err
			}
			eng.Tree(0)
			tPhast := perTreeOver(sources, func(s int32) { eng.Tree(s) })

			ge, err := gphast.NewEngine(eng, simt.NewDevice(simt.GTX580()), 1)
			if err != nil {
				return nil, err
			}
			var tGPU time.Duration
			gpuTrees := e.Cfg.GPUTrees
			if gpuTrees > len(sources) {
				gpuTrees = len(sources)
			}
			for i := 0; i < gpuTrees; i++ {
				ge.Tree(sources[i])
				tGPU += ge.LastBatchModeledTime()
			}
			tGPU /= time.Duration(gpuTrees)

			t.AddRow(string(preset), metric.String(),
				itoa(n), itoa(int(h.MaxLevel)+1),
				itoa(h.Up.NumArcs()+h.Down.NumArcs()),
				ms(tDij), ms(tPhast), ms(tGPU))
			info.AddRow(string(preset), metric.String(), prep.Round(time.Millisecond).String(),
				itoa(h.NumShortcuts))
			e.logf("table7: %s/%s done", preset, metric)
		}
	}
	t.AddNote("paper shape: distances yield deeper hierarchies (410 vs 140 levels on Europe) and slow PHAST relatively more than Dijkstra")
	return []*Table{t, info}, nil
}

func perTreeOver(sources []int32, fn func(int32)) time.Duration {
	start := time.Now()
	for _, s := range sources {
		fn(s)
	}
	return time.Since(start) / time.Duration(len(sources))
}

func itoa(v int) string { return strconv.Itoa(v) }
