package exp

import (
	"time"

	"phast/internal/bandwidth"
	"phast/internal/core"
)

// Bound measures the achieved bandwidth of the real sweep kernels
// against the Section VIII-B memory lower bounds: the pure sequential
// stream sets the ceiling, and the packed (fused single-stream) and
// legacy (first/arclist/mark) single-tree sweeps are reported as
// modeled GB/s with their slowdown relative to the stream — the
// regression-checkable form of the paper's "PHAST runs within 2.6x of
// the memory bound" argument. The packed kernel must not trail the
// legacy one; CI's benchmark smoke job enforces the same ordering.
func Bound(e *Env) ([]*Table, error) {
	packed, err := e.Engine(core.SweepReordered, 1)
	if err != nil {
		return nil, err
	}
	legacy, err := core.NewEngine(e.H, core.Options{
		Mode: core.SweepReordered, Workers: 1, PackedSweep: core.PackedOff,
	})
	if err != nil {
		return nil, err
	}
	downIn := packed.Hierarchy().DownIn
	dist := make([]uint32, e.G.NumVertices())
	const reps = 5
	seq := bandwidth.Sequential(downIn, dist, reps)
	trav := bandwidth.Traversal(downIn, dist, reps)
	seqBytes := bandwidth.BytesTouched(downIn, dist)

	packed.Tree(e.Sources[0]) // warm
	legacy.Tree(e.Sources[0])
	// Interleaved min-of-rounds, alternating order: on cache-resident
	// presets the two kernels are separated by less than scheduler
	// jitter, so a single back-to-back pair regularly flips the sign.
	tPacked := time.Duration(1<<63 - 1)
	tLegacy := tPacked
	for r := 0; r < 3; r++ {
		if r%2 == 0 {
			tPacked = min(tPacked, e.perTree(func(s int32) { packed.Tree(s) }))
			tLegacy = min(tLegacy, e.perTree(func(s int32) { legacy.Tree(s) }))
		} else {
			tLegacy = min(tLegacy, e.perTree(func(s int32) { legacy.Tree(s) }))
			tPacked = min(tPacked, e.perTree(func(s int32) { packed.Tree(s) }))
		}
	}

	t := &Table{
		ID:      "bound",
		Title:   "achieved sweep bandwidth vs the Sec. VIII-B memory bounds",
		Headers: []string{"measurement", "time/tree [ms]", "modeled MB", "GB/s", "vs stream"},
	}
	row := func(name string, d time.Duration, bytes int64) {
		t.AddRow(name, ms(d), mb(bytes), f2(bandwidth.GBps(bytes, d)),
			f2(float64(d)/float64(seq))+"x")
	}
	row("sequential stream (lower bound)", seq, seqBytes)
	row("vertex-loop traversal bound", trav, seqBytes)
	row("PHAST sweep, packed stream", tPacked, packed.SweepBytes(1))
	row("PHAST sweep, legacy CSR kernels", tLegacy, legacy.SweepBytes(1))
	csrBytes := int64(downIn.NumVertices()+1)*4 + int64(downIn.NumArcs())*8 + int64(downIn.NumVertices())
	t.AddNote("packed stream: %d words = %s MB fused layout vs %s MB CSR+mark",
		packed.Packed().Words(), mb(packed.Packed().MemoryBytes()), mb(csrBytes))
	t.AddNote("ratios include the upward CH search; paper: PHAST within 2.6x of the stream (Sec. VIII-B)")
	if tPacked > tLegacy {
		t.AddNote("WARNING: packed sweep slower than legacy on this host — investigate before shipping")
	}
	return []*Table{t}, nil
}
