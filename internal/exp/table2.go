package exp

import (
	"fmt"
	"sync"
	"time"

	"phast/internal/core"
)

// Table2 reproduces Table II: average running time per tree when growing
// k trees per sweep (k ∈ {4,8,16}) on 1, 2 and 4 cores, with and without
// the 4-wide SSE-style lanes. One engine clone runs per core, each
// sweeping its own k sources (the per-core parallelization of Section V
// combined with the multi-tree sweep of Section IV-B).
func Table2(e *Env) ([]*Table, error) {
	base, err := e.Engine(core.SweepReordered, 1)
	if err != nil {
		return nil, err
	}
	cores := []int{1, 2, 4}
	t := &Table{
		ID:      "table2",
		Title:   "time per tree [ms]; parenthesized = with 4-wide lanes (SSE substitute)",
		Headers: []string{"sources/sweep"},
	}
	for _, c := range cores {
		t.Headers = append(t.Headers, fmt.Sprintf("%d core(s)", c))
	}
	for _, k := range []int{4, 8, 16} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, c := range cores {
			plain := e.multiTreePerTree(base, k, c, false)
			lanes := e.multiTreePerTree(base, k, c, true)
			row = append(row, fmt.Sprintf("%s (%s)", ms(plain), ms(lanes)))
		}
		t.AddRow(row...)
		e.logf("table2: k=%d done", k)
	}
	t.AddNote("host has %d hardware threads; core counts beyond that exercise the code path but cannot speed up", MaxProcs())
	t.AddNote("lanes mirror the SSE data layout; without real SIMD intrinsics Go executes them scalar, so the paper's extra 2.6x needs hardware SSE (see DESIGN.md)")
	t.AddNote("paper shape: larger k improves locality; 16 sources x 4 cores ~9x faster than 1x1")
	return []*Table{t}, nil
}

// multiTreePerTree runs `cores` engine clones concurrently, each
// performing one k-source sweep, and returns wall time / (cores*k).
func (e *Env) multiTreePerTree(base *core.Engine, k, cores int, lanes bool) time.Duration {
	engines := make([]*core.Engine, cores)
	batches := make([][]int32, cores)
	for i := range engines {
		engines[i] = base.Clone()
		batches[i] = e.randSources(k)
		engines[i].MultiTree(batches[i], lanes) // warm (allocates the k*n labels)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := range engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			engines[i].MultiTree(batches[i], lanes)
		}(i)
	}
	wg.Wait()
	return time.Since(start) / time.Duration(cores*k)
}
