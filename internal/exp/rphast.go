package exp

import (
	"time"

	"phast/internal/core"
	"phast/internal/rphast"
)

// RPHAST measures the one-to-many extension: selection sizes and
// per-source query times for growing target-set sizes, against full
// PHAST sweeps producing the same distances.
func RPHAST(e *Env) ([]*Table, error) {
	eng, err := e.Engine(core.SweepReordered, 1)
	if err != nil {
		return nil, err
	}
	eng.Tree(e.Sources[0])
	full := e.perTree(func(s int32) { eng.Tree(s) })

	t := &Table{
		ID:    "rphast",
		Title: "RPHAST one-to-many: restricted sweep vs full PHAST sweep",
		Headers: []string{"targets", "selection", "sel. arcs", "select [ms]",
			"query [ms]", "full PHAST [ms]", "speedup"},
	}
	for _, k := range []int{1, 16, 64, 256} {
		if k > e.G.NumVertices() {
			break
		}
		targets := e.randSources(k)
		start := time.Now()
		sel, err := rphast.NewSelection(eng, targets)
		if err != nil {
			return nil, err
		}
		selTime := time.Since(start)
		q := rphast.NewQuery(sel)
		q.Run(e.Sources[0]) // warm
		query := e.perTree(func(s int32) { q.Run(s) })
		t.AddRow(itoa(k), itoa(sel.Size()), itoa(sel.NumArcs()), ms(selTime),
			ms(query), ms(full), f1(float64(full)/float64(query))+"x")
	}
	t.AddNote("selection grows sublinearly with the target count; queries scale with the selection, not n")
	return []*Table{t}, nil
}
