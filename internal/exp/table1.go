package exp

import (
	"fmt"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/layout"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// Table1 reproduces Table I: time per tree for Dijkstra's algorithm
// (binary heap, Dial, smart queue), BFS, and PHAST (basic rank order,
// level-reordered, and reordered + all cores) under three graph layouts
// — random, input (as generated), and DFS.
func Table1(e *Env) ([]*Table, error) {
	n := e.G.NumVertices()
	layouts := []struct {
		name string
		perm []int32
	}{
		{"random", layout.Random(n, e.rng)},
		{"input", layout.Identity(n)},
		{"DFS", layout.DFS(e.G, int32(e.rng.Intn(n)))},
	}

	t := &Table{
		ID:      "table1",
		Title:   "time per tree [ms] on " + string(e.Cfg.Preset),
		Headers: []string{"algorithm", "details", "random", "input", "DFS"},
	}
	type rowSpec struct {
		algorithm, details string
		run                func(g *graph.Graph, h *ch.Hierarchy, perm []int32) (time.Duration, error)
	}
	dijkstra := func(kind pq.Kind) func(*graph.Graph, *ch.Hierarchy, []int32) (time.Duration, error) {
		return func(g *graph.Graph, _ *ch.Hierarchy, perm []int32) (time.Duration, error) {
			d := sssp.NewDijkstra(g, kind)
			d.Run(perm[e.Sources[0]]) // warm
			return e.perTree(func(s int32) { d.Run(perm[s]) }), nil
		}
	}
	phast := func(mode core.SweepMode, workers int, parallel bool) func(*graph.Graph, *ch.Hierarchy, []int32) (time.Duration, error) {
		return func(_ *graph.Graph, h *ch.Hierarchy, perm []int32) (time.Duration, error) {
			eng, err := core.NewEngine(h, core.Options{Mode: mode, Workers: workers})
			if err != nil {
				return 0, err
			}
			eng.Tree(perm[e.Sources[0]]) // warm
			if parallel {
				return e.perTree(func(s int32) { eng.TreeParallel(perm[s]) }), nil
			}
			return e.perTree(func(s int32) { eng.Tree(perm[s]) }), nil
		}
	}
	rows := []rowSpec{
		{"Dijkstra", "binary heap", dijkstra(pq.KindBinaryHeap)},
		{"Dijkstra", "Dial", dijkstra(pq.KindDial)},
		{"Dijkstra", "2-level buckets", dijkstra(pq.KindTwoLevel)},
		{"Dijkstra", "smart queue", dijkstra(pq.KindRadix)},
		{"BFS", "-", func(g *graph.Graph, _ *ch.Hierarchy, perm []int32) (time.Duration, error) {
			b := sssp.NewBFS(g)
			b.Run(perm[e.Sources[0]])
			return e.perTree(func(s int32) { b.Run(perm[s]) }), nil
		}},
		{"PHAST", "original ordering", phast(core.SweepRankOrder, 1, false)},
		{"PHAST", "reordered by level", phast(core.SweepReordered, 1, false)},
		{"PHAST", fmt.Sprintf("reordered + %d cores", MaxProcs()), phast(core.SweepReordered, MaxProcs(), true)},
	}

	cells := make([][]string, len(rows))
	for i := range cells {
		cells[i] = []string{rows[i].algorithm, rows[i].details}
	}
	for _, lay := range layouts {
		g, err := e.G.Permute(lay.perm)
		if err != nil {
			return nil, err
		}
		h, err := e.H.Permute(lay.perm)
		if err != nil {
			return nil, err
		}
		e.logf("table1: layout %s", lay.name)
		for i, r := range rows {
			d, err := r.run(g, h, lay.perm)
			if err != nil {
				return nil, err
			}
			cells[i] = append(cells[i], ms(d))
		}
	}
	for _, c := range cells {
		t.AddRow(c...)
	}
	t.AddNote("sources per cell: %d; host parallelism: %d", len(e.Sources), MaxProcs())
	t.AddNote("paper shape: layout matters for every algorithm; sequential reordered PHAST beats Dijkstra ~16x")
	return []*Table{t}, nil
}
