package exp

import (
	"fmt"
	"time"

	"phast/internal/ch"
)

// ChBuild is the §VIII-A-style preprocessing scaling table for the
// batch-parallel contractor: build wall time, shortcut count, batch
// shape, witness-search volume, and speedup as the worker count grows.
// The hierarchy is deterministic across worker counts, so the shortcut
// column doubles as the equivalence check — any drift is a bug, not a
// quality trade-off.
func ChBuild(e *Env) ([]*Table, error) {
	workerSets := []int{1, 2, 4, MaxProcs()}
	seen := map[int]bool{}
	t := &Table{
		ID:    "chbuild",
		Title: "parallel batched CH preprocessing on " + string(e.Cfg.Preset),
		Headers: []string{"workers", "build [ms]", "speedup", "shortcuts",
			"batches", "avg batch", "max batch", "witness searches", "lazy requeues"},
	}
	var baseTime time.Duration
	baseShortcuts := -1
	for _, w := range workerSets {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		var bs ch.BuildStats
		start := time.Now()
		h := ch.Build(e.G, ch.Options{Workers: w, Stats: &bs})
		dur := time.Since(start)
		if baseShortcuts == -1 {
			baseTime = dur
			baseShortcuts = h.NumShortcuts
		} else if h.NumShortcuts != baseShortcuts {
			return nil, fmt.Errorf("chbuild: shortcut count changed with workers=%d: %d vs %d",
				w, h.NumShortcuts, baseShortcuts)
		}
		t.AddRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.1f", float64(dur.Microseconds())/1000),
			fmt.Sprintf("%.2fx", float64(baseTime)/float64(dur)),
			fmt.Sprintf("%d", h.NumShortcuts),
			fmt.Sprintf("%d", bs.Batches),
			fmt.Sprintf("%.1f", bs.AvgBatch()),
			fmt.Sprintf("%d", bs.MaxBatch),
			fmt.Sprintf("%d", bs.WitnessSearches),
			fmt.Sprintf("%d", bs.LazyRequeues),
		)
		e.logf("chbuild workers=%d: %v, %d batches (avg %.1f), %d witness searches",
			w, dur.Round(time.Millisecond), bs.Batches, bs.AvgBatch(), bs.WitnessSearches)
	}
	t.AddNote("hierarchies are identical across worker counts (deterministic batch order); speedup is wall-time vs workers=1")
	t.AddNote("phase split at max workers: init/simulate/apply/reprio — see cmd/benchsmoke BENCH_4.json for the CI-gated numbers")
	return []*Table{t}, nil
}
