package exp

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/machine"
	"phast/internal/roadnet"
)

// Config selects the instance and measurement effort for a run of the
// experiment suite.
type Config struct {
	// Preset picks the synthetic instance (default europe-s, ~16k
	// vertices, so the full suite runs in about a minute).
	Preset roadnet.Preset
	// Metric picks travel times (default) or distances.
	Metric roadnet.Metric
	// Sources is the number of random tree roots per measurement cell
	// (default 5).
	Sources int
	// GPUTrees caps the number of simulated-GPU tree constructions per
	// cell — the SIMT simulator executes every thread, so this is the
	// expensive knob (default 2).
	GPUTrees int
	// Seed drives source selection (default 42).
	Seed int64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// SVGDir, when non-empty, receives SVG renderings of the figures
	// (fig1.svg from the level histogram, scaling.svg from the scaling
	// experiment) in addition to the text tables.
	SVGDir string
}

func (c Config) withDefaults() Config {
	if c.Preset == "" {
		c.Preset = roadnet.PresetEuropeS
	}
	if c.Sources == 0 {
		c.Sources = 5
	}
	if c.GPUTrees == 0 {
		c.GPUTrees = 2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Env is the shared state of one experiment suite run: the instance in
// its "input" layout, the CH hierarchy built on it, and the sampled
// sources. Layout permutations and engines are derived per experiment.
type Env struct {
	Cfg     Config
	Net     *roadnet.Network
	G       *graph.Graph // input layout (as generated)
	H       *ch.Hierarchy
	CHTime  time.Duration
	Sources []int32
	Ref     machine.Spec
	rng     *rand.Rand
}

// NewEnv generates the instance and runs CH preprocessing once.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	e := &Env{Cfg: cfg, Ref: machine.Reference(), rng: rand.New(rand.NewSource(cfg.Seed))}
	net, err := roadnet.GeneratePreset(cfg.Preset, cfg.Metric)
	if err != nil {
		return nil, err
	}
	e.Net = net
	e.G = net.Graph
	e.logf("instance %s (%s): n=%d m=%d", cfg.Preset, cfg.Metric, e.G.NumVertices(), e.G.NumArcs())
	start := time.Now()
	e.H = ch.Build(e.G, ch.Options{})
	e.CHTime = time.Since(start)
	e.logf("CH preprocessing: %v, %d shortcuts, %d levels",
		e.CHTime, e.H.NumShortcuts, e.H.MaxLevel+1)
	e.Sources = make([]int32, cfg.Sources)
	for i := range e.Sources {
		e.Sources[i] = int32(e.rng.Intn(e.G.NumVertices()))
	}
	return e, nil
}

func (e *Env) logf(format string, args ...any) {
	if e.Cfg.Log != nil {
		fmt.Fprintf(e.Cfg.Log, "  [exp] "+format+"\n", args...)
	}
}

// Engine builds a PHAST engine over the environment's hierarchy.
func (e *Env) Engine(mode core.SweepMode, workers int) (*core.Engine, error) {
	return core.NewEngine(e.H, core.Options{Mode: mode, Workers: workers})
}

// perTree times fn once per source and returns the mean duration.
func (e *Env) perTree(fn func(s int32)) time.Duration {
	start := time.Now()
	for _, s := range e.Sources {
		fn(s)
	}
	return time.Since(start) / time.Duration(len(e.Sources))
}

// randSources draws k sources deterministically from the env's stream.
func (e *Env) randSources(k int) []int32 {
	out := make([]int32, k)
	for i := range out {
		out[i] = int32(e.rng.Intn(e.G.NumVertices()))
	}
	return out
}

// Runner is one experiment driver.
type Runner struct {
	ID   string
	Desc string
	Run  func(*Env) ([]*Table, error)
}

// Suite lists all experiment drivers in paper order.
func Suite() []Runner {
	return []Runner{
		{"fig1", "vertices per CH level", Fig1},
		{"table1", "single-tree performance across layouts", Table1},
		{"table2", "multiple trees: k, cores, SSE lanes", Table2},
		{"table3", "GPHAST time and memory vs trees per sweep", Table3},
		{"table4", "machine catalogue", Table4},
		{"table5", "architecture impact on Dijkstra and PHAST", Table5},
		{"table6", "Dijkstra vs PHAST vs GPHAST, time and energy", Table6},
		{"table7", "other inputs: Europe/USA x time/distance", Table7},
		{"lowerbound", "memory-bandwidth lower bounds (Sec. VIII-B)", LowerBound},
		{"bound", "achieved sweep bandwidth vs the Sec. VIII-B memory bounds", Bound},
		{"apps", "applications: arc flags, diameter, reach, betweenness", Apps},
		{"ablation", "design-choice ablations: priority terms, hop limits, sweep order", Ablation},
		{"rphast", "RPHAST extension: one-to-many restricted sweeps", RPHAST},
		{"scaling", "speedup growth with instance size", Scaling},
		{"chbuild", "parallel batched CH preprocessing scaling (Sec. VIII-A)", ChBuild},
		{"sched", "persistent chunk scheduler vs fork-join vs sequential sweep", Sched},
		{"customize", "metric customization: triangle relaxation vs full rebuild", Customize},
		{"stream", "compressed vs packed sweep stream: bytes and time per tree", Stream},
		{"snapshot", "zero-copy snapshot cold start vs rebuild", Snapshot},
	}
}

// MaxProcs reports the parallelism available to measured multicore rows.
func MaxProcs() int { return runtime.GOMAXPROCS(0) }
