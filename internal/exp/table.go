// Package exp is the experiment harness: one driver per table and figure
// of the paper's evaluation (Section VIII), each reproducing the same
// rows and columns on synthetic instances. cmd/experiments runs the
// drivers and prints the tables; the root bench_test.go exercises the
// same code paths under `go test -bench`.
package exp

import (
	"fmt"
	"strings"
	"time"
)

// Table is one reproduced table or figure.
type Table struct {
	ID      string // "fig1", "table1", ...
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown, for the
// -markdown report of cmd/experiments.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", strings.ToUpper(t.ID), t.Title)
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	sb.WriteString("|")
	for _, h := range t.Headers {
		sb.WriteString(" " + esc(h) + " |")
	}
	sb.WriteString("\n|")
	for range t.Headers {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		sb.WriteString("|")
		for _, c := range row {
			sb.WriteString(" " + esc(c) + " |")
		}
		sb.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", esc(n))
	}
	sb.WriteString("\n")
	return sb.String()
}

// ms formats a duration as milliseconds with adaptive precision.
func ms(d time.Duration) string {
	v := float64(d) / float64(time.Millisecond)
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// dhm formats a duration as the paper's d:hh:mm column.
func dhm(d time.Duration) string {
	days := int(d.Hours()) / 24
	hours := int(d.Hours()) % 24
	mins := int(d.Minutes()) % 60
	return fmt.Sprintf("%d:%02d:%02d", days, hours, mins)
}

// totalTime formats an aggregate runtime: the paper's d:hh:mm when it is
// at least a day, a rounded duration otherwise (scaled instances finish
// their n trees in seconds, not days).
func totalTime(d time.Duration) string {
	if d >= 24*time.Hour {
		return dhm(d)
	}
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// mb formats a byte count in binary megabytes.
func mb(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }

// gb formats a byte count in binary gigabytes.
func gb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<30)) }

// f1/f2 format floats with one/two decimals.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
