package exp

import (
	"time"

	"phast/internal/core"
	"phast/internal/gphast"
	"phast/internal/layout"
	"phast/internal/machine"
	"phast/internal/pq"
	"phast/internal/simt"
	"phast/internal/sssp"
)

// Table6 reproduces Table VI: the best configuration of Dijkstra, PHAST
// and GPHAST per machine — memory footprint, time and energy per tree,
// and the projected cost of the all-pairs problem (n trees). CPU rows
// are anchored to local measurements and projected with the machine
// model; GPU rows use the SIMT cost model for both cards.
func Table6(e *Env) ([]*Table, error) {
	n := e.G.NumVertices()
	perm := layout.DFS(e.G, 0)
	g, err := e.G.Permute(perm)
	if err != nil {
		return nil, err
	}
	h, err := e.H.Permute(perm)
	if err != nil {
		return nil, err
	}

	// Anchors: best Dijkstra (Dial, one tree per core) and best PHAST (16
	// trees per sweep per core, lanes) on this host.
	d := sssp.NewDijkstra(g, pq.KindDial)
	d.Run(0)
	dijkstraSingle := e.perTree(func(s int32) { d.Run(perm[s]) })
	eng, err := core.NewEngine(h, core.Options{Workers: 1})
	if err != nil {
		return nil, err
	}
	eng.Tree(0)
	phast16 := e.multiTreePerTree(eng, 16, 1, true)

	// Memory footprints (bytes) during tree construction.
	dijkstraMem := g.MemoryBytes() + int64(n)*16 // labels, parents, queue state
	phastMemPerCore := func(cores int) int64 {
		return h.Up.MemoryBytes() + h.DownIn.MemoryBytes() + int64(cores)*int64(n)*16*4
	}

	t := &Table{
		ID:    "table6",
		Title: "Dijkstra vs PHAST vs GPHAST: best configuration per device",
		Headers: []string{"algorithm", "device", "memory [MB]", "time/tree [ms]",
			"energy/tree [J]", "n trees", "n trees [kJ]"},
	}
	addCPU := func(alg string, m machine.Spec, per time.Duration, mem int64) {
		total := time.Duration(int64(per) * int64(n))
		t.AddRow(alg, m.Name, mb(mem), ms(per),
			f2(machine.EnergyJoules(m.Watts, per)),
			totalTime(total), f2(machine.EnergyJoules(m.Watts, total)/1e3))
	}
	ref := e.Ref
	for _, m := range machine.Catalogue() {
		if m.Name != "M1-4" && m.Name != "M4-12" && m.Name != "M2-6" {
			continue
		}
		dS := machine.Scale(dijkstraSingle, ref, m, machine.LatencyBound)
		addCPU("Dijkstra", m, machine.ScaleParallel(dS, m, m.Cores, true, machine.LatencyBound), dijkstraMem)
	}
	for _, m := range machine.Catalogue() {
		if m.Name != "M1-4" && m.Name != "M4-12" && m.Name != "M2-6" {
			continue
		}
		pS := machine.Scale(phast16, ref, m, machine.BandwidthBound)
		addCPU("PHAST", m, machine.ScaleParallel(pS, m, m.Cores, true, machine.BandwidthBound),
			phastMemPerCore(m.Cores))
	}

	// GPU rows: modeled GTX 480 and GTX 580 at k=16. The paper measures
	// whole-system power with the card installed: 390W / 375W.
	gpuWatts := map[string]float64{"NVIDIA GTX 480": 390, "NVIDIA GTX 580": 375}
	ce, err := e.Engine(core.SweepReordered, 1)
	if err != nil {
		return nil, err
	}
	for _, spec := range []simt.DeviceSpec{simt.GTX480(), simt.GTX580()} {
		dev := simt.NewDevice(spec)
		ge, err := gphast.NewEngine(ce.Clone(), dev, 16)
		if err != nil {
			return nil, err
		}
		ge.MultiTree(e.randSources(16))
		per := ge.LastBatchModeledTime() / 16
		total := time.Duration(int64(per) * int64(n))
		watts := gpuWatts[spec.Name]
		t.AddRow("GPHAST", spec.Name, mb(ge.MemoryUsed()), ms(per),
			f2(machine.EnergyJoules(watts, per)),
			totalTime(total), f2(machine.EnergyJoules(watts, total)/1e3))
		e.logf("table6: %s modeled %s ms/tree", spec.Name, ms(per))
	}
	// Multi-card row (Section VIII-F: "with two cards, GPHAST would be
	// twice as fast... 5.5 hours"): two simulated GTX 580s sharing rounds.
	fleet, err := gphast.NewFleet(ce.Clone(), []simt.DeviceSpec{simt.GTX580(), simt.GTX580()}, 16)
	if err != nil {
		return nil, err
	}
	round := fleet.MultiTreeRound([][]int32{e.randSources(16), e.randSources(16)})
	perFleet := round / 32
	totalFleet := time.Duration(int64(perFleet) * int64(n))
	t.AddRow("GPHAST", "2x NVIDIA GTX 580",
		mb(fleet.Engine(0).MemoryUsed()+fleet.Engine(1).MemoryUsed()), ms(perFleet),
		f2(machine.EnergyJoules(2*gpuWatts["NVIDIA GTX 580"]-163, perFleet)),
		totalTime(totalFleet),
		f2(machine.EnergyJoules(2*gpuWatts["NVIDIA GTX 580"]-163, totalFleet)/1e3))
	t.AddNote("n = %d; CPU rows anchored to local measurements, projected by the machine model; GPU rows from the SIMT cost model", n)
	t.AddNote("the 2-card row shares rounds across two simulated GTX 580s (Section VIII-F's 'scales perfectly'); system power = 2x card minus one shared host")
	t.AddNote("paper shape: GPHAST fastest and ~3x more energy-efficient than the best CPU box; M4-12 nearly matches GTX speed at ~2x the energy")
	return []*Table{t}, nil
}
