package exp

import (
	"time"

	"phast/internal/arcflags"
	"phast/internal/centrality"
	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/diameter"
	"phast/internal/gphast"
	"phast/internal/partition"
	"phast/internal/pq"
	"phast/internal/simt"
	"phast/internal/sssp"
)

// Apps reproduces the application results of Section VII-B: arc-flags
// preprocessing with Dijkstra vs PHAST vs GPHAST trees (the paper's 10.5
// hours → <3 minutes headline), exact diameter, reach, and betweenness.
func Apps(e *Env) ([]*Table, error) {
	var tables []*Table

	// ---- Arc flags (Section VII-B.b) -------------------------------
	const cellsK = 16
	cells, err := partition.Cells(e.G, cellsK, e.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	pstats := partition.Summarize(e.G, cells, cellsK)
	rev, err := arcflags.NewReverseEngine(e.G, ch.Options{}, core.Options{})
	if err != nil {
		return nil, err
	}
	grev, err := gphast.NewEngine(rev.Clone(), simt.NewDevice(simt.GTX580()), 1)
	if err != nil {
		return nil, err
	}
	af := &Table{
		ID:    "apps-arcflags",
		Title: "arc flags preprocessing (one reverse tree per boundary vertex)",
		Headers: []string{"tree algorithm", "wall time", "modeled GPU time",
			"boundary vertices", "flag density"},
	}
	var flags *arcflags.ArcFlags
	run := func(name string, fn arcflags.ReverseTreeFunc, gpu *gphast.Engine) error {
		if gpu != nil {
			gpu.Device().ResetStats()
		}
		start := time.Now()
		f, err := arcflags.Compute(e.G, cells, cellsK, fn)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		gpuCol := "-"
		if gpu != nil {
			gpuCol = ms(gpu.Device().Stats().ModeledTime)
		}
		af.AddRow(name, wall.Round(time.Millisecond).String(), gpuCol,
			itoa(f.NumBoundary), f2(f.FlagDensity()))
		flags = f
		e.logf("apps: arc flags via %s: %v", name, wall)
		return nil
	}
	if err := run("Dijkstra", arcflags.DijkstraReverseTrees(e.G), nil); err != nil {
		return nil, err
	}
	if err := run("PHAST", arcflags.PHASTReverseTrees(rev), nil); err != nil {
		return nil, err
	}
	if err := run("GPHAST", arcflags.GPHASTReverseTrees(grev, e.G.NumVertices()), grev); err != nil {
		return nil, err
	}
	// Query pruning: random queries, scanned-vertex ratio vs Dijkstra.
	q := arcflags.NewQuery(flags)
	d := sssp.NewDijkstra(e.G, pq.KindBinaryHeap)
	var scannedFlags, scannedDij int
	for _, s := range e.Sources {
		t := e.Sources[(int(s)+1)%len(e.Sources)]
		q.Distance(s, t)
		scannedFlags += q.Scanned()
		d.RunTarget(s, t)
		scannedDij += d.Scanned()
	}
	af.AddNote("partition: %d cells, sizes %d..%d, %d boundary vertices",
		pstats.K, pstats.MinSize, pstats.MaxSize, pstats.BoundaryCount)
	af.AddNote("query pruning: flags scan %.1f%% of the vertices Dijkstra scans",
		100*float64(scannedFlags)/float64(scannedDij))
	af.AddNote("paper: flags for ~20k boundary vertices took 10.5h with Dijkstra, <3min with GPHAST")
	tables = append(tables, af)

	// ---- Diameter (Section VII-B.a) ---------------------------------
	eng, err := e.Engine(core.SweepReordered, 1)
	if err != nil {
		return nil, err
	}
	nSample := 4 * len(e.Sources)
	sample := e.randSources(nSample)
	dm := &Table{
		ID:      "apps-diameter",
		Title:   "diameter lower bound over sampled sources",
		Headers: []string{"pipeline", "sources", "diameter", "time/tree"},
	}
	start := time.Now()
	resCPU := diameter.CPU(eng, sample)
	cpuPer := time.Since(start) / time.Duration(nSample)
	dm.AddRow("PHAST (CPU)", itoa(nSample), itoa(int(resCPU.Diameter)), ms(cpuPer))
	geDiam, err := gphast.NewEngine(eng.Clone(), simt.NewDevice(simt.GTX580()), 8)
	if err != nil {
		return nil, err
	}
	gpuSample := sample
	if len(gpuSample) > e.Cfg.GPUTrees*8 {
		gpuSample = gpuSample[:e.Cfg.GPUTrees*8]
	}
	geDiam.Device().ResetStats()
	resGPU, err := diameter.GPU(geDiam, gpuSample)
	if err != nil {
		return nil, err
	}
	gpuPer := geDiam.Device().Stats().ModeledTime / time.Duration(len(gpuSample))
	dm.AddRow("GPHAST (modeled GPU)", itoa(len(gpuSample)), itoa(int(resGPU.Diameter)), ms(gpuPer))
	tables = append(tables, dm)

	// ---- Reach and betweenness (Section VII-B.c) --------------------
	ct := &Table{
		ID:      "apps-centrality",
		Title:   "centrality over sampled sources",
		Headers: []string{"measure", "algorithm", "sources", "time/source"},
	}
	start = time.Now()
	centrality.Reaches(e.G, eng, e.Sources)
	ct.AddRow("reach", "PHAST trees", itoa(len(e.Sources)),
		ms(time.Since(start)/time.Duration(len(e.Sources))))
	start = time.Now()
	centrality.BetweennessDijkstra(e.G, e.Sources)
	ct.AddRow("betweenness", "Dijkstra (Brandes)", itoa(len(e.Sources)),
		ms(time.Since(start)/time.Duration(len(e.Sources))))
	start = time.Now()
	centrality.BetweennessPHAST(e.G, eng, e.Sources)
	ct.AddRow("betweenness", "PHAST trees", itoa(len(e.Sources)),
		ms(time.Since(start)/time.Duration(len(e.Sources))))
	tables = append(tables, ct)
	return tables, nil
}
