// Package dimacs reads and writes the 9th DIMACS Implementation
// Challenge shortest-path formats — the distribution format of the
// paper's benchmark instances — so that real road networks (Europe/USA)
// can be plugged into every experiment in place of the synthetic
// generator.
//
// Graph files (.gr):
//
//	c <comment>
//	p sp <n> <m>
//	a <tail> <head> <weight>     (1-based vertex IDs)
//
// Coordinate files (.co):
//
//	c <comment>
//	p aux sp co <n>
//	v <id> <x> <y>
package dimacs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"phast/internal/graph"
)

// ReadGraph parses a .gr stream.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *graph.Builder
	declared, added := -1, 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			f := strings.Fields(text)
			if len(f) != 4 || f[1] != "sp" {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", line, text)
			}
			n, err1 := strconv.Atoi(f[2])
			m, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || n < 0 || m < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad sizes in %q", line, text)
			}
			if b != nil {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", line)
			}
			b = graph.NewBuilder(n)
			declared = m
		case 'a':
			if b == nil {
				return nil, fmt.Errorf("dimacs: line %d: arc before problem line", line)
			}
			f := strings.Fields(text)
			if len(f) != 4 {
				return nil, fmt.Errorf("dimacs: line %d: malformed arc line %q", line, text)
			}
			u, err1 := strconv.ParseInt(f[1], 10, 32)
			v, err2 := strconv.ParseInt(f[2], 10, 32)
			w, err3 := strconv.ParseUint(f[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad arc %q", line, text)
			}
			if err := b.AddArc(int32(u-1), int32(v-1), uint32(w)); err != nil {
				return nil, fmt.Errorf("dimacs: line %d: %w", line, err)
			}
			added++
		default:
			return nil, fmt.Errorf("dimacs: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	if added != declared {
		return nil, fmt.Errorf("dimacs: problem line declared %d arcs, file has %d", declared, added)
	}
	return b.Build(), nil
}

// WriteGraph serializes g as a .gr stream with the given comment lines.
func WriteGraph(w io.Writer, g *graph.Graph, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.NumVertices(), g.NumArcs()); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, a := range g.Arcs(v) {
			if _, err := fmt.Fprintf(bw, "a %d %d %d\n", v+1, a.Head+1, a.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCoords parses a .co stream into integer coordinate pairs indexed by
// 0-based vertex ID.
func ReadCoords(r io.Reader) ([][2]int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var coords [][2]int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' {
			continue
		}
		switch text[0] {
		case 'p':
			f := strings.Fields(text)
			if len(f) != 5 || f[1] != "aux" || f[2] != "sp" || f[3] != "co" {
				return nil, fmt.Errorf("dimacs: line %d: malformed coord problem line %q", line, text)
			}
			n, err := strconv.Atoi(f[4])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad size", line)
			}
			coords = make([][2]int64, n)
		case 'v':
			if coords == nil {
				return nil, fmt.Errorf("dimacs: line %d: vertex before problem line", line)
			}
			f := strings.Fields(text)
			if len(f) != 4 {
				return nil, fmt.Errorf("dimacs: line %d: malformed vertex line %q", line, text)
			}
			id, err1 := strconv.ParseInt(f[1], 10, 32)
			x, err2 := strconv.ParseInt(f[2], 10, 64)
			y, err3 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || id < 1 || int(id) > len(coords) {
				return nil, fmt.Errorf("dimacs: line %d: bad vertex %q", line, text)
			}
			coords[id-1] = [2]int64{x, y}
		default:
			return nil, fmt.Errorf("dimacs: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if coords == nil {
		return nil, fmt.Errorf("dimacs: missing coord problem line")
	}
	return coords, nil
}

// WriteCoords serializes coordinates as a .co stream.
func WriteCoords(w io.Writer, coords [][2]int64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p aux sp co %d\n", len(coords)); err != nil {
		return err
	}
	for i, c := range coords {
		if _, err := fmt.Fprintf(bw, "v %d %d %d\n", i+1, c[0], c[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
