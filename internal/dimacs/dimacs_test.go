package dimacs

import (
	"bytes"
	"strings"
	"testing"

	"phast/internal/graph"
	"phast/internal/roadnet"
)

func TestGraphRoundTrip(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 20, Height: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, net.Graph, "synthetic test instance"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Graph.Equal(back) {
		t.Fatal("round trip changed the graph")
	}
}

func TestReadGraphSmall(t *testing.T) {
	in := `c tiny
p sp 3 2
a 1 2 10
a 2 3 20
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumArcs() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	if w, ok := g.FindArc(0, 1); !ok || w != 10 {
		t.Fatalf("arc (0,1): %d %v", w, ok)
	}
	if w, ok := g.FindArc(1, 2); !ok || w != 20 {
		t.Fatalf("arc (1,2): %d %v", w, ok)
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"missing problem":     "a 1 2 3\n",
		"malformed problem":   "p sp 3\n",
		"bad arity":           "p sp 2 1\na 1 2\n",
		"arc count mismatch":  "p sp 2 5\na 1 2 3\n",
		"vertex out of range": "p sp 2 1\na 1 9 3\n",
		"duplicate problem":   "p sp 2 0\np sp 2 0\n",
		"unknown record":      "p sp 1 0\nz 1\n",
		"empty file":          "",
		"negative weight":     "p sp 2 1\na 1 2 -5\n",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadGraphSkipsBlanksAndComments(t *testing.T) {
	in := "\nc x\n\np sp 1 0\n\nc y\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1 {
		t.Fatal("blank/comment handling broken")
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	coords := [][2]int64{{-100, 250}, {0, 0}, {123456789, -987654321}}
	var buf bytes.Buffer
	if err := WriteCoords(&buf, coords); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCoords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(coords) {
		t.Fatalf("len=%d, want %d", len(back), len(coords))
	}
	for i := range coords {
		if back[i] != coords[i] {
			t.Fatalf("coords[%d]=%v, want %v", i, back[i], coords[i])
		}
	}
}

func TestReadCoordsErrors(t *testing.T) {
	cases := []string{
		"v 1 2 3\n",
		"p aux sp co 1\nv 2 0 0\n",
		"p aux sp co x\n",
		"p aux sp co 1\nv 1 2\n",
		"",
		"p aux sp co 1\nq 1 2 3\n",
	}
	for _, in := range cases {
		if _, err := ReadCoords(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestWriteGraphEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGraph(&buf, graph.NewBuilder(0).Build()); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}
