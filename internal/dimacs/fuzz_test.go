package dimacs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph drives the .gr parser with arbitrary input: it must
// never panic, and anything it accepts must be a structurally valid
// graph that round-trips losslessly.
func FuzzReadGraph(f *testing.F) {
	f.Add("p sp 3 2\na 1 2 10\na 2 3 20\n")
	f.Add("c comment\np sp 1 0\n")
	f.Add("p sp 2 1\na 1 2 4294967295\n")
	f.Add("a 1 2 3\n")
	f.Add("p sp -1 0\n")
	f.Add("p sp 2 1\na 0 1 1\n")
	f.Add(strings.Repeat("c x\n", 50) + "p sp 2 1\na 2 1 7\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadGraph(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted graphs must round-trip exactly.
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !g.Equal(back) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadCoords is the same contract for the .co parser.
func FuzzReadCoords(f *testing.F) {
	f.Add("p aux sp co 2\nv 1 3 4\nv 2 -5 6\n")
	f.Add("p aux sp co 0\n")
	f.Add("v 1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		coords, err := ReadCoords(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCoords(&buf, coords); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCoords(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back) != len(coords) {
			t.Fatal("round trip changed length")
		}
		for i := range coords {
			if back[i] != coords[i] {
				t.Fatal("round trip changed coordinates")
			}
		}
	})
}
