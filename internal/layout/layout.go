// Package layout computes vertex orderings (graph layouts).
//
// The paper evaluates three input layouts in Section VIII-B — random,
// original ("input"), and DFS — and shows that both Dijkstra's algorithm
// and PHAST are sensitive to them. PHAST additionally reorders vertices
// by descending CH level (Section IV-A), keeping the relative DFS order
// within each level; that ordering lives here too so every consumer
// agrees on its tie-breaking rules.
//
// All functions return a permutation perm with perm[old] = new, suitable
// for Graph.Permute and graph.ApplyPermutation.
package layout

import (
	"math/rand"

	"phast/internal/graph"
)

// Identity returns the input layout: perm[v] = v.
func Identity(n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// Random returns a uniformly random permutation drawn from rng, the
// "random" layout of Table I (worst locality).
func Random(n int, rng *rand.Rand) []int32 {
	perm := Identity(n)
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// DFS returns the depth-first layout of Section II-A: vertices are
// numbered in the order a depth-first search from start discovers them,
// treating arcs as undirected; unreached vertices are numbered by
// restarting the search at the smallest unvisited ID. Neighboring
// vertices tend to receive nearby IDs, which reduces cache misses for
// every algorithm in the paper.
func DFS(g *graph.Graph, start int32) []int32 {
	n := g.NumVertices()
	rev := g.Transpose()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = -1
	}
	next := int32(0)
	stack := make([]int32, 0, 1024)
	visit := func(root int32) {
		if perm[root] >= 0 {
			return
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if perm[v] >= 0 {
				continue
			}
			perm[v] = next
			next++
			// Push neighbors in reverse so that the first out-arc is
			// explored first, giving a conventional DFS discovery order.
			in := rev.Arcs(v)
			for i := len(in) - 1; i >= 0; i-- {
				if perm[in[i].Head] < 0 {
					stack = append(stack, in[i].Head)
				}
			}
			out := g.Arcs(v)
			for i := len(out) - 1; i >= 0; i-- {
				if perm[out[i].Head] < 0 {
					stack = append(stack, out[i].Head)
				}
			}
		}
	}
	if n > 0 {
		visit(start % int32(n))
	}
	for v := int32(0); v < int32(n); v++ {
		visit(v)
	}
	return perm
}

// ByLevelDescending returns the PHAST reordering of Section IV-A:
// vertices at higher CH levels receive lower IDs, and within a level the
// current relative order (typically DFS) is kept. After applying it, a
// linear sweep in increasing ID order processes levels top-down.
func ByLevelDescending(levels []int32) []int32 {
	n := len(levels)
	maxL := int32(0)
	for _, l := range levels {
		if l > maxL {
			maxL = l
		}
	}
	// Counting sort by descending level, stable in vertex ID.
	count := make([]int32, maxL+2)
	for _, l := range levels {
		count[maxL-l+1]++
	}
	for i := 1; i < len(count); i++ {
		count[i] += count[i-1]
	}
	perm := make([]int32, n)
	for v := 0; v < n; v++ {
		bucket := maxL - levels[v]
		perm[v] = count[bucket]
		count[bucket]++
	}
	return perm
}

// ChunkRanges partitions the sweep positions [0,n) into fixed-size
// chunks of grain positions (the last one possibly shorter) and returns
// their half-open ranges. This is the unit of work the persistent sweep
// scheduler self-schedules, cutting across level boundaries: unlike
// LevelRanges it needs no level data, because chunk starts are ordered
// by the precomputed dependency bounds instead of a per-level barrier.
func ChunkRanges(n, grain int) [][2]int32 {
	if n <= 0 || grain <= 0 {
		return nil
	}
	ranges := make([][2]int32, 0, (n+grain-1)/grain)
	for from := 0; from < n; from += grain {
		to := from + grain
		if to > n {
			to = n
		}
		ranges = append(ranges, [2]int32{int32(from), int32(to)})
	}
	return ranges
}

// LevelRanges returns, for levels already relabeled by ByLevelDescending
// (i.e. levelOf[newID]), the half-open vertex ID range [from,to) of each
// level in sweep order (descending level). It is the index the parallel
// sweep and the GPU kernels launch from.
func LevelRanges(levelsInSweepOrder []int32) [][2]int32 {
	var ranges [][2]int32
	n := int32(len(levelsInSweepOrder))
	for from := int32(0); from < n; {
		l := levelsInSweepOrder[from]
		to := from + 1
		for to < n && levelsInSweepOrder[to] == l {
			to++
		}
		ranges = append(ranges, [2]int32{from, to})
		from = to
	}
	return ranges
}
