package layout

import (
	"math/rand"
	"testing"

	"phast/internal/graph"
)

func TestIdentity(t *testing.T) {
	p := Identity(4)
	for i, v := range p {
		if v != int32(i) {
			t.Fatalf("Identity=%v", p)
		}
	}
}

func TestRandomIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 17, 100} {
		if p := Random(n, rng); !graph.IsPermutation(p) {
			t.Fatalf("Random(%d) not a permutation: %v", n, p)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(50, rand.New(rand.NewSource(9)))
	b := Random(50, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different layouts")
		}
	}
}

func TestDFSIsPermutationAndCoversIslands(t *testing.T) {
	g, err := graph.FromArcs(5, [][3]int64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := DFS(g, 0)
	if !graph.IsPermutation(p) {
		t.Fatalf("DFS not a permutation: %v", p)
	}
	if p[0] != 0 {
		t.Fatalf("start vertex got ID %d, want 0", p[0])
	}
}

func TestDFSDiscoveryOrderOnPath(t *testing.T) {
	// 0 -> 1 -> 2 -> 3: discovery order equals vertex order.
	g, err := graph.FromArcs(4, [][3]int64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := DFS(g, 0)
	for v, id := range p {
		if id != int32(v) {
			t.Fatalf("DFS on path = %v, want identity", p)
		}
	}
}

func TestDFSFollowsArcsUndirected(t *testing.T) {
	// Only a backward arc 1->0; DFS from 0 must still discover 1 adjacent.
	g, err := graph.FromArcs(2, [][3]int64{{1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := DFS(g, 0)
	if p[0] != 0 || p[1] != 1 {
		t.Fatalf("DFS=%v, want [0 1]", p)
	}
}

func TestByLevelDescending(t *testing.T) {
	levels := []int32{0, 2, 1, 2, 0}
	p := ByLevelDescending(levels)
	if !graph.IsPermutation(p) {
		t.Fatalf("not a permutation: %v", p)
	}
	// Level-2 vertices (1,3) must take IDs 0,1 in stable order; level-1
	// vertex 2 takes 2; level-0 vertices (0,4) take 3,4.
	want := []int32{3, 0, 2, 1, 4}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("perm=%v, want %v", p, want)
		}
	}
}

func TestByLevelDescendingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		levels := make([]int32, n)
		for i := range levels {
			levels[i] = int32(rng.Intn(10))
		}
		p := ByLevelDescending(levels)
		if !graph.IsPermutation(p) {
			t.Fatal("not a permutation")
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				switch {
				case levels[u] > levels[v]:
					if p[u] >= p[v] {
						t.Fatalf("higher level vertex %d (L%d) after %d (L%d)", u, levels[u], v, levels[v])
					}
				case levels[u] == levels[v]:
					if p[u] >= p[v] {
						t.Fatalf("stability violated within level %d: %d vs %d", levels[u], u, v)
					}
				}
			}
		}
		if n > 60 {
			break // quadratic check only for small instances
		}
	}
}

func TestLevelRanges(t *testing.T) {
	// levels already in sweep order (descending)
	ls := []int32{5, 5, 3, 3, 3, 0}
	r := LevelRanges(ls)
	want := [][2]int32{{0, 2}, {2, 5}, {5, 6}}
	if len(r) != len(want) {
		t.Fatalf("ranges=%v, want %v", r, want)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranges=%v, want %v", r, want)
		}
	}
	if LevelRanges(nil) != nil {
		t.Fatal("empty input should give nil ranges")
	}
}
