package bandwidth

import (
	"testing"

	"phast/internal/ch"
	"phast/internal/roadnet"
)

func TestBoundsRunAndOrder(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 48, Height: 48, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	dist := make([]uint32, net.Graph.NumVertices())
	seq := Sequential(h.DownIn, dist, 3)
	trav := Traversal(h.DownIn, dist, 3)
	if seq <= 0 || trav <= 0 {
		t.Fatalf("non-positive measurements: %v %v", seq, trav)
	}
	// The vertex-loop traversal can never beat the straight stream by
	// more than noise; allow 2x margin for timer jitter on tiny runs.
	if trav*2 < seq {
		t.Fatalf("traversal (%v) implausibly faster than sequential (%v)", trav, seq)
	}
	if b := BytesTouched(h.DownIn, dist); b <= 0 {
		t.Fatalf("BytesTouched=%d", b)
	}
}

func TestTraversalComputesArcSums(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 10, Height: 10, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	rev := g.Transpose()
	dist := make([]uint32, g.NumVertices())
	Traversal(rev, dist, 1)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		var want uint32
		for _, a := range rev.Arcs(v) {
			want += a.Weight
		}
		if dist[v] != want {
			t.Fatalf("dist[%d]=%d, want arc sum %d", v, dist[v], want)
		}
	}
}

func TestSequentialParallelRuns(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 32, Height: 32, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]uint32, net.Graph.NumVertices())
	if d := SequentialParallel(net.Graph, dist, 2, 4); d <= 0 {
		t.Fatalf("parallel bound %v", d)
	}
	if d := SequentialParallel(net.Graph, dist, 1, 0); d <= 0 {
		t.Fatal("workers<1 not defaulted")
	}
}
