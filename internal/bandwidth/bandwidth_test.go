package bandwidth

import (
	"testing"

	"phast/internal/ch"
	"phast/internal/roadnet"
)

func TestBoundsRunAndOrder(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 48, Height: 48, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	dist := make([]uint32, net.Graph.NumVertices())
	seq := Sequential(h.DownIn, dist, 3)
	trav := Traversal(h.DownIn, dist, 3)
	if seq <= 0 || trav <= 0 {
		t.Fatalf("non-positive measurements: %v %v", seq, trav)
	}
	// The vertex-loop traversal can never beat the straight stream by
	// more than noise; allow 2x margin for timer jitter on tiny runs.
	if trav*2 < seq {
		t.Fatalf("traversal (%v) implausibly faster than sequential (%v)", trav, seq)
	}
	if b := BytesTouched(h.DownIn, dist); b <= 0 {
		t.Fatalf("BytesTouched=%d", b)
	}
}

func TestTraversalComputesArcSums(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 10, Height: 10, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	rev := g.Transpose()
	dist := make([]uint32, g.NumVertices())
	Traversal(rev, dist, 1)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		var want uint32
		for _, a := range rev.Arcs(v) {
			want += a.Weight
		}
		if dist[v] != want {
			t.Fatalf("dist[%d]=%d, want arc sum %d", v, dist[v], want)
		}
	}
}

func TestSequentialParallelRuns(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 32, Height: 32, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]uint32, net.Graph.NumVertices())
	if d := SequentialParallel(net.Graph, dist, 2, 4); d <= 0 {
		t.Fatalf("parallel bound %v", d)
	}
	if d := SequentialParallel(net.Graph, dist, 1, 0); d <= 0 {
		t.Fatal("workers<1 not defaulted")
	}
}

// TestSweepTrafficLabelRereads pins the AoS-vs-lane-major label model:
// the vertex-major multi kernels pay one extra label read per arc per
// lane, and the flag is inert for single-tree sweeps.
func TestSweepTrafficLabelRereads(t *testing.T) {
	base := SweepTraffic{N: 100, M: 400, K: 8, StreamBytes: 1000}
	aos := base
	aos.LabelRereads = true
	if got, want := aos.Bytes()-base.Bytes(), int64(8*400*4); got != want {
		t.Fatalf("k=8 re-read term = %d, want %d", got, want)
	}
	single := SweepTraffic{N: 100, M: 400, K: 1, StreamBytes: 1000}
	aos1 := single
	aos1.LabelRereads = true
	if aos1.Bytes() != single.Bytes() {
		t.Fatalf("LabelRereads changed a single-tree sweep: %d vs %d", aos1.Bytes(), single.Bytes())
	}
}
