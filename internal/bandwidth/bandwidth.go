// Package bandwidth implements the lower-bound experiments of Section
// VIII-B: how fast can the memory system possibly deliver the data PHAST
// touches? The paper measures (a) a pure sequential pass over the first,
// arclist and distance arrays (65.6ms on the benchmark machine — PHAST
// is only 2.6x slower) and (b) the same traversal shaped like PHAST's
// vertex loop, storing the sum of incoming arc lengths (153ms, only 19ms
// under PHAST), showing the algorithm runs close to the memory bound.
package bandwidth

import (
	"sync"
	"time"

	"phast/internal/graph"
)

// sink defeats dead-code elimination of the measurement loops.
var sink uint64

// Sequential measures one pass that sequentially reads the first array,
// the arc list and the distance array, then writes every distance entry
// — the paper's streaming lower bound. It returns the time per
// repetition.
func Sequential(g *graph.Graph, dist []uint32, reps int) time.Duration {
	first := g.FirstOut()
	arcs := g.ArcList()
	start := time.Now()
	var acc uint64
	for r := 0; r < reps; r++ {
		for _, f := range first {
			acc += uint64(f)
		}
		for i := range arcs {
			acc += uint64(arcs[i].Head) + uint64(arcs[i].Weight)
		}
		for _, d := range dist {
			acc += uint64(d)
		}
		for i := range dist {
			dist[i] = uint32(acc)
		}
	}
	sink += acc
	return time.Since(start) / time.Duration(reps)
}

// Traversal measures the PHAST-shaped loop: iterate vertices, and for
// each vertex loop over its (few) incident arcs, storing at d(v) the sum
// of the lengths of the arcs into v. Identical data in identical order
// to Sequential, but with the short, varying inner loop that is harder
// on the branch predictor — the gap between the two is loop overhead,
// not cache misses.
func Traversal(downIn *graph.Graph, dist []uint32, reps int) time.Duration {
	first := downIn.FirstOut()
	arcs := downIn.ArcList()
	n := int32(downIn.NumVertices())
	start := time.Now()
	for r := 0; r < reps; r++ {
		for v := int32(0); v < n; v++ {
			var sum uint32
			for i := first[v]; i < first[v+1]; i++ {
				sum += arcs[i].Weight
			}
			dist[v] = sum
		}
	}
	sink += uint64(dist[0])
	return time.Since(start) / time.Duration(reps)
}

// SequentialParallel is Sequential with the arrays partitioned across
// workers — the four-core lower bound of Section VIII-C (12.8ms/tree at
// k=16, more than two thirds of PHAST's 18.8ms: bandwidth is the wall).
func SequentialParallel(g *graph.Graph, dist []uint32, reps, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	first := g.FirstOut()
	arcs := g.ArcList()
	start := time.Now()
	for r := 0; r < reps; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var acc uint64
				alo, ahi := len(arcs)*w/workers, len(arcs)*(w+1)/workers
				for i := alo; i < ahi; i++ {
					acc += uint64(arcs[i].Head) + uint64(arcs[i].Weight)
				}
				flo, fhi := len(first)*w/workers, len(first)*(w+1)/workers
				for _, f := range first[flo:fhi] {
					acc += uint64(f)
				}
				dlo, dhi := len(dist)*w/workers, len(dist)*(w+1)/workers
				for i := dlo; i < dhi; i++ {
					acc += uint64(dist[i])
					dist[i] = uint32(acc)
				}
			}(w)
		}
		wg.Wait()
	}
	return time.Since(start) / time.Duration(reps)
}

// BytesTouched returns the bytes one Sequential repetition streams,
// letting callers convert the measurement into GB/s.
func BytesTouched(g *graph.Graph, dist []uint32) int64 {
	return int64(len(g.FirstOut()))*4 + int64(g.NumArcs())*8 + int64(len(dist))*8
}

// SweepTraffic models the memory traffic of one PHAST sweep (phase 2),
// the denominator of the achieved-GB/s numbers reported next to the
// Sequential/Traversal lower bounds. The model counts the data streams
// the kernels actually walk: the graph layout once per sweep, plus k
// tail-label reads per arc and k label writes per vertex. It
// deliberately ignores cache reuse of the tail labels, so the reported
// GB/s is an upper bound on true DRAM traffic and a stable
// regression-checkable figure of merit.
type SweepTraffic struct {
	// N and M are the downward graph's vertex and arc counts.
	N, M int
	// K is the number of trees grown per sweep (0 is treated as 1).
	K int
	// StreamBytes, when positive, selects a byte-granular stream layout
	// (graph.PackedZ.ByteLen): the whole graph walk is exactly
	// StreamBytes bytes — compressed streams are byte-, not word-,
	// granular. Takes precedence over PackedWords.
	StreamBytes int64
	// PackedWords, when positive, selects the fused single-stream layout
	// (graph.Packed.Words): the whole graph walk is PackedWords uint32s.
	PackedWords int
	// Ordered marks the legacy kernels' extra order-array stream (level
	// or rank order with original IDs). Ignored when PackedWords > 0.
	Ordered bool
	// Parents adds the parent-pointer write stream (TreeWithParents).
	Parents bool
	// SchedChunks, when positive, adds the persistent scheduler's
	// chunk-grain control traffic: per chunk one dependency-bound read,
	// one completion-flag write, and the cursor/frontier atomics —
	// modeled at 16 bytes per chunk. At the default 1024-position grain
	// this is under 0.01% of the label streams; it is modeled so the
	// GB/s figures stay honest about what the scheduler itself touches.
	SchedChunks int
	// LabelRereads marks the vertex-major (AoS) multi-tree kernels,
	// whose relax target lives in memory rather than a register: every
	// arc re-reads (and conditionally rewrites) the scanned vertex's own
	// k labels, adding k·4m bytes of label traffic on top of the k tail
	// reads per arc. The lane-major decode-once kernels accumulate each
	// lane's minimum in a register and pay exactly one read-modify-write
	// per (lane, vertex), which the base k·(4m+4n) term already covers —
	// as do all single-tree kernels, so the flag is inert at K <= 1.
	LabelRereads bool
}

// Bytes returns the modeled bytes one sweep touches.
func (t SweepTraffic) Bytes() int64 {
	k := int64(t.K)
	if k < 1 {
		k = 1
	}
	var b int64
	switch {
	case t.StreamBytes > 0:
		b = t.StreamBytes
	case t.PackedWords > 0:
		b = int64(t.PackedWords) * 4
	default:
		// first (4(n+1)) + AoS arcs (8m) + mark bytes (n).
		b = int64(t.N+1)*4 + int64(t.M)*8 + int64(t.N)
		if t.Ordered {
			b += int64(t.N) * 4
		}
	}
	b += k * (int64(t.M)*4 + int64(t.N)*4) // tail-label reads + label writes
	if t.LabelRereads && k > 1 {
		b += k * int64(t.M) * 4 // AoS relax-target re-read per arc per lane
	}
	if t.Parents {
		b += int64(t.N) * 4
	}
	if t.SchedChunks > 0 {
		b += int64(t.SchedChunks) * 16
	}
	return b
}

// GBps converts bytes moved in d into gigabytes per second (10^9 B/s,
// the unit the paper's Section VIII-B discussion uses).
func GBps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e9
}
