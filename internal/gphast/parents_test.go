package gphast

import (
	"testing"

	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

func TestTreeWithParentsValidTree(t *testing.T) {
	g, e := testSetup(t, 2)
	if err := e.EnableParents(); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableParents(); err != nil { // idempotent
		t.Fatal(err)
	}
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for _, s := range []int32{0, 57, 0} {
		e.TreeWithParents(s)
		d.Run(s)
		n := int32(g.NumVertices())
		for v := int32(0); v < n; v++ {
			if got, want := e.Dist(0, v), d.Dist(v); got != want {
				t.Fatalf("src %d: dist(%d)=%d, want %d", s, v, got, want)
			}
		}
		// Parents: source and unreached have none; every other vertex's
		// parent is strictly closer and the label difference equals an
		// existing G+ arc weight (checked indirectly via distances: the
		// parent's label must not exceed the child's).
		if e.ParentOf(s) != -1 {
			t.Fatalf("source %d has parent %d", s, e.ParentOf(s))
		}
		for v := int32(0); v < n; v++ {
			if v == s {
				continue
			}
			dv := e.Dist(0, v)
			p := e.ParentOf(v)
			if dv == graph.Inf {
				if p != -1 {
					t.Fatalf("unreached %d has parent %d", v, p)
				}
				continue
			}
			if p < 0 {
				t.Fatalf("reached vertex %d has no parent", v)
			}
			if dp := e.Dist(0, p); dp >= dv {
				t.Fatalf("parent %d of %d not closer: %d vs %d", p, v, dp, dv)
			}
		}
	}
}

func TestTreeWithParentsChainLengths(t *testing.T) {
	// Climbing parent chains must reach the source with monotonically
	// decreasing labels — no cycles, no dead ends.
	g, e := testSetup(t, 1)
	if err := e.EnableParents(); err != nil {
		t.Fatal(err)
	}
	s := int32(11)
	e.TreeWithParents(s)
	n := int32(g.NumVertices())
	for v := int32(0); v < n; v += 13 {
		if e.Dist(0, v) == graph.Inf {
			continue
		}
		steps := 0
		for x := v; x != s; {
			p := e.ParentOf(x)
			if p < 0 {
				t.Fatalf("chain from %d hit a dead end at %d", v, x)
			}
			x = p
			if steps++; steps > g.NumVertices() {
				t.Fatalf("parent cycle reachable from %d", v)
			}
		}
	}
}

func TestTreeWithParentsRequiresEnable(t *testing.T) {
	_, e := testSetup(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("TreeWithParents without EnableParents did not panic")
		}
	}()
	e.TreeWithParents(0)
}

func TestCopyParents(t *testing.T) {
	g, e := testSetup(t, 1)
	if err := e.EnableParents(); err != nil {
		t.Fatal(err)
	}
	e.TreeWithParents(4)
	buf := make([]uint32, g.NumVertices())
	e.CopyParents(buf)
	if buf[e.EngineID(4)] != NoParent {
		t.Fatal("source parent not NoParent in raw copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short buffer accepted")
		}
	}()
	e.CopyParents(buf[:1])
}

func TestParentsInterleavedWithMultiTree(t *testing.T) {
	// Alternating k=2 batches and parent trees must not leak state.
	g, e := testSetup(t, 2)
	if err := e.EnableParents(); err != nil {
		t.Fatal(err)
	}
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	e.MultiTree([]int32{1, 2})
	e.TreeWithParents(3)
	d.Run(3)
	for v := int32(0); v < int32(g.NumVertices()); v += 5 {
		if e.Dist(0, v) != d.Dist(v) {
			t.Fatalf("after interleave: dist(%d)=%d, want %d", v, e.Dist(0, v), d.Dist(v))
		}
	}
	e.MultiTree([]int32{9, 8})
	d.Run(8)
	for v := int32(0); v < int32(g.NumVertices()); v += 5 {
		if e.Dist(1, v) != d.Dist(v) {
			t.Fatalf("multi after parents: dist(%d)=%d, want %d", v, e.Dist(1, v), d.Dist(v))
		}
	}
}
