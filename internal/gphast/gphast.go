// Package gphast implements GPHAST (Section VI of the paper): the PHAST
// linear sweep outsourced to a GPU, here the SIMT simulator of
// internal/simt (see DESIGN.md for the substitution rationale).
//
// The division of labor follows the paper exactly: the CPU runs the
// upward CH search for each source and copies the search space (<2KB)
// to the device; the device holds G↓ (in the reordered layout) and the
// distance labels, and the CPU launches one kernel per level, each
// thread writing exactly one distance label. When k trees are built at
// once, threads are assigned to warps so that the threads of a warp work
// on the same vertex (with k=32 a warp handles exactly one vertex),
// which keeps the instruction flow of a warp uniform.
package gphast

import (
	"fmt"
	"time"

	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/simt"
)

// Engine runs PHAST sweeps on a simulated GPU.
type Engine struct {
	ce  *core.Engine
	dev *simt.Device
	n   int
	k   int // trees in the last batch

	// Device-resident graph (engine-ID space, reordered layout).
	first   *simt.Buffer // n+1
	heads   *simt.Buffer // m: tails of incoming downward arcs
	weights *simt.Buffer // m
	dist    *simt.Buffer // maxK*n labels, k per vertex contiguous
	mark    *simt.Buffer // n round stamps (version-stamped visited bits)
	parent  *simt.Buffer // n G+ parents; allocated by EnableParents

	// Seed staging (the per-tree search spaces).
	seedV, seedD, seedLane *simt.Buffer
	uniqV                  *simt.Buffer

	maxK        int
	round       uint32
	levelRanges [][2]int32

	// Host scratch, reused across batches so the per-batch CPU phase
	// stays allocation-free (the //phast:hotpath discipline).
	hVerts   []int32
	hDists   []uint32
	hParents []int32  // TreeWithParents' upward-search parents
	seen     []uint32 // round-stamped dedupe for seed vertices
	hSeedV   []uint32 // seed staging: vertices, labels, lanes/parents, dedup
	hSeedD   []uint32
	hSeedL   []uint32
	hUniq    []uint32
	oneSrc   [1]int32 // Tree's single-source batch, kept off the heap

	lastBatchTime time.Duration
}

// NewEngine uploads the downward graph of ce to dev and prepares buffers
// for up to maxK trees per sweep. ce must use the reordered sweep mode
// (the GPU kernels index levels by consecutive vertex ranges).
func NewEngine(ce *core.Engine, dev *simt.Device, maxK int) (*Engine, error) {
	if ce.Mode() != core.SweepReordered {
		return nil, fmt.Errorf("gphast: engine must use SweepReordered, got %v", ce.Mode())
	}
	if maxK < 1 {
		return nil, fmt.Errorf("gphast: maxK must be positive, got %d", maxK)
	}
	n := ce.NumVertices()
	downIn := ce.Hierarchy().DownIn
	m := downIn.NumArcs()
	e := &Engine{
		ce: ce, dev: dev, n: n, maxK: maxK,
		levelRanges: ce.LevelRanges(),
		seen:        make([]uint32, n),
	}
	var err error
	alloc := func(name string, sz int) *simt.Buffer {
		if err != nil {
			return nil
		}
		var b *simt.Buffer
		b, err = dev.Alloc(name, sz)
		return b
	}
	e.first = alloc("first", n+1)
	e.heads = alloc("arc.heads", m)
	e.weights = alloc("arc.weights", m)
	e.dist = alloc("dist", maxK*n)
	e.mark = alloc("mark", n)
	const seedCap = 1 << 16
	e.seedV = alloc("seed.vertex", seedCap)
	e.seedD = alloc("seed.dist", seedCap)
	e.seedLane = alloc("seed.lane", seedCap)
	e.uniqV = alloc("seed.unique", seedCap)
	if err != nil {
		return nil, err
	}
	// Upload the graph once (amortized over all trees, as on the card).
	fw := make([]uint32, n+1)
	hw := make([]uint32, m)
	ww := make([]uint32, m)
	if pk := ce.Packed(); pk != nil && !pk.ExplicitVertex() {
		// The CPU engine already fused the downward CSR into the packed
		// sweep stream; in SweepReordered mode its blocks are in vertex
		// order with implicit IDs, so one decode pass fills the device
		// staging arrays without re-walking the AoS arc list.
		stream := pk.Stream()
		i, ai := 0, 0
		for v := 0; v < n; v++ {
			fw[v] = uint32(ai)
			deg := int(stream[i])
			i++
			for a := 0; a < deg; a++ {
				hw[ai] = stream[i]
				ww[ai] = stream[i+1]
				i += 2
				ai++
			}
		}
		fw[n] = uint32(ai)
	} else {
		fo := downIn.FirstOut()
		for i, x := range fo {
			fw[i] = uint32(x)
		}
		arcs := downIn.ArcList()
		for i, a := range arcs {
			hw[i] = uint32(a.Head)
			ww[i] = a.Weight
		}
	}
	e.first.CopyIn(0, fw)
	e.heads.CopyIn(0, hw)
	e.weights.CopyIn(0, ww)
	return e, nil
}

// Device returns the underlying simulated GPU.
func (e *Engine) Device() *simt.Device { return e.dev }

// OrigID translates an engine ID back to the original vertex ID space.
func (e *Engine) OrigID(v int32) int32 { return e.ce.OrigID(v) }

// EngineID translates an original vertex ID to the engine ID space.
func (e *Engine) EngineID(v int32) int32 { return e.ce.EngineID(v) }

// MemoryUsed reports device memory held by this engine's buffers — the
// "memory [MB]" column of Table III.
func (e *Engine) MemoryUsed() int64 { return e.dev.MemoryUsed() }

// K returns the tree count of the last batch.
func (e *Engine) K() int { return e.k }

// LastBatchModeledTime returns the modeled device+PCIe time of the last
// Tree/MultiTree call (total for the batch, not per tree).
func (e *Engine) LastBatchModeledTime() time.Duration { return e.lastBatchTime }

// Tree computes one shortest-path tree from the original-ID source.
//
//phast:hotpath
func (e *Engine) Tree(source int32) {
	e.oneSrc[0] = source
	e.MultiTree(e.oneSrc[:])
}

// checkBatchSize panics when a batch exceeds the engine's capacity. It
// lives outside the hot path so the formatting machinery (which boxes
// its operands) stays out of the annotated kernel driver; the
// //phast:offpath marker records that claim for the interprocedural
// checker — the Sprintf only runs on the panicking branch.
//
//phast:offpath
func (e *Engine) checkBatchSize(k int) {
	if k > e.maxK {
		panic(fmt.Sprintf("gphast: k=%d exceeds maxK=%d", k, e.maxK))
	}
}

// MultiTree computes len(sources) trees in one device sweep; k must not
// exceed the maxK the engine was created with.
//
//phast:hotpath
func (e *Engine) MultiTree(sources []int32) {
	k := len(sources)
	if k == 0 {
		e.k = 0
		return
	}
	e.checkBatchSize(k)
	e.k = k
	e.round++
	round := e.round
	start := e.dev.Stats().ModeledTime

	// Phase 1 (CPU): upward CH searches; collect the union of the search
	// spaces and per-lane seed triples into reused staging slices.
	e.hSeedV = e.hSeedV[:0]
	e.hSeedD = e.hSeedD[:0]
	e.hSeedL = e.hSeedL[:0]
	e.hUniq = e.hUniq[:0]
	for lane, src := range sources {
		e.hVerts, e.hDists = e.ce.UpwardSearchSpace(src, e.hVerts[:0], e.hDists[:0])
		for i, v := range e.hVerts {
			if e.seen[v] != round {
				e.seen[v] = round
				e.hUniq = append(e.hUniq, uint32(v))
			}
			e.hSeedV = append(e.hSeedV, uint32(v))
			e.hSeedD = append(e.hSeedD, e.hDists[i])
			e.hSeedL = append(e.hSeedL, uint32(lane))
		}
	}
	if len(e.hSeedV) > e.seedV.Len() {
		panic("gphast: search space exceeds seed buffer capacity")
	}
	// Copy the search spaces to the device (the <2KB transfer of §VI).
	e.uniqV.CopyIn(0, e.hUniq)
	e.seedV.CopyIn(0, e.hSeedV)
	e.seedD.CopyIn(0, e.hSeedD)
	e.seedLane.CopyIn(0, e.hSeedL)

	// Seed kernel A: stamp each touched vertex with this round and reset
	// all of its k lanes to Inf (implicit initialization, Section IV-C:
	// only the tiny search space is ever initialized).
	dist, mark := e.dist, e.mark
	uniqV, seedV, seedD, seedLane := e.uniqV, e.seedV, e.seedD, e.seedLane
	kk := int32(k)
	e.dev.Launch("seed.init", len(e.hUniq), func(t *simt.Thread) {
		v := int32(t.Load(uniqV, t.Global))
		t.Store(mark, v, round)
		base := v * kk
		for j := int32(0); j < kk; j++ {
			t.Store(dist, base+j, graph.Inf)
		}
	})
	// Seed kernel B: scatter the upward-search labels into their lanes.
	e.dev.Launch("seed.scatter", len(e.hSeedV), func(t *simt.Thread) {
		v := int32(t.Load(seedV, t.Global))
		d := t.Load(seedD, t.Global)
		lane := int32(t.Load(seedLane, t.Global))
		t.Store(dist, v*kk+lane, d)
	})

	// Phase 2: one kernel per level, processed top-down; each thread owns
	// one (vertex, lane) label. Lanes of a vertex are consecutive thread
	// IDs, so a warp's threads work on the same or adjacent vertices and
	// read the arc arrays at the same addresses.
	first, heads, weights := e.first, e.heads, e.weights
	for _, r := range e.levelRanges {
		lo, size := r[0], r[1]-r[0]
		e.dev.Launch("sweep.level", int(size)*k, func(t *simt.Thread) {
			v := lo + t.Global/kk
			lane := t.Global % kk
			t.ALU(2)
			best := graph.Inf
			if t.Load(mark, v) == round {
				best = t.Load(dist, v*kk+lane)
			}
			a0 := int32(t.Load(first, v))
			a1 := int32(t.Load(first, v+1))
			for i := a0; i < a1; i++ {
				u := int32(t.Load(heads, i))
				w := t.Load(weights, i)
				du := t.Load(dist, u*kk+lane)
				t.ALU(2) // packed add + min
				if nd := uint64(du) + uint64(w); nd < uint64(best) {
					best = uint32(nd)
				}
			}
			t.Store(dist, v*kk+lane, best)
		})
	}
	e.lastBatchTime = e.dev.Stats().ModeledTime - start
}

// MaxK returns the largest batch size the engine was created for.
func (e *Engine) MaxK() int { return e.maxK }

// NewRunningMax allocates a device buffer holding a per-vertex running
// maximum, initialized to zero — the auxiliary array of the diameter
// application (Section VII-B.a), kept on the device so warp accesses
// stay coalesced.
func (e *Engine) NewRunningMax() (*simt.Buffer, error) {
	return e.dev.Alloc("diameter.max", e.n)
}

// FoldMax folds the labels of the last batch into maxBuf: for every
// vertex the maximum finite label over the batch's lanes is merged into
// the running maximum.
//
//phast:hotpath
func (e *Engine) FoldMax(maxBuf *simt.Buffer) {
	k := int32(e.k)
	if k == 0 {
		return
	}
	dist := e.dist
	e.dev.Launch("diameter.fold", e.n, func(t *simt.Thread) {
		v := t.Global
		m := t.Load(maxBuf, v)
		base := v * k
		for j := int32(0); j < k; j++ {
			d := t.Load(dist, base+j)
			t.ALU(2)
			if d != graph.Inf && d > m {
				m = d
			}
		}
		t.Store(maxBuf, v, m)
	})
}

// Dist returns the label of original-ID vertex v in tree lane of the
// last batch, reading device memory directly (no PCIe metering; use
// CopyDistances to model the transfer). The returned value is a copy
// and stays valid; the underlying device array is rewritten by the
// next Tree/MultiTree batch, which is why no Raw view of it is
// exposed — bulk readers go through CopyDistances.
func (e *Engine) Dist(lane int, v int32) uint32 {
	ev := e.ce.EngineID(v)
	return e.dist.HostData()[int(ev)*e.k+lane]
}

// CopyDistances transfers all labels of one tree back to the host
// (metered as a strided DMA), indexed by engine ID. The copy is a
// snapshot with the same contract as core.Engine.CopyDistances: later
// batches on this engine do not disturb it.
func (e *Engine) CopyDistances(lane int, buf []uint32) {
	if len(buf) != e.n {
		panic("gphast: CopyDistances buffer has wrong length")
	}
	e.dist.CopyOutStrided(lane, e.k, e.n, buf)
}
