package gphast

import (
	"fmt"
	"sync"
	"time"

	"phast/internal/core"
	"phast/internal/simt"
)

// Fleet drives several simulated GPUs at once. Section VIII-F argues
// the all-pairs computation "scales perfectly with the number of GPUs"
// because the linear sweep dominates and trees are independent: two
// GTX 580s halve the 11 hours. Each device holds its own copy of the
// downward graph (as two physical cards would) and processes its own
// source batches; a round's modeled time is the maximum over devices.
type Fleet struct {
	engines []*Engine
}

// NewFleet creates one GPHAST engine per device spec, each over its own
// clone of the core engine and its own simulated device.
func NewFleet(ce *core.Engine, specs []simt.DeviceSpec, maxK int) (*Fleet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("gphast: fleet needs at least one device")
	}
	f := &Fleet{}
	for _, spec := range specs {
		ge, err := NewEngine(ce.Clone(), simt.NewDevice(spec), maxK)
		if err != nil {
			return nil, err
		}
		f.engines = append(f.engines, ge)
	}
	return f, nil
}

// Size returns the number of devices.
func (f *Fleet) Size() int { return len(f.engines) }

// Engine returns the i-th device's engine (for reading results).
func (f *Fleet) Engine(i int) *Engine { return f.engines[i] }

// MultiTreeRound runs batch i on device i concurrently and returns the
// round's modeled wall time: the slowest device (physical cards run in
// parallel). len(batches) must not exceed the fleet size; empty batches
// are allowed and cost nothing.
func (f *Fleet) MultiTreeRound(batches [][]int32) time.Duration {
	if len(batches) > len(f.engines) {
		panic(fmt.Sprintf("gphast: %d batches for %d devices", len(batches), len(f.engines)))
	}
	var wg sync.WaitGroup
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, batch []int32) {
			defer wg.Done()
			f.engines[i].MultiTree(batch)
		}(i, batch)
	}
	wg.Wait()
	var round time.Duration
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if t := f.engines[i].LastBatchModeledTime(); t > round {
			round = t
		}
	}
	return round
}

// AllPairsModeledTime runs trees from every source in rounds of
// fleetSize × k and returns the total modeled wall time — the Table VI
// "n trees" column for a multi-card setup. visit, if non-nil, is called
// after each round with the device index and its batch so callers can
// aggregate labels (e.g. running maxima) before they are overwritten.
func (f *Fleet) AllPairsModeledTime(sources []int32, k int, visit func(device int, batch []int32)) time.Duration {
	var total time.Duration
	perRound := len(f.engines) * k
	for lo := 0; lo < len(sources); lo += perRound {
		batches := make([][]int32, len(f.engines))
		for d := range f.engines {
			blo := lo + d*k
			bhi := blo + k
			if blo > len(sources) {
				blo = len(sources)
			}
			if bhi > len(sources) {
				bhi = len(sources)
			}
			batches[d] = sources[blo:bhi]
		}
		total += f.MultiTreeRound(batches)
		if visit != nil {
			for d, batch := range batches {
				if len(batch) > 0 {
					visit(d, batch)
				}
			}
		}
	}
	return total
}
