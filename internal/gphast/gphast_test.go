package gphast

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/simt"
	"phast/internal/sssp"
)

func testSetup(t *testing.T, maxK int) (*graph.Graph, *Engine) {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 28, Height: 24, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	ce, err := core.NewEngine(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ce, simt.NewDevice(simt.GTX580()), maxK)
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph, e
}

func TestTreeMatchesDijkstra(t *testing.T) {
	g, e := testSetup(t, 1)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rng := rand.New(rand.NewSource(1))
	n := int32(g.NumVertices())
	for trial := 0; trial < 5; trial++ {
		s := int32(rng.Intn(int(n)))
		e.Tree(s)
		d.Run(s)
		for v := int32(0); v < n; v++ {
			if got, want := e.Dist(0, v), d.Dist(v); got != want {
				t.Fatalf("trial %d src %d: dist(%d)=%d, want %d", trial, s, v, got, want)
			}
		}
	}
}

func TestMultiTreeMatchesDijkstra(t *testing.T) {
	g, e := testSetup(t, 8)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rng := rand.New(rand.NewSource(2))
	n := int32(g.NumVertices())
	for _, k := range []int{2, 8, 3} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(int(n)))
		}
		e.MultiTree(sources)
		if e.K() != k {
			t.Fatalf("K=%d, want %d", e.K(), k)
		}
		for lane, s := range sources {
			d.Run(s)
			for v := int32(0); v < n; v++ {
				if got, want := e.Dist(lane, v), d.Dist(v); got != want {
					t.Fatalf("k=%d lane %d src %d: dist(%d)=%d, want %d", k, lane, s, v, got, want)
				}
			}
		}
	}
}

func TestRepeatedTreesNoStaleState(t *testing.T) {
	// Device labels persist across batches; version-stamped marks must
	// prevent any leakage between rounds.
	g, e := testSetup(t, 2)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	n := int32(g.NumVertices())
	for _, s := range []int32{0, n - 1, 5, 5, n / 2} {
		e.MultiTree([]int32{s, (s + 13) % n})
		for lane, src := range []int32{s, (s + 13) % n} {
			d.Run(src)
			for v := int32(0); v < n; v += 7 {
				if got, want := e.Dist(lane, v), d.Dist(v); got != want {
					t.Fatalf("src %d lane %d: dist(%d)=%d, want %d (stale device state?)", src, lane, v, got, want)
				}
			}
		}
	}
}

func TestCopyDistances(t *testing.T) {
	g, e := testSetup(t, 2)
	e.MultiTree([]int32{3, 9})
	buf := make([]uint32, g.NumVertices())
	before := e.Device().Stats().HostBytes
	e.CopyDistances(1, buf)
	if e.Device().Stats().HostBytes-before != int64(g.NumVertices())*4 {
		t.Fatal("strided readback metered wrong byte count")
	}
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(9)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		// buf is engine-ID indexed.
		if buf[e.engineID(v)] != d.Dist(v) {
			t.Fatalf("readback mismatch at %d", v)
		}
	}
}

// engineID is a test helper peeking through to the core engine mapping.
func (e *Engine) engineID(v int32) int32 { return e.ce.EngineID(v) }

func TestModeledTimeAndKernels(t *testing.T) {
	_, e := testSetup(t, 16)
	e.Device().ResetStats()
	e.Tree(0)
	s1 := e.Device().Stats()
	levels := len(e.ce.LevelRanges())
	if s1.Kernels != levels+2 {
		t.Fatalf("kernels=%d, want %d (one per level + 2 seed kernels)", s1.Kernels, levels+2)
	}
	if e.LastBatchModeledTime() <= 0 {
		t.Fatal("no modeled time for the batch")
	}
	// k=16 must cost less than 16x the k=1 time per tree (shared sweeps).
	t1 := e.LastBatchModeledTime()
	sources := make([]int32, 16)
	for i := range sources {
		sources[i] = int32(i * 11)
	}
	e.MultiTree(sources)
	t16 := e.LastBatchModeledTime()
	if t16 >= 16*t1 {
		t.Fatalf("multi-tree has no modeled benefit: k=1 %v vs k=16 %v", t1, t16)
	}
}

func TestMemoryAccounting(t *testing.T) {
	_, e1 := testSetup(t, 1)
	_, e16 := testSetup(t, 16)
	if e16.MemoryUsed() <= e1.MemoryUsed() {
		t.Fatalf("k=16 engine not larger: %d vs %d", e16.MemoryUsed(), e1.MemoryUsed())
	}
}

func TestRejectsWrongModeAndBadK(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 12, Height: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	ce, err := core.NewEngine(h, core.Options{Mode: core.SweepRankOrder})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(ce, simt.NewDevice(simt.GTX580()), 1); err == nil {
		t.Fatal("rank-order engine accepted")
	}
	ceOK, err := core.NewEngine(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(ceOK, simt.NewDevice(simt.GTX580()), 0); err == nil {
		t.Fatal("maxK=0 accepted")
	}
	e, err := NewEngine(ceOK, simt.NewDevice(simt.GTX580()), 2)
	if err != nil {
		t.Fatal(err)
	}
	e.MultiTree(nil)
	if e.K() != 0 {
		t.Fatal("empty batch should clear K")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("k>maxK accepted")
		}
	}()
	e.MultiTree([]int32{0, 1, 2})
}

func TestDeviceTooSmall(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 16, Height: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	ce, err := core.NewEngine(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := simt.GTX580()
	spec.MemoryBytes = 1 << 12
	if _, err := NewEngine(ce, simt.NewDevice(spec), 4); err == nil {
		t.Fatal("engine fit into a 4KB device")
	}
}
