package gphast

import (
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/simt"
	"phast/internal/sssp"
)

func fleetSetup(t *testing.T, devices, maxK int) (*Fleet, *core.Engine, *sssp.Dijkstra) {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 20, Height: 18, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	ce, err := core.NewEngine(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]simt.DeviceSpec, devices)
	for i := range specs {
		specs[i] = simt.GTX580()
	}
	f, err := NewFleet(ce, specs, maxK)
	if err != nil {
		t.Fatal(err)
	}
	return f, ce, sssp.NewDijkstra(net.Graph, pq.KindBinaryHeap)
}

func TestFleetRoundExactResults(t *testing.T) {
	f, _, d := fleetSetup(t, 2, 2)
	batches := [][]int32{{3, 40}, {77, 200}}
	round := f.MultiTreeRound(batches)
	if round <= 0 {
		t.Fatal("no modeled round time")
	}
	for dev, batch := range batches {
		for lane, s := range batch {
			d.Run(s)
			for v := int32(0); v < 300; v += 17 {
				if got, want := f.Engine(dev).Dist(lane, v), d.Dist(v); got != want {
					t.Fatalf("device %d lane %d: dist(%d)=%d, want %d", dev, lane, v, got, want)
				}
			}
		}
	}
	// Round time is the max, not the sum, of the two device batches.
	sum := f.Engine(0).LastBatchModeledTime() + f.Engine(1).LastBatchModeledTime()
	if round >= sum {
		t.Fatalf("round %v not below sum %v — devices not parallel", round, sum)
	}
}

func TestFleetScalesAllPairs(t *testing.T) {
	f2, ce, _ := fleetSetup(t, 2, 4)
	f1, err := NewFleet(ce, []simt.DeviceSpec{simt.GTX580()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]int32, 16)
	for i := range sources {
		sources[i] = int32(i * 11)
	}
	t1 := f1.AllPairsModeledTime(sources, 4, nil)
	t2 := f2.AllPairsModeledTime(sources, 4, nil)
	if t2 >= t1 {
		t.Fatalf("2 devices (%v) not faster than 1 (%v)", t2, t1)
	}
	// "Scales perfectly": within 25% of a clean halving.
	if float64(t2) > 0.75*float64(t1) {
		t.Fatalf("scaling too weak: %v vs %v", t2, t1)
	}
}

func TestFleetVisitCallback(t *testing.T) {
	f, _, d := fleetSetup(t, 2, 2)
	sources := []int32{1, 2, 3, 4, 5}
	seen := map[int32]bool{}
	f.AllPairsModeledTime(sources, 2, func(dev int, batch []int32) {
		for lane, s := range batch {
			seen[s] = true
			d.Run(s)
			if f.Engine(dev).Dist(lane, 100) != d.Dist(100) {
				t.Fatalf("visit saw wrong labels for source %d", s)
			}
		}
	})
	for _, s := range sources {
		if !seen[s] {
			t.Fatalf("source %d never visited", s)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	_, ce, _ := fleetSetup(t, 1, 1)
	if _, err := NewFleet(ce, nil, 1); err == nil {
		t.Fatal("empty fleet accepted")
	}
	f, err := NewFleet(ce, []simt.DeviceSpec{simt.GTX580()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1 {
		t.Fatalf("size=%d", f.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("too many batches accepted")
		}
	}()
	f.MultiTreeRound([][]int32{{1}, {2}})
}
