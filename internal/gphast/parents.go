package gphast

import (
	"fmt"

	"phast/internal/graph"
	"phast/internal/simt"
)

// NoParent is the device encoding for "no parent" (source or unreached).
const NoParent uint32 = 0xFFFFFFFF

// EnableParents allocates the device-side parent array used by
// TreeWithParents — the GPU tree reconstruction of Section VII-A that
// the arc-flags application relies on ("we can run GPHAST with tree
// reconstruction, reducing the time to set flags to less than 3
// minutes").
func (e *Engine) EnableParents() error {
	if e.parent != nil {
		return nil
	}
	p, err := e.dev.Alloc("parent", e.n)
	if err != nil {
		return err
	}
	e.parent = p
	return nil
}

// TreeWithParents computes one tree (k=1) storing, for every vertex, the
// engine ID of the G+ arc tail responsible for its label. EnableParents
// must have been called.
//
//phast:hotpath
func (e *Engine) TreeWithParents(source int32) {
	if e.parent == nil {
		panic("gphast: TreeWithParents without EnableParents")
	}
	e.k = 1
	e.round++
	round := e.round
	start := e.dev.Stats().ModeledTime

	verts, dists, parents := e.ce.UpwardSearchSpaceWithParents(source, e.hVerts[:0], e.hDists[:0], e.hParents[:0])
	e.hVerts, e.hDists, e.hParents = verts, dists, parents
	if len(verts) > e.seedV.Len() {
		panic("gphast: search space exceeds seed buffer capacity")
	}
	e.hSeedV = e.hSeedV[:0]
	e.hSeedD = e.hSeedD[:0]
	e.hSeedL = e.hSeedL[:0]
	for i, v := range verts {
		e.hSeedV = append(e.hSeedV, uint32(v))
		e.hSeedD = append(e.hSeedD, dists[i])
		if parents[i] < 0 {
			e.hSeedL = append(e.hSeedL, NoParent)
		} else {
			e.hSeedL = append(e.hSeedL, uint32(parents[i]))
		}
	}
	e.seedV.CopyIn(0, e.hSeedV)
	e.seedD.CopyIn(0, e.hSeedD)
	e.seedLane.CopyIn(0, e.hSeedL) // lane buffer doubles as parent staging at k=1

	dist, mark, parent := e.dist, e.mark, e.parent
	seedV, seedD, seedP := e.seedV, e.seedD, e.seedLane
	e.dev.Launch("seed.parents", len(verts), func(t *simt.Thread) {
		v := int32(t.Load(seedV, t.Global))
		t.Store(mark, v, round)
		t.Store(dist, v, t.Load(seedD, t.Global))
		t.Store(parent, v, t.Load(seedP, t.Global))
	})

	first, heads, weights := e.first, e.heads, e.weights
	for _, r := range e.levelRanges {
		lo, size := r[0], r[1]-r[0]
		e.dev.Launch("sweep.parents", int(size), func(t *simt.Thread) {
			v := lo + t.Global
			best := graph.Inf
			bestP := NoParent
			if t.Load(mark, v) == round {
				best = t.Load(dist, v)
				bestP = t.Load(parent, v)
			}
			a0 := int32(t.Load(first, v))
			a1 := int32(t.Load(first, v+1))
			for i := a0; i < a1; i++ {
				u := int32(t.Load(heads, i))
				w := t.Load(weights, i)
				du := t.Load(dist, int32(u))
				t.ALU(2)
				if nd := uint64(du) + uint64(w); nd < uint64(best) {
					best = uint32(nd)
					bestP = uint32(u)
				}
			}
			t.Store(dist, v, best)
			t.Store(parent, v, bestP)
		})
	}
	e.lastBatchTime = e.dev.Stats().ModeledTime - start
}

// ParentOf returns the original-ID G+ parent of v recorded by the last
// TreeWithParents, or -1. Like Dist it returns a copied value; the
// device parent array itself is rewritten by the next TreeWithParents,
// so bulk readers snapshot through CopyParents.
func (e *Engine) ParentOf(v int32) int32 {
	p := e.parent.HostData()[e.ce.EngineID(v)]
	if p == NoParent {
		return -1
	}
	return e.ce.OrigID(int32(p))
}

// CopyParents transfers the engine-ID-indexed parent array to the host
// (metered); entries are engine IDs or NoParent. The copy is a snapshot
// (the contract of core.Engine.CopyDistances): later trees on this
// engine do not disturb it.
func (e *Engine) CopyParents(buf []uint32) {
	if len(buf) != e.n {
		panic(fmt.Sprintf("gphast: CopyParents buffer has length %d, want %d", len(buf), e.n))
	}
	e.parent.CopyOut(0, buf)
}
