package rphast

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/sssp"
)

func setup(t testing.TB) (*graph.Graph, *core.Engine) {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 30, Height: 26, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	e, err := core.NewEngine(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph, e
}

func TestQueryMatchesDijkstra(t *testing.T) {
	g, eng := setup(t)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for trial := 0; trial < 5; trial++ {
		targets := make([]int32, 1+rng.Intn(20))
		for i := range targets {
			targets[i] = int32(rng.Intn(n))
		}
		sel, err := NewSelection(eng, targets)
		if err != nil {
			t.Fatal(err)
		}
		q := NewQuery(sel)
		for k := 0; k < 5; k++ {
			s := int32(rng.Intn(n))
			q.Run(s)
			d.Run(s)
			for i, tgt := range targets {
				if got, want := q.Dist(i), d.Dist(tgt); got != want {
					t.Fatalf("trial %d: dist(%d->%d)=%d, want %d", trial, s, tgt, got, want)
				}
			}
		}
	}
}

func TestSelectionSmallerThanGraph(t *testing.T) {
	g, eng := setup(t)
	sel, err := NewSelection(eng, []int32{5})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() >= g.NumVertices() {
		t.Fatalf("selection of one target covers the whole graph (%d of %d)",
			sel.Size(), g.NumVertices())
	}
	if sel.Size() < 1 || sel.NumArcs() < 0 {
		t.Fatalf("degenerate selection: %d vertices, %d arcs", sel.Size(), sel.NumArcs())
	}
	// More targets cannot shrink the selection.
	sel2, err := NewSelection(eng, []int32{5, 100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Size() < sel.Size() {
		t.Fatal("superset of targets produced a smaller selection")
	}
}

func TestDistToSelectedAndUnselected(t *testing.T) {
	g, eng := setup(t)
	sel, err := NewSelection(eng, []int32{3})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(sel)
	q.Run(10)
	if d, ok := q.DistTo(3); !ok || d == graph.Inf {
		t.Fatalf("target 3 not resolvable: %d %v", d, ok)
	}
	// Find some vertex outside the selection.
	found := false
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if _, ok := q.DistTo(v); !ok {
			found = true
			break
		}
	}
	if !found {
		t.Skip("selection covered the whole graph")
	}
}

func TestRepeatedRunsNoStaleState(t *testing.T) {
	g, eng := setup(t)
	targets := []int32{1, 50, 333}
	sel, err := NewSelection(eng, targets)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(sel)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for _, s := range []int32{0, 700, 0, 333, 1} {
		q.Run(s)
		d.Run(s)
		for i, tgt := range targets {
			if q.Dist(i) != d.Dist(tgt) {
				t.Fatalf("src %d target %d: %d != %d", s, tgt, q.Dist(i), d.Dist(tgt))
			}
		}
	}
}

// TestCopyDistancesSnapshot pins the aliasing contract of the result
// accessors: RawDistances aliases the working buffer the next Run
// overwrites, while CopyDistances and CopyTargetDistances take
// snapshots that later Runs must not disturb.
func TestCopyDistancesSnapshot(t *testing.T) {
	_, eng := setup(t)
	targets := []int32{7, 41, 250}
	sel, err := NewSelection(eng, targets)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(sel)

	q.Run(0)
	snap := make([]uint32, sel.Size())
	q.CopyDistances(snap)
	tsnap := make([]uint32, len(targets))
	q.CopyTargetDistances(tsnap)
	for i := range targets {
		if tsnap[i] != q.Dist(i) {
			t.Fatalf("target %d: CopyTargetDistances %d != Dist %d", i, tsnap[i], q.Dist(i))
		}
	}
	if l := sel.LocalIndex(targets[0]); l < 0 || snap[l] != q.Dist(0) {
		t.Fatalf("LocalIndex(%d)=%d does not address target 0's label", targets[0], l)
	}

	view := q.RawDistances()
	q.Run(600) // a different source rewrites the working buffer
	changed := false
	for i := range snap {
		//phastlint:ignore rawalias this test deliberately reads a stale raw view to pin the aliasing behavior
		if view[i] != snap[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Skip("sources 0 and 600 produced identical selections; aliasing not observable")
	}
	// The snapshot still holds the first Run's labels even though the raw
	// view (same backing array) now shows the second Run's.
	q2 := NewQuery(sel)
	q2.Run(0)
	for i := range snap {
		if snap[i] != q2.dist[i] {
			t.Fatalf("snapshot disturbed at local %d: %d != %d", i, snap[i], q2.dist[i])
		}
	}
}

func TestTable(t *testing.T) {
	g, eng := setup(t)
	targets := []int32{2, 44, 97}
	sources := []int32{0, 11, 23, 500}
	sel, err := NewSelection(eng, targets)
	if err != nil {
		t.Fatal(err)
	}
	tab := Table(sel, sources)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for i, s := range sources {
		d.Run(s)
		for j, tgt := range targets {
			if tab[i][j] != d.Dist(tgt) {
				t.Fatalf("table[%d][%d]=%d, want %d", i, j, tab[i][j], d.Dist(tgt))
			}
		}
	}
}

func TestSelectionValidation(t *testing.T) {
	_, eng := setup(t)
	if _, err := NewSelection(eng, nil); err == nil {
		t.Fatal("empty target set accepted")
	}
	if _, err := NewSelection(eng, []int32{-1}); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := NewSelection(eng, []int32{1 << 30}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	h := eng.Hierarchy()
	rankEng, err := core.NewEngine(h, core.Options{Mode: core.SweepRankOrder})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSelection(rankEng, []int32{0}); err == nil {
		t.Fatal("rank-order engine accepted")
	}
}

func TestDisconnectedTarget(t *testing.T) {
	// Island target: distance from the mainland must be Inf.
	b := graph.NewBuilder(5)
	b.MustAddArc(0, 1, 3)
	b.MustAddArc(1, 0, 3)
	b.MustAddArc(2, 3, 4)
	b.MustAddArc(3, 2, 4)
	g := b.Build()
	h := ch.Build(g, ch.Options{Workers: 1})
	eng, err := core.NewEngine(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelection(eng, []int32{3})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(sel)
	q.Run(0)
	if d := q.Dist(0); d != graph.Inf {
		t.Fatalf("cross-island distance %d, want Inf", d)
	}
	q.Run(2)
	if d := q.Dist(0); d != 4 {
		t.Fatalf("island-internal distance %d, want 4", d)
	}
}
