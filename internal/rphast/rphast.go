// Package rphast implements RPHAST — restricted PHAST — the one-to-many
// extension of the paper's algorithm (sketched in its applications and
// developed by the same authors as "Faster Batched Shortest Paths in
// Road Networks"). Many workloads (distance tables for logistics,
// k-nearest-neighbor queries, arc-flag style preprocessing toward a
// region) need distances from many sources to a *fixed* target set T,
// not to every vertex.
//
// RPHAST splits PHAST's source-independent sweep once more: a target
// selection phase extracts, from the downward graph G↓, exactly the
// vertices that can reach T (the only vertices whose labels can
// influence a label in T) and re-packs their incoming arcs into a small
// contiguous CSR in sweep order. A query is then an ordinary upward CH
// search followed by a linear sweep over the restricted structure —
// proportional to |selection|, not n.
package rphast

import (
	"fmt"

	"phast/internal/core"
	"phast/internal/graph"
)

// Selection is the preprocessed restriction of the downward graph to the
// ancestors of a target set. It is immutable and shareable; per-query
// state lives in Query objects.
type Selection struct {
	eng *core.Engine // used only for its shared hierarchy/ID mappings

	// verts lists the selected engine IDs in sweep (increasing) order.
	verts []int32
	// localOf maps engine ID -> index in verts, -1 if unselected.
	localOf []int32
	// first/arcs form a local CSR: arcs[first[i]:first[i+1]] are the
	// incoming downward arcs of verts[i], with Head holding the *local*
	// index of the tail (always < i: the restricted sweep is topological).
	first []int32
	arcs  []graph.Arc
	// targetLocal holds the local indices of the requested targets,
	// aligned with the targets slice passed to NewSelection.
	targetLocal []int32
}

// NewSelection extracts the restricted downward graph for the given
// targets (original vertex IDs). The engine must use the reordered sweep
// mode (the default). Typical road-network selections are a small
// multiple of |targets| thanks to the shallow hierarchy.
func NewSelection(eng *core.Engine, targets []int32) (*Selection, error) {
	if eng.Mode() != core.SweepReordered {
		return nil, fmt.Errorf("rphast: engine must use SweepReordered, got %v", eng.Mode())
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("rphast: empty target set")
	}
	n := eng.NumVertices()
	downIn := eng.Hierarchy().DownIn
	s := &Selection{
		eng:     eng,
		localOf: make([]int32, n),
	}
	for i := range s.localOf {
		s.localOf[i] = -1
	}

	// Mark all ancestors of T in G↓ with a DFS over incoming arcs: the
	// tails of a selected vertex are exactly the vertices whose labels
	// its scan reads.
	marked := make([]bool, n)
	stack := make([]int32, 0, len(targets)*4)
	for _, t := range targets {
		if t < 0 || int(t) >= n {
			return nil, fmt.Errorf("rphast: target %d out of range [0,%d)", t, n)
		}
		ev := eng.EngineID(t)
		if !marked[ev] {
			marked[ev] = true
			stack = append(stack, ev)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range downIn.Arcs(v) {
			if !marked[a.Head] {
				marked[a.Head] = true
				stack = append(stack, a.Head)
			}
		}
	}

	// Collect the selection in sweep order (ascending engine ID) and
	// re-pack the restricted arcs with local tail indices. Tails are
	// always selected and always precede their heads (Lemma 4.1), so the
	// local CSR is itself a valid sweep schedule.
	for v := int32(0); v < int32(n); v++ {
		if marked[v] {
			s.localOf[v] = int32(len(s.verts))
			s.verts = append(s.verts, v)
		}
	}
	s.first = make([]int32, len(s.verts)+1)
	for i, v := range s.verts {
		s.first[i+1] = s.first[i] + int32(len(downIn.Arcs(v)))
	}
	s.arcs = make([]graph.Arc, s.first[len(s.verts)])
	for i, v := range s.verts {
		dst := s.arcs[s.first[i]:s.first[i+1]]
		for j, a := range downIn.Arcs(v) {
			dst[j] = graph.Arc{Head: s.localOf[a.Head], Weight: a.Weight}
		}
	}
	s.targetLocal = make([]int32, len(targets))
	for i, t := range targets {
		s.targetLocal[i] = s.localOf[eng.EngineID(t)]
	}
	return s, nil
}

// Size returns the number of selected vertices — the per-query sweep
// cost, versus n for unrestricted PHAST.
func (s *Selection) Size() int { return len(s.verts) }

// NumArcs returns the number of restricted downward arcs.
func (s *Selection) NumArcs() int { return len(s.arcs) }

// LocalIndex returns the selection-local index of original vertex v, or
// -1 when v is not selected. It is the index space of
// Query.RawDistances and Query.CopyDistances.
func (s *Selection) LocalIndex(v int32) int32 {
	return s.localOf[s.eng.EngineID(v)]
}

// Query computes one-to-many distances against one Selection. Not safe
// for concurrent use; create one per goroutine.
type Query struct {
	sel  *Selection
	eng  *core.Engine
	dist []uint32
	// upward-search staging, reused across Runs so a query allocates
	// nothing after the first call.
	hVerts []int32
	hDists []uint32
}

// NewQuery creates a solver bound to the selection, with its own engine
// clone for the upward searches.
func NewQuery(s *Selection) *Query {
	return &Query{
		sel:  s,
		eng:  s.eng.Clone(),
		dist: make([]uint32, len(s.verts)),
	}
}

// Run computes the distances from source (an original vertex ID) to
// every selected vertex: an upward CH search plus a sweep over the
// restricted arcs only. It rewrites the query's single working buffer;
// see RawDistances for the aliasing contract.
//
//phast:hotpath
func (q *Query) Run(source int32) {
	s := q.sel
	q.hVerts, q.hDists = q.eng.UpwardSearchSpace(source, q.hVerts[:0], q.hDists[:0])
	verts, dists := q.hVerts, q.hDists
	// Seed: labels of upward-search vertices that are in the selection;
	// everything else is implicitly infinite. The seeds arrive before the
	// sweep touches any label, so no per-query clearing of q.dist is
	// needed beyond the sweep's own writes.
	for i := range q.dist {
		q.dist[i] = graph.Inf
	}
	for i, v := range verts {
		if l := s.localOf[v]; l >= 0 {
			q.dist[l] = dists[i]
		}
	}
	dist := q.dist
	for i := range s.verts {
		best := uint64(dist[i])
		for j := s.first[i]; j < s.first[i+1]; j++ {
			a := s.arcs[j]
			if nd := uint64(dist[a.Head]) + uint64(a.Weight); nd < best {
				best = nd
			}
		}
		dist[i] = uint32(best)
	}
}

// Dist returns the distance to the i-th target passed to NewSelection,
// from the last Run's source.
func (q *Query) Dist(i int) uint32 { return q.dist[q.sel.targetLocal[i]] }

// RawDistances returns the query's working label array, indexed by
// selection-local vertex (see Selection.LocalIndex), aligned with the
// sweep order. The slice aliases the buffer the next Run overwrites —
// the same contract as core.Engine.RawDistances: read it before the
// next Run or snapshot it with CopyDistances. It must not be stored or
// handed to another goroutine (phastlint's rawalias analyzer enforces
// this within a function).
func (q *Query) RawDistances() []uint32 { return q.dist }

// CopyDistances copies the selection-local labels of the last Run into
// buf (length Selection.Size()). The copy is a snapshot: later Runs do
// not disturb it. This mirrors core.Engine.CopyDistances.
func (q *Query) CopyDistances(buf []uint32) {
	if len(buf) != len(q.dist) {
		panic(fmt.Sprintf("rphast: CopyDistances buffer has length %d, want %d", len(buf), len(q.dist)))
	}
	copy(buf, q.dist)
}

// CopyTargetDistances copies the distance to each target of the
// selection (in NewSelection order) into buf — the snapshot form of
// calling Dist for every index.
func (q *Query) CopyTargetDistances(buf []uint32) {
	if len(buf) != len(q.sel.targetLocal) {
		panic(fmt.Sprintf("rphast: CopyTargetDistances buffer has length %d, want %d", len(buf), len(q.sel.targetLocal)))
	}
	for i, l := range q.sel.targetLocal {
		buf[i] = q.dist[l]
	}
}

// DistTo returns the distance to an arbitrary original vertex if it is
// in the selection; ok is false otherwise.
func (q *Query) DistTo(v int32) (uint32, bool) {
	l := q.sel.localOf[q.eng.EngineID(v)]
	if l < 0 {
		return graph.Inf, false
	}
	return q.dist[l], true
}

// Table computes the full |sources| x |targets| distance table.
func Table(s *Selection, sources []int32) [][]uint32 {
	q := NewQuery(s)
	out := make([][]uint32, len(sources))
	for i, src := range sources {
		q.Run(src)
		row := make([]uint32, len(s.targetLocal))
		q.CopyTargetDistances(row)
		out[i] = row
	}
	return out
}
