package sssp

import (
	"phast/internal/graph"
	"phast/internal/pq"
)

// Bidirectional is the bidirectional variant of Dijkstra's algorithm for
// point-to-point queries: a forward search from s on G and a backward
// search from t on the transpose, alternating by smaller queue minimum,
// stopping when the sum of the two minima reaches the best meeting-point
// value µ. It is the baseline that arc flags (Section VII-B.b) speed up.
type Bidirectional struct {
	fwd *Dijkstra
	bwd *Dijkstra
}

// NewBidirectional creates a solver over g; the transpose is built once.
func NewBidirectional(g *graph.Graph, kind pq.Kind) *Bidirectional {
	return &Bidirectional{
		fwd: NewDijkstra(g, kind),
		bwd: NewDijkstra(g.Transpose(), kind),
	}
}

// Query returns the s→t distance, or graph.Inf if t is unreachable.
func (b *Bidirectional) Query(s, t int32) uint32 {
	f, r := b.fwd, b.bwd
	f.version++
	r.version++
	f.q.Reset()
	r.q.Reset()
	f.setDist(s, 0, -1)
	f.q.Insert(s, 0)
	r.setDist(t, 0, -1)
	r.q.Insert(t, 0)
	mu := graph.Inf
	for !f.q.Empty() || !r.q.Empty() {
		// Alternate by smaller frontier minimum; a side with an empty
		// queue can no longer improve µ on its own but the other side may.
		side := f
		if f.q.Empty() || (!r.q.Empty() && minKey(r.q) < minKey(f.q)) {
			side = r
		}
		v, dv := side.q.ExtractMin()
		if dv >= mu {
			break
		}
		for _, a := range side.g.Arcs(v) {
			nd := graph.AddSat(dv, a.Weight)
			if nd < side.Dist(a.Head) {
				side.setDist(a.Head, nd, v)
				side.q.Update(a.Head, nd)
			}
			other := r
			if side == r {
				other = f
			}
			if od := other.Dist(a.Head); od != graph.Inf {
				if m := graph.AddSat(nd, od); m < mu {
					mu = m
				}
			}
		}
		// v itself may be a meeting point settled by both sides.
		other := r
		if side == r {
			other = f
		}
		if od := other.Dist(v); od != graph.Inf {
			if m := graph.AddSat(dv, od); m < mu {
				mu = m
			}
		}
	}
	return mu
}

// minKey peeks at the queue minimum by extracting and reinserting.
// All queue kinds tolerate reinsertion at the same key.
func minKey(q pq.Queue) uint32 {
	v, k := q.ExtractMin()
	q.Insert(v, k)
	return k
}
