// Package sssp implements the baseline single-source shortest path
// algorithms PHAST is compared against: Dijkstra's algorithm (Section
// II-A) over any of the priority queues in internal/pq, breadth-first
// search, and the bidirectional point-to-point variant.
//
// Solvers hold all per-run state and are reusable: repeated Run calls do
// not reallocate and reinitialize labels implicitly via version stamps,
// so building many trees with one solver is allocation-free after warmup.
package sssp

import (
	"phast/internal/graph"
	"phast/internal/pq"
)

// Dijkstra is a reusable solver for full shortest-path trees.
type Dijkstra struct {
	g       *graph.Graph
	q       pq.Queue
	dist    []uint32
	parent  []int32
	stamp   []int32
	version int32
	scanned int // vertices scanned in the last Run
}

// NewDijkstra creates a solver over g using the given queue kind.
func NewDijkstra(g *graph.Graph, kind pq.Kind) *Dijkstra {
	n := g.NumVertices()
	return &Dijkstra{
		g:      g,
		q:      pq.New(kind, n, graph.MaxArcWeight(g)),
		dist:   make([]uint32, n),
		parent: make([]int32, n),
		stamp:  make([]int32, n),
	}
}

// Run computes the shortest-path tree from s. Previous results become
// invalid.
func (d *Dijkstra) Run(s int32) {
	d.run(s, -1)
}

// RunTarget runs from s until t is scanned (or the queue empties) and
// returns the distance to t. Labels of scanned vertices remain queryable.
func (d *Dijkstra) RunTarget(s, t int32) uint32 {
	d.run(s, t)
	return d.Dist(t)
}

func (d *Dijkstra) run(s, t int32) {
	d.version++
	d.q.Reset()
	d.scanned = 0
	d.setDist(s, 0, -1)
	d.q.Insert(s, 0)
	for !d.q.Empty() {
		v, dv := d.q.ExtractMin()
		d.scanned++
		if v == t {
			return
		}
		for _, a := range d.g.Arcs(v) {
			nd := graph.AddSat(dv, a.Weight)
			if nd < d.Dist(a.Head) {
				d.setDist(a.Head, nd, v)
				d.q.Update(a.Head, nd)
			}
		}
	}
}

func (d *Dijkstra) setDist(v int32, dist uint32, parent int32) {
	d.dist[v] = dist
	d.parent[v] = parent
	d.stamp[v] = d.version
}

// Dist returns the distance label of v from the last Run, or graph.Inf
// if v was not reached.
func (d *Dijkstra) Dist(v int32) uint32 {
	if d.stamp[v] != d.version {
		return graph.Inf
	}
	return d.dist[v]
}

// Parent returns v's parent in the shortest-path tree, or -1 for the
// source and unreached vertices.
func (d *Dijkstra) Parent(v int32) int32 {
	if d.stamp[v] != d.version {
		return -1
	}
	return d.parent[v]
}

// Scanned returns the number of vertices scanned by the last Run.
func (d *Dijkstra) Scanned() int { return d.scanned }

// CopyDistances writes all n labels (graph.Inf for unreached) into buf,
// which must have length n. This is the output format shared with PHAST
// so results compare element-wise.
func (d *Dijkstra) CopyDistances(buf []uint32) {
	for v := range buf {
		buf[v] = d.Dist(int32(v))
	}
}

// Distances is CopyDistances into a fresh slice.
func (d *Dijkstra) Distances() []uint32 {
	buf := make([]uint32, d.g.NumVertices())
	d.CopyDistances(buf)
	return buf
}

// PathTo reconstructs the s→v path of the last Run as a vertex sequence,
// or nil if v is unreached.
func (d *Dijkstra) PathTo(v int32) []int32 {
	if d.Dist(v) == graph.Inf {
		return nil
	}
	var rev []int32
	for u := v; u >= 0; u = d.Parent(u) {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
