package sssp

import (
	"math/rand"
	"testing"

	"phast/internal/graph"
	"phast/internal/pq"
)

// bruteForce is a Bellman–Ford reference, the simplest possible oracle.
func bruteForce(g *graph.Graph, s int32) []uint32 {
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[s] = 0
	for round := 0; round < n; round++ {
		changed := false
		for v := int32(0); v < int32(n); v++ {
			if dist[v] == graph.Inf {
				continue
			}
			for _, a := range g.Arcs(v) {
				if nd := graph.AddSat(dist[v], a.Weight); nd < dist[a.Head] {
					dist[a.Head] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func randomGraph(rng *rand.Rand, n, m, maxW int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(rng.Intn(maxW+1)))
	}
	return b.Build()
}

func TestDijkstraMatchesBruteForceAllQueues(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, kind := range []pq.Kind{pq.KindBinaryHeap, pq.KindKHeap, pq.KindFibonacci, pq.KindDial, pq.KindTwoLevel, pq.KindRadix} {
		t.Run(string(kind), func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				n := 2 + rng.Intn(60)
				g := randomGraph(rng, n, rng.Intn(5*n), 30)
				d := NewDijkstra(g, kind)
				s := int32(rng.Intn(n))
				d.Run(s)
				want := bruteForce(g, s)
				for v := int32(0); v < int32(n); v++ {
					if got := d.Dist(v); got != want[v] {
						t.Fatalf("trial %d: dist(%d→%d)=%d, want %d", trial, s, v, got, want[v])
					}
				}
			}
		})
	}
}

func TestDijkstraReuseAcrossSources(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 80, 400, 50)
	d := NewDijkstra(g, pq.KindDial)
	for trial := 0; trial < 10; trial++ {
		s := int32(rng.Intn(80))
		d.Run(s)
		want := bruteForce(g, s)
		for v := int32(0); v < 80; v++ {
			if d.Dist(v) != want[v] {
				t.Fatalf("stale state: dist(%d→%d)=%d, want %d", s, v, d.Dist(v), want[v])
			}
		}
	}
}

func TestDijkstraParentTree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 50, 250, 20)
	d := NewDijkstra(g, pq.KindBinaryHeap)
	s := int32(3)
	d.Run(s)
	for v := int32(0); v < 50; v++ {
		dv := d.Dist(v)
		p := d.Parent(v)
		switch {
		case v == s:
			if p != -1 {
				t.Fatalf("source has parent %d", p)
			}
		case dv == graph.Inf:
			if p != -1 {
				t.Fatalf("unreached vertex %d has parent %d", v, p)
			}
		default:
			w, ok := g.FindArc(p, v)
			if !ok {
				t.Fatalf("parent arc (%d,%d) does not exist", p, v)
			}
			// FindArc returns the min parallel weight; the tree arc weight
			// is exactly dist(v)-dist(p) and min weight cannot exceed it.
			if graph.AddSat(d.Dist(p), w) > dv {
				t.Fatalf("parent arc too long: d(%d)=%d w=%d d(%d)=%d", p, d.Dist(p), w, v, dv)
			}
		}
	}
}

func TestDijkstraPathTo(t *testing.T) {
	g, err := graph.FromArcs(4, [][3]int64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 10}})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(0)
	path := d.PathTo(3)
	want := []int32{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path=%v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path=%v, want %v", path, want)
		}
	}
	if d.PathTo(0)[0] != 0 || len(d.PathTo(0)) != 1 {
		t.Fatalf("path to source=%v", d.PathTo(0))
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g, err := graph.FromArcs(3, [][3]int64{{0, 1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDijkstra(g, pq.KindRadix)
	d.Run(0)
	if d.Dist(2) != graph.Inf {
		t.Fatalf("dist(2)=%d, want Inf", d.Dist(2))
	}
	if d.PathTo(2) != nil {
		t.Fatal("path to unreachable vertex")
	}
	if d.Scanned() != 2 {
		t.Fatalf("scanned=%d, want 2", d.Scanned())
	}
}

func TestRunTargetStopsEarlyButIsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randomGraph(rng, 60, 300, 25)
	d := NewDijkstra(g, pq.KindBinaryHeap)
	full := NewDijkstra(g, pq.KindBinaryHeap)
	for trial := 0; trial < 20; trial++ {
		s, tt := int32(rng.Intn(60)), int32(rng.Intn(60))
		got := d.RunTarget(s, tt)
		full.Run(s)
		if got != full.Dist(tt) {
			t.Fatalf("RunTarget(%d,%d)=%d, want %d", s, tt, got, full.Dist(tt))
		}
	}
}

func TestBFSHops(t *testing.T) {
	g, err := graph.FromArcs(5, [][3]int64{{0, 1, 9}, {1, 2, 9}, {0, 2, 9}, {2, 3, 9}})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBFS(g)
	b.Run(0)
	wantHops := []uint32{0, 1, 1, 2, graph.Inf}
	for v, want := range wantHops {
		if got := b.Hops(int32(v)); got != want {
			t.Fatalf("hops(%d)=%d, want %d", v, got, want)
		}
	}
	if b.Reached() != 4 {
		t.Fatalf("reached=%d, want 4", b.Reached())
	}
	if b.Parent(0) != -1 || b.Parent(4) != -1 {
		t.Fatal("parent of source/unreached should be -1")
	}
	if p := b.Parent(3); p != 2 {
		t.Fatalf("parent(3)=%d, want 2", p)
	}
}

func TestBFSReuse(t *testing.T) {
	g, err := graph.FromArcs(3, [][3]int64{{0, 1, 1}, {1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBFS(g)
	b.Run(0)
	b.Run(2)
	if b.Hops(0) != graph.Inf || b.Hops(2) != 0 {
		t.Fatal("stale labels after rerun")
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(5*n), 40)
		bi := NewBidirectional(g, pq.KindBinaryHeap)
		d := NewDijkstra(g, pq.KindBinaryHeap)
		for q := 0; q < 5; q++ {
			s, tt := int32(rng.Intn(n)), int32(rng.Intn(n))
			got := bi.Query(s, tt)
			d.Run(s)
			if want := d.Dist(tt); got != want {
				t.Fatalf("trial %d: bidi(%d,%d)=%d, want %d", trial, s, tt, got, want)
			}
		}
	}
}

func TestBidirectionalSameSourceTarget(t *testing.T) {
	g, err := graph.FromArcs(2, [][3]int64{{0, 1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	bi := NewBidirectional(g, pq.KindBinaryHeap)
	if d := bi.Query(1, 1); d != 0 {
		t.Fatalf("d(1,1)=%d, want 0", d)
	}
	if d := bi.Query(1, 0); d != graph.Inf {
		t.Fatalf("d(1,0)=%d, want Inf", d)
	}
}

func TestCopyDistances(t *testing.T) {
	g, err := graph.FromArcs(3, [][3]int64{{0, 1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(0)
	buf := d.Distances()
	want := []uint32{0, 4, graph.Inf}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("Distances=%v, want %v", buf, want)
		}
	}
}
