package sssp

import "phast/internal/graph"

// BFS is a reusable breadth-first search. The paper uses BFS as the
// "speed of light" for label-setting algorithms: a linear traversal that
// any NSSP code can at best match (Section I reports Dijkstra with smart
// queues within a factor of three of BFS, and PHAST matching it).
type BFS struct {
	g       *graph.Graph
	hops    []uint32
	parent  []int32
	stamp   []int32
	version int32
	queue   []int32
}

// NewBFS creates a reusable BFS over g.
func NewBFS(g *graph.Graph) *BFS {
	n := g.NumVertices()
	return &BFS{
		g:      g,
		hops:   make([]uint32, n),
		parent: make([]int32, n),
		stamp:  make([]int32, n),
		queue:  make([]int32, 0, n),
	}
}

// Run traverses the graph from s, computing hop counts.
func (b *BFS) Run(s int32) {
	b.version++
	b.queue = b.queue[:0]
	b.hops[s] = 0
	b.parent[s] = -1
	b.stamp[s] = b.version
	b.queue = append(b.queue, s)
	for head := 0; head < len(b.queue); head++ {
		v := b.queue[head]
		hv := b.hops[v]
		for _, a := range b.g.Arcs(v) {
			if b.stamp[a.Head] != b.version {
				b.stamp[a.Head] = b.version
				b.hops[a.Head] = hv + 1
				b.parent[a.Head] = v
				b.queue = append(b.queue, a.Head)
			}
		}
	}
}

// Hops returns the hop count of v from the last Run, or graph.Inf if
// unreached.
func (b *BFS) Hops(v int32) uint32 {
	if b.stamp[v] != b.version {
		return graph.Inf
	}
	return b.hops[v]
}

// Parent returns v's BFS-tree parent, or -1.
func (b *BFS) Parent(v int32) int32 {
	if b.stamp[v] != b.version {
		return -1
	}
	return b.parent[v]
}

// Reached returns the number of vertices reached by the last Run.
func (b *BFS) Reached() int { return len(b.queue) }
