package machine

import (
	"testing"
	"time"
)

func TestCatalogueShape(t *testing.T) {
	cat := Catalogue()
	if len(cat) != 5 {
		t.Fatalf("catalogue has %d machines, want 5 (Table IV)", len(cat))
	}
	names := map[string]bool{}
	for _, m := range cat {
		if m.ClockGHz <= 0 || m.Cores < m.CPUs || m.BandwidthGBs <= 0 || m.Watts <= 0 {
			t.Fatalf("implausible spec: %+v", m)
		}
		names[m.Name] = true
	}
	for _, want := range []string{"M2-1", "M2-4", "M4-12", "M1-4", "M2-6"} {
		if !names[want] {
			t.Fatalf("missing machine %s", want)
		}
	}
	ref := Reference()
	if ref.Name != "M1-4" || ref.ClockGHz != 2.67 {
		t.Fatalf("reference is not the paper's M1-4: %+v", ref)
	}
}

func TestScaleMonotonicity(t *testing.T) {
	ref := Reference()
	var m26 Spec
	for _, m := range Catalogue() {
		if m.Name == "M2-6" {
			m26 = m
		}
	}
	base := 100 * time.Millisecond
	// The higher-bandwidth Xeon machine must run bandwidth-bound code
	// faster than the reference.
	if got := Scale(base, ref, m26, BandwidthBound); got >= base {
		t.Fatalf("M2-6 bandwidth-scaled %v, want < %v", got, base)
	}
	// Scaling to itself is identity for bandwidth-bound work.
	if got := Scale(base, ref, ref, BandwidthBound); got != base {
		t.Fatalf("self-scaling changed the time: %v", got)
	}
	if got := Scale(base, ref, m26, LatencyBound); got >= base {
		t.Fatalf("faster-clocked machine modeled slower: %v", got)
	}
}

func TestScaleParallel(t *testing.T) {
	ref := Reference()
	single := 100 * time.Millisecond
	p4 := ScaleParallel(single, ref, 4, true, BandwidthBound)
	if p4 >= single || p4 <= single/8 {
		t.Fatalf("4-core scaling implausible: %v", p4)
	}
	// Requesting more cores than the machine has clamps.
	if got := ScaleParallel(single, ref, 99, true, BandwidthBound); got != p4 {
		t.Fatalf("core clamping broken: %v vs %v", got, p4)
	}
	// Unpinned on a multi-socket machine is slower than pinned.
	var m412 Spec
	for _, m := range Catalogue() {
		if m.Name == "M4-12" {
			m412 = m
		}
	}
	pinned := ScaleParallel(single, m412, 48, true, BandwidthBound)
	free := ScaleParallel(single, m412, 48, false, BandwidthBound)
	if free <= pinned {
		t.Fatalf("unpinned (%v) not slower than pinned (%v) on NUMA", free, pinned)
	}
	if got := ScaleParallel(single, ref, 0, true, LatencyBound); got != single {
		t.Fatalf("cores<1 not clamped to 1: %v", got)
	}
}

func TestScaleSelfIdentityLatency(t *testing.T) {
	// The latency model's clock and memory terms are normalized so that
	// scaling a measurement onto the same machine is the identity.
	ref := Reference()
	base := 250 * time.Millisecond
	if got := Scale(base, ref, ref, LatencyBound); got != base {
		t.Fatalf("self-scaling latency-bound: %v, want %v", got, base)
	}
}

func TestBandwidthSaturationCap(t *testing.T) {
	// A single-node machine cannot exceed ~4.5x bandwidth-bound speedup
	// no matter the core count.
	m := Reference()
	m.Cores = 64
	single := 100 * time.Millisecond
	got := ScaleParallel(single, m, 64, true, BandwidthBound)
	if float64(single)/float64(got) > 4.6 {
		t.Fatalf("bandwidth-bound speedup %.1f exceeds the node saturation cap",
			float64(single)/float64(got))
	}
	// Latency-bound work is not capped that way.
	lat := ScaleParallel(single, m, 64, true, LatencyBound)
	if float64(single)/float64(lat) < 10 {
		t.Fatalf("latency-bound speedup %.1f unexpectedly capped", float64(single)/float64(lat))
	}
}

func TestEnergyJoules(t *testing.T) {
	if j := EnergyJoules(100, 2*time.Second); j != 200 {
		t.Fatalf("energy=%f, want 200", j)
	}
}
