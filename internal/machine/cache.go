package machine

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// This file detects the local cache hierarchy, the input to the
// cache-conscious sweep chunking: instead of a fixed position grain,
// chunks are cut so each one's stream span fits comfortably in a
// private cache level, keeping a worker's chunk resident while it scans
// (Luxen & Schieferdecker size CH preprocessing regions the same way).
// Detection reads the Linux sysfs cpu cache topology; on other
// platforms, or inside containers that hide sysfs, a conservative
// default stands in. Users override either through Options.ChunkBytes
// or the PHAST_CHUNK_BYTES environment variable, both handled by the
// engine — this file only answers "how big is the cache".

// CacheInfo describes the data cache levels relevant to chunk sizing,
// in bytes per core (private levels) or per package (shared LLC).
type CacheInfo struct {
	L2Bytes  int64 // per-core private L2 (0 if unknown)
	LLCBytes int64 // last-level cache (0 if unknown)
	Detected bool  // true when read from the running machine
}

// DefaultL2Bytes is the stand-in when detection fails: 256 KiB is the
// smallest private L2 of the paper's machine era and errs small, which
// only makes chunks finer, never thrashes.
const DefaultL2Bytes = 256 << 10

var (
	cacheOnce sync.Once
	cacheInfo CacheInfo
)

// LocalCache returns the detected cache hierarchy of the running
// machine, probing sysfs once and caching the answer. When nothing can
// be detected (non-Linux, masked sysfs) it returns the conservative
// defaults with Detected=false.
func LocalCache() CacheInfo {
	cacheOnce.Do(func() { cacheInfo = detectCache("/sys/devices/system/cpu/cpu0/cache") })
	return cacheInfo
}

// detectCache reads the index*/ entries of one CPU's sysfs cache
// directory. Split into a helper so tests can point it at a fixture
// tree.
func detectCache(dir string) CacheInfo {
	info := CacheInfo{L2Bytes: DefaultL2Bytes}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return info
	}
	maxLevel := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		base := dir + "/" + e.Name()
		typ := readTrimmed(base + "/type")
		if typ == "Instruction" {
			continue
		}
		level, err1 := strconv.Atoi(readTrimmed(base + "/level"))
		size, err2 := parseCacheSize(readTrimmed(base + "/size"))
		if err1 != nil || err2 != nil || size <= 0 {
			continue
		}
		if level == 2 {
			info.L2Bytes = size
			info.Detected = true
		}
		if level > maxLevel {
			maxLevel = level
			info.LLCBytes = size
			info.Detected = true
		}
	}
	return info
}

func readTrimmed(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// parseCacheSize decodes sysfs cache size strings like "32K", "1024K",
// "8M" or a bare byte count.
func parseCacheSize(s string) (int64, error) {
	if s == "" {
		return 0, strconv.ErrSyntax
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'M', 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'G', 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// Chunk byte budgets derived from the cache hierarchy. The budget
// charges the chunk's stream span only — the label array lines the scan
// also touches are roughly proportional, so halving the private L2
// leaves room for both plus the completion-frontier metadata.
const (
	// MinChunkBytes floors the budget: chunks below this spend more
	// time in the scheduler's claim loop than in the scan.
	MinChunkBytes = 64 << 10
	// MaxChunkBytes caps the budget: chunks above this defeat the
	// dependency-bounded overlap that hides the level barrier.
	MaxChunkBytes = 8 << 20
)

// SweepChunkBytes returns the byte budget one sweep chunk should span:
// half the private L2 when detected, clamped to
// [MinChunkBytes, MaxChunkBytes]. The PHAST_CHUNK_BYTES environment
// variable, when set to a positive integer, overrides detection (but
// not the clamp). A set-but-malformed override — unparseable, zero, or
// negative — is an error, not a silent fallback: the variable exists to
// pin sweep behavior, and an operator who typo'd it should find out at
// engine construction, not from a mysteriously detected budget.
func SweepChunkBytes() (int, error) {
	if s := os.Getenv("PHAST_CHUNK_BYTES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("machine: PHAST_CHUNK_BYTES=%q is not an integer: %v", s, err)
		}
		if v <= 0 {
			return 0, fmt.Errorf("machine: PHAST_CHUNK_BYTES=%q must be a positive byte count", s)
		}
		return clampChunkBytes(v), nil
	}
	c := LocalCache()
	return clampChunkBytes(int(c.L2Bytes / 2)), nil
}

func clampChunkBytes(b int) int {
	if b < MinChunkBytes {
		return MinChunkBytes
	}
	if b > MaxChunkBytes {
		return MaxChunkBytes
	}
	return b
}
