// Package machine carries the hardware catalogue of Tables IV–VI: the
// five CPU machines the paper benchmarks, their full-load power draw,
// and a first-order performance model that scales a measurement taken on
// the local reference host onto each catalogued machine. The paper's
// table omits nothing, but the provided text lost the numeric cells of
// Table IV; values marked "reconstructed" below are filled from the
// paper's prose (M1-4 is the Core-i7 920 at 2.67 GHz; the Xeon machine
// sustains 32 GB/s; M4-12 draws 747 W, M2-6 332 W, bare M1-4 163 W) and
// from the public specifications of the named CPU generations.
package machine

import "time"

// Spec describes one machine of Table IV.
type Spec struct {
	Name         string
	Brand        string
	CPUType      string
	ClockGHz     float64
	CPUs         int // column P
	Cores        int // column c: total physical cores
	MemType      string
	MemGB        int
	BandwidthGBs float64 // per-NUMA-node local bandwidth
	NUMANodes    int     // column B
	Watts        float64 // full-load system power (Section VIII-F)
}

// Reference returns the paper's default workstation M1-4 (Intel
// Core-i7 920), the machine all local measurements are anchored to.
func Reference() Spec {
	return Spec{
		Name: "M1-4", Brand: "Intel", CPUType: "Core-i7 920",
		ClockGHz: 2.67, CPUs: 1, Cores: 4,
		MemType: "DDR3-1066", MemGB: 12, BandwidthGBs: 25.6, NUMANodes: 1,
		Watts: 163,
	}
}

// Catalogue returns all machines of Table IV in the paper's order.
// M2-1, M2-4 and M4-12 carry reconstructed values (see package comment).
func Catalogue() []Spec {
	return []Spec{
		{Name: "M2-1", Brand: "AMD", CPUType: "Opteron 250",
			ClockGHz: 2.4, CPUs: 2, Cores: 2,
			MemType: "DDR-333", MemGB: 8, BandwidthGBs: 5.3, NUMANodes: 2, Watts: 280},
		{Name: "M2-4", Brand: "AMD", CPUType: "Opteron 2350",
			ClockGHz: 2.0, CPUs: 2, Cores: 8,
			MemType: "DDR2-667", MemGB: 16, BandwidthGBs: 10.7, NUMANodes: 2, Watts: 320},
		{Name: "M4-12", Brand: "AMD", CPUType: "Opteron 6168",
			ClockGHz: 1.9, CPUs: 4, Cores: 48,
			MemType: "DDR3-1333", MemGB: 128, BandwidthGBs: 21.3, NUMANodes: 8, Watts: 747},
		Reference(),
		{Name: "M2-6", Brand: "Intel", CPUType: "Xeon X5680",
			ClockGHz: 3.33, CPUs: 2, Cores: 12,
			MemType: "DDR3-1333", MemGB: 96, BandwidthGBs: 32.0, NUMANodes: 2, Watts: 332},
	}
}

// Workload selects which resource dominates a measurement when scaling
// it across machines.
type Workload int

const (
	// LatencyBound workloads (Dijkstra: pointer chasing, cache misses)
	// scale with core clock and memory generation.
	LatencyBound Workload = iota
	// BandwidthBound workloads (the PHAST sweep) scale with sustained
	// local memory bandwidth.
	BandwidthBound
)

// Scale projects a time measured on `from` onto machine `to` for a
// single-threaded run of the given workload. It is a first-order model
// (documented as such in EXPERIMENTS.md), not a measurement.
func Scale(t time.Duration, from, to Spec, w Workload) time.Duration {
	var f float64
	switch w {
	case BandwidthBound:
		f = from.BandwidthGBs / to.BandwidthGBs
	default:
		// Clock ratio with a mild memory-generation term: latency-bound
		// code still gains somewhat from a faster memory system.
		f = (from.ClockGHz / to.ClockGHz) * 0.8 * (1 + 0.25*from.BandwidthGBs/to.BandwidthGBs)
	}
	return time.Duration(float64(t) * f)
}

// ScaleParallel projects a per-tree time for one-tree-per-core execution
// on `cores` cores: near-linear scaling damped by bandwidth sharing
// between the cores of a NUMA node (PHAST observes ~0.85–0.95 efficiency
// pinned; unpinned multi-socket machines collapse to roughly the cores
// of one node).
func ScaleParallel(single time.Duration, m Spec, cores int, pinned bool, w Workload) time.Duration {
	if cores < 1 {
		cores = 1
	}
	if cores > m.Cores {
		cores = m.Cores
	}
	eff := 0.92
	if w == BandwidthBound {
		eff = 0.85
	}
	speedup := 1 + eff*float64(cores-1)
	if w == BandwidthBound {
		// A memory node's bandwidth saturates after a few cores; beyond
		// that, extra cores add nothing to a bandwidth-bound sweep. The
		// paper's M4-12 measures 34x from 48 cores — the 8 nodes, not the
		// cores, set the ceiling.
		const coresToSaturateNode = 4.5
		if cap := float64(m.NUMANodes) * coresToSaturateNode; speedup > cap {
			speedup = cap
		}
	}
	if !pinned && m.NUMANodes > 1 {
		// Without pinning, threads migrate off their memory node; the
		// paper measures speedups below the core count of a single node.
		perNode := float64(m.Cores) / float64(m.NUMANodes)
		if speedup > perNode {
			speedup = perNode * 0.9
		}
	}
	return time.Duration(float64(single) / speedup)
}

// EnergyJoules converts full-load power over a duration into joules.
func EnergyJoules(watts float64, t time.Duration) float64 {
	return watts * t.Seconds()
}
