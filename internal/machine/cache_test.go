package machine

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCacheIndex(t *testing.T, dir, name, typ, level, size string) {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.MkdirAll(p, 0o755); err != nil {
		t.Fatal(err)
	}
	for f, v := range map[string]string{"type": typ, "level": level, "size": size} {
		if err := os.WriteFile(filepath.Join(p, f), []byte(v+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDetectCacheFixture(t *testing.T) {
	dir := t.TempDir()
	writeCacheIndex(t, dir, "index0", "Data", "1", "32K")
	writeCacheIndex(t, dir, "index1", "Instruction", "1", "32K")
	writeCacheIndex(t, dir, "index2", "Unified", "2", "1024K")
	writeCacheIndex(t, dir, "index3", "Unified", "3", "8M")
	info := detectCache(dir)
	if !info.Detected {
		t.Fatal("fixture tree not detected")
	}
	if info.L2Bytes != 1024<<10 {
		t.Fatalf("L2Bytes=%d, want %d", info.L2Bytes, 1024<<10)
	}
	if info.LLCBytes != 8<<20 {
		t.Fatalf("LLCBytes=%d, want %d", info.LLCBytes, 8<<20)
	}
}

func TestDetectCacheMissing(t *testing.T) {
	info := detectCache(filepath.Join(t.TempDir(), "nope"))
	if info.Detected {
		t.Fatal("empty tree reported as detected")
	}
	if info.L2Bytes != DefaultL2Bytes {
		t.Fatalf("fallback L2Bytes=%d, want %d", info.L2Bytes, DefaultL2Bytes)
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int64{
		"32K":   32 << 10,
		"1024K": 1 << 20,
		"8M":    8 << 20,
		"1G":    1 << 30,
		"4096":  4096,
		"512k":  512 << 10,
	}
	for s, want := range cases {
		got, err := parseCacheSize(s)
		if err != nil || got != want {
			t.Fatalf("parseCacheSize(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "K", "x3", "3KB"} {
		if _, err := parseCacheSize(bad); err == nil {
			t.Fatalf("parseCacheSize(%q) accepted", bad)
		}
	}
}

func TestSweepChunkBytesClampAndOverride(t *testing.T) {
	t.Setenv("PHAST_CHUNK_BYTES", "1000000")
	if got, err := SweepChunkBytes(); err != nil || got != 1000000 {
		t.Fatalf("override: got %d, %v; want 1000000", got, err)
	}
	t.Setenv("PHAST_CHUNK_BYTES", "1")
	if got, err := SweepChunkBytes(); err != nil || got != MinChunkBytes {
		t.Fatalf("floor: got %d, %v; want %d", got, err, MinChunkBytes)
	}
	t.Setenv("PHAST_CHUNK_BYTES", "999999999")
	if got, err := SweepChunkBytes(); err != nil || got != MaxChunkBytes {
		t.Fatalf("cap: got %d, %v; want %d", got, err, MaxChunkBytes)
	}
	t.Setenv("PHAST_CHUNK_BYTES", "")
	got, err := SweepChunkBytes()
	if err != nil {
		t.Fatalf("unset override: %v", err)
	}
	if got < MinChunkBytes || got > MaxChunkBytes {
		t.Fatalf("detected budget %d escapes [%d,%d]", got, MinChunkBytes, MaxChunkBytes)
	}
}

// TestSweepChunkBytesRejectsMalformed pins the failure mode of a bad
// PHAST_CHUNK_BYTES: a set-but-broken override is an error, never a
// silent fall back to detection.
func TestSweepChunkBytesRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"abc", "64K", "1.5", "0", "-4096", " 65536"} {
		t.Setenv("PHAST_CHUNK_BYTES", bad)
		if got, err := SweepChunkBytes(); err == nil {
			t.Fatalf("PHAST_CHUNK_BYTES=%q accepted as %d; want error", bad, got)
		}
	}
}
