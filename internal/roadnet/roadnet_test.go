package roadnet

import (
	"testing"

	"phast/internal/graph"
)

func TestGenerateBasicShape(t *testing.T) {
	net, err := Generate(Params{Width: 64, Height: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	n := g.NumVertices()
	if n < 64*48*8/10 || n > 64*48 {
		t.Fatalf("n=%d, expected close to %d", n, 64*48)
	}
	avg := graph.AvgDegree(g)
	if avg < 2.5 || avg > 4.0 {
		t.Fatalf("average degree %.2f outside road-network range", avg)
	}
	if len(net.Coords) != n {
		t.Fatalf("coords length %d != n %d", len(net.Coords), n)
	}
	if net.ClassCounts[Highway] == 0 || net.ClassCounts[Arterial] == 0 || net.ClassCounts[Local] == 0 {
		t.Fatalf("missing road classes: %v", net.ClassCounts)
	}
	// Largest component extraction leaves one weak component.
	if _, count := graph.ComponentLabels(g); count != 1 {
		t.Fatalf("network has %d components, want 1", count)
	}
}

func TestGenerateBidirected(t *testing.T) {
	net, err := Generate(Params{Width: 16, Height: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, a := range g.Arcs(v) {
			w, ok := g.FindArc(a.Head, v)
			if !ok || w != a.Weight {
				t.Fatalf("arc (%d,%d,%d) has no symmetric partner", v, a.Head, a.Weight)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Params{Width: 32, Height: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{Width: 32, Height: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("same seed produced different graphs")
	}
	c, err := Generate(Params{Width: 32, Height: 32, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Equal(c.Graph) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestMetricsDiffer(t *testing.T) {
	timeNet, err := Generate(Params{Width: 24, Height: 24, Seed: 3, Metric: TravelTime})
	if err != nil {
		t.Fatal(err)
	}
	distNet, err := Generate(Params{Width: 24, Height: 24, Seed: 3, Metric: TravelDistance})
	if err != nil {
		t.Fatal(err)
	}
	// Same topology, different weights.
	if timeNet.Graph.NumArcs() != distNet.Graph.NumArcs() {
		t.Fatalf("metrics changed topology: %d vs %d arcs",
			timeNet.Graph.NumArcs(), distNet.Graph.NumArcs())
	}
	same := true
	ta, da := timeNet.Graph.ArcList(), distNet.Graph.ArcList()
	for i := range ta {
		if ta[i].Weight != da[i].Weight {
			same = false
			break
		}
	}
	if same {
		t.Fatal("time and distance metrics produced identical weights")
	}
}

func TestHighwayEdgesAreFasterThanLocal(t *testing.T) {
	// With the time metric, a trip along a highway row must beat the same
	// geometric distance on local streets by roughly the speed ratio.
	net, err := Generate(Params{Width: 96, Height: 96, Seed: 4, DropLocalProb: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if net.ClassCounts[Highway] == 0 {
		t.Fatal("no highway edges generated")
	}
	// Speed encoding sanity: a 1km local edge takes ~120 ds, highway ~30 ds.
	g := net.Graph
	minW, maxW := graph.MaxArcWeight(g), uint32(0)
	for _, a := range g.ArcList() {
		if a.Weight < minW {
			minW = a.Weight
		}
		if a.Weight > maxW {
			maxW = a.Weight
		}
	}
	if maxW < 3*minW {
		t.Fatalf("weight spread too small for a 3-tier hierarchy: [%d,%d]", minW, maxW)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Params{Width: 1, Height: 5}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
	if _, err := Generate(Params{Width: 1 << 16, Height: 1 << 16}); err == nil {
		t.Fatal("oversized grid accepted")
	}
}

func TestPresets(t *testing.T) {
	for _, preset := range Presets {
		p, err := PresetParams(preset, TravelTime)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if p.Width < 2 || p.Height < 2 {
			t.Fatalf("%s: bad params %+v", preset, p)
		}
	}
	if _, err := PresetParams("nope", TravelTime); err == nil {
		t.Fatal("unknown preset accepted")
	}
	net, err := GeneratePreset(PresetEuropeXS, TravelTime)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.NumVertices() < 3000 {
		t.Fatalf("europe-xs suspiciously small: %d", net.Graph.NumVertices())
	}
}

func TestMetricString(t *testing.T) {
	if TravelTime.String() != "time" || TravelDistance.String() != "distance" {
		t.Fatal("metric strings wrong")
	}
}

func TestUSACounterpartMapping(t *testing.T) {
	pairs := map[Preset]Preset{
		PresetEuropeXS: PresetUSAXS,
		PresetEuropeS:  PresetUSAS,
		PresetEuropeM:  PresetUSAM,
		PresetEuropeL:  PresetUSAL,
	}
	for eu, us := range pairs {
		if got := USACounterpart(eu); got != us {
			t.Fatalf("USACounterpart(%s)=%s, want %s", eu, got, us)
		}
	}
	// Non-Europe presets map to themselves.
	if got := USACounterpart(PresetUSAS); got != PresetUSAS {
		t.Fatalf("USACounterpart(usa-s)=%s", got)
	}
}

func TestOneWayStreets(t *testing.T) {
	net, err := Generate(Params{Width: 24, Height: 24, Seed: 9, OneWayProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	// Some arcs must lack a symmetric partner now.
	asym := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, a := range g.Arcs(v) {
			if _, ok := g.FindArc(a.Head, v); !ok {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Fatal("OneWayProb produced no one-way arcs")
	}
	// The kept component must be strongly connected: every vertex
	// reaches vertex 0 and is reached from it.
	if _, count := graph.SCCLabels(g); count != 1 {
		t.Fatalf("network has %d SCCs, want 1", count)
	}
}

func TestOneWayDeterministic(t *testing.T) {
	a, err := Generate(Params{Width: 16, Height: 16, Seed: 3, OneWayProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{Width: 16, Height: 16, Seed: 3, OneWayProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("one-way generation not deterministic")
	}
}
