// Package roadnet generates synthetic road networks that stand in for
// the proprietary benchmark instances of the paper (PTV Europe, 18M
// vertices / 42M arcs, and TIGER USA, 24M / 58M; see DESIGN.md).
//
// The generator produces a jittered grid with a three-tier speed
// hierarchy — local streets everywhere, arterials every few cells, and
// sparse highways — plus random dropping of local edges for
// irregularity. This reproduces the structural properties PHAST
// exploits: low highway dimension (long shortest paths concentrate on
// the few fast edges, so CH hierarchies are shallow, ~100–400 levels
// with geometric level-size decay), small average degree (~2.3 arcs per
// vertex after dropping), and strong locality. Both metrics of Section
// VIII-G are supported: travel times (deciseconds) and travel distances
// (meters).
package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"phast/internal/graph"
)

// Metric selects the arc length semantics.
type Metric int

const (
	// TravelTime weights arcs with traversal time in tenths of seconds
	// (the DIMACS convention); fast roads are shortcuts.
	TravelTime Metric = iota
	// TravelDistance weights arcs with their geometric length in meters;
	// the hierarchy is much weaker, as in the paper (410 levels vs 140).
	TravelDistance
)

func (m Metric) String() string {
	if m == TravelDistance {
		return "distance"
	}
	return "time"
}

// RoadClass is the tier of a road edge.
type RoadClass uint8

const (
	Local RoadClass = iota
	Arterial
	Highway
)

// speedKMH maps road classes to speeds.
var speedKMH = [3]float64{30, 70, 120}

// Params configures generation. The zero value is invalid; use a preset
// or fill Width/Height at minimum (DefaultizeParams fills the rest).
type Params struct {
	// Width and Height are the grid dimensions; the network has about
	// Width*Height vertices (minus dropped fragments).
	Width, Height int
	// CellMeters is the grid spacing (default 1000m).
	CellMeters float64
	// JitterFrac displaces each vertex by up to this fraction of a cell
	// in each axis (default 0.35).
	JitterFrac float64
	// ArterialEvery: rows/columns divisible by this carry arterials
	// (default 8).
	ArterialEvery int
	// HighwayEvery: rows/columns divisible by this carry highways
	// (default 32). Must be a multiple of ArterialEvery to nest tiers.
	HighwayEvery int
	// DropLocalProb removes this fraction of local edges (default 0.15).
	DropLocalProb float64
	// OneWayProb turns this fraction of the surviving local edges into
	// one-way streets (a single arc in a random direction), as in real
	// city grids; the largest strongly connected component is kept so
	// every query stays answerable. Default 0 (fully bidirected).
	OneWayProb float64
	// Metric selects time or distance weights.
	Metric Metric
	// Seed makes generation deterministic.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.CellMeters == 0 {
		p.CellMeters = 1000
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.35
	}
	if p.ArterialEvery == 0 {
		p.ArterialEvery = 8
	}
	if p.HighwayEvery == 0 {
		p.HighwayEvery = 32
	}
	if p.DropLocalProb == 0 {
		p.DropLocalProb = 0.15
	}
	return p
}

// Coord is a planar vertex position in meters.
type Coord struct{ X, Y float64 }

// Network is a generated road network: the graph (largest connected
// component, bidirected), vertex coordinates, and provenance.
type Network struct {
	Graph  *graph.Graph
	Coords []Coord
	Params Params
	// ClassCounts counts generated undirected edges per road class
	// (before component extraction).
	ClassCounts [3]int
}

// Generate builds a network from p. It returns an error for degenerate
// dimensions.
func Generate(p Params) (*Network, error) {
	p = p.withDefaults()
	if p.Width < 2 || p.Height < 2 {
		return nil, fmt.Errorf("roadnet: grid %dx%d too small", p.Width, p.Height)
	}
	if p.Width*p.Height > (1<<31)/4 {
		return nil, fmt.Errorf("roadnet: grid %dx%d exceeds int32 vertex IDs", p.Width, p.Height)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	w, h := p.Width, p.Height
	n := w * h
	coords := make([]Coord, n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			jx := (rng.Float64()*2 - 1) * p.JitterFrac * p.CellMeters
			jy := (rng.Float64()*2 - 1) * p.JitterFrac * p.CellMeters
			coords[y*w+x] = Coord{X: float64(x)*p.CellMeters + jx, Y: float64(y)*p.CellMeters + jy}
		}
	}
	id := func(x, y int) int32 { return int32(y*w + x) }
	lineClass := func(i int) RoadClass {
		switch {
		case i%p.HighwayEvery == 0:
			return Highway
		case i%p.ArterialEvery == 0:
			return Arterial
		default:
			return Local
		}
	}
	b := graph.NewBuilder(n)
	var classCounts [3]int
	addEdge := func(u, v int32, class RoadClass) {
		if class == Local && rng.Float64() < p.DropLocalProb {
			return
		}
		du := coords[u]
		dv := coords[v]
		length := math.Hypot(du.X-dv.X, du.Y-dv.Y)
		if length < 1 {
			length = 1
		}
		var weight uint32
		if p.Metric == TravelDistance {
			weight = uint32(math.Round(length))
		} else {
			// time in tenths of seconds: length[m] / (speed[km/h]/3.6) * 10
			secs := length / (speedKMH[class] / 3.6)
			weight = uint32(math.Round(secs * 10))
			if weight == 0 {
				weight = 1
			}
		}
		if class == Local && p.OneWayProb > 0 && rng.Float64() < p.OneWayProb {
			if rng.Intn(2) == 0 {
				u, v = v, u
			}
			b.MustAddArc(u, v, weight)
		} else {
			b.MustAddArc(u, v, weight)
			b.MustAddArc(v, u, weight)
		}
		classCounts[class]++
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				addEdge(id(x, y), id(x+1, y), lineClass(y))
			}
			if y+1 < h {
				addEdge(id(x, y), id(x, y+1), lineClass(x))
			}
		}
	}
	g := b.Build()
	var newToOld []int32
	var sub *graph.Graph
	if p.OneWayProb > 0 {
		// One-way streets break symmetry: only mutual reachability
		// guarantees answerable queries.
		sub, _, newToOld = graph.LargestSCC(g)
	} else {
		sub, _, newToOld = graph.LargestComponent(g)
	}
	subCoords := make([]Coord, sub.NumVertices())
	for nw, old := range newToOld {
		subCoords[nw] = coords[old]
	}
	return &Network{Graph: sub, Coords: subCoords, Params: p, ClassCounts: classCounts}, nil
}

// Preset names a ready-made instance family.
type Preset string

const (
	// PresetEuropeXS..XL scale the Europe-like instance (denser arterial
	// grid, like the compact European road fabric).
	PresetEuropeXS Preset = "europe-xs" // ~4k vertices
	PresetEuropeS  Preset = "europe-s"  // ~16k vertices
	PresetEuropeM  Preset = "europe-m"  // ~66k vertices
	PresetEuropeL  Preset = "europe-l"  // ~262k vertices
	// PresetUSA mirrors the TIGER instance: ~1/3 more vertices than the
	// Europe instance of the same tier and a sparser fast-road fabric.
	PresetUSAXS Preset = "usa-xs" // ~5k vertices
	PresetUSAS  Preset = "usa-s"  // ~21k vertices
	PresetUSAM  Preset = "usa-m"  // ~87k vertices
	PresetUSAL  Preset = "usa-l"  // ~350k vertices
)

// Presets lists all presets.
var Presets = []Preset{
	PresetEuropeXS, PresetEuropeS, PresetEuropeM, PresetEuropeL,
	PresetUSAXS, PresetUSAS, PresetUSAM, PresetUSAL,
}

// USACounterpart returns the USA preset of the same size tier as the
// given Europe preset (Table VII pairs the two continents per tier).
func USACounterpart(p Preset) Preset {
	switch p {
	case PresetEuropeXS:
		return PresetUSAXS
	case PresetEuropeS:
		return PresetUSAS
	case PresetEuropeM:
		return PresetUSAM
	case PresetEuropeL:
		return PresetUSAL
	default:
		return p
	}
}

// PresetParams returns the generation parameters of a preset with the
// given metric. Unknown presets return an error.
func PresetParams(name Preset, metric Metric) (Params, error) {
	base := Params{Metric: metric, Seed: 20110516} // IPDPS 2011 anchor seed
	switch name {
	case PresetEuropeXS:
		base.Width, base.Height = 64, 64
	case PresetEuropeS:
		base.Width, base.Height = 128, 128
	case PresetEuropeM:
		base.Width, base.Height = 256, 256
	case PresetEuropeL:
		base.Width, base.Height = 512, 512
	case PresetUSAXS:
		base.Width, base.Height, base.ArterialEvery, base.HighwayEvery, base.Seed = 80, 66, 10, 40, 19900101
	case PresetUSAS:
		base.Width, base.Height, base.ArterialEvery, base.HighwayEvery, base.Seed = 160, 132, 10, 40, 19900101
	case PresetUSAM:
		base.Width, base.Height, base.ArterialEvery, base.HighwayEvery, base.Seed = 320, 272, 10, 40, 19900101
	case PresetUSAL:
		base.Width, base.Height, base.ArterialEvery, base.HighwayEvery, base.Seed = 640, 546, 10, 40, 19900101
	default:
		return Params{}, fmt.Errorf("roadnet: unknown preset %q", name)
	}
	return base, nil
}

// GeneratePreset is PresetParams followed by Generate.
func GeneratePreset(name Preset, metric Metric) (*Network, error) {
	p, err := PresetParams(name, metric)
	if err != nil {
		return nil, err
	}
	return Generate(p)
}
