// Package graph provides the compact adjacency-array (CSR) digraph
// representation used throughout the PHAST code base.
//
// The layout follows Section IV-A of the paper exactly: one array,
// arclist, holds all arcs sorted by tail ID so that the outgoing arcs of
// a vertex are consecutive in memory; a second array, first, indexed by
// vertex ID, holds the position in arclist of the first outgoing arc of
// each vertex, with a sentinel at first[n]. The transpose (incoming-arc)
// representation used by the PHAST sweep stores the tail of each arc in
// the Head field and is built by Transpose.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Inf is the distance label of an unreached vertex. Arithmetic on labels
// must either skip Inf tails or use saturating addition (see AddSat).
const Inf uint32 = math.MaxUint32

// MaxWeight is the largest arc weight accepted by the builder. Keeping
// weights well below Inf guarantees that a shortest path of up to 2^11
// arcs cannot overflow a 64-bit accumulator and that saturating adds
// detect overflow correctly.
const MaxWeight uint32 = 1 << 30

// Arc is one outgoing arc: the ID of its head vertex and its length.
// In a transposed graph, Head holds the tail instead (the paper stores
// exactly this two-field structure in both directions).
type Arc struct {
	Head   int32
	Weight uint32
}

// Graph is an immutable directed graph with non-negative integer arc
// lengths in adjacency-array form. The zero value is an empty graph.
type Graph struct {
	first []int32 // len n+1; first[v] indexes the first arc of v in arcs
	arcs  []Arc   // len m; sorted by tail
}

// NumVertices returns n.
func (g *Graph) NumVertices() int { return len(g.first) - 1 }

// NumArcs returns m.
func (g *Graph) NumArcs() int { return len(g.arcs) }

// OutDegree returns the number of arcs leaving v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.first[v+1] - g.first[v])
}

// Arcs returns the outgoing arcs of v as a shared sub-slice of the arc
// list. Callers must not modify it.
func (g *Graph) Arcs(v int32) []Arc {
	return g.arcs[g.first[v]:g.first[v+1]]
}

// FirstOut exposes the first array (length n+1). Callers must not modify
// it; it is shared to let performance-critical sweeps and the memory
// lower-bound test iterate without an indirect call per vertex. In a
// snapshot-restored graph it aliases the mapped file.
//
//phast:readonly
func (g *Graph) FirstOut() []int32 { return g.first }

// ArcList exposes the raw arc array (length m), sorted by tail. Callers
// must not modify it; in a snapshot-restored graph it aliases the
// mapped file.
//
//phast:readonly
func (g *Graph) ArcList() []Arc { return g.arcs }

// Transpose returns the reverse graph: for every arc (u,v,w) of g the
// result has an arc (v,u,w). Applied to an ordinary graph it yields the
// incoming-arc representation the PHAST linear sweep scans.
func (g *Graph) Transpose() *Graph {
	n := g.NumVertices()
	first := make([]int32, n+1)
	for _, a := range g.arcs {
		first[a.Head+1]++
	}
	for v := 0; v < n; v++ {
		first[v+1] += first[v]
	}
	arcs := make([]Arc, len(g.arcs))
	next := make([]int32, n)
	copy(next, first[:n])
	for u := int32(0); u < int32(n); u++ {
		for _, a := range g.arcs[g.first[u]:g.first[u+1]] {
			arcs[next[a.Head]] = Arc{Head: u, Weight: a.Weight}
			next[a.Head]++
		}
	}
	return &Graph{first: first, arcs: arcs}
}

// Permute relabels the graph: vertex v becomes perm[v]. perm must be a
// permutation of 0..n-1. Arcs keep their weights; the arc order within a
// vertex follows the order of the old adjacency lists of the pre-images.
func (g *Graph) Permute(perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation has length %d, want %d", len(perm), n)
	}
	inv := make([]int32, n)
	seen := make([]bool, n)
	for v, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation at index %d", v)
		}
		seen[p] = true
		inv[p] = int32(v)
	}
	first := make([]int32, n+1)
	for newV := 0; newV < n; newV++ {
		old := inv[newV]
		first[newV+1] = first[newV] + int32(g.OutDegree(old))
	}
	arcs := make([]Arc, len(g.arcs))
	for newV := 0; newV < n; newV++ {
		old := inv[newV]
		dst := arcs[first[newV]:first[newV+1]]
		src := g.Arcs(old)
		for i, a := range src {
			dst[i] = Arc{Head: perm[a.Head], Weight: a.Weight}
		}
	}
	return &Graph{first: first, arcs: arcs}, nil
}

// WithWeights returns a graph with g's exact adjacency structure but
// the i-th arc (in ArcList order) carrying weights[i]. The first array
// is shared with g — it is immutable — and only the arc array is
// copied. Unlike Builder.AddArc, no MaxWeight bound is enforced: metric
// customization legitimately produces Inf (closed arcs, shortcuts whose
// every unpacking is closed) and saturated path sums above MaxWeight.
// Callers validating user-supplied metrics do so before customizing.
func (g *Graph) WithWeights(weights []uint32) (*Graph, error) {
	if len(weights) != len(g.arcs) {
		return nil, fmt.Errorf("graph: %d weights for %d arcs", len(weights), len(g.arcs))
	}
	arcs := make([]Arc, len(g.arcs))
	for i, a := range g.arcs {
		arcs[i] = Arc{Head: a.Head, Weight: weights[i]}
	}
	return &Graph{first: g.first, arcs: arcs}, nil
}

// SameStructure reports whether g and h have identical vertex counts
// and adjacency structure — the same heads in the same order — while
// ignoring weights. Two metrics customized over one topology satisfy
// it; the engine layer uses it to validate that schedule state derived
// from one can be reused for the other.
func (g *Graph) SameStructure(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || g.NumArcs() != h.NumArcs() {
		return false
	}
	for i := range g.first {
		if g.first[i] != h.first[i] {
			return false
		}
	}
	for i := range g.arcs {
		if g.arcs[i].Head != h.arcs[i].Head {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	first := make([]int32, len(g.first))
	copy(first, g.first)
	arcs := make([]Arc, len(g.arcs))
	copy(arcs, g.arcs)
	return &Graph{first: first, arcs: arcs}
}

// Equal reports whether two graphs have identical vertex counts,
// adjacency structure and weights, including arc order.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || g.NumArcs() != h.NumArcs() {
		return false
	}
	for i := range g.first {
		if g.first[i] != h.first[i] {
			return false
		}
	}
	for i := range g.arcs {
		if g.arcs[i] != h.arcs[i] {
			return false
		}
	}
	return true
}

// MemoryBytes reports the footprint of the adjacency arrays, used by the
// experiment harness when reporting "memory used" columns.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.first))*4 + int64(len(g.arcs))*8
}

// FindArc returns the weight of the minimum-weight arc from u to v and
// whether one exists. It is O(outdeg(u)) and intended for tests and
// low-rate query code, not inner loops.
func (g *Graph) FindArc(u, v int32) (uint32, bool) {
	w, ok := uint32(0), false
	for _, a := range g.Arcs(u) {
		if a.Head == v && (!ok || a.Weight < w) {
			w, ok = a.Weight, true
		}
	}
	return w, ok
}

// AddSat returns a+b saturating at Inf; an Inf operand stays Inf.
func AddSat(a, b uint32) uint32 {
	s := a + b
	if s < a {
		return Inf
	}
	return s
}

// Builder accumulates arcs and produces an immutable Graph. It is not
// safe for concurrent use.
type Builder struct {
	n    int
	tail []int32
	arcs []Arc
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddArc appends the arc (tail,head) with the given weight. It returns an
// error if an endpoint is out of range or the weight exceeds MaxWeight.
func (b *Builder) AddArc(tail, head int32, weight uint32) error {
	if tail < 0 || int(tail) >= b.n || head < 0 || int(head) >= b.n {
		return fmt.Errorf("graph: arc (%d,%d) out of range [0,%d)", tail, head, b.n)
	}
	if weight > MaxWeight {
		return fmt.Errorf("graph: weight %d exceeds MaxWeight %d", weight, MaxWeight)
	}
	b.tail = append(b.tail, tail)
	b.arcs = append(b.arcs, Arc{Head: head, Weight: weight})
	return nil
}

// MustAddArc is AddArc that panics on error, for generators and tests
// whose inputs are correct by construction.
func (b *Builder) MustAddArc(tail, head int32, weight uint32) {
	if err := b.AddArc(tail, head, weight); err != nil {
		panic(err)
	}
}

// NumAdded returns the number of arcs added so far.
func (b *Builder) NumAdded() int { return len(b.arcs) }

// Build sorts the accumulated arcs by tail (stable, preserving insertion
// order within a vertex) and returns the immutable graph. The builder
// may be reused afterwards; Build copies nothing it retains.
func (b *Builder) Build() *Graph {
	n := b.n
	first := make([]int32, n+1)
	for _, t := range b.tail {
		first[t+1]++
	}
	for v := 0; v < n; v++ {
		first[v+1] += first[v]
	}
	arcs := make([]Arc, len(b.arcs))
	next := make([]int32, n)
	copy(next, first[:n])
	for i, t := range b.tail {
		arcs[next[t]] = b.arcs[i]
		next[t]++
	}
	return &Graph{first: first, arcs: arcs}
}

// BuildDeduped is Build followed by merging parallel arcs, keeping the
// minimum weight of each (tail,head) pair. Self-loops are dropped: they
// can never lie on a shortest path with non-negative lengths.
func (b *Builder) BuildDeduped() *Graph {
	g := b.Build()
	n := g.NumVertices()
	first := make([]int32, n+1)
	arcs := make([]Arc, 0, len(g.arcs))
	for v := int32(0); v < int32(n); v++ {
		out := g.Arcs(v)
		local := make([]Arc, len(out))
		copy(local, out)
		sort.Slice(local, func(i, j int) bool {
			if local[i].Head != local[j].Head {
				return local[i].Head < local[j].Head
			}
			return local[i].Weight < local[j].Weight
		})
		for i, a := range local {
			if a.Head == v {
				continue // self-loop
			}
			if i > 0 && local[i-1].Head == a.Head {
				continue // parallel arc, keep the lighter one seen first
			}
			arcs = append(arcs, a)
		}
		first[v+1] = int32(len(arcs))
	}
	return &Graph{first: first, arcs: arcs}
}

// FromRaw constructs a graph directly from adjacency arrays (used by the
// binary deserializer). It validates the CSR invariants: first must be
// monotonically non-decreasing from 0 to len(arcs), and every head must
// be a valid vertex.
func FromRaw(first []int32, arcs []Arc) (*Graph, error) {
	if len(first) == 0 || first[0] != 0 {
		return nil, fmt.Errorf("graph: first must start at 0")
	}
	n := len(first) - 1
	for i := 0; i < n; i++ {
		if first[i+1] < first[i] {
			return nil, fmt.Errorf("graph: first not monotone at %d", i)
		}
	}
	if int(first[n]) != len(arcs) {
		return nil, fmt.Errorf("graph: first[n]=%d but %d arcs", first[n], len(arcs))
	}
	for i, a := range arcs {
		if a.Head < 0 || int(a.Head) >= n {
			return nil, fmt.Errorf("graph: arc %d head %d out of range", i, a.Head)
		}
	}
	return &Graph{first: first, arcs: arcs}, nil
}

// FromArcs is a convenience constructor used heavily by tests: it builds
// a graph from explicit (tail, head, weight) triples.
func FromArcs(n int, triples [][3]int64) (*Graph, error) {
	b := NewBuilder(n)
	for _, t := range triples {
		if t[2] < 0 || uint64(t[2]) > uint64(MaxWeight) {
			return nil, fmt.Errorf("graph: weight %d out of range", t[2])
		}
		if err := b.AddArc(int32(t[0]), int32(t[1]), uint32(t[2])); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
