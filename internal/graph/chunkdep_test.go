package graph

import (
	"math/rand"
	"testing"
)

// randomSweepDAG builds an incoming-arc downward graph consistent with
// the given sweep order: every arc of the vertex scanned at position p
// has its head (the dependency tail) at a strictly earlier position.
func randomSweepDAG(rng *rand.Rand, order []int32, m int) *Graph {
	n := len(order)
	b := NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	for i := 0; i < m; i++ {
		p := 1 + rng.Intn(n-1)
		tp := rng.Intn(p)
		b.MustAddArc(order[p], order[tp], uint32(rng.Intn(100)))
	}
	return b.Build()
}

// bruteChunkDeps recomputes the bounds straight from the definition:
// for each chunk, the maximum tail position among arcs entering it from
// before the chunk start, else -1.
func bruteChunkDeps(g *Graph, order []int32, grain int) []int32 {
	n := g.NumVertices()
	pos := make([]int32, n)
	for p, v := range order {
		pos[v] = int32(p)
	}
	dep := make([]int32, (n+grain-1)/grain)
	for c := range dep {
		dep[c] = -1
		start := c * grain
		end := start + grain
		if end > n {
			end = n
		}
		for p := start; p < end; p++ {
			for _, a := range g.Arcs(order[p]) {
				if tp := pos[a.Head]; int(tp) < start && tp > dep[c] {
					dep[c] = tp
				}
			}
		}
	}
	return dep
}

func identityOrder(n int) []int32 {
	o := make([]int32, n)
	for i := range o {
		o[i] = int32(i)
	}
	return o
}

func TestChunkDepBoundsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(90)
		identity := trial%2 == 0
		order := identityOrder(n)
		if !identity {
			order = randomPerm(rng, n)
		}
		g := randomSweepDAG(rng, order, rng.Intn(5*n))
		for _, grain := range []int{1, 3, 7, 16, n, 2 * n} {
			var arg []int32
			if !identity {
				arg = order
			}
			got, err := ChunkDepBounds(g, arg, grain)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteChunkDeps(g, order, grain)
			if len(got) != len(want) {
				t.Fatalf("n=%d grain=%d: %d chunks, want %d", n, grain, len(got), len(want))
			}
			for c := range got {
				if got[c] != want[c] {
					t.Fatalf("n=%d grain=%d identity=%v: dep[%d]=%d, want %d",
						n, grain, identity, c, got[c], want[c])
				}
				if got[c] >= int32(c*grain) {
					t.Fatalf("dep[%d]=%d not before chunk start %d", c, got[c], c*grain)
				}
			}
		}
	}
}

// TestChunkDepBoundsPackedAgrees checks the stream flavor walks its way
// to the same bounds as the CSR flavor, for both the vertex-word layout
// (explicit orders) and the identity layout that elides them.
func TestChunkDepBoundsPackedAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(90)
		identity := trial%2 == 0
		order := identityOrder(n)
		if !identity {
			order = randomPerm(rng, n)
		}
		g := randomSweepDAG(rng, order, rng.Intn(5*n))
		var orderArg, pos []int32
		if !identity {
			orderArg = order
			pos = make([]int32, n)
			for p, v := range order {
				pos[v] = int32(p)
			}
		}
		p, err := NewPacked(g, orderArg)
		if err != nil {
			t.Fatal(err)
		}
		for _, grain := range []int{1, 5, 16, n} {
			fromCSR, err := ChunkDepBounds(g, orderArg, grain)
			if err != nil {
				t.Fatal(err)
			}
			fromStream, err := p.ChunkDepBounds(pos, grain)
			if err != nil {
				t.Fatal(err)
			}
			if len(fromCSR) != len(fromStream) {
				t.Fatalf("chunk counts differ: %d vs %d", len(fromCSR), len(fromStream))
			}
			for c := range fromCSR {
				if fromCSR[c] != fromStream[c] {
					t.Fatalf("n=%d grain=%d identity=%v: CSR dep[%d]=%d, stream %d",
						n, grain, identity, c, fromCSR[c], fromStream[c])
				}
			}
		}
	}
}

func TestChunkDepBoundsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	order := randomPerm(rng, 10)
	g := randomSweepDAG(rng, order, 30)

	if _, err := ChunkDepBounds(g, order, 0); err == nil {
		t.Error("grain 0 accepted")
	}
	if _, err := ChunkDepBounds(g, order[:5], 4); err == nil {
		t.Error("short order accepted")
	}
	bad := append([]int32(nil), order...)
	bad[3] = 99
	if _, err := ChunkDepBounds(g, bad, 4); err == nil {
		t.Error("out-of-range order vertex accepted")
	}

	// A forward arc breaks the reverse-topological property.
	b := NewBuilder(4)
	b.MustAddArc(1, 2, 5)
	fwd := b.Build()
	if _, err := ChunkDepBounds(fwd, nil, 2); err == nil {
		t.Error("non-topological identity graph accepted")
	}
	pf, err := NewPacked(fwd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.ChunkDepBounds(nil, 2); err == nil {
		t.Error("non-topological packed stream accepted")
	}

	// Packed flavor: the position map must match the stream layout.
	p, err := NewPacked(g, order)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ChunkDepBounds(nil, 4); err == nil {
		t.Error("explicit-vertex stream accepted a nil position map")
	}
	if _, err := p.ChunkDepBounds(make([]int32, 5), 4); err == nil {
		t.Error("short position map accepted")
	}
	if _, err := p.ChunkDepBounds(make([]int32, 10), 0); err == nil {
		t.Error("packed grain 0 accepted")
	}
}
