package graph

import "fmt"

// PackedZ is the compressed sweep layout: the fused single-stream
// grammar of Packed re-encoded as a byte stream so the bandwidth-bound
// sweep reads fewer bytes per tree. Two observations make it pay. Arc
// heads are delta-encoded against the sweep position — after the
// level-DFS reorder most tails sit a handful of positions back, so the
// delta fits one varint byte where Packed spends four. And road-network
// weights rarely need 32 bits: each block narrows its weights to the
// smallest of 8/16/32 bits that holds them, tagged in the block header,
// closed arcs (customized metrics, weight Inf) force their block to the
// full 4-byte width so narrow weights never need an escape pattern.
//
// Stream grammar, one block per sweep position p = 0..n-1, all fields
// byte-granular:
//
//	[header]  uvarint deg<<4 | dtag<<2 | wtag, each tag in {0,1,2}
//	          selecting 1/2/4-byte fields (3 is reserved and rejected)
//	[v]       uvarint zigzag(v-p) — present only when the sweep order
//	          is not the identity (ExplicitVertex)
//	deg × [delta] [weight]
//	          delta = p - pos(head) in dtag-wide little-endian, always
//	          >= 1 because the sweep order is topological (the tail of
//	          every arc read at p was scanned earlier); weight is
//	          wtag-wide little-endian, verbatim — a block holding any
//	          Inf (closed-arc) weight is promoted to 4-byte weights,
//	          where Inf is just the all-ones word, so narrow weights
//	          need no escape pattern and the kernels relax without a
//	          per-arc Inf test
//
// Deltas are block-uniform on purpose: an early varint encoding made
// each arc's byte length data-dependent, and the resulting unpredictable
// branch (plus the serial stream-offset chain behind it) cost more in
// the scan loop than the occasional padding byte saves. With one delta
// width per block the kernels decode an arc with a single wide load at
// a block-constant stride — the same dependence structure as the
// uncompressed packed stream — while the narrow common case (most heads
// sit within 255 positions after the level-DFS reorder) still pays one
// byte. Headers and vertex words stay varint: they are per-block, not
// per-arc, so their decode branches are off the critical path.
//
// Block starts are kept byte-indexed (len n+1) so the chunk-scheduled
// parallel sweep still enters the stream exactly at block boundaries.
// Under the identity order a head's position is its vertex ID; under
// explicit orders the decoder resolves positions through the sweep
// order array it already holds (sequential decoders reconstruct it
// from the vertex words — see Unpack).
type PackedZ struct {
	stream     []byte
	blockStart []int // len n+1: byte offset of each position's block
	n, m       int
	explicitV  bool
}

// Width tags of the block header, shared by the delta field (dtag) and
// the weight field (wtag). A tag selects the byte width of every field
// of its kind in the block; all fields are stored verbatim. Inf is
// representable only at the 4-byte width (it is the all-ones word), so
// blockWTag promotes any block with a closed arc to WTag32 — the
// decoders never need an Inf escape test.
const (
	WTag8  = 0 // 1-byte fields
	WTag16 = 1 // 2-byte fields
	WTag32 = 2 // 4-byte fields
)

// streamPad is the number of zero bytes appended past the last block.
// The sweep kernels decode an arc's delta and weight from one 8-byte
// load; the pad guarantees such a load issued at the final arc — whose
// encoded form can be as short as two bytes — never runs off the
// allocation. The pad is not part of the stream: ByteLen and the block
// index end at the last real byte, and a zero byte terminates any
// varint, so even a buggy over-run decode stops.
const streamPad = 8

// appendUvarint appends x in base-128 little-endian varint form.
func appendUvarint(b []byte, x uint32) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

// zigzag folds a signed delta into the unsigned varint space.
func zigzag(x int32) uint32 { return uint32((x << 1) ^ (x >> 31)) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// readUvarint decodes one varint at s[i], returning the value and the
// next offset. Malformed input (truncated, or more than 5 bytes) is
// reported with ok=false; the hot sweep kernels use their own inlined
// fast path and never call this.
func readUvarint(s []byte, i int) (x uint32, next int, ok bool) {
	var shift uint
	for j := 0; j < 5; j++ {
		if i >= len(s) {
			return 0, i, false
		}
		b := s[i]
		i++
		x |= uint32(b&0x7f) << shift
		if b < 0x80 {
			return x, i, true
		}
		shift += 7
	}
	return 0, i, false
}

// blockWTag returns the narrowest width tag that holds every weight of
// arcs verbatim. Inf (all-ones) only fits the 4-byte width, so a block
// with a closed arc is promoted to WTag32 — narrow widths carry their
// full value range with no escape pattern.
func blockWTag(arcs []Arc) int {
	tag := WTag8
	for _, a := range arcs {
		switch {
		case a.Weight > 0xFFFF:
			return WTag32
		case a.Weight > 0xFF:
			tag = WTag16
		}
	}
	return tag
}

// deltaTag returns the narrowest width tag that holds every head delta
// of a block, given the largest one.
func deltaTag(maxDelta uint32) int {
	switch {
	case maxDelta <= 0xFF:
		return WTag8
	case maxDelta <= 0xFFFF:
		return WTag16
	default:
		return WTag32
	}
}

// appendFixed appends x in the tag's width, little-endian, no escapes.
func appendFixed(b []byte, x uint32, tag int) []byte {
	switch tag {
	case WTag8:
		return append(b, byte(x))
	case WTag16:
		return append(b, byte(x), byte(x>>8))
	default:
		return append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
}

// readFixed reads one tag-wide little-endian field at s[i], no escapes.
func readFixed(s []byte, i, tag int) (uint32, bool) {
	if i+tagWidth(tag) > len(s) {
		return 0, false
	}
	switch tag {
	case WTag8:
		return uint32(s[i]), true
	case WTag16:
		return uint32(s[i]) | uint32(s[i+1])<<8, true
	default:
		return uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16 | uint32(s[i+3])<<24, true
	}
}

// appendWeight appends w verbatim in the block's width. blockWTag
// guarantees the width holds it.
func appendWeight(b []byte, w uint32, wtag int) []byte {
	return appendFixed(b, w, wtag)
}

// NewPackedZ compresses g's adjacency arrays into a delta+varint byte
// stream scanned in the given sweep order (order[p] = vertex visited at
// position p; nil = identity). The order must be topological for g —
// every arc's head must sit at an earlier sweep position — which is
// exactly the property the sweep itself relies on; a violation is an
// error, not a silent mis-encode.
func NewPackedZ(g *Graph, order []int32) (*PackedZ, error) {
	n := g.NumVertices()
	m := g.NumArcs()
	explicit := order != nil
	var pos []int32
	if explicit {
		if len(order) != n {
			return nil, fmt.Errorf("graph: packedz order has length %d, want %d", len(order), n)
		}
		pos = make([]int32, n)
		seen := make([]bool, n)
		for p, v := range order {
			if v < 0 || int(v) >= n || seen[v] {
				return nil, fmt.Errorf("graph: packedz order is not a permutation at position %d", p)
			}
			seen[v] = true
			pos[v] = int32(p)
		}
	}
	// Heads typically compress to 1–2 delta bytes and weights to 2, so
	// 4 bytes/arc + 2 bytes/vertex overshoots slightly and avoids
	// regrowth churn.
	stream := make([]byte, 0, 2*n+4*m)
	blockStart := make([]int, n+1)
	for p := 0; p < n; p++ {
		blockStart[p] = len(stream)
		v := int32(p)
		if explicit {
			v = order[p]
		}
		arcs := g.Arcs(v)
		wtag := blockWTag(arcs)
		// Resolve head positions once up front: the block's delta width
		// is the narrowest that holds its largest delta.
		maxDelta := uint32(0)
		for _, a := range arcs {
			hp := a.Head
			if pos != nil {
				hp = pos[a.Head]
			}
			if int(hp) >= p {
				return nil, fmt.Errorf("graph: packedz order is not topological: position %d reads tail at position %d", p, hp)
			}
			if d := uint32(int32(p) - hp); d > maxDelta {
				maxDelta = d
			}
		}
		dtag := deltaTag(maxDelta)
		stream = appendUvarint(stream, uint32(len(arcs))<<4|uint32(dtag)<<2|uint32(wtag))
		if explicit {
			stream = appendUvarint(stream, zigzag(v-int32(p)))
		}
		for _, a := range arcs {
			hp := a.Head
			if pos != nil {
				hp = pos[a.Head]
			}
			stream = appendFixed(stream, uint32(int32(p)-hp), dtag)
			stream = appendWeight(stream, a.Weight, wtag)
		}
	}
	blockStart[n] = len(stream)
	stream = append(stream, make([]byte, streamPad)...)
	return &PackedZ{stream: stream, blockStart: blockStart, n: n, m: m, explicitV: explicit}, nil
}

// WithWeights returns a compressed stream with z's exact structure —
// sweep order, degrees and head deltas — but the arc weights taken from
// g, which must have the same adjacency structure as the graph z was
// built from. This is the compressed half of a metric swap: nothing
// about the order or delta encoding is re-derived, but unlike
// Packed.WithWeights the bytes are re-emitted, because a new metric's
// range can change each block's weight width (and with it every byte
// offset). Block starts are therefore rebuilt, never shared.
func (z *PackedZ) WithWeights(g *Graph) (*PackedZ, error) {
	if g.NumVertices() != z.n || g.NumArcs() != z.m {
		return nil, fmt.Errorf("graph: packedz patch dims %d/%d, graph %d/%d", z.n, z.m, g.NumVertices(), g.NumArcs())
	}
	stream := make([]byte, 0, len(z.stream))
	blockStart := make([]int, z.n+1)
	i := 0
	for p := 0; p < z.n; p++ {
		blockStart[p] = len(stream)
		header, j, ok := readUvarint(z.stream, i)
		if !ok {
			return nil, fmt.Errorf("graph: packedz stream truncated at position %d", p)
		}
		deg := int(header >> 4)
		dtag := int(header >> 2 & 3)
		oldTag := int(header & 3)
		if oldTag == 3 || dtag == 3 {
			return nil, fmt.Errorf("graph: packedz block %d has reserved width tag", p)
		}
		i = j
		v := int32(p)
		if z.explicitV {
			zz, j, ok := readUvarint(z.stream, i)
			if !ok {
				return nil, fmt.Errorf("graph: packedz stream truncated at position %d", p)
			}
			i = j
			v = int32(p) + unzigzag(zz)
		}
		if v < 0 || int(v) >= z.n {
			return nil, fmt.Errorf("graph: packedz vertex %d out of range at position %d", v, p)
		}
		arcs := g.Arcs(v)
		if len(arcs) != deg {
			return nil, fmt.Errorf("graph: packedz patch degree mismatch at vertex %d: stream %d, graph %d", v, deg, len(arcs))
		}
		// Deltas are structure, not metric: the new block keeps the old
		// delta width verbatim and only re-tags the weights.
		wtag := blockWTag(arcs)
		stream = appendUvarint(stream, uint32(deg)<<4|uint32(dtag)<<2|uint32(wtag))
		if z.explicitV {
			stream = appendUvarint(stream, zigzag(v-int32(p)))
		}
		for _, a := range arcs {
			delta, ok := readFixed(z.stream, i, dtag)
			if !ok || delta == 0 || int(delta) > p {
				return nil, fmt.Errorf("graph: packedz block %d has invalid head delta", p)
			}
			i += tagWidth(dtag) + tagWidth(oldTag) // past the old delta and weight bytes
			stream = appendFixed(stream, delta, dtag)
			stream = appendWeight(stream, a.Weight, wtag)
		}
	}
	blockStart[z.n] = len(stream)
	stream = append(stream, make([]byte, streamPad)...)
	return &PackedZ{stream: stream, blockStart: blockStart, n: z.n, m: z.m, explicitV: z.explicitV}, nil
}

// tagWidth returns the byte width a tag selects.
func tagWidth(tag int) int {
	switch tag {
	case WTag8:
		return 1
	case WTag16:
		return 2
	default:
		return 4
	}
}

// Stream exposes the compressed byte stream. Callers must not modify
// it; in a snapshot-restored engine it aliases the mapped file.
//
//phast:readonly
func (z *PackedZ) Stream() []byte { return z.stream }

// BlockStarts exposes the byte offset of every sweep position's block
// (length n+1, ending at ByteLen). The chunk-scheduled parallel sweep
// uses it to enter the stream at a chunk boundary. Callers must not
// modify it; in a snapshot-restored engine it aliases the mapped file.
//
//phast:readonly
func (z *PackedZ) BlockStarts() []int { return z.blockStart }

// ExplicitVertex reports whether each block carries a vertex word (true
// for non-identity sweep orders).
func (z *PackedZ) ExplicitVertex() bool { return z.explicitV }

// NumVertices returns n.
func (z *PackedZ) NumVertices() int { return z.n }

// NumArcs returns m.
func (z *PackedZ) NumArcs() int { return z.m }

// ByteLen returns the compressed stream length in bytes — the bytes the
// sweep actually scans, the byte-granular analogue of Packed.Words. The
// wide-load pad past the last block is excluded: it is never scanned.
func (z *PackedZ) ByteLen() int { return z.blockStart[z.n] }

// UncompressedBytes returns the bytes the equivalent uncompressed
// Packed stream would scan (n + 2m words, plus a vertex word per
// position under explicit orders) — the numerator's baseline for
// CompressionRatio.
func (z *PackedZ) UncompressedBytes() int64 {
	words := z.n + 2*z.m
	if z.explicitV {
		words += z.n
	}
	return int64(words) * 4
}

// CompressionRatio returns ByteLen over UncompressedBytes: the fraction
// of the uncompressed packed stream the sweep now reads (< 1 is a win).
func (z *PackedZ) CompressionRatio() float64 {
	if u := z.UncompressedBytes(); u > 0 {
		return float64(z.ByteLen()) / float64(u)
	}
	return 1
}

// MemoryBytes reports the footprint of the stream and the byte-indexed
// block starts. The block index is metadata — the sweep reads one entry
// per chunk, not per vertex — so per-sweep traffic accounting uses
// ByteLen, not this.
func (z *PackedZ) MemoryBytes() int64 {
	return int64(len(z.stream)) + int64(len(z.blockStart))*8
}

// ShapeHistogram counts blocks per header shape, keyed "d<bits>w<bits>"
// (e.g. "d8w16" = 1-byte deltas, 2-byte weights). The four narrow
// shapes are the ones the decode-once multi kernels specialize with
// constant shifts; the histogram shows how much of a stream they cover
// — on reordered road networks the narrow pairs should dominate, which
// is both why the constant-shift cases pay off and why the per-arc
// stream stays under two bytes per field. Zero-degree blocks carry no
// arc fields but still encode a shape; they are counted where their
// header puts them.
func (z *PackedZ) ShapeHistogram() map[string]int {
	bits := [3]int{8, 16, 32}
	hist := make(map[string]int)
	for p := 0; p < z.n; p++ {
		hdr, _, ok := readUvarint(z.stream, z.blockStart[p])
		if !ok {
			// A malformed header cannot occur in a stream built by this
			// package; surface it as its own bucket rather than panic.
			hist["malformed"]++
			continue
		}
		dtag, wtag := int(hdr>>2&3), int(hdr&3)
		if dtag > WTag32 || wtag > WTag32 {
			hist["malformed"]++
			continue
		}
		hist[fmt.Sprintf("d%dw%d", bits[dtag], bits[wtag])]++
	}
	return hist
}

// Unpack decodes the stream back into a CSR graph and the sweep order
// it was built with (nil for the identity). It validates the grammar as
// it goes — the round-trip half of the phastdebug PackedZStream
// invariant and the core of FuzzPackedZRoundTrip. A sequential decoder
// needs no external order array: head deltas always point backward, so
// the vertex words already seen resolve every position.
func (z *PackedZ) Unpack() (*Graph, []int32, error) {
	n, m := z.n, z.m
	var order []int32
	if z.explicitV {
		order = make([]int32, n)
	}
	deg := make([]int32, n)
	heads := make([][2]uint32, 0, m) // (head, weight) in stream order per vertex
	type block struct{ v, off, deg int32 }
	blocks := make([]block, 0, n)
	seen := make([]bool, n)
	i := 0
	for p := 0; p < n; p++ {
		header, j, ok := readUvarint(z.stream, i)
		if !ok {
			return nil, nil, fmt.Errorf("graph: packedz stream truncated at position %d", p)
		}
		i = j
		d := int(header >> 4)
		dtag := int(header >> 2 & 3)
		wtag := int(header & 3)
		if wtag == 3 || dtag == 3 {
			return nil, nil, fmt.Errorf("graph: packedz block %d has reserved width tag", p)
		}
		v := int32(p)
		if z.explicitV {
			zz, j, ok := readUvarint(z.stream, i)
			if !ok {
				return nil, nil, fmt.Errorf("graph: packedz stream truncated at position %d", p)
			}
			i = j
			v = int32(p) + unzigzag(zz)
			if v < 0 || int(v) >= n {
				return nil, nil, fmt.Errorf("graph: packedz vertex %d out of range at position %d", v, p)
			}
			if seen[v] {
				return nil, nil, fmt.Errorf("graph: packedz vertex %d appears twice", v)
			}
			seen[v] = true
			order[p] = v
		}
		deg[v] = int32(d)
		blocks = append(blocks, block{v: v, off: int32(len(heads)), deg: int32(d)})
		for a := 0; a < d; a++ {
			delta, ok := readFixed(z.stream, i, dtag)
			if !ok {
				return nil, nil, fmt.Errorf("graph: packedz block of vertex %d overruns the stream", v)
			}
			i += tagWidth(dtag)
			if delta == 0 || int(delta) > p {
				return nil, nil, fmt.Errorf("graph: packedz head delta %d at position %d escapes [1,%d]", delta, p, p)
			}
			hp := int32(p) - int32(delta)
			h := hp
			if z.explicitV {
				h = order[hp]
			}
			w, ok := decodeWeight(z.stream, i, wtag)
			if !ok {
				return nil, nil, fmt.Errorf("graph: packedz block of vertex %d overruns the stream", v)
			}
			i += tagWidth(wtag)
			heads = append(heads, [2]uint32{uint32(h), w})
		}
	}
	if i != z.ByteLen() {
		return nil, nil, fmt.Errorf("graph: packedz stream has %d trailing bytes", z.ByteLen()-i)
	}
	if len(heads) != m {
		return nil, nil, fmt.Errorf("graph: packedz degrees sum to %d arcs, want %d", len(heads), m)
	}
	first := make([]int32, n+1)
	for v := 0; v < n; v++ {
		first[v+1] = first[v] + deg[v]
	}
	arcs := make([]Arc, m)
	for _, b := range blocks {
		dst := arcs[first[b.v] : first[b.v]+b.deg]
		src := heads[b.off : b.off+b.deg]
		for j, hw := range src {
			dst[j] = Arc{Head: int32(hw[0]), Weight: hw[1]}
		}
	}
	g, err := FromRaw(first, arcs)
	if err != nil {
		return nil, nil, err
	}
	return g, order, nil
}

// decodeWeight reads one weight of the given width at s[i], verbatim —
// the encoder promotes Inf-bearing blocks to the 4-byte width, so no
// escape mapping exists at any width.
func decodeWeight(s []byte, i, wtag int) (uint32, bool) {
	return readFixed(s, i, wtag)
}

// ChunkStartsByBytes partitions the sweep positions into chunks whose
// compressed stream spans at most budget bytes each (always at least
// one position per chunk, so a block larger than the budget gets a
// chunk of its own). The boundaries are sweep positions — the unit the
// scheduler's dependency bounds and in-order claims speak — sized by
// bytes, which is what a cache-conscious grain wants: a chunk's stream
// plus its label working set resident while it is scanned.
func (z *PackedZ) ChunkStartsByBytes(budget int) []int32 {
	return chunkStartsByOffsets(z.blockStart, budget)
}

// ChunkStartsByBytes is the uncompressed flavor: chunk the packed word
// stream by a byte budget using its word-indexed block starts.
func (p *Packed) ChunkStartsByBytes(budget int) []int32 {
	// Convert the word offsets to bytes without materializing a copy:
	// chunkStartsByOffsets only compares differences, so scale the
	// budget down instead.
	if budget < 4 {
		budget = 4
	}
	return chunkStartsByOffsets(p.blockStart, budget/4)
}

// chunkStartsByOffsets greedily cuts [0,n) into chunks of at most
// budget offset units (bytes or words), returning the n+1-style
// boundary list of sweep positions (first entry 0, last entry n).
func chunkStartsByOffsets(blockStart []int, budget int) []int32 {
	n := len(blockStart) - 1
	if budget < 1 {
		budget = 1
	}
	starts := []int32{0}
	base := 0
	for p := 0; p < n; p++ {
		if p > int(starts[len(starts)-1]) && blockStart[p+1]-base > budget {
			starts = append(starts, int32(p))
			base = blockStart[p]
		}
	}
	return append(starts, int32(n))
}

// ChunkDepBoundsAt is the variable-boundary flavor of ChunkDepBounds
// over the compressed stream: starts lists the chunk boundaries as
// sweep positions (len numChunks+1, starts[0]=0, ascending, ending at
// n), and the result holds, per chunk, the maximum sweep position among
// tails of arcs entering the chunk from before its start (-1: none).
// The topological property needs no separate check here — the delta
// grammar cannot express a forward reference, and Unpack/the invariant
// validate delta ranges.
func (z *PackedZ) ChunkDepBoundsAt(starts []int32) ([]int32, error) {
	if err := validChunkStarts(starts, z.n); err != nil {
		return nil, err
	}
	dep := make([]int32, len(starts)-1)
	for c := range dep {
		dep[c] = -1
	}
	c := 0
	i := 0
	for p := 0; p < z.n; p++ {
		for int32(p) >= starts[c+1] {
			c++
		}
		start := starts[c]
		header, j, ok := readUvarint(z.stream, i)
		if !ok {
			return nil, fmt.Errorf("graph: packedz stream truncated at position %d", p)
		}
		i = j
		deg := int(header >> 4)
		dtag := int(header >> 2 & 3)
		wtag := int(header & 3)
		if wtag == 3 || dtag == 3 {
			return nil, fmt.Errorf("graph: packedz block %d has reserved width tag", p)
		}
		if z.explicitV {
			if _, j, ok = readUvarint(z.stream, i); !ok {
				return nil, fmt.Errorf("graph: packedz stream truncated at position %d", p)
			}
			i = j
		}
		for a := 0; a < deg; a++ {
			delta, ok := readFixed(z.stream, i, dtag)
			if !ok {
				return nil, fmt.Errorf("graph: packedz block at position %d overruns the stream", p)
			}
			i += tagWidth(dtag) + tagWidth(wtag)
			if delta == 0 || int(delta) > p {
				return nil, fmt.Errorf("graph: packedz head delta %d at position %d escapes [1,%d]", delta, p, p)
			}
			tp := int32(p) - int32(delta)
			if tp < start && tp > dep[c] {
				dep[c] = tp
			}
		}
	}
	return dep, nil
}

// validChunkStarts checks the chunk boundary list shape shared by all
// ChunkDepBoundsAt flavors.
func validChunkStarts(starts []int32, n int) error {
	if len(starts) < 2 || starts[0] != 0 || starts[len(starts)-1] != int32(n) {
		return fmt.Errorf("graph: chunk starts must span [0,%d], got %d boundaries", n, len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			return fmt.Errorf("graph: chunk starts not strictly increasing at %d", i)
		}
	}
	return nil
}
