package graph

import "fmt"

// Packed is the fused single-stream sweep layout: the adjacency arrays
// of a (downward, incoming-arc) graph flattened into one []uint32 the
// linear sweep reads front to back, so phase 2 of PHAST touches exactly
// one sequential array instead of first + arclist (+ order).
//
// Stream grammar, one block per sweep position p = 0..n-1:
//
//	[deg]            out-degree of the vertex scanned at position p
//	[v]              the vertex itself — present only when the sweep
//	                 order is not the identity (ExplicitVertex)
//	[head] [weight]  deg arc pairs, in adjacency-list order
//
// In the reordered layout of Section IV-A the order is the identity, the
// vertex word is elided, and the stream is n+2m words: strictly fewer
// bytes than the legacy first (4(n+1)) + AoS arcs (8m) + mark (n) walk.
// Head IDs remain plain vertex IDs (not word offsets), so the label
// array is indexed directly.
type Packed struct {
	stream     []uint32
	blockStart []int // len n+1: word offset of each position's block
	n, m       int
	explicitV  bool
}

// NewPacked fuses g's adjacency arrays into a packed stream scanned in
// the given sweep order (order[p] = vertex visited at position p). A nil
// order means the identity scan 0..n-1, which elides the per-block
// vertex word. order, when non-nil, must be a permutation of [0,n).
func NewPacked(g *Graph, order []int32) (*Packed, error) {
	n := g.NumVertices()
	m := g.NumArcs()
	explicit := order != nil
	if explicit {
		if len(order) != n {
			return nil, fmt.Errorf("graph: packed order has length %d, want %d", len(order), n)
		}
		seen := make([]bool, n)
		for p, v := range order {
			if v < 0 || int(v) >= n || seen[v] {
				return nil, fmt.Errorf("graph: packed order is not a permutation at position %d", p)
			}
			seen[v] = true
		}
	}
	words := n + 2*m
	if explicit {
		words += n
	}
	stream := make([]uint32, words)
	blockStart := make([]int, n+1)
	i := 0
	for p := 0; p < n; p++ {
		blockStart[p] = i
		v := int32(p)
		if explicit {
			v = order[p]
		}
		arcs := g.Arcs(v)
		stream[i] = uint32(len(arcs))
		i++
		if explicit {
			stream[i] = uint32(v)
			i++
		}
		for _, a := range arcs {
			stream[i] = uint32(a.Head)
			stream[i+1] = a.Weight
			i += 2
		}
	}
	blockStart[n] = i
	return &Packed{stream: stream, blockStart: blockStart, n: n, m: m, explicitV: explicit}, nil
}

// WithWeights returns a packed stream with p's exact structure — block
// index, degrees, vertex words and head IDs — but the arc weights taken
// from g, which must have the same adjacency structure as the graph p
// was built from. This is the cheap half of a metric swap: the stream
// interleaves structure and weights, so a new metric needs the weight
// words patched but nothing re-derived. The block index is shared with
// p (it is immutable); only the word stream is copied.
func (p *Packed) WithWeights(g *Graph) (*Packed, error) {
	if g.NumVertices() != p.n || g.NumArcs() != p.m {
		return nil, fmt.Errorf("graph: packed patch dims %d/%d, graph %d/%d", p.n, p.m, g.NumVertices(), g.NumArcs())
	}
	stream := make([]uint32, len(p.stream))
	copy(stream, p.stream)
	for pos := 0; pos < p.n; pos++ {
		i := p.blockStart[pos]
		d := int(stream[i])
		i++
		v := int32(pos)
		if p.explicitV {
			v = int32(stream[i])
			i++
		}
		arcs := g.Arcs(v)
		if len(arcs) != d {
			return nil, fmt.Errorf("graph: packed patch degree mismatch at vertex %d: stream %d, graph %d", v, d, len(arcs))
		}
		for _, a := range arcs {
			if stream[i] != uint32(a.Head) {
				return nil, fmt.Errorf("graph: packed patch head mismatch at vertex %d: stream %d, graph %d", v, stream[i], a.Head)
			}
			stream[i+1] = a.Weight
			i += 2
		}
	}
	return &Packed{stream: stream, blockStart: p.blockStart, n: p.n, m: p.m, explicitV: p.explicitV}, nil
}

// Stream exposes the fused word stream. Callers must not modify it; in
// a snapshot-restored engine it aliases the mapped file.
//
//phast:readonly
func (p *Packed) Stream() []uint32 { return p.stream }

// BlockStarts exposes the word offset of every sweep position's block
// (length n+1, ending at Words). The parallel sweep uses it to enter the
// stream at a level chunk boundary. Callers must not modify it; in a
// snapshot-restored engine it aliases the mapped file.
//
//phast:readonly
func (p *Packed) BlockStarts() []int { return p.blockStart }

// ExplicitVertex reports whether each block carries a vertex word (true
// for non-identity sweep orders).
func (p *Packed) ExplicitVertex() bool { return p.explicitV }

// NumVertices returns n.
func (p *Packed) NumVertices() int { return p.n }

// NumArcs returns m.
func (p *Packed) NumArcs() int { return p.m }

// Words returns the stream length in uint32 words.
func (p *Packed) Words() int { return len(p.stream) }

// MemoryBytes reports the footprint of the stream and block index.
func (p *Packed) MemoryBytes() int64 {
	return int64(len(p.stream))*4 + int64(len(p.blockStart))*8
}

// Unpack decodes the stream back into a CSR graph and the sweep order it
// was built with (nil for the identity). It validates the grammar as it
// goes and is the round-trip half of the phastdebug packed invariant.
func (p *Packed) Unpack() (*Graph, []int32, error) {
	n, m := p.n, p.m
	var order []int32
	if p.explicitV {
		order = make([]int32, n)
	}
	deg := make([]int32, n)
	heads := make([][2]uint32, 0, m) // (head, weight) in stream order per vertex
	type block struct{ v, off, deg int32 }
	blocks := make([]block, 0, n)
	seen := make([]bool, n)
	i := 0
	for pos := 0; pos < n; pos++ {
		if i >= len(p.stream) {
			return nil, nil, fmt.Errorf("graph: packed stream truncated at position %d", pos)
		}
		d := int(p.stream[i])
		i++
		v := int32(pos)
		if p.explicitV {
			if i >= len(p.stream) {
				return nil, nil, fmt.Errorf("graph: packed stream truncated at position %d", pos)
			}
			v = int32(p.stream[i])
			i++
			if v < 0 || int(v) >= n {
				return nil, nil, fmt.Errorf("graph: packed vertex %d out of range at position %d", v, pos)
			}
			if seen[v] {
				return nil, nil, fmt.Errorf("graph: packed vertex %d appears twice", v)
			}
			seen[v] = true
			order[pos] = v
		}
		if i+2*d > len(p.stream) {
			return nil, nil, fmt.Errorf("graph: packed block of vertex %d overruns the stream", v)
		}
		deg[v] = int32(d)
		blocks = append(blocks, block{v: v, off: int32(len(heads)), deg: int32(d)})
		for a := 0; a < d; a++ {
			h := p.stream[i]
			if int(h) >= n {
				return nil, nil, fmt.Errorf("graph: packed head %d out of range", h)
			}
			heads = append(heads, [2]uint32{h, p.stream[i+1]})
			i += 2
		}
	}
	if i != len(p.stream) {
		return nil, nil, fmt.Errorf("graph: packed stream has %d trailing words", len(p.stream)-i)
	}
	if len(heads) != m {
		return nil, nil, fmt.Errorf("graph: packed degrees sum to %d arcs, want %d", len(heads), m)
	}
	first := make([]int32, n+1)
	for v := 0; v < n; v++ {
		first[v+1] = first[v] + deg[v]
	}
	arcs := make([]Arc, m)
	for _, b := range blocks {
		dst := arcs[first[b.v] : first[b.v]+b.deg]
		src := heads[b.off : b.off+b.deg]
		for j, hw := range src {
			dst[j] = Arc{Head: int32(hw[0]), Weight: hw[1]}
		}
	}
	g, err := FromRaw(first, arcs)
	if err != nil {
		return nil, nil, err
	}
	return g, order, nil
}
