package graph

import "fmt"

// This file computes the per-chunk dependency bounds the persistent
// sweep scheduler relaxes the Section V level barrier with. The sweep
// order is a reverse topological order of the downward graph (every arc
// read at position p has its tail at some earlier position), so any
// fixed-size chunk of positions [a,b) may start as soon as every
// position < a that the chunk reads is final. The bound precomputed
// here is exactly that horizon: the maximum sweep position among tails
// of arcs entering the chunk from before its start. Dependencies within
// the chunk need no bound — the in-order scan of the chunk satisfies
// them, as in the sequential sweep.

// ChunkDepBounds partitions the sweep positions of g (an incoming-arc
// downward graph: Arcs(v) lists the arcs relaxed when v is scanned,
// with Head naming the dependency tail) into chunks of grain positions
// and returns, for each chunk c covering [c*grain, min((c+1)*grain, n)),
// the maximum sweep position among tails of its incoming arcs that lie
// before the chunk start, or -1 when the chunk depends on no earlier
// position. order is the sweep order (order[p] = vertex scanned at
// position p); nil means the identity scan.
//
// A tail position at or after the scanning position would contradict
// the reverse-topological property of the sweep order; that is reported
// as an error rather than silently folded into a bound.
func ChunkDepBounds(g *Graph, order []int32, grain int) ([]int32, error) {
	n := g.NumVertices()
	if grain <= 0 {
		return nil, fmt.Errorf("graph: chunk grain %d is not positive", grain)
	}
	if order != nil && len(order) != n {
		return nil, fmt.Errorf("graph: chunk order has length %d, want %d", len(order), n)
	}
	var pos []int32 // vertex -> sweep position; nil = identity
	if order != nil {
		pos = make([]int32, n)
		for p, v := range order {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: chunk order has vertex %d at position %d, want [0,%d)", v, p, n)
			}
			pos[v] = int32(p)
		}
	}
	numChunks := (n + grain - 1) / grain
	dep := make([]int32, numChunks)
	for c := range dep {
		dep[c] = -1
	}
	for p := 0; p < n; p++ {
		v := int32(p)
		if order != nil {
			v = order[p]
		}
		c := p / grain
		start := int32(c * grain)
		for _, a := range g.Arcs(v) {
			tp := a.Head
			if pos != nil {
				tp = pos[a.Head]
			}
			if int(tp) >= p {
				return nil, fmt.Errorf("graph: sweep order is not topological: position %d reads tail at position %d", p, tp)
			}
			if tp < start && tp > dep[c] {
				dep[c] = tp
			}
		}
	}
	return dep, nil
}

// UniformChunkStarts returns the chunk boundary list (len numChunks+1,
// first 0, last n) for fixed-size chunks of grain positions — the
// variable-boundary representation of the classic fixed grain, so the
// scheduler speaks one boundary format regardless of how chunks were
// sized.
func UniformChunkStarts(n, grain int) []int32 {
	if grain < 1 {
		grain = 1
	}
	numChunks := (n + grain - 1) / grain
	if numChunks == 0 {
		numChunks = 1
	}
	starts := make([]int32, numChunks+1)
	for c := 1; c < numChunks; c++ {
		starts[c] = int32(c * grain)
	}
	starts[numChunks] = int32(n)
	return starts
}

// ChunkStartsByBytes partitions the sweep positions of a CSR downward
// graph into chunks whose scanned footprint is at most budget bytes,
// estimating each position's traffic as one first[] word plus its
// 8-byte arcs — the same accounting internal/bandwidth charges the
// legacy sweep. order is the sweep order (nil = identity); at least one
// position lands in every chunk.
func ChunkStartsByBytes(g *Graph, order []int32, budget int) []int32 {
	n := g.NumVertices()
	offsets := make([]int, n+1)
	for p := 0; p < n; p++ {
		v := int32(p)
		if order != nil {
			v = order[p]
		}
		offsets[p+1] = offsets[p] + 4 + 8*len(g.Arcs(v))
	}
	return chunkStartsByOffsets(offsets, budget)
}

// ChunkDepBoundsAt is the variable-boundary flavor of ChunkDepBounds:
// starts lists the chunk boundaries as sweep positions (len
// numChunks+1, starts[0]=0, strictly ascending, ending at n), and the
// result holds, per chunk, the maximum sweep position among tails of
// arcs entering the chunk from before its start (-1: none).
func ChunkDepBoundsAt(g *Graph, order []int32, starts []int32) ([]int32, error) {
	n := g.NumVertices()
	if err := validChunkStarts(starts, n); err != nil {
		return nil, err
	}
	if order != nil && len(order) != n {
		return nil, fmt.Errorf("graph: chunk order has length %d, want %d", len(order), n)
	}
	var pos []int32
	if order != nil {
		pos = make([]int32, n)
		for p, v := range order {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: chunk order has vertex %d at position %d, want [0,%d)", v, p, n)
			}
			pos[v] = int32(p)
		}
	}
	dep := make([]int32, len(starts)-1)
	for c := range dep {
		dep[c] = -1
	}
	c := 0
	for p := 0; p < n; p++ {
		for int32(p) >= starts[c+1] {
			c++
		}
		start := starts[c]
		v := int32(p)
		if order != nil {
			v = order[p]
		}
		for _, a := range g.Arcs(v) {
			tp := a.Head
			if pos != nil {
				tp = pos[a.Head]
			}
			if int(tp) >= p {
				return nil, fmt.Errorf("graph: sweep order is not topological: position %d reads tail at position %d", p, tp)
			}
			if tp < start && tp > dep[c] {
				dep[c] = tp
			}
		}
	}
	return dep, nil
}

// ChunkDepBoundsAt is the packed-stream, variable-boundary flavor: like
// (*Packed).ChunkDepBounds but over an explicit chunk boundary list.
func (p *Packed) ChunkDepBoundsAt(pos []int32, starts []int32) ([]int32, error) {
	if err := validChunkStarts(starts, p.n); err != nil {
		return nil, err
	}
	if p.explicitV != (pos != nil) {
		return nil, fmt.Errorf("graph: packed chunk bounds need a position map iff the stream has vertex words (explicit=%v, pos=%v)",
			p.explicitV, pos != nil)
	}
	if pos != nil && len(pos) != p.n {
		return nil, fmt.Errorf("graph: chunk position map has length %d, want %d", len(pos), p.n)
	}
	dep := make([]int32, len(starts)-1)
	for c := range dep {
		dep[c] = -1
	}
	stream := p.stream
	c := 0
	i := 0
	for sp := 0; sp < p.n; sp++ {
		for int32(sp) >= starts[c+1] {
			c++
		}
		start := starts[c]
		deg := int(stream[i])
		i++
		if p.explicitV {
			i++ // the vertex word; heads are what matters here
		}
		for end := i + 2*deg; i < end; i += 2 {
			tp := int32(stream[i])
			if pos != nil {
				tp = pos[stream[i]]
			}
			if int(tp) >= sp {
				return nil, fmt.Errorf("graph: packed stream is not topological: position %d reads tail at position %d", sp, tp)
			}
			if tp < start && tp > dep[c] {
				dep[c] = tp
			}
		}
	}
	return dep, nil
}

// ChunkDepBounds is the packed-stream flavor of the package-level
// function: it walks the fused stream instead of the CSR arrays, so the
// precompute reads the same words the scheduler's workers will. pos
// maps a vertex ID to its sweep position and must be non-nil exactly
// when the stream carries explicit vertex words (non-identity orders);
// for the identity layout a head's ID is its position.
func (p *Packed) ChunkDepBounds(pos []int32, grain int) ([]int32, error) {
	if grain <= 0 {
		return nil, fmt.Errorf("graph: chunk grain %d is not positive", grain)
	}
	if p.explicitV != (pos != nil) {
		return nil, fmt.Errorf("graph: packed chunk bounds need a position map iff the stream has vertex words (explicit=%v, pos=%v)",
			p.explicitV, pos != nil)
	}
	if pos != nil && len(pos) != p.n {
		return nil, fmt.Errorf("graph: chunk position map has length %d, want %d", len(pos), p.n)
	}
	numChunks := (p.n + grain - 1) / grain
	dep := make([]int32, numChunks)
	for c := range dep {
		dep[c] = -1
	}
	stream := p.stream
	i := 0
	for sp := 0; sp < p.n; sp++ {
		deg := int(stream[i])
		i++
		if p.explicitV {
			i++ // the vertex word; heads are what matters here
		}
		c := sp / grain
		start := int32(c * grain)
		for end := i + 2*deg; i < end; i += 2 {
			tp := int32(stream[i])
			if pos != nil {
				tp = pos[stream[i]]
			}
			if int(tp) >= sp {
				return nil, fmt.Errorf("graph: packed stream is not topological: position %d reads tail at position %d", sp, tp)
			}
			if tp < start && tp > dep[c] {
				dep[c] = tp
			}
		}
	}
	return dep, nil
}
