package graph

import (
	"math/rand"
	"testing"
)

func TestComponentLabelsTwoIslands(t *testing.T) {
	g := mustFromArcs(t, 5, [][3]int64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	labels, count := ComponentLabels(g)
	if count != 2 {
		t.Fatalf("count=%d, want 2", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("labels=%v, {0,1,2} should share a component", labels)
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatalf("labels=%v, {3,4} should form their own component", labels)
	}
}

func TestComponentLabelsDirectedArcsCountAsUndirected(t *testing.T) {
	// 1 -> 0 only; still one weak component.
	g := mustFromArcs(t, 2, [][3]int64{{1, 0, 1}})
	_, count := ComponentLabels(g)
	if count != 1 {
		t.Fatalf("count=%d, want 1", count)
	}
}

func TestLargestComponent(t *testing.T) {
	g := mustFromArcs(t, 6, [][3]int64{{0, 1, 2}, {1, 2, 3}, {2, 0, 4}, {4, 5, 9}})
	sub, oldToNew, newToOld := LargestComponent(g)
	if sub.NumVertices() != 3 {
		t.Fatalf("largest component has %d vertices, want 3", sub.NumVertices())
	}
	if sub.NumArcs() != 3 {
		t.Fatalf("largest component has %d arcs, want 3", sub.NumArcs())
	}
	for old, nw := range oldToNew {
		if old <= 2 && nw < 0 {
			t.Fatalf("vertex %d dropped from its own component", old)
		}
		if old > 2 && nw >= 0 && old != 3 {
			// vertices 4,5 must be dropped; 3 is isolated and also dropped
			t.Fatalf("vertex %d kept, mapping %v", old, oldToNew)
		}
	}
	for nw, old := range newToOld {
		if oldToNew[old] != int32(nw) {
			t.Fatalf("mappings disagree at new=%d old=%d", nw, old)
		}
	}
	// Weights must survive with relabeled endpoints.
	if w, ok := sub.FindArc(oldToNew[1], oldToNew[2]); !ok || w != 3 {
		t.Fatalf("arc (1,2) lost or reweighted: %d %v", w, ok)
	}
}

func TestLargestComponentConnectedGraphIsIdentity(t *testing.T) {
	g := mustFromArcs(t, 3, [][3]int64{{0, 1, 1}, {1, 2, 1}})
	sub, oldToNew, _ := LargestComponent(g)
	if !sub.Equal(g) {
		t.Fatal("connected graph was modified")
	}
	for i, p := range oldToNew {
		if p != int32(i) {
			t.Fatalf("oldToNew=%v, want identity", oldToNew)
		}
	}
}

func TestApplyPermutation(t *testing.T) {
	xs := []string{"a", "b", "c"}
	out := ApplyPermutation([]int32{2, 0, 1}, xs)
	want := []string{"b", "c", "a"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out=%v, want %v", out, want)
		}
	}
}

func TestInvertPermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(100)
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		inv := InvertPermutation(perm)
		if !IsPermutation(inv) {
			t.Fatal("inverse is not a permutation")
		}
		for v, p := range perm {
			if inv[p] != int32(v) {
				t.Fatalf("inv[perm[%d]] = %d", v, inv[p])
			}
		}
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int32{2, 0, 1}) {
		t.Fatal("valid permutation rejected")
	}
	if IsPermutation([]int32{0, 0, 1}) {
		t.Fatal("duplicate accepted")
	}
	if IsPermutation([]int32{0, 3, 1}) {
		t.Fatal("out of range accepted")
	}
	if !IsPermutation(nil) {
		t.Fatal("empty permutation rejected")
	}
}
