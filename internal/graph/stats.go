package graph

// MaxArcWeight returns the largest arc weight in g (0 for arcless graphs).
// Bucket-based priority queues size themselves with it.
func MaxArcWeight(g *Graph) uint32 {
	var max uint32
	for _, a := range g.arcs {
		if a.Weight > max {
			max = a.Weight
		}
	}
	return max
}

// AvgDegree returns m/n, the average out-degree.
func AvgDegree(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(n)
}

// MaxOutDegree returns the largest out-degree in g.
func MaxOutDegree(g *Graph) int {
	max := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.OutDegree(v); d > max {
			max = d
		}
	}
	return max
}
