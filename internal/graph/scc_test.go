package graph

import (
	"math/rand"
	"testing"
)

func TestSCCLabelsBasic(t *testing.T) {
	// 0 <-> 1 cycle, 2 -> 0 one-way, 3 isolated.
	g := mustFromArcs(t, 4, [][3]int64{{0, 1, 1}, {1, 0, 1}, {2, 0, 1}})
	labels, count := SCCLabels(g)
	if count != 3 {
		t.Fatalf("count=%d, want 3", count)
	}
	if labels[0] != labels[1] {
		t.Fatal("cycle vertices in different SCCs")
	}
	if labels[2] == labels[0] || labels[3] == labels[0] || labels[2] == labels[3] {
		t.Fatalf("labels=%v", labels)
	}
}

func TestSCCLabelsBigCycle(t *testing.T) {
	const n = 1000
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddArc(int32(v), int32((v+1)%n), 1)
	}
	_, count := SCCLabels(b.Build())
	if count != 1 {
		t.Fatalf("cycle has %d SCCs, want 1", count)
	}
}

func TestSCCLabelsDAG(t *testing.T) {
	// A path DAG: every vertex is its own SCC.
	g := mustFromArcs(t, 5, [][3]int64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}})
	_, count := SCCLabels(g)
	if count != 5 {
		t.Fatalf("DAG has %d SCCs, want 5", count)
	}
}

func TestSCCDeepPathNoOverflow(t *testing.T) {
	// 200k-vertex path: a recursive Tarjan would blow the stack.
	const n = 200_000
	b := NewBuilder(n)
	for v := 0; v < n-1; v++ {
		b.MustAddArc(int32(v), int32(v+1), 1)
	}
	_, count := SCCLabels(b.Build())
	if count != n {
		t.Fatalf("count=%d, want %d", count, n)
	}
}

// sccOracle computes SCC equivalence by mutual reachability (O(n*m)).
func sccOracle(g *Graph) [][]bool {
	n := g.NumVertices()
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		stack := []int32{int32(s)}
		reach[s][s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.Arcs(v) {
				if !reach[s][a.Head] {
					reach[s][a.Head] = true
					stack = append(stack, a.Head)
				}
			}
		}
	}
	return reach
}

func TestSCCLabelsAgainstOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		labels, _ := SCCLabels(g)
		reach := sccOracle(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := reach[u][v] && reach[v][u]
				if same != (labels[u] == labels[v]) {
					t.Fatalf("trial %d: SCC disagreement at (%d,%d): same=%v labels %d,%d",
						trial, u, v, same, labels[u], labels[v])
				}
			}
		}
	}
}

func TestLargestSCC(t *testing.T) {
	// Big cycle {0,1,2}, small cycle {3,4}, bridge 2->3.
	g := mustFromArcs(t, 5, [][3]int64{
		{0, 1, 1}, {1, 2, 2}, {2, 0, 3}, {2, 3, 4}, {3, 4, 5}, {4, 3, 6},
	})
	sub, oldToNew, newToOld := LargestSCC(g)
	if sub.NumVertices() != 3 {
		t.Fatalf("largest SCC has %d vertices, want 3", sub.NumVertices())
	}
	for _, old := range []int32{0, 1, 2} {
		if oldToNew[old] < 0 {
			t.Fatalf("vertex %d dropped from its SCC", old)
		}
	}
	if oldToNew[3] != -1 || oldToNew[4] != -1 {
		t.Fatal("small SCC not dropped")
	}
	// Weight preserved across relabeling.
	if w, ok := sub.FindArc(oldToNew[1], oldToNew[2]); !ok || w != 2 {
		t.Fatalf("arc (1,2) lost: %d %v", w, ok)
	}
	for nw, old := range newToOld {
		if oldToNew[old] != int32(nw) {
			t.Fatal("mappings inconsistent")
		}
	}
}

func TestLargestSCCAlreadyStrong(t *testing.T) {
	g := mustFromArcs(t, 2, [][3]int64{{0, 1, 1}, {1, 0, 1}})
	sub, oldToNew, _ := LargestSCC(g)
	if !sub.Equal(g) || oldToNew[0] != 0 || oldToNew[1] != 1 {
		t.Fatal("strongly connected graph modified")
	}
}
