package graph

// Strongly connected components (iterative Tarjan). Road networks with
// one-way streets are not symmetric, so the generator keeps the largest
// *strongly* connected component: within it every query has an answer,
// as on the cleaned DIMACS benchmark instances.

// SCCLabels assigns each vertex the ID of its strongly connected
// component and returns the labels and the component count. Component
// IDs are dense in [0, count) in reverse topological order of the
// condensation (Tarjan's numbering).
func SCCLabels(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		labels[i] = -1
	}
	var stack []int32 // Tarjan's stack
	next := int32(0)

	// Explicit DFS stack: each frame tracks the vertex and the position
	// in its adjacency list, so deep graphs cannot overflow goroutine
	// stacks.
	type frame struct {
		v   int32
		arc int32
	}
	var dfs []frame
	for root := int32(0); root < int32(n); root++ {
		if index[root] >= 0 {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			arcs := g.Arcs(f.v)
			if int(f.arc) < len(arcs) {
				w := arcs[f.arc].Head
				f.arc++
				if index[w] < 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: close the frame.
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				if p := &dfs[len(dfs)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					labels[w] = int32(count)
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return labels, count
}

// LargestSCC returns the subgraph induced by the largest strongly
// connected component with both ID mappings (as LargestComponent, but
// directed).
func LargestSCC(g *Graph) (sub *Graph, oldToNew []int32, newToOld []int32) {
	labels, count := SCCLabels(g)
	if count <= 1 {
		n := g.NumVertices()
		oldToNew = make([]int32, n)
		newToOld = make([]int32, n)
		for i := range oldToNew {
			oldToNew[i] = int32(i)
			newToOld[i] = int32(i)
		}
		return g.Clone(), oldToNew, newToOld
	}
	size := make([]int, count)
	for _, l := range labels {
		size[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if size[c] > size[best] {
			best = c
		}
	}
	keep := make([]bool, g.NumVertices())
	for v, l := range labels {
		keep[v] = int(l) == best
	}
	return InducedSubgraph(g, keep)
}
