package graph

import (
	"math/rand"
	"testing"
)

func randomPackedGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(rng.Intn(1000)))
	}
	return b.Build()
}

func randomPerm(rng *rand.Rand, n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestPackedIdentityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(60)
		g := randomPackedGraph(rng, n, rng.Intn(4*n))
		p, err := NewPacked(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.ExplicitVertex() {
			t.Fatal("identity order must elide vertex words")
		}
		if want := n + 2*g.NumArcs(); p.Words() != want {
			t.Fatalf("Words()=%d, want %d", p.Words(), want)
		}
		if p.NumVertices() != n || p.NumArcs() != g.NumArcs() {
			t.Fatalf("dims %d/%d, want %d/%d", p.NumVertices(), p.NumArcs(), n, g.NumArcs())
		}
		ug, order, err := p.Unpack()
		if err != nil {
			t.Fatal(err)
		}
		if order != nil {
			t.Fatal("identity unpack returned an order")
		}
		if !ug.Equal(g) {
			t.Fatal("identity round trip changed the graph")
		}
	}
}

func TestPackedOrderedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(60)
		g := randomPackedGraph(rng, n, rng.Intn(4*n))
		ord := randomPerm(rng, n)
		p, err := NewPacked(g, ord)
		if err != nil {
			t.Fatal(err)
		}
		if !p.ExplicitVertex() {
			t.Fatal("explicit order must carry vertex words")
		}
		if want := 2*n + 2*g.NumArcs(); p.Words() != want {
			t.Fatalf("Words()=%d, want %d", p.Words(), want)
		}
		ug, uord, err := p.Unpack()
		if err != nil {
			t.Fatal(err)
		}
		if !ug.Equal(g) {
			t.Fatal("ordered round trip changed the graph")
		}
		for i := range ord {
			if uord[i] != ord[i] {
				t.Fatalf("order[%d]=%d, want %d", i, uord[i], ord[i])
			}
		}
	}
}

func TestPackedBlockStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomPackedGraph(rng, 40, 120)
	for _, ord := range [][]int32{nil, randomPerm(rng, 40)} {
		p, err := NewPacked(g, ord)
		if err != nil {
			t.Fatal(err)
		}
		bs := p.BlockStarts()
		if len(bs) != 41 {
			t.Fatalf("len(BlockStarts)=%d, want 41", len(bs))
		}
		if bs[0] != 0 || bs[40] != p.Words() {
			t.Fatalf("BlockStarts endpoints %d..%d, want 0..%d", bs[0], bs[40], p.Words())
		}
		stream := p.Stream()
		for pos := 0; pos < 40; pos++ {
			if bs[pos+1] <= bs[pos] {
				t.Fatalf("BlockStarts not strictly increasing at %d", pos)
			}
			deg := int(stream[bs[pos]])
			want := bs[pos] + 1 + 2*deg
			if p.ExplicitVertex() {
				want++
			}
			if bs[pos+1] != want {
				t.Fatalf("block %d spans [%d,%d), deg %d implies end %d", pos, bs[pos], bs[pos+1], deg, want)
			}
		}
	}
}

func TestPackedStreamGrammar(t *testing.T) {
	// Tiny hand-built graph: exact word-for-word layout.
	g, err := FromArcs(3, [][3]int64{{0, 1, 10}, {0, 2, 20}, {2, 1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPacked(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{2, 1, 10, 2, 20, 0, 1, 1, 5}
	got := p.Stream()
	if len(got) != len(want) {
		t.Fatalf("stream %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream %v, want %v", got, want)
		}
	}
	ord := []int32{2, 0, 1}
	p2, err := NewPacked(g, ord)
	if err != nil {
		t.Fatal(err)
	}
	want2 := []uint32{1, 2, 1, 5, 2, 0, 1, 10, 2, 20, 0, 1}
	got2 := p2.Stream()
	if len(got2) != len(want2) {
		t.Fatalf("ordered stream %v, want %v", got2, want2)
	}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("ordered stream %v, want %v", got2, want2)
		}
	}
}

func TestPackedOrderErrors(t *testing.T) {
	g, err := FromArcs(3, [][3]int64{{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int32{
		{0, 1},              // wrong length
		{0, 1, 1},           // duplicate
		{0, 1, 3},           // out of range
		{0, 1, -1},          // negative
		{2, 2, 0},           // duplicate, different spot
		{0, 1, 2, 2},        // too long
		make([]int32, 0, 1), // empty but non-nil
	} {
		if _, err := NewPacked(g, bad); err == nil {
			t.Fatalf("order %v accepted", bad)
		}
	}
}

func TestPackedWeightBoundary(t *testing.T) {
	// MaxWeight survives the round trip unchanged (words are raw uint32).
	g, err := FromArcs(2, [][3]int64{{0, 1, int64(MaxWeight)}, {1, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPacked(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ug, _, err := p.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	if !ug.Equal(g) {
		t.Fatal("boundary weights corrupted")
	}
}

func TestPackedUnpackRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomPackedGraph(rng, 20, 60)
	p, err := NewPacked(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Degree inflated past the stream end.
	p.stream[0] = uint32(p.Words())
	if _, _, err := p.Unpack(); err == nil {
		t.Fatal("overrunning degree accepted")
	}
	// Rebuild, then corrupt a head out of range.
	p, err = NewPacked(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for pos, bs := 0, p.BlockStarts(); pos < 20; pos++ {
		if p.stream[bs[pos]] > 0 {
			p.stream[bs[pos]+1] = uint32(p.NumVertices())
			break
		}
	}
	if _, _, err := p.Unpack(); err == nil {
		t.Fatal("out-of-range head accepted")
	}
}
