package graph

import "fmt"

// This file holds the raw-parts constructors the snapshot reader uses to
// rebuild the sweep streams around memory it does not own — typically
// slices aliasing an mmap'd file. FromRaw already plays this role for
// Graph (it stores the given first/arcs without copying); PackedFromParts
// and PackedZFromParts extend the same contract to the packed layouts.
//
// Unlike NewPacked/NewPackedZ, which derive a stream from a graph they
// trust, these constructors receive bytes from disk and therefore walk
// the full grammar before accepting it: a forged stream must fail here,
// not as an out-of-range index inside a sweep kernel. The walk reads
// every block once (O(n+m), allocation-light) — cheap next to the build
// the snapshot replaces, and the price of handing the kernels unvalidated
// file contents is memory unsafety shared by every process mapping it.

// PackedFromParts reassembles a Packed stream from its stored parts
// without copying either slice. The stream grammar is validated in full
// (degrees against block starts, head ranges, the order permutation when
// explicitV); the caller keeps ownership of the slices and must treat
// them as immutable afterwards.
func PackedFromParts(stream []uint32, blockStart []int, n, m int, explicitV bool) (*Packed, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: packed parts have negative dims %d/%d", n, m)
	}
	if len(blockStart) != n+1 {
		return nil, fmt.Errorf("graph: packed parts block index has %d entries, want %d", len(blockStart), n+1)
	}
	words := n + 2*m
	if explicitV {
		words += n
	}
	if len(stream) != words {
		return nil, fmt.Errorf("graph: packed parts stream has %d words, want %d", len(stream), words)
	}
	if n > 0 && blockStart[0] != 0 {
		return nil, fmt.Errorf("graph: packed parts block index does not start at 0")
	}
	if len(blockStart) > 0 && blockStart[n] != len(stream) {
		return nil, fmt.Errorf("graph: packed parts block index ends at %d, want %d", blockStart[n], len(stream))
	}
	var seen []bool
	if explicitV {
		seen = make([]bool, n)
	}
	arcs := 0
	for p := 0; p < n; p++ {
		i := blockStart[p]
		if i < 0 || blockStart[p+1] < i || blockStart[p+1] > len(stream) {
			return nil, fmt.Errorf("graph: packed parts block index not monotone at position %d", p)
		}
		if i >= len(stream) {
			return nil, fmt.Errorf("graph: packed parts stream truncated at position %d", p)
		}
		d := int(stream[i])
		i++
		want := 1 + 2*d
		if explicitV {
			v := int32(stream[i])
			i++
			want++
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: packed parts vertex %d out of range at position %d", v, p)
			}
			if seen[v] {
				return nil, fmt.Errorf("graph: packed parts vertex %d appears twice", v)
			}
			seen[v] = true
		}
		if blockStart[p+1]-blockStart[p] != want {
			return nil, fmt.Errorf("graph: packed parts block %d spans %d words, header says %d", p, blockStart[p+1]-blockStart[p], want)
		}
		for a := 0; a < d; a++ {
			if int(stream[i]) >= n {
				return nil, fmt.Errorf("graph: packed parts head %d out of range at position %d", stream[i], p)
			}
			i += 2
		}
		arcs += d
	}
	if arcs != m {
		return nil, fmt.Errorf("graph: packed parts degrees sum to %d arcs, want %d", arcs, m)
	}
	return &Packed{stream: stream, blockStart: blockStart, n: n, m: m, explicitV: explicitV}, nil
}

// PackedZFromParts reassembles a compressed sweep stream from its stored
// parts without copying. The stream must include the streamPad trailer
// past the last block (SaveSnapshot stores it so a loaded stream is
// wide-load safe in place). The full grammar — headers, width tags,
// delta ranges, the order permutation — is validated before the slices
// are accepted.
func PackedZFromParts(stream []byte, blockStart []int, n, m int, explicitV bool) (*PackedZ, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: packedz parts have negative dims %d/%d", n, m)
	}
	if len(blockStart) != n+1 {
		return nil, fmt.Errorf("graph: packedz parts block index has %d entries, want %d", len(blockStart), n+1)
	}
	if len(blockStart) > 0 && (blockStart[n] < 0 || blockStart[n]+streamPad != len(stream)) {
		return nil, fmt.Errorf("graph: packedz parts stream has %d bytes, block index ends at %d (+%d pad)", len(stream), blockStart[n], streamPad)
	}
	if n > 0 && blockStart[0] != 0 {
		return nil, fmt.Errorf("graph: packedz parts block index does not start at 0")
	}
	var seen []bool
	if explicitV {
		seen = make([]bool, n)
	}
	arcs := 0
	i := 0
	for p := 0; p < n; p++ {
		if i != blockStart[p] {
			return nil, fmt.Errorf("graph: packedz parts block %d starts at %d, index says %d", p, i, blockStart[p])
		}
		header, j, ok := readUvarint(stream, i)
		if !ok {
			return nil, fmt.Errorf("graph: packedz parts stream truncated at position %d", p)
		}
		i = j
		d := int(header >> 4)
		dtag := int(header >> 2 & 3)
		wtag := int(header & 3)
		if wtag == 3 || dtag == 3 {
			return nil, fmt.Errorf("graph: packedz parts block %d has reserved width tag", p)
		}
		if explicitV {
			zz, j, ok := readUvarint(stream, i)
			if !ok {
				return nil, fmt.Errorf("graph: packedz parts stream truncated at position %d", p)
			}
			i = j
			v := int32(p) + unzigzag(zz)
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: packedz parts vertex %d out of range at position %d", v, p)
			}
			if seen[v] {
				return nil, fmt.Errorf("graph: packedz parts vertex %d appears twice", v)
			}
			seen[v] = true
		}
		span := d * (tagWidth(dtag) + tagWidth(wtag))
		if i+span > blockStart[p+1] || blockStart[p+1] > blockStart[n] {
			return nil, fmt.Errorf("graph: packedz parts block %d overruns its index entry", p)
		}
		for a := 0; a < d; a++ {
			delta, ok := readFixed(stream, i, dtag)
			if !ok {
				return nil, fmt.Errorf("graph: packedz parts block %d overruns the stream", p)
			}
			i += tagWidth(dtag) + tagWidth(wtag)
			if delta == 0 || int(delta) > p {
				return nil, fmt.Errorf("graph: packedz parts head delta %d at position %d escapes [1,%d]", delta, p, p)
			}
		}
		if i != blockStart[p+1] {
			return nil, fmt.Errorf("graph: packedz parts block %d ends at %d, index says %d", p, i, blockStart[p+1])
		}
		arcs += d
	}
	if arcs != m {
		return nil, fmt.Errorf("graph: packedz parts degrees sum to %d arcs, want %d", arcs, m)
	}
	return &PackedZ{stream: stream, blockStart: blockStart, n: n, m: m, explicitV: explicitV}, nil
}

// ValidChunkStarts re-exports the chunk boundary shape check for readers
// that restore chunk geometry from storage instead of recomputing it.
func ValidChunkStarts(starts []int32, n int) error { return validChunkStarts(starts, n) }
