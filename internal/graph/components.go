package graph

// Connectivity helpers. Synthetic road networks are generated as
// bidirected graphs, so the weakly connected components computed here are
// also strongly connected; the generator uses LargestComponent to discard
// fragments created by random edge dropping, mirroring the cleanup done
// on the DIMACS benchmark instances.

// ComponentLabels assigns each vertex the ID of its weakly connected
// component (treating every arc as undirected) and returns the labels and
// the number of components. Labels are dense in [0, count).
func ComponentLabels(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	rev := g.Transpose()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	stack := make([]int32, 0, 1024)
	for v := int32(0); v < int32(n); v++ {
		if labels[v] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[v] = id
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.Arcs(u) {
				if labels[a.Head] < 0 {
					labels[a.Head] = id
					stack = append(stack, a.Head)
				}
			}
			for _, a := range rev.Arcs(u) {
				if labels[a.Head] < 0 {
					labels[a.Head] = id
					stack = append(stack, a.Head)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the subgraph induced by the largest weakly
// connected component together with the mapping old→new vertex ID
// (entries of -1 mark dropped vertices) and new→old.
func LargestComponent(g *Graph) (sub *Graph, oldToNew []int32, newToOld []int32) {
	labels, count := ComponentLabels(g)
	if count <= 1 {
		n := g.NumVertices()
		oldToNew = make([]int32, n)
		newToOld = make([]int32, n)
		for i := range oldToNew {
			oldToNew[i] = int32(i)
			newToOld[i] = int32(i)
		}
		return g.Clone(), oldToNew, newToOld
	}
	size := make([]int, count)
	for _, l := range labels {
		size[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if size[c] > size[best] {
			best = c
		}
	}
	keep := make([]bool, g.NumVertices())
	for v, l := range labels {
		keep[v] = int(l) == best
	}
	return InducedSubgraph(g, keep)
}

// InducedSubgraph returns the subgraph on the vertices with keep[v]=true,
// with vertices renumbered densely in increasing old-ID order, plus both
// direction mappings (oldToNew has -1 for dropped vertices).
func InducedSubgraph(g *Graph, keep []bool) (sub *Graph, oldToNew []int32, newToOld []int32) {
	n := g.NumVertices()
	oldToNew = make([]int32, n)
	newToOld = make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if keep[v] {
			oldToNew[v] = int32(len(newToOld))
			newToOld = append(newToOld, int32(v))
		} else {
			oldToNew[v] = -1
		}
	}
	b := NewBuilder(len(newToOld))
	for _, old := range newToOld {
		for _, a := range g.Arcs(old) {
			if keep[a.Head] {
				b.MustAddArc(oldToNew[old], oldToNew[a.Head], a.Weight)
			}
		}
	}
	return b.Build(), oldToNew, newToOld
}

// ApplyPermutation returns a copy of xs reordered so that the element of
// old vertex v lands at index perm[v]. It is the companion of
// Graph.Permute for per-vertex side data (coordinates, names, ...).
func ApplyPermutation[T any](perm []int32, xs []T) []T {
	out := make([]T, len(xs))
	for v, p := range perm {
		out[p] = xs[v]
	}
	return out
}

// InvertPermutation returns the inverse permutation.
func InvertPermutation(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for v, p := range perm {
		inv[p] = int32(v)
	}
	return inv
}

// IsPermutation reports whether perm is a permutation of 0..len(perm)-1.
func IsPermutation(perm []int32) bool {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || int(p) >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}
