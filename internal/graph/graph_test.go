package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromArcs(t *testing.T, n int, triples [][3]int64) *Graph {
	t.Helper()
	g, err := FromArcs(n, triples)
	if err != nil {
		t.Fatalf("FromArcs: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumArcs() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	tr := g.Transpose()
	if tr.NumVertices() != 0 {
		t.Fatalf("transpose of empty graph has %d vertices", tr.NumVertices())
	}
}

func TestBuilderSortsByTail(t *testing.T) {
	g := mustFromArcs(t, 4, [][3]int64{{2, 0, 5}, {0, 1, 1}, {2, 3, 7}, {0, 2, 2}})
	if g.NumArcs() != 4 {
		t.Fatalf("m=%d, want 4", g.NumArcs())
	}
	if got := g.OutDegree(0); got != 2 {
		t.Fatalf("outdeg(0)=%d, want 2", got)
	}
	if got := g.OutDegree(1); got != 0 {
		t.Fatalf("outdeg(1)=%d, want 0", got)
	}
	a := g.Arcs(0)
	if a[0] != (Arc{1, 1}) || a[1] != (Arc{2, 2}) {
		t.Fatalf("arcs(0)=%v, insertion order not preserved", a)
	}
	a = g.Arcs(2)
	if a[0] != (Arc{0, 5}) || a[1] != (Arc{3, 7}) {
		t.Fatalf("arcs(2)=%v", a)
	}
}

func TestBuilderRangeErrors(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddArc(0, 2, 1); err == nil {
		t.Fatal("head out of range accepted")
	}
	if err := b.AddArc(-1, 0, 1); err == nil {
		t.Fatal("negative tail accepted")
	}
	if err := b.AddArc(0, 1, MaxWeight+1); err == nil {
		t.Fatal("oversized weight accepted")
	}
	if err := b.AddArc(0, 1, MaxWeight); err != nil {
		t.Fatalf("MaxWeight rejected: %v", err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 50, 300)
	tt := g.Transpose().Transpose()
	// Double transpose preserves the arc multiset per vertex; compare as
	// sorted multisets since arc order within a vertex may differ.
	if g.NumVertices() != tt.NumVertices() || g.NumArcs() != tt.NumArcs() {
		t.Fatalf("size mismatch after double transpose")
	}
	if !sameArcMultiset(g, tt) {
		t.Fatal("double transpose changed the arc multiset")
	}
}

func sameArcMultiset(g, h *Graph) bool {
	count := map[[3]int64]int{}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, a := range g.Arcs(v) {
			count[[3]int64{int64(v), int64(a.Head), int64(a.Weight)}]++
		}
	}
	for v := int32(0); v < int32(h.NumVertices()); v++ {
		for _, a := range h.Arcs(v) {
			count[[3]int64{int64(v), int64(a.Head), int64(a.Weight)}]--
		}
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestTransposeArcDirection(t *testing.T) {
	g := mustFromArcs(t, 3, [][3]int64{{0, 1, 4}, {1, 2, 6}})
	r := g.Transpose()
	if w, ok := r.FindArc(1, 0); !ok || w != 4 {
		t.Fatalf("transpose arc (1,0): w=%d ok=%v", w, ok)
	}
	if w, ok := r.FindArc(2, 1); !ok || w != 6 {
		t.Fatalf("transpose arc (2,1): w=%d ok=%v", w, ok)
	}
	if _, ok := r.FindArc(0, 1); ok {
		t.Fatal("transpose kept a forward arc")
	}
}

func TestPermuteRelabels(t *testing.T) {
	g := mustFromArcs(t, 3, [][3]int64{{0, 1, 4}, {1, 2, 6}})
	p, err := g.Permute([]int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := p.FindArc(2, 0); !ok || w != 4 {
		t.Fatalf("permuted arc (2,0): w=%d ok=%v", w, ok)
	}
	if w, ok := p.FindArc(0, 1); !ok || w != 6 {
		t.Fatalf("permuted arc (0,1): w=%d ok=%v", w, ok)
	}
}

func TestPermuteRejectsBadPermutations(t *testing.T) {
	g := mustFromArcs(t, 3, [][3]int64{{0, 1, 4}})
	for _, perm := range [][]int32{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		if _, err := g.Permute(perm); err == nil {
			t.Fatalf("Permute accepted invalid permutation %v", perm)
		}
	}
}

func TestPermuteIdentityPreserves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 40, 200)
	id := make([]int32, 40)
	for i := range id {
		id[i] = int32(i)
	}
	p, err := g.Permute(id)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(p) {
		t.Fatal("identity permutation changed the graph")
	}
}

func TestBuildDeduped(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddArc(0, 1, 9)
	b.MustAddArc(0, 1, 4)
	b.MustAddArc(0, 1, 7)
	b.MustAddArc(1, 1, 3) // self loop: dropped
	b.MustAddArc(1, 2, 5)
	g := b.BuildDeduped()
	if g.NumArcs() != 2 {
		t.Fatalf("m=%d, want 2 after dedupe", g.NumArcs())
	}
	if w, _ := g.FindArc(0, 1); w != 4 {
		t.Fatalf("dedupe kept weight %d, want minimum 4", w)
	}
}

func TestAddSat(t *testing.T) {
	cases := [][3]uint32{
		{1, 2, 3},
		{Inf, 5, Inf},
		{5, Inf, Inf},
		{Inf, Inf, Inf},
		{Inf - 1, 1, Inf},
		{Inf - 2, 1, Inf - 1},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := AddSat(c[0], c[1]); got != c[2] {
			t.Errorf("AddSat(%d,%d)=%d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestAddSatNeverBelowOperands(t *testing.T) {
	f := func(a, b uint32) bool {
		s := AddSat(a, b)
		return s >= a && s >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFindArcPicksMinParallel(t *testing.T) {
	g := mustFromArcs(t, 2, [][3]int64{{0, 1, 9}, {0, 1, 3}, {0, 1, 5}})
	if w, ok := g.FindArc(0, 1); !ok || w != 3 {
		t.Fatalf("FindArc=%d,%v, want 3,true", w, ok)
	}
}

func TestMemoryBytes(t *testing.T) {
	g := mustFromArcs(t, 3, [][3]int64{{0, 1, 4}, {1, 2, 6}})
	want := int64(4*4 + 2*8)
	if got := g.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes=%d, want %d", got, want)
	}
}

func TestStats(t *testing.T) {
	g := mustFromArcs(t, 4, [][3]int64{{0, 1, 4}, {0, 2, 9}, {0, 3, 2}, {1, 2, 6}})
	if w := MaxArcWeight(g); w != 9 {
		t.Fatalf("MaxArcWeight=%d, want 9", w)
	}
	if d := MaxOutDegree(g); d != 3 {
		t.Fatalf("MaxOutDegree=%d, want 3", d)
	}
	if ad := AvgDegree(g); ad != 1.0 {
		t.Fatalf("AvgDegree=%v, want 1.0", ad)
	}
}

// randomGraph builds a random multigraph with n vertices and m arcs.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(rng.Intn(100)))
	}
	return b.Build()
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		n := 1 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(4*n))
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		p, err := g.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		back, err := p.Permute(InvertPermutation(perm))
		if err != nil {
			t.Fatal(err)
		}
		if !sameArcMultiset(g, back) {
			t.Fatalf("n=%d: permute round trip changed arc multiset", n)
		}
	}
}
