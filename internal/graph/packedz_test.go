package graph

import (
	"math/rand"
	"testing"
)

// randomTopoGraph builds a graph whose arcs all point backward in the
// given sweep order (order[p] scanned at p; nil = identity): the shape
// PackedZ requires, matching the reverse-topological downward graphs of
// the sweep. Weights are drawn from mixed magnitudes so every width tag
// and the Inf escape get exercised.
func randomTopoGraph(rng *rand.Rand, n, m int, order []int32) *Graph {
	pos := make([]int32, n)
	for p := 0; p < n; p++ {
		v := int32(p)
		if order != nil {
			v = order[p]
		}
		pos[v] = int32(p)
	}
	vertexAt := func(p int32) int32 {
		if order != nil {
			return order[p]
		}
		return p
	}
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		tp := 1 + rng.Intn(n-1) // tail position; needs an earlier head
		hp := rng.Intn(tp)
		b.MustAddArc(vertexAt(int32(tp)), vertexAt(int32(hp)), uint32(rng.Intn(1000)))
	}
	g := b.Build()
	// The builder caps weights at MaxWeight; Inf and the full 32-bit
	// range only arise through metric customization. Re-metric in place
	// so every width tag and the Inf block promotion get exercised.
	for v := int32(0); int(v) < n; v++ {
		arcs := g.Arcs(v)
		for i := range arcs {
			switch rng.Intn(5) {
			case 0:
				arcs[i].Weight = uint32(rng.Intn(0x100)) // 8-bit range incl. 0xFF
			case 1:
				arcs[i].Weight = uint32(rng.Intn(0x10000)) // 16-bit range incl. 0xFFFF
			case 2:
				arcs[i].Weight = rng.Uint32() // full range
			case 3:
				arcs[i].Weight = Inf
			}
		}
	}
	return g
}

func TestPackedZIdentityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		g := randomTopoGraph(rng, n, rng.Intn(4*n), nil)
		z, err := NewPackedZ(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if z.ExplicitVertex() {
			t.Fatal("identity order must elide vertex words")
		}
		if z.NumVertices() != n || z.NumArcs() != g.NumArcs() {
			t.Fatalf("dims %d/%d, want %d/%d", z.NumVertices(), z.NumArcs(), n, g.NumArcs())
		}
		ug, order, err := z.Unpack()
		if err != nil {
			t.Fatal(err)
		}
		if order != nil {
			t.Fatal("identity unpack returned an order")
		}
		if !ug.Equal(g) {
			t.Fatal("identity round trip changed the graph")
		}
	}
}

func TestPackedZOrderedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		ord := randomPerm(rng, n)
		g := randomTopoGraph(rng, n, rng.Intn(4*n), ord)
		z, err := NewPackedZ(g, ord)
		if err != nil {
			t.Fatal(err)
		}
		if !z.ExplicitVertex() {
			t.Fatal("explicit order must carry vertex words")
		}
		ug, uord, err := z.Unpack()
		if err != nil {
			t.Fatal(err)
		}
		if !ug.Equal(g) {
			t.Fatal("ordered round trip changed the graph")
		}
		for i := range ord {
			if uord[i] != ord[i] {
				t.Fatalf("order[%d]=%d, want %d", i, uord[i], ord[i])
			}
		}
	}
}

func TestPackedZCompressesBelowPacked(t *testing.T) {
	// A sweep-shaped graph (local backward arcs, small weights) must
	// compress well below the uncompressed packed stream — this is the
	// whole point of the layout.
	rng := rand.New(rand.NewSource(13))
	n := 2000
	b := NewBuilder(n)
	for p := 1; p < n; p++ {
		deg := 1 + rng.Intn(4)
		for a := 0; a < deg; a++ {
			back := 1 + rng.Intn(64)
			h := p - back
			if h < 0 {
				h = 0
			}
			b.MustAddArc(int32(p), int32(h), uint32(rng.Intn(30000)))
		}
	}
	g := b.Build()
	z, err := NewPackedZ(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPacked(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	packedBytes := int64(p.Words()) * 4
	if z.UncompressedBytes() != packedBytes {
		t.Fatalf("UncompressedBytes()=%d, packed stream is %d bytes", z.UncompressedBytes(), packedBytes)
	}
	ratio := z.CompressionRatio()
	if ratio >= 0.75 {
		t.Fatalf("compression ratio %.3f, want < 0.75 on a sweep-shaped graph", ratio)
	}
	if got := float64(z.ByteLen()) / float64(packedBytes); got != ratio {
		t.Fatalf("CompressionRatio()=%.6f disagrees with ByteLen/packed=%.6f", ratio, got)
	}
}

func TestPackedZWeightWidths(t *testing.T) {
	// One block per width class, with the boundary values: narrow
	// widths hold their full verbatim range (0xFF fits 8-bit, 0xFFFF
	// fits 16-bit), and any Inf weight promotes its whole block to the
	// 4-byte width, where Inf is the all-ones word.
	cases := [][]uint32{
		{0, 1, 0xFE},                  // pure 8-bit
		{0xFF, 3},                     // 0xFF still fits 8-bit
		{0x100, 9},                    // past one byte: 16-bit
		{0xFFFF, 7},                   // 0xFFFF still fits 16-bit
		{0, 0xFE, Inf},                // Inf promotes a tiny block to 32-bit
		{MaxWeight, 0, Inf},           // full width
		{Inf, Inf},                    // all-Inf is 32-bit too
		{0x10000, 0xFFFF, 0xFF, 0, 1}, // mixed, 32-bit
	}
	n := 1 + len(cases)
	b := NewBuilder(n)
	for i, ws := range cases {
		for range ws {
			b.MustAddArc(int32(i+1), int32(i), 0)
		}
	}
	g := b.Build()
	// Builder caps weights at MaxWeight; install the boundary values
	// the way customization does, through the arc views.
	for i, ws := range cases {
		arcs := g.Arcs(int32(i + 1))
		for j, w := range ws {
			arcs[j].Weight = w
		}
	}
	z, err := NewPackedZ(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ug, _, err := z.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	if !ug.Equal(g) {
		t.Fatal("width-boundary weights corrupted in round trip")
	}
	// Spot-check the chosen tags through the headers.
	wantTags := []int{WTag8, WTag8, WTag16, WTag16, WTag32, WTag32, WTag32, WTag32}
	bs := z.BlockStarts()
	for i, want := range wantTags {
		header, _, ok := readUvarint(z.Stream(), bs[i+1])
		if !ok {
			t.Fatalf("block %d header unreadable", i+1)
		}
		if got := int(header & 3); got != want {
			t.Fatalf("block %d (weights %v) has wtag %d, want %d", i+1, cases[i], got, want)
		}
	}
}

func TestPackedZWithWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, explicit := range []bool{false, true} {
		n := 2 + rng.Intn(60)
		var ord []int32
		if explicit {
			ord = randomPerm(rng, n)
		}
		g := randomTopoGraph(rng, n, 3*n, ord)
		z, err := NewPackedZ(g, ord)
		if err != nil {
			t.Fatal(err)
		}
		// New metric over the same structure: shifts widths around
		// (some blocks grow to 32-bit, some shrink, some close to Inf).
		g2 := g.Clone()
		for v := int32(0); int(v) < n; v++ {
			arcs := g2.Arcs(v)
			for i := range arcs {
				switch rng.Intn(4) {
				case 0:
					arcs[i].Weight = Inf
				case 1:
					arcs[i].Weight = uint32(rng.Intn(0x100))
				default:
					arcs[i].Weight = rng.Uint32() % (MaxWeight + 1)
				}
			}
		}
		z2, err := z.WithWeights(g2)
		if err != nil {
			t.Fatal(err)
		}
		ug, _, err := z2.Unpack()
		if err != nil {
			t.Fatal(err)
		}
		if !ug.Equal(g2) {
			t.Fatalf("WithWeights (explicit=%v) did not carry the new metric", explicit)
		}
		// The patched stream must equal a from-scratch encode: same
		// structure, same widths, same bytes.
		zf, err := NewPackedZ(g2, ord)
		if err != nil {
			t.Fatal(err)
		}
		if string(z2.Stream()) != string(zf.Stream()) {
			t.Fatalf("WithWeights stream differs from fresh encode (explicit=%v)", explicit)
		}
		// And the original stream is untouched.
		ug0, _, err := z.Unpack()
		if err != nil {
			t.Fatal(err)
		}
		if !ug0.Equal(g) {
			t.Fatal("WithWeights mutated the source stream")
		}
	}
}

func TestPackedZRejectsNonTopological(t *testing.T) {
	// Forward arc under the identity order.
	g, err := FromArcs(3, [][3]int64{{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPackedZ(g, nil); err == nil {
		t.Fatal("forward arc accepted under identity order")
	}
	// Self-loop: head position equals tail position.
	gl, err := FromArcs(2, [][3]int64{{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPackedZ(gl, nil); err == nil {
		t.Fatal("self-loop accepted")
	}
	// Backward arc made forward by the order.
	gb, err := FromArcs(2, [][3]int64{{1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPackedZ(gb, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPackedZ(gb, []int32{1, 0}); err == nil {
		t.Fatal("order-reversed arc accepted")
	}
	// Bad orders.
	for _, bad := range [][]int32{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		if _, err := NewPackedZ(gb, bad); err == nil {
			t.Fatalf("order %v accepted", bad)
		}
	}
}

func TestPackedZBlockStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, explicit := range []bool{false, true} {
		n := 50
		var ord []int32
		if explicit {
			ord = randomPerm(rng, n)
		}
		g := randomTopoGraph(rng, n, 150, ord)
		z, err := NewPackedZ(g, ord)
		if err != nil {
			t.Fatal(err)
		}
		bs := z.BlockStarts()
		if len(bs) != n+1 {
			t.Fatalf("len(BlockStarts)=%d, want %d", len(bs), n+1)
		}
		if bs[0] != 0 || bs[n] != z.ByteLen() {
			t.Fatalf("BlockStarts endpoints %d..%d, want 0..%d", bs[0], bs[n], z.ByteLen())
		}
		for p := 0; p < n; p++ {
			if bs[p+1] <= bs[p] {
				t.Fatalf("BlockStarts not strictly increasing at %d", p)
			}
			// Each block must start with a parseable header whose
			// degree matches the graph.
			header, _, ok := readUvarint(z.Stream(), bs[p])
			if !ok {
				t.Fatalf("block %d header unreadable", p)
			}
			v := int32(p)
			if explicit {
				v = ord[p]
			}
			if got := int(header >> 4); got != len(g.Arcs(v)) {
				t.Fatalf("block %d encodes degree %d, graph has %d", p, got, len(g.Arcs(v)))
			}
		}
	}
}

func TestPackedZUnpackRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := randomTopoGraph(rng, 30, 90, nil)
	fresh := func() *PackedZ {
		z, err := NewPackedZ(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	// Reserved width tag.
	z := fresh()
	z.stream[z.blockStart[0]] |= 3
	if _, _, err := z.Unpack(); err == nil {
		t.Fatal("reserved width tag accepted")
	}
	// Truncated stream (cut into the last real byte, not just the
	// wide-load pad).
	z = fresh()
	z.stream = z.stream[:z.ByteLen()-1]
	if _, _, err := z.Unpack(); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Delta escaping the valid range: position 0 has no predecessors,
	// so inflate an early block's degree to force a read there.
	z = fresh()
	z.stream[z.blockStart[0]] = 1<<4 | WTag8<<2 | WTag8 // position 0 claims an arc
	if _, _, err := z.Unpack(); err == nil {
		t.Fatal("delta at position 0 accepted")
	}
}

func TestPackedZChunkStartsByBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomTopoGraph(rng, 500, 2000, nil)
	z, err := NewPackedZ(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 64, 256, 4096, 1 << 20} {
		starts := z.ChunkStartsByBytes(budget)
		if err := validChunkStarts(starts, z.NumVertices()); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		bs := z.BlockStarts()
		for c := 0; c+1 < len(starts); c++ {
			span := bs[starts[c+1]] - bs[starts[c]]
			if span > budget && starts[c+1]-starts[c] > 1 {
				t.Fatalf("budget %d: chunk %d spans %d bytes over %d positions", budget, c, span, starts[c+1]-starts[c])
			}
		}
	}
	// A huge budget must yield one chunk.
	if starts := z.ChunkStartsByBytes(1 << 30); len(starts) != 2 {
		t.Fatalf("unbounded budget produced %d chunks", len(starts)-1)
	}
}

func TestPackedZChunkDepBoundsAtMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, explicit := range []bool{false, true} {
		n := 200
		var ord []int32
		if explicit {
			ord = randomPerm(rng, n)
		}
		g := randomTopoGraph(rng, n, 800, ord)
		z, err := NewPackedZ(g, ord)
		if err != nil {
			t.Fatal(err)
		}
		for _, starts := range [][]int32{
			UniformChunkStarts(n, 32),
			UniformChunkStarts(n, 7),
			z.ChunkStartsByBytes(300),
			{0, 1, int32(n)},
		} {
			want, err := ChunkDepBoundsAt(g, ord, starts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := z.ChunkDepBoundsAt(starts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("explicit=%v: %d chunks, want %d", explicit, len(got), len(want))
			}
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("explicit=%v chunk %d: dep %d, want %d", explicit, c, got[c], want[c])
				}
			}
		}
	}
}

func TestUniformChunkStartsMatchesFixedGrain(t *testing.T) {
	// The variable-boundary representation of a fixed grain must
	// reproduce ChunkDepBounds exactly.
	rng := rand.New(rand.NewSource(19))
	g := randomTopoGraph(rng, 300, 1200, nil)
	for _, grain := range []int{1, 7, 64, 1024} {
		want, err := ChunkDepBounds(g, nil, grain)
		if err != nil {
			t.Fatal(err)
		}
		starts := UniformChunkStarts(300, grain)
		if int(starts[len(starts)-1]) != 300 || len(starts)-1 != len(want) {
			t.Fatalf("grain %d: %d chunks, want %d", grain, len(starts)-1, len(want))
		}
		got, err := ChunkDepBoundsAt(g, nil, starts)
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("grain %d chunk %d: dep %d, want %d", grain, c, got[c], want[c])
			}
		}
	}
}

func FuzzPackedZRoundTrip(f *testing.F) {
	f.Add(uint16(8), uint16(20), int64(1))
	f.Add(uint16(1), uint16(0), int64(2))
	f.Add(uint16(300), uint16(900), int64(3))
	f.Add(uint16(2), uint16(1), int64(4))
	f.Add(uint16(64), uint16(512), int64(5))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed int64) {
		n := 1 + int(nRaw)%512
		m := int(mRaw) % 2048
		if n < 2 {
			m = 0
		}
		rng := rand.New(rand.NewSource(seed))
		var ord []int32
		if seed%2 == 0 {
			ord = randomPerm(rng, n)
		}
		g := randomTopoGraph2(rng, n, m, ord)
		z, err := NewPackedZ(g, ord)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		ug, uord, err := z.Unpack()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !ug.Equal(g) {
			t.Fatal("round trip changed the graph")
		}
		if (uord == nil) != (ord == nil) {
			t.Fatal("round trip changed order presence")
		}
		for i := range ord {
			if uord[i] != ord[i] {
				t.Fatalf("order[%d]=%d, want %d", i, uord[i], ord[i])
			}
		}
	})
}

// randomTopoGraph2 is randomTopoGraph tolerating n == 1 (no arcs fit).
func randomTopoGraph2(rng *rand.Rand, n, m int, order []int32) *Graph {
	if n < 2 {
		return NewBuilder(n).Build()
	}
	return randomTopoGraph(rng, n, m, order)
}
