// Package diameter computes the graph diameter — the longest shortest
// path — by building one shortest-path tree per source vertex (Section
// VII-B.a). With sources = all vertices the result is exact; sampling
// gives a lower bound. Both the CPU (PHAST) and the simulated-GPU
// (GPHAST) pipelines of the paper are implemented.
package diameter

import (
	"phast/internal/core"
	"phast/internal/gphast"
	"phast/internal/graph"
)

// Result is a diameter estimate together with a witness pair.
type Result struct {
	Diameter uint32
	From, To int32 // original vertex IDs
}

// CPU computes the maximum finite distance over trees from the given
// sources using PHAST; each worker keeps track of the largest label it
// encounters, as in the paper. Exact when sources covers all vertices.
func CPU(e *core.Engine, sources []int32) Result {
	var res Result
	for _, s := range sources {
		e.Tree(s)
		dist := e.RawDistances()
		for ev, d := range dist {
			if d != graph.Inf && d > res.Diameter {
				res.Diameter = d
				res.From = s
				res.To = e.OrigID(int32(ev))
			}
		}
	}
	return res
}

// GPU computes the same estimate with GPHAST: trees are built in batches
// of up to the engine's maxK, a device kernel folds each batch into a
// per-vertex running-maximum array (the memory-for-coalescing trade the
// paper describes), and one final sweep over that array extracts the
// diameter. The witness source is not tracked on the device; only the
// far endpoint is reported (From = -1).
func GPU(ge *gphast.Engine, sources []int32) (Result, error) {
	maxBuf, err := ge.NewRunningMax()
	if err != nil {
		return Result{}, err
	}
	defer ge.Device().Free(maxBuf)
	k := ge.MaxK()
	for lo := 0; lo < len(sources); lo += k {
		hi := lo + k
		if hi > len(sources) {
			hi = len(sources)
		}
		ge.MultiTree(sources[lo:hi])
		ge.FoldMax(maxBuf)
	}
	host := make([]uint32, maxBuf.Len())
	maxBuf.CopyOut(0, host)
	var res Result
	res.From = -1
	for ev, d := range host {
		if d != graph.Inf && d > res.Diameter {
			res.Diameter = d
			res.To = ge.OrigID(int32(ev))
		}
	}
	return res, nil
}
