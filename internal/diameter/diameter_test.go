package diameter

import (
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/gphast"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/simt"
	"phast/internal/sssp"
)

func setup(t *testing.T) (*graph.Graph, *core.Engine) {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 16, Height: 14, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	e, err := core.NewEngine(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph, e
}

func oracleDiameter(g *graph.Graph) uint32 {
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	var best uint32
	for s := int32(0); s < int32(g.NumVertices()); s++ {
		d.Run(s)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if dd := d.Dist(v); dd != graph.Inf && dd > best {
				best = dd
			}
		}
	}
	return best
}

func allSources(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

func TestCPUDiameterExact(t *testing.T) {
	g, e := setup(t)
	res := CPU(e, allSources(g.NumVertices()))
	want := oracleDiameter(g)
	if res.Diameter != want {
		t.Fatalf("diameter=%d, want %d", res.Diameter, want)
	}
	// The witness pair must realize the diameter.
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(res.From)
	if d.Dist(res.To) != want {
		t.Fatalf("witness (%d,%d) has distance %d, want %d", res.From, res.To, d.Dist(res.To), want)
	}
}

func TestGPUDiameterMatchesCPU(t *testing.T) {
	g, e := setup(t)
	ge, err := gphast.NewEngine(e.Clone(), simt.NewDevice(simt.GTX580()), 8)
	if err != nil {
		t.Fatal(err)
	}
	sources := allSources(g.NumVertices())
	cpu := CPU(e, sources)
	gpu, err := GPU(ge, sources)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Diameter != cpu.Diameter {
		t.Fatalf("gpu diameter=%d, cpu=%d", gpu.Diameter, cpu.Diameter)
	}
	d := sssp.NewDijkstra(g.Transpose(), pq.KindBinaryHeap)
	d.Run(gpu.To)
	found := false
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d.Dist(v) == gpu.Diameter {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("gpu witness endpoint %d does not realize the diameter", gpu.To)
	}
}

func TestGPUDiameterUnevenBatches(t *testing.T) {
	g, e := setup(t)
	ge, err := gphast.NewEngine(e, simt.NewDevice(simt.GTX580()), 7)
	if err != nil {
		t.Fatal(err)
	}
	// 17 sources with maxK=7: batches of 7, 7, 3.
	gpu, err := GPU(ge, allSources(17))
	if err != nil {
		t.Fatal(err)
	}
	cpu := CPU(e, allSources(17))
	if gpu.Diameter != cpu.Diameter {
		t.Fatalf("uneven batches: gpu=%d cpu=%d", gpu.Diameter, cpu.Diameter)
	}
	_ = g
}

func TestSampledIsLowerBound(t *testing.T) {
	g, e := setup(t)
	full := CPU(e, allSources(g.NumVertices()))
	sampled := CPU(e, allSources(g.NumVertices()/5))
	if sampled.Diameter > full.Diameter {
		t.Fatalf("sampled diameter %d exceeds exact %d", sampled.Diameter, full.Diameter)
	}
}
