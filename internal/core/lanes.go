package core

import "phast/internal/graph"

// relax4 performs the packed relaxation of one arc for four trees at
// once — the Go analogue of the paper's SSE 4.1 sequence (Section IV-B):
// load the four tail labels, add four copies of the arc length with
// saturation at Inf, and store the packed minimum with the four head
// labels. dst and src must have length 4 (enforced by full slice
// expressions at the call sites so the compiler can drop bounds checks).
//
//phast:hotpath
func relax4(dst, src []uint32, w uint32) {
	_ = src[3]
	_ = dst[3]
	s0 := graph.AddSat(src[0], w)
	s1 := graph.AddSat(src[1], w)
	s2 := graph.AddSat(src[2], w)
	s3 := graph.AddSat(src[3], w)
	if s0 < dst[0] {
		dst[0] = s0
	}
	if s1 < dst[1] {
		dst[1] = s1
	}
	if s2 < dst[2] {
		dst[2] = s2
	}
	if s3 < dst[3] {
		dst[3] = s3
	}
}
