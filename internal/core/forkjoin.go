package core

import "sync"

// forkJoinSweep is the original per-level fork-join parallel sweep,
// retained behind Options.ForkJoinSweep as a differential oracle for
// the persistent scheduler: every level above the grain threshold is
// split into near-equal worker slices joined on a barrier before the
// next level starts (Lemma 4.1 makes each level a valid parallel step).
// It reuses the same chunk-scan kernels as the scheduler, so the two
// paths differ only in how work is ordered and synchronized — exactly
// what a differential test wants. Requires level ranges (reordered or
// level order modes); parallelSweep never routes rank order here.
//
// This function deliberately spawns goroutines per level slice; that is
// the overhead the scheduler exists to remove, and why this path is not
// //phast:hotpath annotated (phastlint's hotalloc rule now rejects
// goroutine launches in hot kernels).
func (e *Engine) forkJoinSweep(kind sweepKind, k int) {
	s := e.s
	workers := int32(s.pool.Workers())
	threshold := int(s.grain)
	kScale := 1
	if kind.multiKind() {
		kScale = k
	}
	var wg sync.WaitGroup
	for _, r := range s.levelRanges {
		lo, hi := r[0], r[1]
		size := hi - lo
		if int(size)*kScale < threshold {
			e.scanChunkKind(kind, k, lo, hi)
			continue
		}
		chunk := (size + workers - 1) / workers
		for w := int32(1); w < workers; w++ {
			clo := lo + w*chunk
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			if clo >= chi {
				continue
			}
			wg.Add(1)
			go func(clo, chi int32) {
				defer wg.Done()
				//phastlint:ignore engineshare workers scan disjoint [clo,chi) slices of one level and never touch the cursor; the per-level wg.Wait() orders them
				e.scanChunkKind(kind, k, clo, chi)
			}(clo, chi)
		}
		chi := lo + chunk
		if chi > hi {
			chi = hi
		}
		e.scanChunkKind(kind, k, lo, chi)
		wg.Wait() // barrier: the next level reads this level's labels
	}
}
