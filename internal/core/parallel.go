package core

import (
	"sync"

	"phast/internal/graph"
)

// minParallelLevel is the level size below which the parallel sweep
// processes the level on the calling goroutine: upper CH levels hold a
// handful of vertices each and a barrier would cost more than the work.
const minParallelLevel = 1024

// TreeParallel computes the tree from source using the intra-level
// parallel sweep of Section V: vertices of one level are partitioned
// into near-equal blocks, one per worker, and workers synchronize with a
// barrier between levels (Lemma 4.1 makes every level a valid parallel
// step). Requires a mode with level ranges (reordered or level order);
// rank order falls back to the sequential sweep.
func (e *Engine) TreeParallel(source int32) {
	e.hasParents = false
	e.lastMulti = false
	e.chSearch(source, nil)
	if e.s.packed != nil {
		e.buildSeeds()
		if e.s.levelRanges == nil || e.s.workers <= 1 {
			e.sweepPacked()
		} else {
			e.sweepPackedParallel()
		}
		return
	}
	if e.s.levelRanges == nil || e.s.workers <= 1 {
		if e.s.order == nil {
			e.sweepIdentity()
		} else {
			e.sweepOrdered()
		}
		return
	}
	e.sweepParallel()
}

// MultiTreeParallel combines the k-sources-per-sweep batching of Section
// IV-B with the intra-level parallel sweep of Section V: the k upward
// searches run sequentially (they are microseconds), then each level's
// vertices are partitioned across workers, every worker relaxing all k
// lanes of its block. Falls back to the sequential multi-sweep when the
// mode has no level ranges or a single worker is configured.
func (e *Engine) MultiTreeParallel(sources []int32) {
	k := len(sources)
	if k == 0 {
		e.k = 0
		return
	}
	if e.s.levelRanges == nil || e.s.workers <= 1 {
		e.MultiTree(sources, false)
		return
	}
	if cap(e.kdist) < k*e.s.n {
		e.kdist = make([]uint32, k*e.s.n)
	}
	e.kdist = e.kdist[:k*e.s.n]
	e.k = k
	e.lastMulti = true
	e.touched = e.touched[:0]
	for i, src := range sources {
		e.chSearchLane(src, i, k)
	}
	if e.s.packed != nil {
		e.buildSeeds()
		e.sweepPackedMultiParallel(k)
		return
	}
	e.sweepMultiParallel(k)
}

// sweepMultiParallel is sweepMulti with intra-level parallelism: the
// vertices of one level have no arcs among them (Lemma 4.1), so each
// level range splits into worker chunks with a barrier per level
// (Section V). Levels below minParallelLevel stay sequential.
//
//phast:hotpath
func (e *Engine) sweepMultiParallel(k int) {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	kd := e.kdist
	mark := e.mark
	order := e.s.order
	workers := e.s.workers

	scanRange := func(lo, hi int32) {
		for p := lo; p < hi; p++ {
			v := p
			if order != nil {
				v = order[p]
			}
			base := int(v) * k
			dv := kd[base : base+k]
			if !mark[v] {
				for j := range dv {
					dv[j] = graph.Inf
				}
			} else {
				mark[v] = false
			}
			for i := first[v]; i < first[v+1]; i++ {
				a := arcs[i]
				ub := int(a.Head) * k
				du := kd[ub : ub+k]
				w := a.Weight
				for j := 0; j < k; j++ {
					if nd := graph.AddSat(du[j], w); nd < dv[j] {
						dv[j] = nd
					}
				}
			}
		}
	}

	var wg sync.WaitGroup
	for _, r := range e.s.levelRanges {
		lo, hi := r[0], r[1]
		size := hi - lo
		if int(size)*k < minParallelLevel {
			scanRange(lo, hi)
			continue
		}
		chunk := (size + int32(workers) - 1) / int32(workers)
		for w := 1; w < workers; w++ {
			clo := lo + int32(w)*chunk
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			if clo >= chi {
				continue
			}
			wg.Add(1)
			//phastlint:ignore hotalloc per-level barrier goroutines are the Section V design; one launch per level chunk, amortized over the whole level scan
			go func(clo, chi int32) {
				defer wg.Done()
				scanRange(clo, chi)
			}(clo, chi)
		}
		chi := lo + chunk
		if chi > hi {
			chi = hi
		}
		scanRange(lo, chi)
		wg.Wait()
	}
}

// sweepParallel is sweepIdentity/sweepOrdered with the same per-level
// barrier parallelization as sweepMultiParallel.
//
//phast:hotpath
func (e *Engine) sweepParallel() {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	dist := e.dist
	mark := e.mark
	order := e.s.order
	workers := e.s.workers

	// scanRange processes sweep positions [lo,hi).
	scanRange := func(lo, hi int32) {
		for p := lo; p < hi; p++ {
			v := p
			if order != nil {
				v = order[p]
			}
			best := graph.Inf
			if mark[v] {
				best = dist[v]
				mark[v] = false
			}
			for i := first[v]; i < first[v+1]; i++ {
				a := arcs[i]
				if nd := graph.AddSat(dist[a.Head], a.Weight); nd < best {
					best = nd
				}
			}
			dist[v] = best
		}
	}

	var wg sync.WaitGroup
	for _, r := range e.s.levelRanges {
		lo, hi := r[0], r[1]
		size := hi - lo
		if int(size) < minParallelLevel {
			scanRange(lo, hi)
			continue
		}
		chunk := (size + int32(workers) - 1) / int32(workers)
		for w := 1; w < workers; w++ {
			clo := lo + int32(w)*chunk
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			if clo >= chi {
				continue
			}
			wg.Add(1)
			//phastlint:ignore hotalloc per-level barrier goroutines are the Section V design; one launch per level chunk, amortized over the whole level scan
			go func(clo, chi int32) {
				defer wg.Done()
				scanRange(clo, chi)
			}(clo, chi)
		}
		chi := lo + chunk
		if chi > hi {
			chi = hi
		}
		scanRange(lo, chi)
		wg.Wait() // barrier: the next level reads this level's labels
	}
}
