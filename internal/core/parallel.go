package core

import "phast/internal/graph"

// Parallel sweep entry points and the CSR chunk kernels they schedule.
// All parallel kernel families (single-tree, parents, scalar multi,
// k-lane; CSR and packed) run as chunk scans on the persistent
// scheduler of scheduler.go: the entry point runs the upward search,
// picks the kernel family, and hands fixed-size position chunks to the
// parked worker pool with dependency-bounded starts. The per-level
// fork-join of the first Section V implementation survives behind
// Options.ForkJoinSweep as a differential oracle (forkjoin.go).

// TreeParallel computes the tree from source using the multi-core sweep
// of Section V on the persistent scheduler. Falls back to the
// sequential sweep when a single worker is configured or the graph is
// smaller than one chunk (Options.ParallelGrain).
func (e *Engine) TreeParallel(source int32) {
	e.hasParents = false
	e.lastMulti = false
	e.chSearch(source, nil)
	if e.s.packedz != nil {
		e.buildSeeds()
		if !e.parallelSweep(packedZSingle, 1) {
			e.sweepPackedZ()
		}
		return
	}
	if e.s.packed != nil {
		e.buildSeeds()
		if !e.parallelSweep(packedSingle, 1) {
			e.sweepPacked()
		}
		return
	}
	if e.parallelSweep(csrSingle, 1) {
		return
	}
	if e.s.order == nil {
		e.sweepIdentity()
	} else {
		e.sweepOrdered()
	}
}

// TreeWithParentsParallel is TreeParallel additionally recording, for
// every vertex, the arc of G+ responsible for its label (Section
// VII-A), enabling PathTo. Under the fork-join oracle the parents
// family falls back to the sequential kernel — the oracle exists to
// differentially check the scheduler, not to serve queries.
func (e *Engine) TreeWithParentsParallel(source int32) {
	if e.parent == nil {
		e.parent = make([]int32, e.s.n)
	}
	e.hasParents = true
	e.lastMulti = false
	e.chSearch(source, e.parent)
	if e.s.packedz != nil {
		e.buildSeeds()
		if !e.parallelSweep(packedZParents, 1) {
			e.sweepPackedZParents()
		}
		return
	}
	if e.s.packed != nil {
		e.buildSeeds()
		if !e.parallelSweep(packedParents, 1) {
			e.sweepPackedParents()
		}
		return
	}
	if e.parallelSweep(csrParents, 1) {
		return
	}
	if e.s.order == nil {
		e.sweepIdentityParents()
	} else {
		e.sweepOrderedParents()
	}
}

// MultiTreeParallel combines the k-sources-per-sweep batching of
// Section IV-B with the scheduled parallel sweep: the k upward searches
// run sequentially (they are microseconds), then the workers relax all
// k lanes of every chunk they claim. useLanes selects the unrolled
// lane-group relaxation (vertex-major engines then require k to be a
// multiple of 4; lane-major engines accept any k), mirroring MultiTree.
// Falls back to the sequential multi-sweep when a single worker is
// configured or the graph is smaller than one chunk.
func (e *Engine) MultiTreeParallel(sources []int32, useLanes bool) {
	k := len(sources)
	if k == 0 {
		e.k = 0
		return
	}
	if useLanes && k%4 != 0 && !e.s.laneMajor {
		panic("core: lane-based MultiTreeParallel requires k to be a multiple of 4")
	}
	if cap(e.kdist) < k*e.s.n {
		e.kdist = make([]uint32, k*e.s.n)
	}
	e.kdist = e.kdist[:k*e.s.n]
	e.k = k
	e.lastMulti = true
	e.touched = e.touched[:0]
	for i, src := range sources {
		if e.s.laneMajor {
			e.chSearchLaneSoA(src, i, k)
		} else {
			e.chSearchLane(src, i, k)
		}
	}
	if e.s.laneMajor {
		e.buildSeeds()
		kind := packedZMultiSoA
		if useLanes {
			kind = packedZLanesSoA
		}
		if !e.parallelSweep(kind, k) {
			e.sweepPackedZSoA(k, useLanes)
		}
		return
	}
	if e.s.packedz != nil {
		e.buildSeeds()
		kind := packedZMulti
		if useLanes {
			kind = packedZLanes
		}
		if !e.parallelSweep(kind, k) {
			if useLanes {
				e.sweepPackedZMultiLanes(k)
			} else {
				e.sweepPackedZMulti(k)
			}
		}
		return
	}
	if e.s.packed != nil {
		e.buildSeeds()
		kind := packedMulti
		if useLanes {
			kind = packedLanes
		}
		if !e.parallelSweep(kind, k) {
			if useLanes {
				e.sweepPackedMultiLanes(k)
			} else {
				e.sweepPackedMulti(k)
			}
		}
		return
	}
	kind := csrMulti
	if useLanes {
		kind = csrLanes
	}
	if !e.parallelSweep(kind, k) {
		if useLanes {
			e.sweepMultiLanes(k)
		} else {
			e.sweepMulti(k)
		}
	}
}

// scanCSRChunk relaxes sweep positions [lo,hi) of the single-tree CSR
// sweep. Every position is owned by exactly one chunk, so the mark
// clear and label write race with nobody; external labels are read only
// after the scheduler's frontier passed the chunk's dependency bound.
//
//phast:hotpath
func (e *Engine) scanCSRChunk(lo, hi int32) {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	dist := e.dist
	mark := e.mark
	order := e.s.order
	for p := lo; p < hi; p++ {
		v := p
		if order != nil {
			v = order[p]
		}
		best := graph.Inf
		if mark[v] {
			best = dist[v]
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			if nd := graph.AddSat(dist[a.Head], a.Weight); nd < best {
				best = nd
			}
		}
		dist[v] = best
	}
}

// scanCSRParentsChunk is scanCSRChunk recording G+ parent pointers.
//
//phast:hotpath
func (e *Engine) scanCSRParentsChunk(lo, hi int32) {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	dist := e.dist
	mark := e.mark
	parent := e.parent
	order := e.s.order
	for p := lo; p < hi; p++ {
		v := p
		if order != nil {
			v = order[p]
		}
		best := graph.Inf
		bestP := int32(-1)
		if mark[v] {
			best = dist[v]
			bestP = parent[v] // set by the CH search
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			if nd := graph.AddSat(dist[a.Head], a.Weight); nd < best {
				best = nd
				bestP = a.Head
			}
		}
		dist[v] = best
		parent[v] = bestP
	}
}

// scanCSRMultiChunk relaxes all k trees of sweep positions [lo,hi) with
// a scalar inner loop.
//
//phast:hotpath
func (e *Engine) scanCSRMultiChunk(lo, hi int32, k int) {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	kd := e.kdist
	mark := e.mark
	order := e.s.order
	for p := lo; p < hi; p++ {
		v := p
		if order != nil {
			v = order[p]
		}
		base := int(v) * k
		dv := kd[base : base+k]
		if !mark[v] {
			for j := range dv {
				dv[j] = graph.Inf
			}
		} else {
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			ub := int(a.Head) * k
			du := kd[ub : ub+k]
			w := a.Weight
			for j := 0; j < k; j++ {
				if nd := graph.AddSat(du[j], w); nd < dv[j] {
					dv[j] = nd
				}
			}
		}
	}
}

// scanCSRLanesChunk is scanCSRMultiChunk with the inner loop unrolled
// into the 4-wide relax4 lanes (Section IV-B SSE analogue).
//
//phast:hotpath
func (e *Engine) scanCSRLanesChunk(lo, hi int32, k int) {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	kd := e.kdist
	mark := e.mark
	order := e.s.order
	for p := lo; p < hi; p++ {
		v := p
		if order != nil {
			v = order[p]
		}
		base := int(v) * k
		dv := kd[base : base+k : base+k]
		if !mark[v] {
			for j := range dv {
				dv[j] = graph.Inf
			}
		} else {
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			ub := int(a.Head) * k
			du := kd[ub : ub+k : ub+k]
			for j := 0; j+4 <= k; j += 4 {
				relax4(dv[j:j+4:j+4], du[j:j+4:j+4], a.Weight)
			}
		}
	}
}
