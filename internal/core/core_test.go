package core

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

func gridGraph(rng *rand.Rand, w, h, maxW int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				wt := uint32(1 + rng.Intn(maxW))
				b.MustAddArc(id(x, y), id(x+1, y), wt)
				b.MustAddArc(id(x+1, y), id(x, y), wt)
			}
			if y+1 < h {
				wt := uint32(1 + rng.Intn(maxW))
				b.MustAddArc(id(x, y), id(x, y+1), wt)
				b.MustAddArc(id(x, y+1), id(x, y), wt)
			}
		}
	}
	return b.Build()
}

func randomGraph(rng *rand.Rand, n, m, maxW int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(1+rng.Intn(maxW)))
	}
	return b.Build()
}

func newEngine(t *testing.T, g *graph.Graph, opt Options) *Engine {
	t.Helper()
	h := ch.Build(g, ch.Options{Workers: 1})
	e, err := NewEngine(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var allModes = []SweepMode{SweepReordered, SweepLevelOrder, SweepRankOrder}

func TestTreeMatchesDijkstraAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				var g *graph.Graph
				if trial%2 == 0 {
					n := 2 + rng.Intn(50)
					g = randomGraph(rng, n, rng.Intn(5*n), 25)
				} else {
					g = gridGraph(rng, 4+rng.Intn(8), 4+rng.Intn(8), 30)
				}
				n := g.NumVertices()
				e := newEngine(t, g, Options{Mode: mode})
				d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
				for q := 0; q < 6; q++ {
					s := int32(rng.Intn(n))
					e.Tree(s)
					d.Run(s)
					for v := int32(0); v < int32(n); v++ {
						if got, want := e.Dist(v), d.Dist(v); got != want {
							t.Fatalf("trial %d src %d: dist(%d)=%d, want %d", trial, s, v, got, want)
						}
					}
				}
			}
		})
	}
}

// TestImplicitInitAcrossManyTrees drives one engine across many sources
// including sources whose trees reach disjoint regions, which is exactly
// where stale labels from skipped initialization would surface.
func TestImplicitInitAcrossManyTrees(t *testing.T) {
	// Two disconnected grids glued into one vertex set.
	rng := rand.New(rand.NewSource(2))
	b := graph.NewBuilder(50)
	// component A: 0..24 (5x5 grid)
	id := func(base, x, y int) int32 { return int32(base + y*5 + x) }
	for _, base := range []int{0, 25} {
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				if x+1 < 5 {
					w := uint32(1 + rng.Intn(9))
					b.MustAddArc(id(base, x, y), id(base, x+1, y), w)
					b.MustAddArc(id(base, x+1, y), id(base, x, y), w)
				}
				if y+1 < 5 {
					w := uint32(1 + rng.Intn(9))
					b.MustAddArc(id(base, x, y), id(base, x, y+1), w)
					b.MustAddArc(id(base, x, y+1), id(base, x, y), w)
				}
			}
		}
	}
	g := b.Build()
	e := newEngine(t, g, Options{})
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	sources := []int32{0, 30, 7, 49, 12, 25, 0, 44}
	for _, s := range sources {
		e.Tree(s)
		d.Run(s)
		for v := int32(0); v < 50; v++ {
			if got, want := e.Dist(v), d.Dist(v); got != want {
				t.Fatalf("src %d: dist(%d)=%d, want %d (stale label?)", s, v, got, want)
			}
		}
	}
}

func TestTreeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gridGraph(rng, 15, 14, 40)
	for _, mode := range allModes {
		h := ch.Build(g, ch.Options{Workers: 1})
		e, err := NewEngine(h, Options{Mode: mode, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewEngine(h, Options{Mode: mode, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 5; q++ {
			s := int32(rng.Intn(g.NumVertices()))
			e.TreeParallel(s)
			seq.Tree(s)
			for v := int32(0); v < int32(g.NumVertices()); v++ {
				if e.Dist(v) != seq.Dist(v) {
					t.Fatalf("mode %v src %d: parallel dist(%d)=%d, sequential %d",
						mode, s, v, e.Dist(v), seq.Dist(v))
				}
			}
		}
	}
}

func TestParallelSmallLevelsThreshold(t *testing.T) {
	// A graph smaller than one scheduler chunk (DefaultParallelGrain)
	// exercises the sequential fallback inside the parallel sweep.
	rng := rand.New(rand.NewSource(4))
	g := gridGraph(rng, 6, 6, 10)
	e := newEngine(t, g, Options{Workers: 8})
	d := sssp.NewDijkstra(g, pq.KindDial)
	s := int32(17)
	e.TreeParallel(s)
	d.Run(s)
	for v := int32(0); v < 36; v++ {
		if e.Dist(v) != d.Dist(v) {
			t.Fatalf("dist(%d)=%d, want %d", v, e.Dist(v), d.Dist(v))
		}
	}
}

func TestMultiTreeMatchesSingleTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gridGraph(rng, 9, 8, 30)
	n := g.NumVertices()
	for _, mode := range allModes {
		e := newEngine(t, g, Options{Mode: mode})
		single := e.Clone()
		for _, k := range []int{1, 2, 3, 5, 8} {
			sources := make([]int32, k)
			for i := range sources {
				sources[i] = int32(rng.Intn(n))
			}
			e.MultiTree(sources, false)
			if e.K() != k {
				t.Fatalf("K()=%d, want %d", e.K(), k)
			}
			for i, s := range sources {
				single.Tree(s)
				for v := int32(0); v < int32(n); v++ {
					if got, want := e.MultiDist(i, v), single.Dist(v); got != want {
						t.Fatalf("mode %v k=%d tree %d (src %d): dist(%d)=%d, want %d",
							mode, k, i, s, v, got, want)
					}
				}
			}
		}
	}
}

func TestMultiTreeLanesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gridGraph(rng, 10, 9, 35)
	n := g.NumVertices()
	e := newEngine(t, g, Options{})
	scalar := e.Clone()
	for _, k := range []int{4, 8, 16} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(n))
		}
		e.MultiTree(sources, true)
		scalar.MultiTree(sources, false)
		for i := 0; i < k; i++ {
			for v := int32(0); v < int32(n); v++ {
				if e.MultiDist(i, v) != scalar.MultiDist(i, v) {
					t.Fatalf("k=%d lane %d: lanes=%d scalar=%d at v=%d",
						k, i, e.MultiDist(i, v), scalar.MultiDist(i, v), v)
				}
			}
		}
	}
}

func TestMultiTreeLaneValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gridGraph(rng, 4, 4, 5)
	e := newEngine(t, g, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("lanes with k=3 accepted")
		}
	}()
	e.MultiTree([]int32{0, 1, 2}, true)
}

func TestMultiTreeRepeatedAndShrinkingK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gridGraph(rng, 7, 7, 20)
	n := g.NumVertices()
	e := newEngine(t, g, Options{})
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	for _, k := range []int{8, 4, 8, 2, 1} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(n))
		}
		e.MultiTree(sources, false)
		for i, s := range sources {
			d.Run(s)
			for v := int32(0); v < int32(n); v++ {
				if got, want := e.MultiDist(i, v), d.Dist(v); got != want {
					t.Fatalf("k=%d tree %d: dist(%d)=%d, want %d", k, i, v, got, want)
				}
			}
		}
	}
	e.MultiTree(nil, false)
	if e.K() != 0 {
		t.Fatal("empty MultiTree should clear K")
	}
}

func TestMultiTreeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := gridGraph(rng, 14, 12, 30)
	h := ch.Build(g, ch.Options{Workers: 1})
	par, err := NewEngine(h, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEngine(h, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	for _, k := range []int{1, 4, 7} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(n))
		}
		par.MultiTreeParallel(sources, false)
		seq.MultiTree(sources, false)
		for i := 0; i < k; i++ {
			for v := int32(0); v < int32(n); v++ {
				if par.MultiDist(i, v) != seq.MultiDist(i, v) {
					t.Fatalf("k=%d lane %d: parallel %d != sequential %d at %d",
						k, i, par.MultiDist(i, v), seq.MultiDist(i, v), v)
				}
			}
		}
	}
	// Workers=1 falls back to the sequential path.
	seq.MultiTreeParallel([]int32{3, 5}, false)
	if seq.K() != 2 {
		t.Fatal("fallback path broken")
	}
	par.MultiTreeParallel(nil, false)
	if par.K() != 0 {
		t.Fatal("empty batch should clear K")
	}
}

func TestTreeWithParentsPathsAreTight(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gridGraph(rng, 8, 8, 25)
	n := g.NumVertices()
	for _, mode := range allModes {
		e := newEngine(t, g, Options{Mode: mode})
		for q := 0; q < 4; q++ {
			s := int32(rng.Intn(n))
			e.TreeWithParents(s)
			for v := int32(0); v < int32(n); v += 3 {
				want := e.Dist(v)
				path := e.PathTo(v)
				if want == graph.Inf {
					if path != nil {
						t.Fatalf("path to unreached vertex %d", v)
					}
					continue
				}
				if path[0] != s || path[len(path)-1] != v {
					t.Fatalf("mode %v: path endpoints %v (s=%d v=%d)", mode, path, s, v)
				}
				var sum uint32
				for i := 1; i < len(path); i++ {
					w, ok := g.FindArc(path[i-1], path[i])
					if !ok {
						t.Fatalf("mode %v: path uses non-arc (%d,%d)", mode, path[i-1], path[i])
					}
					sum += w
				}
				if sum != want {
					t.Fatalf("mode %v: path length %d != dist %d", mode, sum, want)
				}
			}
		}
	}
}

func TestParentGPlusConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := gridGraph(rng, 7, 6, 15)
	e := newEngine(t, g, Options{})
	s := int32(11)
	e.TreeWithParents(s)
	if e.ParentGPlus(s) != -1 {
		t.Fatal("source has a parent")
	}
	// Every reached non-source vertex has a parent whose distance is
	// strictly smaller (positive weights).
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if v == s || e.Dist(v) == graph.Inf {
			continue
		}
		p := e.ParentGPlus(v)
		if p < 0 {
			t.Fatalf("reached vertex %d has no parent", v)
		}
		if e.Dist(p) >= e.Dist(v) {
			t.Fatalf("parent %d of %d not closer: %d vs %d", p, v, e.Dist(p), e.Dist(v))
		}
	}
}

func TestGTreeParents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gridGraph(rng, 8, 7, 20)
	n := g.NumVertices()
	e := newEngine(t, g, Options{})
	s := int32(13)
	e.Tree(s)
	parents := make([]int32, n)
	e.GTreeParents(parents)
	if parents[s] != -1 {
		t.Fatal("source has a G-tree parent")
	}
	for v := int32(0); v < int32(n); v++ {
		if v == s {
			continue
		}
		if e.Dist(v) == graph.Inf {
			if parents[v] != -1 {
				t.Fatalf("unreached vertex %d has parent", v)
			}
			continue
		}
		p := parents[v]
		if p < 0 {
			t.Fatalf("reached vertex %d has no G-tree parent", v)
		}
		w, ok := g.FindArc(p, v)
		if !ok {
			t.Fatalf("G-tree parent arc (%d,%d) not in G", p, v)
		}
		if e.Dist(p)+w != e.Dist(v) {
			t.Fatalf("G-tree identity violated at %d: %d + %d != %d", v, e.Dist(p), w, e.Dist(v))
		}
	}
}

func TestTreeWithoutParentsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gridGraph(rng, 4, 4, 5)
	e := newEngine(t, g, Options{})
	e.Tree(0)
	defer func() {
		if recover() == nil {
			t.Fatal("PathTo after plain Tree should panic")
		}
	}()
	e.PathTo(5)
}

func TestDistancesIntoAndAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gridGraph(rng, 5, 5, 10)
	e := newEngine(t, g, Options{})
	if e.Source() != -1 {
		t.Fatal("fresh engine has a source")
	}
	e.Tree(7)
	if e.Source() != 7 {
		t.Fatalf("Source()=%d, want 7", e.Source())
	}
	buf := make([]uint32, g.NumVertices())
	e.DistancesInto(buf)
	for v := range buf {
		if buf[v] != e.Dist(int32(v)) {
			t.Fatalf("DistancesInto mismatch at %d", v)
		}
	}
	if e.NumVertices() != 25 {
		t.Fatalf("NumVertices=%d", e.NumVertices())
	}
	if e.Mode() != SweepReordered {
		t.Fatalf("Mode=%v", e.Mode())
	}
	// ID mappings are mutually inverse.
	for v := int32(0); v < 25; v++ {
		if e.OrigID(e.EngineID(v)) != v {
			t.Fatalf("ID mapping broken at %d", v)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := gridGraph(rng, 6, 6, 12)
	e := newEngine(t, g, Options{})
	c := e.Clone()
	e.Tree(0)
	c.Tree(35)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	d.Run(0)
	for v := int32(0); v < 36; v++ {
		if e.Dist(v) != d.Dist(v) {
			t.Fatalf("clone corrupted original engine at %d", v)
		}
	}
	d.Run(35)
	for v := int32(0); v < 36; v++ {
		if c.Dist(v) != d.Dist(v) {
			t.Fatalf("clone wrong at %d", v)
		}
	}
}

func TestLevelRangesCoverAllVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := gridGraph(rng, 9, 9, 14)
	e := newEngine(t, g, Options{})
	total := int32(0)
	prevEnd := int32(0)
	for _, r := range e.LevelRanges() {
		if r[0] != prevEnd {
			t.Fatalf("ranges not contiguous: %v", e.LevelRanges())
		}
		total += r[1] - r[0]
		prevEnd = r[1]
	}
	if total != int32(g.NumVertices()) {
		t.Fatalf("ranges cover %d vertices, want %d", total, g.NumVertices())
	}
}

func TestRelax4(t *testing.T) {
	dst := []uint32{10, graph.Inf, 5, 100}
	src := []uint32{3, 4, graph.Inf, 90}
	relax4(dst, src, 5)
	want := []uint32{8, 9, 5, 95}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("relax4 dst=%v, want %v", dst, want)
		}
	}
	// Saturation: Inf + w must not wrap and win.
	dst = []uint32{graph.Inf, graph.Inf, graph.Inf, graph.Inf}
	src = []uint32{graph.Inf, graph.Inf - 1, graph.Inf, graph.Inf}
	relax4(dst, src, 10)
	for i, d := range dst {
		if d != graph.Inf {
			t.Fatalf("lane %d wrapped: %d", i, d)
		}
	}
}

func TestSweepModeString(t *testing.T) {
	if SweepReordered.String() != "reordered" ||
		SweepLevelOrder.String() != "level order" ||
		SweepRankOrder.String() != "rank order" {
		t.Fatal("SweepMode strings wrong")
	}
	if SweepMode(99).String() == "" {
		t.Fatal("unknown mode has empty string")
	}
}

func TestNewEngineUnknownMode(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := gridGraph(rng, 3, 3, 5)
	h := ch.Build(g, ch.Options{Workers: 1})
	if _, err := NewEngine(h, Options{Mode: SweepMode(42)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
