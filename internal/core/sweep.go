package core

import "phast/internal/graph"

// Tree computes all distance labels from source (an original-graph
// vertex ID) with one upward CH search and one sequential linear sweep.
// Labels are read back with Dist/RawDistances; previous results become
// invalid. Parent pointers are not recorded — use TreeWithParents.
func (e *Engine) Tree(source int32) {
	e.hasParents = false
	e.lastMulti = false
	e.chSearch(source, nil)
	if e.s.packedz != nil {
		e.buildSeeds()
		e.sweepPackedZ()
		return
	}
	if e.s.packed != nil {
		e.buildSeeds()
		e.sweepPacked()
		return
	}
	if e.s.order == nil {
		e.sweepIdentity()
	} else {
		e.sweepOrdered()
	}
}

// TreeWithParents is Tree but additionally records, for every vertex,
// the arc of G+ = (V, A ∪ A+) responsible for its label (Section VII-A).
func (e *Engine) TreeWithParents(source int32) {
	if e.parent == nil {
		e.parent = make([]int32, e.s.n)
	}
	e.hasParents = true
	e.lastMulti = false
	e.chSearch(source, e.parent)
	if e.s.packedz != nil {
		e.buildSeeds()
		e.sweepPackedZParents()
		return
	}
	if e.s.packed != nil {
		e.buildSeeds()
		e.sweepPackedParents()
		return
	}
	if e.s.order == nil {
		e.sweepIdentityParents()
	} else {
		e.sweepOrderedParents()
	}
}

// chSearch is PHAST's first phase: Dijkstra from the source in the
// upward graph, run until the queue empties (the loose target-independent
// criterion of Section II-B). It labels vertices in e.dist and marks
// them; unmarked labels are implicitly infinite (Section IV-C).
// If parents is non-nil the search records G+ parent pointers.
//
//phast:hotpath
func (e *Engine) chSearch(source int32, parents []int32) {
	src := e.s.toEngine[source]
	e.src = src
	q := e.queue
	q.reset()
	e.touched = append(e.touched[:0], src)
	e.dist[src] = 0
	e.mark[src] = true
	if parents != nil {
		parents[src] = -1
	}
	q.update(src, 0)
	up := e.s.up
	for !q.empty() {
		v, dv := q.pop()
		for _, a := range up.Arcs(v) {
			nd := graph.AddSat(dv, a.Weight)
			if !e.mark[a.Head] || nd < e.dist[a.Head] {
				if !e.mark[a.Head] {
					e.touched = append(e.touched, a.Head)
				}
				e.dist[a.Head] = nd
				e.mark[a.Head] = true
				if parents != nil {
					parents[a.Head] = v
				}
				q.update(a.Head, nd)
			}
		}
	}
}

// UpwardSearchSpaceWithParents is UpwardSearchSpace but also returns the
// G+ parent (engine ID, -1 for the source) of each labeled vertex, which
// GPHAST's tree-reconstruction mode seeds its device parent array with.
// Like UpwardSearchSpace it appends to the given slices (which may be
// nil), so a caller that reuses its scratch keeps the per-tree CPU phase
// allocation-free.
func (e *Engine) UpwardSearchSpaceWithParents(source int32, verts []int32, dists []uint32, parents []int32) ([]int32, []uint32, []int32) {
	if e.parent == nil {
		//phastlint:ignore hotalloc one-time warm-up of the parent array, amortized over every later tree
		e.parent = make([]int32, e.s.n)
	}
	e.hasParents = false // only a partial (upward) tree: PathTo stays off
	e.chSearch(source, e.parent)
	for _, v := range e.touched {
		verts = append(verts, v)
		dists = append(dists, e.dist[v])
		parents = append(parents, e.parent[v])
		e.mark[v] = false
	}
	return verts, dists, parents
}

// UpwardSearchSpace runs only PHAST's first phase from source and
// returns the engine-ID vertices the upward CH search labeled together
// with their final labels — the "search space" GPHAST copies to the GPU
// (<2KB per tree, Section VI). Appended to the given slices (which may
// be nil). The engine's per-tree state is fully reset before returning,
// so the call does not disturb subsequent Tree computations.
func (e *Engine) UpwardSearchSpace(source int32, verts []int32, dists []uint32) ([]int32, []uint32) {
	e.hasParents = false
	e.chSearch(source, nil)
	for _, v := range e.touched {
		verts = append(verts, v)
		dists = append(dists, e.dist[v])
		e.mark[v] = false
	}
	return verts, dists
}

// sweepIdentity is the second phase in the reordered layout: a pure
// linear scan over vertices 0..n-1, reading the incoming downward arcs
// and head labels sequentially (Section IV-A). The only non-sequential
// accesses are the labels of arc tails.
//
//phast:hotpath
func (e *Engine) sweepIdentity() {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	dist := e.dist
	mark := e.mark
	n := int32(e.s.n)
	for v := int32(0); v < n; v++ {
		best := graph.Inf
		if mark[v] {
			best = dist[v]
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			if nd := graph.AddSat(dist[a.Head], a.Weight); nd < best {
				best = nd
			}
		}
		dist[v] = best
	}
}

// sweepOrdered is the second phase when vertices keep their original IDs
// and are visited through an order array (rank order or level order).
//
//phast:hotpath
func (e *Engine) sweepOrdered() {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	dist := e.dist
	mark := e.mark
	for _, v := range e.s.order {
		best := graph.Inf
		if mark[v] {
			best = dist[v]
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			if nd := graph.AddSat(dist[a.Head], a.Weight); nd < best {
				best = nd
			}
		}
		dist[v] = best
	}
}

// sweepIdentityParents is sweepIdentity recording parent pointers too.
//
//phast:hotpath
func (e *Engine) sweepIdentityParents() {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	dist := e.dist
	mark := e.mark
	parent := e.parent
	n := int32(e.s.n)
	for v := int32(0); v < n; v++ {
		best := graph.Inf
		bestP := int32(-1)
		if mark[v] {
			best = dist[v]
			bestP = parent[v] // set by the CH search
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			if nd := graph.AddSat(dist[a.Head], a.Weight); nd < best {
				best = nd
				bestP = a.Head
			}
		}
		dist[v] = best
		parent[v] = bestP
	}
}

// sweepOrderedParents is sweepOrdered recording parent pointers too.
//
//phast:hotpath
func (e *Engine) sweepOrderedParents() {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	dist := e.dist
	mark := e.mark
	parent := e.parent
	for _, v := range e.s.order {
		best := graph.Inf
		bestP := int32(-1)
		if mark[v] {
			best = dist[v]
			bestP = parent[v]
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			if nd := graph.AddSat(dist[a.Head], a.Weight); nd < best {
				best = nd
				bestP = a.Head
			}
		}
		dist[v] = best
		parent[v] = bestP
	}
}

// ParentGPlus returns the G+ parent (original ID space) of v recorded by
// the last TreeWithParents, or -1 for the source and unreached vertices.
// The parent arc may be a shortcut.
func (e *Engine) ParentGPlus(v int32) int32 {
	if !e.hasParents {
		panic("core: ParentGPlus called without TreeWithParents")
	}
	p := e.parent[e.s.toEngine[v]]
	if p < 0 {
		return -1
	}
	return e.s.toOrig[p]
}

// RawParents exposes the engine-ID parent array of the last
// TreeWithParents call (engine IDs, -1 for roots/unreached).
func (e *Engine) RawParents() []int32 { return e.parent }

// GTreeParents derives a shortest-path tree of the original graph from
// the labels of the last Tree call, using the identity test of Section
// VII-A: one pass over the arcs of G makes u the parent of v whenever
// d(v) = d(u) + l(u,v). All arc lengths must be strictly positive, else
// zero-weight cycles could produce parent cycles. buf must have length n
// and is indexed by original vertex ID; entries are original IDs or -1.
func (e *Engine) GTreeParents(buf []int32) {
	if len(buf) != e.s.n {
		panic("core: GTreeParents buffer has wrong length")
	}
	g := e.s.h.G // engine ID space
	dist := e.dist
	toOrig := e.s.toOrig
	for i := range buf {
		buf[i] = -1
	}
	n := int32(e.s.n)
	for u := int32(0); u < n; u++ {
		du := dist[u]
		if du == graph.Inf {
			continue
		}
		for _, a := range g.Arcs(u) {
			if graph.AddSat(du, a.Weight) == dist[a.Head] && a.Head != e.src {
				buf[toOrig[a.Head]] = toOrig[u]
			}
		}
	}
}

// PathTo expands the G+ parent chain of v (original ID) recorded by the
// last TreeWithParents into a full path of original-graph vertices from
// the source, unpacking shortcuts (Section VII-A). Returns nil if v is
// unreached.
func (e *Engine) PathTo(v int32) []int32 {
	if !e.hasParents {
		panic("core: PathTo called without TreeWithParents")
	}
	ev := e.s.toEngine[v]
	if e.dist[ev] == graph.Inf {
		return nil
	}
	// Climb to the root collecting the engine-ID chain.
	var chain []int32
	for x := ev; x >= 0; x = e.parent[x] {
		chain = append(chain, x)
		if x == e.src {
			break
		}
	}
	// chain is v..src; reverse to src..v.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	h := e.s.h
	path := []int32{e.s.toOrig[chain[0]]}
	for i := 1; i < len(chain); i++ {
		u, w := chain[i-1], chain[i]
		var seg []int32
		if h.Rank[u] < h.Rank[w] {
			seg = h.UnpackUpArc(u, w)
		} else {
			seg = h.UnpackDownArc(u, w)
		}
		for _, x := range seg[1:] {
			path = append(path, e.s.toOrig[x])
		}
	}
	return path
}
