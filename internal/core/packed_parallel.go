package core

import (
	"sync"

	"phast/internal/graph"
)

// Intra-level parallel variants of the packed kernels (Section V over
// the fused stream). Workers enter the stream at level-chunk boundaries
// through Packed.BlockStarts and each carries its own seed cursor,
// positioned with one binary search per chunk; the barrier scaffolding
// is identical to sweepParallel/sweepMultiParallel.

// sweepPackedParallel is sweepPacked with a per-level barrier.
//
//phast:hotpath
func (e *Engine) sweepPackedParallel() {
	pk := e.s.packed
	stream := pk.Stream()
	blockStart := pk.BlockStarts()
	hasV := pk.ExplicitVertex()
	dist := e.dist
	seeds := e.seedPos
	workers := e.s.workers

	// scanRange processes sweep positions [lo,hi).
	scanRange := func(lo, hi int32) {
		si := seedLowerBound(seeds, lo)
		next := int32(-1)
		if si < len(seeds) {
			next = seeds[si]
		}
		i := blockStart[lo]
		for p := lo; p < hi; p++ {
			deg := int(stream[i])
			i++
			v := p
			if hasV {
				v = int32(stream[i])
				i++
			}
			best := graph.Inf
			if p == next {
				best = dist[v]
				si++
				next = -1
				if si < len(seeds) {
					next = seeds[si]
				}
			}
			for end := i + 2*deg; i < end; i += 2 {
				nd := graph.AddSat(dist[stream[i]], stream[i+1])
				if nd < best {
					best = nd
				}
			}
			dist[v] = best
		}
	}

	var wg sync.WaitGroup
	for _, r := range e.s.levelRanges {
		lo, hi := r[0], r[1]
		size := hi - lo
		if int(size) < minParallelLevel {
			scanRange(lo, hi)
			continue
		}
		chunk := (size + int32(workers) - 1) / int32(workers)
		for w := 1; w < workers; w++ {
			clo := lo + int32(w)*chunk
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			if clo >= chi {
				continue
			}
			wg.Add(1)
			//phastlint:ignore hotalloc per-level barrier goroutines are the Section V design; one launch per level chunk, amortized over the whole level scan
			go func(clo, chi int32) {
				defer wg.Done()
				scanRange(clo, chi)
			}(clo, chi)
		}
		chi := lo + chunk
		if chi > hi {
			chi = hi
		}
		scanRange(lo, chi)
		wg.Wait() // barrier: the next level reads this level's labels
	}
}

// sweepPackedMultiParallel is sweepPackedMulti with a per-level barrier.
//
//phast:hotpath
func (e *Engine) sweepPackedMultiParallel(k int) {
	pk := e.s.packed
	stream := pk.Stream()
	blockStart := pk.BlockStarts()
	hasV := pk.ExplicitVertex()
	kd := e.kdist
	seeds := e.seedPos
	workers := e.s.workers

	scanRange := func(lo, hi int32) {
		si := seedLowerBound(seeds, lo)
		next := int32(-1)
		if si < len(seeds) {
			next = seeds[si]
		}
		i := blockStart[lo]
		for p := lo; p < hi; p++ {
			deg := int(stream[i])
			i++
			v := p
			if hasV {
				v = int32(stream[i])
				i++
			}
			base := int(v) * k
			dv := kd[base : base+k]
			if p == next {
				si++
				next = -1
				if si < len(seeds) {
					next = seeds[si]
				}
			} else {
				for j := range dv {
					dv[j] = graph.Inf
				}
			}
			for end := i + 2*deg; i < end; i += 2 {
				ub := int(stream[i]) * k
				du := kd[ub : ub+k]
				w := stream[i+1]
				for j := 0; j < k; j++ {
					nd := graph.AddSat(du[j], w)
					if nd < dv[j] {
						dv[j] = nd
					}
				}
			}
		}
	}

	var wg sync.WaitGroup
	for _, r := range e.s.levelRanges {
		lo, hi := r[0], r[1]
		size := hi - lo
		if int(size)*k < minParallelLevel {
			scanRange(lo, hi)
			continue
		}
		chunk := (size + int32(workers) - 1) / int32(workers)
		for w := 1; w < workers; w++ {
			clo := lo + int32(w)*chunk
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			if clo >= chi {
				continue
			}
			wg.Add(1)
			//phastlint:ignore hotalloc per-level barrier goroutines are the Section V design; one launch per level chunk, amortized over the whole level scan
			go func(clo, chi int32) {
				defer wg.Done()
				scanRange(clo, chi)
			}(clo, chi)
		}
		chi := lo + chunk
		if chi > hi {
			chi = hi
		}
		scanRange(lo, chi)
		wg.Wait()
	}
}
