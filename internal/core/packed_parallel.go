package core

import "phast/internal/graph"

// Chunk kernels over the fused single-stream layout (Section V over the
// packed stream, scheduled by scheduler.go). A worker enters the stream
// at a chunk boundary through Packed.BlockStarts and positions its own
// seed cursor with one binary search per chunk; within the chunk the
// scan is identical to the sequential packed kernels of packed.go.

// scanPackedChunk relaxes sweep positions [lo,hi) of the packed
// single-tree sweep.
//
//phast:hotpath
func (e *Engine) scanPackedChunk(lo, hi int32) {
	pk := e.s.packed
	stream := pk.Stream()
	hasV := pk.ExplicitVertex()
	dist := e.dist
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	i := pk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		deg := int(stream[i])
		i++
		v := p
		if hasV {
			v = int32(stream[i])
			i++
		}
		best := graph.Inf
		if p == next {
			best = dist[v]
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		for end := i + 2*deg; i < end; i += 2 {
			nd := graph.AddSat(dist[stream[i]], stream[i+1])
			if nd < best {
				best = nd
			}
		}
		dist[v] = best
	}
}

// scanPackedParentsChunk is scanPackedChunk recording G+ parents.
//
//phast:hotpath
func (e *Engine) scanPackedParentsChunk(lo, hi int32) {
	pk := e.s.packed
	stream := pk.Stream()
	hasV := pk.ExplicitVertex()
	dist := e.dist
	parent := e.parent
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	i := pk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		deg := int(stream[i])
		i++
		v := p
		if hasV {
			v = int32(stream[i])
			i++
		}
		best := graph.Inf
		bestP := int32(-1)
		if p == next {
			best = dist[v]
			bestP = parent[v] // set by the CH search
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		for end := i + 2*deg; i < end; i += 2 {
			h := stream[i]
			nd := graph.AddSat(dist[h], stream[i+1])
			if nd < best {
				best = nd
				bestP = int32(h)
			}
		}
		dist[v] = best
		parent[v] = bestP
	}
}

// scanPackedMultiChunk relaxes all k trees of sweep positions [lo,hi)
// over the fused stream with a scalar inner loop.
//
//phast:hotpath
func (e *Engine) scanPackedMultiChunk(lo, hi int32, k int) {
	pk := e.s.packed
	stream := pk.Stream()
	hasV := pk.ExplicitVertex()
	kd := e.kdist
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	i := pk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		deg := int(stream[i])
		i++
		v := p
		if hasV {
			v = int32(stream[i])
			i++
		}
		base := int(v) * k
		dv := kd[base : base+k]
		if p == next {
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		} else {
			for j := range dv {
				dv[j] = graph.Inf
			}
		}
		for end := i + 2*deg; i < end; i += 2 {
			ub := int(stream[i]) * k
			du := kd[ub : ub+k]
			w := stream[i+1]
			for j := 0; j < k; j++ {
				nd := graph.AddSat(du[j], w)
				if nd < dv[j] {
					dv[j] = nd
				}
			}
		}
	}
}

// scanPackedLanesChunk is scanPackedMultiChunk with the inner loop
// unrolled into the 4-wide relax4 lanes.
//
//phast:hotpath
func (e *Engine) scanPackedLanesChunk(lo, hi int32, k int) {
	pk := e.s.packed
	stream := pk.Stream()
	hasV := pk.ExplicitVertex()
	kd := e.kdist
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	i := pk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		deg := int(stream[i])
		i++
		v := p
		if hasV {
			v = int32(stream[i])
			i++
		}
		base := int(v) * k
		dv := kd[base : base+k : base+k]
		if p == next {
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		} else {
			for j := range dv {
				dv[j] = graph.Inf
			}
		}
		for end := i + 2*deg; i < end; i += 2 {
			ub := int(stream[i]) * k
			du := kd[ub : ub+k : ub+k]
			w := stream[i+1]
			for j := 0; j+4 <= k; j += 4 {
				relax4(dv[j:j+4:j+4], du[j:j+4:j+4], w)
			}
		}
	}
}
