// Package core implements PHAST itself (Sections III–V and VII of the
// paper): the reduction of single-source shortest paths to one tiny
// upward CH search plus a source-independent linear sweep over the
// downward graph, with
//
//   - three sweep orders — descending rank (the basic algorithm of
//     Section III), level order without relabeling, and the fully
//     reordered layout of Section IV-A where the sweep is a pure linear
//     scan in increasing vertex ID;
//   - implicit initialization via visited bits (Section IV-C), so a tree
//     computation never pays an O(n) clearing pass;
//   - multi-tree sweeps that grow k trees at once with the k labels of a
//     vertex contiguous in memory (Section IV-B), optionally relaxing
//     them in 4-wide lanes mirroring the paper's SSE code;
//   - intra-level parallelism (Section V): vertices of one level are
//     split into blocks processed by multiple goroutines with a barrier
//     per level;
//   - parent pointers in G+ and their projection to shortest-path trees
//     of the original graph (Section VII-A).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"phast/internal/bandwidth"
	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/layout"
	"phast/internal/machine"
	"phast/internal/sched"
)

// SweepMode selects the order in which the linear sweep scans vertices.
type SweepMode int

const (
	// SweepReordered relabels all data structures by descending level
	// (stable within a level) so the sweep is a linear scan in increasing
	// ID order with sequential access to vertices, arcs and head labels —
	// the layout of Section IV-A and the default.
	SweepReordered SweepMode = iota
	// SweepLevelOrder keeps original IDs and scans levels top-down,
	// increasing ID within each level (the intermediate variant the paper
	// reports at 0.7s vs 2.0s vs 172ms).
	SweepLevelOrder
	// SweepRankOrder keeps original IDs and scans in descending rank
	// order — the basic PHAST algorithm of Section III.
	SweepRankOrder
)

func (m SweepMode) String() string {
	switch m {
	case SweepReordered:
		return "reordered"
	case SweepLevelOrder:
		return "level order"
	case SweepRankOrder:
		return "rank order"
	default:
		return fmt.Sprintf("SweepMode(%d)", int(m))
	}
}

// PackedSetting selects whether the engine sweeps the fused
// single-stream layout (graph.Packed) or the legacy first/arclist CSR
// walk. The zero value enables packing: the fused stream is the
// production kernel, the legacy kernels remain as a differential oracle
// and A/B baseline.
type PackedSetting int

const (
	// PackedDefault is the zero value and means PackedOn.
	PackedDefault PackedSetting = iota
	// PackedOn sweeps the fused single-stream layout.
	PackedOn
	// PackedOff sweeps the legacy CSR kernels (first + arclist + mark).
	PackedOff
)

// DefaultParallelGrain is the historical fixed sweep chunk size (in
// sweep positions). Chunks are now sized by a cache-derived byte budget
// by default (Options.ChunkBytes); this constant survives as the
// fallback level-size threshold below which the fork-join oracle stays
// sequential, and as the fixed grain tests and oracles pin through
// Options.ParallelGrain.
const DefaultParallelGrain = 1024

// Options configures engine construction.
type Options struct {
	// Mode is the sweep order; the zero value is SweepReordered.
	Mode SweepMode
	// Workers is the number of goroutines used when a tree is computed
	// with a parallel sweep; the persistent scheduler parks Workers-1
	// pool goroutines at construction. 0 selects GOMAXPROCS. Adjustable
	// later with Engine.SetWorkers.
	Workers int
	// PackedSweep selects the fused single-stream sweep layout (default
	// on) or the legacy CSR kernels (PackedOff), kept as an A/B oracle.
	PackedSweep PackedSetting
	// CompressedSweep selects the delta+varint compressed stream
	// (graph.PackedZ) instead of the uncompressed packed words: the
	// sweep reads roughly half the bytes at the cost of inline varint
	// decode. The uncompressed packed kernels remain the differential
	// oracle, exactly as the legacy CSR kernels did for packing.
	// Requires the packed layout (an error with PackedOff).
	CompressedSweep bool
	// ForkJoinSweep routes parallel sweeps through the original
	// per-level fork-join barriers instead of the persistent
	// dependency-bounded scheduler. Kept as a differential oracle and
	// A/B baseline; production sweeps should leave it off.
	ForkJoinSweep bool
	// ParallelGrain, when positive, pins the chunk size in sweep
	// positions — the historical fixed grain, kept for tests and
	// oracles that need deterministic chunk boundaries. 0 (the default)
	// sizes chunks by the ChunkBytes budget instead; a negative grain
	// is an error.
	ParallelGrain int
	// ChunkBytes is the cache-budget chunking knob: the byte span of
	// stream one scheduler chunk covers. 0 derives the budget from the
	// detected cache hierarchy (half the private L2, clamped to
	// [machine.MinChunkBytes, machine.MaxChunkBytes]); explicit values
	// are used as given. Ignored when ParallelGrain pins a fixed grain.
	ChunkBytes int
	// VertexMajorMulti routes a compressed engine's multi-tree sweeps
	// through the first-generation vertex-major (AoS, kdist[v*k+j])
	// kernels instead of the lane-major decode-once family that is now
	// the default. Kept as the differential oracle and A/B baseline,
	// exactly as the packed kernels were for the compressed stream. The
	// vertex-major lanes kernels keep their k%4 contract; the lane-major
	// ones accept any k. No effect on engines without a compressed
	// stream — their multi kernels are vertex-major regardless.
	VertexMajorMulti bool
}

// shared is the immutable, source-independent state every Engine clone
// references: the (possibly relabeled) hierarchy and the sweep schedule.
type shared struct {
	mode        SweepMode
	n           int
	h           *ch.Hierarchy
	up          *graph.Graph
	downIn      *graph.Graph
	order       []int32    // sweep order as engine IDs; nil = identity scan
	levelRanges [][2]int32 // positions in the sweep order, one per level
	toEngine    []int32    // original ID -> engine ID
	toOrig      []int32    // engine ID -> original ID
	// packed is the fused single-stream sweep layout of downIn in sweep
	// order; nil when Options.PackedSweep is PackedOff or the compressed
	// stream stands in for it.
	packed *graph.Packed
	// packedz is the delta+varint compressed sweep stream; non-nil
	// exactly when Options.CompressedSweep selected it (packed is then
	// nil — an engine carries one stream, not both).
	packedz *graph.PackedZ
	// pos maps an engine vertex ID to its sweep position (the inverse of
	// order); nil when the order is the identity.
	pos []int32
	// laneMajor selects the multi-tree label layout: true (compressed
	// engines by default) lays lane j out contiguously at kdist[j*n+v]
	// and sweeps with the decode-once kernels of packedz_soa.go; false
	// (packed/CSR engines, and compressed ones under the
	// Options.VertexMajorMulti oracle) keeps the k labels of a vertex
	// contiguous at kdist[v*k+j]. Everything that touches kdist — the
	// upward lane searches, the sweep kernels, MultiDist,
	// CopyLaneDistances — keys off this one bit.
	laneMajor bool

	// Persistent sweep scheduler state (internal/sched), shared by
	// clones and — since metric customization — by sibling engines over
	// other metrics of the same topology: the parked worker pool, the
	// chunk boundaries, and the precomputed per-chunk dependency bounds
	// that relax the Section V level barrier. The pool is reference
	// counted; each shared state Retains it and Releases via finalizer.
	//
	// chunkStart[c] is the first sweep position of chunk c (len
	// numChunks+1, ending at n). Boundaries come either from a fixed
	// position grain (Options.ParallelGrain) or from the cache byte
	// budget (Options.ChunkBytes), so chunk sizes may vary.
	chunkStart []int32
	// grain is the average chunk size in sweep positions, kept as the
	// level-size threshold of the fork-join oracle.
	grain     int32
	numChunks int32
	// chunkDep[c] is the chunk index the completion frontier must pass
	// before chunk c may start (-1: no external dependency). Derived
	// from graph.ChunkDepBounds position bounds at construction.
	chunkDep []int32
	forkJoin bool
	pool     *sched.Pool

	// Snapshot provenance (parts.go): hold pins the backing mmap alive
	// for the lifetime of this shared state, snapshotBytes/coldStart
	// report the restore. All zero for engines built in-process.
	hold          any
	snapshotBytes int64
	coldStart     time.Duration
}

// Engine computes shortest-path trees with PHAST. One Engine owns one
// set of per-source buffers; Clone gives additional workers their own
// buffers over the same shared graphs (the per-core parallelization of
// Section V). An Engine is not safe for concurrent use; clones are
// independent.
type Engine struct {
	s          *shared
	dist       []uint32
	mark       []bool
	parent     []int32 // engine-ID parents in G+; allocated lazily
	hasParents bool    // last tree recorded parents
	queue      *chHeap
	touched    []int32 // engine IDs labeled by the last upward search
	seedPos    []int32 // packed sweeps: sorted sweep positions of touched
	src        int32   // engine ID of the last source, -1 initially
	// multi-tree state (Section IV-B)
	k     int
	kdist []uint32 // k labels per vertex, contiguous
	// lastMulti guards against reading single-tree labels after a
	// multi-tree sweep (they live in different buffers).
	lastMulti bool
	// job is this engine's reusable scheduler state (cursor, frontier,
	// done flags); allocated on the first pooled sweep.
	job *sched.Job
}

// NewEngine prepares PHAST over a built hierarchy. The hierarchy is not
// modified; in SweepReordered mode a relabeled copy is created once.
func NewEngine(h *ch.Hierarchy, opt Options) (*Engine, error) {
	n := h.G.NumVertices()
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.ParallelGrain < 0 {
		return nil, fmt.Errorf("core: ParallelGrain %d is negative", opt.ParallelGrain)
	}
	if opt.ChunkBytes < 0 {
		return nil, fmt.Errorf("core: ChunkBytes %d is negative", opt.ChunkBytes)
	}
	if opt.CompressedSweep && opt.PackedSweep == PackedOff {
		return nil, fmt.Errorf("core: CompressedSweep requires the packed layout (PackedSweep is off)")
	}
	s := &shared{mode: opt.Mode, n: n, forkJoin: opt.ForkJoinSweep}
	switch opt.Mode {
	case SweepReordered:
		perm := layout.ByLevelDescending(h.Level)
		hp, err := h.Permute(perm)
		if err != nil {
			return nil, fmt.Errorf("core: relabeling hierarchy: %w", err)
		}
		s.h = hp
		s.toEngine = perm
		s.toOrig = graph.InvertPermutation(perm)
		s.order = nil // identity: the whole point of reordering
		// Engine IDs are already sorted by descending level.
		s.levelRanges = layout.LevelRanges(hp.Level)
	case SweepLevelOrder, SweepRankOrder:
		s.h = h
		s.toEngine = layout.Identity(n)
		s.toOrig = s.toEngine
		if opt.Mode == SweepLevelOrder {
			perm := layout.ByLevelDescending(h.Level)
			s.order = graph.InvertPermutation(perm) // order[i] = i-th vertex to scan
			lvls := make([]int32, n)
			for i, v := range s.order {
				lvls[i] = h.Level[v]
			}
			s.levelRanges = layout.LevelRanges(lvls)
		} else {
			byRank := graph.InvertPermutation(h.Rank)
			ord := make([]int32, n)
			for i := 0; i < n; i++ {
				ord[i] = byRank[n-1-i] // descending rank
			}
			s.order = ord
			// Descending rank is a valid topological order but not grouped
			// by level; the parallel sweep falls back to sequential here.
			s.levelRanges = nil
		}
	default:
		return nil, fmt.Errorf("core: unknown sweep mode %v", opt.Mode)
	}
	s.up = s.h.Up
	s.downIn = s.h.DownIn
	if s.order != nil {
		s.pos = make([]int32, n)
		for i, v := range s.order {
			s.pos[v] = int32(i)
		}
	}
	if opt.PackedSweep != PackedOff {
		if opt.CompressedSweep {
			z, err := graph.NewPackedZ(s.downIn, s.order)
			if err != nil {
				return nil, fmt.Errorf("core: compressing sweep stream: %w", err)
			}
			s.packedz = z
		} else {
			p, err := graph.NewPacked(s.downIn, s.order)
			if err != nil {
				return nil, fmt.Errorf("core: packing sweep stream: %w", err)
			}
			s.packed = p
		}
	}
	s.laneMajor = s.packedz != nil && !opt.VertexMajorMulti
	// Chunk boundaries: a positive ParallelGrain pins the historical
	// fixed position grain; otherwise chunks are cut so each one's
	// stream span fits the cache byte budget (Options.ChunkBytes, or
	// half the detected private L2).
	if opt.ParallelGrain > 0 {
		s.chunkStart = graph.UniformChunkStarts(n, opt.ParallelGrain)
	} else {
		budget := opt.ChunkBytes
		if budget == 0 {
			b, err := machine.SweepChunkBytes()
			if err != nil {
				return nil, fmt.Errorf("core: chunk byte budget: %w", err)
			}
			budget = b
		}
		switch {
		case s.packedz != nil:
			s.chunkStart = s.packedz.ChunkStartsByBytes(budget)
		case s.packed != nil:
			s.chunkStart = s.packed.ChunkStartsByBytes(budget)
		default:
			s.chunkStart = graph.ChunkStartsByBytes(s.downIn, s.order, budget)
		}
	}
	s.numChunks = int32(len(s.chunkStart) - 1)
	s.grain = int32((n + int(s.numChunks) - 1) / int(s.numChunks))
	if s.grain < 1 {
		s.grain = 1
	}
	// Precompute the per-chunk dependency bounds the persistent
	// scheduler starts chunks by (scheduler.go). The stream flavors walk
	// the same bytes/words the workers will read; engines built with
	// PackedOff derive identical bounds from the CSR arrays.
	var dep []int32
	var err error
	switch {
	case s.packedz != nil:
		dep, err = s.packedz.ChunkDepBoundsAt(s.chunkStart)
	case s.packed != nil:
		dep, err = s.packed.ChunkDepBoundsAt(s.pos, s.chunkStart)
	default:
		dep, err = graph.ChunkDepBoundsAt(s.downIn, s.order, s.chunkStart)
	}
	if err != nil {
		return nil, fmt.Errorf("core: chunk dependency bounds: %w", err)
	}
	s.chunkDep = make([]int32, len(dep))
	for c, bound := range dep {
		s.chunkDep[c] = posToChunk(s.chunkStart, bound)
	}
	// The pool's workers are spawned once here and parked between
	// queries; they reference only the pool, so when every engine over
	// this shared state is dropped the finalizer can drop its pool
	// reference (a goroutine parked on a channel is a GC root and never
	// collected). Customized sibling engines Retain the same pool, so
	// the workers retire with the last shared state, not the first.
	s.pool = sched.NewPool(opt.Workers)
	runtime.SetFinalizer(s, func(s *shared) { s.pool.Release() })
	return newEngineFromShared(s), nil
}

// posToChunk maps a sweep position to the index of the chunk containing
// it under the given boundary list (-1 stays -1: no dependency). Used
// once per chunk at construction, not in the sweep.
func posToChunk(starts []int32, p int32) int32 {
	if p < 0 {
		return -1
	}
	// The chunk containing p is the last c with starts[c] <= p.
	return int32(sort.Search(len(starts)-1, func(c int) bool { return starts[c+1] > p }))
}

// NewEngineSharingPool builds an engine over h that inherits e's sweep
// schedule wholesale: the relabeling permutation, sweep order, level
// ranges, chunk grain and dependency bounds are shared (not recomputed),
// and the new engine's sweeps run on e's parked worker pool. h must
// have exactly the structure of e's hierarchy — same vertices, same
// arcs in the same order — and differ only in weights and unpacking
// mids, which is precisely what ch.Topology.Customize produces. The
// packed sweep stream, whose words interleave structure and weights, is
// weight-patched from e's rather than rebuilt.
//
// This is the engine half of a metric swap: topology-derived schedule
// state is metric-independent, so installing a customized metric costs
// one relabeling pass and one stream patch instead of a full NewEngine.
func NewEngineSharingPool(e *Engine, h *ch.Hierarchy) (*Engine, error) {
	old := e.s
	if h.G.NumVertices() != old.n {
		return nil, fmt.Errorf("core: sibling hierarchy has %d vertices, engine has %d", h.G.NumVertices(), old.n)
	}
	s := &shared{
		mode:        old.mode,
		n:           old.n,
		order:       old.order,
		levelRanges: old.levelRanges,
		toEngine:    old.toEngine,
		toOrig:      old.toOrig,
		pos:         old.pos,
		chunkStart:  old.chunkStart,
		grain:       old.grain,
		numChunks:   old.numChunks,
		chunkDep:    old.chunkDep,
		forkJoin:    old.forkJoin,
		laneMajor:   old.laneMajor,
	}
	if old.mode == SweepReordered {
		hp, err := h.Permute(old.toEngine)
		if err != nil {
			return nil, fmt.Errorf("core: relabeling sibling hierarchy: %w", err)
		}
		s.h = hp
	} else {
		s.h = h
	}
	s.up = s.h.Up
	s.downIn = s.h.DownIn
	if !s.downIn.SameStructure(old.downIn) {
		return nil, fmt.Errorf("core: sibling hierarchy's downward graph does not match the engine's topology")
	}
	if old.packed != nil {
		p, err := old.packed.WithWeights(s.downIn)
		if err != nil {
			return nil, fmt.Errorf("core: patching packed sweep stream: %w", err)
		}
		s.packed = p
	}
	if old.packedz != nil {
		// Re-encode the weights into the compressed stream; structure
		// (deltas, degrees, order) is carried over, not re-derived. The
		// shared chunk boundaries and dependency bounds are position-
		// space, so they stay exact even though the new metric may shift
		// per-block widths and with them the stream's byte spans.
		z, err := old.packedz.WithWeights(s.downIn)
		if err != nil {
			return nil, fmt.Errorf("core: re-encoding compressed sweep stream: %w", err)
		}
		s.packedz = z
	}
	old.pool.Retain()
	s.pool = old.pool
	runtime.SetFinalizer(s, func(s *shared) { s.pool.Release() })
	return newEngineFromShared(s), nil
}

func newEngineFromShared(s *shared) *Engine {
	return &Engine{
		s:     s,
		dist:  make([]uint32, s.n),
		mark:  make([]bool, s.n),
		queue: newCHHeap(s.n),
		src:   -1,
	}
}

// Clone returns an engine sharing all immutable data but owning private
// distance/mark buffers, for use from another goroutine.
func (e *Engine) Clone() *Engine { return newEngineFromShared(e.s) }

// NumVertices returns n.
func (e *Engine) NumVertices() int { return e.s.n }

// Mode returns the sweep mode the engine was built with.
func (e *Engine) Mode() SweepMode { return e.s.mode }

// Hierarchy returns the (possibly relabeled) hierarchy the engine sweeps;
// IDs in it are engine IDs.
func (e *Engine) Hierarchy() *ch.Hierarchy { return e.s.h }

// EngineID translates an original vertex ID to the engine's ID space.
func (e *Engine) EngineID(v int32) int32 { return e.s.toEngine[v] }

// OrigID translates an engine ID back to the original ID space.
func (e *Engine) OrigID(v int32) int32 { return e.s.toOrig[v] }

// LevelRanges returns the sweep-position ranges of each level (descending
// level order). In SweepRankOrder mode it returns nil. The slice is
// shared; callers must not modify it.
func (e *Engine) LevelRanges() [][2]int32 { return e.s.levelRanges }

// Packed returns the fused single-stream sweep layout the engine scans,
// or nil when the engine was built with PackedOff or sweeps the
// compressed stream. Consumers that mirror the sweep's data layout
// (GPHAST's device upload) decode it instead of re-deriving the CSR
// arrays.
func (e *Engine) Packed() *graph.Packed { return e.s.packed }

// PackedZ returns the compressed sweep stream the engine scans, or nil
// when the engine was not built with CompressedSweep.
func (e *Engine) PackedZ() *graph.PackedZ { return e.s.packedz }

// StreamBytes returns the bytes of sweep stream one tree scans front to
// back: the compressed stream's byte length, the packed stream's words
// in bytes, or the CSR first+arclist footprint for legacy engines. This
// is the numerator of the achieved-GB/s accounting and the quantity the
// compression ratio compares.
func (e *Engine) StreamBytes() int64 {
	switch {
	case e.s.packedz != nil:
		return int64(e.s.packedz.ByteLen())
	case e.s.packed != nil:
		return int64(e.s.packed.Words()) * 4
	default:
		return int64(e.s.n+1)*4 + int64(e.s.downIn.NumArcs())*8
	}
}

// StreamShapeHistogram returns blocks per compressed header shape
// (graph.PackedZ.ShapeHistogram), or nil when the engine runs no
// compressed stream. benchsmoke records it next to the stream gate so
// a ratio regression can be read against the shape mix that produced
// it — the decode-once kernels specialize the four narrow shapes, so a
// stream that drifts toward the generic ones decodes slower at the
// same byte count.
func (e *Engine) StreamShapeHistogram() map[string]int {
	if e.s.packedz == nil {
		return nil
	}
	return e.s.packedz.ShapeHistogram()
}

// CompressionRatio returns the fraction of the equivalent uncompressed
// packed stream the engine's sweep actually reads: < 1 for compressed
// engines, exactly 1 otherwise.
func (e *Engine) CompressionRatio() float64 {
	if e.s.packedz != nil {
		return e.s.packedz.CompressionRatio()
	}
	return 1
}

// SweepBytes returns the modeled bytes one k-tree sweep on this engine
// touches (bandwidth.SweepTraffic over the engine's actual layout).
// Divide by the measured sweep time for achieved GB/s against the
// Section VIII-B lower bounds; k <= 0 is treated as a single tree.
func (e *Engine) SweepBytes(k int) int64 {
	t := bandwidth.SweepTraffic{N: e.s.n, M: e.s.downIn.NumArcs(), K: k}
	// Multi-tree sweeps over the vertex-major layout re-read the relax
	// target per arc per lane; the lane-major decode-once kernels hold
	// it in a register (bandwidth.SweepTraffic.LabelRereads).
	t.LabelRereads = !e.s.laneMajor
	switch {
	case e.s.packedz != nil:
		t.StreamBytes = int64(e.s.packedz.ByteLen())
	case e.s.packed != nil:
		t.PackedWords = e.s.packed.Words()
	default:
		t.Ordered = e.s.order != nil
	}
	// Pooled sweeps add chunk-grain scheduling traffic (dependency-bound
	// reads and completion flags); the sequential and fork-join paths
	// touch none of it.
	if e.s.pool.Workers() > 1 && !e.s.forkJoin && e.s.numChunks > 1 {
		t.SchedChunks = int(e.s.numChunks)
	}
	return t.Bytes()
}

// Dist returns the distance label of original-ID vertex v from the last
// Tree/TreeParallel call, or graph.Inf if unreached.
func (e *Engine) Dist(v int32) uint32 {
	if e.lastMulti {
		panic("core: last computation was MultiTree; read labels with MultiDist")
	}
	return e.dist[e.s.toEngine[v]]
}

// RawDistances exposes the engine-ID-indexed label array of the last
// tree. Hot consumers (benchmarks, applications) iterate it directly.
//
// Aliasing contract: the returned slice is the engine's working buffer,
// not a snapshot. The next Tree/TreeParallel/TreeWithParents call on
// this engine silently overwrites it (MultiTree additionally invalidates
// it semantically), and callers must never modify it. Results that must
// outlive the next sweep — anything handed to another goroutine, queued,
// or cached — must be copied out with CopyDistances first.
func (e *Engine) RawDistances() []uint32 { return e.dist }

// CopyDistances writes the labels of the last tree into buf indexed by
// original vertex ID (graph.Inf marks unreached vertices). len(buf) must
// be n. Unlike RawDistances, buf is a private snapshot: it stays valid
// across later sweeps on this engine, which is the read-back form every
// concurrent consumer (e.g. internal/server) must use.
func (e *Engine) CopyDistances(buf []uint32) {
	if e.lastMulti {
		panic("core: last computation was MultiTree; read labels with CopyLaneDistances")
	}
	if len(buf) != e.s.n {
		panic("core: CopyDistances buffer has wrong length")
	}
	for orig := range buf {
		buf[orig] = e.dist[e.s.toEngine[orig]]
	}
}

// DistancesInto is CopyDistances under its historical name.
func (e *Engine) DistancesInto(buf []uint32) { e.CopyDistances(buf) }

// Source returns the original ID of the last tree's source, or -1.
func (e *Engine) Source() int32 {
	if e.src < 0 {
		return -1
	}
	return e.s.toOrig[e.src]
}
