// Package core implements PHAST itself (Sections III–V and VII of the
// paper): the reduction of single-source shortest paths to one tiny
// upward CH search plus a source-independent linear sweep over the
// downward graph, with
//
//   - three sweep orders — descending rank (the basic algorithm of
//     Section III), level order without relabeling, and the fully
//     reordered layout of Section IV-A where the sweep is a pure linear
//     scan in increasing vertex ID;
//   - implicit initialization via visited bits (Section IV-C), so a tree
//     computation never pays an O(n) clearing pass;
//   - multi-tree sweeps that grow k trees at once with the k labels of a
//     vertex contiguous in memory (Section IV-B), optionally relaxing
//     them in 4-wide lanes mirroring the paper's SSE code;
//   - intra-level parallelism (Section V): vertices of one level are
//     split into blocks processed by multiple goroutines with a barrier
//     per level;
//   - parent pointers in G+ and their projection to shortest-path trees
//     of the original graph (Section VII-A).
package core

import (
	"fmt"
	"runtime"

	"phast/internal/bandwidth"
	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/layout"
	"phast/internal/sched"
)

// SweepMode selects the order in which the linear sweep scans vertices.
type SweepMode int

const (
	// SweepReordered relabels all data structures by descending level
	// (stable within a level) so the sweep is a linear scan in increasing
	// ID order with sequential access to vertices, arcs and head labels —
	// the layout of Section IV-A and the default.
	SweepReordered SweepMode = iota
	// SweepLevelOrder keeps original IDs and scans levels top-down,
	// increasing ID within each level (the intermediate variant the paper
	// reports at 0.7s vs 2.0s vs 172ms).
	SweepLevelOrder
	// SweepRankOrder keeps original IDs and scans in descending rank
	// order — the basic PHAST algorithm of Section III.
	SweepRankOrder
)

func (m SweepMode) String() string {
	switch m {
	case SweepReordered:
		return "reordered"
	case SweepLevelOrder:
		return "level order"
	case SweepRankOrder:
		return "rank order"
	default:
		return fmt.Sprintf("SweepMode(%d)", int(m))
	}
}

// PackedSetting selects whether the engine sweeps the fused
// single-stream layout (graph.Packed) or the legacy first/arclist CSR
// walk. The zero value enables packing: the fused stream is the
// production kernel, the legacy kernels remain as a differential oracle
// and A/B baseline.
type PackedSetting int

const (
	// PackedDefault is the zero value and means PackedOn.
	PackedDefault PackedSetting = iota
	// PackedOn sweeps the fused single-stream layout.
	PackedOn
	// PackedOff sweeps the legacy CSR kernels (first + arclist + mark).
	PackedOff
)

// DefaultParallelGrain is the sweep chunk size (in sweep positions)
// used when Options.ParallelGrain is zero. It doubles as the level-size
// threshold below which the fork-join oracle stays sequential — the
// historical minParallelLevel constant, now a documented, tunable
// default: upper CH levels hold a handful of vertices each, and
// scheduling (or a barrier) would cost more than the work.
const DefaultParallelGrain = 1024

// Options configures engine construction.
type Options struct {
	// Mode is the sweep order; the zero value is SweepReordered.
	Mode SweepMode
	// Workers is the number of goroutines used when a tree is computed
	// with a parallel sweep; the persistent scheduler parks Workers-1
	// pool goroutines at construction. 0 selects GOMAXPROCS. Adjustable
	// later with Engine.SetWorkers.
	Workers int
	// PackedSweep selects the fused single-stream sweep layout (default
	// on) or the legacy CSR kernels (PackedOff), kept as an A/B oracle.
	PackedSweep PackedSetting
	// ForkJoinSweep routes parallel sweeps through the original
	// per-level fork-join barriers instead of the persistent
	// dependency-bounded scheduler. Kept as a differential oracle and
	// A/B baseline; production sweeps should leave it off.
	ForkJoinSweep bool
	// ParallelGrain is the chunk size, in sweep positions, that the
	// persistent scheduler self-schedules (and the level-size threshold
	// of the fork-join oracle). 0 selects DefaultParallelGrain (1024);
	// a negative grain is an error.
	ParallelGrain int
}

// shared is the immutable, source-independent state every Engine clone
// references: the (possibly relabeled) hierarchy and the sweep schedule.
type shared struct {
	mode        SweepMode
	n           int
	h           *ch.Hierarchy
	up          *graph.Graph
	downIn      *graph.Graph
	order       []int32    // sweep order as engine IDs; nil = identity scan
	levelRanges [][2]int32 // positions in the sweep order, one per level
	toEngine    []int32    // original ID -> engine ID
	toOrig      []int32    // engine ID -> original ID
	// packed is the fused single-stream sweep layout of downIn in sweep
	// order; nil when Options.PackedSweep is PackedOff.
	packed *graph.Packed
	// pos maps an engine vertex ID to its sweep position (the inverse of
	// order); nil when the order is the identity.
	pos []int32

	// Persistent sweep scheduler state (internal/sched), shared by
	// clones and — since metric customization — by sibling engines over
	// other metrics of the same topology: the parked worker pool, the
	// chunk grain, and the precomputed per-chunk dependency bounds that
	// relax the Section V level barrier. The pool is reference counted;
	// each shared state Retains it and Releases via finalizer.
	grain     int32 // chunk size in sweep positions
	numChunks int32
	// chunkDep[c] is the chunk index the completion frontier must pass
	// before chunk c may start (-1: no external dependency). Derived
	// from graph.ChunkDepBounds position bounds at construction.
	chunkDep []int32
	forkJoin bool
	pool     *sched.Pool
}

// Engine computes shortest-path trees with PHAST. One Engine owns one
// set of per-source buffers; Clone gives additional workers their own
// buffers over the same shared graphs (the per-core parallelization of
// Section V). An Engine is not safe for concurrent use; clones are
// independent.
type Engine struct {
	s          *shared
	dist       []uint32
	mark       []bool
	parent     []int32 // engine-ID parents in G+; allocated lazily
	hasParents bool    // last tree recorded parents
	queue      *chHeap
	touched    []int32 // engine IDs labeled by the last upward search
	seedPos    []int32 // packed sweeps: sorted sweep positions of touched
	src        int32   // engine ID of the last source, -1 initially
	// multi-tree state (Section IV-B)
	k     int
	kdist []uint32 // k labels per vertex, contiguous
	// lastMulti guards against reading single-tree labels after a
	// multi-tree sweep (they live in different buffers).
	lastMulti bool
	// job is this engine's reusable scheduler state (cursor, frontier,
	// done flags); allocated on the first pooled sweep.
	job *sched.Job
}

// NewEngine prepares PHAST over a built hierarchy. The hierarchy is not
// modified; in SweepReordered mode a relabeled copy is created once.
func NewEngine(h *ch.Hierarchy, opt Options) (*Engine, error) {
	n := h.G.NumVertices()
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.ParallelGrain < 0 {
		return nil, fmt.Errorf("core: ParallelGrain %d is negative", opt.ParallelGrain)
	}
	if opt.ParallelGrain == 0 {
		opt.ParallelGrain = DefaultParallelGrain
	}
	s := &shared{mode: opt.Mode, n: n, grain: int32(opt.ParallelGrain), forkJoin: opt.ForkJoinSweep}
	switch opt.Mode {
	case SweepReordered:
		perm := layout.ByLevelDescending(h.Level)
		hp, err := h.Permute(perm)
		if err != nil {
			return nil, fmt.Errorf("core: relabeling hierarchy: %w", err)
		}
		s.h = hp
		s.toEngine = perm
		s.toOrig = graph.InvertPermutation(perm)
		s.order = nil // identity: the whole point of reordering
		// Engine IDs are already sorted by descending level.
		s.levelRanges = layout.LevelRanges(hp.Level)
	case SweepLevelOrder, SweepRankOrder:
		s.h = h
		s.toEngine = layout.Identity(n)
		s.toOrig = s.toEngine
		if opt.Mode == SweepLevelOrder {
			perm := layout.ByLevelDescending(h.Level)
			s.order = graph.InvertPermutation(perm) // order[i] = i-th vertex to scan
			lvls := make([]int32, n)
			for i, v := range s.order {
				lvls[i] = h.Level[v]
			}
			s.levelRanges = layout.LevelRanges(lvls)
		} else {
			byRank := graph.InvertPermutation(h.Rank)
			ord := make([]int32, n)
			for i := 0; i < n; i++ {
				ord[i] = byRank[n-1-i] // descending rank
			}
			s.order = ord
			// Descending rank is a valid topological order but not grouped
			// by level; the parallel sweep falls back to sequential here.
			s.levelRanges = nil
		}
	default:
		return nil, fmt.Errorf("core: unknown sweep mode %v", opt.Mode)
	}
	s.up = s.h.Up
	s.downIn = s.h.DownIn
	if s.order != nil {
		s.pos = make([]int32, n)
		for i, v := range s.order {
			s.pos[v] = int32(i)
		}
	}
	if opt.PackedSweep != PackedOff {
		p, err := graph.NewPacked(s.downIn, s.order)
		if err != nil {
			return nil, fmt.Errorf("core: packing sweep stream: %w", err)
		}
		s.packed = p
	}
	// Precompute the per-chunk dependency bounds the persistent
	// scheduler starts chunks by (scheduler.go). The packed flavor walks
	// the fused stream — the same words the workers will read; engines
	// built with PackedOff derive identical bounds from the CSR arrays.
	var dep []int32
	var err error
	if s.packed != nil {
		dep, err = s.packed.ChunkDepBounds(s.pos, opt.ParallelGrain)
	} else {
		dep, err = graph.ChunkDepBounds(s.downIn, s.order, opt.ParallelGrain)
	}
	if err != nil {
		return nil, fmt.Errorf("core: chunk dependency bounds: %w", err)
	}
	s.numChunks = int32(len(dep))
	s.chunkDep = make([]int32, len(dep))
	for c, bound := range dep {
		if bound < 0 {
			s.chunkDep[c] = -1
		} else {
			s.chunkDep[c] = bound / s.grain
		}
	}
	// The pool's workers are spawned once here and parked between
	// queries; they reference only the pool, so when every engine over
	// this shared state is dropped the finalizer can drop its pool
	// reference (a goroutine parked on a channel is a GC root and never
	// collected). Customized sibling engines Retain the same pool, so
	// the workers retire with the last shared state, not the first.
	s.pool = sched.NewPool(opt.Workers)
	runtime.SetFinalizer(s, func(s *shared) { s.pool.Release() })
	return newEngineFromShared(s), nil
}

// NewEngineSharingPool builds an engine over h that inherits e's sweep
// schedule wholesale: the relabeling permutation, sweep order, level
// ranges, chunk grain and dependency bounds are shared (not recomputed),
// and the new engine's sweeps run on e's parked worker pool. h must
// have exactly the structure of e's hierarchy — same vertices, same
// arcs in the same order — and differ only in weights and unpacking
// mids, which is precisely what ch.Topology.Customize produces. The
// packed sweep stream, whose words interleave structure and weights, is
// weight-patched from e's rather than rebuilt.
//
// This is the engine half of a metric swap: topology-derived schedule
// state is metric-independent, so installing a customized metric costs
// one relabeling pass and one stream patch instead of a full NewEngine.
func NewEngineSharingPool(e *Engine, h *ch.Hierarchy) (*Engine, error) {
	old := e.s
	if h.G.NumVertices() != old.n {
		return nil, fmt.Errorf("core: sibling hierarchy has %d vertices, engine has %d", h.G.NumVertices(), old.n)
	}
	s := &shared{
		mode:        old.mode,
		n:           old.n,
		order:       old.order,
		levelRanges: old.levelRanges,
		toEngine:    old.toEngine,
		toOrig:      old.toOrig,
		pos:         old.pos,
		grain:       old.grain,
		numChunks:   old.numChunks,
		chunkDep:    old.chunkDep,
		forkJoin:    old.forkJoin,
	}
	if old.mode == SweepReordered {
		hp, err := h.Permute(old.toEngine)
		if err != nil {
			return nil, fmt.Errorf("core: relabeling sibling hierarchy: %w", err)
		}
		s.h = hp
	} else {
		s.h = h
	}
	s.up = s.h.Up
	s.downIn = s.h.DownIn
	if !s.downIn.SameStructure(old.downIn) {
		return nil, fmt.Errorf("core: sibling hierarchy's downward graph does not match the engine's topology")
	}
	if old.packed != nil {
		p, err := old.packed.WithWeights(s.downIn)
		if err != nil {
			return nil, fmt.Errorf("core: patching packed sweep stream: %w", err)
		}
		s.packed = p
	}
	old.pool.Retain()
	s.pool = old.pool
	runtime.SetFinalizer(s, func(s *shared) { s.pool.Release() })
	return newEngineFromShared(s), nil
}

func newEngineFromShared(s *shared) *Engine {
	return &Engine{
		s:     s,
		dist:  make([]uint32, s.n),
		mark:  make([]bool, s.n),
		queue: newCHHeap(s.n),
		src:   -1,
	}
}

// Clone returns an engine sharing all immutable data but owning private
// distance/mark buffers, for use from another goroutine.
func (e *Engine) Clone() *Engine { return newEngineFromShared(e.s) }

// NumVertices returns n.
func (e *Engine) NumVertices() int { return e.s.n }

// Mode returns the sweep mode the engine was built with.
func (e *Engine) Mode() SweepMode { return e.s.mode }

// Hierarchy returns the (possibly relabeled) hierarchy the engine sweeps;
// IDs in it are engine IDs.
func (e *Engine) Hierarchy() *ch.Hierarchy { return e.s.h }

// EngineID translates an original vertex ID to the engine's ID space.
func (e *Engine) EngineID(v int32) int32 { return e.s.toEngine[v] }

// OrigID translates an engine ID back to the original ID space.
func (e *Engine) OrigID(v int32) int32 { return e.s.toOrig[v] }

// LevelRanges returns the sweep-position ranges of each level (descending
// level order). In SweepRankOrder mode it returns nil. The slice is
// shared; callers must not modify it.
func (e *Engine) LevelRanges() [][2]int32 { return e.s.levelRanges }

// Packed returns the fused single-stream sweep layout the engine scans,
// or nil when the engine was built with PackedOff. Consumers that mirror
// the sweep's data layout (GPHAST's device upload) decode it instead of
// re-deriving the CSR arrays.
func (e *Engine) Packed() *graph.Packed { return e.s.packed }

// SweepBytes returns the modeled bytes one k-tree sweep on this engine
// touches (bandwidth.SweepTraffic over the engine's actual layout).
// Divide by the measured sweep time for achieved GB/s against the
// Section VIII-B lower bounds; k <= 0 is treated as a single tree.
func (e *Engine) SweepBytes(k int) int64 {
	t := bandwidth.SweepTraffic{N: e.s.n, M: e.s.downIn.NumArcs(), K: k}
	if e.s.packed != nil {
		t.PackedWords = e.s.packed.Words()
	} else {
		t.Ordered = e.s.order != nil
	}
	// Pooled sweeps add chunk-grain scheduling traffic (dependency-bound
	// reads and completion flags); the sequential and fork-join paths
	// touch none of it.
	if e.s.pool.Workers() > 1 && !e.s.forkJoin && e.s.numChunks > 1 {
		t.SchedChunks = int(e.s.numChunks)
	}
	return t.Bytes()
}

// Dist returns the distance label of original-ID vertex v from the last
// Tree/TreeParallel call, or graph.Inf if unreached.
func (e *Engine) Dist(v int32) uint32 {
	if e.lastMulti {
		panic("core: last computation was MultiTree; read labels with MultiDist")
	}
	return e.dist[e.s.toEngine[v]]
}

// RawDistances exposes the engine-ID-indexed label array of the last
// tree. Hot consumers (benchmarks, applications) iterate it directly.
//
// Aliasing contract: the returned slice is the engine's working buffer,
// not a snapshot. The next Tree/TreeParallel/TreeWithParents call on
// this engine silently overwrites it (MultiTree additionally invalidates
// it semantically), and callers must never modify it. Results that must
// outlive the next sweep — anything handed to another goroutine, queued,
// or cached — must be copied out with CopyDistances first.
func (e *Engine) RawDistances() []uint32 { return e.dist }

// CopyDistances writes the labels of the last tree into buf indexed by
// original vertex ID (graph.Inf marks unreached vertices). len(buf) must
// be n. Unlike RawDistances, buf is a private snapshot: it stays valid
// across later sweeps on this engine, which is the read-back form every
// concurrent consumer (e.g. internal/server) must use.
func (e *Engine) CopyDistances(buf []uint32) {
	if e.lastMulti {
		panic("core: last computation was MultiTree; read labels with CopyLaneDistances")
	}
	if len(buf) != e.s.n {
		panic("core: CopyDistances buffer has wrong length")
	}
	for orig := range buf {
		buf[orig] = e.dist[e.s.toEngine[orig]]
	}
}

// DistancesInto is CopyDistances under its historical name.
func (e *Engine) DistancesInto(buf []uint32) { e.CopyDistances(buf) }

// Source returns the original ID of the last tree's source, or -1.
func (e *Engine) Source() int32 {
	if e.src < 0 {
		return -1
	}
	return e.s.toOrig[e.src]
}
