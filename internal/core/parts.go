package core

import (
	"fmt"
	"runtime"
	"time"

	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/sched"
)

// EngineParts is the engine's shared, source-independent state in
// transportable form: everything NewEngine derives from a hierarchy —
// the relabeled hierarchy itself, ID mappings, sweep order, level
// ranges, the packed or compressed stream, and the chunk schedule with
// its precomputed dependency bounds. Parts exposes a live engine's
// state for serialization; NewEngineFromParts rebuilds an engine around
// it without re-deriving anything, which is what makes an mmap'd
// snapshot a millisecond cold start instead of a rebuild.
//
// All slices are shared, never copied: Parts returns views of the
// engine's own arrays, and NewEngineFromParts adopts the given slices
// (typically aliases of a read-only mapped file — see //phast:readonly
// on the snapshot accessors). Holders must treat every field as
// immutable.
type EngineParts struct {
	// Mode is the sweep order the schedule below was derived for.
	Mode SweepMode
	// H is the engine-ID hierarchy: permuted by descending level in
	// SweepReordered mode, the original hierarchy otherwise.
	H *ch.Hierarchy
	// ToEngine/ToOrig map original IDs to engine IDs and back (identity
	// except in SweepReordered mode).
	ToEngine, ToOrig []int32
	// Order is the sweep order as engine IDs (nil = identity scan) and
	// Pos its inverse (nil exactly when Order is nil).
	Order, Pos []int32
	// LevelRanges are the sweep-position ranges of each level, nil in
	// SweepRankOrder mode.
	LevelRanges [][2]int32
	// Packed/PackedZ is the sweep stream; at most one is non-nil, both
	// nil for legacy CSR engines.
	Packed  *graph.Packed
	PackedZ *graph.PackedZ
	// ChunkStart/ChunkDep are the scheduler's chunk boundaries (sweep
	// positions, len NumChunks+1) and per-chunk dependency chunks.
	ChunkStart []int32
	ChunkDep   []int32
	// ForkJoin routes parallel sweeps through the per-level fork-join
	// oracle instead of the persistent scheduler.
	ForkJoin bool
}

// SnapshotInfo carries the provenance of an engine restored from a
// snapshot: the on-disk footprint, the measured cold start, and a hold
// reference that keeps the backing mapping alive (and thus mapped) for
// as long as any engine over this shared state exists.
type SnapshotInfo struct {
	Bytes     int64
	ColdStart time.Duration
	// Hold is retained, never interrogated: the mapping's own finalizer
	// unmaps once nothing references it.
	Hold any
}

// Parts exposes the engine's shared state for serialization. The
// returned views alias the engine's live arrays; callers must not
// modify them.
func (e *Engine) Parts() EngineParts {
	s := e.s
	return EngineParts{
		Mode:        s.mode,
		H:           s.h,
		ToEngine:    s.toEngine,
		ToOrig:      s.toOrig,
		Order:       s.order,
		Pos:         s.pos,
		LevelRanges: s.levelRanges,
		Packed:      s.packed,
		PackedZ:     s.packedz,
		ChunkStart:  s.chunkStart,
		ChunkDep:    s.chunkDep,
		ForkJoin:    s.forkJoin,
	}
}

// NewEngineFromParts rebuilds an engine around previously derived parts
// — the load half of a snapshot. Nothing is recomputed or copied: the
// hierarchy, streams, and chunk schedule are adopted as given after a
// consistency pass (permutations, chunk boundary shape, stream dims),
// and a fresh worker pool is parked exactly as NewEngine would.
// workers <= 0 selects GOMAXPROCS. info ties the restored engine to its
// snapshot: the mapping hold, byte size, and cold-start duration it
// reports through SnapshotBytes/ColdStart.
func NewEngineFromParts(p EngineParts, workers int, info SnapshotInfo) (*Engine, error) {
	if p.H == nil || p.H.G == nil || p.H.Up == nil || p.H.DownIn == nil {
		return nil, fmt.Errorf("core: parts hierarchy is incomplete")
	}
	n := p.H.G.NumVertices()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if err := checkPermutationPair(p.ToEngine, p.ToOrig, n, "ToEngine/ToOrig"); err != nil {
		return nil, err
	}
	switch p.Mode {
	case SweepReordered:
		if p.Order != nil || p.Pos != nil {
			return nil, fmt.Errorf("core: parts carry a sweep order in reordered mode")
		}
		if p.LevelRanges == nil {
			return nil, fmt.Errorf("core: parts lack level ranges in reordered mode")
		}
	case SweepLevelOrder, SweepRankOrder:
		if err := checkPermutationPair(p.Order, p.Pos, n, "Order/Pos"); err != nil {
			return nil, err
		}
		if p.Mode == SweepLevelOrder && p.LevelRanges == nil {
			return nil, fmt.Errorf("core: parts lack level ranges in level-order mode")
		}
	default:
		return nil, fmt.Errorf("core: unknown sweep mode %v", p.Mode)
	}
	if p.LevelRanges != nil {
		at := int32(0)
		for i, r := range p.LevelRanges {
			if r[0] != at || r[1] < r[0] || r[1] > int32(n) {
				return nil, fmt.Errorf("core: parts level range %d is [%d,%d) at position %d", i, r[0], r[1], at)
			}
			at = r[1]
		}
		if at != int32(n) {
			return nil, fmt.Errorf("core: parts level ranges cover %d of %d positions", at, n)
		}
	}
	if p.Packed != nil && p.PackedZ != nil {
		return nil, fmt.Errorf("core: parts carry both a packed and a compressed stream")
	}
	m := p.H.DownIn.NumArcs()
	explicit := p.Order != nil
	if p.Packed != nil {
		if p.Packed.NumVertices() != n || p.Packed.NumArcs() != m || p.Packed.ExplicitVertex() != explicit {
			return nil, fmt.Errorf("core: packed stream dims %d/%d/explicit=%v do not match hierarchy %d/%d/explicit=%v",
				p.Packed.NumVertices(), p.Packed.NumArcs(), p.Packed.ExplicitVertex(), n, m, explicit)
		}
	}
	if p.PackedZ != nil {
		if p.PackedZ.NumVertices() != n || p.PackedZ.NumArcs() != m || p.PackedZ.ExplicitVertex() != explicit {
			return nil, fmt.Errorf("core: compressed stream dims %d/%d/explicit=%v do not match hierarchy %d/%d/explicit=%v",
				p.PackedZ.NumVertices(), p.PackedZ.NumArcs(), p.PackedZ.ExplicitVertex(), n, m, explicit)
		}
	}
	if err := graph.ValidChunkStarts(p.ChunkStart, n); err != nil {
		return nil, fmt.Errorf("core: parts chunk starts: %w", err)
	}
	numChunks := int32(len(p.ChunkStart) - 1)
	if len(p.ChunkDep) != int(numChunks) {
		return nil, fmt.Errorf("core: parts have %d chunk deps for %d chunks", len(p.ChunkDep), numChunks)
	}
	for c, d := range p.ChunkDep {
		if d < -1 || d >= int32(c) {
			return nil, fmt.Errorf("core: parts chunk dep %d of chunk %d escapes [-1,%d)", d, c, c)
		}
	}
	grain := int32((n + int(numChunks) - 1) / int(numChunks))
	if grain < 1 {
		grain = 1
	}
	s := &shared{
		mode:          p.Mode,
		n:             n,
		h:             p.H,
		up:            p.H.Up,
		downIn:        p.H.DownIn,
		order:         p.Order,
		levelRanges:   p.LevelRanges,
		toEngine:      p.ToEngine,
		toOrig:        p.ToOrig,
		packed:        p.Packed,
		packedz:       p.PackedZ,
		pos:           p.Pos,
		chunkStart:    p.ChunkStart,
		grain:         grain,
		numChunks:     numChunks,
		chunkDep:      p.ChunkDep,
		forkJoin:      p.ForkJoin,
		// Restored compressed engines always run the production
		// lane-major multi kernels; the vertex-major oracle is a
		// construction-time debugging option, not snapshot state.
		laneMajor: p.PackedZ != nil,
		hold:          info.Hold,
		snapshotBytes: info.Bytes,
		coldStart:     info.ColdStart,
	}
	s.pool = sched.NewPool(workers)
	runtime.SetFinalizer(s, func(s *shared) { s.pool.Release() })
	return newEngineFromShared(s), nil
}

// checkPermutationPair verifies a and b are length-n permutations that
// invert each other.
func checkPermutationPair(a, b []int32, n int, what string) error {
	if len(a) != n || len(b) != n {
		return fmt.Errorf("core: parts %s have lengths %d/%d, want %d", what, len(a), len(b), n)
	}
	for i, v := range a {
		if v < 0 || int(v) >= n || b[v] != int32(i) {
			return fmt.Errorf("core: parts %s are not inverse permutations at %d", what, i)
		}
	}
	return nil
}

// SnapshotBytes returns the on-disk size of the snapshot this engine's
// shared state was restored from, or 0 for engines built in-process.
func (e *Engine) SnapshotBytes() int64 { return e.s.snapshotBytes }

// ColdStart returns how long restoring this engine from its snapshot
// took (mapping + validation + pool spawn), or 0 for engines built
// in-process.
func (e *Engine) ColdStart() time.Duration { return e.s.coldStart }

// SetColdStart records the measured restore duration. The facade calls
// it once right after NewEngineFromParts so the engine-assembly time is
// included; it is not for later mutation (clones share the value).
func (e *Engine) SetColdStart(d time.Duration) { e.s.coldStart = d }
