package core

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// engineTriple builds one hierarchy and returns compressed-stream,
// packed-stream, and legacy-CSR engines over it, for three-way
// differential tests of the compressed kernels.
func engineTriple(t *testing.T, g *graph.Graph, mode SweepMode, workers int) (z, packed, legacy *Engine) {
	t.Helper()
	h := ch.Build(g, ch.Options{Workers: 1})
	var err error
	opt := Options{Mode: mode, Workers: workers, CompressedSweep: true}
	if workers > 1 {
		// Deterministic multi-chunk boundaries on the small test graphs.
		opt.ParallelGrain = 16
	}
	if z, err = NewEngine(h, opt); err != nil {
		t.Fatal(err)
	}
	opt.CompressedSweep = false
	opt.PackedSweep = PackedOn
	if packed, err = NewEngine(h, opt); err != nil {
		t.Fatal(err)
	}
	opt.PackedSweep = PackedOff
	if legacy, err = NewEngine(h, opt); err != nil {
		t.Fatal(err)
	}
	if z.s.packedz == nil || z.s.packed != nil {
		t.Fatal("CompressedSweep engine did not build (only) the compressed stream")
	}
	return z, packed, legacy
}

// TestCompressedTreeMatchesAll is the single-tree differential oracle
// for the compressed kernels: compressed, packed, legacy, and plain
// Dijkstra must agree label-for-label in every sweep mode, sequentially
// and on the pooled scheduler.
func TestCompressedTreeMatchesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				for trial := 0; trial < 3; trial++ {
					var g *graph.Graph
					if trial%2 == 0 {
						n := 2 + rng.Intn(60)
						g = randomGraph(rng, n, rng.Intn(5*n), 25)
					} else {
						g = gridGraph(rng, 4+rng.Intn(8), 4+rng.Intn(8), 30)
					}
					n := g.NumVertices()
					z, pk, lg := engineTriple(t, g, mode, workers)
					d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
					for q := 0; q < 4; q++ {
						s := int32(rng.Intn(n))
						if workers > 1 {
							z.TreeParallel(s)
							pk.TreeParallel(s)
							lg.TreeParallel(s)
						} else {
							z.Tree(s)
							pk.Tree(s)
							lg.Tree(s)
						}
						d.Run(s)
						for v := int32(0); v < int32(n); v++ {
							want := d.Dist(v)
							if got := z.Dist(v); got != want {
								t.Fatalf("workers %d trial %d src %d: compressed dist(%d)=%d, want %d", workers, trial, s, v, got, want)
							}
							if got := pk.Dist(v); got != want {
								t.Fatalf("workers %d trial %d src %d: packed dist(%d)=%d, want %d", workers, trial, s, v, got, want)
							}
							if got := lg.Dist(v); got != want {
								t.Fatalf("workers %d trial %d src %d: legacy dist(%d)=%d, want %d", workers, trial, s, v, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestCompressedTreeWithParentsMatchesDijkstra checks the
// parent-recording compressed kernels, sequential and pooled: distances
// match Dijkstra and every expanded PathTo is a real path in G whose
// weight equals the label.
func TestCompressedTreeWithParentsMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, mode := range allModes {
		for _, workers := range []int{1, 4} {
			g := gridGraph(rng, 5+rng.Intn(6), 5+rng.Intn(6), 20)
			n := g.NumVertices()
			z, _, _ := engineTriple(t, g, mode, workers)
			d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
			for q := 0; q < 3; q++ {
				s := int32(rng.Intn(n))
				if workers > 1 {
					z.TreeWithParentsParallel(s)
				} else {
					z.TreeWithParents(s)
				}
				d.Run(s)
				for v := int32(0); v < int32(n); v += 3 {
					want := d.Dist(v)
					if got := z.Dist(v); got != want {
						t.Fatalf("%s workers %d src %d: compressed dist(%d)=%d, want %d", mode, workers, s, v, got, want)
					}
					path := z.PathTo(v)
					if want == graph.Inf {
						if path != nil {
							t.Fatalf("%s src %d: PathTo(%d) non-nil for unreached vertex", mode, s, v)
						}
						continue
					}
					if path[0] != s || path[len(path)-1] != v {
						t.Fatalf("%s: PathTo(%d) endpoints %d..%d, want %d..%d", mode, v, path[0], path[len(path)-1], s, v)
					}
					var sum uint32
					for i := 1; i < len(path); i++ {
						sum += minArcWeight(t, g, path[i-1], path[i])
					}
					if sum != want {
						t.Fatalf("%s src %d: PathTo(%d) weighs %d, want %d", mode, s, v, sum, want)
					}
				}
			}
		}
	}
}

// TestCompressedMultiTreeMatchesAll checks the lane-major compressed
// kernels (scalar and lane-group, decode-once — packedz_soa.go) against
// the vertex-major compressed oracle (Options.VertexMajorMulti), the
// packed twins, and Dijkstra for k ∈ {1, 3, 5, 8, 16}, sequentially and
// on the pooled scheduler, over identity and reordered sweep orders.
// The lane-major engine runs the lane-group path for every k (odd k
// exercises the idempotent overlap tail); the vertex-major engines keep
// the k%4 lane contract, so they take the unrolled path only when k
// allows it.
func TestCompressedMultiTreeMatchesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			g := gridGraph(rng, 8, 7, 30)
			n := g.NumVertices()
			d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
			for _, workers := range []int{1, 4} {
				z, pk, _ := engineTriple(t, g, mode, workers)
				if !z.MultiLaneMajor() {
					t.Fatal("compressed engine did not default to the lane-major kernels")
				}
				oracle := vertexMajorOracle(t, g, mode, workers)
				for _, k := range []int{1, 3, 5, 8, 16} {
					sources := make([]int32, k)
					for i := range sources {
						sources[i] = int32(rng.Intn(n))
					}
					// Lane-major kernels accept any k on the lane-group
					// path; the vertex-major engines require k%4 == 0.
					aosLanes := k%4 == 0
					if workers > 1 {
						z.MultiTreeParallel(sources, true)
						pk.MultiTreeParallel(sources, aosLanes)
						oracle.MultiTreeParallel(sources, aosLanes)
					} else {
						z.MultiTree(sources, true)
						pk.MultiTree(sources, aosLanes)
						oracle.MultiTree(sources, aosLanes)
					}
					for i, s := range sources {
						d.Run(s)
						for v := int32(0); v < int32(n); v++ {
							want := d.Dist(v)
							if got := z.MultiDist(i, v); got != want {
								t.Fatalf("%s workers %d k=%d lane %d src %d: lane-major dist(%d)=%d, want %d",
									mode, workers, k, i, s, v, got, want)
							}
							if got := oracle.MultiDist(i, v); got != want {
								t.Fatalf("%s workers %d k=%d lane %d src %d: vertex-major oracle dist(%d)=%d, want %d",
									mode, workers, k, i, s, v, got, want)
							}
							if got := pk.MultiDist(i, v); got != want {
								t.Fatalf("%s workers %d k=%d lane %d src %d: packed dist(%d)=%d, want %d",
									mode, workers, k, i, s, v, got, want)
							}
						}
					}
					// CopyLaneDistances must agree across layouts: it is
					// the SoA transpose point for lane-major engines and
					// a strided gather for vertex-major ones.
					zbuf := make([]uint32, n)
					obuf := make([]uint32, n)
					for i := range sources {
						z.CopyLaneDistances(i, zbuf)
						oracle.CopyLaneDistances(i, obuf)
						for v := 0; v < n; v++ {
							if zbuf[v] != obuf[v] {
								t.Fatalf("%s workers %d k=%d lane %d: CopyLaneDistances disagrees at %d: %d vs %d",
									mode, workers, k, i, v, zbuf[v], obuf[v])
							}
						}
					}
				}
			}
		})
	}
}

// vertexMajorOracle builds a compressed engine with the vertex-major
// multi kernels mounted (Options.VertexMajorMulti) over a fresh but
// bit-identical hierarchy (ch.Build is deterministic).
func vertexMajorOracle(t *testing.T, g *graph.Graph, mode SweepMode, workers int) *Engine {
	t.Helper()
	h := ch.Build(g, ch.Options{Workers: 1})
	opt := Options{Mode: mode, Workers: workers, CompressedSweep: true, VertexMajorMulti: true}
	if workers > 1 {
		opt.ParallelGrain = 16
	}
	e, err := NewEngine(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	if e.MultiLaneMajor() {
		t.Fatal("VertexMajorMulti engine reports lane-major layout")
	}
	return e
}

// TestCompressedByteBudgetChunks runs the compressed pooled sweep under
// a tiny explicit ChunkBytes budget — many small, uneven chunks with
// real cross-chunk dependencies — and checks labels against Dijkstra.
func TestCompressedByteBudgetChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	g := gridGraph(rng, 20, 15, 40)
	n := g.NumVertices()
	h := ch.Build(g, ch.Options{Workers: 1})
	for _, budget := range []int{32, 256, 4096} {
		z, err := NewEngine(h, Options{Workers: 4, CompressedSweep: true, ChunkBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
		for q := 0; q < 3; q++ {
			s := int32(rng.Intn(n))
			z.TreeParallel(s)
			d.Run(s)
			for v := int32(0); v < int32(n); v++ {
				if got, want := z.Dist(v), d.Dist(v); got != want {
					t.Fatalf("budget %d src %d: dist(%d)=%d, want %d", budget, s, v, got, want)
				}
			}
		}
	}
}

// TestCompressedSweepBytesAccounting pins the stream accounting: a
// compressed engine reports its byte-granular stream in SweepBytes and
// a compression ratio strictly below the packed baseline's 1.0.
func TestCompressedSweepBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	g := gridGraph(rng, 12, 12, 30)
	z, pk, lg := engineTriple(t, g, SweepReordered, 1)
	if z.StreamBytes() <= 0 || pk.StreamBytes() <= 0 || lg.StreamBytes() <= 0 {
		t.Fatal("an engine reports a non-positive stream footprint")
	}
	if z.StreamBytes() >= pk.StreamBytes() {
		t.Fatalf("compressed stream %d B not below packed %d B", z.StreamBytes(), pk.StreamBytes())
	}
	if r := z.CompressionRatio(); r <= 0 || r >= 1 {
		t.Fatalf("compressed ratio %.3f, want (0,1)", r)
	}
	if r := pk.CompressionRatio(); r != 1 {
		t.Fatalf("packed ratio %.3f, want 1", r)
	}
	if zb, pb := z.SweepBytes(1), pk.SweepBytes(1); zb >= pb {
		t.Fatalf("compressed SweepBytes(1)=%d not below packed %d", zb, pb)
	}
	// At k=16 the engines differ in two modeled terms: the graph stream
	// shrinks by exactly the compressed/packed byte difference, and the
	// packed engine's vertex-major kernels additionally re-read the
	// relax target once per arc per lane (k·4m; the compressed engine's
	// lane-major kernels hold it in a register — see
	// bandwidth.SweepTraffic.LabelRereads).
	diff := pk.StreamBytes() - z.StreamBytes()
	rereads := int64(16) * int64(z.s.downIn.NumArcs()) * 4
	if zb, pb := z.SweepBytes(16), pk.SweepBytes(16); pb-zb != diff+rereads {
		t.Fatalf("SweepBytes(16) gap %d, want stream gap %d + re-read term %d", pb-zb, diff, rereads)
	}
	// The vertex-major oracle pays the re-read term too: byte model
	// follows the kernels actually mounted, not the stream type.
	h := ch.Build(g, ch.Options{Workers: 1})
	zAoS, err := NewEngine(h, Options{Workers: 1, CompressedSweep: true, VertexMajorMulti: true})
	if err != nil {
		t.Fatal(err)
	}
	if zAoS.MultiLaneMajor() || !z.MultiLaneMajor() {
		t.Fatal("MultiLaneMajor does not reflect VertexMajorMulti")
	}
	if got, want := zAoS.SweepBytes(16)-z.SweepBytes(16), rereads; got != want {
		t.Fatalf("oracle re-read term %d, want %d", got, want)
	}
}
