package core

import (
	"math/rand"
	"testing"

	"phast/internal/invariant"
)

// TestEngineCheckInvariants wires the checked-build validators into the
// core suite: every sweep mode's preprocessed data must validate, both
// freshly built and after sweeps have run. Under a release build the
// validators are no-ops and this pins only that the call is cheap and
// nil; `go test -tags phastdebug ./internal/core` performs the deep
// validation CI runs.
func TestEngineCheckInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := gridGraph(rng, 9, 8, 25)
	for _, mode := range []SweepMode{SweepReordered, SweepLevelOrder, SweepRankOrder} {
		for _, compressed := range []bool{false, true} {
			e := newEngine(t, g, Options{Mode: mode, CompressedSweep: compressed})
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("mode %v compressed=%v: fresh engine: %v", mode, compressed, err)
			}
			e.Tree(3)
			e.MultiTree([]int32{0, 5, 9, 14}, true)
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("mode %v compressed=%v: after sweeps: %v", mode, compressed, err)
			}
		}
	}
	// Variable cache-budget chunk boundaries (a tiny explicit budget
	// forces many uneven chunks) must validate through ChunkDepsAt too.
	for _, compressed := range []bool{false, true} {
		e := newEngine(t, g, Options{Workers: 2, ChunkBytes: 64, CompressedSweep: compressed})
		e.TreeParallel(3)
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("byte-budget chunking compressed=%v: %v", compressed, err)
		}
	}
}

// TestCHHeapInvariants white-box checks the search heap against the
// invariant validators through a randomized update/pop workload, and —
// in checked builds — that a corrupted heap is caught.
func TestCHHeapInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	const n = 64
	h := newCHHeap(n)
	check := func(stage string) {
		t.Helper()
		if err := invariant.MinHeap(h.keys); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if err := invariant.HeapIndex(h.vs, h.pos); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}
	check("empty")
	inHeap := make(map[int32]uint32)
	for op := 0; op < 400; op++ {
		if rng.Intn(3) < 2 || len(inHeap) == 0 {
			v := int32(rng.Intn(n))
			key := uint32(rng.Intn(1000))
			if old, ok := inHeap[v]; ok && key > old {
				key = old // chHeap.update only decreases existing keys
			}
			h.update(v, key)
			inHeap[v] = key
		} else {
			v, key := h.pop()
			if want := inHeap[v]; key != want {
				t.Fatalf("pop returned key %d for %d, want %d", key, v, want)
			}
			delete(inHeap, v)
		}
		check("after op")
	}
	for len(inHeap) > 0 {
		v, _ := h.pop()
		delete(inHeap, v)
		check("draining")
	}
	h.reset()
	check("after reset")

	if invariant.Enabled {
		h.update(1, 10)
		h.update(2, 20)
		h.update(3, 30)
		h.keys[0] = 99 // break the root's order without fixing up
		if err := invariant.MinHeap(h.keys); err == nil {
			t.Fatal("checked build missed a broken heap order")
		}
		h.pos[h.vs[0]] = -1 // stale index entry
		if err := invariant.HeapIndex(h.vs, h.pos); err == nil {
			t.Fatal("checked build missed a stale heap index")
		}
	}
}
