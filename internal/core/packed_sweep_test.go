package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// enginePair builds one hierarchy and returns a packed-stream engine and
// its legacy-kernel twin over it, for differential tests.
func enginePair(t *testing.T, g *graph.Graph, mode SweepMode, workers int) (packed, legacy *Engine) {
	t.Helper()
	h := ch.Build(g, ch.Options{Workers: 1})
	var err error
	if packed, err = NewEngine(h, Options{Mode: mode, Workers: workers, PackedSweep: PackedOn}); err != nil {
		t.Fatal(err)
	}
	if legacy, err = NewEngine(h, Options{Mode: mode, Workers: workers, PackedSweep: PackedOff}); err != nil {
		t.Fatal(err)
	}
	if packed.s.packed == nil {
		t.Fatal("PackedOn engine has no packed stream")
	}
	if legacy.s.packed != nil {
		t.Fatal("PackedOff engine built a packed stream")
	}
	return packed, legacy
}

// TestPackedTreeMatchesLegacyAndDijkstra is the single-tree differential
// oracle: the fused-stream kernel, the legacy CSR+mark kernel, and plain
// Dijkstra must agree label-for-label in every sweep mode.
func TestPackedTreeMatchesLegacyAndDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				var g *graph.Graph
				if trial%2 == 0 {
					n := 2 + rng.Intn(60)
					g = randomGraph(rng, n, rng.Intn(5*n), 25)
				} else {
					g = gridGraph(rng, 4+rng.Intn(8), 4+rng.Intn(8), 30)
				}
				n := g.NumVertices()
				pk, lg := enginePair(t, g, mode, 1)
				d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
				for q := 0; q < 5; q++ {
					s := int32(rng.Intn(n))
					pk.Tree(s)
					lg.Tree(s)
					d.Run(s)
					for v := int32(0); v < int32(n); v++ {
						want := d.Dist(v)
						if got := pk.Dist(v); got != want {
							t.Fatalf("trial %d src %d: packed dist(%d)=%d, want %d", trial, s, v, got, want)
						}
						if got := lg.Dist(v); got != want {
							t.Fatalf("trial %d src %d: legacy dist(%d)=%d, want %d", trial, s, v, got, want)
						}
					}
				}
			}
		})
	}
}

// minArcWeight returns the cheapest u→v arc weight in g (randomGraph can
// produce parallel arcs).
func minArcWeight(t *testing.T, g *graph.Graph, u, v int32) uint32 {
	t.Helper()
	w := graph.Inf
	for _, a := range g.Arcs(u) {
		if a.Head == v && a.Weight < w {
			w = a.Weight
		}
	}
	if w == graph.Inf {
		t.Fatalf("path uses nonexistent arc %d→%d", u, v)
	}
	return w
}

// TestPackedTreeWithParentsMatchesDijkstra checks the parent-recording
// packed kernel: distances match Dijkstra and every expanded PathTo is a
// real path in G whose weight equals the label.
func TestPackedTreeWithParentsMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, mode := range allModes {
		g := gridGraph(rng, 5+rng.Intn(6), 5+rng.Intn(6), 20)
		n := g.NumVertices()
		pk, lg := enginePair(t, g, mode, 1)
		d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
		for q := 0; q < 3; q++ {
			s := int32(rng.Intn(n))
			pk.TreeWithParents(s)
			lg.TreeWithParents(s)
			d.Run(s)
			for v := int32(0); v < int32(n); v += 3 {
				want := d.Dist(v)
				if got := pk.Dist(v); got != want {
					t.Fatalf("%s src %d: packed dist(%d)=%d, want %d", mode, s, v, got, want)
				}
				if got := lg.Dist(v); got != want {
					t.Fatalf("%s src %d: legacy dist(%d)=%d, want %d", mode, s, v, got, want)
				}
				path := pk.PathTo(v)
				if want == graph.Inf {
					if path != nil {
						t.Fatalf("%s src %d: PathTo(%d) non-nil for unreached vertex", mode, s, v)
					}
					continue
				}
				if path[0] != s || path[len(path)-1] != v {
					t.Fatalf("%s: PathTo(%d) endpoints %d..%d, want %d..%d", mode, v, path[0], path[len(path)-1], s, v)
				}
				var sum uint32
				for i := 1; i < len(path); i++ {
					sum += minArcWeight(t, g, path[i-1], path[i])
				}
				if sum != want {
					t.Fatalf("%s src %d: PathTo(%d) weighs %d, want %d", mode, s, v, sum, want)
				}
			}
		}
	}
}

// TestPackedMultiTreeMatchesLegacyAndDijkstra covers the k-lane packed
// kernels (scalar and 4-wide) for k ∈ {1, 4, 16} against the legacy
// sweep and Dijkstra, in every sweep mode.
func TestPackedMultiTreeMatchesLegacyAndDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			g := gridGraph(rng, 6+rng.Intn(5), 6+rng.Intn(5), 25)
			n := g.NumVertices()
			pk, lg := enginePair(t, g, mode, 1)
			d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
			for _, k := range []int{1, 4, 16} {
				for _, lanes := range []bool{false, true} {
					if lanes && k%4 != 0 {
						continue
					}
					sources := make([]int32, k)
					for i := range sources {
						sources[i] = int32(rng.Intn(n))
					}
					pk.MultiTree(sources, lanes)
					lg.MultiTree(sources, lanes)
					for i, s := range sources {
						d.Run(s)
						for v := int32(0); v < int32(n); v += 2 {
							want := d.Dist(v)
							if got := pk.MultiDist(i, v); got != want {
								t.Fatalf("k=%d lanes=%v lane %d src %d: packed dist(%d)=%d, want %d", k, lanes, i, s, v, got, want)
							}
							if got := lg.MultiDist(i, v); got != want {
								t.Fatalf("k=%d lanes=%v lane %d src %d: legacy dist(%d)=%d, want %d", k, lanes, i, s, v, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestAddSatOverflowBoundary is the satellite property test for the
// saturating relaxation primitive every kernel now uses instead of
// per-arc uint64 widening: AddSat must equal min(a+b, Inf) over exact
// 64-bit arithmetic, with the generator biased toward the overflow
// boundary where the old widening code and a wrapping add disagree.
func TestAddSatOverflowBoundary(t *testing.T) {
	boundary := []uint32{0, 1, graph.MaxWeight, graph.MaxWeight - 1, graph.Inf / 2, graph.Inf - 1, graph.Inf}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			gen := func() uint32 {
				if rng.Intn(2) == 0 {
					return boundary[rng.Intn(len(boundary))]
				}
				return rng.Uint32()
			}
			vals[0] = reflect.ValueOf(gen())
			vals[1] = reflect.ValueOf(gen())
		},
	}
	prop := func(a, b uint32) bool {
		want := uint64(a) + uint64(b)
		if want > uint64(graph.Inf) {
			want = uint64(graph.Inf)
		}
		return graph.AddSat(a, b) == uint32(want)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSweepAboveInt32Boundary drives real trees whose labels exceed
// MaxInt32 (three chained MaxWeight arcs), the zone where a signed or
// widened intermediate in any kernel would corrupt labels.
func TestSweepAboveInt32Boundary(t *testing.T) {
	b := graph.NewBuilder(4)
	for i := int32(0); i < 3; i++ {
		b.MustAddArc(i, i+1, graph.MaxWeight)
	}
	g := b.Build()
	for _, mode := range allModes {
		pk, lg := enginePair(t, g, mode, 1)
		for _, e := range []*Engine{pk, lg} {
			e.Tree(0)
			for v := int32(0); v < 4; v++ {
				if got, want := e.Dist(v), uint32(v)*graph.MaxWeight; got != want {
					t.Fatalf("%s: dist(%d)=%d, want %d", mode, v, got, want)
				}
			}
		}
	}
}

// TestBuildSeedsSortedAndMarksCleared checks the mark-folding contract:
// after buildSeeds the seed positions are strictly increasing, cover the
// whole upward search space, and every mark is back to false (the
// between-trees invariant the packed sweep relies on without ever
// touching the mark array itself).
func TestBuildSeedsSortedAndMarksCleared(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, mode := range allModes {
		g := gridGraph(rng, 8, 8, 15)
		pk, _ := enginePair(t, g, mode, 1)
		pk.chSearch(int32(rng.Intn(g.NumVertices())), nil)
		touched := len(pk.touched)
		pk.buildSeeds()
		if len(pk.seedPos) != touched {
			t.Fatalf("%s: %d seeds from %d touched vertices", mode, len(pk.seedPos), touched)
		}
		for i := 1; i < len(pk.seedPos); i++ {
			if pk.seedPos[i-1] >= pk.seedPos[i] {
				t.Fatalf("%s: seedPos not strictly increasing at %d: %d >= %d", mode, i, pk.seedPos[i-1], pk.seedPos[i])
			}
		}
		n := int32(pk.s.n)
		for v := int32(0); v < n; v++ {
			if pk.mark[v] {
				t.Fatalf("%s: mark[%d] still set after buildSeeds", mode, v)
			}
		}
		// The engine must still compute correct trees afterwards.
		d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
		s := int32(rng.Intn(g.NumVertices()))
		pk.Tree(s)
		d.Run(s)
		for v := int32(0); v < n; v++ {
			if got, want := pk.Dist(v), d.Dist(v); got != want {
				t.Fatalf("%s src %d: dist(%d)=%d, want %d", mode, s, v, got, want)
			}
		}
	}
}

// TestSweepBytesPackedBelowLegacy pins the point of the fused layout:
// the modeled sweep traffic of the packed stream must be strictly below
// the legacy CSR+mark traffic for the same hierarchy, for k = 1 and 16.
func TestSweepBytesPackedBelowLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	g := gridGraph(rng, 12, 12, 20)
	for _, mode := range allModes {
		pk, lg := enginePair(t, g, mode, 1)
		for _, k := range []int{1, 16} {
			pb, lb := pk.SweepBytes(k), lg.SweepBytes(k)
			if pb <= 0 || lb <= 0 {
				t.Fatalf("%s k=%d: non-positive traffic model (%d, %d)", mode, k, pb, lb)
			}
			if pb >= lb {
				t.Fatalf("%s k=%d: packed traffic %d not below legacy %d", mode, k, pb, lb)
			}
		}
		if pk.SweepBytes(16) <= pk.SweepBytes(1) {
			t.Fatalf("%s: traffic model not k-aware", mode)
		}
	}
}

// TestLegacyParallelBarrierRace keeps the legacy barrier sweeps under
// the race detector now that the default engine runs the packed kernels
// (the packed twins are covered by the existing race tests).
func TestLegacyParallelBarrierRace(t *testing.T) {
	h, n := raceHierarchy(t)
	e, err := NewEngine(h, Options{Workers: 4, PackedSweep: PackedOff, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	levelsBigEnough(t, e)
	rng := rand.New(rand.NewSource(53))
	s := int32(rng.Intn(n))
	e.TreeParallel(s)
	raceFixture.d.Run(s)
	for v := int32(0); v < int32(n); v += 7 {
		if got, want := e.Dist(v), raceFixture.d.Dist(v); got != want {
			t.Fatalf("src %d: dist(%d)=%d, want %d", s, v, got, want)
		}
	}
	sources := []int32{s, int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n))}
	e.MultiTreeParallel(sources, false)
	for i, src := range sources {
		raceFixture.d.Run(src)
		for v := int32(0); v < int32(n); v += 11 {
			if got, want := e.MultiDist(i, v), raceFixture.d.Dist(v); got != want {
				t.Fatalf("lane %d src %d: dist(%d)=%d, want %d", i, src, v, got, want)
			}
		}
	}
}

// TestPackedParallelStress interleaves packed parallel single- and
// multi-tree sweeps on clones of one hierarchy, for the race detector.
func TestPackedParallelStress(t *testing.T) {
	h, n := raceHierarchy(t)
	proto, err := NewEngine(h, Options{Workers: 4, PackedSweep: PackedOn, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	levelsBigEnough(t, proto)
	done := make(chan error, 3)
	for c := 0; c < 3; c++ {
		go func(c int) {
			e := proto.Clone()
			rng := rand.New(rand.NewSource(int64(80 + c)))
			buf := make([]uint32, n)
			for q := 0; q < 3; q++ {
				s := int32(rng.Intn(n))
				e.TreeParallel(s)
				e.CopyDistances(buf)
				if buf[s] != 0 {
					done <- fmt.Errorf("clone %d: dist(source %d) = %d", c, s, buf[s])
					return
				}
				sources := []int32{s, int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n))}
				e.MultiTreeParallel(sources, false)
				for i, src := range sources {
					e.CopyLaneDistances(i, buf)
					if buf[src] != 0 {
						done <- fmt.Errorf("clone %d lane %d: dist(source %d) = %d", c, i, src, buf[src])
						return
					}
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < 3; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
