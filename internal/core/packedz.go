package core

import (
	"encoding/binary"

	"phast/internal/graph"
)

// This file holds the compressed-stream sweep kernels: the packed
// kernel families of packed.go ported to the byte layout of
// graph.PackedZ. The sweep is bandwidth-bound, so the kernels trade a
// few decode instructions per arc for reading roughly half the bytes:
// arc heads arrive as position deltas (one byte for the common
// near-local arc after the level-DFS reorder) and weights in the
// per-block width the header's tag announces.
//
// Both field widths are constant across a block, so each kernel hoists
// the decode geometry out of the arc loop: the header's two tags fix a
// stride, a delta shift and two masks, and every arc then decodes from
// a single 8-byte load — delta in the low bytes, weight in the next —
// with no data-dependent branches and a loop-carried offset that is a
// plain add. That is the same dependence structure as the uncompressed
// packed kernels, which is what lets these loops approach their
// throughput while streaming half the bytes. (An earlier varint arc
// encoding was measurably slower: the per-arc length branch
// mispredicted on mixed-width blocks and serialized the offset chain.)
// Narrow weights are verbatim: the encoder promotes any block holding
// an unreachable (Inf) weight to the 4-byte width, where Inf is the
// all-ones word, so the decoders never special-case it. The identity-
// order single-tree kernel goes further and specializes the four
// narrow tag pairs with constant-shift pair decode (two arcs per wide
// load); see sweepPackedZIdent.
// Headers and vertex words stay varint and keep their one-byte fast
// path inline, falling into uvarintSlow only on the cold multi-byte
// tail. Everything else (seed merge cursor, implicit initialization,
// saturating relax) is identical to the packed kernels.

// uvarintSlow finishes decoding a varint whose first byte (already
// consumed, continuation bit set) is `first`, returning the value and
// the offset past it. Split from the call sites so the hot scan loops
// keep the one-byte fast path inline; this helper runs on the cold
// multi-byte tail only.
//
//phast:hotpath
func uvarintSlow(first uint32, s []byte, i int) (uint32, int) {
	x := first & 0x7f
	shift := uint(7)
	for {
		b := s[i]
		i++
		x |= uint32(b&0x7f) << shift
		if b < 0x80 {
			return x, i
		}
		shift += 7
	}
}

// unzig undoes the zigzag fold of the stream's vertex words.
//
//phast:hotpath
func unzig(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// zGeom expands a block header's width tags into the arc-loop decode
// geometry: the byte stride of one arc, the bit offset of the weight
// inside the 8-byte load, and the extraction masks. wmask doubles as
// the Inf escape pattern (Go shifts by >= 32 yield 0, so the 4-byte
// tags produce the correct all-ones mask).
//
//phast:hotpath
func zGeom(hdr uint32) (stride int, dshift, dmask, wmask uint32) {
	dtag := hdr >> 2 & 3
	wtag := hdr & 3
	stride = int(1<<dtag + 1<<wtag)
	dshift = 8 << dtag
	dmask = uint32(1)<<dshift - 1
	wmask = uint32(1)<<(8<<wtag) - 1
	return
}

// sweepPackedZIdent is the identity-order single-tree kernel, the shape
// SweepReordered always runs (the graph is physically relabeled, so no
// vertex words and no order indirection). It exists because the generic
// kernel pays three taxes this hot loop cannot afford: variable-shift
// guards (the geometry masks are loop-variant), per-arc wide-load
// bounds checks, and register spills from the order/hasV state. Here
// the two width shapes that cover essentially every arc of a
// reordered road hierarchy — 1-byte delta with 1- or 2-byte weight —
// get constant-geometry loops that decode two arcs per 8-byte load
// with immediate shifts; everything else falls through to the generic
// geometry loop.
//
//phast:hotpath
func (e *Engine) sweepPackedZIdent() {
	zk := e.s.packedz
	stream := zk.Stream()
	dist := e.dist
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	nb := int32(zk.NumVertices())
	i := 0
	for p := int32(0); p < nb; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		best := graph.Inf
		if p == next {
			best = dist[p]
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		switch hdr & 0xF {
		case graph.WTag16<<2 | graph.WTag16: // 2-byte delta, 2-byte weight
			a := 0
			for ; a+2 <= deg; a += 2 {
				x := binary.LittleEndian.Uint64(stream[i:])
				i += 8
				h0 := p - int32(x&0xFFFF)
				w0 := uint32(x>>16) & 0xFFFF
				h1 := p - int32(x>>32&0xFFFF)
				w1 := uint32(x >> 48)
				nd0 := graph.AddSat(dist[h0], w0)
				nd1 := graph.AddSat(dist[h1], w1)
				if nd0 < best {
					best = nd0
				}
				if nd1 < best {
					best = nd1
				}
			}
			// Branchless odd-arc tail: degree parity is data-dependent
			// and a conditional tail mispredicts on half the blocks.
			// Decode unconditionally (the load lands in the next block
			// or the stream pad), clamp a garbage head index to 0, and
			// mask the weight to Inf — relaxing with Inf is a no-op.
			m := uint32(int32(a-deg) >> 31) // all-ones iff a tail arc exists
			x := binary.LittleEndian.Uint32(stream[i:])
			i += int(m & 4)
			h := p - int32(x&0xFFFF)
			h &^= h >> 31
			if nd := graph.AddSat(dist[h], x>>16|^m); nd < best {
				best = nd
			}
		case graph.WTag16<<2 | graph.WTag8: // 2-byte delta, 1-byte weight
			a := 0
			for ; a+2 <= deg; a += 2 {
				x := binary.LittleEndian.Uint64(stream[i:])
				i += 6
				h0 := p - int32(x&0xFFFF)
				w0 := uint32(x>>16) & 0xFF
				h1 := p - int32(x>>24&0xFFFF)
				w1 := uint32(x>>40) & 0xFF
				nd0 := graph.AddSat(dist[h0], w0)
				nd1 := graph.AddSat(dist[h1], w1)
				if nd0 < best {
					best = nd0
				}
				if nd1 < best {
					best = nd1
				}
			}
			m := uint32(int32(a-deg) >> 31)
			x := binary.LittleEndian.Uint32(stream[i:])
			i += int(m & 3)
			h := p - int32(x&0xFFFF)
			h &^= h >> 31
			if nd := graph.AddSat(dist[h], x>>16&0xFF|^m); nd < best {
				best = nd
			}
		case graph.WTag8<<2 | graph.WTag16: // 1-byte delta, 2-byte weight
			a := 0
			for ; a+2 <= deg; a += 2 {
				x := binary.LittleEndian.Uint64(stream[i:])
				i += 6
				h0 := p - int32(x&0xFF)
				w0 := uint32(x>>8) & 0xFFFF
				h1 := p - int32(x>>24&0xFF)
				w1 := uint32(x>>32) & 0xFFFF
				nd0 := graph.AddSat(dist[h0], w0)
				nd1 := graph.AddSat(dist[h1], w1)
				if nd0 < best {
					best = nd0
				}
				if nd1 < best {
					best = nd1
				}
			}
			m := uint32(int32(a-deg) >> 31)
			x := binary.LittleEndian.Uint32(stream[i:])
			i += int(m & 3)
			h := p - int32(x&0xFF)
			h &^= h >> 31
			if nd := graph.AddSat(dist[h], x>>8&0xFFFF|^m); nd < best {
				best = nd
			}
		case graph.WTag8<<2 | graph.WTag8: // 1-byte delta, 1-byte weight
			a := 0
			for ; a+2 <= deg; a += 2 {
				x := binary.LittleEndian.Uint32(stream[i:])
				i += 4
				h0 := p - int32(x&0xFF)
				w0 := x >> 8 & 0xFF
				h1 := p - int32(x>>16&0xFF)
				w1 := x >> 24
				nd0 := graph.AddSat(dist[h0], w0)
				nd1 := graph.AddSat(dist[h1], w1)
				if nd0 < best {
					best = nd0
				}
				if nd1 < best {
					best = nd1
				}
			}
			m := uint32(int32(a-deg) >> 31)
			x := uint32(binary.LittleEndian.Uint16(stream[i:]))
			i += int(m & 2)
			h := p - int32(x&0xFF)
			h &^= h >> 31
			if nd := graph.AddSat(dist[h], x>>8|^m); nd < best {
				best = nd
			}
		default:
			stride, dshift, dmask, wmask := zGeom(hdr)
			for a := 0; a < deg; a++ {
				x := binary.LittleEndian.Uint64(stream[i:])
				i += stride
				d := uint32(x) & dmask
				w := uint32(x>>dshift) & wmask
				h := p - int32(d)
				if nd := graph.AddSat(dist[h], w); nd < best {
					best = nd
				}
			}
		}
		dist[p] = best
	}
}

// sweepPackedZ is the compressed single-tree kernel: one forward pass
// over the byte stream, decoding inline.
//
//phast:hotpath
func (e *Engine) sweepPackedZ() {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	if !hasV {
		e.sweepPackedZIdent()
		return
	}
	order := e.s.order
	dist := e.dist
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	nb := int32(zk.NumVertices())
	i := 0
	for p := int32(0); p < nb; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		stride, dshift, dmask, wmask := zGeom(hdr)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		best := graph.Inf
		if p == next {
			best = dist[v]
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		for a := 0; a < deg; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			d := uint32(x) & dmask
			w := uint32(x>>dshift) & wmask
			h := p - int32(d)
			if hasV {
				h = order[h]
			}
			if nd := graph.AddSat(dist[h], w); nd < best {
				best = nd
			}
		}
		dist[v] = best
	}
}

// sweepPackedZParents is sweepPackedZ recording G+ parent pointers.
//
//phast:hotpath
func (e *Engine) sweepPackedZParents() {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	order := e.s.order
	dist := e.dist
	parent := e.parent
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	nb := int32(zk.NumVertices())
	i := 0
	for p := int32(0); p < nb; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		stride, dshift, dmask, wmask := zGeom(hdr)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		best := graph.Inf
		bestP := int32(-1)
		if p == next {
			best = dist[v]
			bestP = parent[v] // set by the CH search
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		for a := 0; a < deg; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			d := uint32(x) & dmask
			w := uint32(x>>dshift) & wmask
			h := p - int32(d)
			if hasV {
				h = order[h]
			}
			if nd := graph.AddSat(dist[h], w); nd < best {
				best = nd
				bestP = h
			}
		}
		dist[v] = best
		parent[v] = bestP
	}
}

// sweepPackedZMulti relaxes all k trees in one pass over the compressed
// stream with a scalar inner loop over the vertex-major (kdist[v*k+j])
// label layout. Since the lane-major decode-once kernels of
// packedz_soa.go became the production multi family, this runs only
// under the Options.VertexMajorMulti differential oracle.
//
//phast:hotpath
func (e *Engine) sweepPackedZMulti(k int) {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	order := e.s.order
	kd := e.kdist
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	nb := int32(zk.NumVertices())
	i := 0
	for p := int32(0); p < nb; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		stride, dshift, dmask, wmask := zGeom(hdr)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		base := int(v) * k
		dv := kd[base : base+k]
		if p == next {
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		} else {
			for j := range dv {
				dv[j] = graph.Inf
			}
		}
		for a := 0; a < deg; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			d := uint32(x) & dmask
			w := uint32(x>>dshift) & wmask
			h := p - int32(d)
			if hasV {
				h = order[h]
			}
			ub := int(h) * k
			du := kd[ub : ub+k]
			for j := 0; j < k; j++ {
				if nd := graph.AddSat(du[j], w); nd < dv[j] {
					dv[j] = nd
				}
			}
		}
	}
}

// sweepPackedZMultiLanes is sweepPackedZMulti with the inner loop
// unrolled into the 4-wide relax4 lanes (Section IV-B SSE analogue).
// Vertex-major; oracle-only, like sweepPackedZMulti.
//
//phast:hotpath
func (e *Engine) sweepPackedZMultiLanes(k int) {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	order := e.s.order
	kd := e.kdist
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	nb := int32(zk.NumVertices())
	i := 0
	for p := int32(0); p < nb; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		stride, dshift, dmask, wmask := zGeom(hdr)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		base := int(v) * k
		dv := kd[base : base+k : base+k]
		if p == next {
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		} else {
			for j := range dv {
				dv[j] = graph.Inf
			}
		}
		for a := 0; a < deg; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			d := uint32(x) & dmask
			w := uint32(x>>dshift) & wmask
			h := p - int32(d)
			if hasV {
				h = order[h]
			}
			ub := int(h) * k
			du := kd[ub : ub+k : ub+k]
			for j := 0; j+4 <= k; j += 4 {
				relax4(dv[j:j+4:j+4], du[j:j+4:j+4], w)
			}
		}
	}
}
