package core

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
)

// FuzzCompressedMultiSweep fuzzes the decode-once lane-major multi
// kernels (packedz_soa.go) differentially: for a random graph, weight
// scale, k, and sweep order, the compressed lane-major sweep — scalar
// and lane-group, sequential and chunk-scheduled — must agree
// label-for-label with the packed vertex-major twin. The weight cap
// spans the 1/2/4-byte weight widths and the vertex count spans 1- and
// 2-byte deltas, so mutation walks the header-shape space the kernels
// specialize; the checked-in corpus pins one entry per shape the
// builder can emit at fuzz-sized n (d32 needs >64Ki vertices per case
// and is exercised by the generic-geometry fallback path instead).
func FuzzCompressedMultiSweep(f *testing.F) {
	// Corpus: (nRaw, mRaw, seed, kRaw, wCap, ordered) pinned per header
	// shape; see TestCompressedFuzzCorpusShapes for the coverage proof.
	f.Add(uint16(40), uint16(90), int64(1), uint8(3), uint32(200), false)     // d8w8
	f.Add(uint16(40), uint16(90), int64(2), uint8(7), uint32(50_000), false)  // d8w16
	f.Add(uint16(40), uint16(90), int64(3), uint8(15), uint32(90_000), false) // d8w32
	f.Add(uint16(500), uint16(2400), int64(4), uint8(4), uint32(200), true)   // d16w8
	f.Add(uint16(500), uint16(2400), int64(5), uint8(0), uint32(50_000), true) // d16w16
	f.Add(uint16(500), uint16(2400), int64(6), uint8(9), uint32(90_000), true) // d16w32
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed int64, kRaw uint8, wCap uint32, ordered bool) {
		n := 2 + int(nRaw)%600
		m := int(mRaw) % (5 * n)
		k := 1 + int(kRaw)%16
		maxW := 1 + int(wCap%(1<<18))
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n, m, maxW)
		h := ch.Build(g, ch.Options{Workers: 1})
		mode := SweepReordered
		if ordered {
			// Explicit sweep order: blocks carry vertex words and the
			// kernels remap staged heads through the order array.
			mode = SweepLevelOrder
		}
		opt := Options{Mode: mode, Workers: 4, CompressedSweep: true, ParallelGrain: 16}
		z, err := NewEngine(h, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.CompressedSweep = false
		opt.PackedSweep = PackedOn
		pk, err := NewEngine(h, opt)
		if err != nil {
			t.Fatal(err)
		}
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(n))
		}
		pk.MultiTree(sources, k%4 == 0)
		want := make([][]uint32, k)
		for i := range sources {
			want[i] = make([]uint32, n)
			pk.CopyLaneDistances(i, want[i])
		}
		check := func(variant string) {
			for i := range sources {
				for v := int32(0); v < int32(n); v++ {
					if got := z.MultiDist(i, v); got != want[i][v] {
						t.Fatalf("%s n=%d k=%d lane %d: dist(%d)=%d, want %d",
							variant, n, k, i, v, got, want[i][v])
					}
				}
			}
		}
		z.MultiTree(sources, false) // scalar relax
		check("sequential/scalar")
		z.MultiTree(sources, true) // lane-group relax, overlap tails for k%4 != 0
		check("sequential/lanes")
		z.MultiTreeParallel(sources, true) // chunk-scheduled decode
		check("parallel/lanes")
	})
}

// TestCompressedFuzzCorpusShapes proves the FuzzCompressedMultiSweep
// corpus covers the header shapes it claims: each seed tuple's graph
// must compress to a stream whose histogram contains the pinned shape.
func TestCompressedFuzzCorpusShapes(t *testing.T) {
	cases := []struct {
		nRaw, mRaw uint16
		seed       int64
		wCap       uint32
		ordered    bool
		shape      string
	}{
		{40, 90, 1, 200, false, "d8w8"},
		{40, 90, 2, 50_000, false, "d8w16"},
		{40, 90, 3, 90_000, false, "d8w32"},
		{500, 2400, 4, 200, true, "d16w8"},
		{500, 2400, 5, 50_000, true, "d16w16"},
		{500, 2400, 6, 90_000, true, "d16w32"},
	}
	for _, c := range cases {
		n := 2 + int(c.nRaw)%600
		m := int(c.mRaw) % (5 * n)
		maxW := 1 + int(c.wCap%(1<<18))
		rng := rand.New(rand.NewSource(c.seed))
		g := randomGraph(rng, n, m, maxW)
		h := ch.Build(g, ch.Options{Workers: 1})
		mode := SweepReordered
		if c.ordered {
			mode = SweepLevelOrder
		}
		z, err := NewEngine(h, Options{Mode: mode, Workers: 1, CompressedSweep: true})
		if err != nil {
			t.Fatal(err)
		}
		hist := z.StreamShapeHistogram()
		if hist[c.shape] == 0 {
			t.Errorf("corpus seed %d: stream histogram %v lacks pinned shape %s", c.seed, hist, c.shape)
		}
		if _, ok := hist["malformed"]; ok {
			t.Errorf("corpus seed %d: builder emitted a malformed header", c.seed)
		}
	}
}
