package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// instance is a quick.Generator producing random digraphs with sources,
// so the central PHAST == Dijkstra invariant is checked over arbitrary
// (not just road-shaped) inputs.
type instance struct {
	g       *graph.Graph
	sources []int32
}

// Generate implements quick.Generator.
func (instance) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(40)
	m := rng.Intn(5 * n)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(1+rng.Intn(64)))
	}
	sources := make([]int32, 1+rng.Intn(4))
	for i := range sources {
		sources[i] = int32(rng.Intn(n))
	}
	return reflect.ValueOf(instance{g: b.Build(), sources: sources})
}

var quickCfg = &quick.Config{MaxCount: 40}

// TestQuickPHASTEqualsDijkstra is the paper's Theorem 3.1 as a property:
// for every graph, every source and every sweep mode, PHAST labels equal
// Dijkstra labels.
func TestQuickPHASTEqualsDijkstra(t *testing.T) {
	prop := func(in instance) bool {
		h := ch.Build(in.g, ch.Options{Workers: 1})
		d := sssp.NewDijkstra(in.g, pq.KindBinaryHeap)
		for _, mode := range allModes {
			e, err := NewEngine(h, Options{Mode: mode, Workers: 1})
			if err != nil {
				return false
			}
			for _, s := range in.sources {
				e.Tree(s)
				d.Run(s)
				for v := int32(0); v < int32(in.g.NumVertices()); v++ {
					if e.Dist(v) != d.Dist(v) {
						t.Logf("mode %v src %d vertex %d: %d != %d",
							mode, s, v, e.Dist(v), d.Dist(v))
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMultiTreeEqualsSingle checks that every lane of a k-sweep
// matches an independent single-tree computation.
func TestQuickMultiTreeEqualsSingle(t *testing.T) {
	prop := func(in instance) bool {
		h := ch.Build(in.g, ch.Options{Workers: 1})
		e, err := NewEngine(h, Options{Workers: 1})
		if err != nil {
			return false
		}
		single := e.Clone()
		e.MultiTree(in.sources, false)
		for i, s := range in.sources {
			single.Tree(s)
			for v := int32(0); v < int32(in.g.NumVertices()); v++ {
				if e.MultiDist(i, v) != single.Dist(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParentChainsAreTight checks that climbing G+ parent pointers
// from any reached vertex yields strictly decreasing labels and ends at
// the source.
func TestQuickParentChainsAreTight(t *testing.T) {
	prop := func(in instance) bool {
		h := ch.Build(in.g, ch.Options{Workers: 1})
		e, err := NewEngine(h, Options{Workers: 1})
		if err != nil {
			return false
		}
		s := in.sources[0]
		e.TreeWithParents(s)
		n := int32(in.g.NumVertices())
		for v := int32(0); v < n; v++ {
			if v == s || e.Dist(v) == graph.Inf {
				continue
			}
			steps := 0
			for x := v; x != s; {
				p := e.ParentGPlus(x)
				if p < 0 || e.Dist(p) >= e.Dist(x) {
					return false
				}
				x = p
				if steps++; int32(steps) > n {
					return false // cycle
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestZeroWeightArcs: distances remain exact when arcs of weight zero
// exist (CH witness searches and the sweep must both tolerate them;
// only tree derivation in G requires positive lengths).
func TestZeroWeightArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(rng.Intn(5))) // 0..4
		}
		g := b.Build()
		h := ch.Build(g, ch.Options{Workers: 1})
		d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
		for _, mode := range allModes {
			e, err := NewEngine(h, Options{Mode: mode, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			s := int32(rng.Intn(n))
			e.Tree(s)
			d.Run(s)
			for v := int32(0); v < int32(n); v++ {
				if e.Dist(v) != d.Dist(v) {
					t.Fatalf("trial %d mode %v: zero-weight dist(%d)=%d, want %d",
						trial, mode, v, e.Dist(v), d.Dist(v))
				}
			}
		}
	}
}

// TestQuickUpwardSearchSpaceConsistent checks that the exported search
// space (used by GPHAST and RPHAST) reproduces the engine's own phase-1
// labels and resets all marks.
func TestQuickUpwardSearchSpaceConsistent(t *testing.T) {
	prop := func(in instance) bool {
		h := ch.Build(in.g, ch.Options{Workers: 1})
		e, err := NewEngine(h, Options{Workers: 1})
		if err != nil {
			return false
		}
		s := in.sources[0]
		verts, dists := e.UpwardSearchSpace(s, nil, nil)
		if len(verts) == 0 || len(verts) != len(dists) {
			return false
		}
		// The source must be in the space with label 0.
		found := false
		for i, v := range verts {
			if v == e.EngineID(s) {
				found = dists[i] == 0
			}
		}
		if !found {
			return false
		}
		// A following full tree must still be exact (marks were reset).
		d := sssp.NewDijkstra(in.g, pq.KindBinaryHeap)
		e.Tree(s)
		d.Run(s)
		for v := int32(0); v < int32(in.g.NumVertices()); v++ {
			if e.Dist(v) != d.Dist(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}
