package core

import (
	"math/rand"
	"testing"
)

func TestCHHeapBasicOrdering(t *testing.T) {
	h := newCHHeap(8)
	for v, k := range []uint32{9, 2, 7, 2, 11, 0, 5, 3} {
		h.update(int32(v), k)
	}
	prev := uint32(0)
	count := 0
	for !h.empty() {
		_, k := h.pop()
		if k < prev {
			t.Fatalf("keys out of order: %d after %d", k, prev)
		}
		prev = k
		count++
	}
	if count != 8 {
		t.Fatalf("popped %d elements, want 8", count)
	}
}

func TestCHHeapDecreaseViaUpdate(t *testing.T) {
	h := newCHHeap(4)
	h.update(0, 100)
	h.update(1, 50)
	h.update(0, 10) // decrease
	v, k := h.pop()
	if v != 0 || k != 10 {
		t.Fatalf("got (%d,%d), want (0,10)", v, k)
	}
	v, k = h.pop()
	if v != 1 || k != 50 {
		t.Fatalf("got (%d,%d), want (1,50)", v, k)
	}
}

func TestCHHeapResetReuse(t *testing.T) {
	h := newCHHeap(4)
	h.update(0, 1)
	h.update(1, 2)
	h.reset()
	if !h.empty() {
		t.Fatal("reset left elements")
	}
	h.update(1, 7)
	v, k := h.pop()
	if v != 1 || k != 7 {
		t.Fatalf("reuse after reset broken: (%d,%d)", v, k)
	}
}

func TestCHHeapRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(128)
		h := newCHHeap(n)
		key := make(map[int32]uint32)
		for step := 0; step < 400; step++ {
			if rng.Intn(3) != 0 || len(key) == 0 {
				v := int32(rng.Intn(n))
				nk := uint32(rng.Intn(1000))
				if old, ok := key[v]; ok && nk > old {
					nk = old // chHeap.update only decreases existing keys
				}
				h.update(v, nk)
				key[v] = nk
			} else {
				want := ^uint32(0)
				for _, k := range key {
					if k < want {
						want = k
					}
				}
				v, k := h.pop()
				if k != want || key[v] != k {
					t.Fatalf("pop (%d,%d), reference min %d / key %d", v, k, want, key[v])
				}
				delete(key, v)
			}
		}
	}
}
