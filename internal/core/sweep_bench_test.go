package core

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
)

// Sweep-kernel microbenchmarks: phase 2 only, no upward search in the
// timed region, so the packed stream and the legacy CSR+mark kernels
// are compared on exactly the code the fused layout changes.

var sweepBench struct {
	h *ch.Hierarchy
	n int
}

func sweepHierarchy(b *testing.B) (*ch.Hierarchy, int) {
	if sweepBench.h == nil {
		rng := rand.New(rand.NewSource(9))
		g := gridGraph(rng, 120, 100, 30)
		sweepBench.h = ch.Build(g, ch.Options{Workers: 1})
		sweepBench.n = g.NumVertices()
	}
	return sweepBench.h, sweepBench.n
}

func benchSweepKernel(b *testing.B, packed PackedSetting) {
	h, n := sweepHierarchy(b)
	e, err := NewEngine(h, Options{Mode: SweepReordered, Workers: 1, PackedSweep: packed})
	if err != nil {
		b.Fatal(err)
	}
	src := int32(n / 2)
	b.ResetTimer()
	if packed != PackedOff {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e.chSearch(src, nil)
			e.buildSeeds()
			b.StartTimer()
			e.sweepPacked()
		}
	} else {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e.chSearch(src, nil)
			b.StartTimer()
			e.sweepIdentity()
		}
	}
}

func BenchmarkSweepKernelPacked(b *testing.B) { benchSweepKernel(b, PackedOn) }
func BenchmarkSweepKernelLegacy(b *testing.B) { benchSweepKernel(b, PackedOff) }

// BenchmarkSweepKernelCompressed times the delta+varint decode kernel
// on the same fixture, isolating decode cost from the upward search.
func BenchmarkSweepKernelCompressed(b *testing.B) {
	h, n := sweepHierarchy(b)
	e, err := NewEngine(h, Options{Mode: SweepReordered, Workers: 1, CompressedSweep: true})
	if err != nil {
		b.Fatal(err)
	}
	src := int32(n / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e.chSearch(src, nil)
		e.buildSeeds()
		b.StartTimer()
		e.sweepPackedZ()
	}
}
