package core

import (
	"slices"

	"phast/internal/graph"
)

// This file holds the fused single-stream sweep kernels. The layout
// (graph.Packed) interleaves each vertex's arc count with its (head,
// weight) pairs in sweep order, so phase 2 is one forward pass over a
// single []uint32 with no first[]/order[] indirection. The mark bit of
// the implicit-initialization scheme (Section IV-C) is folded away
// entirely: instead of branching on a per-vertex byte, the upward
// search's touched set is converted once into a sorted list of sweep
// positions and consumed by a merge cursor — the sweep never reads or
// writes a mark array, which removes one n-byte stream and one
// hard-to-predict branch per vertex. Relaxations stay 32-bit with
// saturating adds (graph.AddSat compiles to add + cmp + cmov).

// buildSeeds converts e.touched (the upward search space, engine IDs)
// into e.seedPos: the sorted sweep positions whose labels are already
// seeded in dist/kdist. It also clears the marks the search set, so the
// engine's between-trees invariant (all marks false) holds without the
// sweep touching the mark array.
//
//phast:hotpath
func (e *Engine) buildSeeds() {
	e.seedPos = e.seedPos[:0]
	pos := e.s.pos
	if pos == nil {
		for _, v := range e.touched {
			e.mark[v] = false
			e.seedPos = append(e.seedPos, v)
		}
	} else {
		for _, v := range e.touched {
			e.mark[v] = false
			e.seedPos = append(e.seedPos, pos[v])
		}
	}
	slices.Sort(e.seedPos)
}

// seedLowerBound returns the first index in seeds holding a position
// >= lo (hand-rolled so the parallel kernels stay closure-free).
//
//phast:hotpath
func seedLowerBound(seeds []int32, lo int32) int {
	i, j := 0, len(seeds)
	for i < j {
		h := int(uint(i+j) >> 1)
		if seeds[h] < lo {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// sweepPacked is the packed single-tree kernel: one forward pass over
// the fused stream. Seeded positions take their CH label as the initial
// best; all others start at Inf with no initialization pass.
//
//phast:hotpath
func (e *Engine) sweepPacked() {
	pk := e.s.packed
	stream := pk.Stream()
	hasV := pk.ExplicitVertex()
	dist := e.dist
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	p := int32(0)
	for i := 0; i < len(stream); {
		deg := int(stream[i])
		i++
		v := p
		if hasV {
			v = int32(stream[i])
			i++
		}
		best := graph.Inf
		if p == next {
			best = dist[v]
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		for end := i + 2*deg; i < end; i += 2 {
			nd := graph.AddSat(dist[stream[i]], stream[i+1])
			if nd < best {
				best = nd
			}
		}
		dist[v] = best
		p++
	}
}

// sweepPackedParents is sweepPacked recording G+ parent pointers.
//
//phast:hotpath
func (e *Engine) sweepPackedParents() {
	pk := e.s.packed
	stream := pk.Stream()
	hasV := pk.ExplicitVertex()
	dist := e.dist
	parent := e.parent
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	p := int32(0)
	for i := 0; i < len(stream); {
		deg := int(stream[i])
		i++
		v := p
		if hasV {
			v = int32(stream[i])
			i++
		}
		best := graph.Inf
		bestP := int32(-1)
		if p == next {
			best = dist[v]
			bestP = parent[v] // set by the CH search
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		for end := i + 2*deg; i < end; i += 2 {
			h := stream[i]
			nd := graph.AddSat(dist[h], stream[i+1])
			if nd < best {
				best = nd
				bestP = int32(h)
			}
		}
		dist[v] = best
		parent[v] = bestP
		p++
	}
}

// sweepPackedMulti relaxes all k trees in one pass over the fused
// stream with a scalar inner loop (the packed analogue of sweepMulti).
// Untouched vertices have their k lanes Inf-filled inline; touched ones
// keep the CH labels chSearchLane left in place.
//
//phast:hotpath
func (e *Engine) sweepPackedMulti(k int) {
	pk := e.s.packed
	stream := pk.Stream()
	hasV := pk.ExplicitVertex()
	kd := e.kdist
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	p := int32(0)
	for i := 0; i < len(stream); {
		deg := int(stream[i])
		i++
		v := p
		if hasV {
			v = int32(stream[i])
			i++
		}
		base := int(v) * k
		dv := kd[base : base+k]
		if p == next {
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		} else {
			for j := range dv {
				dv[j] = graph.Inf
			}
		}
		for end := i + 2*deg; i < end; i += 2 {
			ub := int(stream[i]) * k
			du := kd[ub : ub+k]
			w := stream[i+1]
			for j := 0; j < k; j++ {
				nd := graph.AddSat(du[j], w)
				if nd < dv[j] {
					dv[j] = nd
				}
			}
		}
		p++
	}
}

// sweepPackedMultiLanes is sweepPackedMulti with the inner loop
// unrolled into the 4-wide relax4 lanes (Section IV-B SSE analogue).
//
//phast:hotpath
func (e *Engine) sweepPackedMultiLanes(k int) {
	pk := e.s.packed
	stream := pk.Stream()
	hasV := pk.ExplicitVertex()
	kd := e.kdist
	seeds := e.seedPos
	si := 0
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	p := int32(0)
	for i := 0; i < len(stream); {
		deg := int(stream[i])
		i++
		v := p
		if hasV {
			v = int32(stream[i])
			i++
		}
		base := int(v) * k
		dv := kd[base : base+k : base+k]
		if p == next {
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		} else {
			for j := range dv {
				dv[j] = graph.Inf
			}
		}
		for end := i + 2*deg; i < end; i += 2 {
			ub := int(stream[i]) * k
			du := kd[ub : ub+k : ub+k]
			w := stream[i+1]
			for j := 0; j+4 <= k; j += 4 {
				relax4(dv[j:j+4:j+4], du[j:j+4:j+4], w)
			}
		}
		p++
	}
}
