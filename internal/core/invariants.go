package core

import "phast/internal/invariant"

// CheckInvariants deep-validates the engine's preprocessed data with
// internal/invariant: the (possibly relabeled) hierarchy, the engine-ID
// permutations, the level-descending sweep order with its parallel
// barrier ranges, and the CH search heap's index. Under a release build
// (no phastdebug tag) it returns nil immediately; build or test with
// -tags phastdebug to turn the checks on.
func (e *Engine) CheckInvariants() error {
	if !invariant.Enabled {
		return nil
	}
	s := e.s
	if err := invariant.Hierarchy(s.h); err != nil {
		return err
	}
	if err := invariant.Permutation(s.toEngine); err != nil {
		return err
	}
	if err := invariant.Permutation(s.toOrig); err != nil {
		return err
	}
	if s.levelRanges != nil {
		lvls := s.h.Level
		if s.order != nil {
			lvls = make([]int32, s.n)
			for i, v := range s.order {
				lvls[i] = s.h.Level[v]
			}
		}
		if err := invariant.LevelDescending(lvls, s.levelRanges); err != nil {
			return err
		}
	}
	if s.packed != nil {
		if err := invariant.PackedStream(s.packed, s.downIn, s.order); err != nil {
			return err
		}
	}
	if s.packedz != nil {
		if err := invariant.PackedZStream(s.packedz, s.downIn, s.order); err != nil {
			return err
		}
	}
	if s.chunkDep != nil {
		if err := invariant.ChunkDepsAt(s.downIn, s.order, s.chunkStart, s.chunkDep); err != nil {
			return err
		}
	}
	if err := invariant.MinHeap(e.queue.keys); err != nil {
		return err
	}
	return invariant.HeapIndex(e.queue.vs, e.queue.pos)
}
