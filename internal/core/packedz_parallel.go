package core

import (
	"encoding/binary"

	"phast/internal/graph"
)

// Chunk kernels over the compressed byte stream (Section V over
// graph.PackedZ, scheduled by scheduler.go). A worker enters the stream
// at a chunk boundary through the byte-indexed PackedZ.BlockStarts and
// positions its seed cursor with one binary search per chunk; within
// the chunk the decode-and-relax loop is identical to the sequential
// kernels of packedz.go, including the per-block decode geometry hoist
// into a constant-stride arc loop.

// scanPackedZChunk relaxes sweep positions [lo,hi) of the compressed
// single-tree sweep.
//
//phast:hotpath
func (e *Engine) scanPackedZChunk(lo, hi int32) {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	order := e.s.order
	dist := e.dist
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	i := zk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		stride, dshift, dmask, wmask := zGeom(hdr)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		best := graph.Inf
		if p == next {
			best = dist[v]
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		for a := 0; a < deg; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			d := uint32(x) & dmask
			w := uint32(x>>dshift) & wmask
			h := p - int32(d)
			if hasV {
				h = order[h]
			}
			if nd := graph.AddSat(dist[h], w); nd < best {
				best = nd
			}
		}
		dist[v] = best
	}
}

// scanPackedZParentsChunk is scanPackedZChunk recording G+ parent
// pointers.
//
//phast:hotpath
func (e *Engine) scanPackedZParentsChunk(lo, hi int32) {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	order := e.s.order
	dist := e.dist
	parent := e.parent
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	i := zk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		stride, dshift, dmask, wmask := zGeom(hdr)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		best := graph.Inf
		bestP := int32(-1)
		if p == next {
			best = dist[v]
			bestP = parent[v] // set by the CH search
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		for a := 0; a < deg; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			d := uint32(x) & dmask
			w := uint32(x>>dshift) & wmask
			h := p - int32(d)
			if hasV {
				h = order[h]
			}
			if nd := graph.AddSat(dist[h], w); nd < best {
				best = nd
				bestP = h
			}
		}
		dist[v] = best
		parent[v] = bestP
	}
}

// scanPackedZMultiChunk relaxes positions [lo,hi) for all k trees with
// a scalar inner loop over the vertex-major label layout
// (Options.VertexMajorMulti oracle only; packedz_soa.go holds the
// production family).
//
//phast:hotpath
func (e *Engine) scanPackedZMultiChunk(lo, hi int32, k int) {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	order := e.s.order
	kd := e.kdist
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	i := zk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		stride, dshift, dmask, wmask := zGeom(hdr)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		base := int(v) * k
		dv := kd[base : base+k]
		if p == next {
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		} else {
			for j := range dv {
				dv[j] = graph.Inf
			}
		}
		for a := 0; a < deg; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			d := uint32(x) & dmask
			w := uint32(x>>dshift) & wmask
			h := p - int32(d)
			if hasV {
				h = order[h]
			}
			ub := int(h) * k
			du := kd[ub : ub+k]
			for j := 0; j < k; j++ {
				if nd := graph.AddSat(du[j], w); nd < dv[j] {
					dv[j] = nd
				}
			}
		}
	}
}

// scanPackedZLanesChunk is scanPackedZMultiChunk with the inner loop
// unrolled into the 4-wide relax4 lanes.
//
//phast:hotpath
func (e *Engine) scanPackedZLanesChunk(lo, hi int32, k int) {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	order := e.s.order
	kd := e.kdist
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	i := zk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		stride, dshift, dmask, wmask := zGeom(hdr)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		base := int(v) * k
		dv := kd[base : base+k : base+k]
		if p == next {
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		} else {
			for j := range dv {
				dv[j] = graph.Inf
			}
		}
		for a := 0; a < deg; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			d := uint32(x) & dmask
			w := uint32(x>>dshift) & wmask
			h := p - int32(d)
			if hasV {
				h = order[h]
			}
			ub := int(h) * k
			du := kd[ub : ub+k : ub+k]
			for j := 0; j+4 <= k; j += 4 {
				relax4(dv[j:j+4:j+4], du[j:j+4:j+4], w)
			}
		}
	}
}
