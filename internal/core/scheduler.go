package core

import (
	"phast/internal/sched"
)

// The persistent sweep scheduler that replaced the per-level fork-join
// of the original Section V implementation lives in internal/sched
// since the metric-customization PR — ch.Topology.Customize runs its
// triangle-relaxation pass over the contraction order on the very same
// parked worker pool, and core imports ch, so the pool could not stay
// here. This file is the thin engine-side shim: kernel-family dispatch
// and the Engine methods that proxy the shared pool.
//
// The scheduling design is documented in internal/sched: chunks of
// sweep positions claimed in order through an atomic cursor, started
// once the monotone completion frontier passes their precomputed
// dependency bound (graph.ChunkDepBounds), with the done-flag store +
// frontier CAS providing the happens-before edge between a chunk's
// label writes and its dependents' reads.

// sweepKind names one parallel kernel family: which chunk-scan routine
// the scheduler's workers run. Packed vs CSR is decided once at the
// entry point, not per chunk.
type sweepKind int

const (
	csrSingle sweepKind = iota
	csrParents
	csrMulti
	csrLanes
	packedSingle
	packedParents
	packedMulti
	packedLanes
	packedZSingle
	packedZParents
	packedZMulti
	packedZLanes
	// The lane-major decode-once compressed multi family
	// (packedz_soa.go); the packedZMulti/packedZLanes kinds above are
	// its vertex-major differential oracle.
	packedZMultiSoA
	packedZLanesSoA
)

// multiKind reports whether the kind sweeps k trees (its level-size
// threshold under the fork-join oracle scales with k).
func (k sweepKind) multiKind() bool {
	return k == csrMulti || k == csrLanes || k == packedMulti || k == packedLanes ||
		k == packedZMulti || k == packedZLanes ||
		k == packedZMultiSoA || k == packedZLanesSoA
}

// SchedStats is a snapshot of the persistent scheduler's counters,
// accumulated across every engine clone (and every customized sibling
// engine) sharing the pool.
type SchedStats struct {
	// Sweeps is the number of sweeps executed on the pooled scheduler
	// (fork-join and sequential sweeps are not counted; customization
	// passes running on the same pool are).
	Sweeps uint64
	// Chunks is the number of chunks claimed and scanned, across all
	// workers including the submitting goroutine.
	Chunks uint64
	// Stalls counts chunk starts that had to wait for the completion
	// frontier to pass their dependency bound. High stall counts mean
	// the grain is too coarse for the hierarchy's dependency structure.
	Stalls uint64
	// Idle counts assist invitations that arrived after their sweep had
	// already finished (the worker woke up, found nothing to do, and
	// parked again). A busy server keeps this near zero.
	Idle uint64
}

// runPooled executes one sweep of the given kind on the persistent
// scheduler.
func (e *Engine) runPooled(kind sweepKind, k int) {
	s := e.s
	j := e.job
	if j == nil {
		j = &sched.Job{}
		e.job = j
	}
	starts := s.chunkStart
	j.NumChunks = s.numChunks
	j.Dep = s.chunkDep
	j.Scan = func(c int32) {
		e.scanChunkKind(kind, k, starts[c], starts[c+1])
	}
	s.pool.Run(j)
}

// parallelSweep runs one sweep of the given kind on the configured
// parallel machinery and reports whether it did; false means the caller
// must run its sequential kernel (single worker, a sweep smaller than
// one chunk, or the fork-join oracle in a mode without level ranges).
func (e *Engine) parallelSweep(kind sweepKind, k int) bool {
	s := e.s
	if s.pool.Workers() <= 1 || s.numChunks <= 1 {
		return false
	}
	if s.forkJoin {
		if s.levelRanges == nil {
			// Descending rank order is a valid topological order but not
			// grouped by level, so the barrier oracle has nothing to
			// barrier between. The pooled scheduler has no such limit.
			return false
		}
		s.pool.Guard(func() { e.forkJoinSweep(kind, k) })
		return true
	}
	e.runPooled(kind, k)
	return true
}

// SetWorkers changes the sweep worker count at runtime for this engine
// and every clone or customized sibling sharing its pool. w <= 0
// selects GOMAXPROCS. The resize only happens between queries: if any
// sharing engine has a parallel sweep (or customization pass) in
// flight, SetWorkers changes nothing and returns an error.
func (e *Engine) SetWorkers(w int) error {
	return e.s.pool.Resize(w)
}

// Workers returns the current sweep worker count (shared by clones).
func (e *Engine) Workers() int { return e.s.pool.Workers() }

// SchedStats returns a snapshot of the persistent scheduler's counters,
// accumulated across all engines sharing this pool.
func (e *Engine) SchedStats() SchedStats {
	st := e.s.pool.Stats()
	return SchedStats{
		Sweeps: st.Sweeps,
		Chunks: st.Chunks,
		Stalls: st.Stalls,
		Idle:   st.Idle,
	}
}

// SchedPool exposes the engine's persistent worker pool so other bulk
// passes over the same preprocessed data — ch.Topology.Customize in
// particular — can run on the parked workers instead of spawning their
// own. The pool stays owned by the engine's shared state; callers must
// not Release it.
func (e *Engine) SchedPool() *sched.Pool { return e.s.pool }

// scanChunkKind dispatches one chunk of sweep positions [lo,hi) to the
// kernel family the sweep was opened with. Shared by the pooled
// scheduler (per chunk) and the fork-join oracle (per level slice).
//
//phast:hotpath
func (e *Engine) scanChunkKind(kind sweepKind, k int, lo, hi int32) {
	switch kind {
	case csrSingle:
		e.scanCSRChunk(lo, hi)
	case csrParents:
		e.scanCSRParentsChunk(lo, hi)
	case csrMulti:
		e.scanCSRMultiChunk(lo, hi, k)
	case csrLanes:
		e.scanCSRLanesChunk(lo, hi, k)
	case packedSingle:
		e.scanPackedChunk(lo, hi)
	case packedParents:
		e.scanPackedParentsChunk(lo, hi)
	case packedMulti:
		e.scanPackedMultiChunk(lo, hi, k)
	case packedLanes:
		e.scanPackedLanesChunk(lo, hi, k)
	case packedZSingle:
		e.scanPackedZChunk(lo, hi)
	case packedZParents:
		e.scanPackedZParentsChunk(lo, hi)
	case packedZMulti:
		e.scanPackedZMultiChunk(lo, hi, k)
	case packedZLanes:
		e.scanPackedZLanesChunk(lo, hi, k)
	case packedZMultiSoA:
		e.scanPackedZSoAChunk(lo, hi, k, false)
	case packedZLanesSoA:
		e.scanPackedZSoAChunk(lo, hi, k, true)
	}
}
