package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the persistent sweep scheduler that replaced the
// per-level fork-join of the original Section V implementation. The old
// design spawned fresh goroutines for every level above a size
// threshold and joined them on a barrier before the next level could
// start; road hierarchies have thousands of small levels, so spawn and
// barrier costs dominated once the packed kernels made per-vertex work
// cheap. Here the parallelism is inverted:
//
//   - A pool of long-lived workers is spawned once per shared engine
//     state and parked on a channel between queries (sweepPool). Engine
//     clones share the pool, so a server's whole engine fleet wakes the
//     same parked workers.
//   - A sweep is divided into fixed-size chunks of sweep positions
//     (Options.ParallelGrain). Workers claim chunks in order through an
//     atomic cursor — no per-level partitioning, no barrier.
//   - The level barrier is relaxed to a per-chunk dependency bound
//     precomputed at engine build time (graph.ChunkDepBounds): chunk c
//     may start once the monotone completed-chunk frontier has passed
//     the last chunk any of its external arc tails lives in. Intra-chunk
//     dependencies are satisfied by the chunk's in-order scan, exactly
//     as in the sequential sweep.
//
// Deadlock freedom: the cursor hands out chunks in increasing order, so
// the lowest claimed-but-incomplete chunk is always the frontier chunk
// itself, whose dependency bound (necessarily below it) is satisfied —
// its owner never stalls, so the frontier always advances.
//
// Memory ordering: a completing worker publishes its chunk's labels by
// the atomic done-flag store + frontier CAS; a starting worker observes
// frontier > depChunk before reading any external label. Both are
// sync/atomic operations, so every label write of a completed chunk
// happens-before the reads of any chunk that observed its completion.

// sweepKind names one parallel kernel family: which chunk-scan routine
// the scheduler's workers run. Packed vs CSR is decided once at the
// entry point, not per chunk.
type sweepKind int

const (
	csrSingle sweepKind = iota
	csrParents
	csrMulti
	csrLanes
	packedSingle
	packedParents
	packedMulti
	packedLanes
)

// multiKind reports whether the kind sweeps k trees (its level-size
// threshold under the fork-join oracle scales with k).
func (k sweepKind) multiKind() bool {
	return k == csrMulti || k == csrLanes || k == packedMulti || k == packedLanes
}

// SchedStats is a snapshot of the persistent scheduler's counters,
// accumulated across every engine clone sharing the pool (the counters
// live on the shared state, like the pool itself).
type SchedStats struct {
	// Sweeps is the number of sweeps executed on the pooled scheduler
	// (fork-join and sequential sweeps are not counted).
	Sweeps uint64
	// Chunks is the number of chunks claimed and scanned, across all
	// workers including the submitting goroutine.
	Chunks uint64
	// Stalls counts chunk starts that had to wait for the completion
	// frontier to pass their dependency bound. High stall counts mean
	// the grain is too coarse for the hierarchy's dependency structure.
	Stalls uint64
	// Idle counts assist invitations that arrived after their sweep had
	// already finished (the worker woke up, found nothing to do, and
	// parked again). A busy server keeps this near zero.
	Idle uint64
}

// sweepPool is the persistent worker pool. Workers reference only the
// pool — never the shared engine state — so dropping every engine makes
// the shared state collectable and its finalizer can retire the
// workers (a goroutine parked on a channel receive is a GC root and
// would otherwise live forever).
type sweepPool struct {
	jobs    chan *sweepJob
	assists atomic.Int32 // parked assist goroutines (workers - 1)
	once    sync.Once    // guards shutdown

	sweeps atomic.Uint64
	chunks atomic.Uint64
	stalls atomic.Uint64
	idle   atomic.Uint64
}

// poolInviteCap bounds the invitation channel. Parked workers drain it
// immediately, so the capacity only needs to cover a transient burst of
// invitations from concurrently submitting clones.
const poolInviteCap = 256

func newSweepPool(assists int) *sweepPool {
	p := &sweepPool{jobs: make(chan *sweepJob, poolInviteCap)}
	p.grow(assists)
	return p
}

// grow spawns additional parked assist workers.
func (p *sweepPool) grow(n int) {
	for i := 0; i < n; i++ {
		p.assists.Add(1)
		go p.worker()
	}
}

// shrink retires n parked workers by feeding them nil sentinels. Only
// called with no sweep in flight (SetWorkers holds the resize lock), so
// every live worker is parked on the channel and consumes promptly.
func (p *sweepPool) shrink(n int) {
	for i := 0; i < n; i++ {
		p.assists.Add(-1)
		p.jobs <- nil
	}
}

// shutdown retires every worker; called by the shared state's finalizer
// once no engine references the pool anymore.
func (p *sweepPool) shutdown() {
	p.once.Do(func() { close(p.jobs) })
}

// worker is one parked pool goroutine: it sleeps on the invitation
// channel and assists whatever job wakes it. A nil invitation or a
// closed channel retires it.
func (p *sweepPool) worker() {
	for job := range p.jobs {
		if job == nil {
			return
		}
		job.assist(p)
	}
}

// invite enqueues up to n invitations for j without ever blocking: if
// the channel is momentarily full the submitter simply keeps more of
// the sweep for itself.
func (p *sweepPool) invite(j *sweepJob, n int) {
	for i := 0; i < n; i++ {
		select {
		case p.jobs <- j:
		default:
			return
		}
	}
}

// sweepJob is one engine's reusable scheduler state: the cursor, the
// completion frontier, and the per-chunk done flags of the sweep in
// flight. It is reset and reopened for every pooled sweep; assist
// workers holding a stale invitation observe open == false (or join the
// engine's next sweep, which is equally correct) and back out.
type sweepJob struct {
	e    *Engine
	kind sweepKind
	k    int

	open     atomic.Bool
	active   atomic.Int32 // assist workers currently inside run
	cursor   atomic.Int32 // next chunk to claim
	frontier atomic.Int32 // chunks [0,frontier) are complete
	done     []uint32     // per-chunk completion flags (atomic access)
}

// testHookChunkClaimed, when non-nil, runs after every chunk claim.
// Tests use it to hold a sweep in flight deterministically (for the
// SetWorkers rejection path); it must only be set while no sweep runs.
var testHookChunkClaimed func()

// assist is the pool-worker side of a sweep: join if the job is still
// open, and make the membership visible through active so the submitter
// can wait for stragglers before reusing the job.
func (j *sweepJob) assist(p *sweepPool) {
	if !j.open.Load() {
		p.idle.Add(1)
		return
	}
	j.active.Add(1)
	// Re-check after announcing ourselves: the submitter may have closed
	// the job between the first load and the Add. If it reopened for a
	// new sweep instead, joining that sweep is legitimate — the job's
	// fields were reset before open was stored.
	if j.open.Load() {
		j.run(p)
	} else {
		p.idle.Add(1)
	}
	j.active.Add(-1)
}

// run claims and scans chunks until the cursor is exhausted. Both the
// submitting goroutine and assist workers execute this same loop.
//
//phast:hotpath
func (j *sweepJob) run(p *sweepPool) {
	s := j.e.s
	grain := s.grain
	n := int32(s.n)
	nc := int32(len(j.done))
	dep := s.chunkDep
	for {
		c := j.cursor.Add(1) - 1
		if c >= nc {
			return
		}
		if testHookChunkClaimed != nil {
			testHookChunkClaimed()
		}
		p.chunks.Add(1)
		if d := dep[c]; d >= 0 && j.frontier.Load() <= d {
			p.stalls.Add(1)
			for j.frontier.Load() <= d {
				runtime.Gosched()
			}
		}
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		j.e.scanChunkKind(j.kind, j.k, lo, hi)
		atomic.StoreUint32(&j.done[c], 1)
		// Advance the frontier over every consecutively completed chunk.
		// Any worker may push it past chunks completed out of order; a
		// failed CAS means someone else already did.
		for {
			f := j.frontier.Load()
			if f >= nc || atomic.LoadUint32(&j.done[f]) == 0 {
				break
			}
			j.frontier.CompareAndSwap(f, f+1)
		}
	}
}

// runPooled executes one sweep of the given kind on the persistent
// scheduler. It resets and opens the engine's job, invites parked
// workers, works the cursor itself, and returns only after the frontier
// covers every chunk and all assist workers have left the job (so the
// job can be reused by the next sweep).
func (e *Engine) runPooled(kind sweepKind, k int) {
	s := e.s
	s.resizeMu.RLock()
	defer s.resizeMu.RUnlock()
	nc := int(s.numChunks)
	j := e.job
	if j == nil {
		j = &sweepJob{e: e, done: make([]uint32, nc)}
		e.job = j
	}
	j.kind, j.k = kind, k
	clear(j.done)
	j.cursor.Store(0)
	j.frontier.Store(0)
	j.open.Store(true)
	p := s.pool
	p.sweeps.Add(1)
	if a := int(p.assists.Load()); a > 0 {
		want := nc - 1
		if a < want {
			want = a
		}
		p.invite(j, want)
	}
	j.run(p)
	for j.frontier.Load() < int32(nc) {
		runtime.Gosched()
	}
	j.open.Store(false)
	for j.active.Load() != 0 {
		runtime.Gosched()
	}
}

// parallelSweep runs one sweep of the given kind on the configured
// parallel machinery and reports whether it did; false means the caller
// must run its sequential kernel (single worker, a sweep smaller than
// one chunk, or the fork-join oracle in a mode without level ranges).
func (e *Engine) parallelSweep(kind sweepKind, k int) bool {
	s := e.s
	if s.workers.Load() <= 1 || s.numChunks <= 1 {
		return false
	}
	if s.forkJoin {
		if s.levelRanges == nil {
			// Descending rank order is a valid topological order but not
			// grouped by level, so the barrier oracle has nothing to
			// barrier between. The pooled scheduler has no such limit.
			return false
		}
		s.resizeMu.RLock()
		e.forkJoinSweep(kind, k)
		s.resizeMu.RUnlock()
		return true
	}
	e.runPooled(kind, k)
	return true
}

// SetWorkers changes the sweep worker count at runtime for this engine
// and every clone sharing its preprocessed data (the pool is shared
// state). w <= 0 selects GOMAXPROCS. The resize only happens between
// queries: if any sharing engine has a parallel sweep in flight,
// SetWorkers changes nothing and returns an error.
func (e *Engine) SetWorkers(w int) error {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	s := e.s
	if !s.resizeMu.TryLock() {
		return errors.New("core: SetWorkers rejected: a parallel sweep is in flight")
	}
	defer s.resizeMu.Unlock()
	cur := int(s.workers.Load())
	switch {
	case w > cur:
		s.pool.grow(w - cur)
	case w < cur:
		s.pool.shrink(cur - w)
	}
	s.workers.Store(int32(w))
	return nil
}

// Workers returns the current sweep worker count (shared by clones).
func (e *Engine) Workers() int { return int(e.s.workers.Load()) }

// SchedStats returns a snapshot of the persistent scheduler's counters,
// accumulated across all engines sharing this pool.
func (e *Engine) SchedStats() SchedStats {
	p := e.s.pool
	return SchedStats{
		Sweeps: p.sweeps.Load(),
		Chunks: p.chunks.Load(),
		Stalls: p.stalls.Load(),
		Idle:   p.idle.Load(),
	}
}

// scanChunkKind dispatches one chunk of sweep positions [lo,hi) to the
// kernel family the sweep was opened with. Shared by the pooled
// scheduler (per chunk) and the fork-join oracle (per level slice).
//
//phast:hotpath
func (e *Engine) scanChunkKind(kind sweepKind, k int, lo, hi int32) {
	switch kind {
	case csrSingle:
		e.scanCSRChunk(lo, hi)
	case csrParents:
		e.scanCSRParentsChunk(lo, hi)
	case csrMulti:
		e.scanCSRMultiChunk(lo, hi, k)
	case csrLanes:
		e.scanCSRLanesChunk(lo, hi, k)
	case packedSingle:
		e.scanPackedChunk(lo, hi)
	case packedParents:
		e.scanPackedParentsChunk(lo, hi)
	case packedMulti:
		e.scanPackedMultiChunk(lo, hi, k)
	case packedLanes:
		e.scanPackedLanesChunk(lo, hi, k)
	}
}
