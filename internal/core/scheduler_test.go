package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"phast/internal/graph"
	"phast/internal/sched"
)

// Differential suite for the persistent sweep scheduler: every parallel
// kernel family must produce the same labels as the fork-join oracle,
// the sequential kernels, and Dijkstra — across all three sweep modes,
// both graph layouts, and k ∈ {1, 4, 16}.

func TestPooledSweepDifferential(t *testing.T) {
	h, n := raceHierarchy(t)
	rng := rand.New(rand.NewSource(71))
	for _, mode := range allModes {
		for _, packed := range []PackedSetting{PackedOff, PackedOn} {
			opt := Options{Mode: mode, Workers: 4, PackedSweep: packed, ParallelGrain: 512}
			pooled, err := NewEngine(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			fjOpt := opt
			fjOpt.ForkJoinSweep = true
			fj, err := NewEngine(h, fjOpt)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := NewEngine(h, Options{Mode: mode, Workers: 1, PackedSweep: packed})
			if err != nil {
				t.Fatal(err)
			}

			// Single tree, against all three oracles.
			s := int32(rng.Intn(n))
			pooled.TreeParallel(s)
			fj.TreeParallel(s)
			seq.Tree(s)
			raceFixture.d.Run(s)
			for v := int32(0); v < int32(n); v += 7 {
				want := raceFixture.d.Dist(v)
				if got := pooled.Dist(v); got != want {
					t.Fatalf("mode=%v packed=%v: pooled dist(%d)=%d, Dijkstra %d", mode, packed, v, got, want)
				}
				if got := fj.Dist(v); got != want {
					t.Fatalf("mode=%v packed=%v: fork-join dist(%d)=%d, Dijkstra %d", mode, packed, v, got, want)
				}
				if got := seq.Dist(v); got != want {
					t.Fatalf("mode=%v packed=%v: sequential dist(%d)=%d, Dijkstra %d", mode, packed, v, got, want)
				}
			}

			// Parents: distances must match, and every parallel-computed
			// path must be tight (its arc weights sum to the label).
			s2 := int32(rng.Intn(n))
			pooled.TreeWithParentsParallel(s2)
			fj.TreeWithParentsParallel(s2)
			seq.TreeWithParents(s2)
			g := h.G
			for i := 0; i < 25; i++ {
				v := int32(rng.Intn(n))
				want := seq.Dist(v)
				if got := pooled.Dist(v); got != want {
					t.Fatalf("mode=%v packed=%v parents: pooled dist(%d)=%d, want %d", mode, packed, v, got, want)
				}
				if got := fj.Dist(v); got != want {
					t.Fatalf("mode=%v packed=%v parents: fork-join dist(%d)=%d, want %d", mode, packed, v, got, want)
				}
				path := pooled.PathTo(v)
				if path == nil {
					if want != graph.Inf {
						t.Fatalf("mode=%v packed=%v: no path to reachable %d", mode, packed, v)
					}
					continue
				}
				var sum uint32
				for j := 1; j < len(path); j++ {
					w, ok := g.FindArc(path[j-1], path[j])
					if !ok {
						t.Fatalf("mode=%v packed=%v: path step %d→%d is not an arc", mode, packed, path[j-1], path[j])
					}
					sum += w
				}
				if sum != want {
					t.Fatalf("mode=%v packed=%v: path to %d weighs %d, dist %d", mode, packed, v, sum, want)
				}
			}

			// Multi-tree: scalar for every k, the 4-wide lanes where k
			// allows them.
			for _, k := range []int{1, 4, 16} {
				sources := make([]int32, k)
				for i := range sources {
					sources[i] = int32(rng.Intn(n))
				}
				lanes := k%4 == 0 && k >= 4
				pooled.MultiTreeParallel(sources, lanes)
				fj.MultiTreeParallel(sources, lanes)
				seq.MultiTree(sources, false)
				for i := range sources {
					for v := int32(0); v < int32(n); v += 13 {
						want := seq.MultiDist(i, v)
						if got := pooled.MultiDist(i, v); got != want {
							t.Fatalf("mode=%v packed=%v k=%d lanes=%v lane %d: pooled dist(%d)=%d, want %d",
								mode, packed, k, lanes, i, v, got, want)
						}
						if got := fj.MultiDist(i, v); got != want {
							t.Fatalf("mode=%v packed=%v k=%d lanes=%v lane %d: fork-join dist(%d)=%d, want %d",
								mode, packed, k, lanes, i, v, got, want)
						}
					}
				}
			}
		}
	}
}

// TestPooledRankOrderRunsParallel pins the capability the barrier relax
// bought: descending rank order has no level ranges for the fork-join
// oracle to barrier between, so it used to fall back to the sequential
// kernel — the dependency-bounded scheduler parallelizes it anyway.
func TestPooledRankOrderRunsParallel(t *testing.T) {
	h, n := raceHierarchy(t)
	pooled, err := NewEngine(h, Options{Mode: SweepRankOrder, Workers: 4, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	fj, err := NewEngine(h, Options{Mode: SweepRankOrder, Workers: 4, ForkJoinSweep: true, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	s := int32(42)
	pooled.TreeParallel(s)
	fj.TreeParallel(s)
	raceFixture.d.Run(s)
	for v := int32(0); v < int32(n); v += 7 {
		if got, want := pooled.Dist(v), raceFixture.d.Dist(v); got != want {
			t.Fatalf("rank-order pooled dist(%d)=%d, want %d", v, got, want)
		}
		if got, want := fj.Dist(v), raceFixture.d.Dist(v); got != want {
			t.Fatalf("rank-order fork-join-fallback dist(%d)=%d, want %d", v, got, want)
		}
	}
	if st := pooled.SchedStats(); st.Sweeps != 1 || st.Chunks == 0 {
		t.Fatalf("pooled rank-order sweep did not run on the scheduler: %+v", st)
	}
	if st := fj.SchedStats(); st.Sweeps != 0 {
		t.Fatalf("fork-join engine unexpectedly used the pool: %+v", st)
	}
}

// TestParallelGrainOption checks the grain knob reaches the scheduler:
// chunk counts follow ceil(n/grain), labels stay exact, and a bogus
// grain is rejected at engine construction.
func TestParallelGrainOption(t *testing.T) {
	h, n := raceHierarchy(t)
	const grain = 64
	e, err := NewEngine(h, Options{Workers: 4, ParallelGrain: grain})
	if err != nil {
		t.Fatal(err)
	}
	s := int32(7)
	e.TreeParallel(s)
	raceFixture.d.Run(s)
	for v := int32(0); v < int32(n); v += 11 {
		if got, want := e.Dist(v), raceFixture.d.Dist(v); got != want {
			t.Fatalf("grain=%d: dist(%d)=%d, want %d", grain, v, got, want)
		}
	}
	wantChunks := uint64((n + grain - 1) / grain)
	if st := e.SchedStats(); st.Sweeps != 1 || st.Chunks != wantChunks {
		t.Fatalf("grain=%d: stats %+v, want 1 sweep over %d chunks", grain, st, wantChunks)
	}
	if _, err := NewEngine(h, Options{Workers: 4, ParallelGrain: -8}); err == nil {
		t.Fatal("negative ParallelGrain accepted")
	}
}

// TestSetWorkersResize exercises live pool resizing between queries in
// both directions, including shrinking to the sequential fallback.
func TestSetWorkersResize(t *testing.T) {
	h, n := raceHierarchy(t)
	e, err := NewEngine(h, Options{Workers: 2, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		s := int32(311)
		e.TreeParallel(s)
		raceFixture.d.Run(s)
		for v := int32(0); v < int32(n); v += 17 {
			if got, want := e.Dist(v), raceFixture.d.Dist(v); got != want {
				t.Fatalf("%s: dist(%d)=%d, want %d", label, v, got, want)
			}
		}
	}
	check("initial 2 workers")
	for _, w := range []int{6, 1, 3} {
		if err := e.SetWorkers(w); err != nil {
			t.Fatalf("SetWorkers(%d) between queries: %v", w, err)
		}
		if e.Workers() != w {
			t.Fatalf("Workers()=%d after SetWorkers(%d)", e.Workers(), w)
		}
		check("resized")
	}
	if err := e.SetWorkers(0); err != nil {
		t.Fatal(err)
	}
	if e.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetWorkers(0) set %d, want GOMAXPROCS=%d", e.Workers(), runtime.GOMAXPROCS(0))
	}
	check("gomaxprocs")
}

// TestSetWorkersRejectedDuringSweep holds a sweep in flight via the
// chunk-claim test hook and checks SetWorkers refuses to resize under
// it, then succeeds once the sweep drains.
func TestSetWorkersRejectedDuringSweep(t *testing.T) {
	h, _ := raceHierarchy(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	// Installed before NewEngine spawns the pool, so every worker's read
	// of the hook happens-after this write.
	sched.TestHookChunkClaimed = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	defer func() { sched.TestHookChunkClaimed = nil }()
	// Pin the grain: the fixture must span several chunks so the hook
	// actually fires (the cache-budget default may fuse it into one).
	e, err := NewEngine(h, Options{Workers: 2, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		//phastlint:ignore engineshare the hook wedges this sweep; the main goroutine only calls SetWorkers (resize-lock protected) until <-done orders the rest
		e.TreeParallel(0)
		close(done)
	}()
	<-entered
	if err := e.SetWorkers(4); err == nil {
		t.Error("SetWorkers succeeded while a sweep was in flight")
	}
	close(release)
	<-done
	if err := e.SetWorkers(4); err != nil {
		t.Fatalf("SetWorkers after the sweep drained: %v", err)
	}
	if e.Workers() != 4 {
		t.Fatalf("Workers()=%d, want 4", e.Workers())
	}
}

// TestSchedulerStressWithResizes interleaves parallel single-, parents-
// and multi-tree sweeps on clones of one shared engine while another
// goroutine hammers SetWorkers — for the race detector, and to check
// rejected resizes never corrupt a sweep.
func TestSchedulerStressWithResizes(t *testing.T) {
	h, n := raceHierarchy(t)
	proto, err := NewEngine(h, Options{Workers: 3, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		for w := 0; ; w++ {
			select {
			case <-stop:
				return
			default:
			}
			//phastlint:ignore engineshare SetWorkers is the one concurrency-safe engine method (resize lock); the stress point is exactly this sharing
			_ = proto.SetWorkers(2 + w%4) // rejection under load is expected
			runtime.Gosched()
		}
	}()
	var wg sync.WaitGroup
	clones := 3
	queries := 6
	if testing.Short() {
		queries = 3
	}
	for c := 0; c < clones; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			e := proto.Clone()
			rng := rand.New(rand.NewSource(int64(90 + c)))
			buf := make([]uint32, n)
			for q := 0; q < queries; q++ {
				s := int32(rng.Intn(n))
				switch q % 3 {
				case 0:
					e.TreeParallel(s)
				case 1:
					e.TreeWithParentsParallel(s)
				case 2:
					sources := []int32{s, int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n))}
					e.MultiTreeParallel(sources, q%2 == 0)
					for i, src := range sources {
						e.CopyLaneDistances(i, buf)
						if buf[src] != 0 {
							t.Errorf("clone %d lane %d: dist(source %d)=%d", c, i, src, buf[src])
							return
						}
					}
					continue
				}
				e.CopyDistances(buf)
				if buf[s] != 0 {
					t.Errorf("clone %d: dist(source %d)=%d", c, s, buf[s])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	resizer.Wait()
	if st := proto.SchedStats(); st.Sweeps == 0 || st.Chunks == 0 {
		t.Fatalf("stress ran no pooled sweeps: %+v", st)
	}
}
