package core

import "phast/internal/graph"

// MultiTree grows one tree per source in a single sweep (Section IV-B):
// each vertex keeps k = len(sources) labels; the k upward CH searches
// run sequentially, then one pass over the downward arcs relaxes all k
// trees. Larger k improves the locality of the tail-label reads at the
// cost of k·n label memory.
//
// The label layout is the engine's (MultiLaneMajor): compressed engines
// default to lane-major labels swept by the decode-once kernels of
// packedz_soa.go, everything else keeps the k labels of a vertex
// contiguous. If useLanes is true labels are relaxed in unrolled lane
// groups — the stand-in for the paper's SSE 4.1 packed add/min (this
// build has no SIMD intrinsics; see DESIGN.md). The vertex-major lanes
// kernels require k to be a multiple of 4; the lane-major ones accept
// any k (the last group re-spans the final lanes).
//
// Labels are read back with MultiDist. Sources are original vertex IDs.
func (e *Engine) MultiTree(sources []int32, useLanes bool) {
	k := len(sources)
	if k == 0 {
		e.k = 0
		return
	}
	if useLanes && k%4 != 0 && !e.s.laneMajor {
		panic("core: lane-based MultiTree requires k to be a multiple of 4")
	}
	if cap(e.kdist) < k*e.s.n {
		e.kdist = make([]uint32, k*e.s.n)
	}
	e.kdist = e.kdist[:k*e.s.n]
	e.k = k
	e.lastMulti = true
	e.touched = e.touched[:0]
	for i, src := range sources {
		if e.s.laneMajor {
			e.chSearchLaneSoA(src, i, k)
		} else {
			e.chSearchLane(src, i, k)
		}
	}
	if e.s.laneMajor {
		e.buildSeeds()
		e.sweepPackedZSoA(k, useLanes)
		return
	}
	if e.s.packedz != nil {
		e.buildSeeds()
		if useLanes {
			e.sweepPackedZMultiLanes(k)
		} else {
			e.sweepPackedZMulti(k)
		}
		return
	}
	if e.s.packed != nil {
		e.buildSeeds()
		if useLanes {
			e.sweepPackedMultiLanes(k)
		} else {
			e.sweepPackedMulti(k)
		}
		return
	}
	if useLanes {
		e.sweepMultiLanes(k)
	} else {
		e.sweepMulti(k)
	}
}

// K returns the tree count of the last MultiTree call.
func (e *Engine) K() int { return e.k }

// MultiLaneMajor reports the engine's multi-tree label layout: true
// when lane i's labels are contiguous at kdist[i*n : (i+1)*n] (the
// lane-major default of compressed engines), false when the k labels of
// engine vertex v are contiguous at kdist[v*k : v*k+k]. The accessors
// below absorb the difference; only consumers of RawMultiDistances need
// to ask.
func (e *Engine) MultiLaneMajor() bool { return e.s.laneMajor }

// MultiDist returns the label of original-ID vertex v in tree i of the
// last MultiTree call.
func (e *Engine) MultiDist(i int, v int32) uint32 {
	if e.s.laneMajor {
		return e.kdist[i*e.s.n+int(e.s.toEngine[v])]
	}
	return e.kdist[int(e.s.toEngine[v])*e.k+i]
}

// RawMultiDistances exposes the engine-ID-indexed label array of the
// last MultiTree, in the engine's layout (MultiLaneMajor): lane-major
// engines store lane i at [i*n : (i+1)*n], vertex-major engines store
// the k labels of engine vertex v at [v*k : v*k+k].
//
// Aliasing contract: like RawDistances, this is the engine's working
// buffer. The next MultiTree/MultiTreeParallel call overwrites it (and a
// call with a different k changes its layout); copy any lane that must
// survive with CopyLaneDistances.
func (e *Engine) RawMultiDistances() []uint32 { return e.kdist }

// CopyLaneDistances writes the labels of tree i of the last
// MultiTree/MultiTreeParallel call into buf indexed by original vertex
// ID (graph.Inf marks unreached vertices). len(buf) must be n. buf is a
// private snapshot that stays valid across later sweeps on this engine —
// the safe read-back for results that cross a goroutine or batch
// boundary, and the one place a lane leaves the engine's layout: the
// copy is the SoA-to-per-tree transpose, so callers never see (or
// depend on) which layout the sweep ran over.
func (e *Engine) CopyLaneDistances(i int, buf []uint32) {
	if !e.lastMulti {
		panic("core: last computation was not MultiTree; read labels with CopyDistances")
	}
	if i < 0 || i >= e.k {
		panic("core: CopyLaneDistances lane out of range")
	}
	if len(buf) != e.s.n {
		panic("core: CopyLaneDistances buffer has wrong length")
	}
	kd, toEngine := e.kdist, e.s.toEngine
	if e.s.laneMajor {
		lane := kd[i*e.s.n : (i+1)*e.s.n]
		for orig := range buf {
			buf[orig] = lane[toEngine[orig]]
		}
		return
	}
	k := e.k
	for orig := range buf {
		buf[orig] = kd[int(toEngine[orig])*k+i]
	}
}

// chSearchLane runs the upward search for lane i of k. The first time a
// vertex is touched this round all of its k lanes are set to Inf before
// lane i is written, preserving the implicit-initialization invariant
// for the other lanes.
//
//phast:hotpath
func (e *Engine) chSearchLane(source int32, lane, k int) {
	src := e.s.toEngine[source]
	e.src = src
	q := e.queue
	q.reset()
	up := e.s.up
	kd := e.kdist
	touch := func(v int32) []uint32 {
		base := int(v) * k
		lanes := kd[base : base+k]
		if !e.mark[v] {
			e.mark[v] = true
			e.touched = append(e.touched, v)
			for j := range lanes {
				lanes[j] = graph.Inf
			}
		}
		return lanes
	}
	touch(src)[lane] = 0
	q.update(src, 0)
	for !q.empty() {
		v, dv := q.pop()
		for _, a := range up.Arcs(v) {
			nd := graph.AddSat(dv, a.Weight)
			lanes := touch(a.Head)
			if nd < lanes[lane] {
				lanes[lane] = nd
				q.update(a.Head, nd)
			}
		}
	}
}

// sweepMulti relaxes all k trees in one pass with a scalar inner loop.
//
//phast:hotpath
func (e *Engine) sweepMulti(k int) {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	kd := e.kdist
	mark := e.mark
	n := int32(e.s.n)
	scan := func(v int32) {
		base := int(v) * k
		dv := kd[base : base+k]
		if !mark[v] {
			for j := range dv {
				dv[j] = graph.Inf
			}
		} else {
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			ub := int(a.Head) * k
			du := kd[ub : ub+k]
			w := a.Weight
			for j := 0; j < k; j++ {
				if nd := graph.AddSat(du[j], w); nd < dv[j] {
					dv[j] = nd
				}
			}
		}
	}
	if e.s.order == nil {
		for v := int32(0); v < n; v++ {
			scan(v)
		}
	} else {
		for _, v := range e.s.order {
			scan(v)
		}
	}
}

// sweepMultiLanes is sweepMulti with the inner loop unrolled into 4-wide
// lane operations, mirroring the SSE register layout: load four tail
// labels, add four copies of the arc length, take the packed minimum
// with four head labels (Section IV-B, "SSE Instructions").
//
//phast:hotpath
func (e *Engine) sweepMultiLanes(k int) {
	first := e.s.downIn.FirstOut()
	arcs := e.s.downIn.ArcList()
	kd := e.kdist
	mark := e.mark
	n := int32(e.s.n)
	scan := func(v int32) {
		base := int(v) * k
		dv := kd[base : base+k]
		if !mark[v] {
			for j := range dv {
				dv[j] = graph.Inf
			}
		} else {
			mark[v] = false
		}
		for i := first[v]; i < first[v+1]; i++ {
			a := arcs[i]
			ub := int(a.Head) * k
			du := kd[ub : ub+k]
			for j := 0; j+4 <= k; j += 4 {
				relax4(dv[j:j+4:j+4], du[j:j+4:j+4], a.Weight)
			}
		}
	}
	if e.s.order == nil {
		for v := int32(0); v < n; v++ {
			scan(v)
		}
	} else {
		for _, v := range e.s.order {
			scan(v)
		}
	}
}
