package core

import (
	"math/rand"
	"sync"
	"testing"

	"phast/internal/ch"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// These tests exist to run under `go test -race`: the parallel sweeps
// hand chunks to persistent pool workers (or, under ForkJoinSweep, spawn
// per-level goroutine waves), and before this file nothing exercised
// that handoff with the race detector watching. The graph is sized so
// the sweep spans several grain-sized chunks and at least one level
// exceeds DefaultParallelGrain — otherwise the sequential fallback would
// hide the workers entirely.

// raceFixture builds one hierarchy big enough for real worker spawns and
// shares it across the race tests (CH construction dominates test time).
var raceFixture = struct {
	once sync.Once
	h    *ch.Hierarchy
	n    int
	d    *sssp.Dijkstra
}{}

func raceHierarchy(t *testing.T) (*ch.Hierarchy, int) {
	raceFixture.once.Do(func() {
		rng := rand.New(rand.NewSource(50))
		g := gridGraph(rng, 90, 60, 30) // 5400 vertices; largest CH level 1185 > DefaultParallelGrain
		raceFixture.h = ch.Build(g, ch.Options{Workers: 1})
		raceFixture.n = g.NumVertices()
		raceFixture.d = sssp.NewDijkstra(g, pq.KindBinaryHeap)
	})
	return raceFixture.h, raceFixture.n
}

// levelsBigEnough asserts the fixture actually triggers parallel work:
// at least one level reaches the default grain, so the fork-join oracle
// splits it across workers (the pooled scheduler parallelizes whenever
// the sweep spans more than one chunk, which 5400 vertices guarantee).
func levelsBigEnough(t *testing.T, e *Engine) {
	t.Helper()
	for _, r := range e.LevelRanges() {
		if r[1]-r[0] >= DefaultParallelGrain {
			return
		}
	}
	t.Fatal("race fixture has no level ≥ DefaultParallelGrain; fork-join workers never spawn and the race test is vacuous")
}

// TestTreeParallelBarrierRace drives the single-tree parallel sweep with
// 4 workers and verifies labels against Dijkstra; under -race this is
// the first exercise of the per-level barrier handoff.
func TestTreeParallelBarrierRace(t *testing.T) {
	h, n := raceHierarchy(t)
	e, err := NewEngine(h, Options{Workers: 4, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	levelsBigEnough(t, e)
	rng := rand.New(rand.NewSource(51))
	trees := 6
	if testing.Short() {
		trees = 2
	}
	for q := 0; q < trees; q++ {
		s := int32(rng.Intn(n))
		e.TreeParallel(s)
		raceFixture.d.Run(s)
		for v := int32(0); v < int32(n); v += 7 {
			if got, want := e.Dist(v), raceFixture.d.Dist(v); got != want {
				t.Fatalf("src %d: dist(%d)=%d, want %d", s, v, got, want)
			}
		}
	}
}

// TestMultiTreeParallelBarrierRace does the same for the k-lane parallel
// sweep, whose level threshold scales with k.
func TestMultiTreeParallelBarrierRace(t *testing.T) {
	h, n := raceHierarchy(t)
	e, err := NewEngine(h, Options{Workers: 4, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	for _, k := range []int{4, 8} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(n))
		}
		e.MultiTreeParallel(sources, false)
		for i, s := range sources {
			raceFixture.d.Run(s)
			for v := int32(0); v < int32(n); v += 11 {
				if got, want := e.MultiDist(i, v), raceFixture.d.Dist(v); got != want {
					t.Fatalf("k=%d lane %d src %d: dist(%d)=%d, want %d", k, i, s, v, got, want)
				}
			}
		}
	}
}

// TestParallelSweepsAcrossClones runs parallel sweeps simultaneously on
// several clones of one shared hierarchy — per-source parallelism
// (Section V) stacked on intra-level parallelism — so -race watches
// worker goroutines of different engines interleave over the shared
// immutable graphs.
func TestParallelSweepsAcrossClones(t *testing.T) {
	h, n := raceHierarchy(t)
	proto, err := NewEngine(h, Options{Workers: 4, ParallelGrain: DefaultParallelGrain})
	if err != nil {
		t.Fatal(err)
	}
	clones := 4
	trees := 4
	if testing.Short() {
		trees = 2
	}
	var wg sync.WaitGroup
	for c := 0; c < clones; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			e := proto.Clone()
			rng := rand.New(rand.NewSource(int64(60 + c)))
			want := make([]uint32, n)
			for q := 0; q < trees; q++ {
				if q%2 == 0 {
					s := int32(rng.Intn(n))
					e.TreeParallel(s)
					e.CopyDistances(want)
					if want[s] != 0 {
						t.Errorf("clone %d: dist(source)=%d", c, want[s])
						return
					}
				} else {
					sources := []int32{int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n))}
					e.MultiTreeParallel(sources, false)
					for i, s := range sources {
						e.CopyLaneDistances(i, want)
						if want[s] != 0 {
							t.Errorf("clone %d lane %d: dist(source)=%d", c, i, want[s])
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
}
