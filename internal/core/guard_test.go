package core

import (
	"math/rand"
	"testing"
)

// TestDistAfterMultiTreePanics pins the misuse guard: single-tree labels
// are stale after a multi-tree sweep and must not be readable silently.
func TestDistAfterMultiTreePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	g := gridGraph(rng, 5, 5, 10)
	e := newEngine(t, g, Options{})
	e.Tree(0)
	_ = e.Dist(3) // fine
	e.MultiTree([]int32{1, 2}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Dist after MultiTree did not panic")
		}
	}()
	_ = e.Dist(3)
}

func TestDistancesIntoAfterMultiTreePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gridGraph(rng, 5, 5, 10)
	e := newEngine(t, g, Options{})
	e.MultiTree([]int32{1, 2}, false)
	buf := make([]uint32, g.NumVertices())
	defer func() {
		if recover() == nil {
			t.Fatal("DistancesInto after MultiTree did not panic")
		}
	}()
	e.DistancesInto(buf)
}

// TestTreeAfterMultiTreeRecovers: a fresh single tree re-enables the
// single-tree readers.
func TestTreeAfterMultiTreeRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := gridGraph(rng, 6, 6, 10)
	e := newEngine(t, g, Options{})
	e.MultiTree([]int32{1, 2}, false)
	e.Tree(4)
	if e.Dist(4) != 0 {
		t.Fatal("single-tree read after recovery wrong")
	}
	e.MultiTree([]int32{3}, false)
	e.TreeParallel(4)
	if e.Dist(4) != 0 {
		t.Fatal("parallel tree did not clear the multi-tree guard")
	}
}
