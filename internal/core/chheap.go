package core

// chHeap is the tiny binary heap driving PHAST's first phase, the
// upward CH search. The search space is a few hundred vertices (the
// paper measures <0.05ms of a 172ms tree), so a plain binary heap is the
// right tool; CH query times are insensitive to the queue choice
// (Section VIII-A). It stores engine IDs and reuses its position array
// across runs via the engine's mark bits, so it allocates only once.
type chHeap struct {
	vs   []int32
	keys []uint32
	pos  []int32
}

func newCHHeap(n int) *chHeap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &chHeap{pos: pos}
}

func (h *chHeap) reset() {
	for _, v := range h.vs {
		h.pos[v] = -1
	}
	h.vs = h.vs[:0]
	h.keys = h.keys[:0]
}

func (h *chHeap) empty() bool { return len(h.vs) == 0 }

func (h *chHeap) swap(i, j int32) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.vs[i]] = i
	h.pos[h.vs[j]] = j
}

// update inserts v or decreases its key.
func (h *chHeap) update(v int32, key uint32) {
	i := h.pos[v]
	if i < 0 {
		i = int32(len(h.vs))
		h.vs = append(h.vs, v)
		h.keys = append(h.keys, key)
		h.pos[v] = i
	} else {
		h.keys[i] = key
	}
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[p] <= h.keys[i] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *chHeap) pop() (int32, uint32) {
	v, key := h.vs[0], h.keys[0]
	last := int32(len(h.vs) - 1)
	h.swap(0, last)
	h.vs = h.vs[:last]
	h.keys = h.keys[:last]
	h.pos[v] = -1
	i, n := int32(0), last
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.keys[r] < h.keys[l] {
			m = r
		}
		if h.keys[i] <= h.keys[m] {
			break
		}
		h.swap(i, m)
		i = m
	}
	return v, key
}
