package core

import (
	"math/rand"
	"testing"

	"phast/internal/pq"
	"phast/internal/sssp"
)

// These tests pin the aliasing contract of the raw accessors: slices
// returned by RawDistances/RawMultiDistances are the engine's working
// buffers and the next sweep silently overwrites them, while
// CopyDistances/CopyLaneDistances snapshots stay valid forever. The
// serving layer (internal/server) depends on the copy forms.

// TestRawDistancesInvalidatedByNextSweep demonstrates the hazard the
// copy accessors exist to avoid: a raw slice held across a sweep is
// reused, while a CopyDistances snapshot taken at the same moment is
// not. If the engine ever stops reusing the buffer (making raw reads
// safe), or the copy starts aliasing, this test fails.
func TestRawDistancesInvalidatedByNextSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	g := gridGraph(rng, 9, 9, 20)
	n := g.NumVertices()
	e := newEngine(t, g, Options{})
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)

	e.Tree(5)
	raw := e.RawDistances()
	snapshot := make([]uint32, n)
	e.CopyDistances(snapshot)
	rawThen := make([]uint32, n)
	copy(rawThen, raw)

	// A second tree from the far corner reuses the same buffer.
	e.Tree(int32(n - 1))

	changed := false
	for i := range raw { //phastlint:ignore rawalias deliberate stale read: this test pins the aliasing behavior
		if raw[i] != rawThen[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("RawDistances survived a second sweep; the aliasing contract (and these tests) are stale")
	}
	d.Run(5)
	for v := 0; v < n; v++ {
		if snapshot[v] != d.Dist(int32(v)) {
			t.Fatalf("CopyDistances snapshot corrupted by later sweep at %d: %d, want %d",
				v, snapshot[v], d.Dist(int32(v)))
		}
	}
}

func TestCopyLaneDistancesMatchesMultiDist(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := gridGraph(rng, 8, 7, 15)
	n := g.NumVertices()
	e := newEngine(t, g, Options{})
	sources := []int32{3, 17, 42, 9}
	e.MultiTree(sources, false)
	buf := make([]uint32, n)
	for i := range sources {
		e.CopyLaneDistances(i, buf)
		for v := int32(0); v < int32(n); v++ {
			if buf[v] != e.MultiDist(i, v) {
				t.Fatalf("lane %d vertex %d: copy %d != MultiDist %d", i, v, buf[v], e.MultiDist(i, v))
			}
		}
	}
}

// TestCopyLaneDistancesSurvivesNextSweep is the multi-tree
// reuse-after-sweep regression: lane snapshots must stay correct after
// the engine runs more sweeps — including sweeps with a different k,
// which relayout the raw buffer entirely.
func TestCopyLaneDistancesSurvivesNextSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := gridGraph(rng, 10, 9, 25)
	n := g.NumVertices()
	e := newEngine(t, g, Options{})
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)

	// Warm the k-label buffer with a larger batch first so the later
	// k=3 sweeps reuse (and overwrite) one backing array instead of
	// reallocating it — the exact situation that corrupts held raw
	// slices in a long-lived engine.
	e.MultiTree([]int32{1, 2, 3, 4, 5}, false)

	sources := []int32{4, 31, 60}
	e.MultiTree(sources, false)
	snapshots := make([][]uint32, len(sources))
	for i := range sources {
		snapshots[i] = make([]uint32, n)
		e.CopyLaneDistances(i, snapshots[i])
	}
	raw := e.RawMultiDistances()
	rawThen := make([]uint32, len(raw))
	copy(rawThen, raw)

	// Overwrite with more sweeps of the same and smaller k, plus a
	// single tree for good measure.
	e.MultiTree([]int32{77, 8, 9}, false)
	e.Tree(0)
	e.MultiTree([]int32{12, 13}, false)

	changed := false
	for i := range rawThen {
		//phastlint:ignore rawalias deliberate stale read: this test pins the aliasing behavior
		if raw[i] != rawThen[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("RawMultiDistances survived later sweeps; aliasing contract is stale")
	}
	for i, src := range sources {
		d.Run(src)
		for v := 0; v < n; v++ {
			if snapshots[i][v] != d.Dist(int32(v)) {
				t.Fatalf("lane %d (src %d) snapshot corrupted at %d: %d, want %d",
					i, src, v, snapshots[i][v], d.Dist(int32(v)))
			}
		}
	}
}

func TestCopyLaneDistancesGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := gridGraph(rng, 5, 5, 10)
	n := g.NumVertices()
	e := newEngine(t, g, Options{})
	buf := make([]uint32, n)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	e.Tree(0)
	mustPanic("CopyLaneDistances after single Tree", func() { e.CopyLaneDistances(0, buf) })
	e.MultiTree([]int32{1, 2}, false)
	mustPanic("lane out of range", func() { e.CopyLaneDistances(2, buf) })
	mustPanic("negative lane", func() { e.CopyLaneDistances(-1, buf) })
	mustPanic("short buffer", func() { e.CopyLaneDistances(0, buf[:n-1]) })
	mustPanic("CopyDistances after MultiTree", func() { e.CopyDistances(buf) })
}
