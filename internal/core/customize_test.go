package core

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// TestCustomizedEngineDifferential is the engine-level half of the
// differential customization oracle: a customized hierarchy mounted
// via NewEngineSharingPool must produce Dijkstra-identical trees under
// every sweep mode, with and without the packed stream, for single
// trees and k-lane batches alike. This is what the server relies on
// when it swaps a customized engine in mid-traffic — every execution
// path must agree on the new metric, not just the CH query.
func TestCustomizedEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gridGraph(rng, 9, 7, 40)
	topo, err := ch.BuildCustomizable(g, ch.Options{Workers: 2})
	if err != nil {
		t.Fatalf("BuildCustomizable: %v", err)
	}
	n := g.NumVertices()

	configs := []struct {
		name string
		opt  Options
	}{
		{"reordered/packed", Options{Mode: SweepReordered, Workers: 2, ParallelGrain: 16}},
		{"reordered/csr", Options{Mode: SweepReordered, Workers: 2, ParallelGrain: 16, PackedSweep: PackedOff}},
		{"levelorder/packed", Options{Mode: SweepLevelOrder, Workers: 2, ParallelGrain: 16}},
		{"levelorder/csr", Options{Mode: SweepLevelOrder, Workers: 2, ParallelGrain: 16, PackedSweep: PackedOff}},
		{"rankorder/packed", Options{Mode: SweepRankOrder, Workers: 2, ParallelGrain: 16}},
		{"rankorder/csr", Options{Mode: SweepRankOrder, Workers: 2, ParallelGrain: 16, PackedSweep: PackedOff}},
		// Compressed-stream twins: Customize rebinds weights via
		// PackedZ.WithWeights (a full re-encode, since narrow width tags
		// depend on the weights), and the random metrics above include
		// graph.Inf arcs, so the narrow-block Inf escapes are exercised.
		{"reordered/compressed", Options{Mode: SweepReordered, Workers: 2, ParallelGrain: 16, CompressedSweep: true}},
		{"levelorder/compressed", Options{Mode: SweepLevelOrder, Workers: 2, ParallelGrain: 16, CompressedSweep: true}},
		{"rankorder/compressed", Options{Mode: SweepRankOrder, Workers: 2, ParallelGrain: 16, CompressedSweep: true}},
	}

	for metric := 0; metric < 3; metric++ {
		w := make([]uint32, g.NumArcs())
		for i := range w {
			switch rng.Intn(10) {
			case 0:
				w[i] = 0
			case 1:
				w[i] = graph.Inf
			default:
				w[i] = uint32(rng.Intn(500))
			}
		}
		h2, err := topo.Customize(w, ch.CustomizeOptions{Epoch: int64(metric + 1)})
		if err != nil {
			t.Fatalf("Customize: %v", err)
		}
		gw, err := g.WithWeights(w)
		if err != nil {
			t.Fatal(err)
		}
		dij := sssp.NewDijkstra(gw, pq.KindBinaryHeap)
		oracle := make(map[int32][]uint32)
		wantDist := func(s int32) []uint32 {
			if d, ok := oracle[s]; ok {
				return d
			}
			dij.Run(s)
			d := make([]uint32, n)
			for v := 0; v < n; v++ {
				d[v] = dij.Dist(int32(v))
			}
			oracle[s] = d
			return d
		}

		for _, cfg := range configs {
			base, err := NewEngine(topo.Hierarchy(), cfg.opt)
			if err != nil {
				t.Fatalf("%s: NewEngine: %v", cfg.name, err)
			}
			eng, err := NewEngineSharingPool(base, h2)
			if err != nil {
				t.Fatalf("%s: NewEngineSharingPool: %v", cfg.name, err)
			}
			for _, k := range []int{1, 4, 16} {
				sources := make([]int32, k)
				for i := range sources {
					sources[i] = int32(rng.Intn(n))
				}
				eng.MultiTreeParallel(sources, k%4 == 0)
				for i, s := range sources {
					want := wantDist(s)
					for v := 0; v < n; v++ {
						if got := eng.MultiDist(i, int32(v)); got != want[v] {
							t.Fatalf("%s metric %d k=%d: tree %d dist[%d] = %d, Dijkstra says %d",
								cfg.name, metric, k, s, v, got, want[v])
						}
					}
				}
			}
			// The single-tree sweeps share the same kernels but not the
			// same entry points; pin them too.
			s := int32(rng.Intn(n))
			want := wantDist(s)
			eng.Tree(s)
			for v := 0; v < n; v++ {
				if got := eng.Dist(int32(v)); got != want[v] {
					t.Fatalf("%s metric %d: Tree dist[%d] = %d, Dijkstra says %d", cfg.name, metric, v, got, want[v])
				}
			}
			eng.TreeParallel(s)
			for v := 0; v < n; v++ {
				if got := eng.Dist(int32(v)); got != want[v] {
					t.Fatalf("%s metric %d: TreeParallel dist[%d] = %d, Dijkstra says %d", cfg.name, metric, v, got, want[v])
				}
			}
		}
	}
}
