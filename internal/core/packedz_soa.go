package core

import (
	"encoding/binary"

	"phast/internal/graph"
)

// Lane-major decode-once multi-tree kernels over the compressed stream.
//
// The first-generation compressed multi kernels (packedz.go
// sweepPackedZMulti/...MultiLanes and their chunk twins, retained
// behind Options.VertexMajorMulti as the differential oracle) keep the
// k labels of one vertex contiguous (vertex-major, kdist[v*k+j]) and
// relax them in place per arc. That structure pays two taxes the
// single-tree kernels never see: the generic variable-shift decode
// geometry (sweepPackedZIdent's four constant-shift shapes were never
// ported to the multi family), and — worse — a memory-resident relax
// target. Because the scanned vertex's labels and the tail labels live
// in the same array, the compiler must assume every tail-label load may
// alias the dv slice, so each of the k lanes re-loads, compares, and
// conditionally stores its label for every arc.
//
// These kernels restructure the sweep around decode-once / relax-k over
// a lane-major (SoA) layout, kdist[j*n+v]:
//
//  1. Per block, the header is hoisted into the same four constant-
//     shift specialized shapes as sweepPackedZIdent, and each arc's
//     (head, weight) is decoded exactly once into a small stack staging
//     buffer (decodeZTile) — never re-derived per lane.
//  2. Lanes then consume the staged tile in unrolled groups of eight
//     (falling to four, then scalar, as k allows), each lane
//     accumulating its running minimum in a register: per (lane, block)
//     there is exactly one label store, and for non-seed blocks not
//     even an initializing Inf write — the register starts at Inf and
//     the final store is the initialization. Tail-label loads hit the
//     lane's own contiguous array, whose window near the scan position
//     stays cache-resident under the scheduler's chunk byte budget.
//  3. A lane count that is not a multiple of the group width is handled
//     by a branchless-in-spirit overlap tail: the last group re-spans
//     the final 8 (or 4) lanes, overlapping lanes already relaxed this
//     tile. Re-relaxing a lane from the same initial label over the
//     same staged arcs reproduces the same minimum (relaxation is
//     idempotent), so the overlap trades a handful of redundant relaxes
//     for a remainder loop and its mispredicted exit.
//
// Blocks deeper than the staging buffer are decoded in zTile-arc
// tiles; tiles after the first read the lane label back from its
// slot (seeded=true), making the tile loop a running minimum.
//
// The layout choice is owned by the engine (shared.laneMajor, set at
// construction): the upward searches write lane-major labels
// (chSearchLaneSoA), the sweep relaxes them here, and the per-tree
// views (MultiDist, CopyLaneDistances) read kdist[i*n+v]. Nothing ever
// transposes the array — see DESIGN.md, "lane-major label layout".

// zTile is the arc capacity of the staging buffer: one uvarint-free
// header (deg <= 7) always fits, and the rare deeper block is decoded
// in zTile-arc tiles. The +1 slot absorbs the unconditional tail-arc
// write of the branchless odd-arc decode (the entry is never read when
// the tile's arc count is even).
const zTile = 64

// zStage is the per-block staging buffer: heads (sweep positions until
// the caller remaps them to engine IDs under an explicit-vertex order)
// and weights of up to zTile arcs, decoded once and re-read k times.
// It lives on the kernel's stack; relax helpers only borrow it.
type zStage struct {
	heads [zTile + 1]int32
	ws    [zTile + 1]uint32
}

// decodeZTile decodes the next tn arcs of the block at sweep position p
// into st, starting at stream offset i, and returns the offset past
// them. tn must be min(remaining arcs, zTile). The four narrow header
// shapes get constant-shift pair decode (two arcs per wide load,
// exactly sweepPackedZIdent's specialization, writing to the staging
// buffer instead of relaxing); everything else falls to the generic
// geometry loop. An odd tn decodes its last arc branchlessly: the wide
// load is unconditional (licensed mid-stream by the following block's
// bytes and at the end by the stream pad), and only the offset advance
// is masked; with an even tn the write lands in the never-read spare
// slot.
//
//phast:hotpath
func decodeZTile(st *zStage, stream []byte, i int, p int32, hdr uint32, tn int) int {
	switch hdr & 0xF {
	case graph.WTag16<<2 | graph.WTag16: // 2-byte delta, 2-byte weight
		a := 0
		for ; a+2 <= tn; a += 2 {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += 8
			st.heads[a] = p - int32(x&0xFFFF)
			st.ws[a] = uint32(x>>16) & 0xFFFF
			st.heads[a+1] = p - int32(x>>32&0xFFFF)
			st.ws[a+1] = uint32(x >> 48)
		}
		m := uint32(int32(a-tn) >> 31) // all-ones iff a tail arc exists
		x := binary.LittleEndian.Uint32(stream[i:])
		i += int(m & 4)
		st.heads[a] = p - int32(x&0xFFFF)
		st.ws[a] = x >> 16
	case graph.WTag16<<2 | graph.WTag8: // 2-byte delta, 1-byte weight
		a := 0
		for ; a+2 <= tn; a += 2 {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += 6
			st.heads[a] = p - int32(x&0xFFFF)
			st.ws[a] = uint32(x>>16) & 0xFF
			st.heads[a+1] = p - int32(x>>24&0xFFFF)
			st.ws[a+1] = uint32(x>>40) & 0xFF
		}
		m := uint32(int32(a-tn) >> 31)
		x := binary.LittleEndian.Uint32(stream[i:])
		i += int(m & 3)
		st.heads[a] = p - int32(x&0xFFFF)
		st.ws[a] = x >> 16 & 0xFF
	case graph.WTag8<<2 | graph.WTag16: // 1-byte delta, 2-byte weight
		a := 0
		for ; a+2 <= tn; a += 2 {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += 6
			st.heads[a] = p - int32(x&0xFF)
			st.ws[a] = uint32(x>>8) & 0xFFFF
			st.heads[a+1] = p - int32(x>>24&0xFF)
			st.ws[a+1] = uint32(x>>32) & 0xFFFF
		}
		m := uint32(int32(a-tn) >> 31)
		x := binary.LittleEndian.Uint32(stream[i:])
		i += int(m & 3)
		st.heads[a] = p - int32(x&0xFF)
		st.ws[a] = x >> 8 & 0xFFFF
	case graph.WTag8<<2 | graph.WTag8: // 1-byte delta, 1-byte weight
		a := 0
		for ; a+2 <= tn; a += 2 {
			x := binary.LittleEndian.Uint32(stream[i:])
			i += 4
			st.heads[a] = p - int32(x&0xFF)
			st.ws[a] = x >> 8 & 0xFF
			st.heads[a+1] = p - int32(x>>16&0xFF)
			st.ws[a+1] = x >> 24
		}
		m := uint32(int32(a-tn) >> 31)
		x := uint32(binary.LittleEndian.Uint16(stream[i:]))
		i += int(m & 2)
		st.heads[a] = p - int32(x&0xFF)
		st.ws[a] = x >> 8
	default:
		stride, dshift, dmask, wmask := zGeom(hdr)
		for a := 0; a < tn; a++ {
			x := binary.LittleEndian.Uint64(stream[i:])
			i += stride
			st.heads[a] = p - int32(uint32(x)&dmask)
			st.ws[a] = uint32(x>>dshift) & wmask
		}
	}
	return i
}

// relaxLane1 relaxes the staged tile for the single lane whose labels
// start at kd[jn], accumulating the minimum for vertex vi in a
// register. seeded selects the initial value: the lane's current label
// (seed blocks and tiles after the first) or Inf.
//
//phast:hotpath
func relaxLane1(kd []uint32, jn, vi int, st *zStage, tn int, seeded bool) {
	b := graph.Inf
	if seeded {
		b = kd[jn+vi]
	}
	for t := 0; t < tn; t++ {
		if nd := graph.AddSat(kd[jn+int(st.heads[t])], st.ws[t]); nd < b {
			b = nd
		}
	}
	kd[jn+vi] = b
}

// relaxLanes4 relaxes the staged tile for the four consecutive lanes
// whose labels start at kd[jn], kd[jn+n], ... — four register
// accumulators, one store each.
//
//phast:hotpath
func relaxLanes4(kd []uint32, n, jn, vi int, st *zStage, tn int, seeded bool) {
	jn1, jn2, jn3 := jn+n, jn+2*n, jn+3*n
	b0, b1, b2, b3 := graph.Inf, graph.Inf, graph.Inf, graph.Inf
	if seeded {
		b0 = kd[jn+vi]
		b1 = kd[jn1+vi]
		b2 = kd[jn2+vi]
		b3 = kd[jn3+vi]
	}
	for t := 0; t < tn; t++ {
		h := int(st.heads[t])
		w := st.ws[t]
		if nd := graph.AddSat(kd[jn+h], w); nd < b0 {
			b0 = nd
		}
		if nd := graph.AddSat(kd[jn1+h], w); nd < b1 {
			b1 = nd
		}
		if nd := graph.AddSat(kd[jn2+h], w); nd < b2 {
			b2 = nd
		}
		if nd := graph.AddSat(kd[jn3+h], w); nd < b3 {
			b3 = nd
		}
	}
	kd[jn+vi] = b0
	kd[jn1+vi] = b1
	kd[jn2+vi] = b2
	kd[jn3+vi] = b3
}

// relaxLanes8 is relaxLanes4 widened to eight lanes — the wide step the
// k>=8 production batches (server k=16) spend their time in.
//
//phast:hotpath
func relaxLanes8(kd []uint32, n, jn, vi int, st *zStage, tn int, seeded bool) {
	jn1, jn2, jn3 := jn+n, jn+2*n, jn+3*n
	jn4, jn5, jn6, jn7 := jn+4*n, jn+5*n, jn+6*n, jn+7*n
	b0, b1, b2, b3 := graph.Inf, graph.Inf, graph.Inf, graph.Inf
	b4, b5, b6, b7 := graph.Inf, graph.Inf, graph.Inf, graph.Inf
	if seeded {
		b0 = kd[jn+vi]
		b1 = kd[jn1+vi]
		b2 = kd[jn2+vi]
		b3 = kd[jn3+vi]
		b4 = kd[jn4+vi]
		b5 = kd[jn5+vi]
		b6 = kd[jn6+vi]
		b7 = kd[jn7+vi]
	}
	for t := 0; t < tn; t++ {
		h := int(st.heads[t])
		w := st.ws[t]
		if nd := graph.AddSat(kd[jn+h], w); nd < b0 {
			b0 = nd
		}
		if nd := graph.AddSat(kd[jn1+h], w); nd < b1 {
			b1 = nd
		}
		if nd := graph.AddSat(kd[jn2+h], w); nd < b2 {
			b2 = nd
		}
		if nd := graph.AddSat(kd[jn3+h], w); nd < b3 {
			b3 = nd
		}
		if nd := graph.AddSat(kd[jn4+h], w); nd < b4 {
			b4 = nd
		}
		if nd := graph.AddSat(kd[jn5+h], w); nd < b5 {
			b5 = nd
		}
		if nd := graph.AddSat(kd[jn6+h], w); nd < b6 {
			b6 = nd
		}
		if nd := graph.AddSat(kd[jn7+h], w); nd < b7 {
			b7 = nd
		}
	}
	kd[jn+vi] = b0
	kd[jn1+vi] = b1
	kd[jn2+vi] = b2
	kd[jn3+vi] = b3
	kd[jn4+vi] = b4
	kd[jn5+vi] = b5
	kd[jn6+vi] = b6
	kd[jn7+vi] = b7
}

// scanPackedZSoAChunk relaxes sweep positions [lo,hi) for all k trees
// over the lane-major label layout: decode each block's arcs once into
// the staging buffer, then relax every lane from it. wide selects the
// unrolled 8/4-lane groups (the lanes kernel family); without it every
// lane runs the scalar accumulator — same staging, one lane per pass.
// A lane count off the group width is covered by re-spanning the last
// group over the final 8 (or 4) lanes: the overlapped lanes relax the
// same staged arcs from the same initial labels and reproduce their
// minima, so no scalar remainder loop is needed (and any k is legal,
// unlike the vertex-major lanes kernels' k%4 contract).
//
//phast:hotpath
func (e *Engine) scanPackedZSoAChunk(lo, hi int32, k int, wide bool) {
	zk := e.s.packedz
	stream := zk.Stream()
	hasV := zk.ExplicitVertex()
	order := e.s.order
	kd := e.kdist
	n := e.s.n
	seeds := e.seedPos
	si := seedLowerBound(seeds, lo)
	next := int32(-1)
	if si < len(seeds) {
		next = seeds[si]
	}
	var st zStage
	i := zk.BlockStarts()[lo]
	for p := lo; p < hi; p++ {
		hdr := uint32(stream[i])
		i++
		if hdr >= 0x80 {
			hdr, i = uvarintSlow(hdr, stream, i)
		}
		deg := int(hdr >> 4)
		v := p
		if hasV {
			zz := uint32(stream[i])
			i++
			if zz >= 0x80 {
				zz, i = uvarintSlow(zz, stream, i)
			}
			v = p + unzig(zz)
		}
		vi := int(v)
		seeded := false
		if p == next {
			seeded = true
			si++
			next = -1
			if si < len(seeds) {
				next = seeds[si]
			}
		}
		// Tile loop. deg == 0 still runs one empty tile: every lane's
		// final store doubles as the block's label initialization, so
		// skipping it would leave stale labels from the previous sweep.
		rem := deg
		for {
			tn := rem
			if tn > zTile {
				tn = zTile
			}
			i = decodeZTile(&st, stream, i, p, hdr, tn)
			if hasV {
				for t := 0; t < tn; t++ {
					st.heads[t] = order[st.heads[t]]
				}
			}
			switch {
			case !wide || k < 4:
				for j := 0; j < k; j++ {
					relaxLane1(kd, j*n, vi, &st, tn, seeded)
				}
			case k < 8:
				relaxLanes4(kd, n, 0, vi, &st, tn, seeded)
				if k > 4 {
					relaxLanes4(kd, n, (k-4)*n, vi, &st, tn, seeded)
				}
			default:
				j := 0
				for ; j+8 <= k; j += 8 {
					relaxLanes8(kd, n, j*n, vi, &st, tn, seeded)
				}
				if j < k {
					relaxLanes8(kd, n, (k-8)*n, vi, &st, tn, seeded)
				}
			}
			rem -= tn
			if rem <= 0 {
				break
			}
			seeded = true // later tiles continue from the stored minima
		}
	}
}

// sweepPackedZSoA is the sequential lane-major multi-tree kernel: the
// chunk scan over the whole stream (BlockStarts[0] is offset 0 and the
// seed cursor starts at the first seed, so the chunk entry is free).
//
//phast:hotpath
func (e *Engine) sweepPackedZSoA(k int, wide bool) {
	e.scanPackedZSoAChunk(0, int32(e.s.packedz.NumVertices()), k, wide)
}

// chSearchLaneSoA is chSearchLane over the lane-major label layout:
// lane i's labels live at kdist[i*n : (i+1)*n], and the first touch of
// a vertex initializes its slot in every lane (a strided write — the
// upward search space is a few hundred vertices, so the stride is
// irrelevant next to the sweep it licenses).
//
//phast:hotpath
func (e *Engine) chSearchLaneSoA(source int32, lane, k int) {
	src := e.s.toEngine[source]
	e.src = src
	q := e.queue
	q.reset()
	up := e.s.up
	kd := e.kdist
	n := e.s.n
	ln := lane * n
	touch := func(v int32) {
		if !e.mark[v] {
			e.mark[v] = true
			e.touched = append(e.touched, v)
			for j := 0; j < k; j++ {
				kd[j*n+int(v)] = graph.Inf
			}
		}
	}
	touch(src)
	kd[ln+int(src)] = 0
	q.update(src, 0)
	for !q.empty() {
		v, dv := q.pop()
		for _, a := range up.Arcs(v) {
			nd := graph.AddSat(dv, a.Weight)
			touch(a.Head)
			if nd < kd[ln+int(a.Head)] {
				kd[ln+int(a.Head)] = nd
				q.update(a.Head, nd)
			}
		}
	}
}
