//go:build !phastdebug

package invariant

import (
	"phast/internal/ch"
	"phast/internal/graph"
)

// Enabled reports whether this binary is a checked build (-tags
// phastdebug) whose validators actually validate. This is the release
// flavor: every check below is a no-op the linker discards.
const Enabled = false

// CSRArrays is a release-build no-op; see the phastdebug flavor.
func CSRArrays(n int, first []int32, arcs []graph.Arc) error { return nil }

// CSR is a release-build no-op; see the phastdebug flavor.
func CSR(g *graph.Graph) error { return nil }

// Permutation is a release-build no-op; see the phastdebug flavor.
func Permutation(perm []int32) error { return nil }

// LevelDescending is a release-build no-op; see the phastdebug flavor.
func LevelDescending(levelsInSweepOrder []int32, ranges [][2]int32) error { return nil }

// Hierarchy is a release-build no-op; see the phastdebug flavor.
func Hierarchy(h *ch.Hierarchy) error { return nil }

// CustomizedMetric is a release-build no-op; see the phastdebug flavor.
func CustomizedMetric(h *ch.Hierarchy) error { return nil }

// PackedStream is a release-build no-op; see the phastdebug flavor.
func PackedStream(p *graph.Packed, g *graph.Graph, order []int32) error { return nil }

// PackedZStream is a release-build no-op; see the phastdebug flavor.
func PackedZStream(z *graph.PackedZ, g *graph.Graph, order []int32) error { return nil }

// ChunkDeps is a release-build no-op; see the phastdebug flavor.
func ChunkDeps(g *graph.Graph, order []int32, grain int, chunkDep []int32) error { return nil }

// ChunkDepsAt is a release-build no-op; see the phastdebug flavor.
func ChunkDepsAt(g *graph.Graph, order []int32, chunkStart []int32, chunkDep []int32) error {
	return nil
}

// MinHeap is a release-build no-op; see the phastdebug flavor.
func MinHeap(keys []uint32) error { return nil }

// HeapIndex is a release-build no-op; see the phastdebug flavor.
func HeapIndex(vs, pos []int32) error { return nil }
