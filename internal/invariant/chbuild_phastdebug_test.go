//go:build phastdebug

package invariant

import (
	"testing"

	"phast/internal/ch"
	"phast/internal/roadnet"
)

// TestParallelBuildHierarchyInvariants deep-validates the full
// hierarchy produced by the batch-parallel contractor on a realistic
// instance. The release build exercises the same code path through the
// differential tests in internal/ch; this checked-build pass is the one
// that walks every CSR array, the arc partition, and the level
// relabeling of a parallel-built hierarchy.
func TestParallelBuildHierarchyInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full-instance build; skipped with -short")
	}
	net, err := roadnet.GeneratePreset(roadnet.PresetEuropeXS, roadnet.TravelTime)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		h := ch.Build(net.Graph, ch.Options{Workers: workers})
		if err := Hierarchy(h); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}
