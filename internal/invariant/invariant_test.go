package invariant

import (
	"strings"
	"testing"

	"phast/internal/ch"
	"phast/internal/graph"
)

// The tests run under both build flavors: valid inputs must pass either
// way, corrupt inputs must be caught exactly when Enabled (the release
// stubs accept everything by design).

// expectCaught asserts err is non-nil iff this is a checked build.
func expectCaught(t *testing.T, err error, what string) {
	t.Helper()
	if Enabled && err == nil {
		t.Errorf("checked build missed %s", what)
	}
	if !Enabled && err != nil {
		t.Errorf("release stub rejected %s: %v", what, err)
	}
}

func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddArc(int32(v), int32((v+1)%n), uint32(v+1))
		b.MustAddArc(int32((v+1)%n), int32(v), uint32(v+1))
	}
	return b.Build()
}

func TestCSRGoodGraph(t *testing.T) {
	if err := CSR(ring(8)); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestCSRArraysCorruption(t *testing.T) {
	arcs := []graph.Arc{{Head: 1, Weight: 3}, {Head: 0, Weight: 2}}
	good := []int32{0, 1, 2}
	if err := CSRArrays(2, good, arcs); err != nil {
		t.Fatalf("valid arrays rejected: %v", err)
	}
	expectCaught(t, CSRArrays(2, []int32{0, 2, 1}, arcs), "non-monotone first")
	expectCaught(t, CSRArrays(2, []int32{1, 1, 2}, arcs), "first[0] != 0")
	expectCaught(t, CSRArrays(2, []int32{0, 1, 3}, arcs), "sentinel != arc count")
	expectCaught(t, CSRArrays(2, good, []graph.Arc{{Head: 5}, {Head: 0}}), "out-of-range head")
	expectCaught(t, CSRArrays(3, good, arcs), "short first array")
}

func TestPermutation(t *testing.T) {
	if err := Permutation([]int32{2, 0, 1, 3}); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	expectCaught(t, Permutation([]int32{0, 0, 1}), "duplicate image")
	expectCaught(t, Permutation([]int32{0, 3, 1}), "out-of-range image")
}

func TestLevelDescending(t *testing.T) {
	lvls := []int32{3, 3, 2, 1, 1, 0}
	ranges := [][2]int32{{0, 2}, {2, 3}, {3, 5}, {5, 6}}
	if err := LevelDescending(lvls, ranges); err != nil {
		t.Fatalf("valid sweep order rejected: %v", err)
	}
	if err := LevelDescending(lvls, nil); err != nil {
		t.Fatalf("nil ranges must be accepted (rank-order mode): %v", err)
	}
	expectCaught(t, LevelDescending([]int32{2, 3, 1}, nil), "ascending levels")
	expectCaught(t, LevelDescending(lvls, [][2]int32{{0, 3}, {3, 6}}), "range mixing levels")
	expectCaught(t, LevelDescending(lvls, [][2]int32{{0, 2}, {3, 5}, {5, 6}}), "gap in partition")
	expectCaught(t, LevelDescending(lvls, [][2]int32{{0, 2}, {2, 3}, {3, 5}}), "partition not covering n")
}

func TestHierarchy(t *testing.T) {
	g := ring(10)
	h := ch.Build(g, ch.Options{Workers: 1})
	if err := Hierarchy(h); err != nil {
		t.Fatalf("freshly built hierarchy rejected: %v", err)
	}

	// Corrupt copies. Rank sharing one value breaks the permutation
	// invariant; swapping Up and Down breaks the rank direction of
	// every arc.
	badRank := *h
	badRank.Rank = append([]int32(nil), h.Rank...)
	badRank.Rank[0] = badRank.Rank[1]
	expectCaught(t, Hierarchy(&badRank), "duplicate rank")

	swapped := *h
	swapped.Up, swapped.Down = h.Down, h.Up
	expectCaught(t, Hierarchy(&swapped), "swapped up/down graphs")

	badLevel := *h
	badLevel.Level = append([]int32(nil), h.Level...)
	badLevel.Level[0] = h.MaxLevel + 5
	expectCaught(t, Hierarchy(&badLevel), "level above MaxLevel")
}

func TestMinHeap(t *testing.T) {
	if err := MinHeap([]uint32{1, 4, 2, 9, 5, 3}); err != nil {
		t.Fatalf("valid heap rejected: %v", err)
	}
	expectCaught(t, MinHeap([]uint32{5, 4, 6}), "parent above child")
}

func TestHeapIndex(t *testing.T) {
	vs := []int32{3, 0, 2}
	pos := []int32{1, -1, 2, 0}
	if err := HeapIndex(vs, pos); err != nil {
		t.Fatalf("valid index rejected: %v", err)
	}
	expectCaught(t, HeapIndex(vs, []int32{1, 0, 2, 0}), "stale pos entry")
	expectCaught(t, HeapIndex([]int32{7}, []int32{0}), "out-of-range vertex")
}

func TestErrorsNameThePackage(t *testing.T) {
	if !Enabled {
		t.Skip("release stubs return nil errors")
	}
	err := Permutation([]int32{0, 0})
	if err == nil || !strings.Contains(err.Error(), "invariant:") {
		t.Fatalf("error %v does not carry the invariant: prefix", err)
	}
}
