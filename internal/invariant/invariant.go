// Package invariant is the runtime twin of the phastlint static
// analyzers: deep structural validators for the data structures the
// PHAST sweep trusts blindly — CSR adjacency arrays, the
// level-descending relabeling, the hierarchy's upward/downward arc
// partition (Lemma 4.1), and the CH search heap.
//
// The validators are gated by the phastdebug build tag:
//
//	go test -tags phastdebug ./...     # checked build: deep validation
//	go build ./...                     # release build: every check is a no-op
//
// In a release build each function returns nil immediately and the
// linker discards the validation code, so calls can stay wired into
// production paths (cmd/selfcheck, the core test suites) at zero cost.
// The Enabled constant reports which flavor was compiled in.
package invariant
