//go:build phastdebug

package invariant

import (
	"fmt"

	"phast/internal/ch"
	"phast/internal/graph"
)

// Enabled reports whether this binary is a checked build (-tags
// phastdebug) whose validators actually validate.
const Enabled = true

// CSRArrays validates a raw adjacency array: first has length n+1,
// starts at 0, is monotone non-decreasing, its sentinel equals the arc
// count, and every head is a vertex. This is the shape every sweep
// kernel indexes without bounds thinking.
func CSRArrays(n int, first []int32, arcs []graph.Arc) error {
	if len(first) != n+1 {
		return fmt.Errorf("invariant: first has length %d, want n+1 = %d", len(first), n+1)
	}
	if first[0] != 0 {
		return fmt.Errorf("invariant: first[0] = %d, want 0", first[0])
	}
	for v := 0; v < n; v++ {
		if first[v+1] < first[v] {
			return fmt.Errorf("invariant: first not monotone at vertex %d: %d > %d", v, first[v], first[v+1])
		}
	}
	if int(first[n]) != len(arcs) {
		return fmt.Errorf("invariant: first sentinel %d != arc count %d", first[n], len(arcs))
	}
	for i, a := range arcs {
		if a.Head < 0 || int(a.Head) >= n {
			return fmt.Errorf("invariant: arc %d has head %d outside [0,%d)", i, a.Head, n)
		}
	}
	return nil
}

// CSR validates a built graph's adjacency arrays.
func CSR(g *graph.Graph) error {
	return CSRArrays(g.NumVertices(), g.FirstOut(), g.ArcList())
}

// Permutation validates that perm is a bijection on [0, len(perm)).
func Permutation(perm []int32) error {
	seen := make([]bool, len(perm))
	for i, p := range perm {
		if p < 0 || int(p) >= len(perm) {
			return fmt.Errorf("invariant: perm[%d] = %d outside [0,%d)", i, p, len(perm))
		}
		if seen[p] {
			return fmt.Errorf("invariant: perm maps two indices to %d", p)
		}
		seen[p] = true
	}
	return nil
}

// LevelDescending validates the Section IV-A sweep order: levels listed
// in sweep (increasing engine ID) order never increase, and ranges — if
// given — partition [0,n) into maximal constant-level runs in strictly
// descending level order, which is what the parallel sweep barriers
// between.
func LevelDescending(levelsInSweepOrder []int32, ranges [][2]int32) error {
	n := int32(len(levelsInSweepOrder))
	for i := int32(1); i < n; i++ {
		if levelsInSweepOrder[i] > levelsInSweepOrder[i-1] {
			return fmt.Errorf("invariant: sweep order ascends a level at position %d: %d then %d",
				i, levelsInSweepOrder[i-1], levelsInSweepOrder[i])
		}
	}
	if ranges == nil {
		return nil
	}
	next := int32(0)
	prevLevel := int32(-1)
	for ri, r := range ranges {
		from, to := r[0], r[1]
		if from != next || to <= from || to > n {
			return fmt.Errorf("invariant: level range %d = [%d,%d) does not continue the partition at %d", ri, from, to, next)
		}
		l := levelsInSweepOrder[from]
		for v := from; v < to; v++ {
			if levelsInSweepOrder[v] != l {
				return fmt.Errorf("invariant: level range %d mixes levels %d and %d", ri, l, levelsInSweepOrder[v])
			}
		}
		if ri > 0 && l >= prevLevel {
			return fmt.Errorf("invariant: level ranges not strictly descending: %d then %d", prevLevel, l)
		}
		prevLevel = l
		next = to
	}
	if next != n {
		return fmt.Errorf("invariant: level ranges cover [0,%d), want [0,%d)", next, n)
	}
	return nil
}

// Hierarchy validates a contraction hierarchy end to end: every graph's
// CSR shape, the level array's bounds, and the structural CH invariants
// (rank permutation, up arcs ascend, down arcs descend, DownIn is the
// transpose of Down).
func Hierarchy(h *ch.Hierarchy) error {
	for _, gr := range []struct {
		name string
		g    *graph.Graph
	}{{"G", h.G}, {"Up", h.Up}, {"Down", h.Down}, {"DownIn", h.DownIn}} {
		if err := CSR(gr.g); err != nil {
			return fmt.Errorf("%s graph: %w", gr.name, err)
		}
	}
	maxSeen := int32(0)
	for v, l := range h.Level {
		if l < 0 || l > h.MaxLevel {
			return fmt.Errorf("invariant: level[%d] = %d outside [0,%d]", v, l, h.MaxLevel)
		}
		if l > maxSeen {
			maxSeen = l
		}
	}
	if len(h.Level) > 0 && maxSeen != h.MaxLevel {
		return fmt.Errorf("invariant: MaxLevel = %d but highest level is %d", h.MaxLevel, maxSeen)
	}
	return h.CheckInvariants()
}

// CustomizedMetric validates the triangle-relaxation fixed point a
// customizable hierarchy's weights must satisfy, using only the
// hierarchy's own arrays (no oracle search): every Up/Down arc (u,w)
// is at most the minimum original arc weight between u and w, at most
// every lower triangle through a vertex z below both endpoints
// (weight(u,z↓) + weight(z,w↑), saturating), and exactly achieved by
// its recorded mid — the leg sum for mid z ≥ 0, the original arc for
// mid -1. It also re-checks that DownIn mirrors Down's weights, since
// the sweep reads one and path unpacking the other. Only hierarchies
// built with Options.Customizable (all-pairs shortcuts) satisfy the
// closure this walks; witness-pruned hierarchies will fail it.
func CustomizedMetric(h *ch.Hierarchy) error {
	n := h.G.NumVertices()
	// achieved checks one directed hierarchy arc (u,w) of weight w
	// against its recorded mid and the original graph.
	achieved := func(u, w int32, wt uint32, mid int32) error {
		if orig, ok := h.G.FindArc(u, w); ok && wt > orig {
			return fmt.Errorf("invariant: hierarchy arc (%d,%d) weighs %d, original arc %d", u, w, wt, orig)
		}
		if mid < 0 {
			orig, ok := h.G.FindArc(u, w)
			if !ok {
				// A pure shortcut keeps mid -1 when no triangle (and no
				// original arc) offers a finite value: it is closed under
				// this metric, and must say so.
				if wt != graph.Inf {
					return fmt.Errorf("invariant: arc (%d,%d) weighs %d with no original arc and no mid", u, w, wt)
				}
				return nil
			}
			if wt != orig {
				return fmt.Errorf("invariant: arc (%d,%d) weighs %d, its original arc %d", u, w, wt, orig)
			}
			return nil
		}
		if h.Rank[mid] >= h.Rank[u] || h.Rank[mid] >= h.Rank[w] {
			return fmt.Errorf("invariant: arc (%d,%d) has mid %d not below both endpoints", u, w, mid)
		}
		down, ok1 := h.Down.FindArc(u, mid)
		up, ok2 := h.Up.FindArc(mid, w)
		if !ok1 || !ok2 {
			return fmt.Errorf("invariant: arc (%d,%d) mid %d has missing legs", u, w, mid)
		}
		if sum := graph.AddSat(down, up); wt != sum {
			return fmt.Errorf("invariant: arc (%d,%d) weighs %d, its mid-%d legs sum to %d", u, w, wt, mid, sum)
		}
		return nil
	}
	for u := int32(0); u < int32(n); u++ {
		for i, a := range h.Up.Arcs(u) {
			if err := achieved(u, a.Head, a.Weight, h.UpMid[int(h.Up.FirstOut()[u])+i]); err != nil {
				return err
			}
		}
		for i, a := range h.Down.Arcs(u) {
			if err := achieved(u, a.Head, a.Weight, h.DownMid[int(h.Down.FirstOut()[u])+i]); err != nil {
				return err
			}
		}
	}
	// Lower-triangle dominance and closure: for every z, every pair of a
	// down-in arc (u,z) and an up arc (z,w) must have a hierarchy arc
	// (u,w) no heavier than the two legs.
	for z := int32(0); z < int32(n); z++ {
		ups := h.Up.Arcs(z)
		for _, din := range h.DownIn.Arcs(z) {
			u := din.Head // DownIn stores the tail
			if dw, ok := h.Down.FindArc(u, z); !ok || dw != din.Weight {
				return fmt.Errorf("invariant: DownIn arc (%d,%d) weighs %d, Down says %d (found %v)", u, z, din.Weight, dw, ok)
			}
			for _, ua := range ups {
				w := ua.Head
				if w == u {
					continue
				}
				var have uint32
				var ok bool
				if h.Rank[u] < h.Rank[w] {
					have, ok = h.Up.FindArc(u, w)
				} else {
					have, ok = h.Down.FindArc(u, w)
				}
				if !ok {
					return fmt.Errorf("invariant: triangle closure missing arc (%d,%d) for mid %d", u, w, z)
				}
				if sum := graph.AddSat(din.Weight, ua.Weight); have > sum {
					return fmt.Errorf("invariant: arc (%d,%d) weighs %d, lower triangle via %d offers %d", u, w, have, z, sum)
				}
			}
		}
	}
	return nil
}

// PackedStream validates the fused single-stream sweep layout against
// the CSR graph and sweep order it was built from: dimensions match,
// the block index partitions the stream, the vertex words (when
// present) follow the order, per-block degrees and (head, weight)
// pairs reproduce the adjacency lists exactly, degrees sum to m, and
// every vertex appears exactly once. The grammar half rides on
// Packed.Unpack (the round trip); the block index is checked here.
func PackedStream(p *graph.Packed, g *graph.Graph, order []int32) error {
	if p.NumVertices() != g.NumVertices() || p.NumArcs() != g.NumArcs() {
		return fmt.Errorf("invariant: packed dims %d/%d, graph %d/%d",
			p.NumVertices(), p.NumArcs(), g.NumVertices(), g.NumArcs())
	}
	if p.ExplicitVertex() != (order != nil) {
		return fmt.Errorf("invariant: packed explicit-vertex flag %v but order nil=%v",
			p.ExplicitVertex(), order == nil)
	}
	n := p.NumVertices()
	bs := p.BlockStarts()
	if len(bs) != n+1 {
		return fmt.Errorf("invariant: packed block index has %d entries, want %d", len(bs), n+1)
	}
	if bs[0] != 0 || bs[n] != p.Words() {
		return fmt.Errorf("invariant: packed block index spans [%d,%d], want [0,%d]", bs[0], bs[n], p.Words())
	}
	stream := p.Stream()
	for pos := 0; pos < n; pos++ {
		if bs[pos+1] <= bs[pos] {
			return fmt.Errorf("invariant: packed block index not increasing at position %d", pos)
		}
		want := bs[pos] + 1 + 2*int(stream[bs[pos]])
		if p.ExplicitVertex() {
			want++
		}
		if bs[pos+1] != want {
			return fmt.Errorf("invariant: packed block %d ends at %d, degree implies %d", pos, bs[pos+1], want)
		}
	}
	ug, uorder, err := p.Unpack()
	if err != nil {
		return fmt.Errorf("invariant: packed stream malformed: %w", err)
	}
	if !ug.Equal(g) {
		return fmt.Errorf("invariant: packed stream does not round-trip to its CSR graph")
	}
	for i := range order {
		if uorder[i] != order[i] {
			return fmt.Errorf("invariant: packed vertex word at position %d is %d, order says %d",
				i, uorder[i], order[i])
		}
	}
	return nil
}

// PackedZStream validates the compressed sweep stream against the CSR
// graph and sweep order it was built from: dimensions match, the
// byte-offset block index partitions the stream, and the delta+varint
// grammar round-trips to exactly the original adjacency (Unpack walks
// the stream re-checking every header, delta range, and width escape,
// so corrupt bytes surface as decode errors here).
func PackedZStream(z *graph.PackedZ, g *graph.Graph, order []int32) error {
	if z.NumVertices() != g.NumVertices() || z.NumArcs() != g.NumArcs() {
		return fmt.Errorf("invariant: packedz dims %d/%d, graph %d/%d",
			z.NumVertices(), z.NumArcs(), g.NumVertices(), g.NumArcs())
	}
	if z.ExplicitVertex() != (order != nil) {
		return fmt.Errorf("invariant: packedz explicit-vertex flag %v but order nil=%v",
			z.ExplicitVertex(), order == nil)
	}
	n := z.NumVertices()
	bs := z.BlockStarts()
	if len(bs) != n+1 {
		return fmt.Errorf("invariant: packedz block index has %d entries, want %d", len(bs), n+1)
	}
	if n > 0 && (bs[0] != 0 || bs[n] != z.ByteLen()) {
		return fmt.Errorf("invariant: packedz block index spans [%d,%d], want [0,%d]", bs[0], bs[n], z.ByteLen())
	}
	for pos := 0; pos < n; pos++ {
		if bs[pos+1] <= bs[pos] {
			return fmt.Errorf("invariant: packedz block index not increasing at position %d", pos)
		}
	}
	ug, uorder, err := z.Unpack()
	if err != nil {
		return fmt.Errorf("invariant: packedz stream malformed: %w", err)
	}
	if !ug.Equal(g) {
		return fmt.Errorf("invariant: packedz stream does not round-trip to its CSR graph")
	}
	for i := range order {
		if uorder[i] != order[i] {
			return fmt.Errorf("invariant: packedz vertex word at position %d is %d, order says %d",
				i, uorder[i], order[i])
		}
	}
	return nil
}

// ChunkDeps validates the persistent scheduler's per-chunk dependency
// thresholds against an independent recompute from the downward CSR
// graph and the sweep order. chunkDep[c] is a chunk index: the chunk
// holding the highest-positioned external predecessor of any vertex in
// chunk c (or -1 when every predecessor is internal). Along the way it
// re-proves the property the scheduler's correctness rests on: the
// sweep order is topological for the downward graph, so every incoming
// arc's tail sits at a strictly earlier position.
func ChunkDeps(g *graph.Graph, order []int32, grain int, chunkDep []int32) error {
	n := g.NumVertices()
	if grain <= 0 {
		return fmt.Errorf("invariant: chunk grain %d, want > 0", grain)
	}
	wantChunks := (n + grain - 1) / grain
	if len(chunkDep) != wantChunks {
		return fmt.Errorf("invariant: %d chunk dep bounds for %d chunks", len(chunkDep), wantChunks)
	}
	var pos []int32
	if order != nil {
		pos = make([]int32, n)
		for p, v := range order {
			pos[v] = int32(p)
		}
	}
	for c := 0; c < wantChunks; c++ {
		start := c * grain
		end := start + grain
		if end > n {
			end = n
		}
		bound := int32(-1)
		for p := start; p < end; p++ {
			v := int32(p)
			if order != nil {
				v = order[p]
			}
			for _, a := range g.Arcs(v) {
				tp := a.Head
				if pos != nil {
					tp = pos[a.Head]
				}
				if int(tp) >= p {
					return fmt.Errorf("invariant: sweep order not topological: position %d depends on position %d", p, tp)
				}
				if int(tp) < start && tp > bound {
					bound = tp
				}
			}
		}
		want := int32(-1)
		if bound >= 0 {
			want = bound / int32(grain)
		}
		if chunkDep[c] != want {
			return fmt.Errorf("invariant: chunkDep[%d] = %d, recompute says %d", c, chunkDep[c], want)
		}
		if chunkDep[c] >= int32(c) {
			return fmt.Errorf("invariant: chunkDep[%d] = %d not strictly below its own chunk", c, chunkDep[c])
		}
	}
	return nil
}

// ChunkDepsAt is ChunkDeps for variable chunk boundaries: chunkStart
// (length numChunks+1, spanning [0,n), strictly increasing) replaces
// the uniform grain, and chunkDep[c] must be the chunk containing the
// highest-positioned external predecessor of chunk c (or -1). This is
// the shape the cache-budget chunking produces; uniform grains are the
// special case chunkStart = 0, grain, 2·grain, …
func ChunkDepsAt(g *graph.Graph, order []int32, chunkStart []int32, chunkDep []int32) error {
	n := g.NumVertices()
	numChunks := len(chunkStart) - 1
	if numChunks < 1 || chunkStart[0] != 0 || int(chunkStart[numChunks]) != n {
		return fmt.Errorf("invariant: chunk boundaries span [%d,%d] in %d chunks, want [0,%d]",
			chunkStart[0], chunkStart[len(chunkStart)-1], numChunks, n)
	}
	for c := 0; c < numChunks; c++ {
		if chunkStart[c+1] <= chunkStart[c] {
			return fmt.Errorf("invariant: chunk %d is empty or reversed: [%d,%d)", c, chunkStart[c], chunkStart[c+1])
		}
	}
	if len(chunkDep) != numChunks {
		return fmt.Errorf("invariant: %d chunk dep bounds for %d chunks", len(chunkDep), numChunks)
	}
	var pos []int32
	if order != nil {
		pos = make([]int32, n)
		for p, v := range order {
			pos[v] = int32(p)
		}
	}
	// posChunk[p] = index of the chunk containing sweep position p.
	posChunk := make([]int32, n)
	for c := 0; c < numChunks; c++ {
		for p := chunkStart[c]; p < chunkStart[c+1]; p++ {
			posChunk[p] = int32(c)
		}
	}
	for c := 0; c < numChunks; c++ {
		start, end := int(chunkStart[c]), int(chunkStart[c+1])
		bound := int32(-1)
		for p := start; p < end; p++ {
			v := int32(p)
			if order != nil {
				v = order[p]
			}
			for _, a := range g.Arcs(v) {
				tp := a.Head
				if pos != nil {
					tp = pos[a.Head]
				}
				if int(tp) >= p {
					return fmt.Errorf("invariant: sweep order not topological: position %d depends on position %d", p, tp)
				}
				if int(tp) < start && tp > bound {
					bound = tp
				}
			}
		}
		want := int32(-1)
		if bound >= 0 {
			want = posChunk[bound]
		}
		if chunkDep[c] != want {
			return fmt.Errorf("invariant: chunkDep[%d] = %d, recompute says %d", c, chunkDep[c], want)
		}
		if chunkDep[c] >= int32(c) {
			return fmt.Errorf("invariant: chunkDep[%d] = %d not strictly below its own chunk", c, chunkDep[c])
		}
	}
	return nil
}

// MinHeap validates the binary-heap order of a key array laid out the
// way core's chHeap stores it: keys[(i-1)/2] <= keys[i].
func MinHeap(keys []uint32) error {
	for i := 1; i < len(keys); i++ {
		if p := (i - 1) / 2; keys[p] > keys[i] {
			return fmt.Errorf("invariant: heap order violated: keys[%d]=%d > keys[%d]=%d", p, keys[p], i, keys[i])
		}
	}
	return nil
}

// HeapIndex validates the heap's position index: pos[vs[i]] == i for
// every slot, and no stale positive entries point at vacated slots.
func HeapIndex(vs, pos []int32) error {
	for i, v := range vs {
		if v < 0 || int(v) >= len(pos) {
			return fmt.Errorf("invariant: heap slot %d holds out-of-range vertex %d", i, v)
		}
		if pos[v] != int32(i) {
			return fmt.Errorf("invariant: pos[%d] = %d, want %d", v, pos[v], i)
		}
	}
	live := 0
	for _, p := range pos {
		if p >= 0 {
			live++
		}
	}
	if live != len(vs) {
		return fmt.Errorf("invariant: %d live pos entries for %d heap slots", live, len(vs))
	}
	return nil
}
