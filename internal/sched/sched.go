// Package sched is the persistent dependency-bounded chunk scheduler
// that PR 5 introduced inside internal/core, extracted so that other
// bulk passes over the contraction order — notably the CCH-style metric
// customization in internal/ch — can reuse the same parked worker pool
// without an import cycle (core imports ch, so ch cannot import core).
//
// The design is unchanged from the in-core version:
//
//   - A pool of long-lived workers is spawned once and parked on a
//     channel between jobs. Everything sharing the pool (engine clones,
//     a customization pass) wakes the same parked workers.
//   - A job is divided into chunks claimed in increasing order through
//     an atomic cursor — no per-level partitioning, no barrier.
//   - Chunk c may start once the monotone completed-chunk frontier has
//     passed Dep[c], a precomputed bound on the last chunk any of its
//     external dependencies lives in. Intra-chunk dependencies are
//     satisfied by the chunk's in-order scan.
//
// Deadlock freedom: the cursor hands out chunks in increasing order, so
// the lowest claimed-but-incomplete chunk is always the frontier chunk
// itself, whose dependency bound (necessarily below it) is satisfied —
// its owner never stalls, so the frontier always advances.
//
// Memory ordering: a completing worker publishes its chunk's writes by
// the atomic done-flag store + frontier CAS; a starting worker observes
// frontier > Dep[c] before reading any external data. Both are
// sync/atomic operations, so every write of a completed chunk
// happens-before the reads of any chunk that observed its completion.
//
// New relative to the in-core version: the pool is reference counted.
// Metric customization produces sibling engines that share one pool
// across several metric epochs, so a single finalizer-driven shutdown
// is no longer enough — each shared state Retains the pool and the
// workers retire when the last reference Releases it.
package sched

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of the pool's counters, accumulated across every
// job submitter sharing the pool.
type Stats struct {
	// Sweeps is the number of jobs executed on the pool (sequential and
	// fork-join passes are not counted).
	Sweeps uint64
	// Chunks is the number of chunks claimed and scanned, across all
	// workers including the submitting goroutine.
	Chunks uint64
	// Stalls counts chunk starts that had to wait for the completion
	// frontier to pass their dependency bound. High stall counts mean
	// the grain is too coarse for the dependency structure.
	Stalls uint64
	// Idle counts assist invitations that arrived after their job had
	// already finished (the worker woke up, found nothing to do, and
	// parked again). A busy pool keeps this near zero.
	Idle uint64
}

// Pool is the persistent worker pool. Workers reference only the pool —
// never the submitter's state — so dropping every reference makes the
// submitters collectable and their finalizers can retire the workers (a
// goroutine parked on a channel receive is a GC root and would
// otherwise live forever).
type Pool struct {
	jobs    chan *Job
	assists atomic.Int32 // parked assist goroutines (workers - 1)
	workers atomic.Int32 // logical worker count, assists + 1
	refs    atomic.Int32 // Retain/Release count; 0 retires the workers
	once    sync.Once    // guards shutdown

	// resizeMu makes Resize and running jobs mutually exclusive: jobs
	// hold the read side, a resize try-locks the write side and rejects
	// (rather than blocks) while any job is in flight.
	resizeMu sync.RWMutex

	sweeps atomic.Uint64
	chunks atomic.Uint64
	stalls atomic.Uint64
	idle   atomic.Uint64
}

// poolInviteCap bounds the invitation channel. Parked workers drain it
// immediately, so the capacity only needs to cover a transient burst of
// invitations from concurrent submitters.
const poolInviteCap = 256

// NewPool creates a pool of the given logical worker count (w <= 0
// selects GOMAXPROCS): w-1 assist goroutines are spawned parked, the
// submitting goroutine is the w-th worker. The pool starts with one
// reference; Release it (or let a finalizer do so) to retire the
// workers.
func NewPool(w int) *Pool {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan *Job, poolInviteCap)}
	p.refs.Store(1)
	p.workers.Store(int32(w))
	p.grow(w - 1)
	return p
}

// Retain adds a reference to the pool, keeping its workers alive until
// a matching Release.
func (p *Pool) Retain() { p.refs.Add(1) }

// Release drops a reference; the last one retires every worker.
func (p *Pool) Release() {
	if p.refs.Add(-1) == 0 {
		p.once.Do(func() { close(p.jobs) })
	}
}

// Workers returns the current logical worker count.
func (p *Pool) Workers() int { return int(p.workers.Load()) }

// Resize changes the worker count at runtime; w <= 0 selects
// GOMAXPROCS. The resize only happens between jobs: if any job is in
// flight on the pool, Resize changes nothing and returns an error.
func (p *Pool) Resize(w int) error {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if !p.resizeMu.TryLock() {
		return errors.New("sched: resize rejected: a job is in flight")
	}
	defer p.resizeMu.Unlock()
	cur := int(p.workers.Load())
	switch {
	case w > cur:
		p.grow(w - cur)
	case w < cur:
		p.shrink(cur - w)
	}
	p.workers.Store(int32(w))
	return nil
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Sweeps: p.sweeps.Load(),
		Chunks: p.chunks.Load(),
		Stalls: p.stalls.Load(),
		Idle:   p.idle.Load(),
	}
}

// Guard runs f while holding the read side of the resize lock, making
// it mutually exclusive with Resize the same way pooled jobs are. The
// fork-join sweep oracle runs under it: it reads the worker count and
// must not race a retire.
func (p *Pool) Guard(f func()) {
	p.resizeMu.RLock()
	defer p.resizeMu.RUnlock()
	f()
}

// grow spawns additional parked assist workers.
func (p *Pool) grow(n int) {
	for i := 0; i < n; i++ {
		p.assists.Add(1)
		go p.worker()
	}
}

// shrink retires n parked workers by feeding them nil sentinels. Only
// called with no job in flight (Resize holds the resize lock), so every
// live worker is parked on the channel and consumes promptly.
func (p *Pool) shrink(n int) {
	for i := 0; i < n; i++ {
		p.assists.Add(-1)
		p.jobs <- nil
	}
}

// worker is one parked pool goroutine: it sleeps on the invitation
// channel and assists whatever job wakes it. A nil invitation or a
// closed channel retires it.
func (p *Pool) worker() {
	for job := range p.jobs {
		if job == nil {
			return
		}
		job.assist(p)
	}
}

// invite enqueues up to n invitations for j without ever blocking: if
// the channel is momentarily full the submitter simply keeps more of
// the job for itself.
func (p *Pool) invite(j *Job, n int) {
	for i := 0; i < n; i++ {
		select {
		case p.jobs <- j:
		default:
			return
		}
	}
}

// Job is one submitter's reusable scheduler state: the chunk-scan
// callback, the dependency bounds, and the cursor/frontier/done flags
// of the run in flight. It is reset and reopened by every Pool.Run;
// assist workers holding a stale invitation observe open == false (or
// join the submitter's next run, which is equally correct) and back
// out. A Job must not be submitted concurrently with itself.
type Job struct {
	// Scan processes chunk c. It is called exactly once per chunk per
	// run, possibly from several goroutines for different chunks, and
	// only after the completion frontier has passed Dep[c].
	Scan func(c int32)
	// Dep[c] is the chunk index the completion frontier must pass
	// before chunk c may start (-1: no external dependency). Dep[c]
	// must be < c.
	Dep []int32
	// NumChunks is the number of chunks this run claims.
	NumChunks int32

	open     atomic.Bool
	active   atomic.Int32    // assist workers currently inside run
	cursor   atomic.Int32    // next chunk to claim
	frontier atomic.Int32    // chunks [0,frontier) are complete
	done     []atomic.Uint32 // per-chunk completion flags (typed: every access is atomic)
}

// TestHookChunkClaimed, when non-nil, runs after every chunk claim.
// Tests use it to hold a run in flight deterministically (for the
// Resize rejection path); it must only be set while no job runs.
var TestHookChunkClaimed func()

// assist is the pool-worker side of a run: join if the job is still
// open, and make the membership visible through active so the submitter
// can wait for stragglers before reusing the job.
func (j *Job) assist(p *Pool) {
	if !j.open.Load() {
		p.idle.Add(1)
		return
	}
	j.active.Add(1)
	// Re-check after announcing ourselves: the submitter may have closed
	// the job between the first load and the Add. If it reopened for a
	// new run instead, joining that run is legitimate — the job's fields
	// were reset before open was stored.
	if j.open.Load() {
		j.run(p)
	} else {
		p.idle.Add(1)
	}
	j.active.Add(-1)
}

// run claims and scans chunks until the cursor is exhausted. Both the
// submitting goroutine and assist workers execute this same loop.
//
//phast:hotpath
func (j *Job) run(p *Pool) {
	nc := int32(len(j.done))
	dep := j.Dep
	for {
		c := j.cursor.Add(1) - 1
		if c >= nc {
			return
		}
		if TestHookChunkClaimed != nil {
			TestHookChunkClaimed()
		}
		p.chunks.Add(1)
		if d := dep[c]; d >= 0 && j.frontier.Load() <= d {
			p.stalls.Add(1)
			for j.frontier.Load() <= d {
				runtime.Gosched()
			}
		}
		j.Scan(c)
		j.done[c].Store(1)
		// Advance the frontier over every consecutively completed chunk.
		// Any worker may push it past chunks completed out of order; a
		// failed CAS means someone else already did.
		for {
			f := j.frontier.Load()
			if f >= nc || j.done[f].Load() == 0 {
				break
			}
			j.frontier.CompareAndSwap(f, f+1)
		}
	}
}

// Run executes one job on the pool. It resets and opens the job,
// invites parked workers, works the cursor itself, and returns only
// after the frontier covers every chunk and all assist workers have
// left the job (so the job can be reused by the next run).
func (p *Pool) Run(j *Job) {
	p.resizeMu.RLock()
	defer p.resizeMu.RUnlock()
	nc := int(j.NumChunks)
	if cap(j.done) < nc {
		j.done = make([]atomic.Uint32, nc)
	} else {
		j.done = j.done[:nc]
		for i := range j.done {
			j.done[i].Store(0)
		}
	}
	j.cursor.Store(0)
	j.frontier.Store(0)
	j.open.Store(true)
	p.sweeps.Add(1)
	if a := int(p.assists.Load()); a > 0 {
		want := nc - 1
		if a < want {
			want = a
		}
		p.invite(j, want)
	}
	j.run(p)
	for j.frontier.Load() < int32(nc) {
		runtime.Gosched()
	}
	j.open.Store(false)
	for j.active.Load() != 0 {
		runtime.Gosched()
	}
}
