// Package partition computes k-way vertex partitions of road networks
// for the arc-flags application (Section VII-B.b). The paper uses
// dedicated partitioners ([24]–[27]); flags only need cells that are
// connected and reasonably balanced with small boundaries, so this
// package implements the classic k-center heuristic: farthest-point
// seeding by BFS hops followed by a multi-source BFS Voronoi growth.
package partition

import (
	"fmt"
	"math/rand"

	"phast/internal/graph"
)

// Partition is a complete k-way cut of a graph: the cell of every
// vertex, the member list of every cell, and the boundary-vertex tables
// that the sharded serving layer and arc-flags preprocessing both key
// on. It is immutable once built and safe to share across goroutines.
type Partition struct {
	// K is the number of cells.
	K int
	// Cell[v] is the cell index of vertex v.
	Cell []int32
	// Members[c] lists the vertices of cell c in ascending ID order —
	// the target set of cell c's shard.
	Members [][]int32
	// Boundary[c] lists the vertices of cell c with an incoming arc
	// from another cell: the only vertices through which a shortest
	// path can enter the cell, and the vertices a cross-shard tree is
	// stitched through.
	Boundary [][]int32
	// Seed is the sampling seed the cut was grown from, kept so a
	// fleet can re-derive the identical partition from the same graph.
	Seed int64
}

// New computes a k-way partition of g (k-center seeding + BFS Voronoi
// growth, see Cells) together with its member and boundary tables.
func New(g *graph.Graph, k int, seed int64) (*Partition, error) {
	cells, err := Cells(g, k, seed)
	if err != nil {
		return nil, err
	}
	p := &Partition{
		K:        k,
		Cell:     cells,
		Members:  make([][]int32, k),
		Boundary: Boundary(g, cells, k),
		Seed:     seed,
	}
	for v, c := range cells {
		p.Members[c] = append(p.Members[c], int32(v))
	}
	return p, nil
}

// Stats summarizes the partition (see Summarize).
func (p *Partition) Stats(g *graph.Graph) Stats { return Summarize(g, p.Cell, p.K) }

// Cells computes a partition of g into k connected cells and returns the
// cell index of each vertex. g should be connected (vertices unreachable
// from every seed are assigned to cell of the nearest... they end up in
// the cell of whichever seed's BFS reaches them; fully isolated vertices
// are placed in cell 0).
func Cells(g *graph.Graph, k int, seed int64) ([]int32, error) {
	n := g.NumVertices()
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("partition: k=%d exceeds n=%d", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	und := undirected(g)

	// Farthest-point sampling: each new seed maximizes the BFS-hop
	// distance to the nearest existing seed.
	seeds := make([]int32, 0, k)
	seeds = append(seeds, int32(rng.Intn(n)))
	hop := make([]int32, n)
	queue := make([]int32, 0, n)
	bfsFrom := func(starts []int32) {
		for i := range hop {
			hop[i] = -1
		}
		queue = queue[:0]
		for _, s := range starts {
			hop[s] = 0
			queue = append(queue, s)
		}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range und.Arcs(v) {
				if hop[w.Head] < 0 {
					hop[w.Head] = hop[v] + 1
					queue = append(queue, w.Head)
				}
			}
		}
	}
	for len(seeds) < k {
		bfsFrom(seeds)
		far, farHop := int32(-1), int32(-1)
		for v := 0; v < n; v++ {
			if hop[v] > farHop {
				far, farHop = int32(v), hop[v]
			}
		}
		if farHop <= 0 {
			// Graph smaller than k or disconnected remainder: spread the
			// remaining seeds over unseeded vertices arbitrarily.
			used := make(map[int32]bool, len(seeds))
			for _, s := range seeds {
				used[s] = true
			}
			for v := int32(0); int(v) < n && len(seeds) < k; v++ {
				if !used[v] {
					seeds = append(seeds, v)
					used[v] = true
				}
			}
			break
		}
		seeds = append(seeds, far)
	}

	// Voronoi growth: simultaneous BFS from all seeds; every vertex joins
	// the cell of the seed that reaches it first, which keeps each cell
	// connected (a vertex is always labeled from a same-cell neighbor).
	cells := make([]int32, n)
	for i := range cells {
		cells[i] = -1
	}
	queue = queue[:0]
	for i, s := range seeds {
		cells[s] = int32(i)
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range und.Arcs(v) {
			if cells[w.Head] < 0 {
				cells[w.Head] = cells[v]
				queue = append(queue, w.Head)
			}
		}
	}
	for v := range cells {
		if cells[v] < 0 {
			cells[v] = 0 // isolated vertex
		}
	}
	return cells, nil
}

// undirected returns a graph whose adjacency is the union of out- and
// in-neighbors of g (weights are irrelevant for hop BFS).
func undirected(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, a := range g.Arcs(v) {
			b.MustAddArc(v, a.Head, 1)
			b.MustAddArc(a.Head, v, 1)
		}
	}
	return b.BuildDeduped()
}

// Boundary returns, for each cell, the vertices of that cell with an
// incoming arc from another cell — the roots of the reverse shortest
// path trees that arc-flags preprocessing builds (the paper's "boundary
// vertices").
func Boundary(g *graph.Graph, cells []int32, k int) [][]int32 {
	rev := g.Transpose()
	out := make([][]int32, k)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		c := cells[v]
		for _, a := range rev.Arcs(v) {
			if cells[a.Head] != c {
				out[c] = append(out[c], v)
				break
			}
		}
	}
	return out
}

// Stats summarizes a partition for reporting: cell sizes and the total
// number of boundary vertices.
type Stats struct {
	K             int
	MinSize       int
	MaxSize       int
	BoundaryCount int
}

// Summarize computes Stats for a partition.
func Summarize(g *graph.Graph, cells []int32, k int) Stats {
	sizes := make([]int, k)
	for _, c := range cells {
		sizes[c]++
	}
	st := Stats{K: k, MinSize: int(^uint(0) >> 1)}
	for _, s := range sizes {
		if s < st.MinSize {
			st.MinSize = s
		}
		if s > st.MaxSize {
			st.MaxSize = s
		}
	}
	for _, b := range Boundary(g, cells, k) {
		st.BoundaryCount += len(b)
	}
	return st
}
