package partition

import (
	"testing"

	"phast/internal/graph"
	"phast/internal/roadnet"
)

func testNet(t *testing.T) *graph.Graph {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 24, Height: 20, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph
}

func TestCellsCoverAndConnected(t *testing.T) {
	g := testNet(t)
	const k = 8
	cells, err := Cells(g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != g.NumVertices() {
		t.Fatalf("len(cells)=%d", len(cells))
	}
	seen := make([]bool, k)
	for v, c := range cells {
		if c < 0 || int(c) >= k {
			t.Fatalf("vertex %d in cell %d", v, c)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("cell %d empty", c)
		}
	}
	// Connectivity: the subgraph induced by each cell must have one
	// component (treating arcs as undirected).
	for c := int32(0); c < k; c++ {
		keep := make([]bool, g.NumVertices())
		cnt := 0
		for v, cc := range cells {
			if cc == c {
				keep[v] = true
				cnt++
			}
		}
		sub, _, _ := graph.InducedSubgraph(g, keep)
		if _, comps := graph.ComponentLabels(sub); comps != 1 {
			t.Fatalf("cell %d has %d components (%d vertices)", c, comps, cnt)
		}
	}
}

func TestCellsDeterministicAndBalancedEnough(t *testing.T) {
	g := testNet(t)
	a, err := Cells(g, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cells(g, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
	st := Summarize(g, a, 6)
	if st.MaxSize > 10*st.MinSize {
		t.Fatalf("wildly unbalanced cells: min=%d max=%d", st.MinSize, st.MaxSize)
	}
	if st.BoundaryCount == 0 || st.BoundaryCount >= g.NumVertices()/2 {
		t.Fatalf("boundary count %d implausible for n=%d", st.BoundaryCount, g.NumVertices())
	}
}

func TestBoundaryExact(t *testing.T) {
	g := testNet(t)
	const k = 5
	cells, err := Cells(g, k, 3)
	if err != nil {
		t.Fatal(err)
	}
	boundary := Boundary(g, cells, k)
	inBoundary := map[int32]bool{}
	for c, bs := range boundary {
		for _, v := range bs {
			if cells[v] != int32(c) {
				t.Fatalf("boundary vertex %d listed under cell %d but lives in %d", v, c, cells[v])
			}
			inBoundary[v] = true
		}
	}
	// Brute force: v is boundary iff some arc (u,v) crosses cells.
	rev := g.Transpose()
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		want := false
		for _, a := range rev.Arcs(v) {
			if cells[a.Head] != cells[v] {
				want = true
				break
			}
		}
		if want != inBoundary[v] {
			t.Fatalf("boundary status of %d wrong: got %v", v, inBoundary[v])
		}
	}
}

func TestCellsEdgeCases(t *testing.T) {
	g := testNet(t)
	if _, err := Cells(g, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Cells(g, g.NumVertices()+1, 1); err == nil {
		t.Fatal("k>n accepted")
	}
	cells, err := Cells(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c != 0 {
			t.Fatal("k=1 must put everything in cell 0")
		}
	}
}

func TestCellsTinyGraph(t *testing.T) {
	g, err := graph.FromArcs(3, [][3]int64{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Cells(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, c := range cells {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("k=n should give singleton cells, got %v", cells)
	}
}
