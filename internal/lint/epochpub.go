package lint

import (
	"go/ast"
	"go/types"
)

// EpochPub enforces the forward-only publication rule the server's
// metric epochs established: shared state behind an atomic.Pointer is
// replaced only through a CAS loop that refuses to install an older
// epoch over a newer one (internal/server.InstallMetric is the
// reference implementation). A raw Store (or Swap) is a lost-update
// hazard — two concurrent installers can interleave so the later epoch
// is clobbered by the earlier one, and every executor that loads the
// pointer afterwards silently computes against stale state.
//
// Flagged: a .Store or .Swap method call on an atomic.Pointer[T]-typed
// struct field or package variable, unless
//
//   - the call happens inside a for loop whose body CompareAndSwaps the
//     same pointer (a CAS loop that also stores is odd but ordered), or
//   - the enclosing function's doc comment carries //phast:publish,
//     declaring that it provably runs before the pointer is visible to
//     any other goroutine (constructors, single-threaded setup).
//
// Local atomic.Pointer variables are exempt: until they are stored into
// shared state they are private to the goroutine building them.
// CompareAndSwap itself always passes — it is the publication
// primitive the rule asks for.
var EpochPub = &Analyzer{
	Name: "epochpub",
	Doc:  "flags raw Store/Swap on published atomic.Pointer state outside CAS loops and //phast:publish functions",
	Run:  runEpochPub,
}

func runEpochPub(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			if hasMarker(decl.Doc, PublishMarker) {
				return
			}
			checkEpochPub(pass, body)
		})
	}
}

func checkEpochPub(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// casLoops collects for statements whose body CASes a pointer
	// expression, keyed by the receiver's printed form.
	type loopSpan struct {
		lo, hi int // token.Pos range of the for statement
		recv   string
	}
	var casLoops []loopSpan
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "CompareAndSwap" && isAtomicPointerRecv(info, sel) {
				casLoops = append(casLoops, loopSpan{lo: int(loop.Pos()), hi: int(loop.End()), recv: exprString(sel.X)})
			}
			return true
		})
		return true
	})
	inCASLoop := func(pos int, recv string) bool {
		for _, l := range casLoops {
			if pos >= l.lo && pos <= l.hi && l.recv == recv {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Store" && sel.Sel.Name != "Swap") {
			return true
		}
		if !isAtomicPointerRecv(info, sel) || !isSharedState(pass, sel.X) {
			return true
		}
		recv := exprString(sel.X)
		if inCASLoop(int(call.Pos()), recv) {
			return true
		}
		pass.Reportf(call.Pos(), "raw %s on published atomic.Pointer %s can clobber a newer epoch; publish forward-only with a CompareAndSwap loop that keeps the newest install (see server.InstallMetric), or annotate the function //phast:publish if it provably runs before publication", sel.Sel.Name, recv)
		return true
	})
}

// isAtomicPointerRecv reports whether the method's receiver is
// sync/atomic.Pointer[T].
func isAtomicPointerRecv(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isSharedState reports whether the pointer expression reaches shared
// state: a struct field access anywhere in its chain, or a
// package-level variable. A bare local is private until published.
func isSharedState(pass *Pass, e ast.Expr) bool {
	info := pass.Pkg.Info
	pkgScope := pass.Pkg.Types.Scope()
	shared := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if v, ok := info.Uses[n.Sel].(*types.Var); ok && v.IsField() {
				shared = true
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && v.Parent() == pkgScope {
				shared = true
			}
		}
		return !shared
	})
	return shared
}
