package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of phastlint: a module-wide,
// type-informed call graph built once per Run and shared by every
// analyzer through Pass.Facts. The motivating client is hotalloc —
// extracting one helper out of an annotated kernel used to move its
// allocations out of the analyzer's sight, so the //phast:hotpath
// discipline now propagates transitively over static call edges.
//
// What counts as a static edge:
//
//   - direct calls of package-level functions (`buildSeeds(...)`,
//     `graph.AddSat(...)`),
//   - method calls whose receiver type is concrete (`e.scanCSRChunk(...)`);
//     interface method calls are dynamic dispatch and are not resolved,
//   - calls through a local variable that was assigned exactly one
//     named function (`f := helper; ...; f()`). A variable assigned two
//     different functions, or reassigned something that is not a
//     function, resolves to nothing.
//
// Function literals need no edge of their own: a literal's body is part
// of the enclosing declaration's AST, so its calls are attributed to the
// enclosing function by the body walk — which is exactly right for the
// `f := func() { helper() }; f()` idiom.
//
// Propagation stops at functions annotated //phast:offpath: deliberate
// cold guards (a panic path that only allocates when it fires) and the
// SIMT simulator boundary (host-side emulation whose cost is charged to
// the modeled device) opt out explicitly rather than through scattered
// per-line suppressions.
//
// Known holes, documented rather than papered over: interface dispatch,
// function-typed struct fields (`j.Scan(c)`), function values passed as
// parameters, reflection, and calls into packages that were not part of
// the Run (their bodies are not loaded). CI runs the whole module, so
// the last hole only opens for partial invocations.

// Facts is the shared interprocedural fact base of one Run: every
// declared function body in the loaded packages, its static call edges,
// and the transitive closure of //phast:hotpath reachability.
type Facts struct {
	// Funcs maps a declared function to its fact node. Object identity
	// is shared across packages because every package of a Run comes
	// from one Loader.
	Funcs map[*types.Func]*FuncFact

	// hotVia maps a function reachable from an annotated root (but not
	// itself annotated) to the caller it was first reached through; the
	// chain of hotVia links reconstructs a witness call path.
	hotVia map[*types.Func]*types.Func
}

// FuncFact is one declared function with a body.
type FuncFact struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Hot marks a function whose own doc comment carries //phast:hotpath.
	Hot bool
	// Off marks a function whose own doc comment carries //phast:offpath:
	// hot-path propagation stops at it (see OffPathMarker).
	Off bool
	// Callees are the static call edges out of the body (including the
	// bodies of nested function literals).
	Callees []CallEdge
}

// CallEdge is one resolved static call site.
type CallEdge struct {
	Pos    token.Pos
	Callee *types.Func
}

// BuildFacts constructs the call graph over the given packages and
// propagates hot-path reachability from every annotated root.
func BuildFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Funcs:  make(map[*types.Func]*FuncFact),
		hotVia: make(map[*types.Func]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				f.Funcs[obj] = &FuncFact{
					Obj:     obj,
					Decl:    fd,
					Pkg:     pkg,
					Hot:     hasMarker(fd.Doc, HotPathMarker),
					Off:     hasMarker(fd.Doc, OffPathMarker),
					Callees: collectCallees(pkg.Info, fd.Body),
				}
			}
		}
	}
	f.propagateHot()
	return f
}

// collectCallees resolves the static call edges of one body.
func collectCallees(info *types.Info, body *ast.BlockStmt) []CallEdge {
	// Local variables bound to exactly one named function: f := helper.
	// A second, different binding (or any non-function rebinding) makes
	// the variable unresolvable.
	localFunc := make(map[types.Object]*types.Func)
	conflicted := make(map[types.Object]bool)
	bind := func(lhs ast.Expr, callee *types.Func) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if callee == nil {
			// Rebound to something that is not a single named function.
			if _, had := localFunc[obj]; had {
				conflicted[obj] = true
			}
			return
		}
		if prev, had := localFunc[obj]; had && prev != callee {
			conflicted[obj] = true
			return
		}
		localFunc[obj] = callee
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, isLit := rhs.(*ast.FuncLit); isLit {
				continue // the literal's body is walked in place
			}
			bind(as.Lhs[i], namedFuncValue(info, rhs))
		}
		return true
	})

	var edges []CallEdge
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := resolveCallee(info, call, localFunc, conflicted); callee != nil {
			edges = append(edges, CallEdge{Pos: call.Pos(), Callee: callee})
		}
		return true
	})
	return edges
}

// namedFuncValue resolves an expression to the single named function it
// denotes as a value (helper, pkg.Helper, recv.Method), or nil.
func namedFuncValue(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return namedFuncValue(info, e.X)
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() == types.MethodVal && !types.IsInterface(sel.Recv().Underlying()) {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil // field value or interface method value
		}
		fn, _ := info.Uses[e.Sel].(*types.Func) // pkg-qualified function
		return fn
	}
	return nil
}

// resolveCallee resolves one call expression to a static callee, or nil
// for dynamic dispatch (interface methods, function-typed fields,
// parameters, conflicted locals) and builtins/conversions.
func resolveCallee(info *types.Info, call *ast.CallExpr, localFunc map[types.Object]*types.Func, conflicted map[types.Object]bool) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj
		case *types.Var:
			if !conflicted[obj] {
				return localFunc[obj]
			}
		}
	case *ast.SelectorExpr:
		return namedFuncValue(info, fun)
	}
	return nil
}

// propagateHot walks the call graph from every annotated root and
// records, for each function reached, the caller it was reached through.
func (f *Facts) propagateHot() {
	// Deterministic BFS order: roots sorted by position.
	var roots []*FuncFact
	for _, fact := range f.Funcs {
		if fact.Hot {
			roots = append(roots, fact)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Decl.Pos() < roots[j].Decl.Pos() })

	visited := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, r := range roots {
		visited[r.Obj] = true
		queue = append(queue, r.Obj)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fact := f.Funcs[cur]
		if fact == nil {
			continue
		}
		for _, e := range fact.Callees {
			callee := e.Callee
			if visited[callee] {
				continue
			}
			cf, inModule := f.Funcs[callee]
			if !inModule {
				continue // no body loaded: stdlib or an unloaded package
			}
			if cf.Off {
				continue // //phast:offpath: propagation stops here
			}
			visited[callee] = true
			f.hotVia[callee] = cur
			queue = append(queue, callee)
		}
	}
}

// HotChain returns a witness call path root → ... → fn for a function
// that is reachable from a //phast:hotpath root without being annotated
// itself, and nil otherwise (including for directly annotated functions,
// which hotalloc checks under their own label).
func (f *Facts) HotChain(fn *types.Func) []*types.Func {
	if fact := f.Funcs[fn]; fact == nil || fact.Hot {
		return nil
	}
	if _, ok := f.hotVia[fn]; !ok {
		return nil
	}
	var rev []*types.Func
	for cur := fn; ; {
		rev = append(rev, cur)
		via, ok := f.hotVia[cur]
		if !ok {
			break
		}
		cur = via
	}
	// rev is fn → ... → root; reverse it.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// chainString renders a witness path for diagnostics.
func chainString(chain []*types.Func) string {
	parts := make([]string, len(chain))
	for i, fn := range chain {
		parts[i] = fn.Name()
	}
	return strings.Join(parts, " → ")
}
