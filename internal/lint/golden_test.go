package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Golden tests: each analyzer runs over a testdata package whose files
// carry `// want "regex"` comments on the lines expected to be flagged
// (several regexes for several findings on one line). Every diagnostic
// must be claimed by a want on its line and every want must be hit —
// so the files double as false-positive guards: the ok* functions have
// no want comments and must stay silent.

func TestRawAliasGolden(t *testing.T)    { golden(t, RawAlias, "rawalias") }
func TestHotAllocGolden(t *testing.T)    { golden(t, HotAlloc, "hotalloc") }
func TestIndexWidthGolden(t *testing.T)  { golden(t, IndexWidth, "indexwidth") }
func TestEngineShareGolden(t *testing.T) { golden(t, EngineShare, "engineshare") }
func TestAtomicMixGolden(t *testing.T)   { golden(t, AtomicMix, "atomicmix") }
func TestEpochPubGolden(t *testing.T)    { golden(t, EpochPub, "epochpub") }
func TestLockHoldGolden(t *testing.T)    { golden(t, LockHold, "lockhold") }

// snapshotalias is module-scoped, so it goes through goldenSuite's Run
// path like any analyzer; the marker collection sees just the testdata
// package, which declares its own annotated accessors.
func TestSnapshotAliasGolden(t *testing.T) { golden(t, SnapshotAlias, "snapshotalias") }

// TestSuppressGolden runs the whole suite so suppression resolution has
// real diagnostics to consume (and to miss, for the stale case).
func TestSuppressGolden(t *testing.T) { goldenSuite(t, "suite", All(), "suppress") }

// wantTokenRe matches one quoted pattern after "want": backquoted for
// regexes with backslashes, double-quoted otherwise.
var wantTokenRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	pat  string
	re   *regexp.Regexp
	hit  bool
}

func golden(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	goldenSuite(t, a.Name, []*Analyzer{a}, dir)
}

func goldenSuite(t *testing.T, name string, analyzers []*Analyzer, dir string) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, tok := range wantTokenRe.FindAllString(c.Text[idx+len("want "):], -1) {
					pat := tok[1 : len(tok)-1]
					if tok[0] == '"' {
						uq, err := strconv.Unquote(tok)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
						}
						pat = uq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pat: pat, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments under testdata/%s", dir)
	}

	for _, d := range Run([]*Package{pkg}, analyzers) {
		claimed := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no %s diagnostic matched %q", w.file, w.line, name, w.pat)
		}
	}
}
