package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	// Path is the import path ("phast/internal/core").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// ModulePath is the module prefix ("phast"), so analyzers can tell
	// module types from foreign ones.
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of the enclosing Go module
// using only the standard library: intra-module imports are resolved by
// mapping import paths onto directories under the module root, and
// everything else (the standard library) is delegated to the source
// importer. Results are memoized, so a package is checked once per
// Loader no matter how many importers reach it.
type Loader struct {
	// ModuleDir is the directory containing go.mod.
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// IncludeTests adds in-package _test.go files to loaded packages.
	// External (package foo_test) files are never loaded.
	IncludeTests bool
	// BuildTags are extra build tags honored when selecting files
	// (e.g. "phastdebug" to lint the checked-build validators).
	BuildTags []string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader creates a loader for the module that contains dir, walking
// upward until a go.mod is found.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}, nil
}

// Fset returns the shared file set all loaded packages use.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(path, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// pathFor maps a directory under the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module-internal paths load (and
// type-check) recursively; anything else goes to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load loads the package in dir (a directory under the module).
func (l *Loader) Load(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir := l.dirFor(path)
	ctx := build.Default
	ctx.BuildTags = append(ctx.BuildTags, l.BuildTags...)
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:       path,
		Dir:        dir,
		ModulePath: l.ModulePath,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = p
	return p, nil
}

// Expand resolves command-line package patterns relative to the module:
// "./..." (every package under the module, skipping testdata, hidden
// directories, and directories without Go files), explicit relative
// directories, and module import paths.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkModule(add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			root := base
			if !filepath.IsAbs(root) && !strings.HasPrefix(root, ".") {
				root = l.dirFor(base) // import-path pattern
			}
			if err := walkGoDirs(root, add); err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, ".") || filepath.IsAbs(pat):
			add(pat)
		default:
			add(l.dirFor(pat)) // import path
		}
	}
	return dirs, nil
}

func (l *Loader) walkModule(add func(string)) error {
	return walkGoDirs(l.ModuleDir, add)
}

// walkGoDirs calls add for every directory under root holding at least
// one non-test .go file, skipping testdata and hidden directories.
func walkGoDirs(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				add(path)
				break
			}
		}
		return nil
	})
}
