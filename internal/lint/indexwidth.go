package lint

import (
	"go/ast"
	"go/types"
)

// IndexWidth guards the CSR index arithmetic: the adjacency arrays
// (§IV-A) index vertices and arcs with int32 while Go's native int is
// 64-bit, so conversions inside indexing expressions are where silent
// truncation and sign flips hide. On instances past 2^31 labels a lossy
// conversion wraps and the sweep reads the wrong cache line — no panic,
// just wrong distances. The analyzer flags any integer conversion inside
// an index or slice expression over a slice/array whose target type
// cannot represent every value of the source type: narrowing (int →
// int32, int → uint32, uint64 → uint32, ...) and sign-mixing at equal
// width (int32 ↔ uint32). Widening conversions (int32 → int, uint32 →
// int64) are the sanctioned direction and pass. Conversions of untyped
// constants are exact at compile time and pass too.
var IndexWidth = &Analyzer{
	Name: "indexwidth",
	Doc:  "flags lossy or sign-mixing integer conversions in CSR indexing expressions",
	Run:  runIndexWidth,
}

func runIndexWidth(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				if indexableSlice(info, n.X) {
					checkIndexConversions(pass, n.Index)
				}
			case *ast.SliceExpr:
				if indexableSlice(info, n.X) {
					for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
						if b != nil {
							checkIndexConversions(pass, b)
						}
					}
				}
			}
			return true
		})
	}
}

// indexableSlice reports whether the indexed operand is a slice, array,
// or pointer to array — the CSR shapes. Maps and strings are exempt
// (maps hash, they do not offset into memory).
func indexableSlice(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// checkIndexConversions walks one bracket expression looking for
// conversions between integer types that can lose values.
func checkIndexConversions(pass *Pass, idx ast.Expr) {
	info := pass.Pkg.Info
	ast.Inspect(idx, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IndexExpr, *ast.SliceExpr:
			// Nested indexing gets its own visit from the outer walk;
			// descending here would double-report its conversions.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		atv, ok := info.Types[call.Args[0]]
		if !ok || atv.Type == nil {
			return true
		}
		if atv.Value != nil {
			return true // constant conversions are checked by the compiler
		}
		dst, dok := intShapeFor(tv.Type)
		src, sok := intShapeFor(atv.Type)
		if !dok || !sok {
			return true
		}
		if !intContains(dst, src) {
			pass.Reportf(call.Pos(), "conversion %s(%s) inside an indexing expression can %s; index CSR arrays with a widening conversion instead",
				types.TypeString(tv.Type, nil), types.TypeString(atv.Type, nil), lossKind(dst, src))
		}
		return true
	})
}

// intShape is the (signedness, width) model of an integer type; int,
// uint and uintptr are treated as 64-bit, the width on every platform
// PHAST targets (documented in DESIGN.md).
type intShape struct {
	signed bool
	bits   int
}

func intShapeOf(b *types.Basic) (intShape, bool) {
	switch b.Kind() {
	case types.Int, types.Int64:
		return intShape{true, 64}, true
	case types.Int32:
		return intShape{true, 32}, true
	case types.Int16:
		return intShape{true, 16}, true
	case types.Int8:
		return intShape{true, 8}, true
	case types.Uint, types.Uint64, types.Uintptr:
		return intShape{false, 64}, true
	case types.Uint32:
		return intShape{false, 32}, true
	case types.Uint16:
		return intShape{false, 16}, true
	case types.Uint8:
		return intShape{false, 8}, true
	}
	return intShape{}, false
}

func intShapeFor(t types.Type) (intShape, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return intShape{}, false
	}
	return intShapeOf(b)
}

// intContains reports whether every value of src is representable in dst.
func intContains(dst, src intShape) bool {
	switch {
	case dst.signed == src.signed:
		return dst.bits >= src.bits
	case dst.signed && !src.signed:
		return dst.bits > src.bits // int64 holds uint32, not uint64
	default: // unsigned dst, signed src: negatives wrap
		return false
	}
}

func lossKind(dst, src intShape) string {
	if dst.signed != src.signed {
		return "flip the sign bit"
	}
	return "truncate"
}
