// Package lint implements phastlint, the project-specific static
// analyzers guarding the invariants PHAST's performance and correctness
// rest on but the Go type system cannot see:
//
//   - rawalias: Raw*/HostData accessor results alias engine working
//     buffers; storing them or reading them after the next sweep on the
//     same engine is the reuse-after-sweep bug class the PR 1 regression
//     tests guard dynamically.
//   - hotalloc: functions annotated //phast:hotpath (the sweep kernels)
//     must stay allocation-free to hit the memory-bound sweep rates of
//     §IV; make/new/composite literals/fresh appends/escaping closures
//     and interface boxing are flagged.
//   - indexwidth: lossy or sign-mixing integer conversions inside CSR
//     indexing expressions silently corrupt sweeps on large graphs.
//   - engineshare: *Engine values are single-goroutine cursors;
//     concurrent use must go through internal/server.
//
// Everything is built on stdlib go/ast + go/parser + go/types; there are
// no external dependencies. Diagnostics can be suppressed per line with
// a comment on the flagged line or the line above:
//
//	//phastlint:ignore <analyzer> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// HotPathMarker is the annotation that opts a function into the
// hotalloc discipline. It must appear on its own line inside the
// function's doc comment.
const HotPathMarker = "//phast:hotpath"

// ignorePrefix starts a per-line suppression comment.
const ignorePrefix = "//phastlint:ignore"

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full phastlint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{RawAlias, HotAlloc, IndexWidth, EngineShare}
}

// ByName resolves a comma-separated analyzer list ("" selects all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to each package, filters suppressed
// diagnostics, and returns the remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
		diags = suppress(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppress drops diagnostics of pkg covered by //phastlint:ignore
// comments. A suppression names the analyzer (or "all") and covers its
// own line and the line directly below it.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	ignored := make(map[key]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := key{pos.Filename, line}
					if ignored[k] == nil {
						ignored[k] = make(map[string]bool)
					}
					ignored[k][fields[0]] = true
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		names := ignored[key{d.Pos.Filename, d.Pos.Line}]
		if names != nil && (names[d.Analyzer] || names["all"]) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// --- shared AST helpers ---

// funcBodies yields every function in the file that has a body: both
// declarations and, when walkLits is set, function literals. doc is the
// declaration's doc comment (nil for literals).
func funcBodies(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd, fd.Body)
		}
	}
}

// hasMarker reports whether the comment group contains the given
// standalone marker line (e.g. //phast:hotpath).
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// exprString renders a (small) expression for receiver identity and
// diagnostics. It intentionally normalizes nothing: two textually
// different expressions are treated as different objects.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		var args []string
		for _, a := range e.Args {
			args = append(args, exprString(a))
		}
		return exprString(e.Fun) + "(" + strings.Join(args, ", ") + ")"
	case *ast.BasicLit:
		return e.Value
	case *ast.SliceExpr:
		s := exprString(e.X) + "["
		if e.Low != nil {
			s += exprString(e.Low)
		}
		s += ":"
		if e.High != nil {
			s += exprString(e.High)
		}
		if e.Slice3 && e.Max != nil {
			s += ":" + exprString(e.Max)
		}
		return s + "]"
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// sliceBase strips slice expressions: the base lvalue of x[a:b] is x.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.SliceExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return e
		}
	}
}
