// Package lint implements phastlint, the project-specific static
// analyzers guarding the invariants PHAST's performance and correctness
// rest on but the Go type system cannot see:
//
//   - rawalias: Raw*/HostData accessor results alias engine working
//     buffers; storing them or reading them after the next sweep on the
//     same engine is the reuse-after-sweep bug class the PR 1 regression
//     tests guard dynamically.
//   - hotalloc: functions annotated //phast:hotpath (the sweep kernels)
//     must stay allocation-free to hit the memory-bound sweep rates of
//     §IV; make/new/composite literals/fresh appends/escaping closures
//     and interface boxing are flagged. The discipline is
//     interprocedural: helpers reachable from an annotated kernel over
//     the static call graph (Facts) are held to the same rule.
//   - indexwidth: lossy or sign-mixing integer conversions inside CSR
//     indexing expressions silently corrupt sweeps on large graphs.
//   - engineshare: *Engine values are single-goroutine cursors;
//     concurrent use must go through internal/server.
//   - atomicmix: a struct field accessed through sync/atomic at one
//     site and by plain loads/stores at another has no consistent
//     memory-ordering story; pick one discipline.
//   - epochpub: published atomic.Pointer state must be replaced through
//     a forward-only CAS loop (or inside a //phast:publish function),
//     never a raw Store that could clobber a newer epoch.
//   - lockhold: a mutex held across a blocking channel operation or
//     WaitGroup.Wait couples the lock's critical section to another
//     goroutine's progress; TryLock results must be checked.
//   - snapshotalias: slices returned by //phast:readonly accessors view
//     shared snapshot memory — possibly PROT_READ-mapped file pages —
//     so element stores, copies into them, and appends to them are
//     cross-engine corruption or a SIGBUS waiting to happen.
//
// Everything is built on stdlib go/ast + go/parser + go/types; there are
// no external dependencies. Diagnostics can be suppressed per line with
// a comment on the flagged line or the line above:
//
//	//phastlint:ignore <analyzer> <reason>
//
// The analyzer name and a reason are both required, and a suppression
// that suppresses nothing is itself a diagnostic — stale ignores rot
// into false documentation, so they are flagged and deleted.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// HotPathMarker is the annotation that opts a function into the
// hotalloc discipline. It must appear on its own line inside the
// function's doc comment.
const HotPathMarker = "//phast:hotpath"

// PublishMarker exempts a function from the epochpub raw-Store rule:
// it declares that the function provably runs before the state it
// stores to is published (constructors, single-threaded setup).
const PublishMarker = "//phast:publish"

// OffPathMarker stops //phast:hotpath propagation at a function: the
// annotated function and everything reachable only through it are not
// held to the hotalloc discipline. It declares that the function's cost
// is off the measured CPU path — a guard that only allocates on its
// failure (panic) branch, or the SIMT simulator boundary, whose
// allocations account device work that a real GPU build would not run
// on the host. The marker is a claim the author makes, like
// //phast:hotpath itself; it is deliberately visible in the doc comment
// so reviewers can audit it.
const OffPathMarker = "//phast:offpath"

// ReadonlyMarker annotates a function whose returned slice views
// read-only shared memory (an mmap'd snapshot section, or an array many
// engines alias). The snapshotalias analyzer flags writes through such
// views. Like the other markers it must appear on its own line in the
// function's doc comment.
const ReadonlyMarker = "//phast:readonly"

// ignorePrefix starts a per-line suppression comment.
const ignorePrefix = "//phastlint:ignore"

// SuppressionAnalyzer is the analyzer name carried by diagnostics about
// the suppression comments themselves (missing reason, unknown
// analyzer, unused suppression).
const SuppressionAnalyzer = "suppression"

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer run: over one package (Pkg set) or, for
// module-scoped analyzers, over every package of the Run at once.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the package under analysis; nil for module-scoped
	// analyzers, which see Pkgs instead.
	Pkg *Package
	// Pkgs is every package of this Run (module analyzers iterate it).
	Pkgs []*Package
	// Facts is the shared interprocedural fact base (call graph,
	// hot-path reachability) built once per Run. Nil only when an
	// analyzer is run in isolation without facts (tests exercising the
	// intraprocedural fallback).
	Facts *Facts
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over type-checked packages.
type Analyzer struct {
	Name string
	Doc  string
	// Module makes Run execute once over all packages (Pass.Pkgs)
	// instead of once per package (Pass.Pkg) — for analyzers whose
	// facts cross package boundaries, like atomicmix's access table.
	Module bool
	Run    func(*Pass)
}

// All returns the full phastlint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{RawAlias, HotAlloc, IndexWidth, EngineShare, AtomicMix, EpochPub, LockHold, SnapshotAlias}
}

// ByName resolves a comma-separated analyzer list ("" selects all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run builds the interprocedural facts over the packages, applies the
// analyzers, resolves suppressions (flagging malformed and unused
// ones), and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	if len(pkgs) == 0 {
		return diags
	}
	facts := BuildFacts(pkgs)
	fset := pkgs[0].Fset
	for _, a := range analyzers {
		if a.Module {
			a.Run(&Pass{Analyzer: a, Fset: fset, Pkgs: pkgs, Facts: facts, diags: &diags})
			continue
		}
		for _, pkg := range pkgs {
			a.Run(&Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, Pkgs: pkgs, Facts: facts, diags: &diags})
		}
	}
	diags = resolveSuppressions(pkgs, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective is one parsed //phastlint:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string // named analyzer or "all"
	reason   string
	used     bool
}

// resolveSuppressions drops diagnostics covered by well-formed
// //phastlint:ignore comments and appends diagnostics for malformed
// directives (missing analyzer or reason, unknown analyzer) and for
// directives that suppressed nothing. A suppression covers its own
// line and the line directly below it, and must name the analyzer (or
// "all") plus a reason.
func resolveSuppressions(pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	enabled := make(map[string]bool)
	for _, a := range analyzers {
		enabled[a.Name] = true
	}

	var directives []*ignoreDirective
	var extra []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						extra = append(extra, Diagnostic{Pos: pos, Analyzer: SuppressionAnalyzer,
							Message: "suppression names no analyzer; write //phastlint:ignore <analyzer> <reason>"})
						continue
					case fields[0] != "all" && !known[fields[0]]:
						extra = append(extra, Diagnostic{Pos: pos, Analyzer: SuppressionAnalyzer,
							Message: fmt.Sprintf("suppression names unknown analyzer %q; known: %s", fields[0], knownNames())})
						continue
					case len(fields) < 2:
						extra = append(extra, Diagnostic{Pos: pos, Analyzer: SuppressionAnalyzer,
							Message: fmt.Sprintf("suppression of %s has no reason; a reason is required so the exception stays auditable", fields[0])})
						continue
					}
					directives = append(directives, &ignoreDirective{
						pos:      pos,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}

	// Index directives by the (file, line) keys they cover.
	type key struct {
		file string
		line int
	}
	covering := make(map[key][]*ignoreDirective)
	for _, d := range directives {
		for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
			k := key{d.pos.Filename, line}
			covering[k] = append(covering[k], d)
		}
	}

	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range covering[key{d.Pos.Filename, d.Pos.Line}] {
			if dir.analyzer == d.Analyzer || dir.analyzer == "all" {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	// A directive that suppressed nothing is stale — but only judge the
	// ones whose analyzer actually ran, so a subset invocation does not
	// call every other analyzer's legitimate ignores unused.
	for _, dir := range directives {
		if dir.used {
			continue
		}
		if dir.analyzer != "all" && !enabled[dir.analyzer] {
			continue
		}
		out = append(out, Diagnostic{Pos: dir.pos, Analyzer: SuppressionAnalyzer,
			Message: fmt.Sprintf("suppression of %s matches no diagnostic on this or the next line; delete the stale ignore", dir.analyzer)})
	}
	return append(out, extra...)
}

func knownNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// --- shared AST helpers ---

// funcBodies yields every function declaration in the file that has a
// body.
func funcBodies(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd, fd.Body)
		}
	}
}

// hasMarker reports whether the comment group contains the given
// standalone marker line (e.g. //phast:hotpath).
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// exprString renders a (small) expression for receiver identity and
// diagnostics. It intentionally normalizes nothing: two textually
// different expressions are treated as different objects.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		var args []string
		for _, a := range e.Args {
			args = append(args, exprString(a))
		}
		return exprString(e.Fun) + "(" + strings.Join(args, ", ") + ")"
	case *ast.BasicLit:
		return e.Value
	case *ast.SliceExpr:
		s := exprString(e.X) + "["
		if e.Low != nil {
			s += exprString(e.Low)
		}
		s += ":"
		if e.High != nil {
			s += exprString(e.High)
		}
		if e.Slice3 && e.Max != nil {
			s += ":" + exprString(e.Max)
		}
		return s + "]"
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// sliceBase strips slice expressions: the base lvalue of x[a:b] is x.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.SliceExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return e
		}
	}
}
