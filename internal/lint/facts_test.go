package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func loadTestdata(t *testing.T, dir string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestHotAllocIntraproceduralMisses pins the case that motivated the
// call-graph facts engine: run per-function (Facts == nil), hotalloc
// cannot see the allocation an extracted helper carries, even though
// the helper runs on every kernel invocation. The golden test proves
// the interprocedural run reports it; this test proves the old scope
// provably missed it — together they document why the facts engine
// exists.
func TestHotAllocIntraproceduralMisses(t *testing.T) {
	pkg := loadTestdata(t, "hotalloc")

	var diags []Diagnostic
	pass := &Pass{Analyzer: HotAlloc, Fset: pkg.Fset, Pkg: pkg, Pkgs: []*Package{pkg}, diags: &diags}
	runHotAlloc(pass)
	if len(diags) == 0 {
		t.Fatal("factless run reported nothing; annotated kernels should still be checked")
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "call path") {
			t.Errorf("factless run produced an interprocedural finding: %s", d)
		}
	}

	withFacts := Run([]*Package{pkg}, []*Analyzer{HotAlloc})
	var hits []string
	for _, d := range withFacts {
		if strings.Contains(d.Message, "call path") {
			hits = append(hits, d.Message)
		}
	}
	for _, witness := range []string{
		"driver → seeded",
		"driver → hop1 → hop2",
		"litDriver → litHelper",
		"localDriver → boundHelper",
	} {
		found := false
		for _, m := range hits {
			if strings.Contains(m, witness) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("interprocedural run missing witness path %q (got %d call-path findings)", witness, len(hits))
		}
	}
}

// TestOffPathStopsPropagation asserts the //phast:offpath barrier: no
// finding may point into guard (the Sprintf boxing on its panic branch
// is off-path by declaration), and nothing reaches coldHelper (bound to
// a conflicted local, never called).
func TestOffPathStopsPropagation(t *testing.T) {
	pkg := loadTestdata(t, "hotalloc")
	for _, d := range Run([]*Package{pkg}, []*Analyzer{HotAlloc}) {
		if strings.Contains(d.Message, "guard") || strings.Contains(d.Message, "coldHelper") {
			t.Errorf("finding crossed an off-path boundary: %s", d)
		}
	}
}

// TestSuppressionMalformed covers the directives that cannot carry an
// inline want comment: a bare ignore and one with an analyzer but no
// reason.
func TestSuppressionMalformed(t *testing.T) {
	pkg := loadTestdata(t, "suppressbad")
	diags := Run([]*Package{pkg}, All())
	want := []string{
		"suppression names no analyzer; write //phastlint:ignore <analyzer> <reason>",
		"suppression of hotalloc has no reason; a reason is required so the exception stays auditable",
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if diags[i].Analyzer != SuppressionAnalyzer || !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %s, want message containing %q", i, diags[i], w)
		}
	}
}
