// Package suppressbad holds the malformed suppression directives that
// cannot carry an inline want comment (any trailing text would parse as
// the analyzer name or the reason). TestSuppressionMalformed asserts
// their diagnostics directly.
package suppressbad

func bare() {
	//phastlint:ignore
	_ = 0
}

func noReason() {
	//phastlint:ignore hotalloc
	_ = 0
}
