// Package indexwidth exercises the indexwidth analyzer over CSR-style
// indexing expressions.
package indexwidth

func badNarrow(first []int32, v int) int32 {
	return first[int32(v)] // want `conversion int32\(int\) inside an indexing expression can truncate`
}

func badSignMix(dist []uint32, v int32) uint32 {
	return dist[uint32(v)] // want `can flip the sign bit`
}

func badNarrowUnsigned(arcs []uint64, v uint64) uint64 {
	return arcs[uint32(v)] // want `can truncate`
}

func badSliceBounds(arcs []uint64, lo, hi int) []uint64 {
	return arcs[uint32(lo):uint32(hi)] // want `can flip the sign bit` `can flip the sign bit`
}

func badNested(first []int32, ids []int64, v int) int32 {
	return first[ids[int32(v)]] // want `can truncate`
}

// --- false-positive guards ---

// okWiden converts in the sanctioned direction: int32 into 64-bit int.
func okWiden(first []int32, v int32) int32 {
	return first[int(v)]
}

// okUnsignedWiden: int64 represents every uint32.
func okUnsignedWiden(first []int64, v uint32) int64 {
	return first[int64(v)]
}

// okConst: constant conversions are checked exactly by the compiler.
func okConst(dist []uint32) uint32 {
	return dist[uint32(7)]
}

// okMap: maps hash, they do not offset into memory.
func okMap(m map[uint32]int, v int) int {
	return m[uint32(v)]
}

// okSuppressed shows a per-line suppression with a reason.
func okSuppressed(first []int32, v int) int32 {
	//phastlint:ignore indexwidth v is bounds-checked by the caller contract
	return first[int32(v)]
}
