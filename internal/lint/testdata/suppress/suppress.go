// Package suppress is the golden fixture for the suppression machinery,
// run under the full analyzer suite: well-formed ignores silence their
// analyzer on their own line and the line below; an ignore that
// suppresses nothing is itself flagged, as is one naming an unknown
// analyzer. (Malformed directives that cannot carry a want comment —
// missing analyzer, missing reason — live in testdata/suppressbad.)
package suppress

import "sync"

type T struct {
	mu sync.Mutex
	ch chan int
}

func lineBelow(t *T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//phastlint:ignore lockhold fixture: the send is bounded by the test harness
	t.ch <- 1
}

func sameLine(t *T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ch <- 1 //phastlint:ignore lockhold fixture: same-line coverage
}

func allAnalyzers(t *T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//phastlint:ignore all fixture: every analyzer is silenced on the next line
	t.ch <- 1
}

func stale(t *T) {
	// The send below is not under any lock, so the ignore suppresses
	// nothing and is reported itself.
	//phastlint:ignore lockhold stale fixture reason -- want `suppression of lockhold matches no diagnostic`
	t.ch <- 1
}

func unknown(t *T) {
	//phastlint:ignore nosuch typo fixture -- want `suppression names unknown analyzer "nosuch"`
	t.ch <- 1
}
