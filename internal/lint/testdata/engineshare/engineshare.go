// Package engineshare exercises the engineshare analyzer. Engine is a
// single-goroutine cursor like core.Engine: one set of working buffers,
// no locks, so it must never be shared with a goroutine while this
// goroutine can still touch it.
package engineshare

type Engine struct{ dist []uint32 }

func (e *Engine) Tree(src int32) {}

func (e *Engine) Clone() *Engine {
	return &Engine{dist: make([]uint32, len(e.dist))}
}

func badUsedAfter(e *Engine, done chan struct{}) {
	go func() {
		e.Tree(1) // want `engine e escapes to a goroutine but is still used afterwards`
		done <- struct{}{}
	}()
	e.Tree(2)
}

func badLoopShared(e *Engine, n int) {
	for i := 0; i < n; i++ {
		go e.Tree(int32(i)) // want `engine e is handed to a goroutine inside a loop but declared outside it`
	}
}

func badLoopSharedClosure(e *Engine, n int) {
	for i := 0; i < n; i++ {
		go func(src int32) {
			e.Tree(src) // want `handed to a goroutine inside a loop but declared outside`
		}(int32(i))
	}
}

// --- false-positive guards ---

// okClonePerGoroutine is the sanctioned handoff used by internal/server:
// a fresh clone per iteration, given away and never touched again.
func okClonePerGoroutine(proto *Engine, n int) {
	for i := 0; i < n; i++ {
		eng := proto.Clone()
		go eng.Tree(int32(i))
	}
}

// okCloneArg clones inside the go statement: receivers and arguments of
// the spawned call are evaluated by this goroutine, so only the fresh
// clone crosses over.
func okCloneArg(proto *Engine, n int) {
	for i := 0; i < n; i++ {
		go func(eng *Engine) {
			eng.Tree(int32(i))
		}(proto.Clone())
	}
}

// okGiveAway transfers the engine to exactly one goroutine and never
// touches it afterwards.
func okGiveAway(e *Engine, done chan struct{}) {
	go func() {
		e.Tree(1)
		close(done)
	}()
	<-done
}
