// Package lockhold is the golden fixture for the lock-across-blocking
// analyzer: mutexes held over channel operations or WaitGroup.Wait, and
// discarded TryLock results. The hazard shapes mirror internal/server's
// drain paths.
package lockhold

import "sync"

type T struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
}

func (t *T) sendHeld() {
	t.mu.Lock()
	t.ch <- 1 // want `t\.mu is held \(since line \d+\) across a channel send`
	t.mu.Unlock()
}

func (t *T) recvDeferred() {
	t.rw.RLock()
	defer t.rw.RUnlock()
	<-t.ch // want `t\.rw is held .* across a channel receive`
}

func (t *T) selectNoDefault(v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select { // want `across a select with no default clause \(every arm blocks\)`
	case t.ch <- v:
	case x := <-t.ch:
		_ = x
	}
}

func (t *T) selectDefaultOK(v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case t.ch <- v:
	default:
	}
}

func (t *T) waitHeld() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wg.Wait() // want `across WaitGroup t\.wg\.Wait\(\)`
}

func (t *T) rangeHeld() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for v := range t.ch { // want `across a range over a channel`
		_ = v
	}
}

func (t *T) releaseFirstOK() {
	t.mu.Lock()
	t.mu.Unlock()
	t.ch <- 1
	t.wg.Wait()
}

func (t *T) goroutineOK() {
	// The spawned goroutine does not run under the spawning lock.
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() { t.ch <- 1 }()
}

func (t *T) deferredSendOK() {
	// Deferred work runs at exit; it is not on the locked linear path.
	t.mu.Lock()
	defer func() { <-t.ch }()
	t.mu.Unlock()
}

func (t *T) tryDiscarded() {
	t.mu.TryLock()      // want `t\.mu\.TryLock result is discarded`
	_ = t.rw.TryRLock() // want `t\.rw\.TryRLock result is discarded`
}

func (t *T) tryCheckedOK() {
	if t.mu.TryLock() {
		defer t.mu.Unlock()
	}
}

func (t *T) condWaitOK(c *sync.Cond) {
	// Cond.Wait's contract is to be called with the lock held.
	t.mu.Lock()
	defer t.mu.Unlock()
	c.Wait()
}
