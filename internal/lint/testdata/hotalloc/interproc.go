package hotalloc

import "fmt"

// This file exercises the interprocedural half of hotalloc: an
// unannotated helper reachable from a //phast:hotpath root over the
// static call graph is checked under the same rules, with the witness
// path in the diagnostic. TestHotAllocIntraproceduralMisses runs the
// same package without facts and asserts these findings vanish — the
// case a per-function analyzer provably cannot see.

// driver is the annotated kernel the helpers were extracted from.
//
//phast:hotpath
func driver(buf []int32) {
	seeded(buf)
	hop1(buf)
	guard(len(buf))
}

// seeded is the one-line extraction that used to hide its allocation
// from the intraprocedural analyzer.
func seeded(buf []int32) {
	tmp := make([]int32, len(buf)) // want `seeded is on a //phast:hotpath call path \(driver → seeded\) but calls make`
	copy(tmp, buf)
}

func hop1(buf []int32) { hop2(buf) }

func hop2(buf []int32) {
	p := new(int32) // want `hop2 is on a //phast:hotpath call path \(driver → hop1 → hop2\) but calls new`
	_ = p
	_ = buf
}

// guard only allocates on its failing branch; the //phast:offpath
// marker stops propagation, so the Sprintf boxing below stays silent.
//
//phast:offpath
func guard(n int) {
	if n > 1<<20 {
		panic(fmt.Sprintf("hotalloc: batch of %d exceeds capacity", n))
	}
}

// litDriver attributes the literal's body to the enclosing declaration,
// so the helper called from inside the closure is still reached.
//
//phast:hotpath
func litDriver() {
	f := func() { litHelper() }
	f()
}

func litHelper() {
	_ = make([]int, 8) // want `litHelper is on a //phast:hotpath call path \(litDriver → litHelper\) but calls make`
}

// localDriver reaches boundHelper through a local bound to exactly one
// named function.
//
//phast:hotpath
func localDriver() {
	g := boundHelper
	g()
}

func boundHelper() {
	_ = new(int) // want `boundHelper is on a //phast:hotpath call path \(localDriver → boundHelper\) but calls new`
}

// rebound is assigned two different functions; the local resolves to
// nothing, so coldHelper stays unchecked (and may allocate).
//
//phast:hotpath
func reboundDriver(which bool) {
	h := boundHelper
	if which {
		h = coldHelper
	}
	_ = h
}

func coldHelper() {
	_ = make([]int, 16)
}
