// Package hotalloc exercises the hotalloc analyzer: functions annotated
// //phast:hotpath must stay allocation-free, unannotated functions may
// allocate freely.
package hotalloc

import "sync"

var sink func()

// relaxAll is the shape of a conforming sweep kernel: loads and stores
// over preallocated buffers plus the amortized self-append idiom.
//
//phast:hotpath
func relaxAll(dist []uint32, touched []int32) []int32 {
	touched = append(touched[:0], 0)
	for i := range dist {
		if dist[i] > 1 {
			dist[i]--
			touched = append(touched, int32(i))
		}
	}
	return touched
}

//phast:hotpath
func badMake(n int) []uint32 {
	return make([]uint32, n) // want `calls make`
}

//phast:hotpath
func badNew() *uint32 {
	return new(uint32) // want `calls new`
}

//phast:hotpath
func badComposite() []uint32 {
	return []uint32{1, 2, 3, 4} // want `composite literal`
}

//phast:hotpath
func badFreshAppend(dst, src []int32) []int32 {
	out := append(src, dst...) // want `appends into a fresh slice`
	return out
}

//phast:hotpath
func badGo(dist []uint32) {
	go func() { // want `launches a goroutine`
		dist[0] = 0
	}()
}

// badLevelForkJoin reconstructs the retired per-level parallel sweep —
// a fresh wave of goroutines and a WaitGroup barrier per level — which
// the persistent dependency-bounded scheduler replaced. The loop-nested
// launch gets the idiom-specific diagnostic.
//
//phast:hotpath
func badLevelForkJoin(dist []uint32, levelRanges [][2]int32, workers int) {
	for _, lr := range levelRanges {
		lo, hi := lr[0], lr[1]
		var wg sync.WaitGroup
		span := (hi - lo + int32(workers) - 1) / int32(workers)
		for clo := lo; clo < hi; clo += span {
			chi := clo + span
			if chi > hi {
				chi = hi
			}
			wg.Add(1)
			go func(clo, chi int32) { // want `goroutine per loop iteration \(the per-level fork-join idiom\)`
				defer wg.Done()
				for v := clo; v < chi; v++ {
					dist[v] = 0
				}
			}(clo, chi)
		}
		wg.Wait()
	}
}

//phast:hotpath
func badReturnedClosure(c []int) func() {
	return func() { c[0]++ } // want `escaping closure`
}

//phast:hotpath
func badStoredClosure(dist []uint32) {
	sink = func() { dist[0] = 0 } // want `escaping closure`
}

func emit(args ...any) {}

//phast:hotpath
func badBox(v uint32) {
	emit(v) // want `boxes a uint32 into an interface parameter`
}

//phast:hotpath
func badIfaceConv(v uint32) any {
	return any(v) // want `boxes a value into an interface`
}

//phast:hotpath
func badStringConv(s string) []byte {
	return []byte(s) // want `converts between string and byte/rune slice`
}

// --- false-positive guards ---

// okLocalClosure binds the closure to a local name and invokes it
// synchronously: the compiler keeps it on the stack.
//
//phast:hotpath
func okLocalClosure(dist []uint32) {
	scan := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dist[i] = 0
		}
	}
	scan(0, len(dist)/2)
	scan(len(dist)/2, len(dist))
}

// okKernelArg passes the closure as a direct call argument — the
// simulator's kernel-launch idiom, which invokes it synchronously.
//
//phast:hotpath
func okKernelArg(dist []uint32) {
	launch(len(dist), func(i int) {
		dist[i] = 0
	})
}

func launch(n int, kernel func(int)) {
	for i := 0; i < n; i++ {
		kernel(i)
	}
}

// okForward forwards an existing []any; nothing boxes.
//
//phast:hotpath
func okForward(args []any) {
	emit(args...)
}

// okIfacePassthrough passes an already-interface value; no new box.
//
//phast:hotpath
func okIfacePassthrough(err error) {
	emit(err)
}

// okColdSetup carries no annotation, so it may allocate at will.
func okColdSetup(n int) []uint32 {
	buf := make([]uint32, n)
	return append(buf, 1)
}
