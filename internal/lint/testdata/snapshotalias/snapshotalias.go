// Package snapshotalias exercises the snapshotalias analyzer. Snapshot
// mirrors the accessor surface of internal/snapshot: Bytes and Stream
// are annotated //phast:readonly because their results view a
// PROT_READ shared mapping; Weights is an ordinary accessor whose
// result is freely writable.
package snapshotalias

type Snapshot struct {
	data    []byte
	stream  []uint32
	weights []uint32
}

// Bytes returns the mapped region.
//
//phast:readonly
func (s *Snapshot) Bytes() []byte { return s.data }

// Stream returns the sweep stream words.
//
//phast:readonly
func (s *Snapshot) Stream() []uint32 { return s.stream }

// Weights returns a private, writable copy holder (no marker).
func (s *Snapshot) Weights() []uint32 { return s.weights }

func writeDirect(s *Snapshot) {
	s.Bytes()[0] = 1 // want `element store through a read-only view from s\.Bytes`
}

func writeThroughBinding(s *Snapshot) {
	b := s.Bytes()
	b[3] = 7 // want `element store through a read-only view from s\.Bytes`
}

func writeThroughSubslice(s *Snapshot) {
	w := s.Stream()[4:8]
	w[0] = 9 // want `element store through a read-only view from s\.Stream`
}

func opAssign(s *Snapshot) {
	w := s.Stream()
	w[1] += 2 // want `element store through a read-only view from s\.Stream`
	w[2]++    // want `element store through a read-only view from s\.Stream`
}

func copyInto(s *Snapshot, src []byte) {
	copy(s.Bytes(), src) // want `copy into a read-only view from s\.Bytes`
	b := s.Bytes()[8:]
	copy(b, src) // want `copy into a read-only view from s\.Bytes`
}

func appendTo(s *Snapshot) []uint32 {
	w := s.Stream()
	return append(w, 1) // want `append to a read-only view from s\.Stream`
}

// okWritable writes through the unannotated accessor: no findings.
func okWritable(s *Snapshot) {
	w := s.Weights()
	w[0] = 1
	copy(s.Weights(), w)
}

// okCopyFrom reads a view as a copy *source*, which is fine.
func okCopyFrom(s *Snapshot, dst []byte) {
	copy(dst, s.Bytes())
}

// okRebound writes through a variable that stopped being a view.
func okRebound(s *Snapshot) {
	b := s.Bytes()
	_ = b
	b = make([]byte, 8)
	b[0] = 1
}

// okPrivateCopy is the prescribed pattern: snapshot the view, mutate
// the copy.
func okPrivateCopy(s *Snapshot) []uint32 {
	w := make([]uint32, len(s.Stream()))
	copy(w, s.Stream())
	w[0] = 42
	return w
}
