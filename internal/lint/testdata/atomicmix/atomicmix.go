// Package atomicmix is the golden fixture for the mixed atomic/plain
// field-access analyzer. The shapes mirror internal/sched: a word field
// used as a flag, and a slice field whose elements are completion flags.
package atomicmix

import "sync/atomic"

// S mixes disciplines on purpose.
type S struct {
	flag uint32   // word-granularity atomic datum
	done []uint32 // element-granularity atomic data
	seq  uint32   // never touched atomically: plain access is fine
	ok   atomic.Uint32
	oks  []atomic.Uint32
}

func (s *S) atomicSites(i int) {
	atomic.StoreUint32(&s.flag, 1)
	atomic.AddUint32(&s.flag, 1)
	atomic.StoreUint32(&s.done[i], 1)
	_ = atomic.LoadUint32(&s.done[0])
}

func (s *S) plainWord() {
	x := s.flag // want `flag of atomicmix\.S is accessed through sync/atomic .* is read plainly`
	_ = x
	s.flag = 2 // want `is assigned plainly`
	s.flag++   // want `is incremented plainly`
}

func (s *S) plainElems(i int) {
	_ = s.done[i]      // want `an element is read or written plainly`
	s.done[i] = 1      // want `an element is read or written plainly`
	clear(s.done)      // want `elements are written plainly by clear`
	for range s.done { // want `elements are read plainly by range`
	}
	sink(s.done) // want `slice escapes or is read outside the atomic discipline`
}

func (s *S) headerOpsOK() {
	// Header operations touch the slice header, never the elements.
	s.done = make([]uint32, 8)
	s.done = s.done[:4]
	_ = len(s.done)
	_ = cap(s.done)
}

func (s *S) untrackedOK() {
	// seq is never accessed atomically; plain use is not the hazard.
	s.seq++
	_ = s.seq
}

func (s *S) typedOK(i int) {
	// Typed atomic wrappers make mixing structurally impossible: the
	// method set is the only access path, so they are never tracked.
	s.ok.Store(1)
	_ = s.ok.Load()
	s.oks[i].Store(1)
	_ = s.oks[i].Load()
}

func sink([]uint32) {}
