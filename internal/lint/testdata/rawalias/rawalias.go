// Package rawalias exercises the rawalias analyzer. Engine mirrors the
// aliasing surface of core.Engine: Raw* accessors return views of the
// working buffers that the next sweep on the same engine overwrites,
// while Copy* snapshots are safe to keep.
package rawalias

type Engine struct {
	dist    []uint32
	parents []int32
}

func (e *Engine) Tree(src int32)              {}
func (e *Engine) MultiTreeParallel(s []int32) {}
func (e *Engine) RawDistances() []uint32      { return e.dist }
func (e *Engine) RawParents() []int32         { return e.parents }
func (e *Engine) CopyDistances(buf []uint32)  { copy(buf, e.dist) }

type holder struct{ view []uint32 }

var lastView []uint32

// reuseAfterSweep reconstructs the PR 1 reuse-after-sweep bug: the view
// fetched after the first tree is read after the second tree rewrote it.
func reuseAfterSweep(e *Engine) uint32 {
	e.Tree(1)
	raw := e.RawDistances()
	e.Tree(2)
	return raw[0] // want `read after e\.Tree overwrote it`
}

func reuseAfterMultiSweep(e *Engine) int32 {
	parents := e.RawParents()
	e.MultiTreeParallel([]int32{3, 4})
	return parents[0] // want `read after e\.MultiTreeParallel overwrote it`
}

func storeField(h *holder, e *Engine) {
	h.view = e.RawDistances() // want `stored into field or package variable h\.view`
}

func storeFieldViaVar(h *holder, e *Engine) {
	raw := e.RawDistances()
	h.view = raw // want `raw view raw \(from e\) stored into field or package variable h\.view`
}

func storeGlobal(e *Engine) {
	lastView = e.RawDistances() // want `stored into package variable lastView`
}

func storeSliceOfRaw(h *holder, e *Engine) {
	h.view = e.RawDistances()[1:] // want `stored into field or package variable h\.view`
}

func sendRaw(ch chan []uint32, e *Engine) {
	ch <- e.RawDistances() // want `stored into channel send`
}

func inComposite(e *Engine) [][]uint32 {
	return [][]uint32{e.RawDistances()} // want `stored into composite literal`
}

func appended(rows [][]uint32, e *Engine) [][]uint32 {
	return append(rows, e.RawDistances()) // want `stored into appended container`
}

func captured(e *Engine) func() uint32 {
	raw := e.RawDistances()
	return func() uint32 {
		return raw[0] // want `captured by a closure`
	}
}

// --- false-positive guards: all of these are sanctioned uses ---

// okReadThenSweep reads the view before the next sweep; the value read
// out is a plain uint32 and survives.
func okReadThenSweep(e *Engine) uint32 {
	e.Tree(1)
	raw := e.RawDistances()
	best := raw[0]
	e.Tree(2)
	return best
}

// okRefetch re-fetches the view after the sweep; the governing binding
// of the final read is the fresh one.
func okRefetch(e *Engine) uint32 {
	e.Tree(1)
	raw := e.RawDistances()
	first := raw[0]
	e.Tree(2)
	raw = e.RawDistances()
	return raw[0] + first
}

// okCopy snapshots through the Copy* accessor, which is the documented
// way to keep results across sweeps.
func okCopy(e *Engine, buf []uint32) uint32 {
	e.Tree(1)
	e.CopyDistances(buf)
	e.Tree(2)
	return buf[0]
}

// okOtherEngine sweeps a different engine; a's buffers are untouched.
func okOtherEngine(a, b *Engine) uint32 {
	a.Tree(1)
	raw := a.RawDistances()
	b.Tree(2)
	return raw[0]
}
