// Package epochpub is the golden fixture for the forward-only
// publication analyzer. It reconstructs the server's metric-epoch shape:
// an atomic.Pointer to an immutable engine set, replaced only through a
// CAS loop that refuses to install an older epoch (the true negative),
// against raw Store/Swap variants (the true positives).
package epochpub

import "sync/atomic"

type engineSet struct{ epoch uint64 }

type state struct {
	active atomic.Pointer[engineSet]
}

var global atomic.Pointer[engineSet]

// install is the reference forward-only CAS loop (server.InstallMetric):
// loaded epoch compared, newer kept, CAS retried. Must stay clean.
func (s *state) install(n *engineSet) bool {
	for {
		cur := s.active.Load()
		if cur != nil && cur.epoch >= n.epoch {
			return false
		}
		if s.active.CompareAndSwap(cur, n) {
			return true
		}
	}
}

// storeInLoopOK stores inside a for loop that CASes the same pointer;
// the loop's CAS orders the installs, so the store passes.
func (s *state) storeInLoopOK(n *engineSet) {
	for {
		cur := s.active.Load()
		if s.active.CompareAndSwap(cur, n) {
			s.active.Store(n)
			return
		}
	}
}

func (s *state) rawStore(n *engineSet) {
	s.active.Store(n) // want `raw Store on published atomic\.Pointer s\.active can clobber a newer epoch`
}

func (s *state) rawSwap(n *engineSet) {
	_ = s.active.Swap(n) // want `raw Swap on published atomic\.Pointer s\.active`
}

func rawStoreGlobal(n *engineSet) {
	global.Store(n) // want `raw Store on published atomic\.Pointer global`
}

// newState runs before the state escapes the constructor; the marker
// declares that, so the raw Store passes.
//
//phast:publish
func newState(n *engineSet) *state {
	s := &state{}
	s.active.Store(n)
	return s
}

// localOK builds a pointer that is still private to this goroutine.
func localOK(n *engineSet) *engineSet {
	var p atomic.Pointer[engineSet]
	p.Store(n)
	return p.Load()
}
