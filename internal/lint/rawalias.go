package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RawAlias flags misuse of raw engine buffer views: results of Raw*
// accessors (RawDistances, RawMultiDistances, RawParents, ...) and
// device HostData. These slices alias working buffers that the next
// sweep on the same engine silently overwrites, so they must never be
// stored (struct field, global, container, channel, closure) and must
// not be read after a subsequent Tree/MultiTree*/Sweep* call on the
// same engine within the function. This is the static twin of the
// reuse-after-sweep regression tests in internal/core/aliasing_test.go;
// results that must survive belong in Copy* snapshots.
var RawAlias = &Analyzer{
	Name: "rawalias",
	Doc:  "flags stored or reused-after-sweep raw engine buffer views",
	Run:  runRawAlias,
}

// rawAccessor reports whether a method name returns a raw aliasing view.
func rawAccessor(name string) bool {
	return strings.HasPrefix(name, "Raw") || name == "HostData"
}

// sweepCall reports whether a method name invalidates raw views of its
// receiver (it runs, or may run, a sweep that rewrites working buffers).
func sweepCall(name string) bool {
	switch name {
	case "Tree", "TreeParallel", "TreeWithParents", "TreeWithParentsParallel", "MultiTree", "MultiTreeParallel", "Run":
		return true
	}
	return strings.HasPrefix(name, "Sweep") || strings.HasPrefix(name, "sweep")
}

// rawCallRecv unwraps parens/slicings; if the expression is (a slice of)
// a raw accessor call it returns the receiver's printed form.
func rawCallRecv(e ast.Expr) (string, bool) {
	e = sliceBase(e)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !rawAccessor(sel.Sel.Name) {
		return "", false
	}
	return exprString(sel.X), true
}

type rawBinding struct {
	pos  token.Pos
	recv string // engine expression the view was taken from; "" = not raw
	lit  *ast.FuncLit
}

type rawUse struct {
	pos token.Pos
	lit *ast.FuncLit
}

type rawStore struct {
	pos  token.Pos
	what string // destination description
}

type invalidation struct {
	pos  token.Pos
	recv string
	name string
}

func runRawAlias(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			analyzeRawAlias(pass, body)
		})
	}
}

func analyzeRawAlias(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	pkgScope := pass.Pkg.Types.Scope()

	bindings := make(map[types.Object][]rawBinding)
	uses := make(map[types.Object][]rawUse)
	stores := make(map[types.Object][]rawStore)
	var invs []invalidation
	skipIdents := make(map[*ast.Ident]bool) // LHS idents: writes, not reads

	objOf := func(e ast.Expr) types.Object {
		if id, ok := sliceBase(e).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				return obj
			}
			return info.Defs[id]
		}
		return nil
	}

	// escapeDest classifies an assignment destination that must never
	// hold a raw view. Empty string means a plain local variable.
	escapeDest := func(lhs ast.Expr) string {
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			return "field or package variable " + exprString(l)
		case *ast.IndexExpr:
			return "container element " + exprString(l)
		case *ast.StarExpr:
			return "pointee " + exprString(l)
		case *ast.Ident:
			if obj := info.Uses[l]; obj != nil && obj.Parent() == pkgScope {
				return "package variable " + l.Name
			}
		}
		return ""
	}

	var litStack []*ast.FuncLit
	curLit := func() *ast.FuncLit {
		if len(litStack) == 0 {
			return nil
		}
		return litStack[len(litStack)-1]
	}

	reportDirect := func(pos token.Pos, recv, dest string) {
		pass.Reportf(pos, "raw view from %s stored into %s; it aliases the engine's working buffer, which the next sweep overwrites — copy with the Copy* accessor instead", recv, dest)
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			litStack = append(litStack, n)
			walk(n.Body)
			litStack = litStack[:len(litStack)-1]
			return

		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				var lhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				}
				recv, isRaw := rawCallRecv(rhs)
				dest := ""
				if lhs != nil {
					dest = escapeDest(lhs)
				}
				switch {
				case isRaw && dest != "":
					reportDirect(rhs.Pos(), recv, dest)
				case isRaw && lhs != nil:
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil {
							bindings[obj] = append(bindings[obj], rawBinding{pos: rhs.Pos(), recv: recv, lit: curLit()})
						}
					}
				case !isRaw && lhs != nil:
					// A raw-bound variable stored somewhere it outlives
					// this function's tracking, or a rebinding that
					// clears the tracked state.
					if dest != "" {
						if obj := objOf(rhs); obj != nil {
							stores[obj] = append(stores[obj], rawStore{pos: rhs.Pos(), what: dest})
						}
					} else if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil {
							bindings[obj] = append(bindings[obj], rawBinding{pos: rhs.Pos(), recv: "", lit: curLit()})
						}
					}
				}
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					skipIdents[id] = true
				}
			}
			for _, rhs := range n.Rhs {
				walk(rhs)
			}
			for _, lhs := range n.Lhs {
				// Still walk non-ident LHS (index exprs read their base).
				if _, ok := lhs.(*ast.Ident); !ok {
					walk(lhs)
				}
			}
			return

		case *ast.SendStmt:
			if recv, ok := rawCallRecv(n.Value); ok {
				reportDirect(n.Value.Pos(), recv, "channel send")
			} else if obj := objOf(n.Value); obj != nil {
				stores[obj] = append(stores[obj], rawStore{pos: n.Value.Pos(), what: "channel send"})
			}

		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if recv, ok := rawCallRecv(v); ok {
					reportDirect(v.Pos(), recv, "composite literal")
				} else if obj := objOf(v); obj != nil {
					stores[obj] = append(stores[obj], rawStore{pos: v.Pos(), what: "composite literal"})
				}
			}

		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sweepCall(sel.Sel.Name) {
				invs = append(invs, invalidation{pos: n.Pos(), recv: exprString(sel.X), name: sel.Sel.Name})
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 1 {
				for _, a := range n.Args[1:] {
					if recv, ok := rawCallRecv(a); ok {
						reportDirect(a.Pos(), recv, "appended container")
					} else if obj := objOf(a); obj != nil {
						if t, ok := info.Types[a]; ok {
							if _, isSlice := t.Type.Underlying().(*types.Slice); isSlice {
								stores[obj] = append(stores[obj], rawStore{pos: a.Pos(), what: "appended container"})
							}
						}
					}
				}
			}

		case *ast.Ident:
			if !skipIdents[n] {
				if obj := info.Uses[n]; obj != nil {
					uses[obj] = append(uses[obj], rawUse{pos: n.Pos(), lit: curLit()})
				}
			}
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c)
			return false
		})
	}
	walk(body)

	// Resolve the position-ordered facts: for every use of a variable,
	// find its governing binding; if that binding is raw, check for an
	// intervening sweep on the same engine and for closure captures.
	latestBinding := func(obj types.Object, pos token.Pos) *rawBinding {
		var best *rawBinding
		for i := range bindings[obj] {
			b := &bindings[obj][i]
			if b.pos <= pos && (best == nil || b.pos > best.pos) {
				best = b
			}
		}
		return best
	}
	for obj, objUses := range uses {
		for _, u := range objUses {
			b := latestBinding(obj, u.pos)
			if b == nil || b.recv == "" {
				continue
			}
			if u.lit != b.lit {
				pass.Reportf(u.pos, "raw view %s (from %s) captured by a closure; the closure may outlive the view — copy with the Copy* accessor instead", obj.Name(), b.recv)
				continue
			}
			for _, inv := range invs {
				if inv.recv == b.recv && inv.pos > b.pos && inv.pos < u.pos {
					pass.Reportf(u.pos, "raw view %s read after %s.%s overwrote it; re-fetch the view or copy before the sweep", obj.Name(), inv.recv, inv.name)
					break
				}
			}
		}
	}
	for obj, objStores := range stores {
		for _, st := range objStores {
			b := latestBinding(obj, st.pos)
			if b == nil || b.recv == "" {
				continue
			}
			pass.Reportf(st.pos, "raw view %s (from %s) stored into %s; it aliases the engine's working buffer, which the next sweep overwrites — copy with the Copy* accessor instead", obj.Name(), b.recv, st.what)
		}
	}
}
