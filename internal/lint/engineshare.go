package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EngineShare guards the engine ownership model: an Engine (core.Engine
// and the facades wrapping it) is a documented single-goroutine cursor —
// one set of per-source working buffers, no locks. Concurrent use must
// go through internal/server (which owns a clone pool) or per-goroutine
// Clone()s. The analyzer inspects every `go` statement and flags an
// engine-typed variable that escapes into the goroutine while this
// goroutine can still touch it:
//
//   - the variable is referenced again after the go statement, or
//   - the go statement sits in a loop but the variable is declared
//     outside it (the same engine is handed to several goroutines).
//
// The sanctioned handoff — declare/clone inside the loop body, hand the
// fresh engine to exactly one goroutine, never touch it again — passes.
// So does an engine appearing only as the receiver of a Clone() call
// inside the go statement: the spec evaluates the function value and its
// arguments in the calling goroutine, so the clone is taken before the
// new goroutine starts and only the fresh copy crosses over.
var EngineShare = &Analyzer{
	Name: "engineshare",
	Doc:  "flags *Engine values shared with goroutines",
	Run:  runEngineShare,
}

func runEngineShare(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkEngineShare(pass, body)
		})
	}
}

// isEngineType reports whether t is (a pointer to) a named type called
// Engine declared inside this module. Every Engine in the tree —
// core.Engine, the phast facade, gphast.Engine — is a single-goroutine
// cursor, so the name is the contract.
func isEngineType(pkg *Package, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Engine" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkg.ModulePath || len(path) > len(pkg.ModulePath) && path[:len(pkg.ModulePath)+1] == pkg.ModulePath+"/"
}

func checkEngineShare(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Pass 1: positions of every use of every object, plus the loop
	// nesting: for each go statement, the innermost enclosing for/range.
	usePos := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				usePos[obj] = append(usePos[obj], id.Pos())
			}
		}
		return true
	})

	type goSite struct {
		stmt *ast.GoStmt
		loop ast.Node // innermost enclosing for/range statement, or nil
	}
	var sites []goSite
	var loopStack []ast.Node
	var collect func(n ast.Node)
	collect = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopStack = append(loopStack, n)
			defer func() { loopStack = loopStack[:len(loopStack)-1] }()
		case *ast.GoStmt:
			var loop ast.Node
			if len(loopStack) > 0 {
				loop = loopStack[len(loopStack)-1]
			}
			sites = append(sites, goSite{stmt: n, loop: loop})
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			collect(c)
			return false
		})
	}
	collect(body)

	for _, site := range sites {
		// Engine-typed identifiers referenced inside the go statement
		// but declared outside the spawned function.
		var spawnedLit *ast.FuncLit
		if lit, ok := site.stmt.Call.Fun.(*ast.FuncLit); ok {
			spawnedLit = lit
		}
		// Idents appearing only as the receiver of a Clone() call are
		// evaluated by the spawning goroutine (go-statement receivers and
		// arguments are evaluated at the go statement, per spec), so only
		// the fresh clone crosses into the goroutine.
		cloneRecv := make(map[*ast.Ident]bool)
		ast.Inspect(site.stmt, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" {
				if id, ok := sel.X.(*ast.Ident); ok {
					cloneRecv[id] = true
				}
			}
			return true
		})
		seen := make(map[types.Object]bool)
		ast.Inspect(site.stmt, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if cloneRecv[id] {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || seen[obj] || !isEngineType(pass.Pkg, obj.Type()) {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			// Declared inside the spawned closure (parameter or local):
			// private to the goroutine.
			if spawnedLit != nil && obj.Pos() >= spawnedLit.Pos() && obj.Pos() <= spawnedLit.End() {
				return true
			}
			seen[obj] = true

			if site.loop != nil && (obj.Pos() < site.loop.Pos() || obj.Pos() > site.loop.End()) {
				pass.Reportf(id.Pos(), "engine %s is handed to a goroutine inside a loop but declared outside it, so multiple goroutines share one cursor; Clone() per goroutine or serve through internal/server", obj.Name())
				return true
			}
			for _, p := range usePos[obj] {
				if p > site.stmt.End() {
					pass.Reportf(id.Pos(), "engine %s escapes to a goroutine but is still used afterwards by this one (engines are single-goroutine cursors); Clone() for the goroutine or serve through internal/server", obj.Name())
					break
				}
			}
			return true
		})
	}
}
